package transform

import (
	"mgba/internal/cells"
	"mgba/internal/netlist"
)

// resizeMove is the shared Move of the two cell-swap transforms. A swap
// preserves connectivity, so the dirty set is the exact incremental-update
// seed and Revert is the opposite swap.
type resizeMove struct {
	kind  string
	inst  *netlist.Instance
	from  *cells.Cell
	cost  float64
	dirty []int
}

func (m *resizeMove) Kind() string { return m.kind }

func (m *resizeMove) Revert(a *Analysis) error {
	return a.D.Resize(m.inst, m.from)
}

func (m *resizeMove) DirtySet() []int { return m.dirty }

func (m *resizeMove) Cost() float64 { return m.cost }

// Upsize is the first-choice repair transform: swap the slowest path gate
// for its next-stronger drive variant. Candidates are every path gate with
// headroom, ranked by decreasing derated cell delay.
type Upsize struct{}

// NewUpsize returns the upsize transform.
func NewUpsize() *Upsize { return &Upsize{} }

// Kind implements Transform.
func (*Upsize) Kind() string { return "upsize" }

// ConnectivityChanging implements Transform: a cell swap keeps the graph.
func (*Upsize) ConnectivityChanging() bool { return false }

// Propose implements Transform: path gates with an upsize available, in
// decreasing derated-delay order (repeated strict-first-max selection, so
// equal delays keep path order).
func (*Upsize) Propose(a *Analysis, fi int, path []int) []Candidate {
	type cand struct {
		id    int
		delay float64
	}
	var cands []cand
	for _, v := range path {
		if a.D.Lib.Upsize(a.D.Instances[v].Cell) != nil {
			cands = append(cands, cand{v, a.R.CellDelay[v]})
		}
	}
	out := make([]Candidate, 0, len(cands))
	for len(cands) > 0 {
		best := 0
		for i := range cands {
			if cands[i].delay > cands[best].delay {
				best = i
			}
		}
		out = append(out, Candidate{Target: cands[best].id, Score: cands[best].delay})
		cands = append(cands[:best], cands[best+1:]...)
	}
	return out
}

// Apply implements Transform.
func (t *Upsize) Apply(a *Analysis, c Candidate) (Move, error) {
	return applyResize(a, c.Target, t.Kind(), true)
}

// Accept implements Transform: the target endpoint must improve without
// making the design's worst slack worse. A strict TNS guard would paralyze
// repair inside tightly-coupled cones, where upsizing one gate always
// taxes a sibling path slightly.
func (*Upsize) Accept(before, after Snapshot) bool {
	return after.Slack > before.Slack+Eps && after.WNS >= before.WNS-Eps
}

// Downsize is the recovery transform: shrink a slack-rich gate to recover
// area and leakage. The recovery pass drives it one gate at a time.
type Downsize struct{}

// NewDownsize returns the downsize transform.
func NewDownsize() *Downsize { return &Downsize{} }

// Kind implements Transform.
func (*Downsize) Kind() string { return "downsize" }

// ConnectivityChanging implements Transform.
func (*Downsize) ConnectivityChanging() bool { return false }

// Propose implements Transform: each offered gate with a weaker variant
// available is a candidate, in the offered order.
func (*Downsize) Propose(a *Analysis, fi int, path []int) []Candidate {
	var out []Candidate
	for _, v := range path {
		if a.D.Lib.Downsize(a.D.Instances[v].Cell) != nil {
			out = append(out, Candidate{Target: v})
		}
	}
	return out
}

// Apply implements Transform.
func (t *Downsize) Apply(a *Analysis, c Candidate) (Move, error) {
	return applyResize(a, c.Target, t.Kind(), false)
}

// Accept implements Transform: keep when no violating endpoint got worse
// and no new violation appeared (recovery never trades timing for area).
func (*Downsize) Accept(before, after Snapshot) bool {
	return after.WNS >= before.WNS-Eps && after.TNS >= before.TNS-Eps
}

// applyResize performs the swap shared by Upsize and Downsize.
func applyResize(a *Analysis, id int, kind string, up bool) (Move, error) {
	inst := a.D.Instances[id]
	from := inst.Cell
	var to *cells.Cell
	if up {
		to = a.D.Lib.Upsize(from)
	} else {
		to = a.D.Lib.Downsize(from)
	}
	if to == nil {
		return nil, nil
	}
	if err := a.D.Resize(inst, to); err != nil {
		return nil, nil // ineligible swap: not a fault, just no move
	}
	return &resizeMove{
		kind:  kind,
		inst:  inst,
		from:  from,
		cost:  to.Area - from.Area,
		dirty: ModifiedSet(a, id),
	}, nil
}
