package transform_test

import (
	"encoding/json"
	"testing"

	"mgba/internal/transform"
)

func TestRegistryKindsAndLookup(t *testing.T) {
	reg := &transform.Registry{
		Repair:   []transform.Transform{transform.NewUpsize(), transform.NewBuffer(15, 4), transform.NewRetime(2)},
		Recovery: []transform.Transform{transform.NewDownsize()},
	}
	want := []string{"upsize", "buffer", "retime", "downsize"}
	got := reg.Kinds()
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i, k := range want {
		if got[i] != k {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
		tr := reg.ByKind(k)
		if tr == nil || tr.Kind() != k {
			t.Fatalf("ByKind(%q) = %v", k, tr)
		}
	}
	if reg.ByKind("nope") != nil {
		t.Fatal("ByKind of unknown kind not nil")
	}
}

func TestCapabilityBits(t *testing.T) {
	for _, tc := range []struct {
		tr   transform.Transform
		want bool
	}{
		{transform.NewUpsize(), false},
		{transform.NewDownsize(), false},
		{transform.NewBuffer(15, 4), true},
		{transform.NewRetime(2), true},
	} {
		if got := tc.tr.ConnectivityChanging(); got != tc.want {
			t.Errorf("%s: ConnectivityChanging = %v, want %v", tc.tr.Kind(), got, tc.want)
		}
	}
}

func TestRetimeStateRoundTrip(t *testing.T) {
	r := transform.NewRetime(3)
	blob, err := r.StateBlob()
	if err != nil {
		t.Fatal(err)
	}
	r2 := transform.NewRetime(3)
	if err := r2.Restore(blob); err != nil {
		t.Fatalf("fresh state blob does not restore: %v", err)
	}
	if err := r2.Restore(json.RawMessage(`{"lags":{"4":-1,"9":2}}`)); err != nil {
		t.Fatal(err)
	}
	blob2, err := r2.StateBlob()
	if err != nil {
		t.Fatal(err)
	}
	r3 := transform.NewRetime(3)
	if err := r3.Restore(blob2); err != nil {
		t.Fatal(err)
	}
	blob3, err := r3.StateBlob()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob2) != string(blob3) {
		t.Fatalf("lag state not stable across round trips: %s vs %s", blob2, blob3)
	}
	if err := r3.Restore(json.RawMessage(`{"lags":"garbage"}`)); err == nil {
		t.Fatal("malformed lag state accepted")
	}
}
