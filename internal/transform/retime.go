package transform

import (
	"encoding/json"
	"fmt"

	"mgba/internal/netlist"
)

// Retime operation discriminators (Candidate.Op).
const (
	// OpBackward slides the gate driving the endpoint's D pin across the
	// capture register, into its fanout: the gate's delay leaves the
	// violating stage for the (slack-rich) next one.
	OpBackward = iota
	// OpForward slides the first path gate across the launch register,
	// into its fanin: the gate's delay leaves the violating stage for the
	// previous one.
	OpForward
)

// Retime is the structural repair transform: lag-based movement of a
// register across an adjacent single-input combinational gate (netlist
// RetimeBackward/RetimeForward). It is the move the calibrator's
// structural dirty sets exist for: connectivity changes but the instance
// set does not, so an accepted slide rebinds the calibration session and
// recalibrates incrementally instead of going cold.
//
// The transform tracks a per-register lag (net backward slides) and caps
// its magnitude, bounding how far any register can drift from its placed
// position and preventing back-and-forth oscillation across rounds.
type Retime struct {
	// MaxLag caps |lag| per register.
	MaxLag int
	lags   map[int]int // FF instance ID -> net backward slides
}

// NewRetime returns the retiming transform.
func NewRetime(maxLag int) *Retime {
	return &Retime{MaxLag: maxLag, lags: make(map[int]int)}
}

// Kind implements Transform.
func (*Retime) Kind() string { return "retime" }

// ConnectivityChanging implements Transform: a slide rewires three nets.
// Unlike buffer insertion its moves carry a non-nil DirtySet, so the flow
// stays on the incremental calibration path.
func (*Retime) ConnectivityChanging() bool { return true }

// Lag returns the current lag of register ff (positive = slid backward).
func (t *Retime) Lag(ff int) int { return t.lags[ff] }

// Propose implements Transform: a backward slide at the capture register
// first (it acts on the gate contributing the path's final delay), then a
// forward slide at the launch register. Full legality is the netlist's
// call at Apply time; Propose screens the cheap structural and lag-cap
// conditions so hopeless candidates never reach a trial.
func (t *Retime) Propose(a *Analysis, fi int, path []int) []Candidate {
	if fi < 0 || len(path) == 0 {
		return nil
	}
	var out []Candidate
	d := a.D
	capFF := d.Instances[d.FFs[fi]]
	if g := t.slideGate(d, capFF, OpBackward); g >= 0 && t.lagOK(capFF.ID, +1) {
		out = append(out, Candidate{Target: capFF.ID, Aux: g, Op: OpBackward})
	}
	if launch := d.Instances[path[0]]; launch.IsFF() {
		if g := t.slideGate(d, launch, OpForward); g >= 0 && t.lagOK(launch.ID, -1) {
			out = append(out, Candidate{Target: launch.ID, Aux: g, Op: OpForward})
		}
	}
	return out
}

// slideGate returns the gate a slide of the given direction at ff would
// move, or -1 when the adjacency the slide needs is not there.
func (t *Retime) slideGate(d *netlist.Design, ff *netlist.Instance, op int) int {
	var gid int
	if op == OpBackward {
		if len(ff.Inputs) == 0 {
			return -1
		}
		gid = d.Nets[ff.Inputs[0]].Driver
	} else {
		if ff.Output < 0 {
			return -1
		}
		sinks := d.Nets[ff.Output].Sinks
		if len(sinks) != 1 {
			return -1
		}
		gid = sinks[0]
	}
	if gid < 0 {
		return -1
	}
	g := d.Instances[gid]
	if g.Dead || g.Cell.Kind.IsSequential() || g.Cell.Kind.Inputs() != 1 {
		return -1
	}
	return gid
}

func (t *Retime) lagOK(ff, delta int) bool {
	if t.MaxLag <= 0 {
		return true
	}
	next := t.lags[ff] + delta
	return next >= -t.MaxLag && next <= t.MaxLag
}

// Apply implements Transform. The netlist rejecting the slide (multi-sink
// adjacency, clock entanglement, degenerate loop) makes the candidate
// inapplicable, not a fault.
func (t *Retime) Apply(a *Analysis, c Candidate) (Move, error) {
	ff := a.D.Instances[c.Target]
	g := a.D.Instances[c.Aux]
	var err error
	if c.Op == OpBackward {
		err = a.D.RetimeBackward(ff, g)
	} else {
		err = a.D.RetimeForward(ff, g)
	}
	if err != nil {
		return nil, nil
	}
	delta := +1
	if c.Op == OpForward {
		delta = -1
	}
	t.lags[ff.ID] += delta
	return &retimeMove{t: t, ff: ff, g: g, op: c.Op, dirty: t.dirtyBase(a, ff, g)}, nil
}

// dirtyBase is the structural core of a slide's dirty set: the register,
// the gate, and the driver feeding the register's new D net. The flow
// widens it with the instances whose graph-derived depth or bounding-box
// state moved (which a slide can shift outside the local neighborhood).
func (t *Retime) dirtyBase(a *Analysis, ff, g *netlist.Instance) []int {
	dirty := []int{ff.ID, g.ID}
	seen := map[int]bool{ff.ID: true, g.ID: true}
	for _, in := range []*netlist.Instance{ff, g} {
		for _, nid := range in.Inputs {
			if drv := a.D.Nets[nid].Driver; drv >= 0 && !seen[drv] && !a.G.IsClock(drv) {
				seen[drv] = true
				dirty = append(dirty, drv)
			}
		}
	}
	return dirty
}

// Accept implements Transform: the target endpoint must improve without
// degrading total negative slack — a slide exports delay to an adjacent
// stage, and the TNS guard rejects exports the receiving stage cannot
// afford.
func (*Retime) Accept(before, after Snapshot) bool {
	return after.Slack > before.Slack+Eps && after.TNS >= before.TNS-Eps
}

// retimeState is the Stateful blob checkpointed per run: without the lag
// map a resumed run would forget how far registers have drifted and the
// cap would stop binding.
type retimeState struct {
	Lags map[int]int `json:"lags"`
}

// StateBlob implements Stateful.
func (t *Retime) StateBlob() (json.RawMessage, error) {
	return json.Marshal(retimeState{Lags: t.lags})
}

// Restore implements Stateful.
func (t *Retime) Restore(blob json.RawMessage) error {
	var st retimeState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("transform: bad retime state: %w", err)
	}
	t.lags = st.Lags
	if t.lags == nil {
		t.lags = make(map[int]int)
	}
	return nil
}

type retimeMove struct {
	t     *Retime
	ff, g *netlist.Instance
	op    int
	dirty []int
}

func (m *retimeMove) Kind() string { return "retime" }

func (m *retimeMove) Revert(a *Analysis) error {
	var err error
	if m.op == OpBackward {
		err = a.D.RetimeForward(m.ff, m.g)
	} else {
		err = a.D.RetimeBackward(m.ff, m.g)
	}
	if err != nil {
		return err
	}
	if m.op == OpBackward {
		m.t.lags[m.ff.ID]--
	} else {
		m.t.lags[m.ff.ID]++
	}
	return nil
}

// DirtySet implements Move: non-nil — a slide preserves the instance set,
// so the calibrator absorbs it incrementally after a session rebind.
func (m *retimeMove) DirtySet() []int { return m.dirty }

// Cost implements Move: a slide swaps no cells, so its area delta is zero.
func (m *retimeMove) Cost() float64 { return 0 }
