// Package transform defines the pluggable closure-move framework: the
// Transform interface every timing-closure move implements, the Move
// handle an application returns (revert, dirty set, cost), and the
// Registry the closure scheduler iterates. The four shipped transforms —
// gate upsizing, buffer insertion, register retiming, and the
// recovery-pass downsizing — live here as self-contained implementations;
// the closure package is a generic scheduler over a Registry and carries
// no move-specific logic.
//
// The capability contract is the ConnectivityChanging bit plus the Move's
// DirtySet:
//
//   - !ConnectivityChanging (upsize, downsize): the timing graph is
//     untouched, the flow advances its Result in place with
//     Result.Update(DirtySet) — thousands of trials against one session.
//   - ConnectivityChanging with DirtySet == nil (buffer insertion): the
//     move invalidates the session and gives no usable dirty seed (it
//     creates an instance, which the calibration cache cannot absorb);
//     the flow rebuilds the session and the next mGBA calibration is cold.
//   - ConnectivityChanging with DirtySet != nil (retiming): the move
//     rewires the graph but preserves the instance set, so the flow
//     rebuilds the session, rebinds the persistent calibrator to it, and
//     the dirty set drives an exact *incremental* recalibration.
//
// Acceptance is also per-transform (Accept over before/after timing
// snapshots): repair moves demand target-endpoint improvement under a WNS
// or TNS guard, recovery moves demand no new violations.
package transform

import (
	"encoding/json"
	"math"

	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/sta"
)

// Eps is the slack comparison tolerance shared by every Accept rule: an
// improvement must clear it, a guard may regress by at most it.
const Eps = 1e-9

// Analysis bundles the live timing view transforms propose against. The
// scheduler rebuilds it whenever the graph or result changes; transforms
// must not retain it across calls.
type Analysis struct {
	D *netlist.Design
	G *graph.Graph
	R *sta.Result
}

// Snapshot captures the timing quantities Accept rules arbitrate on.
// Slack is the target endpoint's slack; recovery-pass applications have no
// target endpoint and pass NaN (recovery Accept rules ignore it).
type Snapshot struct {
	Slack float64
	WNS   float64
	TNS   float64
}

// Candidate is one proposed application site. Target and Aux are
// transform-defined IDs (an instance, a net, an FF/gate pair); Op
// discriminates between the transform's move variants; Score records the
// ordering key Propose ranked it by.
type Candidate struct {
	Target int
	Aux    int
	Op     int
	Score  float64
}

// Move is one applied transform instance: the handle to revert it, the
// instances whose timing it touched, and its cost.
type Move interface {
	// Kind echoes the owning transform's kind.
	Kind() string
	// Revert undoes the application exactly. After a successful revert the
	// design is bit-identical to its pre-Apply state.
	Revert(a *Analysis) error
	// DirtySet returns the instances whose timing changed, the seed for
	// incremental Result.Update and calibrator recalibration. nil means
	// the move cannot bound its effect (the session must be rebuilt and
	// the next calibration run cold); connectivity-preserving moves must
	// return a non-nil set.
	DirtySet() []int
	// Cost is the move's area delta (positive grows the design).
	Cost() float64
}

// Transform is one pluggable closure move.
type Transform interface {
	// Kind names the transform; it keys budgets, counters, and the
	// checkpoint per-transform state blobs.
	Kind() string
	// ConnectivityChanging reports whether applications rewire the
	// netlist, invalidating the timing graph and session.
	ConnectivityChanging() bool
	// Propose ranks application sites on the worst path into endpoint fi
	// (a D.FFs position; -1 for recovery-pass calls, where path carries
	// the single instance under consideration). The scheduler tries
	// candidates in the returned order until one is accepted.
	Propose(a *Analysis, fi int, path []int) []Candidate
	// Apply performs the candidate's edit. (nil, nil) means the candidate
	// turned out inapplicable — not an error, the scheduler just moves
	// on; a non-nil error aborts the flow.
	Apply(a *Analysis, c Candidate) (Move, error)
	// Accept decides whether the applied move is kept, given timing
	// snapshots from immediately before and after the application.
	Accept(before, after Snapshot) bool
}

// Stateful is implemented by transforms that carry run state beyond the
// netlist (the retimer's per-register lag map). The closure flow embeds
// the blob in checkpoints (format v2, keyed by Kind) and restores it on
// resume.
type Stateful interface {
	StateBlob() (json.RawMessage, error)
	Restore(blob json.RawMessage) error
}

// Registry is the transform set a closure run schedules over: Repair
// transforms are tried in order on each violating endpoint's worst path;
// Recovery transforms are offered slack-rich gates in the recovery pass.
type Registry struct {
	Repair   []Transform
	Recovery []Transform
}

// Kinds returns the registered kinds, repair first, without duplicates.
func (r *Registry) Kinds() []string {
	seen := make(map[string]bool)
	var out []string
	for _, t := range append(append([]Transform(nil), r.Repair...), r.Recovery...) {
		if !seen[t.Kind()] {
			seen[t.Kind()] = true
			out = append(out, t.Kind())
		}
	}
	return out
}

// ByKind returns the registered transform of the given kind, or nil.
func (r *Registry) ByKind(kind string) Transform {
	for _, t := range r.Repair {
		if t.Kind() == kind {
			return t
		}
	}
	for _, t := range r.Recovery {
		if t.Kind() == kind {
			return t
		}
	}
	return nil
}

// ModifiedSet returns the instances whose timing must be re-evaluated
// after instance id changed cell: the instance itself plus the drivers of
// its input nets (their loads changed).
func ModifiedSet(a *Analysis, id int) []int {
	inst := a.D.Instances[id]
	mod := []int{id}
	for _, nid := range inst.Inputs {
		if drv := a.D.Nets[nid].Driver; drv >= 0 && !a.G.IsClock(drv) {
			mod = append(mod, drv)
		}
	}
	return mod
}

// WorstPath walks the worst timer path into endpoint fi by following
// maximal arrivals backward, returning the instance IDs from launch FF to
// the last combinational gate before the endpoint.
func WorstPath(a *Analysis, fi int) []int {
	d := a.D
	ffID := d.FFs[fi]
	var rev []int
	cur, ok := worstFanin(a, ffID)
	for ok {
		rev = append(rev, cur)
		if d.Instances[cur].IsFF() {
			break
		}
		cur, ok = worstFanin(a, cur)
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

func worstFanin(a *Analysis, v int) (int, bool) {
	best, bestAt := -1, math.Inf(-1)
	for _, e := range a.G.Fanin(v) {
		at := a.R.ArrivalOut[e.From] + a.R.WireDelay[e.From]
		if at > bestAt {
			best, bestAt = int(e.From), at
		}
	}
	return best, best >= 0
}
