package transform

import (
	"mgba/internal/cells"
	"mgba/internal/netlist"
)

// Buffer is the second-choice repair transform: insert a midpoint buffer
// on the path net with the largest wire delay, unloading its driver.
// Under the span-charged wire-delay model splitting a net never shortens
// the wire itself, so the insertion only wins by relieving a weak driver —
// which is exactly when upsizing that driver was vetoed by the WNS guard.
type Buffer struct {
	// MinWireDelay is the wire-delay floor (ps) below which a net is not
	// worth buffering.
	MinWireDelay float64
	// Drive selects the inserted buffer's strength.
	Drive int
}

// NewBuffer returns the buffer-insertion transform.
func NewBuffer(minWireDelay float64, drive int) *Buffer {
	return &Buffer{MinWireDelay: minWireDelay, Drive: drive}
}

// Kind implements Transform.
func (*Buffer) Kind() string { return "buffer" }

// ConnectivityChanging implements Transform: an insertion adds an instance
// and a net, invalidating the graph, the session, and the calibration
// cache (hence the nil DirtySet of its moves).
func (*Buffer) ConnectivityChanging() bool { return true }

// Propose implements Transform: the single path net with the largest wire
// delay at or above the floor (later path position wins ties).
func (t *Buffer) Propose(a *Analysis, fi int, path []int) []Candidate {
	bestNet, bestWD := -1, t.MinWireDelay
	for _, v := range path {
		out := a.D.Instances[v].Output
		if out < 0 {
			continue
		}
		if wd := a.D.Nets[out].WireDelay; wd >= bestWD {
			bestNet, bestWD = out, wd
		}
	}
	if bestNet < 0 {
		return nil
	}
	return []Candidate{{Target: bestNet, Score: bestWD}}
}

// Apply implements Transform. A net the netlist refuses to buffer is not
// an error, just no move; a library without a buffer cell is fatal.
func (t *Buffer) Apply(a *Analysis, c Candidate) (Move, error) {
	buf, err := a.D.Lib.Pick(cells.Buf, t.Drive)
	if err != nil {
		return nil, err
	}
	b, err := a.D.InsertBuffer(c.Target, buf, "")
	if err != nil {
		return nil, nil
	}
	return &bufferMove{buf: b, cost: buf.Area}, nil
}

// Accept implements Transform: the target endpoint must improve without
// degrading total negative slack (an inserted buffer loads nothing it
// should not, so a TNS regression means the insertion backfired).
func (*Buffer) Accept(before, after Snapshot) bool {
	return after.Slack > before.Slack+Eps && after.TNS >= before.TNS-Eps
}

type bufferMove struct {
	buf  *netlist.Instance
	cost float64
}

func (m *bufferMove) Kind() string { return "buffer" }

func (m *bufferMove) Revert(a *Analysis) error {
	return a.D.RemoveBuffer(m.buf)
}

// DirtySet implements Move: nil — the insertion created an instance, which
// the incremental calibration cache cannot absorb; the flow goes cold.
func (m *bufferMove) DirtySet() []int { return nil }

func (m *bufferMove) Cost() float64 { return m.cost }
