// Package par is the repo's single shared parallel-compute layer: one
// persistent worker pool plus blocked parallel-for primitives whose block
// decomposition is a function of the problem shape only — never of the
// worker count — so every result built on them is bit-identical at every
// Parallelism setting.
//
// The determinism contract has two halves. First, Blocks/ForBody split
// [0, n) at fixed grain-sized boundaries; which worker executes which
// block is dynamic (an atomic counter), but a block's range never moves.
// Second, callers that reduce across blocks must combine per-block
// partial results in ascending block order. Slot-writing kernels (each
// index written by exactly one block) are deterministic for free;
// reducing kernels get determinism from the fixed boundaries plus the
// ordered combine. Crucially, ForBody with workers <= 1 still walks the
// same blocks in ascending order, so the sequential path and every
// parallel path share one floating-point summation tree.
//
// Pool lifecycle: the pool is started lazily on first use, holds
// max(2, NumCPU) goroutines for the life of the process, and is never
// torn down. Work is submitted with a non-blocking send; when the queue
// is full (deep nesting, tiny machines) the submitting caller simply
// executes the remaining blocks itself, so nested ForBody calls cannot
// deadlock and a call always completes even if no pool worker ever picks
// it up.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism knob to a concrete worker count using
// the repo-wide convention: 0 means runtime.NumCPU(), anything below 1 is
// sequential.
func Workers(p int) int {
	if p == 0 {
		return runtime.NumCPU()
	}
	if p < 1 {
		return 1
	}
	return p
}

// Body is one blocked computation: Chunk processes block b, which spans
// [lo, hi) of the iteration range. Implementations that must not allocate
// per call keep a reusable Body value and reset its fields between calls.
type Body interface {
	Chunk(b, lo, hi int)
}

// Blocks returns the number of fixed grain-sized blocks [0, n) splits
// into. Block b spans [b*grain, min(n, (b+1)*grain)). The boundaries
// depend only on n and grain, which is what makes blocked results
// bit-identical at every worker count.
func Blocks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// forState is one in-flight ForBody call, shared by the caller and every
// pool worker helping it. States are pooled so a steady-state ForBody
// call performs no heap allocation.
type forState struct {
	body     Body
	n, grain int
	blocks   int
	next     atomic.Int64
	wg       sync.WaitGroup
}

var statePool = sync.Pool{New: func() any { return new(forState) }}

// runTracked wraps run with the pool's activity accounting: every
// goroutine currently draining blocks (caller or worker) counts toward
// the workers-busy saturation signal.
func (st *forState) runTracked() {
	obsActive.SetInt(int(activeCount.Add(1)))
	st.run()
	obsActive.SetInt(int(activeCount.Add(-1)))
}

// run drains blocks from the shared counter until none remain. Dynamic
// assignment balances load; determinism is unaffected because each block's
// range is fixed and blocks touch disjoint slots (or slotted partials).
func (st *forState) run() {
	for {
		b := int(st.next.Add(1)) - 1
		if b >= st.blocks {
			return
		}
		lo := b * st.grain
		hi := lo + st.grain
		if hi > st.n {
			hi = st.n
		}
		st.body.Chunk(b, lo, hi)
	}
}

var (
	poolOnce sync.Once
	queue    chan *forState
)

func startPool() {
	w := runtime.NumCPU()
	if w < 2 {
		w = 2 // always at least one helper, so -race sees real concurrency
	}
	queue = make(chan *forState, 8*w)
	for i := 0; i < w; i++ {
		go func() {
			for st := range queue {
				st.runTracked()
				st.wg.Done()
			}
		}()
	}
}

// submit offers st to the pool without blocking; a full queue is reported
// to the caller, which then does the work itself.
func submit(st *forState) bool {
	poolOnce.Do(startPool)
	select {
	case queue <- st:
		obsSubmits.Inc()
		return true
	default:
		obsQueueFull.Inc()
		return false
	}
}

// ForBody runs body.Chunk over every grain-sized block of [0, n), using
// up to `workers` concurrent executors (the caller participates, so at
// most workers-1 pool goroutines are recruited). With workers <= 1 the
// blocks run sequentially in ascending order — the same boundaries, the
// same summation trees, hence bit-identical results at every worker
// count. ForBody returns only after every block has completed.
func ForBody(workers, n, grain int, body Body) {
	if grain < 1 {
		grain = 1
	}
	blocks := Blocks(n, grain)
	if blocks == 0 {
		return
	}
	if workers <= 1 || blocks == 1 {
		for b := 0; b < blocks; b++ {
			lo := b * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body.Chunk(b, lo, hi)
		}
		return
	}
	st := statePool.Get().(*forState)
	st.body, st.n, st.grain, st.blocks = body, n, grain, blocks
	st.next.Store(0)
	helpers := workers - 1
	if helpers > blocks-1 {
		helpers = blocks - 1
	}
	st.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		if !submit(st) {
			// Queue full: release the unsubmitted shares and let the
			// caller finish the remaining blocks itself.
			for ; i < helpers; i++ {
				st.wg.Done()
			}
			break
		}
	}
	st.runTracked()
	// Help-while-waiting: drain other in-flight states from the queue
	// before blocking. A waiter only blocks once the queue is empty, at
	// which point every outstanding share (of any state) is actively being
	// executed by some goroutine, so the wait always terminates; without
	// this, nested ForBody calls on a saturated pool could all park in
	// Wait with their work stranded in the queue.
	for {
		select {
		case other := <-queue:
			other.runTracked()
			other.wg.Done()
		default:
			st.wg.Wait()
			st.body = nil
			statePool.Put(st)
			return
		}
	}
}

// funcBody adapts a plain function to Body for call sites where a
// per-call closure allocation is acceptable.
type funcBody func(b, lo, hi int)

func (f funcBody) Chunk(b, lo, hi int) { f(b, lo, hi) }

// For runs fn over [0, n) in grain-sized blocks. It is the convenience
// form of ForBody for slot-writing loops that do not need the block
// index; it allocates one closure per call, so allocation-free hot paths
// should implement Body on a reusable struct instead.
func For(workers, n, grain int, fn func(lo, hi int)) {
	ForBody(workers, n, grain, funcBody(func(_, lo, hi int) { fn(lo, hi) }))
}

// Run invokes fn exactly `workers` times, up to `workers`-way
// concurrently (the caller participates). It exists for fan-outs that do
// their own dynamic load balancing — each fn invocation typically loops
// over an atomic work counter with worker-local scratch. fn must be safe
// to call concurrently; with workers <= 1 it is called once, inline.
func Run(workers int, fn func()) {
	if workers <= 1 {
		fn()
		return
	}
	ForBody(workers, workers, 1, funcBody(func(_, _, _ int) { fn() }))
}
