package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mgba/internal/obs"
)

// blockingBody parks every chunk on release and counts entries, so the
// test can hold the whole pool busy at a known point. A call's two chunks
// may both run (caller first, then worker or post-release caller), so the
// count is a lower bound ratchet, not a balanced WaitGroup.
type blockingBody struct {
	entered *atomic.Int64
	release chan struct{}
}

func (b *blockingBody) Chunk(_, _, _ int) {
	b.entered.Add(1)
	<-b.release
}

// TestPoolSaturationObservable drives the shared pool past its queue
// capacity and asserts the saturation signal is visible: submits land in
// par.pool.submits, bounced submits in par.pool.queue_full, and Active
// reports busy executors while the pool is held.
func TestPoolSaturationObservable(t *testing.T) {
	obs.Enable(true)
	defer obs.Enable(false)
	obs.Reset()

	w := runtime.NumCPU()
	if w < 2 {
		w = 2
	}
	// Each ForBody(2, 2, 1, ...) submits one share and runs one block in
	// its calling goroutine. Workers fill first, then the queue (cap 8*w);
	// everything beyond that must bounce and be executed by its caller.
	calls := 10*w + 4
	release := make(chan struct{})
	var entered atomic.Int64
	var done sync.WaitGroup
	for i := 0; i < calls; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			ForBody(2, 2, 1, &blockingBody{entered: &entered, release: release})
		}()
	}
	// Every caller's own block enters Chunk and parks; wait until all of
	// them (at least) are inside the pool.
	for deadline := time.Now().Add(10 * time.Second); entered.Load() < int64(calls); {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d chunks entered the pool", entered.Load(), calls)
		}
		time.Sleep(time.Millisecond)
	}

	if a := Active(); a < w {
		t.Errorf("Active() = %d while %d callers are parked in the pool; want >= %d", a, calls, w)
	}
	snap := obs.Snapshot()
	submits, _ := snap["par.pool.submits"].(int64)
	full, _ := snap["par.pool.queue_full"].(int64)
	if submits == 0 {
		t.Error("par.pool.submits never incremented")
	}
	if full == 0 {
		t.Errorf("par.pool.queue_full = 0 after %d concurrent calls against a %d-worker pool", calls, w)
	}

	close(release)
	done.Wait()
	if a := Active(); a != 0 {
		t.Errorf("Active() = %d after every call drained; want 0", a)
	}
}
