package par

import (
	"sync/atomic"

	"mgba/internal/obs"
)

// Saturation metrics for the shared pool. A submit lands in the queue
// (par.pool.submits) or bounces off a full queue and is executed by the
// caller instead (par.pool.queue_full); the ratio is the pool's
// saturation signal. par.pool.active tracks how many goroutines are
// currently inside ForBody block execution (callers and pool workers
// alike), so a scrape shows whether the workers are busy rather than the
// queue merely deep. All three are plain obs primitives: one atomic op
// when obs is enabled, a load-and-branch when it is not, so the
// determinism and zero-alloc contracts of the pool are untouched.
var (
	obsSubmits   = obs.NewCounter("par.pool.submits")
	obsQueueFull = obs.NewCounter("par.pool.queue_full")
	obsActive    = obs.NewGauge("par.pool.active")
)

// active mirrors obsActive for callers that need the instantaneous value
// regardless of whether obs is enabled (obs gauges drop writes while
// disabled). The calibration daemon reads it to publish a workers-busy
// signal alongside its own admission gauges.
var activeCount atomic.Int64

// Active returns the number of goroutines currently executing ForBody
// blocks (callers included). It is a point-in-time saturation signal:
// values at or above the worker count mean new parallel work will queue
// or be executed inline by its submitter.
func Active() int { return int(activeCount.Load()) }
