package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	for p, want := range map[int]int{-3: 1, 1: 1, 2: 2, 8: 8} {
		if got := Workers(p); got != want {
			t.Fatalf("Workers(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestBlocks(t *testing.T) {
	cases := []struct{ n, grain, want int }{
		{0, 10, 0}, {-5, 10, 0}, {1, 10, 1}, {10, 10, 1},
		{11, 10, 2}, {100, 10, 10}, {7, 0, 7}, {7, -1, 7},
	}
	for _, c := range cases {
		if got := Blocks(c.n, c.grain); got != c.want {
			t.Fatalf("Blocks(%d, %d) = %d, want %d", c.n, c.grain, got, c.want)
		}
	}
}

// TestForCoversRange checks every index is visited exactly once at every
// worker count, including degenerate grains.
func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 33} {
		for _, grain := range []int{0, 1, 7, 64, 1000} {
			n := 501
			hits := make([]int32, n)
			For(workers, n, grain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d grain=%d: index %d visited %d times", workers, grain, i, h)
				}
			}
		}
	}
}

type rangeRecorder struct {
	lo, hi []int64 // slot-written per block
}

func (r *rangeRecorder) Chunk(b, lo, hi int) {
	r.lo[b] = int64(lo)
	r.hi[b] = int64(hi)
}

// TestForBodyFixedBoundaries checks the block decomposition is identical
// at every worker count — the heart of the determinism contract.
func TestForBodyFixedBoundaries(t *testing.T) {
	n, grain := 1003, 57
	blocks := Blocks(n, grain)
	ref := &rangeRecorder{lo: make([]int64, blocks), hi: make([]int64, blocks)}
	ForBody(1, n, grain, ref)
	if ref.lo[0] != 0 || ref.hi[blocks-1] != int64(n) {
		t.Fatalf("serial decomposition does not span [0, %d): %v %v", n, ref.lo, ref.hi)
	}
	for _, workers := range []int{2, 3, 8} {
		got := &rangeRecorder{lo: make([]int64, blocks), hi: make([]int64, blocks)}
		ForBody(workers, n, grain, got)
		for b := 0; b < blocks; b++ {
			if got.lo[b] != ref.lo[b] || got.hi[b] != ref.hi[b] {
				t.Fatalf("workers=%d: block %d spans [%d,%d), want [%d,%d)",
					workers, b, got.lo[b], got.hi[b], ref.lo[b], ref.hi[b])
			}
		}
	}
}

func TestRunInvocationCount(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		var calls atomic.Int64
		Run(workers, func() { calls.Add(1) })
		if int(calls.Load()) != workers {
			t.Fatalf("Run(%d) invoked fn %d times", workers, calls.Load())
		}
	}
}

// TestNestedForBody checks that a For inside a pool-executed block cannot
// deadlock: the non-blocking submit path guarantees the caller can always
// finish its own blocks.
func TestNestedForBody(t *testing.T) {
	var total atomic.Int64
	For(8, 64, 1, func(lo, hi int) {
		For(8, 64, 1, func(ilo, ihi int) {
			total.Add(int64(ihi - ilo))
		})
	})
	if total.Load() != 64*64 {
		t.Fatalf("nested For covered %d indices, want %d", total.Load(), 64*64)
	}
}

// TestForBodyReusedState hammers the pooled forState across many calls to
// catch reuse races under -race.
func TestForBodyReusedState(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		n := 97 + iter%13
		sum := make([]int64, Blocks(n, 5))
		ForBody(4, n, 5, funcBody(func(b, lo, hi int) { sum[b] = int64(hi - lo) }))
		var got int64
		for _, s := range sum {
			got += s
		}
		if got != int64(n) {
			t.Fatalf("iter %d: covered %d of %d", iter, got, n)
		}
	}
}
