package closure

import (
	"encoding/json"
	"fmt"

	"mgba/internal/netio"
	"mgba/internal/obs"
	"mgba/internal/transform"
)

// ckptState is the flow-progress blob embedded in a netio checkpoint. The
// design and weights live in the checkpoint envelope; this records where
// to pick the flow back up and the counters accumulated so far. Kinds
// (per-transform-kind accepted counts) arrived with checkpoint format v2;
// a v1 state decodes with nil Kinds and the counts are derived from the
// historical trio on restore.
type ckptState struct {
	Timer           int  `json:"timer"`
	Phase           int  `json:"phase"`
	Round           int  `json:"round"`
	RecoveryPos     int  `json:"recovery_pos"`
	SinceCalib      int  `json:"since_calib"`
	FinalCalibrated bool `json:"final_calibrated,omitempty"`

	Transforms   int            `json:"transforms"`
	Upsized      int            `json:"upsized"`
	Downsized    int            `json:"downsized"`
	BuffersAdded int            `json:"buffers_added"`
	Kinds        map[string]int `json:"kinds,omitempty"`
	Calibrations int            `json:"calibrations"`
	Validations  int            `json:"validations"`
	Degraded     int            `json:"degraded_calibrations"`
	Checkpoints  int            `json:"checkpoints"`
	Faults       []string       `json:"faults,omitempty"`
}

// restore loads checkpointed flow state and counters into a fresh flow.
func (f *flow) restore(st *ckptState, weights []float64) {
	f.weights = weights
	f.transforms = st.SinceCalib
	f.recoveryPos = st.RecoveryPos
	f.finalCalibrated = st.FinalCalibrated
	r := f.res
	r.Resumed = true
	r.Transforms = st.Transforms
	r.Upsized = st.Upsized
	r.Downsized = st.Downsized
	r.BuffersAdded = st.BuffersAdded
	r.Calibrations = st.Calibrations
	r.Validations = st.Validations
	r.DegradedCalibrations = st.Degraded
	r.Checkpoints = st.Checkpoints
	r.Faults = append([]string(nil), st.Faults...)
	if st.Kinds != nil {
		r.Kinds = make(map[string]int, len(st.Kinds))
		for k, n := range st.Kinds {
			r.Kinds[k] = n
		}
		return
	}
	// v1 checkpoint: the trio is the complete per-kind record.
	if st.Upsized+st.Downsized+st.BuffersAdded > 0 {
		r.Kinds = map[string]int{}
		for k, n := range map[string]int{
			"upsize": st.Upsized, "downsize": st.Downsized, "buffer": st.BuffersAdded,
		} {
			if n > 0 {
				r.Kinds[k] = n
			}
		}
	}
}

// restoreKinds hands checkpointed per-transform state blobs back to the
// stateful transforms of this run's registry. A blob for a kind the run
// does not enable is ignored (the design it describes is still the one
// being resumed); a corrupt blob for an enabled transform is a clean
// resume error, never a panic.
func (f *flow) restoreKinds(kinds map[string]json.RawMessage) error {
	for kind, blob := range kinds {
		tr := f.reg.ByKind(kind)
		if tr == nil {
			continue
		}
		st, ok := tr.(transform.Stateful)
		if !ok {
			continue
		}
		if err := st.Restore(blob); err != nil {
			return fmt.Errorf("closure: checkpoint %s state: %w", kind, err)
		}
	}
	return nil
}

// snapshot builds the serializable flow-progress state of a checkpoint.
// Faults is copied defensively: f.res.Faults keeps growing after the
// snapshot is taken (a failed checkpoint appends to it itself), so the
// state to be marshalled must not alias the live slice.
func (f *flow) snapshot() ckptState {
	var kinds map[string]int
	if len(f.res.Kinds) > 0 {
		kinds = make(map[string]int, len(f.res.Kinds))
		for k, n := range f.res.Kinds {
			kinds[k] = n
		}
	}
	return ckptState{
		Timer:           int(f.opt.Timer),
		Phase:           int(f.curPhase),
		Round:           f.curRound,
		RecoveryPos:     f.recoveryPos,
		SinceCalib:      f.transforms,
		FinalCalibrated: f.finalCalibrated,
		Transforms:      f.res.Transforms,
		Upsized:         f.res.Upsized,
		Downsized:       f.res.Downsized,
		BuffersAdded:    f.res.BuffersAdded,
		Kinds:           kinds,
		Calibrations:    f.res.Calibrations,
		Validations:     f.res.Validations,
		Degraded:        f.res.DegradedCalibrations,
		Checkpoints:     f.res.Checkpoints + 1,
		Faults:          append([]string(nil), f.res.Faults...),
	}
}

// kindBlobs collects the per-transform state blobs of the registry's
// stateful transforms for the checkpoint envelope. A transform that fails
// to serialize is recorded as a fault and skipped — its state starts
// fresh on resume, which degrades move scheduling but never the design.
func (f *flow) kindBlobs() map[string]json.RawMessage {
	var kinds map[string]json.RawMessage
	for _, k := range f.reg.Kinds() {
		st, ok := f.reg.ByKind(k).(transform.Stateful)
		if !ok {
			continue
		}
		blob, err := st.StateBlob()
		if err != nil {
			f.res.Faults = append(f.res.Faults, fmt.Sprintf("checkpoint %s state: %v", k, err))
			continue
		}
		if kinds == nil {
			kinds = make(map[string]json.RawMessage)
		}
		kinds[k] = blob
	}
	return kinds
}

// checkpoint atomically writes the current design, weights and flow state
// to Options.CheckpointPath. Failures are recorded as faults, not errors:
// losing a checkpoint must never lose the run.
func (f *flow) checkpoint() {
	f.sinceCkpt = 0
	if f.opt.CheckpointPath == "" {
		return
	}
	st := f.snapshot()
	blob, err := json.Marshal(&st)
	if err == nil {
		err = netio.SaveCheckpointFile(f.opt.CheckpointPath, &netio.Checkpoint{
			Design:  f.d,
			Weights: f.weights,
			State:   blob,
			Kinds:   f.kindBlobs(),
		})
	}
	if err != nil {
		obsCheckpointsFail.Inc()
		obs.Event("checkpoint_failed", "err", err.Error())
		f.res.Faults = append(f.res.Faults, fmt.Sprintf("checkpoint: %v", err))
		return
	}
	obsCheckpointsOK.Inc()
	f.res.Checkpoints++
	if f.opt.OnCheckpoint != nil {
		f.opt.OnCheckpoint(f.opt.CheckpointPath)
	}
}

// noteTransform accounts one accepted transform and writes a periodic
// checkpoint when the cadence says so.
func (f *flow) noteTransform() {
	obsTransforms.Inc()
	f.res.Transforms++
	f.transforms++
	f.sinceCkpt++
	if f.opt.CheckpointEvery > 0 && f.sinceCkpt >= f.opt.CheckpointEvery {
		f.checkpoint()
	}
}

// noteKind accounts one accepted transform of the given kind: the Kinds
// map, the historical derived trio, and the per-kind observability.
func (f *flow) noteKind(kind string) {
	if f.res.Kinds == nil {
		f.res.Kinds = make(map[string]int)
	}
	f.res.Kinds[kind]++
	switch kind {
	case "upsize":
		f.res.Upsized++
	case "downsize":
		f.res.Downsized++
	case "buffer":
		f.res.BuffersAdded++
	}
	if m, ok := f.kindObs[kind]; ok {
		m.accepted.Inc()
	}
	obs.Event("transform_accepted", "kind", kind)
}

// noteReject accounts one applied-but-rejected transform trial.
func (f *flow) noteReject(kind string) {
	if m, ok := f.kindObs[kind]; ok {
		m.rejected.Inc()
	}
	obs.Event("transform_rejected", "kind", kind)
}
