package closure

import "mgba/internal/obs"

// Closure-flow metrics: accepted transforms, checkpoint outcomes,
// repair-loop progress. Phase timings come from the closure.<phase>
// spans opened in run(). Observation-only per the obs inertness
// contract — in particular the violated-endpoints gauge reuses counts
// the flow computes anyway.
var (
	obsTransforms      = obs.NewCounter("closure.transforms")
	obsCheckpointsOK   = obs.NewCounter("closure.checkpoints.ok")
	obsCheckpointsFail = obs.NewCounter("closure.checkpoints.failed")
	obsCalibrations    = obs.NewCounter("closure.calibrations")
	obsValidations     = obs.NewCounter("closure.validations")
	obsRepairRounds    = obs.NewCounter("closure.repair.rounds")
	obsViolated        = obs.NewGauge("closure.last.violated_endpoints")
)

// kindMetrics is the per-transform-kind counter pair, resolved once at
// flow construction (obs.NewCounter is idempotent per name, so every run
// of the same registry shares the same counters).
type kindMetrics struct {
	accepted *obs.Counter
	rejected *obs.Counter
}

func kindMetricsFor(kind string) kindMetrics {
	return kindMetrics{
		accepted: obs.NewCounter("closure.transforms." + kind),
		rejected: obs.NewCounter("closure.transforms." + kind + ".rejected"),
	}
}

// phaseName names a flow phase for spans and events.
func phaseName(ph phase) string {
	switch ph {
	case phaseRepair:
		return "repair"
	case phaseRecovery:
		return "recovery"
	case phaseFinal:
		return "final"
	default:
		return "done"
	}
}
