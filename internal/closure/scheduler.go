package closure

import "fmt"

// Scheduler picks the next endpoint the repair loop works on. The seam
// exists so endpoint-ordering policies can be swapped without touching
// the flow: the paper's greedy worst-first order is the default, and the
// round-robin alternative proves the interface carries a genuinely
// different policy (a metaheuristic scheduler plugs in the same way).
type Scheduler interface {
	// Next returns the D.FFs position to repair next, or -1 when no
	// violating endpoint outside skip remains. slack is the per-endpoint
	// timer slack; skip marks endpoints the current round gave up on.
	Next(slack []float64, skip map[int]bool) int
}

// buildScheduler resolves Options.Scheduler. Scheduler state is run-local
// and not checkpointed: a resumed round-robin run restarts its cursor,
// which only perturbs intra-round ordering (the default greedy policy is
// stateless and resumes exactly).
func buildScheduler(name string) (Scheduler, error) {
	switch name {
	case "", "greedy":
		return greedyScheduler{}, nil
	case "roundrobin":
		return &roundRobinScheduler{}, nil
	default:
		return nil, fmt.Errorf("closure: unknown scheduler %q", name)
	}
}

// greedyScheduler is the historical policy: always the most negative
// remaining endpoint.
type greedyScheduler struct{}

func (greedyScheduler) Next(slack []float64, skip map[int]bool) int {
	worst, worstSlack := -1, 0.0
	for fi, s := range slack {
		if skip[fi] {
			continue
		}
		if s < worstSlack {
			worst, worstSlack = fi, s
		}
	}
	return worst
}

// roundRobinScheduler cycles through violating endpoints in index order,
// spreading repair effort instead of hammering the worst endpoint until
// it closes or stalls.
type roundRobinScheduler struct {
	cursor int
}

func (s *roundRobinScheduler) Next(slack []float64, skip map[int]bool) int {
	n := len(slack)
	if n == 0 {
		return -1
	}
	for i := 0; i < n; i++ {
		fi := (s.cursor + i) % n
		if !skip[fi] && slack[fi] < 0 {
			s.cursor = fi + 1
			return fi
		}
	}
	return -1
}
