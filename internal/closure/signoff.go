package closure

import (
	"math"

	"mgba/internal/engine"
	"mgba/internal/graph"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

// Signoff measures WNS/TNS with PBA: for every endpoint, the worst PBA
// slack among its worst GBA paths. This is the golden yardstick the paper
// uses for its QoR tables (PBA "sign-off stage" timing).
func Signoff(g *graph.Graph, cfg sta.Config) (wns, tns float64) {
	return signoff(engine.NewSession(g), cfg)
}

// signoff is Signoff against an existing timing session.
func signoff(s *engine.Session, cfg sta.Config) (wns, tns float64) {
	g := s.G
	cfg.Weights = nil
	r := s.Run(cfg)
	defer r.Release()
	an := pba.NewAnalyzer(r)
	for fi, ffID := range g.D.FFs {
		if len(g.Fanin(ffID)) == 0 {
			continue
		}
		worst := math.Inf(1)
		// The PBA-worst path is among the GBA-worst few: GBA ordering is
		// a conservative bound on the PBA ordering.
		for _, p := range an.KWorst(fi, 10, nil) {
			if s := an.Retime(p).Slack; s < worst {
				worst = s
			}
		}
		// The endpoint's PBA slack is the slack of its PBA-worst path,
		// i.e. the minimum over paths of the per-path slack. KWorst
		// returns GBA-worst-first, so taking the min over the first few
		// is the standard sign-off approximation.
		if math.IsInf(worst, 1) {
			continue
		}
		if worst < 0 {
			tns += worst
			if worst < wns {
				wns = worst
			}
		}
	}
	return wns, tns
}
