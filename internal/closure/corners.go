package closure

import (
	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/sta"
)

// Multi-corner closure: when Options.Core.Corners names N>=2 corners, the
// calibrator hands the flow one fitted mGBA view per corner. The flow
// keeps every extra corner's view advanced in lockstep with the selection
// corner's (in-place Update for resizes, fresh runs across session
// rebuilds), schedules repairs against the merged worst-corner slack, and
// vetoes any transform that regresses a corner's WNS — a move is only
// accepted when no corner gets worse, so closing the selection corner
// never reopens another.

// cornerView is one extra corner's live timing view inside the flow.
type cornerView struct {
	name string
	cfg  sta.Config // the corner's analysis config, Weights unset
	r    *sta.Result
}

// CornerQoR is one corner's final timing in a multi-corner Result.
type CornerQoR struct {
	Name string  `json:"name"`
	WNS  float64 `json:"wns"`
	TNS  float64 `json:"tns"`
}

// cornersActive reports whether the flow maintains extra corner views.
func (f *flow) cornersActive() bool {
	return f.opt.Timer == TimerMGBA && len(f.opt.Core.Corners) > 1
}

// adoptCorners takes over the extra corners' fitted views from a fresh
// calibration, releasing the previous generation's buffers.
func (f *flow) adoptCorners(model *core.Model) {
	f.releaseCorners()
	if len(model.Corners) < 2 {
		return
	}
	f.cviews = make([]*cornerView, 0, len(model.Corners)-1)
	for _, cf := range model.Corners[1:] {
		f.cviews = append(f.cviews, &cornerView{name: cf.Spec.Name, cfg: cf.Cfg, r: cf.MGBA})
	}
}

// releaseCorners returns every corner view's buffers to its session pool.
func (f *flow) releaseCorners() {
	for _, cv := range f.cviews {
		if cv.r != nil {
			cv.r.Release()
		}
	}
	f.cviews = nil
}

// refreshCorners re-times every corner on the flow's current session
// under the current weights — the corner half of refresh(), used across
// the session rebuilds that drop the calibrator (buffer trials).
func (f *flow) refreshCorners(weights []float64) {
	if len(f.cviews) == 0 {
		return
	}
	views := make([]*cornerView, 0, len(f.cviews))
	for _, cv := range f.cviews {
		// The old view belongs to the superseded session; just drop it.
		cfg := cv.cfg
		cfg.Weights = weights
		views = append(views, &cornerView{name: cv.name, cfg: cv.cfg, r: f.sess.Run(cfg)})
	}
	f.cviews = views
}

// runCornersOn times every corner on a trial session (structural moves),
// without touching the flow's own views.
func (f *flow) runCornersOn(sess *engine.Session, weights []float64) []*sta.Result {
	if len(f.cviews) == 0 {
		return nil
	}
	out := make([]*sta.Result, len(f.cviews))
	for i, cv := range f.cviews {
		cfg := cv.cfg
		cfg.Weights = weights
		out[i] = sess.Run(cfg)
	}
	return out
}

// cornerWNS snapshots each corner's WNS before a trial.
func (f *flow) cornerWNS() []float64 {
	if len(f.cviews) == 0 {
		return nil
	}
	out := make([]float64, len(f.cviews))
	for i, cv := range f.cviews {
		out[i] = cv.r.WNS
	}
	return out
}

// updateCorners advances every corner view in place over a
// connectivity-preserving move's dirty set.
func (f *flow) updateCorners(mod []int) {
	for _, cv := range f.cviews {
		cv.r.Update(mod)
	}
}

// cornersRegressed is the acceptance veto: true when any corner's WNS
// fell below where it stood before the trial (a failing corner may not
// get worse; a passing corner may not start failing). The epsilon
// absorbs the engine's floating-point noise.
func (f *flow) cornersRegressed(before []float64) bool {
	for i, cv := range f.cviews {
		if regressedWNS(before[i], cv.r.WNS) {
			return true
		}
	}
	return false
}

func regressedWNS(before, after float64) bool {
	floor := before
	if floor > 0 {
		floor = 0
	}
	return after < floor-1e-9
}

// vetoedByCorners folds the veto over a trial session's corner results.
func vetoedByCorners(before []float64, after []*sta.Result) bool {
	for i, r := range after {
		if regressedWNS(before[i], r.WNS) {
			return true
		}
	}
	return false
}

// mergedSlack returns the per-endpoint slack the scheduler and the
// violation count run on: the worst slack over every corner when extra
// corners are live, the flow's own view otherwise. The buffer is reused
// across calls; callers must not retain it.
func (f *flow) mergedSlack() []float64 {
	if len(f.cviews) == 0 {
		return f.r.Slack
	}
	if cap(f.mergedBuf) < len(f.r.Slack) {
		f.mergedBuf = make([]float64, len(f.r.Slack))
	}
	merged := f.mergedBuf[:len(f.r.Slack)]
	copy(merged, f.r.Slack)
	for _, cv := range f.cviews {
		for i, s := range cv.r.Slack {
			if s < merged[i] {
				merged[i] = s
			}
		}
	}
	return merged
}

// cornerQoR reports each live corner's final timing for the Result.
func (f *flow) cornerQoR() []CornerQoR {
	if len(f.cviews) == 0 {
		return nil
	}
	out := make([]CornerQoR, len(f.cviews))
	for i, cv := range f.cviews {
		out[i] = CornerQoR{Name: cv.name, WNS: cv.r.WNS, TNS: cv.r.TNS}
	}
	return out
}
