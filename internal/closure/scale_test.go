package closure_test

import (
	"context"
	"os"
	"testing"
	"time"

	"mgba/internal/closure"
	"mgba/internal/gen"
)

// TestScaleSmoke100k is the CI scale smoke: generate the 100k-gate
// gen.Large design, run the mGBA closure flow through a cold calibration
// and ten accepted transforms with a mid-flow recalibration, and require
// it to finish uninterrupted and fault-free. Gated behind MGBA_SCALE=1
// (scripts/smoke_scale.sh); the wall-clock ceiling is the test timeout
// the script passes.
func TestScaleSmoke100k(t *testing.T) {
	if os.Getenv("MGBA_SCALE") == "" {
		t.Skip("set MGBA_SCALE=1 to run the 100k scale smoke")
	}
	t0 := time.Now()
	d, err := gen.Generate(gen.Large(100_000))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("generate: %v (%d instances)", time.Since(t0), len(d.Instances))

	opt := closure.DefaultOptions(closure.TimerMGBA)
	opt.MaxTransforms = 10
	opt.RecalibrateEvery = 5 // force a mid-flow recalibration within the budget
	t0 = time.Now()
	res, err := closure.Run(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("closure: %v (%d transforms, %d calibrations, WNS %.1f -> signoff %.1f)",
		time.Since(t0), res.Transforms, res.Calibrations, res.TimerWNS, res.SignoffWNS)
	if res.Interrupted {
		t.Fatalf("flow interrupted: %s", res.StopReason)
	}
	if res.Transforms != opt.MaxTransforms {
		t.Fatalf("accepted %d transforms, want the full budget of %d", res.Transforms, opt.MaxTransforms)
	}
	if res.Calibrations < 2 {
		t.Fatalf("only %d calibrations; the mid-flow recalibration never ran", res.Calibrations)
	}
	if len(res.Faults) > 0 {
		t.Fatalf("flow absorbed faults: %v", res.Faults)
	}
	// One-rung ladder falls are expected on warm-started recalibrations
	// whose warm start is already optimal (a tiny dirty set leaves no
	// "net improvement" for the row-sampled solver to show); only a fall
	// all the way to identity weights is a fault, asserted above.
	if res.DegradedCalibrations > 0 {
		t.Logf("%d of %d calibrations fell a ladder rung (accepted fits, no identity fallback)",
			res.DegradedCalibrations, res.Calibrations)
	}
}
