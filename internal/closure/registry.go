package closure

import (
	"fmt"
	"math"

	"mgba/internal/transform"
)

// BufferDrive is the drive strength of inserted buffers (the historical
// hard-coded choice).
const BufferDrive = 4

// buildRegistry materializes Options.Transforms into a transform registry
// plus the per-kind accepted-transform budgets. The default (nil) list is
// the historical pair — upsize then buffer; recovery always runs the
// downsize transform. Unknown or duplicated transform names are
// configuration errors.
func buildRegistry(opt Options) (*transform.Registry, map[string]int, error) {
	names := opt.Transforms
	if names == nil {
		names = []string{"upsize", "buffer"}
	}
	reg := &transform.Registry{}
	for _, name := range names {
		if reg.ByKind(name) != nil {
			return nil, nil, fmt.Errorf("closure: duplicate transform %q", name)
		}
		var tr transform.Transform
		switch name {
		case "upsize":
			tr = transform.NewUpsize()
		case "buffer":
			tr = transform.NewBuffer(opt.WireDelayForBuf, BufferDrive)
		case "retime":
			lag := opt.RetimeMaxLag
			if lag == 0 {
				lag = DefaultRetimeMaxLag
			}
			tr = transform.NewRetime(lag)
		default:
			return nil, nil, fmt.Errorf("closure: unknown transform %q", name)
		}
		reg.Repair = append(reg.Repair, tr)
	}
	reg.Recovery = []transform.Transform{transform.NewDownsize()}

	budgets := make(map[string]int)
	for _, k := range reg.Kinds() {
		b, ok := opt.KindBudgets[k]
		if !ok {
			switch k {
			case "buffer":
				b = opt.MaxBuffers
			case "retime":
				b = DefaultRetimeBudget
			default:
				b = math.MaxInt
			}
		}
		if b < 0 {
			return nil, nil, fmt.Errorf("closure: negative budget for %q", k)
		}
		budgets[k] = b
	}
	return reg, budgets, nil
}
