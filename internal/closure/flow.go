package closure

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/graph"
	"mgba/internal/netio"
	"mgba/internal/netlist"
	"mgba/internal/obs"
	"mgba/internal/pba"
	"mgba/internal/sta"
	"mgba/internal/transform"
)

// phase identifies where in the flow a run (or a checkpoint of one) is.
type phase int

const (
	phaseRepair   phase = iota // round-based repair loop
	phaseRecovery              // area/leakage recovery pass
	phaseFinal                 // mGBA: final recalibrate + repair
	phaseDone                  // nothing left but finish()
)

// flow carries the mutable optimization state. The timing session is
// rebuilt only on connectivity changes (buffer insertion, retiming); the
// thousands of resize trials in between run through Result.Update against
// the same session, allocating nothing.
type flow struct {
	d   *netlist.Design
	opt Options
	ctx context.Context

	reg     *transform.Registry
	budgets map[string]int
	sched   Scheduler
	kindObs map[string]kindMetrics

	g       *graph.Graph
	sess    *engine.Session
	r       *sta.Result
	weights []float64 // nil for GBA

	// cal is the persistent mGBA calibrator; nil until the first
	// calibration and reset whenever the session is rebuilt for a move
	// the calibration cache cannot absorb (buffer insertion). calStale
	// marks the calibrator as bound to a superseded session after an
	// instance-preserving structural move (retiming); the next calibrate
	// rebinds it instead of discarding it. dirty accumulates the
	// instances whose timing changed through accepted transforms since
	// the last calibration — the seed set for the calibrator's
	// incremental re-enumeration.
	cal      *core.Calibrator
	calStale bool
	dirty    map[int]bool

	// cviews holds the extra corners' live mGBA views of a multi-corner
	// run (empty otherwise), kept in lockstep with r; mergedBuf is the
	// reused worst-corner slack buffer (see corners.go).
	cviews    []*cornerView
	mergedBuf []float64

	res        *Result
	transforms int // transforms since the last recalibration

	// Checkpoint/resume bookkeeping.
	curPhase        phase
	curRound        int
	recoveryPos     int // next f.g.Topo index for the recovery pass
	finalCalibrated bool
	sinceCkpt       int // accepted transforms since the last checkpoint
}

// retire swaps in a freshly computed timing view, returning the previous
// one's scratch buffers to its session pool. Safe because the flow is the
// only holder of its Result between refreshes.
func (f *flow) retire(next *sta.Result) {
	if f.r != nil {
		f.r.Release()
	}
	f.r = next
}

// analysis bundles the flow's current timing view for transform calls.
// Rebuilt at each use: connectivity-changing trials replace G and R.
func (f *flow) analysis() *transform.Analysis {
	return &transform.Analysis{D: f.d, G: f.g, R: f.r}
}

// snap captures the acceptance snapshot for endpoint fi (NaN slack for
// recovery-pass calls, which carry no target endpoint).
func (f *flow) snap(fi int) transform.Snapshot {
	s := math.NaN()
	if fi >= 0 {
		s = f.r.Slack[fi]
	}
	return transform.Snapshot{Slack: s, WNS: f.r.WNS, TNS: f.r.TNS}
}

// stopped reports whether the run's context has been cancelled, latching
// the interruption into the Result the first time it observes it.
func (f *flow) stopped() bool {
	if f.res.Interrupted {
		return true
	}
	if f.ctx == nil {
		return false
	}
	select {
	case <-f.ctx.Done():
		f.res.Interrupted = true
		f.res.StopReason = f.ctx.Err().Error()
		return true
	default:
		return false
	}
}

// Optimize runs the timing-closure flow on the design in place and returns
// the final QoR. The design is mutated (resized cells, inserted buffers,
// relocated registers). It is Run with a background context.
func Optimize(d *netlist.Design, opt Options) (*Result, error) {
	return Run(context.Background(), d, opt)
}

// Run runs the timing-closure flow under a context. Cancelling the context
// (or exceeding its deadline) stops the flow at the next transform
// boundary and returns a valid partial Result with Interrupted set — never
// an error, and never a design in a half-applied-transform state. A
// context that is already cancelled yields a zero-transform Result whose
// QoR fields still describe the (re-timed) input design.
func Run(ctx context.Context, d *netlist.Design, opt Options) (*Result, error) {
	return run(ctx, d, opt, nil, nil, nil)
}

// Resume continues an interrupted run from a checkpoint written by a
// previous Run with Options.CheckpointPath set. The opt passed here
// controls the continued run and must use the same TimerKind the
// checkpoint was written under; counters resume from their checkpointed
// values, so the combined Result matches an uninterrupted run. Both
// current (v2) and pre-transform-framework (v1) checkpoints resume; a v1
// checkpoint carries no per-transform state, so per-kind counts are
// derived from its counters and stateful transforms start fresh.
func Resume(ctx context.Context, path string, opt Options) (*Result, error) {
	c, err := netio.LoadCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	if len(c.State) == 0 {
		return nil, fmt.Errorf("closure: checkpoint has no flow state")
	}
	var st ckptState
	if err := json.Unmarshal(c.State, &st); err != nil {
		return nil, fmt.Errorf("closure: bad checkpoint state: %w", err)
	}
	if st.Phase < int(phaseRepair) || st.Phase > int(phaseDone) {
		return nil, fmt.Errorf("closure: checkpoint phase %d out of range", st.Phase)
	}
	if TimerKind(st.Timer) != opt.Timer {
		return nil, fmt.Errorf("closure: checkpoint was written by the %v flow, options select %v",
			TimerKind(st.Timer), opt.Timer)
	}
	return run(ctx, c.Design, opt, &st, c.Weights, c.Kinds)
}

// run is the shared body of Run and Resume: st/weights/kinds are nil for
// a fresh run and carry the checkpointed flow and per-transform state for
// a resumed one.
func run(ctx context.Context, d *netlist.Design, opt Options, st *ckptState,
	weights []float64, kinds map[string]json.RawMessage) (*Result, error) {
	if opt.STA.Weights != nil {
		return nil, fmt.Errorf("closure: STA config must not pre-set weights")
	}
	if opt.MaxTransforms < 0 || opt.MaxBuffers < 0 {
		return nil, fmt.Errorf("closure: negative budgets")
	}
	start := time.Now()
	f := &flow{d: d, opt: opt, ctx: ctx, res: &Result{Timer: opt.Timer}}
	var err error
	if f.reg, f.budgets, err = buildRegistry(opt); err != nil {
		return nil, err
	}
	if f.sched, err = buildScheduler(opt.Scheduler); err != nil {
		return nil, err
	}
	f.kindObs = make(map[string]kindMetrics)
	for _, k := range f.reg.Kinds() {
		f.kindObs[k] = kindMetricsFor(k)
	}
	ph, round := phaseRepair, 0
	if st != nil {
		f.restore(st, weights)
		if err := f.restoreKinds(kinds); err != nil {
			return nil, err
		}
		ph, round = phase(st.Phase), st.Round
	}
	f.curPhase, f.curRound = ph, round

	// Initial timing view. A resumed mGBA run re-times under the
	// checkpointed weights instead of recalibrating, preserving the
	// calibration cadence of the original run.
	if st != nil && f.opt.Timer == TimerMGBA && f.weights != nil {
		if err := f.refresh(); err != nil {
			return nil, err
		}
	} else if err := f.rebuild(); err != nil {
		return nil, err
	}

	for ph < phaseDone && !f.stopped() {
		f.curPhase = ph
		sp := obs.StartSpan("closure." + phaseName(ph))
		switch ph {
		case phaseRepair:
			// Repair in rounds: each round fixes what its timing view can
			// fix, then the view is refreshed and the remaining violators
			// retried.
			//
			// The two flows refresh differently, mirroring practice (§2.2
			// of the paper): the GBA flow must subject its remaining
			// violating endpoints to a PBA validation pass — the very
			// bottleneck the paper calls out, whose cost grows with GBA's
			// pessimism — while the mGBA flow simply recalibrates its
			// weights, which are PBA-accurate by construction.
			for ; round < 3; round++ {
				f.curRound = round
				obsRepairRounds.Inc()
				f.checkpoint()
				if err := f.fixViolations(); err != nil {
					return nil, err
				}
				if f.stopped() {
					break
				}
				if f.opt.Timer == TimerGBA {
					if f.validateViolators() <= f.opt.MaxViolatedAccept {
						break // PBA waives the residual GBA violations
					}
					continue // real violations remain: retry the repair loop
				}
				if f.violatedCount() <= f.opt.MaxViolatedAccept {
					break
				}
				if round == 2 {
					break
				}
				if err := f.calibrate(); err != nil {
					return nil, err
				}
				if f.stopped() {
					break
				}
			}
			if !f.stopped() {
				ph, round = phaseRecovery, 0
			}
		case phaseRecovery:
			f.checkpoint()
			if err := f.recoverArea(); err != nil {
				return nil, err
			}
			if !f.stopped() {
				ph, f.recoveryPos = phaseFinal, 0
			}
		case phaseFinal:
			f.curRound = 0
			f.checkpoint()
			// Recovery under a slightly stale view can overreach: refresh
			// and run one final repair pass so the flow exits at its own
			// timing closure. Skipped when nothing changed since the last
			// calibration.
			if f.opt.Timer == TimerMGBA && (f.finalCalibrated || f.transforms > 0) {
				if !f.finalCalibrated {
					if err := f.calibrate(); err != nil {
						return nil, err
					}
					f.finalCalibrated = true
				}
				if !f.stopped() {
					if err := f.fixViolations(); err != nil {
						return nil, err
					}
				}
			}
			if !f.stopped() {
				ph = phaseDone
			}
		}
		sp.End()
	}

	f.finish()
	if !f.res.Interrupted {
		f.res.StopReason = "completed"
	}
	// Exit checkpoint: for an interrupted run this is the resume point;
	// for a completed run it records phaseDone so a Resume is a no-op.
	f.curPhase, f.curRound = ph, round
	f.checkpoint()
	f.res.Elapsed = time.Since(start)
	return f.res, nil
}

// rebuild reconstructs the timing graph and session (needed after
// connectivity edits) and re-times the design, recalibrating mGBA weights
// when applicable.
func (f *flow) rebuild() error {
	g, err := graph.Build(f.d)
	if err != nil {
		return err
	}
	f.g = g
	f.sess = engine.NewSession(g)
	f.cal, f.calStale, f.dirty = nil, false, nil // new session: the old calibrator's cache is stale
	return f.calibrate()
}

// refresh rebuilds the graph and session and re-times with the *existing*
// mGBA weights (padded with 1.0 for instances created since the last
// calibration). The buffer-insertion trial loop uses it: a full
// recalibration per candidate buffer would dwarf the cost of the
// transform being evaluated.
func (f *flow) refresh() error {
	g, err := graph.Build(f.d)
	if err != nil {
		return err
	}
	f.g = g
	f.sess = engine.NewSession(g)
	f.cal, f.calStale, f.dirty = nil, false, nil // new session: the old calibrator's cache is stale
	cfg := f.opt.STA
	if f.opt.Timer == TimerMGBA && f.weights != nil {
		for len(f.weights) < len(f.d.Instances) {
			f.weights = append(f.weights, 1)
		}
		cfg.Weights = f.weights
	}
	f.retire(f.sess.Run(cfg))
	f.refreshCorners(cfg.Weights)
	return nil
}

// calibrate refreshes the mGBA weights (or simply re-analyzes under GBA),
// running against the flow's persistent calibrator so the per-design state
// is never recomputed mid-flow: a recalibration re-enumerates only the
// endpoints reached by the dirty gates' fan-out cones and patches the dirty
// rows of the cached calibration problem, warm-starting the solve from the
// previous correction. A calibrator left stale by an accepted structural
// move is first rebound to the current session (the instance set is
// intact, so the cache survives). Calibration cannot fail the flow: a
// solver fault degrades down core's solver ladder — at worst to identity
// weights (mGBA == GBA) — and is recorded in the Result.
func (f *flow) calibrate() error {
	if f.opt.Timer == TimerGBA {
		f.retire(f.sess.Run(f.opt.STA))
		return nil
	}
	t0 := time.Now()
	if f.cal == nil {
		cal, err := core.NewCalibrator(f.sess, f.opt.STA, f.opt.Core)
		if err != nil {
			return err
		}
		if f.weights != nil {
			// The previous weights warm-start the first solve on this
			// session (the calibrator chains its own thereafter).
			cal.SetWarmWeights(f.weights)
		}
		f.cal = cal
	} else if f.calStale {
		if err := f.cal.Rebind(f.sess); err != nil {
			return err
		}
	}
	f.calStale = false
	var model *core.Model
	var err error
	if f.opt.ColdRecalibrate {
		model, err = f.cal.Calibrate(f.ctx)
	} else {
		model, err = f.cal.Recalibrate(f.ctx, f.dirtyList())
	}
	if err != nil {
		return err
	}
	f.res.Calibrations++
	obsCalibrations.Inc()
	f.res.CalibElapsed += time.Since(t0)
	if model.Degraded || model.Partial {
		f.res.DegradedCalibrations++
	}
	if model.Fault != "" {
		f.res.Faults = append(f.res.Faults,
			fmt.Sprintf("calibration %d: %s", f.res.Calibrations, model.Fault))
	}
	f.weights = model.Weights
	f.retire(model.MGBA)
	f.adoptCorners(model)
	// The calibration's baseline GBA stays with the calibrator, which
	// advances it incrementally across recalibrations; the flow must not
	// release it.
	f.dirty = nil
	f.transforms = 0
	return nil
}

// noteDirty records instances whose timing changed through an accepted
// transform, to seed the next incremental recalibration. GBA runs carry no
// calibration state, so they skip the bookkeeping.
func (f *flow) noteDirty(ids []int) {
	if f.opt.Timer != TimerMGBA {
		return
	}
	if f.dirty == nil {
		f.dirty = make(map[int]bool)
	}
	for _, id := range ids {
		f.dirty[id] = true
	}
}

// dirtyList returns the accumulated dirty set in deterministic order.
func (f *flow) dirtyList() []int {
	if len(f.dirty) == 0 {
		return nil
	}
	out := make([]int, 0, len(f.dirty))
	for id := range f.dirty {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// maybeRecalibrate refreshes stale mGBA weights on cadence.
func (f *flow) maybeRecalibrate() error {
	if f.opt.Timer != TimerMGBA || f.opt.RecalibrateEvery <= 0 {
		return nil
	}
	if f.transforms < f.opt.RecalibrateEvery {
		return nil
	}
	return f.calibrate()
}

// fixViolations is the main repair loop: the scheduler picks a violating
// endpoint, the registry's repair transforms propose moves on its worst
// path, the first accepted one sticks, and the loop iterates.
// Cancellation is honored between transforms: an in-flight trial always
// completes (and is kept or reverted whole), so an interrupted design is
// never left with a half-applied transform.
func (f *flow) fixViolations() error {
	skip := make(map[int]bool)
	for f.res.Transforms < f.opt.MaxTransforms {
		if f.stopped() {
			return nil
		}
		fi := f.sched.Next(f.mergedSlack(), skip)
		if fi < 0 {
			break // timing closed (or every violator exhausted)
		}
		if f.violatedCount() <= f.opt.MaxViolatedAccept {
			break
		}
		improved, err := f.repairEndpoint(fi)
		if err != nil {
			return err
		}
		if !improved {
			skip[fi] = true
			continue
		}
		if err := f.maybeRecalibrate(); err != nil {
			return err
		}
	}
	return nil
}

// validateViolators subjects every timer-violating endpoint to PBA
// path validation — the GBA flow's obligatory reality check — and returns
// how many endpoints truly violate. Its cost is proportional to the number
// of violating endpoints, which is exactly where GBA pessimism hurts.
func (f *flow) validateViolators() int {
	t0 := time.Now()
	f.res.Validations++
	obsValidations.Inc()
	an := pba.NewAnalyzer(f.r)
	real := 0
	for fi, s := range f.r.Slack {
		if s >= 0 {
			continue
		}
		worst := math.Inf(1)
		for _, p := range an.KWorst(fi, 10, nil) {
			if ps := an.Retime(p).Slack; ps < worst {
				worst = ps
			}
		}
		if !math.IsInf(worst, 1) && worst < 0 {
			real++
		}
	}
	f.res.ValidateElapsed += time.Since(t0)
	return real
}

func (f *flow) violatedCount() int {
	n := 0
	// Merged worst-corner slack: an endpoint failing in any corner counts.
	for _, s := range f.mergedSlack() {
		if s < 0 {
			n++
		}
	}
	obsViolated.SetInt(n)
	return n
}

// repairEndpoint offers the endpoint's worst path to each repair
// transform in registry order (budget permitting) and applies the first
// accepted candidate.
func (f *flow) repairEndpoint(fi int) (bool, error) {
	path := transform.WorstPath(f.analysis(), fi)
	if len(path) == 0 {
		return false, nil
	}
	for _, tr := range f.reg.Repair {
		kind := tr.Kind()
		if f.res.Kinds[kind] >= f.budgets[kind] {
			continue
		}
		for _, c := range tr.Propose(f.analysis(), fi, path) {
			ok, err := f.tryCandidate(tr, fi, c)
			if err != nil {
				return false, err
			}
			if ok {
				f.noteKind(kind)
				f.noteTransform()
				return true, nil
			}
		}
	}
	return false, nil
}

// tryCandidate applies one candidate, arbitrates acceptance, and unwinds
// rejections, dispatching on the transform's capability bits:
//
//   - connectivity-preserving (upsize, downsize): advance the Result in
//     place over the move's dirty set — the cheap path;
//   - connectivity-changing without a dirty set (buffer): rebuild the
//     session around the trial and leave the next calibration cold;
//   - connectivity-changing with a dirty set (retime): time the trial on
//     a fresh session, and on acceptance adopt it, mark the calibrator
//     for rebinding, and widen the dirty set with the graph-state diff.
func (f *flow) tryCandidate(tr transform.Transform, fi int, c transform.Candidate) (bool, error) {
	a := f.analysis()
	before := f.snap(fi)
	mv, err := tr.Apply(a, c)
	if err != nil {
		return false, err
	}
	if mv == nil {
		return false, nil
	}
	if !tr.ConnectivityChanging() {
		mod := mv.DirtySet()
		cwns := f.cornerWNS()
		f.r.Update(mod)
		f.updateCorners(mod)
		if tr.Accept(before, f.snap(fi)) && !f.cornersRegressed(cwns) {
			f.noteDirty(mod)
			return true, nil
		}
		f.noteReject(tr.Kind())
		if rerr := mv.Revert(a); rerr == nil {
			f.r.Update(mod)
			f.updateCorners(mod)
		} else {
			// The design kept the trial cell: the gate is dirty after all.
			f.noteDirty(mod)
		}
		return false, nil
	}
	if mv.DirtySet() == nil {
		return f.tryCold(tr, fi, mv, before)
	}
	return f.tryStructural(tr, fi, mv, before)
}

// tryCold is the trial protocol for connectivity-changing moves without a
// dirty set (buffer insertion): rebuild the session around the trial —
// dropping the calibrator, so the next mGBA calibration is cold — and
// rebuild again if the move is rejected and reverted.
func (f *flow) tryCold(tr transform.Transform, fi int, mv transform.Move, before transform.Snapshot) (bool, error) {
	cwns := f.cornerWNS()
	if err := f.refresh(); err != nil {
		return false, err
	}
	if tr.Accept(before, f.snap(fi)) && !f.cornersRegressed(cwns) {
		return true, nil
	}
	f.noteReject(tr.Kind())
	if err := mv.Revert(f.analysis()); err != nil {
		return false, err
	}
	if err := f.refresh(); err != nil {
		return false, err
	}
	return false, nil
}

// tryStructural is the trial protocol for connectivity-changing moves
// that preserve the instance set (retiming). The trial is timed on a
// fresh session; on acceptance the flow adopts it, marks the calibrator
// stale (the next calibrate rebinds instead of going cold), and widens
// the move's structural dirty set with every instance whose graph-derived
// depth or bounding-box state moved — together they cover exactly the
// instances whose timing the slide could have changed, which is what
// makes the subsequent incremental recalibration bit-identical to a cold
// one. On rejection the move is reverted and the pre-trial session — the
// design is bit-identical again — simply remains in place.
func (f *flow) tryStructural(tr transform.Transform, fi int, mv transform.Move, before transform.Snapshot) (bool, error) {
	g2, err := graph.Build(f.d)
	if err != nil {
		return false, fmt.Errorf("closure: %s move broke the timing graph: %w", mv.Kind(), err)
	}
	newSess := engine.NewSession(g2)
	cfg := f.opt.STA
	if f.opt.Timer == TimerMGBA && f.weights != nil {
		for len(f.weights) < len(f.d.Instances) {
			f.weights = append(f.weights, 1)
		}
		cfg.Weights = f.weights
	}
	newR := newSess.Run(cfg)
	after := transform.Snapshot{Slack: math.NaN(), WNS: newR.WNS, TNS: newR.TNS}
	if fi >= 0 {
		after.Slack = newR.Slack[fi]
	}
	cwns := f.cornerWNS()
	newCViews := f.runCornersOn(newSess, cfg.Weights)
	if tr.Accept(before, after) && !vetoedByCorners(cwns, newCViews) {
		dirty := append([]int(nil), mv.DirtySet()...)
		dirty = append(dirty, diffSessions(f.sess, newSess)...)
		f.retire(nil)
		for i, cv := range f.cviews {
			// The old views belong to the superseded session; swap in the
			// trial session's.
			cv.r.Release()
			cv.r = newCViews[i]
		}
		f.g, f.sess, f.r = g2, newSess, newR
		if f.cal != nil {
			f.calStale = true
		}
		f.noteDirty(dirty)
		return true, nil
	}
	f.noteReject(tr.Kind())
	newR.Release()
	for _, r := range newCViews {
		r.Release()
	}
	if err := mv.Revert(f.analysis()); err != nil {
		return false, err
	}
	return false, nil
}

// diffSessions returns the instances whose graph-derived derate inputs —
// GBA depth or GBA bounding-box distance — differ between two sessions
// over the same instance set. A retiming slide can move these outside the
// slide's own neighborhood (depth suffixes and box unions propagate
// against the data flow), and any such instance times differently even
// though nothing around it was edited.
func diffSessions(old, cur *engine.Session) []int {
	var out []int
	for i := range old.Depths.GBA {
		if old.Depths.GBA[i] != cur.Depths.GBA[i] ||
			old.Boxes.GBADistance[i] != cur.Boxes.GBADistance[i] {
			out = append(out, i)
		}
	}
	return out
}

// finish records the final QoR, including a PBA sign-off measurement so
// that GBA-flow and mGBA-flow results are compared on equal footing. It
// always runs, interrupted or not: a cancelled run still reports honest
// final numbers for the state it leaves the design in.
func (f *flow) finish() {
	f.res.TimerWNS = f.r.WNS
	f.res.TimerTNS = f.r.TNS
	f.res.ViolatedEndpoints = f.violatedCount()
	f.res.Area = f.d.Area()
	f.res.Leakage = f.d.Leakage()
	f.res.Buffers = f.d.BufferCount()
	if f.opt.Timer == TimerMGBA {
		f.res.Weights = f.weights
	}
	f.res.Corners = f.cornerQoR()

	f.res.SignoffWNS, f.res.SignoffTNS = signoff(f.sess, f.opt.STA)
}
