package closure_test

import (
	"math"
	"testing"

	"mgba/internal/closure"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/sta"
)

func testDesign(t *testing.T, seed uint64) *gen.Config {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 700, 90
	cfg.Seed = seed
	cfg.Name = "closure-test"
	// Keep the bulk of the violations within gate-sizing reach, like the
	// closure-suite designs; unfixable outliers would dominate otherwise.
	cfg.DepthCap = 0.05
	return &cfg
}

func optimize(t *testing.T, cfg *gen.Config, timer closure.TimerKind) (*closure.Result, float64, float64) {
	t.Helper()
	d, err := gen.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	wns0, tns0 := closure.Signoff(g, sta.DefaultConfig())
	res, err := closure.Optimize(d, closure.DefaultOptions(timer))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid after optimization: %v", err)
	}
	return res, wns0, tns0
}

func TestGBAFlowImprovesTiming(t *testing.T) {
	res, wns0, tns0 := optimize(t, testDesign(t, 7001), closure.TimerGBA)
	if tns0 >= 0 {
		t.Fatalf("test design starts clean (tns0=%v); useless fixture", tns0)
	}
	if res.SignoffTNS < tns0*0.25 {
		t.Fatalf("GBA flow barely improved: signoff TNS %v from %v", res.SignoffTNS, tns0)
	}
	if res.SignoffWNS < wns0 {
		t.Fatalf("GBA flow worsened WNS: %v from %v", res.SignoffWNS, wns0)
	}
	if res.Upsized == 0 {
		t.Fatal("no upsizing happened on a violating design")
	}
}

func TestMGBAFlowClosesTiming(t *testing.T) {
	res, _, tns0 := optimize(t, testDesign(t, 7001), closure.TimerMGBA)
	if tns0 >= 0 {
		t.Fatal("fixture starts clean")
	}
	// The paper's own exit criterion tolerates a few residual violated
	// endpoints ("usually no more than 100 violated endpoints is
	// acceptable"); demand the same order of cleanliness at our scale.
	if res.ViolatedEndpoints > 5 {
		t.Fatalf("mGBA flow left %d timer violations", res.ViolatedEndpoints)
	}
	if res.SignoffTNS < -100 {
		t.Fatalf("mGBA flow left real violations: signoff TNS %v", res.SignoffTNS)
	}
	if res.Calibrations == 0 {
		t.Fatal("mGBA flow never calibrated")
	}
	if res.CalibElapsed <= 0 {
		t.Fatal("calibration time not recorded")
	}
}

// The headline of Table 2: the mGBA-embedded flow ends with less area and
// leakage than the GBA-embedded flow on the same design.
func TestMGBAFlowBeatsGBAQoR(t *testing.T) {
	cfg := testDesign(t, 7001)
	gba, _, _ := optimize(t, cfg, closure.TimerGBA)
	mgba, _, _ := optimize(t, cfg, closure.TimerMGBA)
	t.Logf("area %v vs %v, leakage %v vs %v, buffers %d vs %d",
		gba.Area, mgba.Area, gba.Leakage, mgba.Leakage, gba.Buffers, mgba.Buffers)
	if mgba.Area >= gba.Area {
		t.Fatalf("mGBA area %v not below GBA %v", mgba.Area, gba.Area)
	}
	if mgba.Leakage >= gba.Leakage {
		t.Fatalf("mGBA leakage %v not below GBA %v", mgba.Leakage, gba.Leakage)
	}
	// Both flows must be essentially clean at sign-off.
	if gba.SignoffTNS < -200 || mgba.SignoffTNS < -200 {
		t.Fatalf("flows not clean at signoff: GBA %v, mGBA %v", gba.SignoffTNS, mgba.SignoffTNS)
	}
}

func TestMGBAFlowAppliesFewerFixes(t *testing.T) {
	cfg := testDesign(t, 7001)
	gba, _, _ := optimize(t, cfg, closure.TimerGBA)
	mgba, _, _ := optimize(t, cfg, closure.TimerMGBA)
	if mgba.Upsized >= gba.Upsized {
		t.Fatalf("mGBA upsized %d, GBA %d: pessimism reduction had no effect",
			mgba.Upsized, gba.Upsized)
	}
}

func TestTransformAccounting(t *testing.T) {
	res, _, _ := optimize(t, testDesign(t, 7002), closure.TimerGBA)
	if res.Transforms != res.Upsized+res.Downsized+res.BuffersAdded {
		t.Fatalf("transform accounting broken: %d != %d+%d+%d",
			res.Transforms, res.Upsized, res.Downsized, res.BuffersAdded)
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestGBAFlowValidates(t *testing.T) {
	res, _, _ := optimize(t, testDesign(t, 7001), closure.TimerGBA)
	if res.Validations == 0 {
		t.Fatal("GBA flow never ran PBA validation")
	}
	if res.Calibrations != 0 {
		t.Fatal("GBA flow should never calibrate")
	}
}

func TestSignoffLessPessimisticThanTimer(t *testing.T) {
	d, err := gen.Generate(*testDesign(t, 7003))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	wns, tns := closure.Signoff(g, sta.DefaultConfig())
	if tns < r.TNS || wns < r.WNS {
		t.Fatalf("PBA signoff (%v/%v) more pessimistic than GBA (%v/%v)", wns, tns, r.WNS, r.TNS)
	}
}

func TestOptimizeRejectsBadOptions(t *testing.T) {
	d, err := gen.Generate(*testDesign(t, 7004))
	if err != nil {
		t.Fatal(err)
	}
	opt := closure.DefaultOptions(closure.TimerGBA)
	opt.MaxTransforms = -1
	if _, err := closure.Optimize(d, opt); err == nil {
		t.Fatal("negative budget accepted")
	}
	opt = closure.DefaultOptions(closure.TimerGBA)
	opt.STA.Weights = make([]float64, 1)
	if _, err := closure.Optimize(d, opt); err == nil {
		t.Fatal("pre-set weights accepted")
	}
}

func TestZeroBudgetNoTransforms(t *testing.T) {
	d, err := gen.Generate(*testDesign(t, 7005))
	if err != nil {
		t.Fatal(err)
	}
	area0 := d.Area()
	opt := closure.DefaultOptions(closure.TimerGBA)
	opt.MaxTransforms = 0
	res, err := closure.Optimize(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transforms != 0 {
		t.Fatalf("transforms applied despite zero budget: %d", res.Transforms)
	}
	if math.Abs(d.Area()-area0) > 1e-9 {
		t.Fatal("area changed despite zero budget")
	}
}

func TestTimerKindString(t *testing.T) {
	if closure.TimerGBA.String() != "GBA" || closure.TimerMGBA.String() != "mGBA" {
		t.Fatal("timer names drifted")
	}
}

func TestRecoveryDoesNotBreakTiming(t *testing.T) {
	// After a full GBA run, the timer must not report worse timing than the
	// violation count the flow exited the fix phase with would imply: the
	// recovery phase is forbidden from creating regressions.
	cfg := testDesign(t, 7006)
	d, err := gen.Generate(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := closure.Optimize(d, closure.DefaultOptions(closure.TimerGBA))
	if err != nil {
		t.Fatal(err)
	}
	if res.Downsized > 0 && res.TimerWNS < -1e9 {
		t.Fatal("recovery destroyed timing")
	}
	// Re-analyze from scratch and compare to the recorded timer view.
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	if math.Abs(r.TNS-res.TimerTNS) > 1e-6 {
		t.Fatalf("recorded timer TNS %v != fresh analysis %v", res.TimerTNS, r.TNS)
	}
}

// TestIncrementalCalibrationEquivalence is the closure-level contract of
// the incremental calibrator: the default flow (dirty-set Recalibrate) and
// the ColdRecalibrate ablation must walk the exact same transform sequence
// and land on bit-identical QoR and weights. Any drift here means the
// incremental path changed the optimization, not just its cost.
func TestIncrementalCalibrationEquivalence(t *testing.T) {
	cfg := testDesign(t, 7001)

	runFlow := func(cold bool) *closure.Result {
		d, err := gen.Generate(*cfg)
		if err != nil {
			t.Fatal(err)
		}
		opt := closure.DefaultOptions(closure.TimerMGBA)
		// Force several mid-flow recalibrations so the incremental path is
		// actually exercised between transforms.
		opt.RecalibrateEvery = 25
		opt.ColdRecalibrate = cold
		res, err := closure.Optimize(d, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	inc := runFlow(false)
	cold := runFlow(true)

	if inc.Calibrations < 2 {
		t.Fatalf("flow calibrated only %d times; fixture too tame", inc.Calibrations)
	}
	if inc.ViolatedEndpoints != cold.ViolatedEndpoints {
		t.Errorf("violated endpoints differ: incremental %d vs cold %d",
			inc.ViolatedEndpoints, cold.ViolatedEndpoints)
	}
	if inc.Area != cold.Area || inc.Leakage != cold.Leakage {
		t.Errorf("area/leakage differ: %v/%v vs %v/%v",
			inc.Area, inc.Leakage, cold.Area, cold.Leakage)
	}
	if inc.Buffers != cold.Buffers || inc.BuffersAdded != cold.BuffersAdded {
		t.Errorf("buffer counts differ: %d/%d vs %d/%d",
			inc.Buffers, inc.BuffersAdded, cold.Buffers, cold.BuffersAdded)
	}
	if inc.Upsized != cold.Upsized || inc.Downsized != cold.Downsized {
		t.Errorf("transform counts differ: up %d/%d, down %d/%d",
			inc.Upsized, cold.Upsized, inc.Downsized, cold.Downsized)
	}
	if inc.TimerWNS != cold.TimerWNS || inc.TimerTNS != cold.TimerTNS {
		t.Errorf("timer QoR differs: WNS %v vs %v, TNS %v vs %v",
			inc.TimerWNS, cold.TimerWNS, inc.TimerTNS, cold.TimerTNS)
	}
	if inc.SignoffWNS != cold.SignoffWNS || inc.SignoffTNS != cold.SignoffTNS {
		t.Errorf("signoff QoR differs: WNS %v vs %v, TNS %v vs %v",
			inc.SignoffWNS, cold.SignoffWNS, inc.SignoffTNS, cold.SignoffTNS)
	}
	if len(inc.Weights) != len(cold.Weights) {
		t.Fatalf("weight vector lengths differ: %d vs %d", len(inc.Weights), len(cold.Weights))
	}
	for i := range inc.Weights {
		if inc.Weights[i] != cold.Weights[i] {
			t.Fatalf("weights diverge at %d: %v vs %v", i, inc.Weights[i], cold.Weights[i])
		}
	}
}
