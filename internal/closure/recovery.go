package closure

import (
	"math"
)

// recoverArea downsizes gates whose paths have slack to spare — the phase
// where a less pessimistic timer directly buys area and leakage. Gates
// are walked in topological order and offered to the registry's recovery
// transforms; the slack gate lives here (transforms only see instances
// worth shrinking). The walk position survives in checkpoints (the
// topological order is a pure function of the design, and recovery never
// edits connectivity), so a resumed run continues exactly where the
// interrupted one stopped.
func (f *flow) recoverArea() error {
	for ; f.recoveryPos < len(f.g.Topo); f.recoveryPos++ {
		if f.stopped() {
			return nil
		}
		if f.res.Transforms >= f.opt.MaxTransforms {
			break
		}
		v := int(f.g.Topo[f.recoveryPos])
		inst := f.d.Instances[v]
		if inst.IsFF() || f.g.IsClock(v) {
			continue
		}
		slack := f.r.InstanceSlack(v)
		if math.IsInf(slack, 1) || slack < f.opt.RecoveryMargin {
			continue
		}
		if err := f.recoverInstance(v); err != nil {
			return err
		}
	}
	return nil
}

// recoverInstance offers one slack-rich gate to the recovery transforms
// in registry order; the first accepted move wins.
func (f *flow) recoverInstance(v int) error {
	for _, tr := range f.reg.Recovery {
		kind := tr.Kind()
		if f.res.Kinds[kind] >= f.budgets[kind] {
			continue
		}
		for _, c := range tr.Propose(f.analysis(), -1, []int{v}) {
			ok, err := f.tryCandidate(tr, -1, c)
			if err != nil {
				return err
			}
			if ok {
				f.noteKind(kind)
				f.noteTransform()
				return f.maybeRecalibrate()
			}
		}
	}
	return nil
}
