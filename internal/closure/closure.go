// Package closure implements the post-route timing-closure optimization
// framework of the paper's §3.4 (the left half of Fig. 5): a greedy
// worst-endpoint-first loop of gate upsizing and buffer insertion with
// incremental timing updates, followed by an area/leakage recovery pass
// that downsizes gates with slack to spare.
//
// The framework is timer-agnostic: it runs against original GBA or against
// mGBA (GBA with calibrated per-gate weighting factors, recalibrated
// whenever the netlist structure changes). Because mGBA sees less
// pessimism, the mGBA-embedded flow stops fixing earlier, fixes fewer
// endpoints, recovers more area, and finishes faster — the effects
// reported in Tables 2 and 5.
//
// The flow is built to survive long runs on real infrastructure: it honors
// context cancellation at transform granularity (an interrupted run still
// returns a valid, non-optimistic Result), it records calibration
// degradations and faults instead of aborting, and it can periodically
// write atomic checkpoints from which Resume continues an interrupted run
// to the same closure state an uninterrupted run reaches.
package closure

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"mgba/internal/cells"
	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/graph"
	"mgba/internal/netio"
	"mgba/internal/netlist"
	"mgba/internal/obs"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

// TimerKind selects the timing engine embedded in the flow.
type TimerKind int

// The two flow variants compared by Tables 2 and 5.
const (
	TimerGBA  TimerKind = iota // original graph-based analysis
	TimerMGBA                  // modified GBA with calibrated weights
)

func (k TimerKind) String() string {
	if k == TimerMGBA {
		return "mGBA"
	}
	return "GBA"
}

// Options controls one optimization run.
type Options struct {
	Timer TimerKind
	STA   sta.Config   // base analysis features (weights are managed here)
	Core  core.Options // mGBA calibration settings (TimerMGBA only)

	MaxTransforms     int     // total accepted-transform budget
	MaxBuffers        int     // buffer insertions allowed (graph rebuilds)
	WireDelayForBuf   float64 // buffer nets with at least this wire delay, ps
	RecalibrateEvery  int     // mGBA: recalibrate after this many transforms
	RecoveryMargin    float64 // downsizing keeps endpoint slack above this, ps
	MaxViolatedAccept int     // stop when this few endpoints remain violated

	// ColdRecalibrate disables the incremental calibrator and performs
	// every mid-flow recalibration from scratch. Ablation switch: the two
	// settings produce bit-identical results; the incremental path is just
	// faster (see BenchmarkRecalibrateIncremental).
	ColdRecalibrate bool

	// CheckpointPath, when non-empty, makes the flow periodically write a
	// resumable checkpoint (design + weights + flow state) to this path.
	// Writes are atomic: a crash mid-write leaves the previous checkpoint
	// intact. Checkpoint failures are recorded in Result.Faults, never
	// fatal.
	CheckpointPath string
	// CheckpointEvery is the number of accepted transforms between
	// periodic checkpoints. Zero checkpoints only at phase boundaries.
	CheckpointEvery int
	// OnCheckpoint, when set, is called after every successful checkpoint
	// write with the checkpoint path. Used by tests and progress monitors.
	OnCheckpoint func(path string)
}

// DefaultOptions returns a balanced configuration for the experiment suite.
// The embedded calibration uses a faster solver profile than a standalone
// fit: it starts the row-sampling schedule higher and accepts a slightly
// looser tolerance, because it will be refreshed several times anyway.
func DefaultOptions(timer TimerKind) Options {
	coreOpt := core.DefaultOptions()
	coreOpt.Solver.MinRows = 512
	coreOpt.Solver.MaxIters = 1500
	return Options{
		Timer:             timer,
		STA:               sta.DefaultConfig(),
		Core:              coreOpt,
		MaxTransforms:     4000,
		MaxBuffers:        60,
		WireDelayForBuf:   15,
		RecalibrateEvery:  150,
		RecoveryMargin:    5,
		MaxViolatedAccept: 0,
	}
}

// Result summarizes one optimization run.
type Result struct {
	Timer TimerKind

	// Final QoR, measured both by the embedded timer and by PBA sign-off.
	TimerWNS, TimerTNS     float64
	SignoffWNS, SignoffTNS float64
	ViolatedEndpoints      int // by the embedded timer

	Area    float64
	Leakage float64
	Buffers int

	Upsized, Downsized, BuffersAdded int
	Transforms                       int // accepted transforms in total
	Calibrations                     int
	Validations                      int // GBA flow: PBA validation passes

	Elapsed         time.Duration // whole flow
	CalibElapsed    time.Duration // time inside mGBA calibration (Table 5 split)
	ValidateElapsed time.Duration // GBA flow: PBA validation of violators

	// Robustness record.

	Weights []float64 // final mGBA weights (nil for the GBA flow)
	// Interrupted is true when the run was stopped by context cancellation
	// or deadline; the Result is still a valid (partial) outcome.
	Interrupted bool
	// StopReason is "completed", or the context error that stopped the run.
	StopReason string
	// Resumed is true when the run continued from a checkpoint.
	Resumed bool
	// Checkpoints counts successful checkpoint writes (cumulative across
	// resumes).
	Checkpoints int
	// DegradedCalibrations counts calibrations that fell down the solver
	// degradation ladder or were cut short by cancellation.
	DegradedCalibrations int
	// Faults records non-fatal failures absorbed by the flow: calibration
	// fallbacks to identity weights and checkpoint write errors.
	Faults []string
}

// phase identifies where in the flow a run (or a checkpoint of one) is.
type phase int

const (
	phaseRepair   phase = iota // round-based repair loop
	phaseRecovery              // area/leakage recovery pass
	phaseFinal                 // mGBA: final recalibrate + repair
	phaseDone                  // nothing left but finish()
)

// ckptState is the flow-progress blob embedded in a netio checkpoint. The
// design and weights live in the checkpoint envelope; this records where
// to pick the flow back up and the counters accumulated so far.
type ckptState struct {
	Timer           int  `json:"timer"`
	Phase           int  `json:"phase"`
	Round           int  `json:"round"`
	RecoveryPos     int  `json:"recovery_pos"`
	SinceCalib      int  `json:"since_calib"`
	FinalCalibrated bool `json:"final_calibrated,omitempty"`

	Transforms   int      `json:"transforms"`
	Upsized      int      `json:"upsized"`
	Downsized    int      `json:"downsized"`
	BuffersAdded int      `json:"buffers_added"`
	Calibrations int      `json:"calibrations"`
	Validations  int      `json:"validations"`
	Degraded     int      `json:"degraded_calibrations"`
	Checkpoints  int      `json:"checkpoints"`
	Faults       []string `json:"faults,omitempty"`
}

// flow carries the mutable optimization state. The timing session is
// rebuilt only on connectivity changes (buffer insertion); the thousands
// of resize trials in between run through Result.Update against the same
// session, allocating nothing.
type flow struct {
	d   *netlist.Design
	opt Options
	ctx context.Context

	g       *graph.Graph
	sess    *engine.Session
	r       *sta.Result
	weights []float64 // nil for GBA

	// cal is the persistent mGBA calibrator bound to the current session;
	// nil until the first calibration and reset whenever the session is
	// rebuilt (connectivity changed). dirty accumulates the instances whose
	// timing changed through accepted transforms since the last calibration
	// — the seed set for the calibrator's incremental re-enumeration.
	cal   *core.Calibrator
	dirty map[int]bool

	res        *Result
	transforms int // transforms since the last recalibration

	// Checkpoint/resume bookkeeping.
	curPhase        phase
	curRound        int
	recoveryPos     int // next f.g.Topo index for the recovery pass
	finalCalibrated bool
	sinceCkpt       int // accepted transforms since the last checkpoint
}

// retire swaps in a freshly computed timing view, returning the previous
// one's scratch buffers to its session pool. Safe because the flow is the
// only holder of its Result between refreshes.
func (f *flow) retire(next *sta.Result) {
	if f.r != nil {
		f.r.Release()
	}
	f.r = next
}

// stopped reports whether the run's context has been cancelled, latching
// the interruption into the Result the first time it observes it.
func (f *flow) stopped() bool {
	if f.res.Interrupted {
		return true
	}
	if f.ctx == nil {
		return false
	}
	select {
	case <-f.ctx.Done():
		f.res.Interrupted = true
		f.res.StopReason = f.ctx.Err().Error()
		return true
	default:
		return false
	}
}

// Optimize runs the timing-closure flow on the design in place and returns
// the final QoR. The design is mutated (resized cells, inserted buffers).
// It is Run with a background context.
func Optimize(d *netlist.Design, opt Options) (*Result, error) {
	return Run(context.Background(), d, opt)
}

// Run runs the timing-closure flow under a context. Cancelling the context
// (or exceeding its deadline) stops the flow at the next transform
// boundary and returns a valid partial Result with Interrupted set — never
// an error, and never a design in a half-applied-transform state. A
// context that is already cancelled yields a zero-transform Result whose
// QoR fields still describe the (re-timed) input design.
func Run(ctx context.Context, d *netlist.Design, opt Options) (*Result, error) {
	return run(ctx, d, opt, nil, nil)
}

// Resume continues an interrupted run from a checkpoint written by a
// previous Run with Options.CheckpointPath set. The opt passed here
// controls the continued run and must use the same TimerKind the
// checkpoint was written under; counters resume from their checkpointed
// values, so the combined Result matches an uninterrupted run.
func Resume(ctx context.Context, path string, opt Options) (*Result, error) {
	c, err := netio.LoadCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	if len(c.State) == 0 {
		return nil, fmt.Errorf("closure: checkpoint has no flow state")
	}
	var st ckptState
	if err := json.Unmarshal(c.State, &st); err != nil {
		return nil, fmt.Errorf("closure: bad checkpoint state: %w", err)
	}
	if st.Phase < int(phaseRepair) || st.Phase > int(phaseDone) {
		return nil, fmt.Errorf("closure: checkpoint phase %d out of range", st.Phase)
	}
	if TimerKind(st.Timer) != opt.Timer {
		return nil, fmt.Errorf("closure: checkpoint was written by the %v flow, options select %v",
			TimerKind(st.Timer), opt.Timer)
	}
	return run(ctx, c.Design, opt, &st, c.Weights)
}

// run is the shared body of Run and Resume: st/weights are nil for a fresh
// run and carry the checkpointed flow state for a resumed one.
func run(ctx context.Context, d *netlist.Design, opt Options, st *ckptState, weights []float64) (*Result, error) {
	if opt.STA.Weights != nil {
		return nil, fmt.Errorf("closure: STA config must not pre-set weights")
	}
	if opt.MaxTransforms < 0 || opt.MaxBuffers < 0 {
		return nil, fmt.Errorf("closure: negative budgets")
	}
	start := time.Now()
	f := &flow{d: d, opt: opt, ctx: ctx, res: &Result{Timer: opt.Timer}}
	ph, round := phaseRepair, 0
	if st != nil {
		f.restore(st, weights)
		ph, round = phase(st.Phase), st.Round
	}
	f.curPhase, f.curRound = ph, round

	// Initial timing view. A resumed mGBA run re-times under the
	// checkpointed weights instead of recalibrating, preserving the
	// calibration cadence of the original run.
	if st != nil && f.opt.Timer == TimerMGBA && f.weights != nil {
		if err := f.refresh(); err != nil {
			return nil, err
		}
	} else if err := f.rebuild(); err != nil {
		return nil, err
	}

	for ph < phaseDone && !f.stopped() {
		f.curPhase = ph
		sp := obs.StartSpan("closure." + phaseName(ph))
		switch ph {
		case phaseRepair:
			// Repair in rounds: each round fixes what its timing view can
			// fix, then the view is refreshed and the remaining violators
			// retried.
			//
			// The two flows refresh differently, mirroring practice (§2.2
			// of the paper): the GBA flow must subject its remaining
			// violating endpoints to a PBA validation pass — the very
			// bottleneck the paper calls out, whose cost grows with GBA's
			// pessimism — while the mGBA flow simply recalibrates its
			// weights, which are PBA-accurate by construction.
			for ; round < 3; round++ {
				f.curRound = round
				obsRepairRounds.Inc()
				f.checkpoint()
				if err := f.fixViolations(); err != nil {
					return nil, err
				}
				if f.stopped() {
					break
				}
				if f.opt.Timer == TimerGBA {
					if f.validateViolators() <= f.opt.MaxViolatedAccept {
						break // PBA waives the residual GBA violations
					}
					continue // real violations remain: retry the repair loop
				}
				if f.violatedCount() <= f.opt.MaxViolatedAccept {
					break
				}
				if round == 2 {
					break
				}
				if err := f.calibrate(); err != nil {
					return nil, err
				}
				if f.stopped() {
					break
				}
			}
			if !f.stopped() {
				ph, round = phaseRecovery, 0
			}
		case phaseRecovery:
			f.checkpoint()
			if err := f.recoverArea(); err != nil {
				return nil, err
			}
			if !f.stopped() {
				ph, f.recoveryPos = phaseFinal, 0
			}
		case phaseFinal:
			f.curRound = 0
			f.checkpoint()
			// Recovery under a slightly stale view can overreach: refresh
			// and run one final repair pass so the flow exits at its own
			// timing closure. Skipped when nothing changed since the last
			// calibration.
			if f.opt.Timer == TimerMGBA && (f.finalCalibrated || f.transforms > 0) {
				if !f.finalCalibrated {
					if err := f.calibrate(); err != nil {
						return nil, err
					}
					f.finalCalibrated = true
				}
				if !f.stopped() {
					if err := f.fixViolations(); err != nil {
						return nil, err
					}
				}
			}
			if !f.stopped() {
				ph = phaseDone
			}
		}
		sp.End()
	}

	f.finish()
	if !f.res.Interrupted {
		f.res.StopReason = "completed"
	}
	// Exit checkpoint: for an interrupted run this is the resume point;
	// for a completed run it records phaseDone so a Resume is a no-op.
	f.curPhase, f.curRound = ph, round
	f.checkpoint()
	f.res.Elapsed = time.Since(start)
	return f.res, nil
}

// restore loads checkpointed flow state and counters into a fresh flow.
func (f *flow) restore(st *ckptState, weights []float64) {
	f.weights = weights
	f.transforms = st.SinceCalib
	f.recoveryPos = st.RecoveryPos
	f.finalCalibrated = st.FinalCalibrated
	r := f.res
	r.Resumed = true
	r.Transforms = st.Transforms
	r.Upsized = st.Upsized
	r.Downsized = st.Downsized
	r.BuffersAdded = st.BuffersAdded
	r.Calibrations = st.Calibrations
	r.Validations = st.Validations
	r.DegradedCalibrations = st.Degraded
	r.Checkpoints = st.Checkpoints
	r.Faults = append([]string(nil), st.Faults...)
}

// snapshot builds the serializable flow-progress state of a checkpoint.
// Faults is copied defensively: f.res.Faults keeps growing after the
// snapshot is taken (a failed checkpoint appends to it itself), so the
// state to be marshalled must not alias the live slice.
func (f *flow) snapshot() ckptState {
	return ckptState{
		Timer:           int(f.opt.Timer),
		Phase:           int(f.curPhase),
		Round:           f.curRound,
		RecoveryPos:     f.recoveryPos,
		SinceCalib:      f.transforms,
		FinalCalibrated: f.finalCalibrated,
		Transforms:      f.res.Transforms,
		Upsized:         f.res.Upsized,
		Downsized:       f.res.Downsized,
		BuffersAdded:    f.res.BuffersAdded,
		Calibrations:    f.res.Calibrations,
		Validations:     f.res.Validations,
		Degraded:        f.res.DegradedCalibrations,
		Checkpoints:     f.res.Checkpoints + 1,
		Faults:          append([]string(nil), f.res.Faults...),
	}
}

// checkpoint atomically writes the current design, weights and flow state
// to Options.CheckpointPath. Failures are recorded as faults, not errors:
// losing a checkpoint must never lose the run.
func (f *flow) checkpoint() {
	f.sinceCkpt = 0
	if f.opt.CheckpointPath == "" {
		return
	}
	st := f.snapshot()
	blob, err := json.Marshal(&st)
	if err == nil {
		err = netio.SaveCheckpointFile(f.opt.CheckpointPath, &netio.Checkpoint{
			Design:  f.d,
			Weights: f.weights,
			State:   blob,
		})
	}
	if err != nil {
		obsCheckpointsFail.Inc()
		obs.Event("checkpoint_failed", "err", err.Error())
		f.res.Faults = append(f.res.Faults, fmt.Sprintf("checkpoint: %v", err))
		return
	}
	obsCheckpointsOK.Inc()
	f.res.Checkpoints++
	if f.opt.OnCheckpoint != nil {
		f.opt.OnCheckpoint(f.opt.CheckpointPath)
	}
}

// noteTransform accounts one accepted transform and writes a periodic
// checkpoint when the cadence says so.
func (f *flow) noteTransform() {
	obsTransforms.Inc()
	f.res.Transforms++
	f.transforms++
	f.sinceCkpt++
	if f.opt.CheckpointEvery > 0 && f.sinceCkpt >= f.opt.CheckpointEvery {
		f.checkpoint()
	}
}

// rebuild reconstructs the timing graph and session (needed after
// connectivity edits) and re-times the design, recalibrating mGBA weights
// when applicable.
func (f *flow) rebuild() error {
	g, err := graph.Build(f.d)
	if err != nil {
		return err
	}
	f.g = g
	f.sess = engine.NewSession(g)
	f.cal, f.dirty = nil, nil // new session: the old calibrator's cache is stale
	return f.calibrate()
}

// refresh rebuilds the graph and session and re-times with the *existing*
// mGBA weights (padded with 1.0 for instances created since the last
// calibration). The buffer-insertion trial loop uses it: a full
// recalibration per candidate buffer would dwarf the cost of the
// transform being evaluated.
func (f *flow) refresh() error {
	g, err := graph.Build(f.d)
	if err != nil {
		return err
	}
	f.g = g
	f.sess = engine.NewSession(g)
	f.cal, f.dirty = nil, nil // new session: the old calibrator's cache is stale
	cfg := f.opt.STA
	if f.opt.Timer == TimerMGBA && f.weights != nil {
		for len(f.weights) < len(f.d.Instances) {
			f.weights = append(f.weights, 1)
		}
		cfg.Weights = f.weights
	}
	f.retire(f.sess.Run(cfg))
	return nil
}

// calibrate refreshes the mGBA weights (or simply re-analyzes under GBA),
// running against the flow's persistent calibrator so the per-design state
// is never recomputed mid-flow: a recalibration re-enumerates only the
// endpoints reached by the dirty gates' fan-out cones and patches the dirty
// rows of the cached calibration problem, warm-starting the solve from the
// previous correction. Calibration cannot fail the flow: a solver fault
// degrades down core's solver ladder — at worst to identity weights
// (mGBA == GBA) — and is recorded in the Result.
func (f *flow) calibrate() error {
	if f.opt.Timer == TimerGBA {
		f.retire(f.sess.Run(f.opt.STA))
		return nil
	}
	t0 := time.Now()
	if f.cal == nil {
		cal, err := core.NewCalibrator(f.sess, f.opt.STA, f.opt.Core)
		if err != nil {
			return err
		}
		if f.weights != nil {
			// The previous weights warm-start the first solve on this
			// session (the calibrator chains its own thereafter).
			cal.SetWarmWeights(f.weights)
		}
		f.cal = cal
	}
	var model *core.Model
	var err error
	if f.opt.ColdRecalibrate {
		model, err = f.cal.Calibrate(f.ctx)
	} else {
		model, err = f.cal.Recalibrate(f.ctx, f.dirtyList())
	}
	if err != nil {
		return err
	}
	f.res.Calibrations++
	obsCalibrations.Inc()
	f.res.CalibElapsed += time.Since(t0)
	if model.Degraded || model.Partial {
		f.res.DegradedCalibrations++
	}
	if model.Fault != "" {
		f.res.Faults = append(f.res.Faults,
			fmt.Sprintf("calibration %d: %s", f.res.Calibrations, model.Fault))
	}
	f.weights = model.Weights
	f.retire(model.MGBA)
	// The calibration's baseline GBA stays with the calibrator, which
	// advances it incrementally across recalibrations; the flow must not
	// release it.
	f.dirty = nil
	f.transforms = 0
	return nil
}

// noteDirty records instances whose timing changed through an accepted
// transform, to seed the next incremental recalibration. GBA runs carry no
// calibration state, so they skip the bookkeeping.
func (f *flow) noteDirty(ids []int) {
	if f.opt.Timer != TimerMGBA {
		return
	}
	if f.dirty == nil {
		f.dirty = make(map[int]bool)
	}
	for _, id := range ids {
		f.dirty[id] = true
	}
}

// dirtyList returns the accumulated dirty set in deterministic order.
func (f *flow) dirtyList() []int {
	if len(f.dirty) == 0 {
		return nil
	}
	out := make([]int, 0, len(f.dirty))
	for id := range f.dirty {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// maybeRecalibrate refreshes stale mGBA weights on cadence.
func (f *flow) maybeRecalibrate() error {
	if f.opt.Timer != TimerMGBA || f.opt.RecalibrateEvery <= 0 {
		return nil
	}
	if f.transforms < f.opt.RecalibrateEvery {
		return nil
	}
	return f.calibrate()
}

// worstViolatingEndpoint returns the D.FFs position with the most negative
// timer slack not in skip, or -1.
func (f *flow) worstViolatingEndpoint(skip map[int]bool) int {
	worst, worstSlack := -1, 0.0
	for fi, s := range f.r.Slack {
		if skip[fi] {
			continue
		}
		if s < worstSlack {
			worst, worstSlack = fi, s
		}
	}
	return worst
}

// tracePath walks the worst timer path into endpoint fi by following
// maximal arrivals backward, returning the instance IDs from launch FF to
// last combinational gate.
func (f *flow) tracePath(fi int) []int {
	d := f.d
	ffID := d.FFs[fi]
	var rev []int
	cur, ok := f.worstFanin(ffID)
	for ok {
		rev = append(rev, cur)
		if d.Instances[cur].IsFF() {
			break
		}
		cur, ok = f.worstFanin(cur)
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

func (f *flow) worstFanin(v int) (int, bool) {
	best, bestAt := -1, math.Inf(-1)
	for _, e := range f.g.Fanin[v] {
		at := f.r.ArrivalOut[e.From] + f.r.WireDelay[e.From]
		if at > bestAt {
			best, bestAt = e.From, at
		}
	}
	return best, best >= 0
}

// fixViolations is the main repair loop: pick the worst violating
// endpoint, repair its worst path with an upsize or a buffer, accept the
// transform only if the endpoint improves, and iterate. Cancellation is
// honored between transforms: an in-flight trial always completes (and is
// kept or reverted whole), so an interrupted design is never left with a
// half-applied transform.
func (f *flow) fixViolations() error {
	skip := make(map[int]bool)
	for f.res.Transforms < f.opt.MaxTransforms {
		if f.stopped() {
			return nil
		}
		fi := f.worstViolatingEndpoint(skip)
		if fi < 0 {
			break // timing closed (or every violator exhausted)
		}
		if f.violatedCount() <= f.opt.MaxViolatedAccept {
			break
		}
		improved, err := f.repairEndpoint(fi)
		if err != nil {
			return err
		}
		if !improved {
			skip[fi] = true
			continue
		}
		if err := f.maybeRecalibrate(); err != nil {
			return err
		}
	}
	return nil
}

// validateViolators subjects every timer-violating endpoint to PBA
// path validation — the GBA flow's obligatory reality check — and returns
// how many endpoints truly violate. Its cost is proportional to the number
// of violating endpoints, which is exactly where GBA pessimism hurts.
func (f *flow) validateViolators() int {
	t0 := time.Now()
	f.res.Validations++
	obsValidations.Inc()
	an := pba.NewAnalyzer(f.r)
	real := 0
	for fi, s := range f.r.Slack {
		if s >= 0 {
			continue
		}
		worst := math.Inf(1)
		for _, p := range an.KWorst(fi, 10, nil) {
			if ps := an.Retime(p).Slack; ps < worst {
				worst = ps
			}
		}
		if !math.IsInf(worst, 1) && worst < 0 {
			real++
		}
	}
	f.res.ValidateElapsed += time.Since(t0)
	return real
}

func (f *flow) violatedCount() int {
	n := 0
	for _, s := range f.r.Slack {
		if s < 0 {
			n++
		}
	}
	obsViolated.SetInt(n)
	return n
}

// repairEndpoint attempts one transform on the endpoint's worst path.
func (f *flow) repairEndpoint(fi int) (bool, error) {
	path := f.tracePath(fi)
	if len(path) == 0 {
		return false, nil
	}
	// First choice: upsize the path gate with the largest derated delay
	// that still has headroom. Try candidates in decreasing delay order.
	type cand struct {
		id    int
		delay float64
	}
	var cands []cand
	for _, v := range path {
		if f.d.Lib.Upsize(f.d.Instances[v].Cell) != nil {
			cands = append(cands, cand{v, f.r.CellDelay[v]})
		}
	}
	for len(cands) > 0 {
		best := 0
		for i := range cands {
			if cands[i].delay > cands[best].delay {
				best = i
			}
		}
		id := cands[best].id
		cands = append(cands[:best], cands[best+1:]...)
		if ok := f.tryResize(fi, id, true); ok {
			f.res.Upsized++
			f.noteTransform()
			return true, nil
		}
	}
	// Second choice: buffer the path net with the largest wire delay.
	if f.res.BuffersAdded < f.opt.MaxBuffers {
		bestNet, bestWD := -1, f.opt.WireDelayForBuf
		for _, v := range path {
			out := f.d.Instances[v].Output
			if out < 0 {
				continue
			}
			if wd := f.d.Nets[out].WireDelay; wd >= bestWD {
				bestNet, bestWD = out, wd
			}
		}
		if bestNet >= 0 {
			if ok, err := f.tryBuffer(fi, bestNet); err != nil {
				return false, err
			} else if ok {
				f.res.BuffersAdded++
				f.noteTransform()
				return true, nil
			}
		}
	}
	return false, nil
}

// tryResize applies a resize (up=true grows the drive) and keeps it only
// when the target endpoint's slack improves without making the design's
// worst slack worse.
func (f *flow) tryResize(fi, id int, up bool) bool {
	inst := f.d.Instances[id]
	from := inst.Cell
	var to *cells.Cell
	if up {
		to = f.d.Lib.Upsize(from)
	} else {
		to = f.d.Lib.Downsize(from)
	}
	if to == nil {
		return false
	}
	before := f.r.Slack[fi]
	beforeWNS := f.r.WNS
	if err := f.d.Resize(inst, to); err != nil {
		return false
	}
	mod := f.modifiedSet(id)
	f.r.Update(mod)
	// Repair accepts any move that helps the target endpoint without
	// hurting the design's worst slack. A strict TNS guard would paralyze
	// repair inside tightly-coupled cones, where upsizing one gate always
	// taxes a sibling path slightly.
	if f.r.Slack[fi] > before+1e-9 && f.r.WNS >= beforeWNS-1e-9 {
		f.noteDirty(mod)
		return true
	}
	// Revert.
	if err := f.d.Resize(inst, from); err == nil {
		f.r.Update(mod)
	} else {
		// The design kept the trial cell: the gate is dirty after all.
		f.noteDirty(mod)
	}
	return false
}

// modifiedSet returns the instances whose timing must be re-evaluated
// after instance id changed cell: the instance itself plus the drivers of
// its input nets (their loads changed).
func (f *flow) modifiedSet(id int) []int {
	inst := f.d.Instances[id]
	mod := []int{id}
	for _, nid := range inst.Inputs {
		if drv := f.d.Nets[nid].Driver; drv >= 0 && !f.g.IsClock(drv) {
			mod = append(mod, drv)
		}
	}
	return mod
}

// tryBuffer inserts a buffer on the net and keeps it only when the target
// endpoint improves. Buffer insertion changes connectivity, so the graph
// is rebuilt (and mGBA recalibrated) either way.
func (f *flow) tryBuffer(fi, net int) (bool, error) {
	buf, err := f.d.Lib.Pick(cells.Buf, 4)
	if err != nil {
		return false, err
	}
	before := f.r.Slack[fi]
	beforeTNS := f.r.TNS
	b, err := f.d.InsertBuffer(net, buf, "")
	if err != nil {
		return false, nil // un-bufferable net: not an error, just no fix
	}
	if err := f.refresh(); err != nil {
		return false, err
	}
	if f.r.Slack[fi] > before+1e-9 && f.r.TNS >= beforeTNS-1e-9 {
		return true, nil
	}
	// Rejected: unwind the insertion and restore the timing state.
	if err := f.d.RemoveBuffer(b); err != nil {
		return false, err
	}
	if err := f.refresh(); err != nil {
		return false, err
	}
	return false, nil
}

// recoverArea downsizes gates whose paths have slack to spare — the phase
// where a less pessimistic timer directly buys area and leakage. The walk
// position survives in checkpoints (the topological order is a pure
// function of the design, and recovery never edits connectivity), so a
// resumed run continues exactly where the interrupted one stopped.
func (f *flow) recoverArea() error {
	for ; f.recoveryPos < len(f.g.Topo); f.recoveryPos++ {
		if f.stopped() {
			return nil
		}
		if f.res.Transforms >= f.opt.MaxTransforms {
			break
		}
		v := f.g.Topo[f.recoveryPos]
		inst := f.d.Instances[v]
		if inst.IsFF() || f.g.IsClock(v) {
			continue
		}
		slack := f.r.InstanceSlack(v)
		if math.IsInf(slack, 1) || slack < f.opt.RecoveryMargin {
			continue
		}
		if f.tryDownsize(v) {
			f.res.Downsized++
			f.noteTransform()
			if err := f.maybeRecalibrate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// tryDownsize shrinks a gate and keeps the change only if the design's
// worst slack stays above the recovery margin's floor (no new violations).
func (f *flow) tryDownsize(id int) bool {
	inst := f.d.Instances[id]
	from := inst.Cell
	to := f.d.Lib.Downsize(from)
	if to == nil {
		return false
	}
	beforeWNS := f.r.WNS
	beforeTNS := f.r.TNS
	if err := f.d.Resize(inst, to); err != nil {
		return false
	}
	mod := f.modifiedSet(id)
	f.r.Update(mod)
	// Keep when no violating endpoint got worse and no new violation
	// appeared.
	if f.r.WNS >= beforeWNS-1e-9 && f.r.TNS >= beforeTNS-1e-9 {
		f.noteDirty(mod)
		return true
	}
	if err := f.d.Resize(inst, from); err == nil {
		f.r.Update(mod)
	} else {
		f.noteDirty(mod)
	}
	return false
}

// finish records the final QoR, including a PBA sign-off measurement so
// that GBA-flow and mGBA-flow results are compared on equal footing. It
// always runs, interrupted or not: a cancelled run still reports honest
// final numbers for the state it leaves the design in.
func (f *flow) finish() {
	f.res.TimerWNS = f.r.WNS
	f.res.TimerTNS = f.r.TNS
	f.res.ViolatedEndpoints = f.violatedCount()
	f.res.Area = f.d.Area()
	f.res.Leakage = f.d.Leakage()
	f.res.Buffers = f.d.BufferCount()
	if f.opt.Timer == TimerMGBA {
		f.res.Weights = f.weights
	}

	f.res.SignoffWNS, f.res.SignoffTNS = signoff(f.sess, f.opt.STA)
}

// Signoff measures WNS/TNS with PBA: for every endpoint, the worst PBA
// slack among its worst GBA paths. This is the golden yardstick the paper
// uses for its QoR tables (PBA "sign-off stage" timing).
func Signoff(g *graph.Graph, cfg sta.Config) (wns, tns float64) {
	return signoff(engine.NewSession(g), cfg)
}

// signoff is Signoff against an existing timing session.
func signoff(s *engine.Session, cfg sta.Config) (wns, tns float64) {
	g := s.G
	cfg.Weights = nil
	r := s.Run(cfg)
	defer r.Release()
	an := pba.NewAnalyzer(r)
	for fi, ffID := range g.D.FFs {
		if len(g.Fanin[ffID]) == 0 {
			continue
		}
		worst := math.Inf(1)
		// The PBA-worst path is among the GBA-worst few: GBA ordering is
		// a conservative bound on the PBA ordering.
		for _, p := range an.KWorst(fi, 10, nil) {
			if s := an.Retime(p).Slack; s < worst {
				worst = s
			}
		}
		// The endpoint's PBA slack is the slack of its PBA-worst path,
		// i.e. the minimum over paths of the per-path slack. KWorst
		// returns GBA-worst-first, so taking the min over the first few
		// is the standard sign-off approximation.
		if math.IsInf(worst, 1) {
			continue
		}
		if worst < 0 {
			tns += worst
			if worst < wns {
				wns = worst
			}
		}
	}
	return wns, tns
}
