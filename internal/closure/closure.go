// Package closure implements the post-route timing-closure optimization
// framework of the paper's §3.4 (the left half of Fig. 5): a scheduler
// picks violating endpoints and repairs their worst paths with moves from
// a pluggable transform registry (internal/transform), followed by an
// area/leakage recovery pass that downsizes gates with slack to spare.
//
// The default registry reproduces the historical hard-coded loop exactly
// — gate upsizing first, buffer insertion second, greedy
// worst-endpoint-first scheduling — and Options.Transforms extends it
// with register retiming, the structural move whose dirty sets drive the
// calibrator's incremental recalibration across a session rebind.
//
// The framework is timer-agnostic: it runs against original GBA or
// against mGBA (GBA with calibrated per-gate weighting factors,
// recalibrated whenever the netlist structure changes). Because mGBA sees
// less pessimism, the mGBA-embedded flow stops fixing earlier, fixes
// fewer endpoints, recovers more area, and finishes faster — the effects
// reported in Tables 2 and 5.
//
// The flow is built to survive long runs on real infrastructure: it
// honors context cancellation at transform granularity (an interrupted
// run still returns a valid, non-optimistic Result), it records
// calibration degradations and faults instead of aborting, and it can
// periodically write atomic checkpoints (format v2: per-transform state
// blobs ride along) from which Resume continues an interrupted run to the
// same closure state an uninterrupted run reaches.
package closure

import (
	"time"

	"mgba/internal/core"
	"mgba/internal/sta"
)

// TimerKind selects the timing engine embedded in the flow.
type TimerKind int

// The two flow variants compared by Tables 2 and 5.
const (
	TimerGBA  TimerKind = iota // original graph-based analysis
	TimerMGBA                  // modified GBA with calibrated weights
)

func (k TimerKind) String() string {
	if k == TimerMGBA {
		return "mGBA"
	}
	return "GBA"
}

// DefaultRetimeBudget caps accepted retimes when the retime transform is
// enabled without an explicit KindBudgets entry: each slide rebuilds the
// timing session, so an unbounded structural budget could dominate the
// run the way MaxBuffers bounds buffer insertions.
const DefaultRetimeBudget = 40

// DefaultRetimeMaxLag is the per-register lag-magnitude cap used when
// Options.RetimeMaxLag is zero.
const DefaultRetimeMaxLag = 2

// Options controls one optimization run.
type Options struct {
	Timer TimerKind
	STA   sta.Config   // base analysis features (weights are managed here)
	Core  core.Options // mGBA calibration settings (TimerMGBA only)

	MaxTransforms     int     // total accepted-transform budget
	MaxBuffers        int     // buffer insertions allowed (graph rebuilds)
	WireDelayForBuf   float64 // buffer nets with at least this wire delay, ps
	RecalibrateEvery  int     // mGBA: recalibrate after this many transforms
	RecoveryMargin    float64 // downsizing keeps endpoint slack above this, ps
	MaxViolatedAccept int     // stop when this few endpoints remain violated

	// Transforms selects and orders the repair transforms tried on each
	// violating endpoint: "upsize", "buffer", "retime". nil selects the
	// default registry — upsize then buffer, the historical loop.
	Transforms []string
	// Scheduler selects the endpoint-scheduling policy: "" or "greedy"
	// (worst endpoint first, the historical order) or "roundrobin"
	// (cycle through violating endpoints in index order).
	Scheduler string
	// KindBudgets caps accepted transforms per kind. Kinds without an
	// entry default to MaxBuffers for "buffer", DefaultRetimeBudget for
	// "retime", and no per-kind cap otherwise (MaxTransforms still
	// bounds the total).
	KindBudgets map[string]int
	// RetimeMaxLag caps how far any register may drift (in slides) from
	// its original position; zero means DefaultRetimeMaxLag.
	RetimeMaxLag int

	// ColdRecalibrate disables the incremental calibrator and performs
	// every mid-flow recalibration from scratch. Ablation switch: the two
	// settings produce bit-identical results; the incremental path is just
	// faster (see BenchmarkRecalibrateIncremental).
	ColdRecalibrate bool

	// CheckpointPath, when non-empty, makes the flow periodically write a
	// resumable checkpoint (design + weights + flow state) to this path.
	// Writes are atomic: a crash mid-write leaves the previous checkpoint
	// intact. Checkpoint failures are recorded in Result.Faults, never
	// fatal.
	CheckpointPath string
	// CheckpointEvery is the number of accepted transforms between
	// periodic checkpoints. Zero checkpoints only at phase boundaries.
	CheckpointEvery int
	// OnCheckpoint, when set, is called after every successful checkpoint
	// write with the checkpoint path. Used by tests and progress monitors.
	OnCheckpoint func(path string)
}

// DefaultOptions returns a balanced configuration for the experiment suite.
// The embedded calibration uses a faster solver profile than a standalone
// fit: it starts the row-sampling schedule higher and accepts a slightly
// looser tolerance, because it will be refreshed several times anyway.
func DefaultOptions(timer TimerKind) Options {
	coreOpt := core.DefaultOptions()
	coreOpt.Solver.MinRows = 512
	coreOpt.Solver.MaxIters = 1500
	return Options{
		Timer:             timer,
		STA:               sta.DefaultConfig(),
		Core:              coreOpt,
		MaxTransforms:     4000,
		MaxBuffers:        60,
		WireDelayForBuf:   15,
		RecalibrateEvery:  150,
		RecoveryMargin:    5,
		MaxViolatedAccept: 0,
	}
}

// Result summarizes one optimization run.
type Result struct {
	Timer TimerKind

	// Final QoR, measured both by the embedded timer and by PBA sign-off.
	TimerWNS, TimerTNS     float64
	SignoffWNS, SignoffTNS float64
	ViolatedEndpoints      int // by the embedded timer

	Area    float64
	Leakage float64
	Buffers int

	// Kinds counts accepted transforms per transform kind. The named
	// trio below is the historical derived view of the same counts
	// (retimes appear only in Kinds).
	Kinds map[string]int

	Upsized, Downsized, BuffersAdded int
	Transforms                       int // accepted transforms in total
	Calibrations                     int
	Validations                      int // GBA flow: PBA validation passes

	Elapsed         time.Duration // whole flow
	CalibElapsed    time.Duration // time inside mGBA calibration (Table 5 split)
	ValidateElapsed time.Duration // GBA flow: PBA validation of violators

	// Robustness record.

	Weights []float64 // final mGBA weights (nil for the GBA flow)
	// Corners reports each extra corner's final timing in a multi-corner
	// run (Options.Core.Corners, N>=2); nil otherwise. The selection
	// corner is TimerWNS/TimerTNS above.
	Corners []CornerQoR
	// Interrupted is true when the run was stopped by context cancellation
	// or deadline; the Result is still a valid (partial) outcome.
	Interrupted bool
	// StopReason is "completed", or the context error that stopped the run.
	StopReason string
	// Resumed is true when the run continued from a checkpoint.
	Resumed bool
	// Checkpoints counts successful checkpoint writes (cumulative across
	// resumes).
	Checkpoints int
	// DegradedCalibrations counts calibrations that fell down the solver
	// degradation ladder or were cut short by cancellation.
	DegradedCalibrations int
	// Faults records non-fatal failures absorbed by the flow: calibration
	// fallbacks to identity weights and checkpoint write errors.
	Faults []string
}

// Retimed returns the accepted register-retiming count — the structural
// analogue of the Upsized/Downsized/BuffersAdded trio.
func (r *Result) Retimed() int { return r.Kinds["retime"] }
