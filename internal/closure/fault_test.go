package closure_test

import (
	"context"
	"errors"
	"io"
	"math"
	"path/filepath"
	"sync/atomic"
	"testing"

	"mgba/internal/closure"
	"mgba/internal/faultinject"
	"mgba/internal/gen"
	"mgba/internal/netlist"
)

// faultDesign is a smaller fixture than the QoR tests use: the fault suite
// exercises control flow, not closure quality.
func faultDesign(t *testing.T, seed uint64) *netlist.Design {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 400, 50
	cfg.Seed = seed
	cfg.Name = "fault-test"
	cfg.DepthCap = 0.05
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fastOptions shrinks the flow for fault tests.
func fastOptions(timer closure.TimerKind) closure.Options {
	opt := closure.DefaultOptions(timer)
	opt.MaxTransforms = 400
	opt.MaxBuffers = 10
	opt.RecalibrateEvery = 60
	return opt
}

// TestFlowSurvivesNaNGradients: with every solver gradient poisoned, the
// mGBA flow must degrade to identity weights (mGBA == GBA), record the
// faults, and still terminate with a valid optimized design.
func TestFlowSurvivesNaNGradients(t *testing.T) {
	d := faultDesign(t, 8001)
	faultinject.SetSlice(faultinject.SolverGradient, func(v []float64) {
		for i := range v {
			v[i] = math.NaN()
		}
	})
	defer faultinject.Reset()
	res, err := closure.Run(context.Background(), d, fastOptions(closure.TimerMGBA))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid after faulted run: %v", err)
	}
	if res.Interrupted {
		t.Fatal("faulted run reported interrupted")
	}
	// Every calibration that had paths to fit must have degraded; ones on
	// a timing-closed design legitimately return a clean identity model.
	if res.DegradedCalibrations == 0 {
		t.Fatalf("no degraded calibrations recorded out of %d", res.Calibrations)
	}
	if len(res.Faults) == 0 {
		t.Fatal("identity fallbacks left no fault record")
	}
	for _, w := range res.Weights {
		if w != 1 {
			t.Fatalf("poisoned calibration produced non-identity weight %v", w)
		}
	}
}

// TestFlowSurvivesDivergentSteps: amplified solver steps must never leak
// non-finite weights into the timer or crash the flow.
func TestFlowSurvivesDivergentSteps(t *testing.T) {
	d := faultDesign(t, 8002)
	faultinject.SetFloat(faultinject.SolverStep, func(v float64) float64 { return v * 1e12 })
	defer faultinject.Reset()
	res, err := closure.Run(context.Background(), d, fastOptions(closure.TimerMGBA))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid after faulted run: %v", err)
	}
	for i, w := range res.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("non-finite weight %v at instance %d", w, i)
		}
	}
	if math.IsNaN(res.TimerTNS) || math.IsNaN(res.SignoffTNS) {
		t.Fatal("non-finite QoR escaped the flow")
	}
}

// TestRunAlreadyCancelled: a context that is cancelled before Run starts
// must still yield an immediate, usable, zero-transform result.
func TestRunAlreadyCancelled(t *testing.T) {
	for _, timer := range []closure.TimerKind{closure.TimerGBA, closure.TimerMGBA} {
		d := faultDesign(t, 8003)
		area0 := d.Area()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := closure.Run(ctx, d, fastOptions(timer))
		if err != nil {
			t.Fatalf("%v: %v", timer, err)
		}
		if !res.Interrupted {
			t.Fatalf("%v: cancelled run not marked interrupted", timer)
		}
		if res.Transforms != 0 {
			t.Fatalf("%v: cancelled run applied %d transforms", timer, res.Transforms)
		}
		if d.Area() != area0 {
			t.Fatalf("%v: cancelled run mutated the design", timer)
		}
		if math.IsNaN(res.TimerTNS) || res.ViolatedEndpoints == 0 {
			t.Fatalf("%v: cancelled result lacks a usable timing view (TNS %v, violated %d)",
				timer, res.TimerTNS, res.ViolatedEndpoints)
		}
		if res.StopReason == "completed" || res.StopReason == "" {
			t.Fatalf("%v: wrong stop reason %q", timer, res.StopReason)
		}
	}
}

// TestCancelMidRunIsSafe: cancelling while the flow is mid-repair must
// stop it promptly at a transform boundary, leaving a valid design, honest
// counters, and a non-optimistic timing view (the PBA sign-off can only be
// better than or epsilon-close to what the embedded timer promised).
func TestCancelMidRunIsSafe(t *testing.T) {
	d := faultDesign(t, 8004)
	ctx, cancel := context.WithCancel(context.Background())
	opt := fastOptions(closure.TimerMGBA)
	opt.CheckpointPath = filepath.Join(t.TempDir(), "ckpt.json")
	opt.CheckpointEvery = 10
	ckpts := 0
	opt.OnCheckpoint = func(string) {
		ckpts++
		if ckpts == 3 {
			cancel()
		}
	}
	res, err := closure.Run(ctx, d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Skip("flow finished before the third checkpoint; nothing to assert")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid after cancellation: %v", err)
	}
	if res.Transforms == 0 {
		t.Fatal("cancelled after 3 checkpoints but no transforms recorded")
	}
	if res.Transforms != res.Upsized+res.Downsized+res.BuffersAdded {
		t.Fatal("transform accounting broken by cancellation")
	}
	// Epsilon-pessimism safety: the mGBA view the flow stopped under must
	// not promise better timing than PBA sign-off delivers beyond the
	// calibration epsilon.
	eps := opt.Core.Epsilon
	if res.SignoffWNS < res.TimerWNS+eps*math.Abs(res.TimerWNS)-1e-6 {
		t.Fatalf("interrupted flow optimistic: timer WNS %v vs signoff %v", res.TimerWNS, res.SignoffWNS)
	}
}

// TestCheckpointResumeEquivalence is the acceptance criterion of the
// robustness work: a run killed at an arbitrary checkpoint and resumed
// must reach the same closure state as an uninterrupted run.
func TestCheckpointResumeEquivalence(t *testing.T) {
	opt := fastOptions(closure.TimerMGBA)

	// Reference: uninterrupted run.
	ref, err := closure.Run(context.Background(), faultDesign(t, 8005), opt)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: kill at the 3rd checkpoint (mid-repair, a few
	// transforms in), then resume until completion.
	path := filepath.Join(t.TempDir(), "ckpt.json")
	opt.CheckpointPath = path
	opt.CheckpointEvery = 5
	ctx, cancel := context.WithCancel(context.Background())
	ckpts := 0
	opt.OnCheckpoint = func(string) {
		ckpts++
		if ckpts == 3 {
			cancel()
		}
	}
	res, err := closure.Run(ctx, faultDesign(t, 8005), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Skip("flow completed before the kill point; equivalence trivially holds")
	}
	opt.OnCheckpoint = nil
	for hops := 0; res.Interrupted; hops++ {
		if hops > 10 {
			t.Fatal("resume never completed")
		}
		res, err = closure.Resume(context.Background(), path, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Resumed {
			t.Fatal("resumed run not marked resumed")
		}
	}

	if res.ViolatedEndpoints != ref.ViolatedEndpoints {
		t.Fatalf("violated endpoints diverged: resumed %d vs uninterrupted %d",
			res.ViolatedEndpoints, ref.ViolatedEndpoints)
	}
	if math.Abs(res.TimerTNS-ref.TimerTNS) > 1e-6 {
		t.Fatalf("timer TNS diverged: resumed %v vs uninterrupted %v", res.TimerTNS, ref.TimerTNS)
	}
	if res.Transforms != ref.Transforms {
		t.Fatalf("transform count diverged: resumed %d vs uninterrupted %d", res.Transforms, ref.Transforms)
	}
	if math.Abs(res.Area-ref.Area) > 1e-9 {
		t.Fatalf("area diverged: resumed %v vs uninterrupted %v", res.Area, ref.Area)
	}
}

// TestResumeOfCompletedRunIsNoOp: resuming a checkpoint whose flow already
// finished must return promptly without applying further transforms.
func TestResumeOfCompletedRunIsNoOp(t *testing.T) {
	d := faultDesign(t, 8006)
	opt := fastOptions(closure.TimerMGBA)
	opt.CheckpointPath = filepath.Join(t.TempDir(), "ckpt.json")
	res, err := closure.Run(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("unexpected interruption")
	}
	res2, err := closure.Resume(context.Background(), opt.CheckpointPath, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Transforms != res.Transforms {
		t.Fatalf("no-op resume changed transform count: %d vs %d", res2.Transforms, res.Transforms)
	}
	if res2.ViolatedEndpoints != res.ViolatedEndpoints {
		t.Fatalf("no-op resume changed violations: %d vs %d", res2.ViolatedEndpoints, res.ViolatedEndpoints)
	}
}

// TestResumeRejectsTimerMismatch: a checkpoint written by one flow variant
// must not silently continue under the other.
func TestResumeRejectsTimerMismatch(t *testing.T) {
	d := faultDesign(t, 8007)
	opt := fastOptions(closure.TimerGBA)
	opt.CheckpointPath = filepath.Join(t.TempDir(), "ckpt.json")
	if _, err := closure.Run(context.Background(), d, opt); err != nil {
		t.Fatal(err)
	}
	bad := fastOptions(closure.TimerMGBA)
	if _, err := closure.Resume(context.Background(), opt.CheckpointPath, bad); err == nil {
		t.Fatal("timer mismatch accepted")
	}
}

// TestGBAFlowCheckpointResume: the checkpoint machinery also covers the
// GBA flow (nil weights round-trip).
func TestGBAFlowCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	opt := fastOptions(closure.TimerGBA)
	opt.CheckpointPath = path
	opt.CheckpointEvery = 15
	ctx, cancel := context.WithCancel(context.Background())
	ckpts := 0
	opt.OnCheckpoint = func(string) {
		ckpts++
		if ckpts == 2 {
			cancel()
		}
	}
	res, err := closure.Run(ctx, faultDesign(t, 8008), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Skip("flow completed before the kill point")
	}
	opt.OnCheckpoint = nil
	for hops := 0; res.Interrupted; hops++ {
		if hops > 10 {
			t.Fatal("resume never completed")
		}
		res, err = closure.Resume(context.Background(), path, opt)
		if err != nil {
			t.Fatal(err)
		}
	}
	if res.Weights != nil {
		t.Fatal("GBA flow grew weights through resume")
	}
	if res.Validations == 0 {
		t.Fatal("resumed GBA flow never validated")
	}
}

// TestCancelDuringRecalibration: cancelling from inside the calibrator's
// path enumeration (after the initial cold calibration) must abandon the
// recalibration non-optimistically — identity weights, Partial recorded —
// and stop the flow at the next transform boundary with a valid design.
func TestCancelDuringRecalibration(t *testing.T) {
	d := faultDesign(t, 8009)
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	faultinject.SetFloat(faultinject.PathEnum, func(v float64) float64 {
		// Let the initial cold calibration's enumeration pass, then cancel
		// mid-enumeration of a later (incremental) recalibration.
		if calls.Add(1) == 60 {
			cancel()
		}
		return v
	})
	defer faultinject.Reset()
	opt := fastOptions(closure.TimerMGBA)
	opt.RecalibrateEvery = 20
	res, err := closure.Run(ctx, d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Skip("flow finished before the cancellation point; nothing to assert")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid after mid-recalibration cancel: %v", err)
	}
	if math.IsNaN(res.TimerTNS) || math.IsNaN(res.SignoffTNS) {
		t.Fatal("non-finite QoR escaped the cancelled flow")
	}
	for i, w := range res.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w > 1 {
			t.Fatalf("optimistic or non-finite weight %v at instance %d after abandon", w, i)
		}
	}
	// Epsilon-pessimism safety: the view the flow stopped under must not
	// promise better timing than sign-off delivers.
	eps := opt.Core.Epsilon
	if res.SignoffWNS < res.TimerWNS+eps*math.Abs(res.TimerWNS)-1e-6 {
		t.Fatalf("interrupted recalibration optimistic: timer WNS %v vs signoff %v",
			res.TimerWNS, res.SignoffWNS)
	}
}

// TestFlowSurvivesCorruptedRowPatch: poisoning every incrementally patched
// problem row with NaN must push the solve down the degradation ladder to
// identity weights, invalidate the calibrator's cache (so the following
// cold calibration is clean), and never leak non-finite state.
func TestFlowSurvivesCorruptedRowPatch(t *testing.T) {
	// Seed chosen so the repair trajectory keeps the calibrator's column
	// map prefix-stable across several recalibrations (rows get patched
	// rather than the matrix rebuilt).
	d := faultDesign(t, 8028)
	patched := 0
	faultinject.SetSlice(faultinject.SparseRowPatch, func(v []float64) {
		patched++
		for i := range v {
			v[i] = math.NaN()
		}
	})
	defer faultinject.Reset()
	opt := fastOptions(closure.TimerMGBA)
	// A tight cadence keeps each dirty batch small, so the calibrator's
	// column map stays prefix-stable and rows are patched in place (large
	// batches fall back to a full matrix rebuild, bypassing the hook).
	opt.RecalibrateEvery = 4
	res, err := closure.Run(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid after corrupted-patch run: %v", err)
	}
	if patched == 0 {
		t.Skip("no incremental row patches happened; fixture too tame")
	}
	if res.DegradedCalibrations == 0 && len(res.Faults) == 0 {
		t.Fatal("corrupted row patches left no degradation or fault record")
	}
	for i, w := range res.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("non-finite weight %v at instance %d", w, i)
		}
	}
	if math.IsNaN(res.TimerTNS) || math.IsNaN(res.SignoffTNS) {
		t.Fatal("non-finite QoR escaped the flow")
	}
	// Non-optimism: sign-off must not be worse than the timer promised
	// beyond the calibration epsilon.
	eps := opt.Core.Epsilon
	if res.SignoffWNS < res.TimerWNS+eps*math.Abs(res.TimerWNS)-1e-6 {
		t.Fatalf("corrupted calibration optimistic: timer WNS %v vs signoff %v",
			res.TimerWNS, res.SignoffWNS)
	}
}

// failingWriter truncates every stream after limit bytes, the same write
// fault the netio crash suite injects.
type failingWriter struct {
	w       io.Writer
	limit   int
	written int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.limit {
		n := f.limit - f.written
		if n > 0 {
			f.w.Write(p[:n])
			f.written += n
		}
		return n, errors.New("injected write failure")
	}
	n, err := f.w.Write(p)
	f.written += n
	return n, err
}

// TestRetimeFlowSurvivesCheckpointWriteFault extends the corruption suite
// to the v2 per-transform checkpoint path: with every checkpoint write
// truncated mid-stream, a retime-enabled flow must record the failures as
// faults and still complete with the exact design and QoR of an unfaulted
// run — losing checkpoints never loses or perturbs the optimization.
func TestRetimeFlowSurvivesCheckpointWriteFault(t *testing.T) {
	opt := retimeOptions(closure.TimerMGBA)
	ref, err := closure.Optimize(retimeDesign(t, 2), opt)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Retimed() == 0 {
		t.Fatalf("no retiming accepted; fixture too tame: kinds=%v", ref.Kinds)
	}

	faultinject.SetWriter(faultinject.NetioWrite, func(w io.Writer) io.Writer {
		return &failingWriter{w: w, limit: 64}
	})
	defer faultinject.Reset()

	opt.CheckpointPath = filepath.Join(t.TempDir(), "ckpt.json")
	opt.CheckpointEvery = 1
	res, err := closure.Optimize(retimeDesign(t, 2), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) == 0 {
		t.Fatal("truncated checkpoint writes recorded no faults")
	}
	if res.Checkpoints != 0 {
		t.Fatalf("%d checkpoints counted as written despite the write fault", res.Checkpoints)
	}
	if res.Transforms != ref.Transforms || res.Retimed() != ref.Retimed() {
		t.Fatalf("checkpoint faults perturbed the flow: %d/%d transforms vs %d/%d",
			res.Transforms, res.Retimed(), ref.Transforms, ref.Retimed())
	}
	if res.TimerWNS != ref.TimerWNS || res.TimerTNS != ref.TimerTNS {
		t.Fatalf("checkpoint faults perturbed QoR: WNS %v vs %v, TNS %v vs %v",
			res.TimerWNS, ref.TimerWNS, res.TimerTNS, ref.TimerTNS)
	}
}
