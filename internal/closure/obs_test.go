package closure_test

import (
	"bytes"
	"fmt"
	"testing"

	"mgba/internal/closure"
	"mgba/internal/gen"
	"mgba/internal/obs"
)

// TestObsOnOffClosureBitIdentical extends the obs inertness contract to
// the whole closure flow on the D3 suite design: with metrics, phase
// spans and the event sink live, the flow must accept the exact same
// transform sequence and land on bit-identical QoR and weights as an
// uninstrumented run, at serial and parallel settings.
func TestObsOnOffClosureBitIdentical(t *testing.T) {
	cfg := gen.Suite()[2] // D3

	run := func(par int, on bool) *closure.Result {
		t.Helper()
		prev := obs.Enabled()
		defer obs.Enable(prev)
		obs.Enable(on)
		if on {
			var sink bytes.Buffer
			obs.SetSink(&sink)
			defer obs.SetSink(nil)
		}
		d, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opt := closure.DefaultOptions(closure.TimerMGBA)
		// Force mid-flow recalibrations so the instrumented incremental
		// calibrator path is exercised, not just the cold one.
		opt.RecalibrateEvery = 25
		opt.STA.Parallelism = par
		res, err := closure.Optimize(d, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			off := run(par, false)
			on := run(par, true)
			if on.Transforms != off.Transforms {
				t.Fatalf("transform counts differ: obs-on %d vs obs-off %d",
					on.Transforms, off.Transforms)
			}
			if on.Upsized != off.Upsized || on.Downsized != off.Downsized ||
				on.BuffersAdded != off.BuffersAdded {
				t.Fatalf("transform mix differs: up %d/%d down %d/%d buf %d/%d",
					on.Upsized, off.Upsized, on.Downsized, off.Downsized,
					on.BuffersAdded, off.BuffersAdded)
			}
			if on.Calibrations != off.Calibrations || on.Validations != off.Validations {
				t.Fatalf("pipeline counts differ: calib %d/%d validate %d/%d",
					on.Calibrations, off.Calibrations, on.Validations, off.Validations)
			}
			if on.TimerWNS != off.TimerWNS || on.TimerTNS != off.TimerTNS ||
				on.SignoffWNS != off.SignoffWNS || on.SignoffTNS != off.SignoffTNS {
				t.Fatalf("QoR differs: timer %v/%v %v/%v signoff %v/%v %v/%v",
					on.TimerWNS, off.TimerWNS, on.TimerTNS, off.TimerTNS,
					on.SignoffWNS, off.SignoffWNS, on.SignoffTNS, off.SignoffTNS)
			}
			if on.Area != off.Area || on.Leakage != off.Leakage {
				t.Fatalf("area/leakage differ: %v/%v vs %v/%v",
					on.Area, off.Area, on.Leakage, off.Leakage)
			}
			if len(on.Weights) != len(off.Weights) {
				t.Fatalf("weight lengths differ: %d vs %d", len(on.Weights), len(off.Weights))
			}
			for i := range off.Weights {
				if on.Weights[i] != off.Weights[i] {
					t.Fatalf("weights diverge at %d: %v vs %v", i, on.Weights[i], off.Weights[i])
				}
			}
		})
	}
}
