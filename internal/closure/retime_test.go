package closure_test

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mgba/internal/closure"
	"mgba/internal/fixtures"
	"mgba/internal/netlist"
)

// retimeOptions is the knob set shared by the retiming tests: the full
// registry, a dense recalibration cadence so structural moves land between
// incremental recalibrations, and short repair rounds for speed.
func retimeOptions(timer closure.TimerKind) closure.Options {
	opt := closure.DefaultOptions(timer)
	opt.Transforms = []string{"upsize", "buffer", "retime"}
	opt.RecalibrateEvery = 3
	return opt
}

func retimeDesign(t *testing.T, lanes int) *netlist.Design {
	t.Helper()
	d, err := fixtures.RetimePipeline(lanes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRetimeAcceptedOnRegisterBoundPipeline is the acceptance criterion of
// the retiming transform: on a fixture whose critical paths are register
// bound (every gate already at max drive, period set below what any
// sizing/buffering can reach), the default registry is stuck, and enabling
// retiming closes timing by sliding registers into the deep stage.
func TestRetimeAcceptedOnRegisterBoundPipeline(t *testing.T) {
	for _, timer := range []closure.TimerKind{closure.TimerGBA, closure.TimerMGBA} {
		t.Run(timer.String(), func(t *testing.T) {
			// Default registry: no move available, violations remain.
			base, err := closure.Optimize(retimeDesign(t, 2), closure.DefaultOptions(timer))
			if err != nil {
				t.Fatal(err)
			}
			if base.ViolatedEndpoints == 0 {
				t.Fatal("fixture not register bound: default registry closed it")
			}

			res, err := closure.Optimize(retimeDesign(t, 2), retimeOptions(timer))
			if err != nil {
				t.Fatal(err)
			}
			if res.Retimed() == 0 {
				t.Fatalf("no retiming accepted: kinds=%v wns=%v", res.Kinds, res.TimerWNS)
			}
			if res.TimerWNS <= base.TimerWNS {
				t.Fatalf("retiming did not improve WNS: %v vs default %v", res.TimerWNS, base.TimerWNS)
			}
			if res.Transforms != res.Upsized+res.Downsized+res.BuffersAdded+res.Retimed() {
				t.Fatalf("transform accounting broken: total %d kinds %v", res.Transforms, res.Kinds)
			}
		})
	}
}

// TestRetimeIncrementalMatchesCold extends the incremental-calibration
// contract to connectivity-changing moves: with retiming enabled, the
// dirty-set Recalibrate path (rebound to the rebuilt session after each
// accepted slide) must walk the same transform sequence and land on
// bit-identical QoR, weights, and design as the ColdRecalibrate ablation.
func TestRetimeIncrementalMatchesCold(t *testing.T) {
	runFlow := func(cold bool) (*closure.Result, string) {
		d := retimeDesign(t, 3)
		opt := retimeOptions(closure.TimerMGBA)
		opt.ColdRecalibrate = cold
		res, err := closure.Optimize(d, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res, hashDesign(d)
	}

	inc, incHash := runFlow(false)
	cold, coldHash := runFlow(true)

	if inc.Retimed() == 0 {
		t.Fatalf("no retiming accepted; fixture too tame: kinds=%v", inc.Kinds)
	}
	if inc.Calibrations < 2 {
		t.Fatalf("flow calibrated only %d times; incremental path not exercised", inc.Calibrations)
	}
	if incHash != coldHash {
		t.Fatalf("final designs diverge: %s vs %s", incHash, coldHash)
	}
	if inc.Transforms != cold.Transforms {
		t.Fatalf("transform counts differ: %d vs %d", inc.Transforms, cold.Transforms)
	}
	for k, n := range cold.Kinds {
		if inc.Kinds[k] != n {
			t.Fatalf("kind %s count differs: %d vs %d", k, inc.Kinds[k], n)
		}
	}
	if inc.TimerWNS != cold.TimerWNS || inc.TimerTNS != cold.TimerTNS {
		t.Fatalf("timer QoR differs: WNS %v vs %v, TNS %v vs %v",
			inc.TimerWNS, cold.TimerWNS, inc.TimerTNS, cold.TimerTNS)
	}
	if inc.SignoffWNS != cold.SignoffWNS || inc.SignoffTNS != cold.SignoffTNS {
		t.Fatalf("signoff QoR differs: WNS %v vs %v, TNS %v vs %v",
			inc.SignoffWNS, cold.SignoffWNS, inc.SignoffTNS, cold.SignoffTNS)
	}
	if hashWeights(inc.Weights) != hashWeights(cold.Weights) {
		t.Fatal("calibration weights diverge between incremental and cold")
	}
}

// TestRetimeCheckpointResumeEquivalence: a retime-enabled run killed at a
// checkpoint and resumed must reach the same final state as an
// uninterrupted run. This exercises the v2 per-kind state blobs — the lag
// map must survive the round trip for the resumed run to respect MaxLag
// exactly as the uninterrupted one did.
func TestRetimeCheckpointResumeEquivalence(t *testing.T) {
	opt := retimeOptions(closure.TimerMGBA)

	ref, err := closure.Run(context.Background(), retimeDesign(t, 3), opt)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Retimed() == 0 {
		t.Fatalf("no retiming accepted; fixture too tame: kinds=%v", ref.Kinds)
	}

	path := filepath.Join(t.TempDir(), "ckpt.json")
	opt.CheckpointPath = path
	opt.CheckpointEvery = 2
	ctx, cancel := context.WithCancel(context.Background())
	ckpts := 0
	opt.OnCheckpoint = func(string) {
		ckpts++
		if ckpts == 2 {
			cancel()
		}
	}
	res, err := closure.Run(ctx, retimeDesign(t, 3), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Skip("flow completed before the kill point; equivalence trivially holds")
	}
	opt.OnCheckpoint = nil
	for hops := 0; res.Interrupted; hops++ {
		if hops > 10 {
			t.Fatal("resume never completed")
		}
		res, err = closure.Resume(context.Background(), path, opt)
		if err != nil {
			t.Fatal(err)
		}
	}

	if res.Transforms != ref.Transforms {
		t.Fatalf("transform count diverged: resumed %d vs uninterrupted %d", res.Transforms, ref.Transforms)
	}
	for k, n := range ref.Kinds {
		if res.Kinds[k] != n {
			t.Fatalf("kind %s diverged: resumed %d vs uninterrupted %d", k, res.Kinds[k], n)
		}
	}
	if math.Abs(res.TimerTNS-ref.TimerTNS) > 1e-6 {
		t.Fatalf("timer TNS diverged: resumed %v vs uninterrupted %v", res.TimerTNS, ref.TimerTNS)
	}
	if math.Abs(res.Area-ref.Area) > 1e-9 {
		t.Fatalf("area diverged: resumed %v vs uninterrupted %v", res.Area, ref.Area)
	}
}

// TestRetimeCorruptStateBlobIsCleanError: a checkpoint whose retime state
// blob is garbage must fail resume with a diagnostic error, never a panic,
// and never silently proceed with a fresh lag map.
func TestRetimeCorruptStateBlobIsCleanError(t *testing.T) {
	opt := retimeOptions(closure.TimerGBA)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	opt.CheckpointPath = path
	opt.CheckpointEvery = 1

	ctx, cancel := context.WithCancel(context.Background())
	opt.OnCheckpoint = func(string) { cancel() }
	if _, err := closure.Run(ctx, retimeDesign(t, 2), opt); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the retime blob for well-formed JSON of the wrong shape: the
	// file parses, the checkpoint loads, and the failure must surface from
	// the transform's own state restore.
	var fc map[string]json.RawMessage
	if err := json.Unmarshal(blob, &fc); err != nil {
		t.Fatal(err)
	}
	var kinds map[string]json.RawMessage
	if err := json.Unmarshal(fc["kinds"], &kinds); err != nil {
		t.Fatalf("no per-kind state in checkpoint: %v", err)
	}
	if _, ok := kinds["retime"]; !ok {
		t.Fatal("no retime state in checkpoint")
	}
	kinds["retime"] = json.RawMessage(`{"lags":"not-a-map"}`)
	fc["kinds"], err = json.Marshal(kinds)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := json.Marshal(fc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	opt.OnCheckpoint = nil
	_, err = closure.Resume(context.Background(), path, opt)
	if err == nil {
		t.Fatal("corrupt retime state accepted on resume")
	}
	if !strings.Contains(err.Error(), "retime") {
		t.Fatalf("corruption error does not name the kind: %v", err)
	}
}

// TestRetimeLagState: the per-kind blob written at checkpoints carries the
// accumulated lag map in the documented shape.
func TestRetimeLagState(t *testing.T) {
	opt := retimeOptions(closure.TimerGBA)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	opt.CheckpointPath = path
	opt.CheckpointEvery = 1
	res, err := closure.Optimize(retimeDesign(t, 2), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retimed() == 0 {
		t.Skip("no retiming accepted; lag map necessarily empty")
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var fc struct {
		Kinds map[string]json.RawMessage `json:"kinds"`
	}
	if err := json.Unmarshal(blob, &fc); err != nil {
		t.Fatal(err)
	}
	var st struct {
		Lags map[string]int `json:"lags"`
	}
	if err := json.Unmarshal(fc.Kinds["retime"], &st); err != nil {
		t.Fatalf("retime state blob unreadable: %v", err)
	}
	total := 0
	for _, lag := range st.Lags {
		if lag < 0 {
			lag = -lag
		}
		total += lag
	}
	if total == 0 {
		t.Fatalf("retimes accepted (%d) but lag map empty: %s", res.Retimed(), fc.Kinds["retime"])
	}
}
