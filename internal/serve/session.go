package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/graph"
	"mgba/internal/netio"
	"mgba/internal/netlist"
	"mgba/internal/sta"
)

// session is one resident calibration session: a design, its timing
// session, and the persistent incremental calibrator, plus the serving
// state (last fitted weights and slacks) the HTTP layer reports and the
// snapshot layer persists.
//
// Concurrency contract: mu is the single-writer lock — every request that
// reads or mutates the session holds it, so concurrent batches on one
// design queue instead of racing the calibrator (which is explicitly not
// safe for concurrent use). queued counts the holder plus waiters and is
// bounded by Config.MaxQueue before mu is ever taken, so a slow
// calibration produces early 429s, not an unbounded goroutine pileup.
type session struct {
	id     string
	source string // design name or "inline"; informational

	mu     sync.Mutex
	queued atomic.Int32

	d   *netlist.Design
	g   *graph.Graph
	eng *engine.Session
	cal *core.Calibrator
	cfg sta.Config
	opt core.Options

	// Serving state, guarded by mu. weights is the last fitted
	// per-instance weight vector (nil until the first calibration);
	// slacks is the per-endpoint setup slack under those weights, computed
	// lazily after a resume (mGBA slacks are a pure function of design
	// state and weights, which is what makes crash recovery bit-exact).
	weights    []float64
	slacks     []float64
	wns, tns   float64
	applied    int // accepted transform batches over the session lifetime
	calibrated bool
	degraded   bool
	partial    bool
	fault      string
	deleted    bool // session evicted or dropped; waiters must retry

	lastUsed atomic.Int64 // unix nanos of the last touch, for LRU and idle eviction
	dirty    atomic.Bool  // snapshot pending
	lastSnap atomic.Int64 // unix nanos of the last successful snapshot
}

// snapMeta is the serve-owned state blob embedded in a session's
// checkpoint-v2 snapshot. The design and weights live in the checkpoint
// envelope; this records the serving counters and flags a resumed
// session reports back to clients.
type snapMeta struct {
	Source     string            `json:"source"`
	ViewPair   string            `json:"view_pair,omitempty"`
	Corners    []core.CornerSpec `json:"corners,omitempty"`
	Applied    int               `json:"applied"`
	Calibrated bool              `json:"calibrated"`
	Degraded   bool              `json:"degraded,omitempty"`
	Partial    bool              `json:"partial,omitempty"`
	Fault      string            `json:"fault,omitempty"`
}

// newSession binds a fresh calibration session to d. No calibration runs
// yet — the create handler does that under the request's deadline.
func newSession(id, source string, d *netlist.Design, cfg sta.Config, opt core.Options) (*session, error) {
	g, err := graph.Build(d)
	if err != nil {
		return nil, fmt.Errorf("serve: session %s: %w", id, err)
	}
	eng := engine.NewSession(g)
	cal, err := core.NewCalibrator(eng, cfg, opt)
	if err != nil {
		return nil, fmt.Errorf("serve: session %s: %w", id, err)
	}
	s := &session{id: id, source: source, d: d, g: g, eng: eng, cal: cal, cfg: cfg, opt: opt}
	s.touch(time.Now())
	return s, nil
}

// resumeSession rebuilds a session from its persisted snapshot. The
// calibrator starts cache-cold but warm-started from the persisted
// weights, so its next recalibration is bit-identical to the incremental
// one an uninterrupted process would have run; slacks are recomputed
// lazily from the persisted weights.
func resumeSession(id string, c *netio.Checkpoint, cfg sta.Config, opt core.Options) (*session, error) {
	var meta snapMeta
	if len(c.State) > 0 {
		if err := json.Unmarshal(c.State, &meta); err != nil {
			return nil, fmt.Errorf("serve: session %s: snapshot state: %w", id, err)
		}
	}
	source := meta.Source
	if source == "" {
		source = c.Design.Name
	}
	// The pair and the corner set are part of the session's identity: a
	// resumed session must calibrate exactly as the one it replaces, even
	// if the server's configured defaults changed across the restart.
	if meta.ViewPair != "" {
		opt.ViewPair = meta.ViewPair
	}
	if len(meta.Corners) > 0 {
		opt.Corners = meta.Corners
	}
	s, err := newSession(id, source, c.Design, cfg, opt)
	if err != nil {
		return nil, err
	}
	if c.Weights != nil {
		s.weights = append([]float64(nil), c.Weights...)
		s.cal.SetWarmWeights(s.weights)
	}
	s.applied = meta.Applied
	s.calibrated = meta.Calibrated
	s.degraded = meta.Degraded
	s.partial = meta.Partial
	s.fault = meta.Fault
	s.lastSnap.Store(time.Now().UnixNano())
	return s, nil
}

// touch records use for LRU ordering and idle-eviction decisions.
func (s *session) touch(now time.Time) { s.lastUsed.Store(now.UnixNano()) }

// acquire joins the session's single-writer queue if fewer than max
// requests (holder included) are already in it. It returns (true, false)
// with mu held, (false, false) when the queue is full, and (false, true)
// when the session was deleted while waiting (the caller should retry:
// the registry will resurrect it from its snapshot).
func (s *session) acquire(max int) (ok, gone bool) {
	for {
		q := s.queued.Load()
		if int(q) >= max {
			return false, false
		}
		if s.queued.CompareAndSwap(q, q+1) {
			break
		}
	}
	s.mu.Lock()
	if s.deleted {
		s.mu.Unlock()
		s.queued.Add(-1)
		return false, true
	}
	return true, false
}

// release drops the single-writer lock and leaves the queue.
func (s *session) release() {
	s.mu.Unlock()
	s.queued.Add(-1)
}

// adopt installs a calibration result as the session's serving state.
// Caller holds mu. Slices are copied: the model's buffers may go back to
// the engine pool with the next calibration.
func (s *session) adopt(m *core.Model) {
	s.weights = append(s.weights[:0], m.Weights...)
	s.slacks = append(s.slacks[:0], m.MGBA.Slack...)
	s.wns, s.tns = m.MGBA.WNS, m.MGBA.TNS
	s.calibrated = true
	s.degraded = m.Degraded
	s.partial = m.Partial
	s.fault = m.Fault
	s.dirty.Store(true)
}

// calibrate runs a full calibration (the "load design" step) under ctx.
// Caller holds mu.
func (s *session) calibrate(ctx context.Context) error {
	m, err := s.cal.Calibrate(ctx)
	if err != nil {
		return err
	}
	s.adopt(m)
	return nil
}

// recalibrate re-fits after the given instances changed. Caller holds mu.
// A cancelled or deadline-exceeded context yields a valid degraded model
// (identity weights at worst — never optimistic), not an error; errors
// are reserved for broken internal state, after which the calibrator
// cache is dropped so the next call runs cold.
func (s *session) recalibrate(ctx context.Context, dirty []int) error {
	m, err := s.cal.Recalibrate(ctx, dirty)
	if err != nil {
		s.cal.Invalidate()
		return err
	}
	s.adopt(m)
	if m.Partial {
		obsDeadlineDegraded.Inc()
	}
	return nil
}

// ensureSlacks computes the per-endpoint slack vector when it is not
// resident (a freshly resumed session). Weighted GBA is deterministic
// given the design and weights, so the recomputed slacks are bit-identical
// to the ones the process served before it died. Caller holds mu.
func (s *session) ensureSlacks() {
	if s.slacks != nil {
		return
	}
	wcfg := s.cfg
	wcfg.Weights = s.weights // nil means plain GBA, also correct
	r := s.eng.Run(wcfg)
	s.slacks = append([]float64(nil), r.Slack...)
	s.wns, s.tns = r.WNS, r.TNS
	r.Release()
}

// Op is one mutation in a transform batch. "resize" swaps the instance to
// the named cell variant; "upsize"/"downsize" step one rung along the
// cell library's drive ladder (a no-op at the ladder's end).
type Op struct {
	Op       string `json:"op"`
	Instance int    `json:"instance"`
	Cell     string `json:"cell,omitempty"`
}

// OpResult reports what one op did. Unapplied ops are not errors: a
// ladder step at the top of the ladder or a swap to the current cell is a
// no-op, reported as such.
type OpResult struct {
	Applied bool   `json:"applied"`
	Reason  string `json:"reason,omitempty"`
}

// applyOps applies a batch of ops to the design, returning per-op results
// and the deduplicated dirty instance set (each resized instance plus the
// drivers of its input nets, whose loads changed). A hard error (unknown
// instance or cell, clock-network target) reverts every op already
// applied, leaving the design bit-identical to its pre-batch state.
// Caller holds mu.
func (s *session) applyOps(ops []Op) ([]OpResult, []int, error) {
	results := make([]OpResult, len(ops))
	dirtySet := map[int]bool{}
	var applied []func()
	revert := func() {
		for i := len(applied) - 1; i >= 0; i-- {
			applied[i]()
		}
	}
	for i, op := range ops {
		if op.Instance < 0 || op.Instance >= len(s.d.Instances) {
			revert()
			return nil, nil, fmt.Errorf("op %d: instance %d out of range", i, op.Instance)
		}
		inst := s.d.Instances[op.Instance]
		if inst.Dead {
			revert()
			return nil, nil, fmt.Errorf("op %d: instance %d is dead", i, op.Instance)
		}
		if s.g.IsClock(op.Instance) {
			revert()
			return nil, nil, fmt.Errorf("op %d: instance %d is on the clock network", i, op.Instance)
		}
		from := inst.Cell
		var to = from
		switch op.Op {
		case "resize":
			to = s.d.Lib.ByName(op.Cell)
			if to == nil {
				revert()
				return nil, nil, fmt.Errorf("op %d: unknown cell %q", i, op.Cell)
			}
		case "upsize":
			to = s.d.Lib.Upsize(from)
		case "downsize":
			to = s.d.Lib.Downsize(from)
		default:
			revert()
			return nil, nil, fmt.Errorf("op %d: unknown op %q", i, op.Op)
		}
		if to == nil {
			results[i] = OpResult{Applied: false, Reason: "at the end of the drive ladder"}
			continue
		}
		if to == from {
			results[i] = OpResult{Applied: false, Reason: "already " + from.Name}
			continue
		}
		if err := s.d.Resize(inst, to); err != nil {
			if op.Op == "resize" {
				revert()
				return nil, nil, fmt.Errorf("op %d: %w", i, err)
			}
			results[i] = OpResult{Applied: false, Reason: err.Error()}
			continue
		}
		in, prev := inst, from
		applied = append(applied, func() { in.Cell = prev })
		results[i] = OpResult{Applied: true}
		for _, id := range s.modifiedSet(op.Instance) {
			dirtySet[id] = true
		}
	}
	dirty := make([]int, 0, len(dirtySet))
	for id := range dirtySet {
		dirty = append(dirty, id)
	}
	sort.Ints(dirty)
	return results, dirty, nil
}

// modifiedSet returns the instances whose timing a resize of id touched:
// the instance itself plus the non-clock drivers of its input nets (their
// load changed). Mirrors transform.ModifiedSet so serve batches and the
// closure flow feed the incremental engine identical dirty seeds.
func (s *session) modifiedSet(id int) []int {
	inst := s.d.Instances[id]
	mod := []int{id}
	for _, nid := range inst.Inputs {
		if drv := s.d.Nets[nid].Driver; drv >= 0 && !s.g.IsClock(drv) {
			mod = append(mod, drv)
		}
	}
	return mod
}

// snapshotCheckpoint builds the session's persistent form. Caller holds mu.
func (s *session) snapshotCheckpoint() (*netio.Checkpoint, error) {
	blob, err := json.Marshal(&snapMeta{
		Source:     s.source,
		ViewPair:   s.cal.Pair(),
		Corners:    s.opt.Corners,
		Applied:    s.applied,
		Calibrated: s.calibrated,
		Degraded:   s.degraded,
		Partial:    s.partial,
		Fault:      s.fault,
	})
	if err != nil {
		return nil, err
	}
	return &netio.Checkpoint{Design: s.d, Weights: s.weights, State: blob}, nil
}
