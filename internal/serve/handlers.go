package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"mgba/internal/core"
	"mgba/internal/faultinject"
	"mgba/internal/fixtures"
	"mgba/internal/gen"
	"mgba/internal/netio"
	"mgba/internal/netlist"
	"mgba/internal/obs"
)

// API types. Every response body is JSON; errors use errorBody with the
// HTTP status carrying the class (404 unknown, 409 conflict, 429/503
// retryable with Retry-After, 422 bad batch, 400 bad request).

type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

type createRequest struct {
	// ID names the session; it doubles as the snapshot filename stem, so
	// it is restricted to [A-Za-z0-9._-].
	ID string `json:"id"`
	// Design names a built-in design source: "toy", "retimetoy",
	// "bufcase", or a suite member "D1".."D10".
	Design string `json:"design,omitempty"`
	// DesignJSON carries an inline design in the netio interchange format
	// instead. Exactly one of Design/DesignJSON must be set.
	DesignJSON json.RawMessage `json:"design_json,omitempty"`
	// ViewPair names the (cheap, golden) view pair the session calibrates
	// under; empty selects the server's configured default. Unknown names
	// are rejected with 400 listing the registered pairs.
	ViewPair string `json:"view_pair,omitempty"`
	// Corners selects a multi-corner calibration: the session enumerates
	// once on Corners[0] and fits every corner per batch. Empty keeps the
	// server's configured (usually single-corner) set. Invalid sets are
	// rejected with 400.
	Corners []core.CornerSpec `json:"corners,omitempty"`
}

// sessionStatus is the session's externally visible state, returned by
// create, status, batch and recalibrate.
type sessionStatus struct {
	ID         string   `json:"id"`
	Source     string   `json:"source"`
	ViewPair   string   `json:"view_pair"`
	Corners    []string `json:"corners,omitempty"` // multi-corner sessions only
	Instances  int      `json:"instances"`
	Endpoints  int      `json:"endpoints"`
	Calibrated bool     `json:"calibrated"`
	Applied    int      `json:"applied_batches"`
	WNS        float64  `json:"wns_ps"`
	TNS        float64  `json:"tns_ps"`
	Degraded   bool     `json:"degraded,omitempty"`
	Partial    bool     `json:"partial,omitempty"`
	Fault      string   `json:"fault,omitempty"`
	Resumed    bool     `json:"resumed,omitempty"`
}

type batchRequest struct {
	Ops []Op `json:"ops"`
}

type batchResponse struct {
	Results []OpResult    `json:"results"`
	Dirty   int           `json:"dirty_instances"`
	Status  sessionStatus `json:"status"`
}

type slacksResponse struct {
	ID      string    `json:"id"`
	WNS     float64   `json:"wns_ps"`
	TNS     float64   `json:"tns_ps"`
	Slacks  []float64 `json:"slacks_ps"`
	Weights []float64 `json:"weights,omitempty"`
}

// routes wires the versioned API. Go 1.22 pattern routing gives us
// method + path-value dispatch without a router dependency.
func (sv *Server) routes() {
	sv.mux = http.NewServeMux()
	sv.mux.HandleFunc("GET /healthz", sv.handleHealth)
	sv.mux.HandleFunc("GET /v1/sessions", sv.handleList)
	sv.mux.HandleFunc("POST /v1/sessions", sv.admitted(sv.handleCreate))
	sv.mux.HandleFunc("GET /v1/sessions/{id}", sv.handleStatus)
	sv.mux.HandleFunc("DELETE /v1/sessions/{id}", sv.admitted(sv.handleDelete))
	sv.mux.HandleFunc("GET /v1/sessions/{id}/slacks", sv.admitted(sv.handleSlacks))
	sv.mux.HandleFunc("POST /v1/sessions/{id}/batch", sv.admitted(sv.handleBatch))
	sv.mux.HandleFunc("POST /v1/sessions/{id}/recalibrate", sv.admitted(sv.handleRecalibrate))
}

// ServeHTTP implements http.Handler.
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	obsRequests.Inc()
	sv.mux.ServeHTTP(w, r)
}

// admitted wraps heavy handlers with the admission protocol:
//
//  1. a draining server refuses with 503 + Retry-After (another replica,
//     or the restarted process, will take the retry);
//  2. the ServeAdmit fault hook can refuse for tests and drills;
//  3. the server-wide in-flight budget is acquired without blocking —
//     when it is exhausted the request is refused *now* with 429 +
//     Retry-After instead of joining an invisible queue.
//
// The request context gets the deadline from X-Deadline-Ms (or the
// configured default) before the handler runs, so cancellation rides the
// standard context path into the solver.
func (sv *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sv.mu.Lock()
		draining := sv.draining
		sv.mu.Unlock()
		if draining {
			obsRejectDraining.Inc()
			sv.writeRetryable(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		if err := faultinject.Err(faultinject.ServeAdmit); err != nil {
			obsRejectAdmitFault.Inc()
			sv.writeRetryable(w, http.StatusServiceUnavailable, "admission refused: "+err.Error())
			return
		}
		select {
		case sv.inflight <- struct{}{}:
		default:
			obsRejectSaturated.Inc()
			sv.writeRetryable(w, http.StatusTooManyRequests, "server saturated")
			return
		}
		sv.reqWG.Add(1)
		obsInFlight.SetInt(len(sv.inflight))
		defer func() {
			<-sv.inflight
			obsInFlight.SetInt(len(sv.inflight))
			sv.reqWG.Done()
		}()

		ctx := r.Context()
		deadline := sv.cfg.DefaultDeadline
		if ms := r.Header.Get("X-Deadline-Ms"); ms != "" {
			v, err := strconv.ParseInt(ms, 10, 64)
			if err != nil || v <= 0 {
				writeError(w, http.StatusBadRequest, "invalid X-Deadline-Ms %q", ms)
				return
			}
			deadline = time.Duration(v) * time.Millisecond
		}
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
		}
		h(w, r.WithContext(ctx))
	}
}

// lockSession resolves id and joins its writer queue, handling every
// refusal uniformly: 404 when the session does not exist anywhere, 429
// when its queue is full, and retry-resurrect when it is evicted between
// lookup and lock. Returns nil after writing the response itself.
func (sv *Server) lockSession(w http.ResponseWriter, id string) *session {
	for attempt := 0; attempt < 3; attempt++ {
		s := sv.getSession(id)
		if s == nil {
			writeError(w, http.StatusNotFound, "no session %q", id)
			return nil
		}
		ok, gone := s.acquire(sv.cfg.MaxQueue)
		if ok {
			return s
		}
		if !gone {
			obsRejectQueue.Inc()
			sv.writeRetryable(w, http.StatusTooManyRequests, "session %s queue full", id)
			return nil
		}
		// Evicted while we waited; the next getSession resurrects it from
		// its snapshot.
	}
	sv.writeRetryable(w, http.StatusServiceUnavailable, "session %s is being evicted", id)
	return nil
}

func (sv *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	sv.mu.Lock()
	status := "ok"
	if sv.draining {
		status = "draining"
	}
	n := len(sv.sessions)
	sv.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": status, "sessions": n})
}

func (sv *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sv.mu.Lock()
	ids := make([]string, 0, len(sv.sessions))
	pairs := make(map[string]string, len(sv.sessions))
	for id, s := range sv.sessions {
		ids = append(ids, id)
		pairs[id] = s.cal.Pair()
	}
	sv.mu.Unlock()
	sort.Strings(ids)
	writeJSON(w, http.StatusOK, map[string]any{"sessions": ids, "view_pairs": pairs})
}

func (sv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if !idPattern.MatchString(req.ID) {
		writeError(w, http.StatusBadRequest, "session id must match %s", idPattern.String())
		return
	}
	if (req.Design == "") == (len(req.DesignJSON) == 0) {
		writeError(w, http.StatusBadRequest, "exactly one of design/design_json required")
		return
	}
	// Reject unknown pairs before any heavy work; the lookup error lists
	// every registered pair name.
	if _, err := core.LookupViewPair(req.ViewPair); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := core.ValidateCorners(req.Corners); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sv.mu.Lock()
	_, exists := sv.sessions[req.ID]
	sv.mu.Unlock()
	if exists {
		writeError(w, http.StatusConflict, "session %q already exists", req.ID)
		return
	}

	d, source, err := buildDesign(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt := sv.cfg.Core
	if req.ViewPair != "" {
		opt.ViewPair = req.ViewPair
	}
	if len(req.Corners) > 0 {
		opt.Corners = req.Corners
	}
	s, err := newSession(req.ID, source, d, sv.cfg.STA, opt)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s = sv.insert(s)
	ok, gone := s.acquire(sv.cfg.MaxQueue)
	if !ok {
		if gone {
			sv.writeRetryable(w, http.StatusServiceUnavailable, "session %s evicted during create", req.ID)
		} else {
			obsRejectQueue.Inc()
			sv.writeRetryable(w, http.StatusTooManyRequests, "session %s queue full", req.ID)
		}
		return
	}
	defer s.release()
	if !s.calibrated {
		t0 := obs.Clock()
		if err := s.calibrate(r.Context()); err != nil {
			writeError(w, http.StatusUnprocessableEntity, "calibrate: %v", err)
			return
		}
		obsRecalNS.ObserveSince(t0)
		sv.flushAfterBatch(s)
	}
	writeJSON(w, http.StatusCreated, sv.statusLocked(s))
}

func (sv *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s := sv.getSession(id)
	if s == nil {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	ok, gone := s.acquire(sv.cfg.MaxQueue)
	if !ok {
		if gone {
			sv.writeRetryable(w, http.StatusServiceUnavailable, "session %s is being evicted", id)
		} else {
			obsRejectQueue.Inc()
			sv.writeRetryable(w, http.StatusTooManyRequests, "session %s queue full", id)
		}
		return
	}
	defer s.release()
	writeJSON(w, http.StatusOK, sv.statusLocked(s))
}

func (sv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sv.mu.Lock()
	s := sv.sessions[id]
	delete(sv.sessions, id)
	obsSessions.SetInt(len(sv.sessions))
	sv.pairGaugesLocked()
	sv.mu.Unlock()
	hadSnapshot := false
	if sv.cfg.SnapshotDir != "" {
		if err := os.Remove(sv.snapshotPath(id)); err == nil {
			hadSnapshot = true
		}
	}
	if s == nil && !hadSnapshot {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	if s != nil {
		s.mu.Lock()
		s.deleted = true
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

func (sv *Server) handleSlacks(w http.ResponseWriter, r *http.Request) {
	s := sv.lockSession(w, r.PathValue("id"))
	if s == nil {
		return
	}
	defer s.release()
	s.ensureSlacks()
	resp := slacksResponse{
		ID:      s.id,
		WNS:     s.wns,
		TNS:     s.tns,
		Slacks:  append([]float64(nil), s.slacks...),
		Weights: append([]float64(nil), s.weights...),
	}
	writeJSON(w, http.StatusOK, resp)
}

func (sv *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s := sv.lockSession(w, r.PathValue("id"))
	if s == nil {
		return
	}
	defer s.release()
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	results, dirty, err := s.applyOps(req.Ops)
	if err != nil {
		// applyOps reverted everything; the session is bit-identical to
		// its pre-batch state and stays serviceable.
		writeError(w, http.StatusUnprocessableEntity, "batch rejected: %v", err)
		return
	}
	obsBatches.Inc()
	for _, res := range results {
		if res.Applied {
			obsOpsApplied.Inc()
		}
	}
	if len(dirty) > 0 {
		t0 := obs.Clock()
		if err := s.recalibrate(r.Context(), dirty); err != nil {
			writeError(w, http.StatusInternalServerError, "recalibrate: %v", err)
			return
		}
		obsRecalNS.ObserveSince(t0)
		s.applied++
		s.dirty.Store(true)
		sv.flushAfterBatch(s)
	}
	writeJSON(w, http.StatusOK, batchResponse{
		Results: results,
		Dirty:   len(dirty),
		Status:  sv.statusLocked(s),
	})
}

func (sv *Server) handleRecalibrate(w http.ResponseWriter, r *http.Request) {
	s := sv.lockSession(w, r.PathValue("id"))
	if s == nil {
		return
	}
	defer s.release()
	// A forced full calibration: drop the incremental cache so the fit
	// runs cold (still warm-started from the current weights).
	s.cal.Invalidate()
	if s.weights != nil {
		s.cal.SetWarmWeights(s.weights)
	}
	t0 := obs.Clock()
	if err := s.calibrate(r.Context()); err != nil {
		writeError(w, http.StatusInternalServerError, "calibrate: %v", err)
		return
	}
	obsRecalNS.ObserveSince(t0)
	sv.flushAfterBatch(s)
	writeJSON(w, http.StatusOK, sv.statusLocked(s))
}

// flushAfterBatch persists synchronously when no write-behind cadence is
// configured; otherwise the maintenance loop picks the dirty flag up on
// its next sweep. Failures leave the session dirty for retry.
func (sv *Server) flushAfterBatch(s *session) {
	if sv.cfg.SnapshotEvery <= 0 {
		_ = sv.snapshotLocked(s)
	}
}

// statusLocked renders the session's externally visible state. Caller
// holds s.mu.
func (sv *Server) statusLocked(s *session) sessionStatus {
	return sessionStatus{
		ID:         s.id,
		Source:     s.source,
		ViewPair:   s.cal.Pair(),
		Corners:    core.CornerNames(s.opt.Corners),
		Instances:  len(s.d.Instances),
		Endpoints:  len(s.slacks),
		Calibrated: s.calibrated,
		Applied:    s.applied,
		WNS:        s.wns,
		TNS:        s.tns,
		Degraded:   s.degraded,
		Partial:    s.partial,
		Fault:      s.fault,
	}
}

// buildDesign resolves a create request's design source.
func buildDesign(req *createRequest) (*netlist.Design, string, error) {
	if len(req.DesignJSON) > 0 {
		d, err := netio.Load(bytes.NewReader(req.DesignJSON))
		if err != nil {
			return nil, "", fmt.Errorf("inline design: %w", err)
		}
		return d, "inline", nil
	}
	switch req.Design {
	case "toy":
		d, err := gen.Generate(gen.Toy())
		return d, req.Design, err
	case "retimetoy":
		d, err := fixtures.RetimePipeline(4)
		return d, req.Design, err
	case "bufcase":
		d, err := fixtures.BufferCase()
		return d, req.Design, err
	default:
		for _, cfg := range gen.Suite() {
			if cfg.Name == req.Design {
				d, err := gen.Generate(cfg)
				return d, req.Design, err
			}
		}
		return nil, "", fmt.Errorf("unknown design %q (want toy, retimetoy, bufcase, D1..D10, or design_json)", req.Design)
	}
}

// writeRetryable writes a 429/503 with both the standard Retry-After
// header (integer seconds, rounded up — the header's granularity) and a
// machine-friendly retry_after_ms in the body.
func (sv *Server) writeRetryable(w http.ResponseWriter, status int, format string, args ...any) {
	hint := sv.retryAfterHint()
	secs := int64((hint + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, status, errorBody{
		Error:        fmt.Sprintf(format, args...),
		RetryAfterMS: hint.Milliseconds(),
	})
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
