// Package serve is the calibration-as-a-service layer: a long-running
// daemon (cmd/calibd) hosting many concurrent calibrator sessions behind
// an HTTP/JSON API — load a design, apply transform batches, recalibrate,
// fetch slacks, drop the session. The algorithms all live below
// (internal/core's incremental Calibrator, internal/engine's timing
// sessions); this package is the reliability envelope around them:
//
//   - Session lifecycle: a registry with max-sessions admission, LRU
//     capacity eviction and idle timeouts. Evicted sessions are
//     snapshotted first and transparently resurrected on next access, so
//     eviction is a memory policy, never data loss.
//   - Single-writer serialization: concurrent batches against one design
//     queue on the session's writer lock (bounded by MaxQueue) instead of
//     racing the calibrator, which is not concurrency-safe by contract.
//   - Deadlines: every request carries a context deadline that rides the
//     existing cancellation paths into the solver and engine. A deadline
//     that expires mid-calibration yields the degradation ladder's
//     never-optimistic result (identity weights at worst) with HTTP 200 —
//     a valid pessimistic answer, not a dropped connection.
//   - Backpressure: when the server-wide in-flight budget or a session's
//     queue is full, requests are rejected early with 429 and a jittered
//     Retry-After hint instead of piling up goroutines; the shared
//     internal/par pool's saturation is exported alongside
//     (serve.par_active, par.pool.queue_full) so the decision is
//     observable, not inferred.
//   - Crash safety: sessions persist through checkpoint format v2 on a
//     write-behind cadence, on eviction, and on graceful shutdown
//     (SIGTERM drains in-flight requests, then snapshots). A restarted
//     daemon resumes every persisted session bit-identically — mGBA
//     slacks are a pure function of (design state, fitted weights), and a
//     resumed calibrator warm-started from the persisted weights re-fits
//     bit-identically to the incremental path (the PR-3 exactness
//     contract). Corrupt snapshot blobs are quarantined per-session;
//     startup never fails on one bad file.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mgba/internal/core"
	"mgba/internal/faultinject"
	"mgba/internal/netio"
	"mgba/internal/obs"
	"mgba/internal/par"
	"mgba/internal/sta"
)

// Config parameterizes the daemon. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// SnapshotDir is where per-session checkpoint-v2 snapshots live
	// (<dir>/<id>.ckpt). Empty disables persistence: sessions are
	// memory-only and eviction loses them.
	SnapshotDir string
	// MaxSessions bounds resident sessions; beyond it the least recently
	// used session is snapshotted and evicted.
	MaxSessions int
	// IdleTimeout evicts sessions untouched for this long (snapshot
	// first). Zero disables idle eviction.
	IdleTimeout time.Duration
	// MaxInFlight bounds concurrently admitted heavy requests server-wide;
	// excess requests get 429 + Retry-After immediately.
	MaxInFlight int
	// MaxQueue bounds the per-session writer queue (active holder
	// included); excess batches on one session get 429 + Retry-After.
	MaxQueue int
	// DefaultDeadline applies when a request carries no X-Deadline-Ms
	// header. Zero means no deadline.
	DefaultDeadline time.Duration
	// RetryAfter is the base backoff hint attached to 429/503 responses;
	// the advertised value is jittered over [base/2, 3*base/2).
	RetryAfter time.Duration
	// SnapshotEvery is the write-behind cadence: dirty sessions are
	// flushed at most this often by the maintenance loop. Zero flushes
	// synchronously after every accepted batch (safest, slowest).
	SnapshotEvery time.Duration
	// STA is the base analysis configuration (Weights must be nil; the
	// serving layer manages weights per session).
	STA sta.Config
	// Core is the calibration option set for every session.
	Core core.Options
	// Parallelism is the worker knob handed to STA/solver kernels.
	Parallelism int
}

// DefaultConfig returns serving defaults tuned for many small sessions:
// the calibration profile matches the closure loop's (faster solver
// schedule, same exactness), and snapshots flush after every batch.
func DefaultConfig() Config {
	coreOpt := core.DefaultOptions()
	coreOpt.Solver.MinRows = 512
	coreOpt.Solver.MaxIters = 1500
	return Config{
		MaxSessions:     16,
		MaxInFlight:     8,
		MaxQueue:        4,
		DefaultDeadline: 30 * time.Second,
		RetryAfter:      250 * time.Millisecond,
		IdleTimeout:     15 * time.Minute,
		STA:             sta.DefaultConfig(),
		Core:            coreOpt,
	}
}

// idPattern keeps session IDs filesystem- and URL-safe: snapshots are
// stored under the ID, so traversal characters are rejected outright.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// Server hosts the session registry and implements http.Handler. Use New
// to construct (it recovers persisted sessions), Shutdown to drain and
// persist on the way out.
type Server struct {
	cfg Config
	mux *http.ServeMux

	inflight chan struct{}
	reqWG    sync.WaitGroup
	reqSeq   atomic.Int64 // jitter source for Retry-After hints

	mu       sync.Mutex
	sessions map[string]*session
	draining bool
	// cornerGauges remembers every corner name a resident session ever
	// published a gauge under, so a deleted session's gauge drops to zero
	// instead of freezing at its last value (corner names are user-chosen,
	// unlike the fixed view-pair registry). Guarded by mu.
	cornerGauges map[string]bool

	maintainStop chan struct{}
	maintainDone chan struct{}

	ln      net.Listener
	httpSrv *http.Server
}

// New builds a server, creating the snapshot directory if needed and
// resuming every persisted session found there. Corrupt snapshots are
// quarantined (renamed to *.quarantine) and skipped — one bad blob never
// blocks startup. The maintenance loop (idle eviction, write-behind
// flushing) starts immediately.
func New(cfg Config) (*Server, error) {
	base := DefaultConfig()
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = base.MaxSessions
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = base.MaxInFlight
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = base.MaxQueue
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = base.RetryAfter
	}
	if cfg.STA.Weights != nil {
		return nil, fmt.Errorf("serve: config STA weights must be nil")
	}
	if cfg.Core.K == 0 {
		cfg.Core = base.Core
	}
	if cfg.STA.Parallelism == 0 && cfg.Parallelism != 0 {
		cfg.STA.Parallelism = cfg.Parallelism
	}
	sv := &Server{
		cfg:          cfg,
		inflight:     make(chan struct{}, cfg.MaxInFlight),
		sessions:     make(map[string]*session),
		maintainStop: make(chan struct{}),
		maintainDone: make(chan struct{}),
	}
	if cfg.SnapshotDir != "" {
		if err := os.MkdirAll(cfg.SnapshotDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		sv.recoverSessions()
	}
	sv.routes()
	go sv.maintain()
	return sv, nil
}

// recoverSessions loads every *.ckpt under SnapshotDir. Unreadable or
// unresumable snapshots are quarantined in place; everything else comes
// back resident with its serving counters restored.
func (sv *Server) recoverSessions() {
	entries, err := os.ReadDir(sv.cfg.SnapshotDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		id := strings.TrimSuffix(name, ".ckpt")
		path := filepath.Join(sv.cfg.SnapshotDir, name)
		s, err := sv.loadSnapshot(id, path)
		if err != nil {
			obsQuarantined.Inc()
			obs.Event("session_quarantined", "id", id, "err", err.Error())
			_ = os.Rename(path, path+".quarantine")
			continue
		}
		sv.sessions[id] = s
		obsResumed.Inc()
		obs.Event("session_resumed", "id", id)
	}
	obsSessions.SetInt(len(sv.sessions))
	sv.pairGaugesLocked()
}

// loadSnapshot reads and rebuilds one persisted session.
func (sv *Server) loadSnapshot(id, path string) (*session, error) {
	if !idPattern.MatchString(id) {
		return nil, fmt.Errorf("serve: snapshot id %q invalid", id)
	}
	c, err := netio.LoadCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	return resumeSession(id, c, sv.cfg.STA, sv.cfg.Core)
}

// snapshotPath maps a session ID to its on-disk snapshot.
func (sv *Server) snapshotPath(id string) string {
	return filepath.Join(sv.cfg.SnapshotDir, id+".ckpt")
}

// snapshotLocked persists s (caller holds s.mu). On injected or real
// write failure the session stays dirty so the write-behind loop retries;
// the previous on-disk snapshot is never clobbered (atomic rename).
func (sv *Server) snapshotLocked(s *session) error {
	if sv.cfg.SnapshotDir == "" {
		return nil
	}
	if err := faultinject.Err(faultinject.ServeSnapshot); err != nil {
		obsSnapshotErr.Inc()
		return err
	}
	c, err := s.snapshotCheckpoint()
	if err == nil {
		err = netio.SaveCheckpointFile(sv.snapshotPath(s.id), c)
	}
	if err != nil {
		obsSnapshotErr.Inc()
		obs.Event("snapshot_failed", "id", s.id, "err", err.Error())
		return err
	}
	s.dirty.Store(false)
	s.lastSnap.Store(time.Now().UnixNano())
	obsSnapshotOK.Inc()
	return nil
}

// getSession returns the resident session for id, resurrecting it from
// its snapshot when it was evicted. The returned session may be deleted
// concurrently; acquire reports that and callers retry.
func (sv *Server) getSession(id string) *session {
	sv.mu.Lock()
	s := sv.sessions[id]
	sv.mu.Unlock()
	if s != nil {
		s.touch(time.Now())
		return s
	}
	if sv.cfg.SnapshotDir == "" {
		return nil
	}
	path := sv.snapshotPath(id)
	if _, err := os.Stat(path); err != nil {
		return nil
	}
	loaded, err := sv.loadSnapshot(id, path)
	if err != nil {
		obsQuarantined.Inc()
		obs.Event("session_quarantined", "id", id, "err", err.Error())
		_ = os.Rename(path, path+".quarantine")
		return nil
	}
	obsResurrected.Inc()
	return sv.insert(loaded)
}

// insert adds s to the registry (keeping a racing earlier insert) and
// evicts LRU sessions beyond MaxSessions.
func (sv *Server) insert(s *session) *session {
	sv.mu.Lock()
	if cur, ok := sv.sessions[s.id]; ok {
		sv.mu.Unlock()
		cur.touch(time.Now())
		return cur
	}
	sv.sessions[s.id] = s
	var victims []*session
	for len(sv.sessions) > sv.cfg.MaxSessions {
		v := sv.lruLocked(s)
		if v == nil {
			break
		}
		delete(sv.sessions, v.id)
		victims = append(victims, v)
	}
	obsSessions.SetInt(len(sv.sessions))
	sv.pairGaugesLocked()
	sv.mu.Unlock()
	for _, v := range victims {
		sv.evict(v, "lru")
	}
	return s
}

// pairGaugesLocked refreshes the per-pair resident-session gauges
// (serve.sessions.pair.<name>), surfaced on /debug/summary next to the
// total, so an operator can see which view pairs the fleet is running
// without walking the sessions list. Caller holds sv.mu.
func (sv *Server) pairGaugesLocked() {
	counts := make(map[string]int, 2)
	for _, s := range sv.sessions {
		counts[s.cal.Pair()]++
	}
	for _, name := range core.ViewPairNames() {
		obs.NewGauge("serve.sessions.pair." + name).SetInt(counts[name])
	}
	sv.cornerGaugesLocked()
}

// cornerGaugesLocked refreshes the per-corner resident-session gauges
// (serve.sessions.corner.<name>) for multi-corner sessions. Caller holds
// sv.mu.
func (sv *Server) cornerGaugesLocked() {
	counts := make(map[string]int)
	for _, s := range sv.sessions {
		for _, name := range core.CornerNames(s.opt.Corners) {
			counts[name]++
		}
	}
	if sv.cornerGauges == nil {
		sv.cornerGauges = make(map[string]bool)
	}
	for name := range counts {
		sv.cornerGauges[name] = true
	}
	for name := range sv.cornerGauges {
		obs.NewGauge("serve.sessions.corner." + name).SetInt(counts[name])
	}
}

// lruLocked picks the least recently used session other than keep.
func (sv *Server) lruLocked(keep *session) *session {
	var victim *session
	for _, s := range sv.sessions {
		if s == keep {
			continue
		}
		if victim == nil || s.lastUsed.Load() < victim.lastUsed.Load() {
			victim = s
		}
	}
	return victim
}

// evict snapshots and tombstones a session already removed from the
// registry. Waiters queued on its lock see the tombstone and tell their
// clients to retry; the retry resurrects the snapshot.
func (sv *Server) evict(s *session, why string) {
	if why == "lru" {
		obsEvictLRU.Inc()
	} else {
		obsEvictIdle.Inc()
	}
	obs.Event("session_evicted", "id", s.id, "why", why)
	s.mu.Lock()
	s.deleted = true
	if err := faultinject.Err(faultinject.ServeEvict); err != nil {
		obsSnapshotErr.Inc()
		obs.Event("snapshot_failed", "id", s.id, "err", err.Error())
	} else {
		_ = sv.snapshotLocked(s)
	}
	s.mu.Unlock()
}

// Sweep runs one maintenance pass at the given time: idle sessions are
// evicted and overdue dirty sessions flushed. The background loop calls
// it periodically; tests call it directly for determinism. Busy sessions
// (writer lock held) are skipped, not waited on — they flush on their
// next pass.
func (sv *Server) Sweep(now time.Time) {
	var idle []*session
	sv.mu.Lock()
	if sv.cfg.IdleTimeout > 0 {
		for id, s := range sv.sessions {
			if now.Sub(time.Unix(0, s.lastUsed.Load())) > sv.cfg.IdleTimeout && s.queued.Load() == 0 {
				delete(sv.sessions, id)
				idle = append(idle, s)
			}
		}
	}
	var flush []*session
	for _, s := range sv.sessions {
		if s.dirty.Load() && now.Sub(time.Unix(0, s.lastSnap.Load())) >= sv.cfg.SnapshotEvery {
			flush = append(flush, s)
		}
	}
	obsSessions.SetInt(len(sv.sessions))
	sv.pairGaugesLocked()
	sv.mu.Unlock()
	for _, s := range idle {
		sv.evict(s, "idle")
	}
	for _, s := range flush {
		if s.mu.TryLock() {
			if !s.deleted {
				_ = sv.snapshotLocked(s)
			}
			s.mu.Unlock()
		}
	}
	obsParBusy.SetInt(par.Active())
}

// maintain is the background janitor: a sweep every interval until
// Shutdown stops it.
func (sv *Server) maintain() {
	defer close(sv.maintainDone)
	interval := 500 * time.Millisecond
	if sv.cfg.SnapshotEvery > 0 && sv.cfg.SnapshotEvery < interval {
		interval = sv.cfg.SnapshotEvery
	}
	if sv.cfg.IdleTimeout > 0 && sv.cfg.IdleTimeout/4 < interval {
		interval = sv.cfg.IdleTimeout / 4
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-sv.maintainStop:
			return
		case now := <-t.C:
			sv.Sweep(now)
		}
	}
}

// Listen starts serving on addr (host:port; port 0 picks a free one —
// read it back via Addr).
func (sv *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	sv.ln = ln
	sv.httpSrv = &http.Server{Handler: sv}
	go func() {
		if err := sv.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			obs.Event("http_serve_error", "err", err.Error())
		}
	}()
	return nil
}

// Addr returns the bound listen address, or "" before Listen.
func (sv *Server) Addr() string {
	if sv.ln == nil {
		return ""
	}
	return sv.ln.Addr().String()
}

// Shutdown drains and persists: new requests are rejected with 503 +
// Retry-After, in-flight requests run to completion (bounded by ctx),
// then every dirty session is snapshotted. This is the SIGTERM path; a
// process killed without it still resumes from its last write-behind
// snapshot, just further back.
func (sv *Server) Shutdown(ctx context.Context) error {
	sv.mu.Lock()
	if sv.draining {
		sv.mu.Unlock()
		return nil
	}
	sv.draining = true
	sv.mu.Unlock()

	close(sv.maintainStop)
	<-sv.maintainDone

	if sv.httpSrv != nil {
		_ = sv.httpSrv.Shutdown(ctx)
	}
	// Drain handlers that were admitted before draining flipped (covers
	// handler-only deployments, e.g. behind httptest).
	drained := make(chan struct{})
	go func() {
		sv.reqWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
	}

	sv.mu.Lock()
	all := make([]*session, 0, len(sv.sessions))
	for _, s := range sv.sessions {
		all = append(all, s)
	}
	sv.mu.Unlock()
	var firstErr error
	for _, s := range all {
		s.mu.Lock()
		if s.dirty.Load() || sv.neverSnapshotted(s) {
			if err := sv.snapshotLocked(s); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		s.mu.Unlock()
	}
	return firstErr
}

// neverSnapshotted reports whether s has no on-disk snapshot yet.
func (sv *Server) neverSnapshotted(s *session) bool {
	return sv.cfg.SnapshotDir != "" && s.lastSnap.Load() == 0
}

// retryAfterHint returns a jittered backoff hint. The jitter is a
// deterministic low-discrepancy sequence (no RNG, no time dependence):
// consecutive rejected clients get hints spread over [base/2, 3*base/2),
// so a rejected thundering herd does not come back as one.
func (sv *Server) retryAfterHint() time.Duration {
	base := sv.cfg.RetryAfter
	if base <= 0 {
		// New coerces the config, but a directly-constructed Server can
		// carry a zero base; a fixed hint beats a modulo-by-zero panic.
		return time.Second
	}
	seq := sv.reqSeq.Add(1)
	// Mix in uint64: the int64 product overflows once seq passes ~3.49e9,
	// and a negative remainder would advertise hints below base/2 (or a
	// negative Retry-After, which reads as "retry now").
	jitter := (uint64(seq) * 2654435761) % uint64(base)
	return base/2 + time.Duration(jitter)
}
