package serve

import "mgba/internal/obs"

// Serving-layer metrics. Gauges track the live envelope the backpressure
// contract is stated in (sessions resident, requests admitted); counters
// record every admission decision and lifecycle transition so a scrape of
// /debug/vars explains *why* clients saw 429s or resumed sessions.
var (
	obsSessions = obs.NewGauge("serve.sessions")
	obsInFlight = obs.NewGauge("serve.inflight")
	obsParBusy  = obs.NewGauge("serve.par_active")

	obsRequests         = obs.NewCounter("serve.requests")
	obsRejectSaturated  = obs.NewCounter("serve.rejected.saturated")
	obsRejectQueue      = obs.NewCounter("serve.rejected.queue")
	obsRejectDraining   = obs.NewCounter("serve.rejected.draining")
	obsRejectAdmitFault = obs.NewCounter("serve.rejected.admit_fault")

	obsBatches          = obs.NewCounter("serve.batches")
	obsOpsApplied       = obs.NewCounter("serve.ops.applied")
	obsDeadlineDegraded = obs.NewCounter("serve.deadline.degraded")

	obsEvictLRU    = obs.NewCounter("serve.evictions.lru")
	obsEvictIdle   = obs.NewCounter("serve.evictions.idle")
	obsSnapshotOK  = obs.NewCounter("serve.snapshots.ok")
	obsSnapshotErr = obs.NewCounter("serve.snapshots.fail")
	obsResumed     = obs.NewCounter("serve.sessions.resumed")
	obsQuarantined = obs.NewCounter("serve.sessions.quarantined")
	obsResurrected = obs.NewCounter("serve.sessions.resurrected")

	obsRecalNS = obs.NewHistogram("serve.recalibrate_ns", obs.DurationBuckets)
)
