package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mgba/internal/core"
)

// TestCreateWithViewPair runs a session on the cross-stage pair through
// the API surface: create, status, a transform batch with incremental
// recalibration against the routed twin, and the sessions list.
func TestCreateWithViewPair(t *testing.T) {
	_, ts := testServer(t, nil)
	d := testDesign(t, 300, 40)
	ids := upsizableIDs(t, d, 3)

	var st sessionStatus
	resp := doJSON(t, "POST", ts.URL+"/v1/sessions",
		createRequest{ID: "pre", DesignJSON: designJSON(t, d), ViewPair: core.PreroutePair}, &st)
	wantStatus(t, resp, http.StatusCreated)
	if st.ViewPair != core.PreroutePair || !st.Calibrated {
		t.Fatalf("create status %+v", st)
	}

	// The default pair remains the default for requests that do not ask.
	def := createInline(t, ts.URL, "plain", d)
	if def.ViewPair != core.DefaultViewPair {
		t.Fatalf("default create pair %q, want %q", def.ViewPair, core.DefaultViewPair)
	}

	var got sessionStatus
	wantStatus(t, doJSON(t, "GET", ts.URL+"/v1/sessions/pre", nil, &got), http.StatusOK)
	if got.ViewPair != core.PreroutePair {
		t.Fatalf("status pair %q", got.ViewPair)
	}

	var br batchResponse
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/sessions/pre/batch", upsizeBatch(ids), &br), http.StatusOK)
	if br.Status.ViewPair != core.PreroutePair || br.Status.Applied != 1 {
		t.Fatalf("batch status %+v", br.Status)
	}

	var list struct {
		Sessions []string          `json:"sessions"`
		Pairs    map[string]string `json:"view_pairs"`
	}
	wantStatus(t, doJSON(t, "GET", ts.URL+"/v1/sessions", nil, &list), http.StatusOK)
	if len(list.Sessions) != 2 {
		t.Fatalf("session list %v", list.Sessions)
	}
	if list.Pairs["pre"] != core.PreroutePair || list.Pairs["plain"] != core.DefaultViewPair {
		t.Fatalf("list pairs %v", list.Pairs)
	}
}

// TestCreateUnknownViewPairRejected pins the 400 contract: an unknown
// pair name is refused before any heavy work, and the error body lists
// every registered pair so the client can self-correct.
func TestCreateUnknownViewPairRejected(t *testing.T) {
	_, ts := testServer(t, nil)
	d := testDesign(t, 150, 20)

	var eb errorBody
	resp := doJSON(t, "POST", ts.URL+"/v1/sessions",
		createRequest{ID: "bad", DesignJSON: designJSON(t, d), ViewPair: "no-such-pair"}, &eb)
	wantStatus(t, resp, http.StatusBadRequest)
	for _, want := range core.ViewPairNames() {
		if !strings.Contains(eb.Error, want) {
			t.Fatalf("400 body %q does not list registered pair %q", eb.Error, want)
		}
	}
	wantStatus(t, doJSON(t, "GET", ts.URL+"/v1/sessions/bad", nil, nil), http.StatusNotFound)
}

// TestViewPairSurvivesResume restarts the daemon under a session created
// on the cross-stage pair: the pair rides the snapshot's meta blob, so
// the resumed session keeps calibrating under it even though the new
// process defaults to the gba-pba pair.
func TestViewPairSurvivesResume(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.SnapshotDir = dir
	sv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := testDesign(t, 300, 40)
	ts1 := httptest.NewServer(sv1)
	var st sessionStatus
	resp := doJSON(t, "POST", ts1.URL+"/v1/sessions",
		createRequest{ID: "keep", DesignJSON: designJSON(t, d), ViewPair: core.PreroutePair}, &st)
	wantStatus(t, resp, http.StatusCreated)
	ts1.Close()
	shutdownServer(t, sv1)

	sv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, sv2)
	ts2 := httptest.NewServer(sv2)
	defer ts2.Close()
	var got sessionStatus
	wantStatus(t, doJSON(t, "GET", ts2.URL+"/v1/sessions/keep", nil, &got), http.StatusOK)
	if got.ViewPair != core.PreroutePair {
		t.Fatalf("resumed session pair %q, want %q", got.ViewPair, core.PreroutePair)
	}
	if !got.Calibrated || got.Applied != st.Applied {
		t.Fatalf("resumed status %+v, created %+v", got, st)
	}
}
