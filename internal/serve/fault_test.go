package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"mgba/internal/faultinject"
)

// TestCrashMidBatchResumesBitIdentical is the daemon's headline
// robustness contract, end to end:
//
//  1. a session absorbs batch 1 and snapshots it;
//  2. batch 2 lands but its snapshot "crashes" (injected write fault), and
//     the process dies without a graceful drain — the disk still holds the
//     batch-1 state;
//  3. a restarted daemon resumes the session bit-identically to the
//     batch-1 state (slacks, weights, batch counter);
//  4. replaying batch 2 on the restarted daemon lands bit-identically on
//     the state the dead process had served after its batch 2 — the
//     recovery path (cold calibrator warm-started from persisted weights)
//     is exact, not approximate.
func TestCrashMidBatchResumesBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.SnapshotDir = dir

	d := testDesign(t, 300, 40)
	ids := upsizableIDs(t, d, 6)
	batch1, batch2 := upsizeBatch(ids[:3]), upsizeBatch(ids[3:])

	svA, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(svA)
	createInline(t, tsA.URL, "crash", d)
	wantStatus(t, doJSON(t, "POST", tsA.URL+"/v1/sessions/crash/batch", batch1, nil), http.StatusOK)
	afterBatch1 := getSlacks(t, tsA.URL, "crash")

	// Batch 2: the recalibration succeeds in memory but every snapshot
	// write from here on fails — the disk is frozen at the batch-1 state.
	boom := errors.New("injected snapshot crash")
	faultinject.SetError(faultinject.ServeSnapshot, func() error { return boom })
	var br2 batchResponse
	wantStatus(t, doJSON(t, "POST", tsA.URL+"/v1/sessions/crash/batch", batch2, &br2), http.StatusOK)
	afterBatch2 := getSlacks(t, tsA.URL, "crash")
	if sameFloats(afterBatch1.Slacks, afterBatch2.Slacks) {
		t.Fatal("batch 2 changed nothing; the crash test would be vacuous")
	}

	// The crash: no graceful snapshot happens (the injected fault also
	// covers Shutdown's flush), goroutines stop, the fault is disarmed
	// only after the "process" is gone.
	tsA.Close()
	ctx, cancel := ctxWithTimeout(10 * time.Second)
	err = svA.Shutdown(ctx)
	cancel()
	if !errors.Is(err, boom) {
		t.Fatalf("shutdown should have surfaced the injected snapshot failure, got %v", err)
	}
	faultinject.Reset()

	// Restart. The session must come back resident at the batch-1 state.
	svB, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(svB)
	defer func() {
		tsB.Close()
		shutdownServer(t, svB)
	}()

	var resumed sessionStatus
	wantStatus(t, doJSON(t, "GET", tsB.URL+"/v1/sessions/crash", nil, &resumed), http.StatusOK)
	if !resumed.Calibrated || resumed.Applied != 1 {
		t.Fatalf("resumed status %+v, want calibrated with 1 applied batch", resumed)
	}
	resumedSlacks := getSlacks(t, tsB.URL, "crash")
	if !sameFloats(afterBatch1.Slacks, resumedSlacks.Slacks) {
		t.Fatal("resumed slacks differ from the last durable (batch-1) state")
	}
	if !sameFloats(afterBatch1.Weights, resumedSlacks.Weights) {
		t.Fatal("resumed weights differ from the last durable (batch-1) state")
	}

	// Replay the lost batch. The resumed calibrator runs cold with the
	// persisted warm start; the dead process ran incrementally. The
	// calibrator's exactness contract makes those bit-identical.
	wantStatus(t, doJSON(t, "POST", tsB.URL+"/v1/sessions/crash/batch", batch2, nil), http.StatusOK)
	replayed := getSlacks(t, tsB.URL, "crash")
	if !sameFloats(afterBatch2.Slacks, replayed.Slacks) {
		t.Fatal("replayed batch-2 slacks differ from the uninterrupted run")
	}
	if !sameFloats(afterBatch2.Weights, replayed.Weights) {
		t.Fatal("replayed batch-2 weights differ from the uninterrupted run")
	}
}

// TestGracefulShutdownThenResume: the SIGTERM path — Shutdown snapshots
// the batch-2 state, so the restarted daemon resumes it directly, no
// replay needed.
func TestGracefulShutdownThenResume(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.SnapshotDir = dir
	cfg.SnapshotEvery = time.Hour // force the drain path to do the persisting

	d := testDesign(t, 300, 40)
	ids := upsizableIDs(t, d, 4)

	svA, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(svA)
	createInline(t, tsA.URL, "term", d)
	wantStatus(t, doJSON(t, "POST", tsA.URL+"/v1/sessions/term/batch", upsizeBatch(ids), nil), http.StatusOK)
	final := getSlacks(t, tsA.URL, "term")
	tsA.Close()
	ctx, cancel := ctxWithTimeout(10 * time.Second)
	if err := svA.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	svB, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(svB)
	defer func() {
		tsB.Close()
		shutdownServer(t, svB)
	}()
	resumed := getSlacks(t, tsB.URL, "term")
	if !sameFloats(final.Slacks, resumed.Slacks) || !sameFloats(final.Weights, resumed.Weights) {
		t.Fatal("graceful restart did not resume the exact pre-shutdown state")
	}
}

// TestBackpressureBounded: under deliberate saturation (in-flight budget
// 1, session queue 1, many concurrent clients) every request resolves
// promptly to either success or a well-formed 429 — nothing hangs,
// nothing 500s, and accepted requests complete within their (generous)
// deadline rather than being starved by the rejected herd.
func TestBackpressureBounded(t *testing.T) {
	_, ts := testServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxQueue = 1
	})
	d := testDesign(t, 300, 40)
	ids := upsizableIDs(t, d, 8)
	createInline(t, ts.URL, "sat", d)

	const clients = 12
	codes := make([]int, clients)
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	client := &http.Client{Timeout: 60 * time.Second}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			blob, _ := json.Marshal(upsizeBatch([]int{ids[i%len(ids)]}))
			req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions/sat/batch", bytes.NewReader(blob))
			req.Header.Set("X-Deadline-Ms", "30000")
			<-start
			resp, err := client.Do(req)
			if err != nil {
				codes[i] = -1
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			bodies[i] = buf.Bytes()
		}(i)
	}
	close(start)
	wg.Wait()

	okCount, rejCount := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			okCount++
			var br batchResponse
			if err := json.Unmarshal(bodies[i], &br); err != nil {
				t.Errorf("client %d: accepted response not JSON: %v", i, err)
				continue
			}
			if br.Status.Partial || br.Status.Degraded {
				t.Errorf("client %d: accepted request missed its 30s deadline: %+v", i, br.Status)
			}
		case http.StatusTooManyRequests:
			rejCount++
			var eb errorBody
			if err := json.Unmarshal(bodies[i], &eb); err != nil || eb.RetryAfterMS <= 0 {
				t.Errorf("client %d: 429 body lacks retry_after_ms: %s", i, bodies[i])
			}
		case -1:
			t.Errorf("client %d: transport error (request hung or dropped)", i)
		default:
			t.Errorf("client %d: unexpected status %d: %s", i, code, bodies[i])
		}
	}
	if okCount == 0 {
		t.Fatal("saturation refused every request; backpressure must keep serving")
	}
	if okCount+rejCount != clients {
		t.Fatalf("responses outside the 200/429 contract: %v", codes)
	}
	t.Logf("saturation: %d accepted, %d rejected with Retry-After", okCount, rejCount)
}

// TestInflightExhausted429 pins the admission decision deterministically:
// with the in-flight budget held, any heavy request is refused
// immediately with 429 + Retry-After.
func TestInflightExhausted429(t *testing.T) {
	sv, ts := testServer(t, func(c *Config) { c.MaxInFlight = 2 })
	createInline(t, ts.URL, "full", testDesign(t, 150, 20))

	for i := 0; i < cap(sv.inflight); i++ {
		sv.inflight <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(sv.inflight); i++ {
			<-sv.inflight
		}
	}()
	resp := doJSON(t, "GET", ts.URL+"/v1/sessions/full/slacks", nil, nil)
	wantStatus(t, resp, http.StatusTooManyRequests)
	assertRetryable(t, resp)
}

// TestSessionQueueFull429 pins the per-session queue bound: while one
// writer holds the session, a queue of MaxQueue is admitted and the next
// request bounces with 429.
func TestSessionQueueFull429(t *testing.T) {
	sv, ts := testServer(t, func(c *Config) { c.MaxQueue = 1 })
	createInline(t, ts.URL, "busy", testDesign(t, 150, 20))

	s := sv.getSession("busy")
	ok, gone := s.acquire(sv.cfg.MaxQueue)
	if !ok || gone {
		t.Fatalf("test could not take the writer lock: ok=%v gone=%v", ok, gone)
	}
	defer s.release()

	resp := doJSON(t, "GET", ts.URL+"/v1/sessions/busy/slacks", nil, nil)
	wantStatus(t, resp, http.StatusTooManyRequests)
	assertRetryable(t, resp)
}

// TestAdmitFaultRejects503: the ServeAdmit hook turns admission off for
// drills; refusals are 503 + Retry-After, not errors or hangs.
func TestAdmitFaultRejects503(t *testing.T) {
	_, ts := testServer(t, nil)
	createInline(t, ts.URL, "adm", testDesign(t, 150, 20))

	faultinject.SetError(faultinject.ServeAdmit, func() error { return errors.New("injected admission refusal") })
	defer faultinject.Reset()
	resp := doJSON(t, "GET", ts.URL+"/v1/sessions/adm/slacks", nil, nil)
	wantStatus(t, resp, http.StatusServiceUnavailable)
	assertRetryable(t, resp)
}

// TestSnapshotFaultKeepsServing: persistent snapshot failure must not
// fail requests — the batch succeeds, the session stays dirty, and the
// first healthy sweep flushes it.
func TestSnapshotFaultKeepsServing(t *testing.T) {
	sv, ts := testServer(t, nil)
	d := testDesign(t, 300, 40)
	ids := upsizableIDs(t, d, 2)
	createInline(t, ts.URL, "flaky", d)

	faultinject.SetError(faultinject.ServeSnapshot, func() error { return errors.New("injected disk full") })
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/sessions/flaky/batch", upsizeBatch(ids), nil), http.StatusOK)
	s := sv.getSession("flaky")
	if !s.dirty.Load() {
		t.Fatal("failed snapshot must leave the session dirty for retry")
	}
	faultinject.Reset()

	sv.Sweep(time.Now())
	if s.dirty.Load() {
		t.Fatal("sweep after fault cleared did not flush")
	}
}

// TestEvictionFaultLosesOnlyTail: when the eviction snapshot fails, the
// session's durable state stays at its previous snapshot — resurrect
// serves the older state instead of nothing.
func TestEvictionFaultLosesOnlyTail(t *testing.T) {
	sv, ts := testServer(t, func(c *Config) {
		c.MaxSessions = 1
		c.SnapshotEvery = time.Hour // batches do not snapshot synchronously
	})
	d := testDesign(t, 300, 40)
	ids := upsizableIDs(t, d, 4)

	createInline(t, ts.URL, "tail", d)
	s := sv.getSession("tail")
	s.mu.Lock()
	if err := sv.snapshotLocked(s); err != nil { // durable point: created state
		s.mu.Unlock()
		t.Fatal(err)
	}
	s.mu.Unlock()
	durable := getSlacks(t, ts.URL, "tail")
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/sessions/tail/batch", upsizeBatch(ids), nil), http.StatusOK)

	// Evict under an eviction-snapshot fault: the batch above is lost,
	// the durable point survives.
	faultinject.SetError(faultinject.ServeEvict, func() error { return errors.New("injected eviction fault") })
	createInline(t, ts.URL, "other", testDesign(t, 150, 20))
	faultinject.Reset()

	resurrected := getSlacks(t, ts.URL, "tail")
	if !sameFloats(durable.Slacks, resurrected.Slacks) {
		t.Fatal("eviction fault corrupted the durable snapshot")
	}
}

// TestConcurrentMixedSessions drives several sessions concurrently
// (create, batches, reads, deletes) as a -race exerciser for the
// registry, the writer queues and the snapshot paths.
func TestConcurrentMixedSessions(t *testing.T) {
	_, ts := testServer(t, func(c *Config) {
		c.MaxSessions = 3
		c.MaxInFlight = 8
	})
	d := testDesign(t, 150, 20)
	ids := upsizableIDs(t, d, 4)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := string(rune('a' + i))
			blob, _ := json.Marshal(createRequest{ID: id, DesignJSON: designJSON(t, d)})
			resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(blob))
			if err != nil {
				t.Errorf("create %s: %v", id, err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				return // evicted or rejected under pressure; both fine here
			}
			for round := 0; round < 2; round++ {
				b, _ := json.Marshal(upsizeBatch([]int{ids[round]}))
				if resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/batch", "application/json", bytes.NewReader(b)); err == nil {
					resp.Body.Close()
				}
				if resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/slacks"); err == nil {
					resp.Body.Close()
				}
			}
		}(i)
	}
	wg.Wait()
	// The registry must end bounded and consistent.
	var list struct {
		Sessions []string `json:"sessions"`
	}
	wantStatus(t, doJSON(t, "GET", ts.URL+"/v1/sessions", nil, &list), http.StatusOK)
	if len(list.Sessions) > 3 {
		t.Fatalf("registry exceeded MaxSessions: %v", list.Sessions)
	}
}

// TestDeleteSessionRemovesSnapshot: delete is durable — the snapshot is
// gone and the session cannot be resurrected.
func TestDeleteSessionRemovesSnapshot(t *testing.T) {
	sv, ts := testServer(t, nil)
	createInline(t, ts.URL, "gone", testDesign(t, 150, 20))
	if _, err := os.Stat(sv.snapshotPath("gone")); err != nil {
		t.Fatalf("create did not snapshot: %v", err)
	}
	wantStatus(t, doJSON(t, "DELETE", ts.URL+"/v1/sessions/gone", nil, nil), http.StatusOK)
	if _, err := os.Stat(sv.snapshotPath("gone")); err == nil {
		t.Fatal("delete left the snapshot behind")
	}
	wantStatus(t, doJSON(t, "GET", ts.URL+"/v1/sessions/gone", nil, nil), http.StatusNotFound)
}
