package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/netio"
	"mgba/internal/netlist"
)

// testDesign generates a small violating design for fast handler tests.
func testDesign(t *testing.T, gates, ffs int) *netlist.Design {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = gates, ffs
	cfg.Name = "serve-test"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// designJSON serializes d in the netio interchange format for inline
// session creation.
func designJSON(t *testing.T, d *netlist.Design) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := netio.Save(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// upsizableIDs returns n instance IDs that an upsize op will actually
// move: combinational, alive, off the clock network, not already at the
// top of the drive ladder.
func upsizableIDs(t *testing.T, d *netlist.Design, n int) []int {
	t.Helper()
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for id, inst := range d.Instances {
		if len(ids) == n {
			break
		}
		if inst.IsFF() || inst.Dead || g.IsClock(id) {
			continue
		}
		if d.Lib.Upsize(inst.Cell) == nil {
			continue
		}
		ids = append(ids, id)
	}
	if len(ids) < n {
		t.Fatalf("only %d upsizable instances, want %d", len(ids), n)
	}
	return ids
}

// testServer builds a server (snapshots in a temp dir unless cfg says
// otherwise) behind httptest, with Shutdown wired into cleanup.
func testServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SnapshotDir = t.TempDir()
	if mutate != nil {
		mutate(&cfg)
	}
	sv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := ctxWithTimeout(10 * time.Second)
		defer cancel()
		_ = sv.Shutdown(ctx)
	})
	return sv, ts
}

// doJSON performs one API call and decodes the response into out (when
// non-nil), returning the raw response for header/status checks.
func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body = io.NopCloser(bytes.NewReader(blob))
	if out != nil {
		if err := json.Unmarshal(blob, out); err != nil {
			t.Fatalf("%s %s: bad response JSON %q: %v", method, url, blob, err)
		}
	}
	return resp
}

func wantStatus(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	if resp.StatusCode != want {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, want, body)
	}
}

func createInline(t *testing.T, base, id string, d *netlist.Design) sessionStatus {
	t.Helper()
	var st sessionStatus
	resp := doJSON(t, "POST", base+"/v1/sessions",
		createRequest{ID: id, DesignJSON: designJSON(t, d)}, &st)
	wantStatus(t, resp, http.StatusCreated)
	return st
}

func getSlacks(t *testing.T, base, id string) slacksResponse {
	t.Helper()
	var sl slacksResponse
	resp := doJSON(t, "GET", base+"/v1/sessions/"+id+"/slacks", nil, &sl)
	wantStatus(t, resp, http.StatusOK)
	return sl
}

func upsizeBatch(ids []int) batchRequest {
	ops := make([]Op, len(ids))
	for i, id := range ids {
		ops[i] = Op{Op: "upsize", Instance: id}
	}
	return batchRequest{Ops: ops}
}

// TestSessionLifecycle walks the whole API surface once: create from an
// inline design, read status and slacks, apply a transform batch with
// incremental recalibration, force a full recalibration, list, delete.
func TestSessionLifecycle(t *testing.T) {
	_, ts := testServer(t, nil)
	d := testDesign(t, 300, 40)
	ids := upsizableIDs(t, d, 3)

	st := createInline(t, ts.URL, "life", d)
	if !st.Calibrated || st.ID != "life" || st.Source != "inline" {
		t.Fatalf("create status %+v", st)
	}
	if st.WNS > 0 {
		t.Fatalf("toy design should be violating, WNS %v", st.WNS)
	}

	var got sessionStatus
	wantStatus(t, doJSON(t, "GET", ts.URL+"/v1/sessions/life", nil, &got), http.StatusOK)
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("status drifted without writes: %+v vs %+v", got, st)
	}

	sl := getSlacks(t, ts.URL, "life")
	if len(sl.Slacks) == 0 || len(sl.Weights) != len(d.Instances) {
		t.Fatalf("slacks %d, weights %d (want instances %d)", len(sl.Slacks), len(sl.Weights), len(d.Instances))
	}
	if sl.WNS != st.WNS || sl.TNS != st.TNS {
		t.Fatalf("slacks WNS/TNS disagree with status: %v/%v vs %v/%v", sl.WNS, sl.TNS, st.WNS, st.TNS)
	}

	var br batchResponse
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/sessions/life/batch", upsizeBatch(ids), &br), http.StatusOK)
	if br.Status.Applied != 1 || br.Dirty == 0 {
		t.Fatalf("batch response %+v", br)
	}
	for i, res := range br.Results {
		if !res.Applied {
			t.Fatalf("op %d not applied: %+v", i, res)
		}
	}

	var rc sessionStatus
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/sessions/life/recalibrate", nil, &rc), http.StatusOK)
	post := getSlacks(t, ts.URL, "life")
	if rc.WNS != post.WNS {
		t.Fatalf("recalibrate WNS %v but slacks WNS %v", rc.WNS, post.WNS)
	}

	var list struct {
		Sessions []string `json:"sessions"`
	}
	wantStatus(t, doJSON(t, "GET", ts.URL+"/v1/sessions", nil, &list), http.StatusOK)
	if len(list.Sessions) != 1 || list.Sessions[0] != "life" {
		t.Fatalf("session list %v", list.Sessions)
	}

	wantStatus(t, doJSON(t, "DELETE", ts.URL+"/v1/sessions/life", nil, nil), http.StatusOK)
	wantStatus(t, doJSON(t, "GET", ts.URL+"/v1/sessions/life", nil, nil), http.StatusNotFound)
	wantStatus(t, doJSON(t, "DELETE", ts.URL+"/v1/sessions/life", nil, nil), http.StatusNotFound)
}

// TestCreateValidation covers the request-shape rejections.
func TestCreateValidation(t *testing.T) {
	_, ts := testServer(t, nil)
	d := testDesign(t, 150, 20)

	cases := []struct {
		name string
		req  createRequest
		want int
	}{
		{"bad id", createRequest{ID: "../evil", Design: "toy"}, http.StatusBadRequest},
		{"empty id", createRequest{Design: "toy"}, http.StatusBadRequest},
		{"no design", createRequest{ID: "a"}, http.StatusBadRequest},
		{"both designs", createRequest{ID: "a", Design: "toy", DesignJSON: designJSON(t, d)}, http.StatusBadRequest},
		{"unknown design", createRequest{ID: "a", Design: "nope"}, http.StatusBadRequest},
		{"garbage inline", createRequest{ID: "a", DesignJSON: json.RawMessage(`{"not":"a design"}`)}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := doJSON(t, "POST", ts.URL+"/v1/sessions", tc.req, nil)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	createInline(t, ts.URL, "dup", d)
	resp := doJSON(t, "POST", ts.URL+"/v1/sessions",
		createRequest{ID: "dup", DesignJSON: designJSON(t, d)}, nil)
	wantStatus(t, resp, http.StatusConflict)
}

// TestBatchValidationRevertsAtomically: a batch with a bad op in the
// middle must reject with 422 and leave the session bit-identical to its
// pre-batch state — earlier ops in the same batch are reverted.
func TestBatchValidationRevertsAtomically(t *testing.T) {
	_, ts := testServer(t, nil)
	d := testDesign(t, 300, 40)
	ids := upsizableIDs(t, d, 2)
	createInline(t, ts.URL, "atomic", d)
	before := getSlacks(t, ts.URL, "atomic")

	bad := batchRequest{Ops: []Op{
		{Op: "upsize", Instance: ids[0]},
		{Op: "resize", Instance: ids[1], Cell: "no-such-cell"},
	}}
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/sessions/atomic/batch", bad, nil), http.StatusUnprocessableEntity)

	after := getSlacks(t, ts.URL, "atomic")
	if !sameFloats(before.Slacks, after.Slacks) || !sameFloats(before.Weights, after.Weights) {
		t.Fatal("rejected batch left the session changed")
	}

	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/sessions/atomic/batch",
		batchRequest{Ops: []Op{{Op: "downsize", Instance: ids[0]}, {Op: "upsize", Instance: ids[0]}}}, nil),
		http.StatusOK)
}

// TestDeadlineExceededDegradesNeverDrops: a request whose deadline cannot
// be met returns HTTP 200 with the degradation ladder's never-optimistic
// partial result — not a timeout, not a 5xx.
func TestDeadlineExceededDegradesNeverDrops(t *testing.T) {
	_, ts := testServer(t, nil)
	d := testDesign(t, 700, 90)
	ids := upsizableIDs(t, d, 10)
	createInline(t, ts.URL, "dl", d)
	base := getSlacks(t, ts.URL, "dl")

	blob, _ := json.Marshal(upsizeBatch(ids))
	req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/dl/batch", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Deadline-Ms", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline-exceeded batch: status %d, want 200", resp.StatusCode)
	}
	if !br.Status.Partial && !br.Status.Degraded {
		t.Fatalf("1ms deadline produced a full fit? %+v", br.Status)
	}
	// The degraded result is still a complete, usable answer (core's
	// scale-back guarantees it is never optimistic; pinned there).
	after := getSlacks(t, ts.URL, "dl")
	if len(after.Weights) != len(d.Instances) {
		t.Fatalf("degraded weights length %d, want %d", len(after.Weights), len(d.Instances))
	}
	for i, w := range after.Weights {
		if w <= 0 || w != w {
			t.Fatalf("degraded weight %d = %v is not a valid weight", i, w)
		}
	}
	if len(after.Slacks) != len(base.Slacks) {
		t.Fatalf("slack vector length changed: %d vs %d", len(after.Slacks), len(base.Slacks))
	}
}

// TestLRUEvictionResurrectsBitIdentical: with MaxSessions=1 the second
// create evicts the first (snapshot to disk); touching the first again
// resurrects it with bit-identical slacks and weights.
func TestLRUEvictionResurrectsBitIdentical(t *testing.T) {
	sv, ts := testServer(t, func(c *Config) { c.MaxSessions = 1 })
	d1 := testDesign(t, 300, 40)
	d2 := testDesign(t, 150, 20)

	createInline(t, ts.URL, "first", d1)
	before := getSlacks(t, ts.URL, "first")

	createInline(t, ts.URL, "second", d2)
	sv.mu.Lock()
	_, resident := sv.sessions["first"]
	sv.mu.Unlock()
	if resident {
		t.Fatal("first session should have been LRU-evicted")
	}
	if _, err := os.Stat(sv.snapshotPath("first")); err != nil {
		t.Fatalf("evicted session has no snapshot: %v", err)
	}

	after := getSlacks(t, ts.URL, "first") // resurrects, evicting "second"
	if !sameFloats(before.Slacks, after.Slacks) {
		t.Fatal("resurrected slacks differ from pre-eviction slacks")
	}
	if !sameFloats(before.Weights, after.Weights) {
		t.Fatal("resurrected weights differ from pre-eviction weights")
	}
}

// TestIdleSweepEvicts: Sweep with a time beyond the idle window must
// evict (with snapshot) without waiting for the background janitor.
func TestIdleSweepEvicts(t *testing.T) {
	sv, ts := testServer(t, func(c *Config) { c.IdleTimeout = time.Minute })
	createInline(t, ts.URL, "idler", testDesign(t, 150, 20))

	sv.Sweep(time.Now()) // inside the window: stays
	sv.mu.Lock()
	_, resident := sv.sessions["idler"]
	sv.mu.Unlock()
	if !resident {
		t.Fatal("session evicted before its idle timeout")
	}

	sv.Sweep(time.Now().Add(2 * time.Minute))
	sv.mu.Lock()
	_, resident = sv.sessions["idler"]
	sv.mu.Unlock()
	if resident {
		t.Fatal("idle session not evicted")
	}
	if _, err := os.Stat(sv.snapshotPath("idler")); err != nil {
		t.Fatalf("idle eviction lost the session: %v", err)
	}
	// Still reachable: the next request resurrects it.
	wantStatus(t, doJSON(t, "GET", ts.URL+"/v1/sessions/idler", nil, nil), http.StatusOK)
}

// TestWriteBehindSweepFlushes: with a write-behind cadence configured,
// a batch leaves the session dirty until a sweep persists it.
func TestWriteBehindSweepFlushes(t *testing.T) {
	sv, ts := testServer(t, func(c *Config) { c.SnapshotEvery = time.Hour })
	d := testDesign(t, 300, 40)
	ids := upsizableIDs(t, d, 2)
	createInline(t, ts.URL, "wb", d)
	wantStatus(t, doJSON(t, "POST", ts.URL+"/v1/sessions/wb/batch", upsizeBatch(ids), nil), http.StatusOK)

	s := sv.getSession("wb")
	if !s.dirty.Load() {
		t.Fatal("batch should leave the session dirty under write-behind")
	}
	if _, err := os.Stat(sv.snapshotPath("wb")); err == nil {
		t.Fatal("write-behind mode snapshotted synchronously")
	}
	sv.Sweep(time.Now())
	if s.dirty.Load() {
		t.Fatal("sweep did not flush the dirty session")
	}
	if _, err := os.Stat(sv.snapshotPath("wb")); err != nil {
		t.Fatalf("sweep flush wrote no snapshot: %v", err)
	}
}

// TestCorruptSnapshotQuarantined: startup recovery must quarantine a
// corrupt blob (rename, keep the bytes for forensics) and keep going.
func TestCorruptSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.ckpt"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A healthy snapshot alongside proves recovery continues past the bad one.
	cfg := DefaultConfig()
	cfg.SnapshotDir = dir
	sv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, sv)
	createViaHandler(t, sv, "good", testDesign(t, 150, 20))
	ctx, cancel := ctxWithTimeout(10 * time.Second)
	_ = sv.Shutdown(ctx)
	cancel()

	sv2, err := New(cfg)
	if err != nil {
		t.Fatalf("one corrupt snapshot failed startup: %v", err)
	}
	defer shutdownServer(t, sv2)
	sv2.mu.Lock()
	_, hasBad := sv2.sessions["bad"]
	_, hasGood := sv2.sessions["good"]
	sv2.mu.Unlock()
	if hasBad {
		t.Fatal("corrupt snapshot produced a session")
	}
	if !hasGood {
		t.Fatal("healthy snapshot not resumed alongside the corrupt one")
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.ckpt.quarantine")); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.ckpt")); err == nil {
		t.Fatal("corrupt snapshot left in place")
	}
}

// TestHealthzReportsDraining: shutdown flips health to draining and new
// heavy requests are refused with 503 + Retry-After.
func TestHealthzReportsDraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SnapshotDir = t.TempDir()
	sv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv)
	defer ts.Close()

	var h struct {
		Status string `json:"status"`
	}
	wantStatus(t, doJSON(t, "GET", ts.URL+"/healthz", nil, &h), http.StatusOK)
	if h.Status != "ok" {
		t.Fatalf("health %q, want ok", h.Status)
	}

	ctx, cancel := ctxWithTimeout(10 * time.Second)
	defer cancel()
	if err := sv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	wantStatus(t, doJSON(t, "GET", ts.URL+"/healthz", nil, &h), http.StatusOK)
	if h.Status != "draining" {
		t.Fatalf("health %q after Shutdown, want draining", h.Status)
	}
	resp := doJSON(t, "POST", ts.URL+"/v1/sessions", createRequest{ID: "x", Design: "toy"}, nil)
	wantStatus(t, resp, http.StatusServiceUnavailable)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining rejection missing Retry-After")
	}
}

// TestRetryAfterHintJittered: consecutive hints must spread over
// [base/2, 3*base/2) rather than synchronizing rejected clients.
func TestRetryAfterHintJittered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetryAfter = 400 * time.Millisecond
	sv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, sv)
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		h := sv.retryAfterHint()
		if h < cfg.RetryAfter/2 || h >= cfg.RetryAfter/2+cfg.RetryAfter {
			t.Fatalf("hint %v outside [%v, %v)", h, cfg.RetryAfter/2, cfg.RetryAfter/2+cfg.RetryAfter)
		}
		seen[h] = true
	}
	if len(seen) < 8 {
		t.Fatalf("hints barely vary: %d distinct over 64 draws", len(seen))
	}
}

// TestRetryAfterHintOverflowSeed seeds the jitter sequence just below the
// point where the int64 product seq*2654435761 overflows, then draws
// across it: every hint must stay in [base/2, 3*base/2). Before the
// unsigned mix, the overflowed remainder went negative and the daemon
// advertised sub-base/2 (even negative) Retry-After hints.
func TestRetryAfterHintOverflowSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetryAfter = 400 * time.Millisecond
	sv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, sv)
	sv.reqSeq.Store(math.MaxInt64/2654435761 - 10)
	lo, hi := cfg.RetryAfter/2, cfg.RetryAfter/2+cfg.RetryAfter
	for i := 0; i < 1000; i++ {
		if h := sv.retryAfterHint(); h < lo || h >= hi {
			t.Fatalf("draw %d (seq %d): hint %v outside [%v, %v)", i, sv.reqSeq.Load(), h, lo, hi)
		}
	}
}

// TestRetryAfterHintZeroBase: a directly-constructed Server (no New, so
// no config coercion) carries a zero RetryAfter; the hint must fall back
// to a fixed second instead of a modulo-by-zero panic.
func TestRetryAfterHintZeroBase(t *testing.T) {
	sv := &Server{}
	for i := 0; i < 3; i++ {
		if h := sv.retryAfterHint(); h != time.Second {
			t.Fatalf("zero-base hint = %v, want %v", h, time.Second)
		}
	}
}

// --- shared helpers ---

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func ctxWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// createViaHandler creates a session through the real handler stack
// without an HTTP listener.
func createViaHandler(t *testing.T, sv *Server, id string, d *netlist.Design) {
	t.Helper()
	blob, err := json.Marshal(createRequest{ID: id, DesignJSON: designJSON(t, d)})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/sessions", bytes.NewReader(blob))
	rec := httptest.NewRecorder()
	sv.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create %s: status %d: %s", id, rec.Code, rec.Body.String())
	}
}

func shutdownServer(t *testing.T, sv *Server) {
	t.Helper()
	ctx, cancel := ctxWithTimeout(10 * time.Second)
	defer cancel()
	if err := sv.Shutdown(ctx); err != nil && !strings.Contains(err.Error(), "injected") {
		t.Errorf("shutdown: %v", err)
	}
}

// assertRetryable checks the shared shape of every 429/503 refusal: a
// Retry-After header in whole seconds and a machine-readable
// retry_after_ms in the body.
func assertRetryable(t *testing.T, resp *http.Response) {
	t.Helper()
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Errorf("%d response missing Retry-After header", resp.StatusCode)
	}
	var eb errorBody
	blob, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(blob, &eb); err != nil {
		t.Errorf("%d response body not JSON: %s", resp.StatusCode, blob)
		return
	}
	if eb.RetryAfterMS <= 0 {
		t.Errorf("%d response retry_after_ms = %d, want > 0", resp.StatusCode, eb.RetryAfterMS)
	}
	if eb.Error == "" {
		t.Errorf("%d response has empty error", resp.StatusCode)
	}
}
