package report

import (
	"strings"
	"testing"

	"mgba/internal/num"
)

func TestTableRendering(t *testing.T) {
	tb := New("T", "design", "value")
	tb.AddRow("D1", "1.5")
	tb.AddRow("D10", "2.25")
	tb.AddNote("values are synthetic")
	s := tb.String()
	for _, want := range []string{"T\n", "design", "D10", "2.25", "note: values are synthetic"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
	// Alignment: every border line has the same length.
	var borders []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "+") {
			borders = append(borders, line)
		}
	}
	if len(borders) != 3 {
		t.Fatalf("expected 3 border lines, got %d", len(borders))
	}
	for _, bl := range borders[1:] {
		if len(bl) != len(borders[0]) {
			t.Fatal("borders not aligned")
		}
	}
}

func TestAddRowShortAndLong(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("x") // short rows pad
	if tb.Rows[0][1] != "" {
		t.Fatal("short row not padded")
	}
	// Extra cells must never panic — a malformed row cannot be allowed to
	// kill a long run at render time. They are dropped and noted instead.
	tb.AddRow("1", "2", "3")
	if len(tb.Rows) != 2 || tb.Rows[1][0] != "1" || tb.Rows[1][1] != "2" {
		t.Fatalf("long row not truncated: %v", tb.Rows)
	}
	if len(tb.Notes) != 1 || !strings.Contains(tb.Notes[0], "3") {
		t.Fatalf("dropped cells not noted: %v", tb.Notes)
	}
	s := tb.String() // must render cleanly end to end
	if !strings.Contains(s, "extra cells dropped") {
		t.Fatalf("note missing from render:\n%s", s)
	}
}

// Bars must scale in float: with counts near MaxInt, the old c*barWidth
// intermediate overflowed and produced negative repeat counts (a panic).
func TestHistogramHugeCountsNoOverflow(t *testing.T) {
	h := num.NewHistogram(nil, 0, 1, 2)
	h.Counts[0] = 1 << 61
	h.Counts[1] = 1 << 60
	s := Histogram("big", h, 20)
	if !strings.Contains(s, "####################") {
		t.Fatalf("max bin not full width:\n%s", s)
	}
	for _, line := range strings.Split(s, "\n") {
		if strings.Count(line, "#") > 20 {
			t.Fatalf("bar wider than barWidth:\n%s", s)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("x,y", "plain")
	tb.AddRow("q\"uote", "2")
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "a,b\n\"x,y\",plain\n\"q\"\"uote\",2\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatalf("F = %q", F(1.23456, 2))
	}
	if Pct(0.4379, 2) != "43.79" {
		t.Fatalf("Pct = %q", Pct(0.4379, 2))
	}
}

func TestHistogramRender(t *testing.T) {
	h := num.NewHistogram([]float64{-0.5, 0.001, 0.002, 0.003, 0.9, 2}, -1, 1, 4)
	s := Histogram("Fig3", h, 20)
	if !strings.Contains(s, "Fig3") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, ">= hi") {
		t.Fatal("missing overflow row")
	}
	lines := strings.Count(s, "\n")
	if lines != 6 { // title + 4 bins + overflow
		t.Fatalf("line count = %d:\n%s", lines, s)
	}
	if !strings.Contains(s, "####################") {
		t.Fatal("max bin not full width")
	}
}

func TestHistogramEmptyCounts(t *testing.T) {
	h := num.NewHistogram(nil, 0, 1, 3)
	s := Histogram("", h, 10)
	if strings.Contains(s, "#") {
		t.Fatal("bars drawn for empty histogram")
	}
}
