// Package report renders experiment results as aligned ASCII tables,
// ASCII histograms (for the Fig. 3 sparsity plot) and CSV, so every table
// and figure of the paper can be regenerated as text from cmd/experiments.
package report

import (
	"fmt"
	"io"
	"strings"

	"mgba/internal/num"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string // free-form footnotes printed under the table
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; missing cells render empty. Extra cells are
// dropped and recorded as a footnote instead of panicking: a malformed
// row is a rendering blemish, and must never kill a multi-hour run at
// the final report.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		t.AddNote("row %d had %d cells for %d columns; extra cells dropped: %s",
			len(t.Rows)+1, len(cells), len(t.Columns),
			strings.Join(cells[len(t.Columns):], " | "))
		cells = cells[:len(t.Columns)]
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	sep := func() {
		for i := range t.Columns {
			b.WriteString("+")
			b.WriteString(strings.Repeat("-", widths[i]+2))
		}
		b.WriteString("+\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "| %-*s ", widths[i], c)
		}
		b.WriteString("|\n")
	}
	sep()
	writeRow(t.Columns)
	sep()
	for _, row := range t.Rows {
		writeRow(row)
	}
	sep()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Fprint(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// CSV writes the table as comma-separated values (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeLine(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a ratio as a percentage with the given decimals.
func Pct(ratio float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, ratio*100)
}

// Histogram renders h as horizontal ASCII bars of at most barWidth chars,
// with bin centers as labels — the Fig. 3 renderer.
func Histogram(title string, h *num.Histogram, barWidth int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if h.Under > 0 {
		fmt.Fprintf(&b, "%10s | %d\n", "< lo", h.Under)
	}
	for i, c := range h.Counts {
		// Scale in float: c*barWidth overflows int for very large counts.
		w := int(float64(c) / float64(maxC) * float64(barWidth))
		if w > barWidth {
			w = barWidth
		}
		bar := strings.Repeat("#", w)
		fmt.Fprintf(&b, "%10.3f | %-*s %d\n", h.BinCenter(i), barWidth, bar, c)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "%10s | %d\n", ">= hi", h.Over)
	}
	return b.String()
}
