package num

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
}

func TestNorm2Overflow(t *testing.T) {
	big := 1e200
	got := Norm2([]float64{big, big})
	want := big * math.Sqrt2
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("Norm2 overflow-safe = %v, want %v", got, want)
	}
}

func TestNorm2MatchesNorm2Sq(t *testing.T) {
	f := func(v []float64) bool {
		// Restrict magnitudes so naive squaring cannot overflow.
		for i := range v {
			if math.IsNaN(v[i]) || math.IsInf(v[i], 0) || math.Abs(v[i]) > 1e100 {
				v[i] = 1
			}
		}
		return almostEq(Norm2(v), math.Sqrt(Norm2Sq(v)), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{-7, 3, 5}); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v, want [7 9]", y)
	}
}

func TestScale(t *testing.T) {
	v := []float64{1, -2}
	Scale(-3, v)
	if v[0] != -3 || v[1] != 6 {
		t.Fatalf("Scale = %v", v)
	}
}

func TestSubAdd(t *testing.T) {
	a := []float64{5, 7}
	b := []float64{2, 3}
	d := Sub(make([]float64, 2), a, b)
	if d[0] != 3 || d[1] != 4 {
		t.Fatalf("Sub = %v", d)
	}
	s := Add(make([]float64, 2), a, b)
	if s[0] != 7 || s[1] != 10 {
		t.Fatalf("Add = %v", s)
	}
}

func TestSubAliasing(t *testing.T) {
	a := []float64{5, 7}
	Sub(a, a, []float64{1, 2})
	if a[0] != 4 || a[1] != 5 {
		t.Fatalf("aliased Sub = %v", a)
	}
}

func TestCopyIndependent(t *testing.T) {
	a := []float64{1, 2}
	c := Copy(a)
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("Copy shares backing array")
	}
}

func TestFill(t *testing.T) {
	v := make([]float64, 3)
	Fill(v, 2.5)
	for _, x := range v {
		if x != 2.5 {
			t.Fatalf("Fill = %v", v)
		}
	}
}

func TestRelDiff(t *testing.T) {
	if got := RelDiff([]float64{1, 1}, []float64{1, 1}); got != 0 {
		t.Fatalf("RelDiff equal = %v", got)
	}
	got := RelDiff([]float64{2, 0}, []float64{1, 0})
	if !almostEq(got, 1, 1e-12) {
		t.Fatalf("RelDiff = %v, want 1", got)
	}
}

func TestRelDiffZeroBase(t *testing.T) {
	got := RelDiff([]float64{3, 4}, []float64{0, 0})
	if got != 5 {
		t.Fatalf("RelDiff with zero base = %v, want 5 (absolute)", got)
	}
}

func TestMeanMinMaxSum(t *testing.T) {
	v := []float64{2, -1, 5}
	if Mean(v) != 2 {
		t.Fatalf("Mean = %v", Mean(v))
	}
	if Min(v) != -1 {
		t.Fatalf("Min = %v", Min(v))
	}
	if Max(v) != 5 {
		t.Fatalf("Max = %v", Max(v))
	}
	if Sum(v) != 6 {
		t.Fatalf("Sum = %v", Sum(v))
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestMinEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Min(nil)
}

func TestQuantile(t *testing.T) {
	v := []float64{4, 1, 3, 2}
	if got := Quantile(v, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(v, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(v, 0.5); !almostEq(got, 2.5, 1e-12) {
		t.Fatalf("median = %v, want 2.5", got)
	}
	// Quantile must not reorder the caller's slice.
	if v[0] != 4 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantileSingle(t *testing.T) {
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Fatalf("single-element quantile = %v", got)
	}
}

func TestQuantileBadQPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestFractionWithin(t *testing.T) {
	v := []float64{-0.5, 0, 0.005, 0.02, 1}
	got := FractionWithin(v, -0.01, 0.01)
	if !almostEq(got, 0.4, 1e-12) {
		t.Fatalf("FractionWithin = %v, want 0.4", got)
	}
	if FractionWithin(nil, 0, 1) != 0 {
		t.Fatal("FractionWithin(nil) != 0")
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.2, 0.9, -1, 2}, 0, 1, 10)
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("Under/Over = %d/%d, want 1/1", h.Under, h.Over)
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[9] != 1 {
		t.Fatalf("Counts = %v", h.Counts)
	}
}

func TestHistogramUpperEdge(t *testing.T) {
	// hi is exclusive; a sample exactly at hi is Over.
	h := NewHistogram([]float64{1.0}, 0, 1, 4)
	if h.Over != 1 {
		t.Fatalf("sample at hi: Over = %d, want 1", h.Over)
	}
}

func TestHistogramRoundingGuard(t *testing.T) {
	// A value infinitesimally below hi must land in the last bin, never
	// out of bounds.
	x := math.Nextafter(1, 0)
	h := NewHistogram([]float64{x}, 0, 1, 7)
	if h.Counts[6] != 1 {
		t.Fatalf("near-hi sample landed in %v", h.Counts)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(nil, 0, 10, 5)
	if h.BinWidth() != 2 {
		t.Fatalf("BinWidth = %v", h.BinWidth())
	}
	if h.BinCenter(0) != 1 || h.BinCenter(4) != 9 {
		t.Fatalf("BinCenter = %v, %v", h.BinCenter(0), h.BinCenter(4))
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				v = append(v, x)
			}
		}
		h := NewHistogram(v, -1, 1, 8)
		return h.Total() == len(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for i := 0; i < n; i++ {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.Abs(a[i]) > 1e100 {
				a[i] = 0
			}
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) || math.Abs(b[i]) > 1e100 {
				b[i] = 0
			}
		}
		s := Add(make([]float64, n), a, b)
		return Norm2(s) <= Norm2(a)+Norm2(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
