// Package num provides the small dense numeric kernels shared by the
// timing engines and the optimization solvers: vector arithmetic, norms,
// summary statistics, and histogram construction.
//
// Everything operates on plain []float64 slices. Functions that combine two
// vectors panic when the lengths differ; length mismatches here are always
// programming errors, never data errors.
package num

import (
	"fmt"
	"math"
	"sort"
)

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	checkLen(len(a), len(b))
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled accumulation avoids overflow for large magnitudes; path delays
	// and slacks are small, but solver residuals can transiently be huge.
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Norm2Sq returns the squared Euclidean norm of v.
func Norm2Sq(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// NormInf returns the maximum absolute entry of v, or 0 for an empty vector.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	checkLen(len(x), len(y))
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every entry of v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Sub writes a-b into dst and returns dst. dst may alias a or b.
func Sub(dst, a, b []float64) []float64 {
	checkLen(len(a), len(b))
	checkLen(len(dst), len(a))
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Add writes a+b into dst and returns dst. dst may alias a or b.
func Add(dst, a, b []float64) []float64 {
	checkLen(len(a), len(b))
	checkLen(len(dst), len(a))
	for i := range a {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// AllFinite reports whether every entry of v is neither NaN nor infinite.
func AllFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Copy returns a freshly allocated copy of v.
func Copy(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Fill sets every entry of v to x.
func Fill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

// RelDiff returns ||a-b|| / ||b||, the relative difference used by the
// convergence tests of Algorithms 1 and 2. When ||b|| is zero it returns
// ||a-b|| so that convergence from the all-zero initial point is still
// detected (a common situation on the first solver iteration).
func RelDiff(a, b []float64) float64 {
	return RelDiffInto(make([]float64, len(a)), a, b)
}

// RelDiffInto is RelDiff with a caller-supplied difference buffer, for
// per-iteration convergence tests that must not allocate.
func RelDiffInto(d, a, b []float64) float64 {
	checkLen(len(a), len(b))
	Sub(d, a, b)
	nb := Norm2(b)
	nd := Norm2(d)
	if nb == 0 {
		return nd
	}
	return nd / nb
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Min returns the smallest entry of v. It panics on an empty vector.
func Min(v []float64) float64 {
	if len(v) == 0 {
		panic("num: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest entry of v. It panics on an empty vector.
func Max(v []float64) float64 {
	if len(v) == 0 {
		panic("num: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of all entries of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of v using linear
// interpolation between order statistics. It panics on an empty vector or
// a q outside [0,1].
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		panic("num: Quantile of empty vector")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("num: Quantile q=%v outside [0,1]", q))
	}
	s := Copy(v)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// FractionWithin returns the fraction of entries of v that lie in the
// closed interval [lo, hi]. It returns 0 for an empty vector.
func FractionWithin(v []float64, lo, hi float64) float64 {
	if len(v) == 0 {
		return 0
	}
	n := 0
	for _, x := range v {
		if x >= lo && x <= hi {
			n++
		}
	}
	return float64(n) / float64(len(v))
}

// Histogram is a fixed-width binning of a sample, used to reproduce the
// sparsity plot of Fig. 3.
type Histogram struct {
	Lo, Hi float64 // range covered by the bins
	Counts []int   // Counts[i] covers [Lo + i*w, Lo + (i+1)*w)
	Under  int     // samples below Lo
	Over   int     // samples at or above Hi
}

// NewHistogram bins v into bins equal-width buckets over [lo, hi).
// Samples outside the range are tallied in Under/Over rather than dropped,
// so Total always equals len(v).
func NewHistogram(v []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("num: NewHistogram needs bins > 0")
	}
	if !(hi > lo) {
		panic("num: NewHistogram needs hi > lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	w := (hi - lo) / float64(bins)
	for _, x := range v {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			i := int((x - lo) / w)
			if i >= bins { // guard against float rounding at the upper edge
				i = bins - 1
			}
			h.Counts[i]++
		}
	}
	return h
}

// Total returns the number of samples tallied, including out-of-range ones.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// BinCenter returns the center coordinate of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := h.BinWidth()
	return h.Lo + (float64(i)+0.5)*w
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("num: length mismatch %d != %d", a, b))
	}
}
