package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"mgba/internal/report"
)

// Server is a live debug endpoint bound to a TCP address, serving
// /debug/vars (expvar-compatible metric snapshot), /debug/pprof/* and
// /debug/summary (a plain-text run summary rendered with report.Table).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve enables obs and starts the debug HTTP server on addr
// (host:port; port 0 picks a free port — read the bound address back
// via Addr). The server runs until Close.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	Enable(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		WriteVars(w)
	})
	mux.HandleFunc("/debug/summary", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, Summary())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the server's bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// CloseGrace bounds how long Close waits for in-flight debug requests
// (a /debug/pprof/profile capture, a slow summary scrape) to finish
// before tearing their connections down.
const CloseGrace = 3 * time.Second

// Close shuts the server down gracefully: the listener stops accepting
// immediately, in-flight requests get up to CloseGrace to complete, and
// only stragglers beyond that are cut off.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), CloseGrace)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// Summary renders every registered metric as a plain-text run summary
// using the standard report table: counters and gauges by name, then
// histograms with count, mean and max-bucket detail.
func Summary() string {
	snap := Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)

	t := report.New("run summary", "metric", "value")
	h := report.New("durations", "histogram", "count", "mean", "buckets")
	for _, name := range names {
		switch v := snap[name].(type) {
		case int64:
			t.AddRow(name, fmt.Sprintf("%d", v))
		case float64:
			t.AddRow(name, report.F(v, 4))
		case HistogramSnapshot:
			mean := "-"
			if v.Count > 0 {
				mean = meanDuration(name, v.Sum/float64(v.Count))
			}
			h.AddRow(name, fmt.Sprintf("%d", v.Count), mean, bucketLine(v))
		}
	}
	var b strings.Builder
	b.WriteString(t.String())
	if len(h.Rows) > 0 {
		b.WriteString("\n")
		b.WriteString(h.String())
	}
	return b.String()
}

// meanDuration formats a histogram mean: _ns-suffixed histograms render
// as human durations, everything else as a plain number.
func meanDuration(name string, mean float64) string {
	if strings.HasSuffix(name, "_ns") {
		return time.Duration(mean).Round(time.Microsecond).String()
	}
	return report.F(mean, 2)
}

// bucketLine compacts a histogram's non-empty buckets into
// "<=bound:count" pairs.
func bucketLine(v HistogramSnapshot) string {
	var parts []string
	for i, c := range v.Buckets {
		if c == 0 {
			continue
		}
		label := "+Inf"
		if i < len(v.Bounds) {
			label = fmt.Sprintf("%g", v.Bounds[i])
		}
		parts = append(parts, fmt.Sprintf("<=%s:%d", label, c))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}
