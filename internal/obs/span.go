package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed region of a run, named by its position in the phase
// hierarchy (e.g. calibrate.cold.solve). Spans nest: Child starts a
// sub-span whose path extends the parent's, and End records the
// elapsed time both in the span.<path>_ns histogram and as a JSONL
// event when a sink is attached.
//
// When obs is disabled, StartSpan and Child return a shared inert span
// and End is a no-op, so span-bracketed code allocates nothing.
type Span struct {
	path  string
	start time.Time
	live  bool
}

// noopSpan is handed out whenever obs is disabled; all its methods
// no-op, so callers never need to nil-check.
var noopSpan = &Span{}

// StartSpan opens a top-level span with the given path.
func StartSpan(path string) *Span {
	if !enabled.Load() {
		return noopSpan
	}
	s := &Span{path: path, start: time.Now(), live: true}
	emit(event{Kind: "span_start", Span: s.path, At: s.start})
	return s
}

// Child opens a sub-span named parent-path.name.
func (s *Span) Child(name string) *Span {
	if !s.live || !enabled.Load() {
		return noopSpan
	}
	return StartSpan(s.path + "." + name)
}

// Path returns the span's dotted hierarchy path ("" for the inert span).
func (s *Span) Path() string { return s.path }

// End closes the span, recording its duration under span.<path>_ns and
// emitting a span_end event. Safe to call on the inert span and
// idempotent per span.
func (s *Span) End() {
	if !s.live {
		return
	}
	s.live = false
	d := time.Since(s.start)
	NewHistogram("span."+s.path+"_ns", DurationBuckets).Observe(float64(d.Nanoseconds()))
	emit(event{Kind: "span_end", Span: s.path, At: time.Now(), NS: d.Nanoseconds()})
}

// event is one line of the structured JSONL stream.
type event struct {
	Kind   string         `json:"kind"`
	Span   string         `json:"span,omitempty"`
	At     time.Time      `json:"at"`
	NS     int64          `json:"ns,omitempty"`
	Fields map[string]any `json:"fields,omitempty"`
}

// sink guards the optional JSONL event writer. sinkSet mirrors whether
// a writer is attached so emit can skip the mutex on the common
// no-sink path.
var (
	sinkMu  sync.Mutex
	sinkW   io.Writer
	sinkSet atomic.Bool
)

// SetSink attaches w as the JSONL event sink (nil detaches). Each
// span/event becomes one JSON object per line. The caller owns w's
// lifecycle; obs serializes writes.
func SetSink(w io.Writer) {
	sinkMu.Lock()
	sinkW = w
	sinkSet.Store(w != nil)
	sinkMu.Unlock()
}

// Event emits an ad-hoc structured event (kind plus alternating
// key/value field pairs) to the JSONL sink. Inert when obs is disabled
// or no sink is attached.
func Event(kind string, kv ...any) {
	if !enabled.Load() || !sinkSet.Load() {
		return
	}
	ev := event{Kind: kind, At: time.Now()}
	if len(kv) > 0 {
		ev.Fields = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			if k, ok := kv[i].(string); ok {
				ev.Fields[k] = kv[i+1]
			}
		}
	}
	emit(ev)
}

func emit(ev event) {
	if !sinkSet.Load() {
		return
	}
	sinkMu.Lock()
	defer sinkMu.Unlock()
	if sinkW == nil {
		return
	}
	blob, err := json.Marshal(&ev)
	if err != nil {
		return
	}
	sinkW.Write(append(blob, '\n'))
}
