package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// withObs runs fn with obs enabled and restores the prior state.
func withObs(t *testing.T, on bool, fn func()) {
	t.Helper()
	prev := Enabled()
	Enable(on)
	defer Enable(prev)
	fn()
}

func TestCounterGatedOnEnable(t *testing.T) {
	c := NewCounter("test.counter.gated")
	Enable(false)
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter moved: %d", got)
	}
	withObs(t, true, func() {
		c.Inc()
		c.Add(5)
	})
	if got := c.Value(); got != 6 {
		t.Fatalf("enabled counter = %d, want 6", got)
	}
}

func TestGaugeAndHistogram(t *testing.T) {
	g := NewGauge("test.gauge")
	h := NewHistogram("test.hist", []float64{10, 100})
	withObs(t, true, func() {
		g.Set(3.5)
		g.SetInt(7)
		h.Observe(5)
		h.Observe(50)
		h.Observe(500)
	})
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
	if got := h.Count(); got != 3 {
		t.Fatalf("hist count = %d, want 3", got)
	}
	if got := h.Sum(); got != 555 {
		t.Fatalf("hist sum = %v, want 555", got)
	}
	for i, want := range []int64{1, 1, 1} {
		if got := h.buckets[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestRegistryIdempotent(t *testing.T) {
	a := NewCounter("test.registry.same")
	b := NewCounter("test.registry.same")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	h1 := NewHistogram("test.registry.hist", []float64{1, 2})
	h2 := NewHistogram("test.registry.hist", []float64{9})
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
	if len(h1.bounds) != 2 {
		t.Fatal("re-registration changed histogram bounds")
	}
}

func TestClockAndObserveSince(t *testing.T) {
	Enable(false)
	if !Clock().IsZero() {
		t.Fatal("disabled Clock should be zero")
	}
	h := NewHistogram("test.clock.hist", DurationBuckets)
	h.ObserveSince(time.Time{})
	if h.Count() != 0 {
		t.Fatal("ObserveSince recorded on zero time")
	}
	withObs(t, true, func() {
		t0 := Clock()
		if t0.IsZero() {
			t.Fatal("enabled Clock returned zero")
		}
		h.ObserveSince(t0)
	})
	if h.Count() != 1 {
		t.Fatalf("hist count = %d, want 1", h.Count())
	}
}

func TestResetKeepsRegistrations(t *testing.T) {
	c := NewCounter("test.reset.counter")
	h := NewHistogram("test.reset.hist", []float64{1})
	withObs(t, true, func() {
		c.Inc()
		h.Observe(2)
	})
	Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not zero values")
	}
	if NewCounter("test.reset.counter") != c {
		t.Fatal("Reset dropped the registration")
	}
}

func TestWriteVarsIsValidSortedJSON(t *testing.T) {
	c := NewCounter("test.vars.counter")
	withObs(t, true, func() { c.Add(42) })
	var buf bytes.Buffer
	if err := WriteVars(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteVars output is not JSON: %v\n%s", err, buf.String())
	}
	if got, ok := decoded["test.vars.counter"].(float64); !ok || got != 42 {
		t.Fatalf("counter missing from vars: %v", decoded["test.vars.counter"])
	}
}

func TestSpanHierarchyAndSink(t *testing.T) {
	Enable(false)
	if s := StartSpan("test.off"); s != noopSpan {
		t.Fatal("disabled StartSpan should return the shared noop span")
	}
	var buf bytes.Buffer
	SetSink(&buf)
	defer SetSink(nil)
	withObs(t, true, func() {
		root := StartSpan("test.root")
		child := root.Child("step")
		if got := child.Path(); got != "test.root.step" {
			t.Fatalf("child path = %q", got)
		}
		child.End()
		child.End() // idempotent
		root.End()
		Event("test_event", "k", 1)
	})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // 2 starts + 2 ends + 1 event
		t.Fatalf("got %d JSONL lines, want 5:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}
	if h := NewHistogram("span.test.root_ns", DurationBuckets); h.Count() != 1 {
		t.Fatalf("span histogram count = %d, want 1", h.Count())
	}
}

func TestServeEndpoints(t *testing.T) {
	prev := Enabled()
	defer Enable(prev)
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !Enabled() {
		t.Fatal("Serve should enable obs")
	}
	NewCounter("test.serve.counter").Inc()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	var decoded map[string]any
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if len(decoded) == 0 {
		t.Fatal("/debug/vars snapshot is empty")
	}
	if !strings.Contains(get("/debug/summary"), "run summary") {
		t.Fatal("/debug/summary missing the summary table")
	}
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Fatal("/debug/pprof/ index missing")
	}
}

// TestCloseCompletesInFlightRequest: Close must drain a request that is
// already being served instead of dropping its connection — the
// historical http.Server.Close cut off in-flight /debug/pprof captures
// and /debug/summary scrapes mid-body.
func TestCloseCompletesInFlightRequest(t *testing.T) {
	prev := Enabled()
	defer Enable(prev)
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A 1-second execution trace holds its request in flight long enough
	// for Close to arrive mid-response.
	type result struct {
		body []byte
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/trace?seconds=1")
		if err != nil {
			done <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil && resp.StatusCode != http.StatusOK {
			err = errServeStatus(resp.Status)
		}
		done <- result{body, err}
	}()
	// Wait until the trace capture is actually running server-side before
	// shutting down.
	time.Sleep(200 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight request failed across Close: %v", res.err)
	}
	if len(res.body) == 0 {
		t.Fatal("in-flight trace returned an empty body")
	}
}

type errServeStatus string

func (e errServeStatus) Error() string { return "unexpected status " + string(e) }

func TestSummaryRendersAllKinds(t *testing.T) {
	c := NewCounter("test.summary.counter")
	g := NewGauge("test.summary.gauge")
	h := NewHistogram("test.summary.hist_ns", DurationBuckets)
	withObs(t, true, func() {
		c.Inc()
		g.Set(1.5)
		h.Observe(2e6)
	})
	s := Summary()
	for _, want := range []string{"test.summary.counter", "test.summary.gauge", "test.summary.hist_ns"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

// The disabled hot path must be allocation-free: a counter increment, a
// gauge store, a histogram observation and a clock read all cost one
// atomic load and a branch.
func TestDisabledHotPathZeroAllocs(t *testing.T) {
	Enable(false)
	c := NewCounter("test.allocs.counter")
	g := NewGauge("test.allocs.gauge")
	h := NewHistogram("test.allocs.hist", DurationBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		h.Observe(2)
		h.ObserveSince(Clock())
	}); n != 0 {
		t.Fatalf("disabled hot path allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		s := StartSpan("test.allocs.span")
		s.End()
	}); n != 0 {
		t.Fatalf("disabled span allocates %v/op, want 0", n)
	}
}

// The enabled counter/gauge/histogram path stays allocation-free too —
// only spans and events may allocate when obs is on.
func TestEnabledMetricsZeroAllocs(t *testing.T) {
	prev := Enabled()
	Enable(true)
	defer Enable(prev)
	c := NewCounter("test.allocs.on.counter")
	g := NewGauge("test.allocs.on.gauge")
	h := NewHistogram("test.allocs.on.hist", DurationBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(2)
		h.Observe(5e6)
	}); n != 0 {
		t.Fatalf("enabled metric path allocates %v/op, want 0", n)
	}
}
