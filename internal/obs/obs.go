// Package obs is the run-wide observability layer: an atomic metrics
// registry (counters, gauges, bounded histograms), hierarchical phase
// spans, a structured JSONL event sink, and an HTTP debug endpoint
// (/debug/vars, /debug/pprof, /debug/summary). Every other layer —
// solver iterations, engine runs, calibration attempts, closure
// transforms, PBA enumerations — reports into it, and the command-line
// tools expose it via -debug-addr.
//
// The layer is built around two contracts.
//
// Inertness: instrumentation only *observes*. No metric, span or event
// ever feeds back into a computation — no RNG draw, no ordering change,
// no extra combine — so a run with obs enabled produces bit-identical
// results to the same run with obs disabled (enforced by
// TestObsOnOffCalibrationBitIdentical and friends).
//
// Cost: the disabled fast path of every hot-path primitive is one atomic
// load and a branch, with zero heap allocations; the enabled counter and
// gauge paths are a single atomic add/store, still allocation-free
// (enforced by testing.AllocsPerRun assertions). Spans and events may
// allocate when enabled — they run at phase granularity, never inside
// solver or propagation loops.
//
// Metric naming scheme: `<package>.<subsystem>.<event>` in lowercase
// snake case (e.g. solver.scg.iters, closure.checkpoints.failed);
// duration histograms end in `_ns` and record nanoseconds; span timings
// are recorded under `span.<dotted.hierarchy>_ns`.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the master switch consulted by every instrumentation
// primitive. Off by default: an uninstrumented binary pays one atomic
// load per hook point and nothing else.
var enabled atomic.Bool

// Enable turns the observability layer on or off process-wide.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether the layer is collecting.
func Enabled() bool { return enabled.Load() }

// Clock returns the current time when obs is enabled and the zero time
// otherwise, so instrumented code can bracket a region with
//
//	t0 := obs.Clock()
//	... work ...
//	hist.ObserveSince(t0)
//
// without paying for time.Now() (or branching on Enabled itself) when
// the layer is off.
func Clock() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds 1 when obs is enabled.
func (c *Counter) Inc() {
	if !enabled.Load() {
		return
	}
	c.v.Add(1)
}

// Add adds n when obs is enabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge holds one float64 value, written atomically.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v when obs is enabled.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value when obs is enabled.
func (g *Gauge) SetInt(v int) { g.Set(float64(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a bounded histogram with fixed bucket upper bounds (the
// last bucket is implicitly +Inf). Buckets, count and sum are updated
// atomically; Observe never allocates.
type Histogram struct {
	name    string
	bounds  []float64 // ascending upper bounds; len(buckets) == len(bounds)+1
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 accumulated via CAS
}

// Observe records v when obs is enabled.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	b := 0
	for b < len(h.bounds) && v > h.bounds[b] {
		b++
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the nanoseconds elapsed since t0, treating the
// zero time (an obs-disabled Clock) as "nothing to record".
func (h *Histogram) ObserveSince(t0 time.Time) {
	if t0.IsZero() {
		return
	}
	h.Observe(float64(time.Since(t0).Nanoseconds()))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// DurationBuckets are the decade nanosecond bounds used for every
// duration histogram: 1µs up to 100s, plus the implicit overflow bucket.
var DurationBuckets = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11}

// registry is the process-global metric store. Metrics are registered
// once (get-or-create by name) and live for the life of the process;
// hot paths hold the returned pointer and never touch the lock again.
type registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

var reg = &registry{
	counters: make(map[string]*Counter),
	gauges:   make(map[string]*Gauge),
	hists:    make(map[string]*Histogram),
}

// NewCounter returns the counter registered under name, creating it on
// first use. Safe for concurrent use; idempotent per name.
func NewCounter(name string) *Counter {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if c, ok := reg.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	reg.counters[name] = c
	return c
}

// NewGauge returns the gauge registered under name, creating it on
// first use.
func NewGauge(name string) *Gauge {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if g, ok := reg.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	reg.gauges[name] = g
	return g
}

// NewHistogram returns the histogram registered under name with the
// given ascending bucket upper bounds, creating it on first use (an
// existing histogram keeps its original bounds).
func NewHistogram(name string, bounds []float64) *Histogram {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if h, ok := reg.hists[name]; ok {
		return h
	}
	h := &Histogram{
		name:    name,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	reg.hists[name] = h
	return h
}

// Reset zeroes every registered metric's value (registrations survive —
// pointers held by instrumented code stay valid). Tests and long-lived
// servers use it to delimit runs.
func Reset() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, c := range reg.counters {
		c.v.Store(0)
	}
	for _, g := range reg.gauges {
		g.bits.Store(0)
	}
	for _, h := range reg.hists {
		h.count.Store(0)
		h.sumBits.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}

// Snapshot returns every registered metric's current value keyed by
// name: counters as int64, gauges as float64, histograms as
// HistogramSnapshot. The map is freshly built; mutating it is safe.
func Snapshot() map[string]any {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make(map[string]any, len(reg.counters)+len(reg.gauges)+len(reg.hists))
	for name, c := range reg.counters {
		out[name] = c.Value()
	}
	for name, g := range reg.gauges {
		out[name] = g.Value()
	}
	for name, h := range reg.hists {
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
		}
		hs.Buckets = make([]int64, len(h.buckets))
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		out[name] = hs
	}
	return out
}

// WriteVars writes the snapshot as one JSON object in expvar's wire
// format: `{"name": value, ...}` with names sorted, so the output of
// /debug/vars diffs cleanly between scrapes.
func WriteVars(w io.Writer) error {
	snap := Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := fmt.Fprint(w, "{"); err != nil {
		return err
	}
	for i, name := range names {
		sep := ",\n"
		if i == 0 {
			sep = "\n"
		}
		blob, err := json.Marshal(snap[name])
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%q: %s", sep, name, blob); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "\n}\n")
	return err
}
