package fixtures

import (
	"fmt"
	"math"

	"mgba/internal/aocv"
	"mgba/internal/cells"
	"mgba/internal/engine"
	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/sta"
)

// BufferCase builds a design where buffer insertion is the winning closure
// move. The synthetic delay model charges a net's full span-based wire
// delay to every sink, so a midpoint buffer never shortens the wire itself;
// an inserted buffer only wins by unloading a *weak* driver. The motif
// therefore pins the flow into that corner:
//
//	FF0 -> m0 -> m1 -> ... -> m(k-1) -> FFP0       (deep chain, all X8)
//	              m2 -+-> g(Inv X1) ~~long~~> FFP1  (weak driver, long net)
//
// Both endpoints violate, the chain path FFP0 worse than FFP1. Every cell
// except g is at maximum drive, so FFP0 is beyond repair and goes to the
// skip set; on FFP1's path the only upsizable gate is g, but growing g's
// input pin loads m2 and degrades FFP0 — the global WNS — so the upsize is
// rejected by the WNS guard and the flow falls through to buffer insertion,
// which unloads g without touching the chain and is accepted.
func BufferCase() (*netlist.Design, error) {
	const (
		chainLen = 48  // deep-path gate count; keeps FFP0's need above FFP1's
		longWire = 300 // um from g to FFP1
	)
	lib := cells.Default(28)
	d := netlist.New("bufcase", 28, lib, aocv.Default(28), 1000)
	clk := d.AddNet()
	if err := d.SetClockRoot(clk); err != nil {
		return nil, err
	}
	ffc, err := lib.Pick(cells.DFF, 8)
	if err != nil {
		return nil, err
	}
	invMax, err := lib.Pick(cells.Inv, 8)
	if err != nil {
		return nil, err
	}
	invMin, err := lib.Pick(cells.Inv, 1)
	if err != nil {
		return nil, err
	}

	q0 := d.AddNet()
	dp0 := d.AddNet() // FFP0.Q feeds back to FF0.D so every input is driven
	if _, err := d.AddFF(ffc, 0, 0, dp0, q0, clk); err != nil {
		return nil, err
	}
	cur := q0
	var tap int // m2's output net, shared with g
	for i := 0; i < chainLen; i++ {
		out := d.AddNet()
		if _, err := d.AddGate(invMax, 0, 0, []int{cur}, out); err != nil {
			return nil, err
		}
		if i == 2 {
			tap = out
		}
		cur = out
	}
	p0, err := d.AddFF(ffc, 0, 0, cur, dp0, clk)
	if err != nil {
		return nil, err
	}

	long := d.AddNet()
	if _, err := d.AddGate(invMin, 0, 0, []int{tap}, long); err != nil {
		return nil, err
	}
	qp1 := d.AddNet() // dangling Q is fine; only inputs must be driven
	p1, err := d.AddFF(ffc, longWire, 0, long, qp1, clk)
	if err != nil {
		return nil, err
	}

	d.AutoWire()
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("fixtures: bufcase invalid: %w", err)
	}

	// Tune the period off the two endpoint needs: FFP1 violates by ~100 ps
	// (recoverable by unloading g), FFP0 by strictly more, pinning the WNS.
	g, err := graph.Build(d)
	if err != nil {
		return nil, err
	}
	r := engine.Analyze(g, sta.DefaultConfig())
	defer r.Release()
	need := func(id int) float64 {
		fi := g.FFIndex(id)
		return r.DataAtD[fi] + d.Instances[id].Cell.Setup - r.ClockEarly[fi]
	}
	n0, n1 := need(p0.ID), need(p1.ID)
	if n0 < n1+20 {
		return nil, fmt.Errorf("fixtures: bufcase chain too shallow: needs %v vs %v", n0, n1)
	}
	d.ClockPeriod = n1 - 100
	return d, nil
}

// RetimePipeline builds a design whose violations only register retiming
// can close: an imbalanced two-stage pipeline, every cell already at
// maximum drive (no upsize headroom) and every wire short (no buffer
// candidate). Each lane is
//
//	A -> inv * stageDepth -> B -> inv -> C      (C.Q feeds back to A.D)
//
// with the deep first stage violating by roughly 1.5 inverter delays and
// the shallow second stage enjoying several delays of slack. Sliding the
// last stage-1 inverter across B (a backward retime at the capture
// register) moves one inverter delay from the violating stage to the slack
// one; two slides close the lane without breaking stage 2.
func RetimePipeline(lanes int) (*netlist.Design, error) {
	const stageDepth = 7
	if lanes < 1 {
		return nil, fmt.Errorf("fixtures: retime pipeline needs at least one lane")
	}
	lib := cells.Default(28)
	d := netlist.New("retimetoy", 28, lib, aocv.Default(28), 1000)
	clk := d.AddNet()
	if err := d.SetClockRoot(clk); err != nil {
		return nil, err
	}
	ffc, err := lib.Pick(cells.DFF, 8)
	if err != nil {
		return nil, err
	}
	inv, err := lib.Pick(cells.Inv, 8)
	if err != nil {
		return nil, err
	}

	var bIDs []int
	for lane := 0; lane < lanes; lane++ {
		y := float64(lane) * 20
		qa, qb, s2, qc := d.AddNet(), d.AddNet(), d.AddNet(), d.AddNet()
		// A's D pin reads C's Q directly: the zero-gate feedback transfer
		// has ample slack and keeps every input driven.
		if _, err := d.AddFF(ffc, 0, y, qc, qa, clk); err != nil {
			return nil, err
		}
		cur := qa
		for i := 0; i < stageDepth; i++ {
			out := d.AddNet()
			if _, err := d.AddGate(inv, float64(i+1), y, []int{cur}, out); err != nil {
				return nil, err
			}
			cur = out
		}
		b, err := d.AddFF(ffc, stageDepth+1, y, cur, qb, clk)
		if err != nil {
			return nil, err
		}
		bIDs = append(bIDs, b.ID)
		if _, err := d.AddGate(inv, stageDepth+2, y, []int{qb}, s2); err != nil {
			return nil, err
		}
		if _, err := d.AddFF(ffc, stageDepth+3, y, s2, qc, clk); err != nil {
			return nil, err
		}
	}

	d.AutoWire()
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("fixtures: retime pipeline invalid: %w", err)
	}

	// Period: the deep stage misses by ~1.5 inverter delays, so one retime
	// is not enough and two close the lane — exercising repeated slides and
	// the per-register lag cap.
	g, err := graph.Build(d)
	if err != nil {
		return nil, err
	}
	r := engine.Analyze(g, sta.DefaultConfig())
	defer r.Release()
	needB := math.Inf(-1)
	invDelay := 0.0
	for _, id := range bIDs {
		fi := g.FFIndex(id)
		if n := r.DataAtD[fi] + d.Instances[id].Cell.Setup - r.ClockEarly[fi]; n > needB {
			needB = n
		}
		drv := d.Nets[d.Instances[id].Inputs[0]].Driver
		if cd := r.CellDelay[drv]; cd > invDelay {
			invDelay = cd
		}
	}
	d.ClockPeriod = needB - 1.5*invDelay
	return d, nil
}
