// Package fixtures builds small hand-crafted designs used by unit tests
// and by the worked examples — most importantly the circuit of the paper's
// Fig. 1/Fig. 2, engineered so that GBA assigns the six main-path gates the
// exact worst cell depths behind Eq. (3): 5, 5, 5, 3, 4, 4.
package fixtures

import (
	"fmt"

	"mgba/internal/aocv"
	"mgba/internal/cells"
	"mgba/internal/netlist"
	"mgba/internal/sta"
)

// Fig2Info names the interesting instances of the Fig. 2 fixture.
type Fig2Info struct {
	FF1, FF2, FF3, FF4 int    // instance IDs of the four flip-flops
	Gates              [6]int // g1..g6, the FF1 -> FF4 main path, in order
	K, H               int    // side-branch gate (to FF3) and join gate (from FF2)
}

// Fig2 builds the worked example of the paper's §2.2:
//
//	FF1 -> g1 -> g2 -> g3 -> g4 -> g5 -> g6 -> FF4.D   (6-gate main path)
//	                    g4 -> k  -> FF3.D               (5-gate path via g1..g4,k)
//	FF2 -> h  -> g4                                     (short join)
//
// With the paper's Table 1 as the late derate table, every gate at exactly
// 100 ps, an ideal clock and zero wire delay, GBA prices the main path at
// 740 ps (Eq. 3) while PBA prices it at 690 ps (Eq. 2).
//
// The GBA worst depths along g1..g6 are 5,5,5,3,4,4 — the derates
// 1.20, 1.20, 1.20, 1.30, 1.25, 1.25 of Eq. (3).
func Fig2() (*netlist.Design, *Fig2Info, sta.Config, error) {
	lib := cells.Default(28)
	derates := &aocv.Set{Late: aocv.PaperTable1(), Early: aocv.Default(28).Early}
	d := netlist.New("fig2", 28, lib, derates, 1000)

	clk := d.AddNet()
	if err := d.SetClockRoot(clk); err != nil {
		return nil, nil, sta.Config{}, err
	}
	ffc, err := lib.Pick(cells.DFF, 1)
	if err != nil {
		return nil, nil, sta.Config{}, err
	}
	inv, err := lib.Pick(cells.Inv, 1)
	if err != nil {
		return nil, nil, sta.Config{}, err
	}
	nand, err := lib.Pick(cells.Nand2, 1)
	if err != nil {
		return nil, nil, sta.Config{}, err
	}

	// Nets. The FF D pins of the launch registers are fed back from the
	// capture registers' Q pins so every net is driven.
	q1, q2 := d.AddNet(), d.AddNet()
	n1, n2, n3, n4, n5, n6 := d.AddNet(), d.AddNet(), d.AddNet(), d.AddNet(), d.AddNet(), d.AddNet()
	nk, nh := d.AddNet(), d.AddNet()
	q3, q4 := d.AddNet(), d.AddNet()

	info := &Fig2Info{}
	// Launch registers at the left edge, captures 0.5 um to the right so
	// every endpoint pair sits on the 500 nm row of Table 1.
	ff1, err := d.AddFF(ffc, 0, 0, q4, q1, clk)
	if err != nil {
		return nil, nil, sta.Config{}, err
	}
	ff2, err := d.AddFF(ffc, 0, 0, q3, q2, clk)
	if err != nil {
		return nil, nil, sta.Config{}, err
	}
	info.FF1, info.FF2 = ff1.ID, ff2.ID

	add := func(cell *cells.Cell, ins []int, out int) int {
		in, err2 := d.AddGate(cell, 0.25, 0, ins, out)
		if err2 != nil {
			err = err2
			return -1
		}
		return in.ID
	}
	info.Gates[0] = add(inv, []int{q1}, n1)
	info.Gates[1] = add(inv, []int{n1}, n2)
	info.Gates[2] = add(inv, []int{n2}, n3)
	info.Gates[3] = add(nand, []int{n3, nh}, n4)
	info.Gates[4] = add(inv, []int{n4}, n5)
	info.Gates[5] = add(inv, []int{n5}, n6)
	info.K = add(inv, []int{n4}, nk)
	info.H = add(inv, []int{q2}, nh)
	if err != nil {
		return nil, nil, sta.Config{}, err
	}

	ff3, err := d.AddFF(ffc, 0.5, 0, nk, q3, clk)
	if err != nil {
		return nil, nil, sta.Config{}, err
	}
	ff4, err := d.AddFF(ffc, 0.5, 0, n6, q4, clk)
	if err != nil {
		return nil, nil, sta.Config{}, err
	}
	info.FF3, info.FF4 = ff3.ID, ff4.ID

	if err := d.Validate(); err != nil {
		return nil, nil, sta.Config{}, fmt.Errorf("fixtures: fig2 invalid: %w", err)
	}

	// Every delay element is exactly 100 ps except the FF arcs (0 ps), the
	// clock is ideal, and wires carry no delay (the default).
	override := make(map[int]float64, len(d.Instances))
	for _, in := range d.Instances {
		if in.IsFF() {
			override[in.ID] = 0
		} else {
			override[in.ID] = 100
		}
	}
	cfg := sta.Config{
		DerateData:    true,
		IdealClock:    true,
		DelayOverride: override,
	}
	return d, info, cfg, nil
}

// Chain builds a linear register-to-register pipeline with n inverters
// between two flip-flops, placed along the x axis with the given pitch in
// micrometres. It returns the design and the inverter instance IDs.
func Chain(n int, pitch float64, node int, period float64) (*netlist.Design, []int, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("fixtures: chain needs n >= 1")
	}
	lib := cells.Default(node)
	d := netlist.New(fmt.Sprintf("chain%d", n), node, lib, aocv.Default(node), period)
	clk := d.AddNet()
	if err := d.SetClockRoot(clk); err != nil {
		return nil, nil, err
	}
	ffc, err := lib.Pick(cells.DFF, 1)
	if err != nil {
		return nil, nil, err
	}
	inv, err := lib.Pick(cells.Inv, 1)
	if err != nil {
		return nil, nil, err
	}
	q := d.AddNet()
	last := d.AddNet()
	if _, err := d.AddFF(ffc, 0, 0, last, q, clk); err != nil {
		return nil, nil, err
	}
	cur := q
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out := d.AddNet()
		g, err := d.AddGate(inv, float64(i+1)*pitch, 0, []int{cur}, out)
		if err != nil {
			return nil, nil, err
		}
		ids = append(ids, g.ID)
		cur = out
	}
	// Capture FF; its Q feeds back to the launch FF's D so all nets drive.
	if _, err := d.AddFF(ffc, float64(n+1)*pitch, 0, cur, last, clk); err != nil {
		return nil, nil, err
	}
	d.AutoWire()
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	return d, ids, nil
}
