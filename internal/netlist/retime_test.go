package netlist_test

import (
	"fmt"
	"testing"

	"mgba/internal/fixtures"
	"mgba/internal/graph"
	"mgba/internal/netlist"
)

// fingerprint captures every connectivity and parasitic field a retime can
// touch, so an exact string compare proves a slide pair round-trips.
func fingerprint(d *netlist.Design) string {
	s := fmt.Sprintf("period=%v root=%d\n", d.ClockPeriod, d.ClockRoot)
	for _, in := range d.Instances {
		s += fmt.Sprintf("i%d %s in=%v out=%d clk=%d dead=%v xy=%v,%v\n",
			in.ID, in.Cell.Name, in.Inputs, in.Output, in.Clock, in.Dead, in.X, in.Y)
	}
	for _, n := range d.Nets {
		s += fmt.Sprintf("n%d drv=%d sinks=%v cap=%v wd=%v\n",
			n.ID, n.Driver, n.Sinks, n.WireCap, n.WireDelay)
	}
	s += fmt.Sprintf("ffs=%v\n", d.FFs)
	return s
}

// laneParts locates, in the single-lane retime pipeline, the capture FF of
// the deep stage (B), the inverter driving its D pin, and the stage-2
// inverter consuming its Q pin.
func laneParts(t *testing.T, d *netlist.Design) (b, drv, cons *netlist.Instance) {
	t.Helper()
	for _, id := range d.FFs {
		ff := d.Instances[id]
		qSinks := d.Nets[ff.Output].Sinks
		if len(qSinks) != 1 {
			continue
		}
		sink := d.Instances[qSinks[0]]
		if sink.IsFF() {
			continue // A: its Q feeds the first chain inverter... also matches; disambiguate below
		}
		dDrv := d.Nets[ff.Inputs[0]].Driver
		if dDrv < 0 || d.Instances[dDrv].IsFF() {
			continue
		}
		return ff, d.Instances[dDrv], sink
	}
	t.Fatal("no retimable capture FF found in pipeline")
	return nil, nil, nil
}

func TestRetimeBackwardForwardRoundTrip(t *testing.T) {
	d, err := fixtures.RetimePipeline(1)
	if err != nil {
		t.Fatal(err)
	}
	b, drv, _ := laneParts(t, d)
	before := fingerprint(d)

	if err := d.RetimeBackward(b, drv); err != nil {
		t.Fatalf("backward slide: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid after backward slide: %v", err)
	}
	if _, err := graph.Build(d); err != nil {
		t.Fatalf("graph rejects retimed design: %v", err)
	}
	mid := fingerprint(d)
	if mid == before {
		t.Fatal("backward slide changed nothing")
	}
	// After the slide the gate consumes B's Q, so the same pair slides back.
	if err := d.RetimeForward(b, drv); err != nil {
		t.Fatalf("forward slide: %v", err)
	}
	if after := fingerprint(d); after != before {
		t.Errorf("round trip not bit-identical:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

func TestRetimeForwardBackwardRoundTrip(t *testing.T) {
	d, err := fixtures.RetimePipeline(1)
	if err != nil {
		t.Fatal(err)
	}
	b, _, cons := laneParts(t, d)
	before := fingerprint(d)

	if err := d.RetimeForward(b, cons); err != nil {
		t.Fatalf("forward slide: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid after forward slide: %v", err)
	}
	if err := d.RetimeBackward(b, cons); err != nil {
		t.Fatalf("backward slide: %v", err)
	}
	if after := fingerprint(d); after != before {
		t.Errorf("round trip not bit-identical:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

func TestRetimeLegality(t *testing.T) {
	d, err := fixtures.RetimePipeline(1)
	if err != nil {
		t.Fatal(err)
	}
	b, drv, cons := laneParts(t, d)

	// The stage-2 inverter does not drive B's D pin.
	if err := d.RetimeBackward(b, cons); err == nil {
		t.Error("backward slide across a non-fanin gate accepted")
	}
	// The D-pin driver is not the consumer of B's Q pin.
	if err := d.RetimeForward(b, drv); err == nil {
		t.Error("forward slide across a non-fanout gate accepted")
	}
	// A combinational gate is not a register.
	if err := d.RetimeBackward(drv, cons); err == nil {
		t.Error("retime at a non-FF accepted")
	}
	// Registers cannot slide across other registers.
	var a *netlist.Instance
	for _, id := range d.FFs {
		if ff := d.Instances[id]; ff != b {
			a = ff
			break
		}
	}
	if err := d.RetimeBackward(b, a); err == nil {
		t.Error("retime across a sequential cell accepted")
	}
	// A chain inverter with its own fanout gate does not exclusively feed B.
	first := d.Instances[d.Nets[d.Instances[d.FFs[0]].Output].Sinks[0]]
	if !first.IsFF() {
		if err := d.RetimeBackward(b, first); err == nil {
			t.Error("backward slide across a non-adjacent gate accepted")
		}
	}
	// Legality failures must leave the design untouched.
	if err := d.Validate(); err != nil {
		t.Fatalf("rejected slides corrupted the design: %v", err)
	}
}
