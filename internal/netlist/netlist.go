// Package netlist models a placed, gate-level synchronous design: library
// cell instances, the nets connecting them, a clock tree of clock buffers,
// and the clock constraint. It is the substrate shared by the GBA and PBA
// timing engines and mutated by the timing-closure transforms (gate
// resizing, buffer insertion).
//
// The design is deliberately register-to-register: every timing path starts
// at a flip-flop CK->Q arc and ends at a flip-flop D pin, which is the
// setting of the paper's Fig. 1. Wires carry a lumped capacitance and delay
// derived from placement distance.
package netlist

import (
	"fmt"
	"math"

	"mgba/internal/aocv"
	"mgba/internal/cells"
)

// Per-micrometre wire parasitics used by AutoWire. A design can override
// any net's parasitics explicitly afterwards.
const (
	WireCapPerUm   = 0.18 // fF/um
	WireDelayPerUm = 0.9  // ps/um (lumped)
)

// Instance is one placed cell instance. For a DFF, Inputs holds the single
// D-pin net and Clock holds the CK-pin net; combinational cells leave
// Clock == -1.
type Instance struct {
	ID   int
	Name string
	Cell *cells.Cell
	X, Y float64 // placement, um

	Inputs []int // input net IDs, in pin order
	Output int   // output net ID (-1 if none, e.g. a sink-only marker)
	Clock  int   // CK net ID for DFFs, -1 otherwise

	// Dead marks an instance removed from the design (an unwound buffer
	// insertion). Dead instances keep their ID slot but are skipped by
	// validation, timing and QoR accounting.
	Dead bool
}

// IsFF reports whether the instance is a flip-flop.
func (in *Instance) IsFF() bool { return in.Cell.Kind.IsSequential() }

// Net is one signal net: a single driver instance and its fanout.
type Net struct {
	ID     int
	Driver int   // driving instance ID, or -1 for the clock source
	Sinks  []int // sink instance IDs (an instance appears once per pin it connects)

	WireCap   float64 // fF of wire capacitance seen by the driver
	WireDelay float64 // ps added from driver output to every sink
}

// Design is a complete placed netlist with its timing context.
type Design struct {
	Name        string
	Node        int // technology node, nm
	Lib         *cells.Library
	Derates     *aocv.Set
	ClockPeriod float64 // ps

	Instances []*Instance
	Nets      []*Net
	FFs       []int // instance IDs of all flip-flops, in creation order
	ClockRoot int   // net ID of the clock source net (-1 until set)
}

// New returns an empty design bound to a library and derate set.
func New(name string, node int, lib *cells.Library, derates *aocv.Set, clockPeriod float64) *Design {
	return &Design{
		Name:        name,
		Node:        node,
		Lib:         lib,
		Derates:     derates,
		ClockPeriod: clockPeriod,
		ClockRoot:   -1,
	}
}

// AddNet creates a new undriven net and returns its ID.
func (d *Design) AddNet() int {
	n := &Net{ID: len(d.Nets), Driver: -1}
	d.Nets = append(d.Nets, n)
	return n.ID
}

// AddGate places a combinational instance of cell at (x, y) reading the
// given input nets and driving output net out. It wires the connectivity on
// both sides and returns the instance.
func (d *Design) AddGate(cell *cells.Cell, x, y float64, inputs []int, out int) (*Instance, error) {
	if cell.Kind.IsSequential() {
		return nil, fmt.Errorf("netlist: AddGate with sequential cell %s; use AddFF", cell.Name)
	}
	if got, want := len(inputs), cell.Kind.Inputs(); got != want {
		return nil, fmt.Errorf("netlist: %s needs %d inputs, got %d", cell.Name, want, got)
	}
	return d.addInst(cell, x, y, inputs, out, -1)
}

// AddFF places a flip-flop reading D from dNet, clocked by clkNet, driving
// Q onto qNet.
func (d *Design) AddFF(cell *cells.Cell, x, y float64, dNet, qNet, clkNet int) (*Instance, error) {
	if !cell.Kind.IsSequential() {
		return nil, fmt.Errorf("netlist: AddFF with combinational cell %s", cell.Name)
	}
	in, err := d.addInst(cell, x, y, []int{dNet}, qNet, clkNet)
	if err != nil {
		return nil, err
	}
	d.FFs = append(d.FFs, in.ID)
	return in, nil
}

func (d *Design) addInst(cell *cells.Cell, x, y float64, inputs []int, out, clk int) (*Instance, error) {
	for _, n := range inputs {
		if n < 0 || n >= len(d.Nets) {
			return nil, fmt.Errorf("netlist: input net %d out of range", n)
		}
	}
	if out < 0 || out >= len(d.Nets) {
		return nil, fmt.Errorf("netlist: output net %d out of range", out)
	}
	if d.Nets[out].Driver != -1 {
		return nil, fmt.Errorf("netlist: net %d already driven by instance %d", out, d.Nets[out].Driver)
	}
	if clk >= len(d.Nets) {
		return nil, fmt.Errorf("netlist: clock net %d out of range", clk)
	}
	in := &Instance{
		ID:     len(d.Instances),
		Name:   fmt.Sprintf("U%d", len(d.Instances)),
		Cell:   cell,
		X:      x,
		Y:      y,
		Inputs: append([]int(nil), inputs...),
		Output: out,
		Clock:  clk,
	}
	d.Instances = append(d.Instances, in)
	d.Nets[out].Driver = in.ID
	for _, n := range inputs {
		d.Nets[n].Sinks = append(d.Nets[n].Sinks, in.ID)
	}
	if clk >= 0 {
		d.Nets[clk].Sinks = append(d.Nets[clk].Sinks, in.ID)
	}
	return in, nil
}

// SetClockRoot declares net as the clock source. The net must be undriven
// (the source is ideal) and is typically consumed by the clock-tree root
// buffer and/or FF CK pins.
func (d *Design) SetClockRoot(net int) error {
	if net < 0 || net >= len(d.Nets) {
		return fmt.Errorf("netlist: clock root net %d out of range", net)
	}
	if d.Nets[net].Driver != -1 {
		return fmt.Errorf("netlist: clock root net %d must be source-driven", net)
	}
	d.ClockRoot = net
	return nil
}

// Distance returns the Euclidean placement distance between two instances
// in micrometres.
func Distance(a, b *Instance) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Hypot(dx, dy)
}

// netSpan returns the largest driver-to-sink distance of a net, or 0 for
// degenerate nets.
func (d *Design) netSpan(n *Net) float64 {
	if n.Driver < 0 || len(n.Sinks) == 0 {
		return 0
	}
	drv := d.Instances[n.Driver]
	var span float64
	for _, s := range n.Sinks {
		if dist := Distance(drv, d.Instances[s]); dist > span {
			span = dist
		}
	}
	return span
}

// AutoWire derives every net's parasitics from placement: the wire length
// is approximated by the largest driver-to-sink distance.
func (d *Design) AutoWire() {
	for _, n := range d.Nets {
		span := d.netSpan(n)
		n.WireCap = WireCapPerUm * span
		n.WireDelay = WireDelayPerUm * span
	}
}

// LoadCap returns the total capacitance the driver of net n sees: wire cap
// plus every sink pin cap (CK pins use the clock cap).
func (d *Design) LoadCap(n *Net) float64 {
	c := n.WireCap
	for _, s := range n.Sinks {
		sink := d.Instances[s]
		if sink.Clock == n.ID && sink.IsFF() {
			c += sink.Cell.ClockCap
		} else {
			c += sink.Cell.InputCap
		}
	}
	return c
}

// Resize swaps an instance to a different variant of the same kind (the
// gate-sizing transform of the closure flow).
func (d *Design) Resize(inst *Instance, to *cells.Cell) error {
	if to.Kind != inst.Cell.Kind {
		return fmt.Errorf("netlist: resize %s across kinds (%v -> %v)", inst.Name, inst.Cell.Kind, to.Kind)
	}
	inst.Cell = to
	return nil
}

// InsertBuffer splits net at a buffer: the buffer becomes a sink of net and
// drives a fresh net that takes over all of net's previous sinks. The
// buffer is placed at the fanout centroid. It returns the new buffer
// instance. Wire parasitics of both nets are recomputed from placement.
//
// This is the buffer-insertion transform of the closure flow; it reduces
// the load (and therefore delay and output slew) of the original driver.
func (d *Design) InsertBuffer(net int, buf *cells.Cell, name string) (*Instance, error) {
	if buf.Kind != cells.Buf && buf.Kind != cells.ClkBuf {
		return nil, fmt.Errorf("netlist: InsertBuffer with non-buffer cell %s", buf.Name)
	}
	if net < 0 || net >= len(d.Nets) {
		return nil, fmt.Errorf("netlist: net %d out of range", net)
	}
	n := d.Nets[net]
	if len(n.Sinks) == 0 {
		return nil, fmt.Errorf("netlist: net %d has no sinks to buffer", net)
	}
	// Place midway between the driver and the fanout centroid, splitting
	// the wire (and its delay) roughly in half.
	var cx, cy float64
	for _, s := range n.Sinks {
		cx += d.Instances[s].X
		cy += d.Instances[s].Y
	}
	cx /= float64(len(n.Sinks))
	cy /= float64(len(n.Sinks))
	if n.Driver >= 0 {
		drv := d.Instances[n.Driver]
		cx = (cx + drv.X) / 2
		cy = (cy + drv.Y) / 2
	}

	newNet := d.AddNet()
	nn := d.Nets[newNet]
	// Move the sinks: rewrite each sink pin reference from net to newNet.
	nn.Sinks = n.Sinks
	n.Sinks = nil
	for _, s := range nn.Sinks {
		sink := d.Instances[s]
		for i, inNet := range sink.Inputs {
			if inNet == net {
				sink.Inputs[i] = newNet
			}
		}
		if sink.Clock == net {
			sink.Clock = newNet
		}
	}
	in, err := d.addInst(buf, cx, cy, []int{net}, newNet, -1)
	if err != nil {
		return nil, err
	}
	if name != "" {
		in.Name = name
	}
	// Refresh parasitics of the split nets.
	n.WireCap = WireCapPerUm * d.netSpan(n)
	n.WireDelay = WireDelayPerUm * d.netSpan(n)
	nn.WireCap = WireCapPerUm * d.netSpan(nn)
	nn.WireDelay = WireDelayPerUm * d.netSpan(nn)
	return in, nil
}

// RemoveBuffer unwinds an InsertBuffer: the buffer's output-net sinks are
// rewired back onto its input net and the buffer becomes a dead instance.
// Only single-input buffer cells inserted by InsertBuffer can be removed.
func (d *Design) RemoveBuffer(b *Instance) error {
	if b.Dead {
		return fmt.Errorf("netlist: %s already removed", b.Name)
	}
	if b.Cell.Kind != cells.Buf && b.Cell.Kind != cells.ClkBuf {
		return fmt.Errorf("netlist: %s is not a buffer", b.Name)
	}
	src := b.Inputs[0]
	out := b.Output
	nn := d.Nets[out]
	n := d.Nets[src]
	// Detach the buffer from its input net.
	for k, s := range n.Sinks {
		if s == b.ID {
			n.Sinks = append(n.Sinks[:k], n.Sinks[k+1:]...)
			break
		}
	}
	// Rewire the downstream sinks back.
	for _, s := range nn.Sinks {
		sink := d.Instances[s]
		for i, inNet := range sink.Inputs {
			if inNet == out {
				sink.Inputs[i] = src
			}
		}
		if sink.Clock == out {
			sink.Clock = src
		}
		n.Sinks = append(n.Sinks, s)
	}
	nn.Sinks = nil
	nn.Driver = -1
	nn.WireCap, nn.WireDelay = 0, 0
	b.Dead = true
	b.Output = -1
	b.Inputs = nil
	// Refresh the rejoined net's parasitics.
	n.WireCap = WireCapPerUm * d.netSpan(n)
	n.WireDelay = WireDelayPerUm * d.netSpan(n)
	return nil
}

// Clone returns a deep copy of the design's mutable state — instances,
// nets, the FF list — sharing the immutable library, derate tables and
// cell definitions (a resize swaps a cell pointer, never mutates one).
// Edits to either design are invisible to the other; the cross-stage
// view pair uses this to keep a perturbed "routed" twin alongside the
// pre-route design.
func (d *Design) Clone() *Design {
	nd := &Design{
		Name:        d.Name,
		Node:        d.Node,
		Lib:         d.Lib,
		Derates:     d.Derates,
		ClockPeriod: d.ClockPeriod,
		ClockRoot:   d.ClockRoot,
	}
	nd.Instances = make([]*Instance, len(d.Instances))
	for i, in := range d.Instances {
		ci := *in
		ci.Inputs = append([]int(nil), in.Inputs...)
		nd.Instances[i] = &ci
	}
	nd.Nets = make([]*Net, len(d.Nets))
	for i, n := range d.Nets {
		cn := *n
		cn.Sinks = append([]int(nil), n.Sinks...)
		nd.Nets[i] = &cn
	}
	nd.FFs = append([]int(nil), d.FFs...)
	return nd
}

// Area returns the total placed cell area of the design.
func (d *Design) Area() float64 {
	var a float64
	for _, in := range d.Instances {
		if in.Dead {
			continue
		}
		a += in.Cell.Area
	}
	return a
}

// Leakage returns the total leakage power of the design.
func (d *Design) Leakage() float64 {
	var l float64
	for _, in := range d.Instances {
		if in.Dead {
			continue
		}
		l += in.Cell.Leakage
	}
	return l
}

// BufferCount returns the number of data buffers (cells of kind Buf);
// clock-tree buffers are excluded, matching the paper's "buffer inserted"
// QoR column which counts optimization-inserted buffers.
func (d *Design) BufferCount() int {
	n := 0
	for _, in := range d.Instances {
		if !in.Dead && in.Cell.Kind == cells.Buf {
			n++
		}
	}
	return n
}

// Validate checks structural sanity: pin arity, driver presence, clock
// reachability of every FF, and acyclicity of the combinational graph.
func (d *Design) Validate() error {
	if d.ClockRoot < 0 {
		return fmt.Errorf("netlist: no clock root set")
	}
	if d.ClockPeriod <= 0 {
		return fmt.Errorf("netlist: non-positive clock period %v", d.ClockPeriod)
	}
	if len(d.FFs) == 0 {
		return fmt.Errorf("netlist: no flip-flops")
	}
	for _, in := range d.Instances {
		if in.Dead {
			continue
		}
		if got, want := len(in.Inputs), in.Cell.Kind.Inputs(); got != want {
			return fmt.Errorf("netlist: %s has %d inputs, cell %s wants %d", in.Name, got, in.Cell.Name, want)
		}
		if in.IsFF() && in.Clock < 0 {
			return fmt.Errorf("netlist: FF %s has no clock", in.Name)
		}
		for _, nid := range in.Inputs {
			if d.Nets[nid].Driver < 0 && nid != d.ClockRoot {
				return fmt.Errorf("netlist: %s input net %d undriven", in.Name, nid)
			}
		}
	}
	// Every FF clock pin must trace back to the clock root through buffers.
	for _, ff := range d.FFs {
		if err := d.traceClock(d.Instances[ff]); err != nil {
			return err
		}
	}
	return d.checkAcyclic()
}

func (d *Design) traceClock(ff *Instance) error {
	net := ff.Clock
	for steps := 0; steps < len(d.Instances)+1; steps++ {
		if net == d.ClockRoot {
			return nil
		}
		drv := d.Nets[net].Driver
		if drv < 0 {
			return fmt.Errorf("netlist: FF %s clock traces to undriven net %d (not the root)", ff.Name, net)
		}
		in := d.Instances[drv]
		if in.Cell.Kind != cells.ClkBuf {
			return fmt.Errorf("netlist: FF %s clock driven through non-clock cell %s", ff.Name, in.Cell.Name)
		}
		net = in.Inputs[0]
	}
	return fmt.Errorf("netlist: FF %s clock tree has a cycle", ff.Name)
}

// checkAcyclic runs a DFS over data edges (gate output -> sink gate),
// treating FFs as path breaks, and reports the first combinational loop.
func (d *Design) checkAcyclic() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int8, len(d.Instances))
	// Iterative DFS to survive deep designs.
	var stack []int
	for start := range d.Instances {
		if color[start] != white || d.Instances[start].IsFF() || d.Instances[start].Dead {
			continue
		}
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			if color[v] == white {
				color[v] = grey
				out := d.Instances[v].Output
				if out >= 0 {
					for _, s := range d.Nets[out].Sinks {
						if d.Instances[s].IsFF() {
							continue // path legally terminates at a register
						}
						switch color[s] {
						case grey:
							return fmt.Errorf("netlist: combinational loop through %s", d.Instances[s].Name)
						case white:
							stack = append(stack, s)
						}
					}
				}
			} else {
				color[v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// Stats summarizes a design for logs and reports.
type Stats struct {
	Instances, Nets, FFs, Buffers int
	Area, Leakage                 float64
}

// Stats returns the current design statistics.
func (d *Design) Stats() Stats {
	return Stats{
		Instances: len(d.Instances),
		Nets:      len(d.Nets),
		FFs:       len(d.FFs),
		Buffers:   d.BufferCount(),
		Area:      d.Area(),
		Leakage:   d.Leakage(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("insts=%d nets=%d ffs=%d bufs=%d area=%.1f leak=%.1f",
		s.Instances, s.Nets, s.FFs, s.Buffers, s.Area, s.Leakage)
}
