package netlist

import (
	"math"
	"testing"

	"mgba/internal/cells"
)

func TestRemoveBufferRoundTrip(t *testing.T) {
	d, ff0, inv, _ := tiny(t)
	q0 := ff0.Output
	origSinks := append([]int(nil), d.Nets[q0].Sinks...)
	origWireDelay := d.Nets[q0].WireDelay
	origArea := d.Area()

	buf, _ := d.Lib.Pick(cells.Buf, 2)
	b, err := d.InsertBuffer(q0, buf, "tmp")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveBuffer(b); err != nil {
		t.Fatal(err)
	}
	if !b.Dead {
		t.Fatal("buffer not marked dead")
	}
	// Connectivity restored.
	if len(d.Nets[q0].Sinks) != len(origSinks) || d.Nets[q0].Sinks[0] != origSinks[0] {
		t.Fatalf("sinks not restored: %v vs %v", d.Nets[q0].Sinks, origSinks)
	}
	if inv.Inputs[0] != q0 {
		t.Fatalf("sink pin not rewired back: %d", inv.Inputs[0])
	}
	if math.Abs(d.Nets[q0].WireDelay-origWireDelay) > 1e-9 {
		t.Fatalf("wire delay not restored: %v vs %v", d.Nets[q0].WireDelay, origWireDelay)
	}
	if math.Abs(d.Area()-origArea) > 1e-9 {
		t.Fatalf("area not restored: %v vs %v", d.Area(), origArea)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design invalid after removal: %v", err)
	}
}

func TestRemoveBufferErrors(t *testing.T) {
	d, _, inv, _ := tiny(t)
	if err := d.RemoveBuffer(inv); err == nil {
		t.Fatal("removed a non-buffer")
	}
	buf, _ := d.Lib.Pick(cells.Buf, 1)
	b, err := d.InsertBuffer(inv.Output, buf, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveBuffer(b); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveBuffer(b); err == nil {
		t.Fatal("removed a buffer twice")
	}
}

func TestDeadInstanceExcludedFromQoR(t *testing.T) {
	d, ff0, _, _ := tiny(t)
	buf, _ := d.Lib.Pick(cells.Buf, 4)
	area0, leak0 := d.Area(), d.Leakage()
	b, err := d.InsertBuffer(ff0.Output, buf, "")
	if err != nil {
		t.Fatal(err)
	}
	if d.BufferCount() != 1 {
		t.Fatal("buffer not counted")
	}
	d.RemoveBuffer(b)
	if d.BufferCount() != 0 {
		t.Fatal("dead buffer still counted")
	}
	if d.Area() != area0 || d.Leakage() != leak0 {
		t.Fatal("dead buffer still contributes area/leakage")
	}
}
