package netlist

import (
	"fmt"

	"mgba/internal/cells"
)

// Retiming slides a register across an adjacent single-input combinational
// gate (Inv or Buf), the classic lag-based register move: for such gates
// g(delay(x)) == delay(g(x)), so sliding preserves the sequential function
// while moving the gate's delay from one pipeline stage to the other. Both
// directions keep the instance and net counts — and, crucially, every
// instance ID and the D.FFs order — unchanged: only pin wiring and the
// parasitics of the three touched nets move, which is what lets the
// incremental calibrator rebind across the move instead of going cold.
//
// RetimeBackward and RetimeForward with the same (ff, g) pair are exact
// inverses, including sink ordering, so a rejected trial restores the
// design bit-for-bit.

// retimeGateOK screens the gate being slid across: a live single-input
// combinational cell that is not part of the clock tree.
func retimeGateOK(g *Instance) error {
	switch {
	case g.Dead:
		return fmt.Errorf("netlist: retime across dead gate %s", g.Name)
	case g.Cell.Kind.IsSequential():
		return fmt.Errorf("netlist: retime across sequential cell %s", g.Name)
	case g.Cell.Kind == cells.ClkBuf:
		return fmt.Errorf("netlist: retime across clock buffer %s", g.Name)
	case g.Cell.Kind.Inputs() != 1:
		return fmt.Errorf("netlist: retime across %d-input gate %s", g.Cell.Kind.Inputs(), g.Name)
	case g.Output < 0:
		return fmt.Errorf("netlist: retime across outputless gate %s", g.Name)
	}
	return nil
}

// replaceSink swaps instance from for to in a net's sink list, preserving
// the position so downstream edge ordering stays deterministic.
func replaceSink(n *Net, from, to int) error {
	for i, s := range n.Sinks {
		if s == from {
			n.Sinks[i] = to
			return nil
		}
	}
	return fmt.Errorf("netlist: instance %d is not a sink of net %d", from, n.ID)
}

// refreshWire recomputes a net's parasitics from current placement.
func (d *Design) refreshWire(n *Net) {
	span := d.netSpan(n)
	n.WireCap = WireCapPerUm * span
	n.WireDelay = WireDelayPerUm * span
}

// RetimeBackward slides gate g from the fanin of flip-flop ff to its
// fanout: before the move g must exclusively drive ff's D pin; after it,
// ff latches g's former input and g recomputes ff's former Q for all its
// previous consumers.
//
//	s -> g -> n -> ff -> q -> (sinks)      becomes
//	s -> ff -> q -> g -> n -> (sinks)
//
// Placements do not move; the parasitics of the three touched nets are
// recomputed from the unchanged positions.
func (d *Design) RetimeBackward(ff, g *Instance) error {
	if !ff.IsFF() || ff.Dead {
		return fmt.Errorf("netlist: retime at non-FF %s", ff.Name)
	}
	if err := retimeGateOK(g); err != nil {
		return err
	}
	n := d.Nets[g.Output]
	if len(n.Sinks) != 1 || n.Sinks[0] != ff.ID {
		return fmt.Errorf("netlist: %s does not exclusively drive %s", g.Name, ff.Name)
	}
	if len(ff.Inputs) == 0 || ff.Inputs[0] != n.ID {
		return fmt.Errorf("netlist: %s D pin not fed by %s", ff.Name, g.Name)
	}
	if ff.Output < 0 {
		return fmt.Errorf("netlist: retime at outputless FF %s", ff.Name)
	}
	q := d.Nets[ff.Output]
	s := d.Nets[g.Inputs[0]]
	if s.ID == d.ClockRoot || s.Driver < 0 {
		return fmt.Errorf("netlist: retime would leave %s undriven", ff.Name)
	}
	if s.ID == q.ID {
		return fmt.Errorf("netlist: retime across self-loop at %s", ff.Name)
	}
	for _, sk := range q.Sinks {
		if d.Instances[sk].Clock == q.ID {
			return fmt.Errorf("netlist: net %d clocks instance %d", q.ID, sk)
		}
	}

	if err := replaceSink(s, g.ID, ff.ID); err != nil {
		return err
	}
	ff.Inputs[0] = s.ID
	moved := q.Sinks
	q.Sinks = []int{g.ID}
	g.Inputs[0] = q.ID
	n.Sinks = moved
	for _, sk := range moved {
		sink := d.Instances[sk]
		for i, inNet := range sink.Inputs {
			if inNet == q.ID {
				sink.Inputs[i] = n.ID
			}
		}
	}
	d.refreshWire(s)
	d.refreshWire(q)
	d.refreshWire(n)
	return nil
}

// RetimeForward slides gate g from the fanout of flip-flop ff to its
// fanin: before the move g must be the exclusive consumer of ff's Q pin;
// after it, g recomputes its function ahead of the register and ff latches
// the result.
//
//	w -> ff -> p -> g -> m -> (sinks)      becomes
//	w -> g -> m -> ff -> p -> (sinks)
//
// The exact inverse of RetimeBackward with the same pair.
func (d *Design) RetimeForward(ff, g *Instance) error {
	if !ff.IsFF() || ff.Dead {
		return fmt.Errorf("netlist: retime at non-FF %s", ff.Name)
	}
	if err := retimeGateOK(g); err != nil {
		return err
	}
	if ff.Output < 0 {
		return fmt.Errorf("netlist: retime at outputless FF %s", ff.Name)
	}
	p := d.Nets[ff.Output]
	if len(p.Sinks) != 1 || p.Sinks[0] != g.ID {
		return fmt.Errorf("netlist: %s is not the exclusive consumer of %s", g.Name, ff.Name)
	}
	if g.Inputs[0] != p.ID {
		return fmt.Errorf("netlist: %s input not fed by %s", g.Name, ff.Name)
	}
	m := d.Nets[g.Output]
	if len(ff.Inputs) == 0 {
		return fmt.Errorf("netlist: retime at inputless FF %s", ff.Name)
	}
	w := d.Nets[ff.Inputs[0]]
	if w.ID == d.ClockRoot || w.Driver < 0 {
		return fmt.Errorf("netlist: retime would leave %s undriven", g.Name)
	}
	if w.ID == m.ID {
		return fmt.Errorf("netlist: retime across self-loop at %s", ff.Name)
	}
	for _, sk := range m.Sinks {
		if d.Instances[sk].Clock == m.ID {
			return fmt.Errorf("netlist: net %d clocks instance %d", m.ID, sk)
		}
	}

	if err := replaceSink(w, ff.ID, g.ID); err != nil {
		return err
	}
	g.Inputs[0] = w.ID
	moved := m.Sinks
	m.Sinks = []int{ff.ID}
	ff.Inputs[0] = m.ID
	p.Sinks = moved
	for _, sk := range moved {
		sink := d.Instances[sk]
		for i, inNet := range sink.Inputs {
			if inNet == m.ID {
				sink.Inputs[i] = p.ID
			}
		}
	}
	d.refreshWire(w)
	d.refreshWire(p)
	d.refreshWire(m)
	return nil
}
