package netlist

import (
	"math"
	"strings"
	"testing"

	"mgba/internal/aocv"
	"mgba/internal/cells"
)

// tiny builds a 2-FF design: FF0 -Q-> INV -> FF1.D with a root-driven clock.
func tiny(t *testing.T) (*Design, *Instance, *Instance, *Instance) {
	t.Helper()
	lib := cells.Default(28)
	d := New("tiny", 28, lib, aocv.Default(28), 1000)
	clk := d.AddNet()
	if err := d.SetClockRoot(clk); err != nil {
		t.Fatal(err)
	}
	q0 := d.AddNet()
	mid := d.AddNet()
	d0 := d.AddNet() // FF0 D input (undriven; tied off via clock root exception not needed)
	ffCell, _ := lib.Pick(cells.DFF, 1)
	invCell, _ := lib.Pick(cells.Inv, 1)
	// FF0's D is fed by the inverter's output? No — keep a self-loop-free
	// shape: FF1's Q feeds back to FF0's D so all nets are driven.
	q1 := d.AddNet()
	ff0, err := d.AddFF(ffCell, 0, 0, q1, q0, clk)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := d.AddGate(invCell, 5, 0, []int{q0}, mid)
	if err != nil {
		t.Fatal(err)
	}
	ff1, err := d.AddFF(ffCell, 10, 0, mid, q1, clk)
	if err != nil {
		t.Fatal(err)
	}
	_ = d0
	d.AutoWire()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d, ff0, inv, ff1
}

func TestTinyBuilds(t *testing.T) {
	d, ff0, inv, ff1 := tiny(t)
	if len(d.FFs) != 2 {
		t.Fatalf("FFs = %d", len(d.FFs))
	}
	if !ff0.IsFF() || !ff1.IsFF() || inv.IsFF() {
		t.Fatal("IsFF misclassifies")
	}
	if d.Nets[inv.Output].Driver != inv.ID {
		t.Fatal("driver not registered")
	}
	if len(d.Nets[ff0.Output].Sinks) != 1 || d.Nets[ff0.Output].Sinks[0] != inv.ID {
		t.Fatal("sink not registered")
	}
}

func TestAddGateArity(t *testing.T) {
	lib := cells.Default(28)
	d := New("x", 28, lib, aocv.Default(28), 1000)
	n0, n1 := d.AddNet(), d.AddNet()
	nand, _ := lib.Pick(cells.Nand2, 1)
	if _, err := d.AddGate(nand, 0, 0, []int{n0}, n1); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestAddGateRejectsSequential(t *testing.T) {
	lib := cells.Default(28)
	d := New("x", 28, lib, aocv.Default(28), 1000)
	n0, n1 := d.AddNet(), d.AddNet()
	ff, _ := lib.Pick(cells.DFF, 1)
	if _, err := d.AddGate(ff, 0, 0, []int{n0}, n1); err == nil {
		t.Fatal("sequential cell accepted by AddGate")
	}
}

func TestAddFFRejectsCombinational(t *testing.T) {
	lib := cells.Default(28)
	d := New("x", 28, lib, aocv.Default(28), 1000)
	n0, n1, clk := d.AddNet(), d.AddNet(), d.AddNet()
	inv, _ := lib.Pick(cells.Inv, 1)
	if _, err := d.AddFF(inv, 0, 0, n0, n1, clk); err == nil {
		t.Fatal("combinational cell accepted by AddFF")
	}
}

func TestDoubleDriverRejected(t *testing.T) {
	lib := cells.Default(28)
	d := New("x", 28, lib, aocv.Default(28), 1000)
	a, b, out := d.AddNet(), d.AddNet(), d.AddNet()
	inv, _ := lib.Pick(cells.Inv, 1)
	if _, err := d.AddGate(inv, 0, 0, []int{a}, out); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddGate(inv, 0, 0, []int{b}, out); err == nil {
		t.Fatal("second driver accepted")
	}
}

func TestOutOfRangeNets(t *testing.T) {
	lib := cells.Default(28)
	d := New("x", 28, lib, aocv.Default(28), 1000)
	n := d.AddNet()
	inv, _ := lib.Pick(cells.Inv, 1)
	if _, err := d.AddGate(inv, 0, 0, []int{99}, n); err == nil {
		t.Fatal("bad input net accepted")
	}
	if _, err := d.AddGate(inv, 0, 0, []int{n}, 99); err == nil {
		t.Fatal("bad output net accepted")
	}
}

func TestSetClockRoot(t *testing.T) {
	lib := cells.Default(28)
	d := New("x", 28, lib, aocv.Default(28), 1000)
	if err := d.SetClockRoot(0); err == nil {
		t.Fatal("out-of-range clock root accepted")
	}
	a, out := d.AddNet(), d.AddNet()
	inv, _ := lib.Pick(cells.Inv, 1)
	d.AddGate(inv, 0, 0, []int{a}, out)
	if err := d.SetClockRoot(out); err == nil {
		t.Fatal("driven clock root accepted")
	}
	if err := d.SetClockRoot(a); err != nil {
		t.Fatal(err)
	}
}

func TestDistance(t *testing.T) {
	a := &Instance{X: 0, Y: 0}
	b := &Instance{X: 3, Y: 4}
	if got := Distance(a, b); got != 5 {
		t.Fatalf("Distance = %v", got)
	}
}

func TestAutoWireAndLoadCap(t *testing.T) {
	d, ff0, inv, _ := tiny(t)
	q0 := d.Nets[ff0.Output]
	span := Distance(ff0, inv)
	if math.Abs(q0.WireCap-WireCapPerUm*span) > 1e-9 {
		t.Fatalf("WireCap = %v", q0.WireCap)
	}
	if math.Abs(q0.WireDelay-WireDelayPerUm*span) > 1e-9 {
		t.Fatalf("WireDelay = %v", q0.WireDelay)
	}
	load := d.LoadCap(q0)
	want := q0.WireCap + inv.Cell.InputCap
	if math.Abs(load-want) > 1e-9 {
		t.Fatalf("LoadCap = %v, want %v", load, want)
	}
}

func TestLoadCapClockPin(t *testing.T) {
	d, ff0, _, _ := tiny(t)
	clkNet := d.Nets[ff0.Clock]
	load := d.LoadCap(clkNet)
	want := 2 * ff0.Cell.ClockCap // two FFs on the root clock
	if math.Abs(load-want) > 1e-9 {
		t.Fatalf("clock LoadCap = %v, want %v", load, want)
	}
}

func TestResize(t *testing.T) {
	d, _, inv, _ := tiny(t)
	up := d.Lib.Upsize(inv.Cell)
	if err := d.Resize(inv, up); err != nil {
		t.Fatal(err)
	}
	if inv.Cell != up {
		t.Fatal("resize did not apply")
	}
	nand, _ := d.Lib.Pick(cells.Nand2, 1)
	if err := d.Resize(inv, nand); err == nil {
		t.Fatal("cross-kind resize accepted")
	}
}

func TestInsertBuffer(t *testing.T) {
	d, ff0, inv, _ := tiny(t)
	buf, _ := d.Lib.Pick(cells.Buf, 2)
	q0 := ff0.Output
	origWireDelay := d.Nets[q0].WireDelay
	b, err := d.InsertBuffer(q0, buf, "fixbuf")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "fixbuf" {
		t.Fatalf("name = %q", b.Name)
	}
	// Original net now feeds only the buffer.
	if len(d.Nets[q0].Sinks) != 1 || d.Nets[q0].Sinks[0] != b.ID {
		t.Fatalf("old net sinks = %v", d.Nets[q0].Sinks)
	}
	// The inverter's input pin was rewired to the buffer's output net.
	if inv.Inputs[0] != b.Output {
		t.Fatalf("sink not rewired: %d != %d", inv.Inputs[0], b.Output)
	}
	if d.Nets[b.Output].Driver != b.ID {
		t.Fatal("buffer not driving new net")
	}
	// The buffer sits midway, so each half of the split wire carries about
	// half the original wire delay.
	if wd := d.Nets[q0].WireDelay; wd >= origWireDelay-1e-12 {
		t.Fatalf("buffering did not split wire delay: %v -> %v", origWireDelay, wd)
	}
	if wd := d.Nets[b.Output].WireDelay; wd >= origWireDelay-1e-12 {
		t.Fatalf("second half not split: %v vs %v", wd, origWireDelay)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("post-buffer validate: %v", err)
	}
}

func TestInsertBufferOnClockPin(t *testing.T) {
	d, ff0, _, _ := tiny(t)
	cb, _ := d.Lib.Pick(cells.ClkBuf, 2)
	_, err := d.InsertBuffer(ff0.Clock, cb, "")
	if err != nil {
		t.Fatal(err)
	}
	// Clock pins must be rewired and the design still validates.
	if err := d.Validate(); err != nil {
		t.Fatalf("validate after clock buffering: %v", err)
	}
}

func TestInsertBufferErrors(t *testing.T) {
	d, _, inv, _ := tiny(t)
	nand, _ := d.Lib.Pick(cells.Nand2, 1)
	if _, err := d.InsertBuffer(0, nand, ""); err == nil {
		t.Fatal("non-buffer cell accepted")
	}
	buf, _ := d.Lib.Pick(cells.Buf, 1)
	if _, err := d.InsertBuffer(999, buf, ""); err == nil {
		t.Fatal("bad net accepted")
	}
	// inv.Output's sink is FF1; buffer a sinkless net must fail.
	empty := d.AddNet()
	if _, err := d.InsertBuffer(empty, buf, ""); err == nil {
		t.Fatal("sinkless net accepted")
	}
	_ = inv
}

func TestAreaLeakageBufferCount(t *testing.T) {
	d, _, inv, _ := tiny(t)
	ffCell := d.Instances[d.FFs[0]].Cell
	wantArea := 2*ffCell.Area + inv.Cell.Area
	if math.Abs(d.Area()-wantArea) > 1e-9 {
		t.Fatalf("Area = %v, want %v", d.Area(), wantArea)
	}
	wantLeak := 2*ffCell.Leakage + inv.Cell.Leakage
	if math.Abs(d.Leakage()-wantLeak) > 1e-9 {
		t.Fatalf("Leakage = %v, want %v", d.Leakage(), wantLeak)
	}
	if d.BufferCount() != 0 {
		t.Fatalf("BufferCount = %d", d.BufferCount())
	}
	buf, _ := d.Lib.Pick(cells.Buf, 1)
	d.InsertBuffer(inv.Output, buf, "")
	if d.BufferCount() != 1 {
		t.Fatalf("BufferCount after insert = %d", d.BufferCount())
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	lib := cells.Default(28)
	d := New("loop", 28, lib, aocv.Default(28), 1000)
	clk := d.AddNet()
	d.SetClockRoot(clk)
	a, b := d.AddNet(), d.AddNet()
	inv, _ := lib.Pick(cells.Inv, 1)
	d.AddGate(inv, 0, 0, []int{a}, b)
	d.AddGate(inv, 0, 0, []int{b}, a)
	ffc, _ := lib.Pick(cells.DFF, 1)
	q := d.AddNet()
	d.AddFF(ffc, 0, 0, a, q, clk)
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "loop") {
		t.Fatalf("cycle not caught: %v", err)
	}
}

func TestValidateCatchesMissingClockRoot(t *testing.T) {
	lib := cells.Default(28)
	d := New("x", 28, lib, aocv.Default(28), 1000)
	if err := d.Validate(); err == nil {
		t.Fatal("missing clock root accepted")
	}
}

func TestValidateCatchesBadPeriod(t *testing.T) {
	lib := cells.Default(28)
	d := New("x", 28, lib, aocv.Default(28), 0)
	clk := d.AddNet()
	d.SetClockRoot(clk)
	if err := d.Validate(); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestValidateCatchesUndrivenInput(t *testing.T) {
	lib := cells.Default(28)
	d := New("x", 28, lib, aocv.Default(28), 1000)
	clk := d.AddNet()
	d.SetClockRoot(clk)
	floating, out, q := d.AddNet(), d.AddNet(), d.AddNet()
	inv, _ := lib.Pick(cells.Inv, 1)
	d.AddGate(inv, 0, 0, []int{floating}, out)
	ffc, _ := lib.Pick(cells.DFF, 1)
	d.AddFF(ffc, 0, 0, out, q, clk)
	if err := d.Validate(); err == nil {
		t.Fatal("undriven input accepted")
	}
}

func TestValidateClockThroughDataCell(t *testing.T) {
	lib := cells.Default(28)
	d := New("x", 28, lib, aocv.Default(28), 1000)
	clk := d.AddNet()
	d.SetClockRoot(clk)
	// Drive the FF clock through a data buffer, which is illegal here.
	badClk := d.AddNet()
	buf, _ := lib.Pick(cells.Buf, 1)
	d.AddGate(buf, 0, 0, []int{clk}, badClk)
	q, dn := d.AddNet(), d.AddNet()
	ffc, _ := lib.Pick(cells.DFF, 1)
	d.AddFF(ffc, 0, 0, dn, q, badClk)
	// Tie D to Q so it is driven.
	d.Instances[d.FFs[0]].Inputs[0] = q
	d.Nets[q].Sinks = append(d.Nets[q].Sinks, d.FFs[0])
	if err := d.Validate(); err == nil {
		t.Fatal("clock through data cell accepted")
	}
}

func TestStatsString(t *testing.T) {
	d, _, _, _ := tiny(t)
	s := d.Stats()
	if s.Instances != 3 || s.FFs != 2 {
		t.Fatalf("Stats = %+v", s)
	}
	if !strings.Contains(s.String(), "insts=3") {
		t.Fatalf("String = %q", s.String())
	}
}
