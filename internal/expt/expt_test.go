package expt_test

import (
	"strconv"
	"strings"
	"testing"

	"mgba/internal/core"
	"mgba/internal/expt"
)

func quickEnv() *expt.Env { return expt.NewEnv(nil, true) }

func TestTable1ShapesAndMonotonicity(t *testing.T) {
	tb := expt.Table1(quickEnv())
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 paper + 3 synthesized", len(tb.Rows))
	}
	// The first paper row must be the exact Table 1 values.
	want := []string{"paper", "500 nm", "1.30", "1.25", "1.20", "1.15"}
	for i, cell := range want {
		if tb.Rows[0][i] != cell {
			t.Fatalf("row0[%d] = %q, want %q", i, tb.Rows[0][i], cell)
		}
	}
}

func TestFig2Regenerates(t *testing.T) {
	tb, err := expt.Fig2(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	s := tb.String()
	for _, want := range []string{"740 ps", "690 ps", "50 ps"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Fig2 output missing %q:\n%s", want, s)
		}
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("Fig2 rows = %d, want 6 gates", len(tb.Rows))
	}
}

func TestSec32SchemeOrdering(t *testing.T) {
	tb, err := expt.Sec32(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Column 2 is gate coverage: per-endpoint (row 2) must beat global
	// (row 1); both schemes fit the same number of paths (column 1).
	if tb.Rows[1][1] != tb.Rows[2][1] {
		t.Fatalf("budgets differ: %s vs %s", tb.Rows[1][1], tb.Rows[2][1])
	}
	covG := parsePct(t, tb.Rows[1][2])
	covE := parsePct(t, tb.Rows[2][2])
	if covE <= covG {
		t.Fatalf("per-endpoint coverage %.1f not above global %.1f", covE, covG)
	}
	// Full-population fit must be the most accurate of the three.
	phiAll := parsePct(t, tb.Rows[0][3])
	phiG := parsePct(t, tb.Rows[1][3])
	phiE := parsePct(t, tb.Rows[2][3])
	if phiAll > phiG || phiAll > phiE {
		t.Fatalf("full-fit phi %.1f not the best (global %.1f, per-endpoint %.1f)", phiAll, phiG, phiE)
	}
}

func TestFig3SparsityHeadline(t *testing.T) {
	s, m, err := expt.Fig3(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "fraction within [-0.01, 0.01]") {
		t.Fatalf("missing headline:\n%s", s)
	}
	if frac := m.SparsityFraction(0.01); frac < 0.5 {
		t.Fatalf("correction not sparse: %.2f", frac)
	}
}

func TestFig4Converges(t *testing.T) {
	tb, err := expt.Fig4(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 3 {
		t.Fatalf("too few sweep points: %d", len(tb.Rows))
	}
	first := parsePct(t, tb.Rows[0][2])
	last := parsePct(t, tb.Rows[len(tb.Rows)-1][2])
	if last > first {
		t.Fatalf("phi did not improve with more rows: %.2f -> %.2f", first, last)
	}
}

func TestTable4SolverOrdering(t *testing.T) {
	_, rows, err := expt.Table4(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no solver rows")
	}
	var gd, scg, rs float64
	for _, r := range rows {
		gd += r.Seconds[core.MethodGD]
		scg += r.Seconds[core.MethodSCG]
		rs += r.Seconds[core.MethodSCGRS]
		if r.Paths == 0 {
			t.Fatalf("%s: no paths", r.Design)
		}
	}
	// The headline of Table 4: the stochastic solvers beat full-gradient
	// descent on total time across the suite.
	if scg >= gd {
		t.Fatalf("SCG total %.3fs not below GD %.3fs", scg, gd)
	}
	if rs >= gd {
		t.Fatalf("SCG+RS total %.3fs not below GD %.3fs", rs, gd)
	}
}

func TestTable3NoRegression(t *testing.T) {
	_, rows, err := expt.Table3(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no pass-ratio rows")
	}
	for _, r := range rows {
		if r.MGBAPass < r.GBAPass {
			t.Fatalf("%s: mGBA pass %.2f below GBA %.2f — the paper's no-regression claim broke",
				r.Design, r.MGBAPass, r.GBAPass)
		}
		if r.MGBAPass-r.GBAPass < 0.10 {
			t.Fatalf("%s: improvement only %.2f pts", r.Design, (r.MGBAPass-r.GBAPass)*100)
		}
	}
}

func TestTable2QoRDirection(t *testing.T) {
	_, outs, err := expt.Table2(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) == 0 {
		t.Fatal("no closure outcomes")
	}
	var areaG, areaM, fixesG, fixesM float64
	for _, o := range outs {
		areaG += o.GBA.Area
		areaM += o.MGBA.Area
		fixesG += float64(o.GBA.Upsized + o.GBA.BuffersAdded)
		fixesM += float64(o.MGBA.Upsized + o.MGBA.BuffersAdded)
	}
	if areaM >= areaG {
		t.Fatalf("mGBA flow total area %.1f not below GBA %.1f", areaM, areaG)
	}
	if fixesM >= fixesG {
		t.Fatalf("mGBA flow fixes %v not below GBA %v", fixesM, fixesG)
	}
}

func TestTable5Decomposition(t *testing.T) {
	env := quickEnv()
	if _, _, err := expt.Table2(env); err != nil { // populate the cache
		t.Fatal(err)
	}
	tb, err := expt.Table5(env)
	if err != nil {
		t.Fatal(err)
	}
	// Every row: post-route + calib = total (within rounding).
	for _, row := range tb.Rows {
		if row[0] == "Avg." {
			continue
		}
		post := parseF(t, row[2])
		calib := parseF(t, row[3])
		total := parseF(t, row[4])
		if diff := post + calib - total; diff > 0.01 || diff < -0.01 {
			t.Fatalf("%s: %.3f + %.3f != %.3f", row[0], post, calib, total)
		}
	}
}

func TestSuiteConfigsQuickScaling(t *testing.T) {
	full := expt.NewEnv(nil, false).SuiteConfigs()
	quick := quickEnv().SuiteConfigs()
	if len(quick) >= len(full) {
		t.Fatalf("quick suite not smaller: %d vs %d", len(quick), len(full))
	}
	if quick[0].Gates >= full[0].Gates {
		t.Fatal("quick designs not scaled down")
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	return parseF(t, s)
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}
