package expt

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"mgba/internal/core"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/pathsel"
	"mgba/internal/pba"
	"mgba/internal/report"
	"mgba/internal/sta"
)

// ScaleBench backs the BENCH_scale.json artifact: one streamed cold
// calibration of the gen.Large design, with the memory footprint of the
// slab path bank against the pointer-form population it replaces.
type ScaleBench struct {
	Design      string `json:"design"`
	Gates       int    `json:"gates"`
	FFs         int    `json:"ffs"`
	Instances   int    `json:"instances"`
	Edges       int    `json:"edges"`
	StreamShard int    `json:"stream_shard"`

	Paths   int `json:"paths_enumerated"`
	Columns int `json:"columns"`

	GenerateWallMs float64 `json:"generate_wall_ms"`
	GraphWallMs    float64 `json:"graph_wall_ms"`
	ColdWallMs     float64 `json:"cold_calibration_wall_ms"`

	// Peak heap proxy: HeapAlloc immediately after the streamed cold
	// calibration returns, before any collection of its garbage.
	HeapAfterColdBytes uint64 `json:"heap_after_cold_bytes"`

	SlabBytes           int64   `json:"slab_bytes"`
	SlabBytesPerPath    float64 `json:"slab_bytes_per_path"`
	PointerBytes        uint64  `json:"pointer_bytes"`
	PointerBytesPerPath float64 `json:"pointer_bytes_per_path"`
	SlabReduction       float64 `json:"slab_reduction"` // pointer / slab

	Mem MemStats `json:"mem"`
}

// BenchScale runs the memory-lean scale pipeline end to end on the
// 100k-gate gen.Large design (20k in Quick mode): generate, build the CSR
// graph, stream-calibrate with a bounded endpoint shard, then measure the
// slab bank's bytes-per-path against a materialized pointer-form
// enumeration of the identical population.
func BenchScale(e *Env) (*report.Table, *ScaleBench, error) {
	gates := 100_000
	if e.Quick {
		gates = 20_000
	}
	cfg := gen.Large(gates)
	e.logf("benchscale: generating %s (%d gates)...\n", cfg.Name, gates)
	t0 := time.Now()
	d, err := gen.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	genMs := float64(time.Since(t0).Microseconds()) / 1e3
	t0 = time.Now()
	g, err := graph.Build(d)
	if err != nil {
		return nil, nil, err
	}
	graphMs := float64(time.Since(t0).Microseconds()) / 1e3

	opt := core.DefaultOptions()
	opt.StreamShard = 256
	scfg := sta.DefaultConfig()
	e.logf("benchscale: streamed cold calibration (shard %d)...\n", opt.StreamShard)
	t0 = time.Now()
	m, err := core.Calibrate(context.Background(), g, scfg, opt)
	if err != nil {
		return nil, nil, err
	}
	coldMs := float64(time.Since(t0).Microseconds()) / 1e3
	if m.Fault != "" {
		return nil, nil, fmt.Errorf("expt: benchscale calibration degraded: %s", m.Fault)
	}
	if m.Bank == nil || m.Bank.Total() == 0 {
		return nil, nil, fmt.Errorf("expt: benchscale calibration kept no paths")
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	res := &ScaleBench{
		Design:             cfg.Name,
		Gates:              gates,
		FFs:                len(d.FFs),
		Instances:          len(d.Instances),
		Edges:              g.NumEdges(),
		StreamShard:        opt.StreamShard,
		Paths:              m.Bank.Total(),
		Columns:            len(m.Columns),
		GenerateWallMs:     genMs,
		GraphWallMs:        graphMs,
		ColdWallMs:         coldMs,
		HeapAfterColdBytes: after.HeapAlloc,
		SlabBytes:          m.Bank.SizeBytes(),
	}
	res.SlabBytesPerPath = float64(res.SlabBytes) / float64(res.Paths)

	// Pointer-form baseline: materialize the identical population the old
	// cold path would hold and measure its retained heap. Both snapshots
	// follow a forced collection, so the delta is the population's
	// retained bytes, not transient enumeration garbage.
	e.logf("benchscale: materializing pointer-form population for comparison...\n")
	an := pba.NewAnalyzer(m.GBA)
	// Two collections per snapshot: sync.Pool scratch (the enumerator's
	// per-endpoint search state) drains over two GC cycles, and a
	// half-drained pool left from calibration would otherwise swamp the
	// delta.
	runtime.GC()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	pop := pathsel.Enumerate(an, opt.K)
	runtime.GC()
	runtime.GC()
	var held runtime.MemStats
	runtime.ReadMemStats(&held)
	// The analyzer (and everything it retains) must stay live across both
	// snapshots, or the delta measures its collection instead of the
	// population's footprint.
	runtime.KeepAlive(an)
	if pop.Total() != res.Paths {
		return nil, nil, fmt.Errorf("expt: pointer population has %d paths, bank %d", pop.Total(), res.Paths)
	}
	if held.HeapAlloc > before.HeapAlloc {
		res.PointerBytes = held.HeapAlloc - before.HeapAlloc
	}
	runtime.KeepAlive(pop)
	res.PointerBytesPerPath = float64(res.PointerBytes) / float64(res.Paths)
	if res.SlabBytes > 0 {
		res.SlabReduction = float64(res.PointerBytes) / float64(res.SlabBytes)
	}
	res.Mem = CaptureMem()

	t := report.New(fmt.Sprintf("Scale layer on %s (%d gates, %d FFs, %d edges; shard %d)",
		res.Design, res.Gates, res.FFs, res.Edges, res.StreamShard),
		"stage", "wall ms", "result")
	t.AddRow("generate", report.F(res.GenerateWallMs, 1), fmt.Sprintf("%d instances", res.Instances))
	t.AddRow("graph build", report.F(res.GraphWallMs, 1), fmt.Sprintf("%d edges", res.Edges))
	t.AddRow("cold calibration (streamed)", report.F(res.ColdWallMs, 1),
		fmt.Sprintf("%d paths, %d columns", res.Paths, res.Columns))
	t.AddNote("heap after cold: %.1f MB; slab %.1f B/path vs pointer %.1f B/path (%.1fx reduction, floor 4x)",
		float64(res.HeapAfterColdBytes)/1e6, res.SlabBytesPerPath, res.PointerBytesPerPath, res.SlabReduction)
	if res.SlabReduction < 4 {
		return nil, nil, fmt.Errorf("expt: slab reduction %.2fx below the 4x acceptance floor", res.SlabReduction)
	}
	return t, res, nil
}
