package expt

import (
	"context"
	"fmt"
	"testing"

	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/report"
	"mgba/internal/sta"
)

// CalibBench is the machine-readable outcome of the calibration benchmark:
// the cost of a cold calibration versus an incremental recalibration of the
// same design state after a batch of sizing transforms. It backs the
// BENCH_calibration.json artifact.
type CalibBench struct {
	Design     string `json:"design"`
	Gates      int    `json:"gates"`
	Endpoints  int    `json:"endpoints"`
	Transforms int    `json:"transforms"` // accepted upsizes between calibrations

	ColdNsOp      int64 `json:"cold_ns_per_op"`
	ColdAllocsOp  int64 `json:"cold_allocs_per_op"`
	WarmNsOp      int64 `json:"cold_warm_ns_per_op"`
	WarmAllocsOp  int64 `json:"cold_warm_allocs_per_op"`
	IncrNsOp      int64 `json:"incremental_ns_per_op"`
	IncrAllocsOp  int64 `json:"incremental_allocs_per_op"`
	Reenumerated  int   `json:"endpoints_reenumerated"`
	RowsPatched   int   `json:"rows_patched_per_op"`
	MatrixRebuilt int   `json:"matrix_rebuilds"`

	Speedup     float64 `json:"speedup"`      // cold / incremental
	SpeedupWarm float64 `json:"speedup_warm"` // warm-started cold / incremental
}

// benchScenario builds the benchmark fixture: the D3 stand-in design,
// cold-calibrated once, then aged by n accepted upsizes along its selected
// paths (the same move the closure flow's repair phase applies), returning
// everything needed to time cold and incremental recalibration of the
// resulting state.
type benchScenario struct {
	d     *netlist.Design
	g     *graph.Graph
	cfg   sta.Config
	opt   core.Options
	warm  []float64 // weights of the pre-transform calibration
	dirty []int
	eps   int
}

func newBenchScenario(e *Env, transforms int) (*benchScenario, error) {
	cfg := gen.Suite()[2] // D3
	if e.Quick {
		cfg.Gates, cfg.FFs = cfg.Gates/4, cfg.FFs/4
	}
	d, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	g, err := graph.Build(d)
	if err != nil {
		return nil, err
	}
	sc := &benchScenario{d: d, g: g, cfg: sta.DefaultConfig(), opt: core.DefaultOptions()}
	m0, err := core.CalibrateWithSession(context.Background(), engine.NewSession(g), sc.cfg, sc.opt)
	if err != nil {
		return nil, err
	}
	if len(m0.Selection.Paths) == 0 {
		return nil, fmt.Errorf("expt: bench design has no violated paths")
	}
	sc.warm = m0.Weights
	m0.MGBA.Release()
	if m0.GBA != m0.MGBA {
		m0.GBA.Release()
	}

	// Age the design: upsize distinct gates along the selected paths, worst
	// first, recording the dirty set the closure flow would hand to
	// Recalibrate (gate + its input-net drivers).
	seen := make(map[int]bool)
	note := func(id int) {
		if !seen[id] {
			seen[id] = true
			sc.dirty = append(sc.dirty, id)
		}
	}
	resized := 0
	for _, p := range m0.Selection.Paths {
		if resized == transforms {
			break
		}
		for _, id := range p.Cells {
			if resized == transforms {
				break
			}
			inst := d.Instances[id]
			if seen[id] || inst.IsFF() {
				continue
			}
			to := d.Lib.Upsize(inst.Cell)
			if to == nil {
				continue
			}
			if err := d.Resize(inst, to); err != nil {
				continue
			}
			resized++
			note(id)
			for _, nid := range inst.Inputs {
				if drv := d.Nets[nid].Driver; drv >= 0 && !g.IsClock(drv) {
					note(drv)
				}
			}
		}
	}
	if resized == 0 {
		return nil, fmt.Errorf("expt: no gate on the bench selection could be upsized")
	}
	for _, ffID := range g.D.FFs {
		if len(g.Fanin[ffID]) > 0 {
			sc.eps++
		}
	}
	return sc, nil
}

// BenchCalibration measures cold versus incremental recalibration after a
// batch of sizing transforms on the D3 stand-in (the tentpole claim of the
// incremental calibrator: same bits, a fraction of the work).
func BenchCalibration(e *Env) (*report.Table, *CalibBench, error) {
	transforms := 150
	if e.Quick {
		transforms = 40
	}
	e.logf("bench: building scenario (D3, %d transforms)...\n", transforms)
	sc, err := newBenchScenario(e, transforms)
	if err != nil {
		return nil, nil, err
	}
	ctx := context.Background()

	// Cold: a calibration carrying no prior information — full serial
	// enumeration, full CSR assembly, solve from dx0 = 0 — which is what
	// every recalibration costs without the persistent calibrator.
	coldSess := engine.NewSession(sc.g)
	e.logf("bench: timing cold calibration...\n")
	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := core.CalibrateWithSession(ctx, coldSess, sc.cfg, sc.opt)
			if err != nil {
				b.Fatal(err)
			}
			m.MGBA.Release()
			if m.GBA != m.MGBA {
				m.GBA.Release()
			}
		}
	})

	// Warm-started cold: the same full pipeline seeded with the previous
	// calibration's weights, the closure flow's pre-tentpole behavior at a
	// recalibration event. Reported alongside so the warm start's share of
	// the win is visible.
	warmOpt := sc.opt
	warmOpt.WarmWeights = sc.warm
	e.logf("bench: timing warm-started cold calibration...\n")
	warm := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := core.CalibrateWithSession(ctx, coldSess, sc.cfg, warmOpt)
			if err != nil {
				b.Fatal(err)
			}
			m.MGBA.Release()
			if m.GBA != m.MGBA {
				m.GBA.Release()
			}
		}
	})

	// Incremental: a persistent calibrator over the same design state,
	// recalibrating from its cache and the dirty set, driven exactly as the
	// closure flow drives it — seeded once with the pre-transform weights,
	// then each re-solve warm-starts from the previous fit (the
	// calibrator's native chaining, which the flow reproduces by feeding
	// model.Weights back in).
	cal, err := core.NewCalibrator(engine.NewSession(sc.g), sc.cfg, sc.opt)
	if err != nil {
		return nil, nil, err
	}
	cal.SetWarmWeights(sc.warm)
	if _, err := cal.Calibrate(ctx); err != nil {
		return nil, nil, err
	}
	e.logf("bench: timing incremental recalibration...\n")
	incr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := cal.Recalibrate(ctx, sc.dirty)
			if err != nil {
				b.Fatal(err)
			}
			if m.GBA != m.MGBA {
				m.MGBA.Release()
			}
		}
	})
	st := cal.Stats()
	if st.Incremental == 0 {
		return nil, nil, fmt.Errorf("expt: benchmark never took the incremental path (stats %+v)", st)
	}

	res := &CalibBench{
		Design:        "D3",
		Gates:         len(sc.d.Instances),
		Endpoints:     sc.eps,
		Transforms:    transforms,
		ColdNsOp:      cold.NsPerOp(),
		ColdAllocsOp:  cold.AllocsPerOp(),
		WarmNsOp:      warm.NsPerOp(),
		WarmAllocsOp:  warm.AllocsPerOp(),
		IncrNsOp:      incr.NsPerOp(),
		IncrAllocsOp:  incr.AllocsPerOp(),
		Reenumerated:  st.EndpointsReenumerated / st.Incremental,
		RowsPatched:   st.RowsPatched / st.Incremental,
		MatrixRebuilt: st.MatrixRebuilds,
	}
	if res.IncrNsOp > 0 {
		res.Speedup = float64(res.ColdNsOp) / float64(res.IncrNsOp)
		res.SpeedupWarm = float64(res.WarmNsOp) / float64(res.IncrNsOp)
	}

	t := report.New(fmt.Sprintf("Calibration cost after %d sizing transforms (%s: %d gates, %d endpoints)",
		transforms, res.Design, res.Gates, res.Endpoints),
		"path", "ns/op", "allocs/op", "endpoints enumerated")
	t.AddRow("cold", fmt.Sprintf("%d", res.ColdNsOp), fmt.Sprintf("%d", res.ColdAllocsOp),
		fmt.Sprintf("%d", res.Endpoints))
	t.AddRow("cold, warm-started", fmt.Sprintf("%d", res.WarmNsOp), fmt.Sprintf("%d", res.WarmAllocsOp),
		fmt.Sprintf("%d", res.Endpoints))
	t.AddRow("incremental", fmt.Sprintf("%d", res.IncrNsOp), fmt.Sprintf("%d", res.IncrAllocsOp),
		fmt.Sprintf("%d", res.Reenumerated))
	t.AddNote("speedup vs cold: %.2fx (acceptance floor: 3x); vs warm-started cold: %.2fx",
		res.Speedup, res.SpeedupWarm)
	return t, res, nil
}
