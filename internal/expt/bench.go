package expt

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/report"
	"mgba/internal/rng"
	"mgba/internal/solver"
	"mgba/internal/sta"
)

// CalibBench is the machine-readable outcome of the calibration benchmark:
// the cost of a cold calibration versus an incremental recalibration of the
// same design state after a batch of sizing transforms. It backs the
// BENCH_calibration.json artifact.
type CalibBench struct {
	Design     string `json:"design"`
	Gates      int    `json:"gates"`
	Endpoints  int    `json:"endpoints"`
	Transforms int    `json:"transforms"` // accepted upsizes between calibrations

	ColdNsOp      int64 `json:"cold_ns_per_op"`
	ColdAllocsOp  int64 `json:"cold_allocs_per_op"`
	WarmNsOp      int64 `json:"cold_warm_ns_per_op"`
	WarmAllocsOp  int64 `json:"cold_warm_allocs_per_op"`
	IncrNsOp      int64 `json:"incremental_ns_per_op"`
	IncrAllocsOp  int64 `json:"incremental_allocs_per_op"`
	Reenumerated  int   `json:"endpoints_reenumerated"`
	RowsPatched   int   `json:"rows_patched_per_op"`
	MatrixRebuilt int   `json:"matrix_rebuilds"`

	Speedup     float64 `json:"speedup"`      // cold / incremental
	SpeedupWarm float64 `json:"speedup_warm"` // warm-started cold / incremental

	Mem MemStats `json:"mem"`
}

// benchScenario builds the benchmark fixture: the D3 stand-in design,
// cold-calibrated once, then aged by n accepted upsizes along its selected
// paths (the same move the closure flow's repair phase applies), returning
// everything needed to time cold and incremental recalibration of the
// resulting state.
type benchScenario struct {
	d     *netlist.Design
	g     *graph.Graph
	cfg   sta.Config
	opt   core.Options
	warm  []float64 // weights of the pre-transform calibration
	dirty []int
	eps   int
}

func newBenchScenario(e *Env, transforms int) (*benchScenario, error) {
	cfg := gen.Suite()[2] // D3
	if e.Quick {
		cfg.Gates, cfg.FFs = cfg.Gates/4, cfg.FFs/4
	}
	d, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	g, err := graph.Build(d)
	if err != nil {
		return nil, err
	}
	sc := &benchScenario{d: d, g: g, cfg: sta.DefaultConfig(), opt: core.DefaultOptions()}
	m0, err := core.CalibrateWithSession(context.Background(), engine.NewSession(g), sc.cfg, sc.opt)
	if err != nil {
		return nil, err
	}
	if len(m0.Selection.Paths) == 0 {
		return nil, fmt.Errorf("expt: bench design has no violated paths")
	}
	sc.warm = m0.Weights
	m0.MGBA.Release()
	if m0.GBA != m0.MGBA {
		m0.GBA.Release()
	}

	// Age the design: upsize distinct gates along the selected paths, worst
	// first, recording the dirty set the closure flow would hand to
	// Recalibrate (gate + its input-net drivers).
	seen := make(map[int]bool)
	note := func(id int) {
		if !seen[id] {
			seen[id] = true
			sc.dirty = append(sc.dirty, id)
		}
	}
	resized := 0
	for _, p := range m0.Selection.Paths {
		if resized == transforms {
			break
		}
		for _, id := range p.Cells {
			if resized == transforms {
				break
			}
			inst := d.Instances[id]
			if seen[id] || inst.IsFF() {
				continue
			}
			to := d.Lib.Upsize(inst.Cell)
			if to == nil {
				continue
			}
			if err := d.Resize(inst, to); err != nil {
				continue
			}
			resized++
			note(id)
			for _, nid := range inst.Inputs {
				if drv := d.Nets[nid].Driver; drv >= 0 && !g.IsClock(drv) {
					note(drv)
				}
			}
		}
	}
	if resized == 0 {
		return nil, fmt.Errorf("expt: no gate on the bench selection could be upsized")
	}
	for _, ffID := range g.D.FFs {
		if len(g.Fanin(ffID)) > 0 {
			sc.eps++
		}
	}
	return sc, nil
}

// BenchCalibration measures cold versus incremental recalibration after a
// batch of sizing transforms on the D3 stand-in (the tentpole claim of the
// incremental calibrator: same bits, a fraction of the work).
func BenchCalibration(e *Env) (*report.Table, *CalibBench, error) {
	transforms := 150
	if e.Quick {
		transforms = 40
	}
	e.logf("bench: building scenario (D3, %d transforms)...\n", transforms)
	sc, err := newBenchScenario(e, transforms)
	if err != nil {
		return nil, nil, err
	}
	ctx := context.Background()

	// Cold: a calibration carrying no prior information — full serial
	// enumeration, full CSR assembly, solve from dx0 = 0 — which is what
	// every recalibration costs without the persistent calibrator.
	coldSess := engine.NewSession(sc.g)
	e.logf("bench: timing cold calibration...\n")
	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := core.CalibrateWithSession(ctx, coldSess, sc.cfg, sc.opt)
			if err != nil {
				b.Fatal(err)
			}
			m.MGBA.Release()
			if m.GBA != m.MGBA {
				m.GBA.Release()
			}
		}
	})

	// Warm-started cold: the same full pipeline seeded with the previous
	// calibration's weights, the closure flow's pre-tentpole behavior at a
	// recalibration event. Reported alongside so the warm start's share of
	// the win is visible.
	warmOpt := sc.opt
	warmOpt.WarmWeights = sc.warm
	e.logf("bench: timing warm-started cold calibration...\n")
	warm := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := core.CalibrateWithSession(ctx, coldSess, sc.cfg, warmOpt)
			if err != nil {
				b.Fatal(err)
			}
			m.MGBA.Release()
			if m.GBA != m.MGBA {
				m.GBA.Release()
			}
		}
	})

	// Incremental: a persistent calibrator over the same design state,
	// recalibrating from its cache and the dirty set, driven exactly as the
	// closure flow drives it — seeded once with the pre-transform weights,
	// then each re-solve warm-starts from the previous fit (the
	// calibrator's native chaining, which the flow reproduces by feeding
	// model.Weights back in).
	cal, err := core.NewCalibrator(engine.NewSession(sc.g), sc.cfg, sc.opt)
	if err != nil {
		return nil, nil, err
	}
	cal.SetWarmWeights(sc.warm)
	if _, err := cal.Calibrate(ctx); err != nil {
		return nil, nil, err
	}
	e.logf("bench: timing incremental recalibration...\n")
	incr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := cal.Recalibrate(ctx, sc.dirty)
			if err != nil {
				b.Fatal(err)
			}
			if m.GBA != m.MGBA {
				m.MGBA.Release()
			}
		}
	})
	st := cal.Stats()
	if st.Incremental == 0 {
		return nil, nil, fmt.Errorf("expt: benchmark never took the incremental path (stats %+v)", st)
	}

	res := &CalibBench{
		Design:        "D3",
		Gates:         len(sc.d.Instances),
		Endpoints:     sc.eps,
		Transforms:    transforms,
		ColdNsOp:      cold.NsPerOp(),
		ColdAllocsOp:  cold.AllocsPerOp(),
		WarmNsOp:      warm.NsPerOp(),
		WarmAllocsOp:  warm.AllocsPerOp(),
		IncrNsOp:      incr.NsPerOp(),
		IncrAllocsOp:  incr.AllocsPerOp(),
		Reenumerated:  st.EndpointsReenumerated / st.Incremental,
		RowsPatched:   st.RowsPatched / st.Incremental,
		MatrixRebuilt: st.MatrixRebuilds,
	}
	if res.IncrNsOp > 0 {
		res.Speedup = float64(res.ColdNsOp) / float64(res.IncrNsOp)
		res.SpeedupWarm = float64(res.WarmNsOp) / float64(res.IncrNsOp)
	}

	t := report.New(fmt.Sprintf("Calibration cost after %d sizing transforms (%s: %d gates, %d endpoints)",
		transforms, res.Design, res.Gates, res.Endpoints),
		"path", "ns/op", "allocs/op", "endpoints enumerated")
	t.AddRow("cold", fmt.Sprintf("%d", res.ColdNsOp), fmt.Sprintf("%d", res.ColdAllocsOp),
		fmt.Sprintf("%d", res.Endpoints))
	t.AddRow("cold, warm-started", fmt.Sprintf("%d", res.WarmNsOp), fmt.Sprintf("%d", res.WarmAllocsOp),
		fmt.Sprintf("%d", res.Endpoints))
	t.AddRow("incremental", fmt.Sprintf("%d", res.IncrNsOp), fmt.Sprintf("%d", res.IncrAllocsOp),
		fmt.Sprintf("%d", res.Reenumerated))
	t.AddNote("speedup vs cold: %.2fx (acceptance floor: 3x); vs warm-started cold: %.2fx",
		res.Speedup, res.SpeedupWarm)
	res.Mem = CaptureMem()
	return t, res, nil
}

// SolverBench is the machine-readable outcome of the solver-kernel
// benchmark: the cost of an SCGRS solve and of one fused
// Objective+Gradient evaluation at serial versus 8-worker parallelism on
// a calibration-scale system. It backs the BENCH_solver.json artifact.
type SolverBench struct {
	Design   string `json:"design"`
	BaseRows int    `json:"base_rows"` // rows of the real D3 system
	Tile     int    `json:"tile"`      // row-tiling factor of the benched system
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	NNZ      int    `json:"nnz"`

	// The parallel legs can only show wall-clock speedup when the host
	// actually has spare cores; results are bit-identical regardless.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`

	SCGRSSerialNsOp   int64   `json:"scgrs_serial_ns_per_op"`
	SCGRSSerialAllocs int64   `json:"scgrs_serial_allocs_per_op"`
	SCGRSPar8NsOp     int64   `json:"scgrs_par8_ns_per_op"`
	SCGRSPar8Allocs   int64   `json:"scgrs_par8_allocs_per_op"`
	SCGRSSpeedup      float64 `json:"scgrs_speedup_par8_vs_serial"`

	EvalSerialNsOp   int64   `json:"objgrad_serial_ns_per_op"`
	EvalSerialAllocs int64   `json:"objgrad_serial_allocs_per_op"`
	EvalPar8NsOp     int64   `json:"objgrad_par8_ns_per_op"`
	EvalPar8Allocs   int64   `json:"objgrad_par8_allocs_per_op"`
	EvalSpeedup      float64 `json:"objgrad_speedup_par8_vs_serial"`

	Note string `json:"note,omitempty"`

	Mem MemStats `json:"mem"`
}

// BenchSolver measures the Eq. (6) solver kernels on the D3 stand-in's
// calibration system, row-tiled up to the scale where the blocked
// parallel kernels engage (the real D3 system is below the nnz cutoff,
// where the kernels deliberately stay serial). Two claims are measured:
// the SCGRS solve cost at 1 versus 8 workers, and the allocation-free
// fused Objective+Gradient evaluation.
func BenchSolver(e *Env) (*report.Table, *SolverBench, error) {
	e.logf("benchsolver: building scenario (D3 calibration system)...\n")
	sc, err := newBenchScenario(e, 1)
	if err != nil {
		return nil, nil, err
	}
	m0, err := core.CalibrateWithSession(context.Background(), engine.NewSession(sc.g), sc.cfg, sc.opt)
	if err != nil {
		return nil, nil, err
	}
	m0.MGBA.Release()
	if m0.GBA != m0.MGBA {
		m0.GBA.Release()
	}
	base := m0.Problem
	if base == nil {
		return nil, nil, fmt.Errorf("expt: bench design produced no calibration system")
	}

	// Row-tile the real system until it crosses the parallel cutoff: the
	// tiled system keeps D3's exact per-row structure (path lengths, delay
	// magnitudes, guard bands) at the scale of a large design.
	tile := 1
	for base.A.NNZ()*tile < 4*(1<<15) {
		tile *= 2
	}
	sel := make([]int, 0, base.A.Rows()*tile)
	for t := 0; t < tile; t++ {
		for i := 0; i < base.A.Rows(); i++ {
			sel = append(sel, i)
		}
	}
	p := base.SubProblem(sel)

	res := &SolverBench{
		Design:     "D3",
		BaseRows:   base.A.Rows(),
		Tile:       tile,
		Rows:       p.A.Rows(),
		Cols:       p.A.Cols(),
		NNZ:        p.A.NNZ(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if res.NumCPU < 8 {
		res.Note = fmt.Sprintf("host exposes only %d CPU(s): the 8-worker legs cannot show their "+
			"wall-clock speedup here, only that parallelism costs nothing and stays bit-identical", res.NumCPU)
	}

	opt := solver.DefaultOptions()
	bench := func(workers int) testing.BenchmarkResult {
		p.A.SetParallelism(workers)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := solver.SCGRS(context.Background(), p, opt, rng.New(42)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	e.logf("benchsolver: timing SCGRS serial...\n")
	serial := bench(1)
	e.logf("benchsolver: timing SCGRS at 8 workers...\n")
	par8 := bench(8)

	x := make([]float64, p.A.Cols())
	g := make([]float64, p.A.Cols())
	evalBench := func(workers int) testing.BenchmarkResult {
		p.A.SetParallelism(workers)
		p.ObjectiveGradient(g, x) // warm the scratch outside the timed region
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.ObjectiveGradient(g, x)
			}
		})
	}
	e.logf("benchsolver: timing fused Objective+Gradient...\n")
	evalSerial := evalBench(1)
	evalPar8 := evalBench(8)

	res.SCGRSSerialNsOp = serial.NsPerOp()
	res.SCGRSSerialAllocs = serial.AllocsPerOp()
	res.SCGRSPar8NsOp = par8.NsPerOp()
	res.SCGRSPar8Allocs = par8.AllocsPerOp()
	res.EvalSerialNsOp = evalSerial.NsPerOp()
	res.EvalSerialAllocs = evalSerial.AllocsPerOp()
	res.EvalPar8NsOp = evalPar8.NsPerOp()
	res.EvalPar8Allocs = evalPar8.AllocsPerOp()
	if res.SCGRSPar8NsOp > 0 {
		res.SCGRSSpeedup = float64(res.SCGRSSerialNsOp) / float64(res.SCGRSPar8NsOp)
	}
	if res.EvalPar8NsOp > 0 {
		res.EvalSpeedup = float64(res.EvalSerialNsOp) / float64(res.EvalPar8NsOp)
	}

	t := report.New(fmt.Sprintf("Eq. (6) solver kernels on the D3 system row-tiled x%d (%d x %d, %d nnz; GOMAXPROCS=%d)",
		res.Tile, res.Rows, res.Cols, res.NNZ, res.GOMAXPROCS),
		"kernel", "workers", "ns/op", "allocs/op")
	t.AddRow("SCGRS solve", "1", fmt.Sprintf("%d", res.SCGRSSerialNsOp), fmt.Sprintf("%d", res.SCGRSSerialAllocs))
	t.AddRow("SCGRS solve", "8", fmt.Sprintf("%d", res.SCGRSPar8NsOp), fmt.Sprintf("%d", res.SCGRSPar8Allocs))
	t.AddRow("Objective+Gradient (fused)", "1", fmt.Sprintf("%d", res.EvalSerialNsOp), fmt.Sprintf("%d", res.EvalSerialAllocs))
	t.AddRow("Objective+Gradient (fused)", "8", fmt.Sprintf("%d", res.EvalPar8NsOp), fmt.Sprintf("%d", res.EvalPar8Allocs))
	t.AddNote("SCGRS speedup 8w vs serial: %.2fx; fused eval: %.2fx (bit-identical results at every worker count)",
		res.SCGRSSpeedup, res.EvalSpeedup)
	if res.Note != "" {
		t.AddNote("%s", res.Note)
	}
	res.Mem = CaptureMem()
	return t, res, nil
}
