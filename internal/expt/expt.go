// Package expt defines one runnable experiment per table and figure of the
// paper's evaluation (plus the in-text §3.2 study), each regenerating the
// corresponding rows/series on the synthetic D1-D10 suite. cmd/experiments
// is a thin CLI over this package; the top-level bench harness wraps the
// same entry points in testing.B benchmarks.
package expt

import (
	"context"
	"fmt"
	"io"
	"math"

	"mgba/internal/aocv"
	"mgba/internal/closure"
	"mgba/internal/core"
	"mgba/internal/fixtures"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/pathsel"
	"mgba/internal/pba"
	"mgba/internal/report"
	"mgba/internal/rng"
	"mgba/internal/solver"
	"mgba/internal/sta"
)

// Env carries the shared experiment environment: output sink, scaling, and
// caches so that Table 2 and Table 5 reuse the same closure runs.
type Env struct {
	Out   io.Writer
	Quick bool // shrink the suite for fast runs (tests, benchmarks)

	closureRuns map[string]*ClosureOutcome
}

// NewEnv creates an experiment environment writing progress to out.
func NewEnv(out io.Writer, quick bool) *Env {
	return &Env{Out: out, Quick: quick, closureRuns: map[string]*ClosureOutcome{}}
}

func (e *Env) logf(format string, args ...any) {
	if e.Out != nil {
		fmt.Fprintf(e.Out, format, args...)
	}
}

// SuiteConfigs returns the D1-D10 stand-in configurations, scaled down in
// Quick mode.
func (e *Env) SuiteConfigs() []gen.Config {
	suite := gen.Suite()
	if e.Quick {
		suite = suite[:3]
		for i := range suite {
			suite[i].Gates /= 4
			suite[i].FFs /= 4
		}
	}
	return suite
}

// ToyConfig returns the small §3.2 design.
func (e *Env) ToyConfig() gen.Config {
	cfg := gen.Toy()
	if e.Quick {
		cfg.Gates, cfg.FFs = cfg.Gates/2, cfg.FFs/2
	}
	return cfg
}

// buildToy generates the toy design and its baseline analysis.
func (e *Env) buildToy() (*graph.Graph, *sta.Result, *pba.Analyzer, error) {
	d, err := gen.Generate(e.ToyConfig())
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := graph.Build(d)
	if err != nil {
		return nil, nil, nil, err
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	return g, r, pba.NewAnalyzer(r), nil
}

// Table1 renders the derating lookup tables: the paper's exact Table 1 and
// a slice of the synthesized 16 nm table the suite runs on.
func Table1(e *Env) *report.Table {
	paper := aocv.PaperTable1()
	t := report.New("Table 1: AOCV derating lookup (paper example + synthesized 16nm late table)",
		"table", "distance", "d=3", "d=4", "d=5", "d=6", "d=8", "d=16")
	for di, dist := range paper.Distances {
		row := []string{"paper", report.F(dist*1000, 0) + " nm"}
		for _, depth := range []float64{3, 4, 5, 6} {
			row = append(row, report.F(paper.Values[di][0]*0+paper.Lookup(depth, dist), 2))
		}
		row = append(row, "-", "-")
		t.AddRow(row...)
	}
	synth := aocv.Default(16).Late
	for _, dist := range []float64{0.5, 5, 50} {
		row := []string{"16nm", report.F(dist*1000, 0) + " nm"}
		for _, depth := range []float64{3, 4, 5, 6, 8, 16} {
			row = append(row, report.F(synth.Lookup(depth, dist), 2))
		}
		t.AddRow(row...)
	}
	t.AddNote("derate decreases with cell depth (variation cancellation) and grows with distance")
	return t
}

// Fig2 reproduces the worked example of §2.2: GBA 740 ps vs PBA 690 ps on
// the Fig. 1/Fig. 2 circuit.
func Fig2(e *Env) (*report.Table, error) {
	d, info, cfg, err := fixtures.Fig2()
	if err != nil {
		return nil, err
	}
	g, err := graph.Build(d)
	if err != nil {
		return nil, err
	}
	r := sta.Analyze(g, cfg)
	an := pba.NewAnalyzer(r)
	fi4 := g.FFIndex(info.FF4)
	p := an.WorstPath(fi4)
	if p == nil {
		return nil, fmt.Errorf("expt: no path at FF4")
	}
	tm := an.Retime(p)

	t := report.New("Fig. 2 worked example: cell depth and derate, GBA vs PBA (FF1->FF4 path)",
		"gate", "GBA depth", "GBA derate", "PBA depth", "PBA derate")
	dp := r.Depths
	for i, id := range info.Gates {
		t.AddRow(fmt.Sprintf("g%d", i+1),
			fmt.Sprintf("%d", dp.GBA[id]),
			report.F(r.Derate[id], 2),
			fmt.Sprintf("%d", tm.Depth),
			report.F(tm.LateDerate, 2))
	}
	t.AddNote("GBA path delay  = %s ps (paper Eq. 3: 740 ps)", report.F(p.GBAArrival, 0))
	t.AddNote("PBA path delay  = %s ps (paper Eq. 2: 690 ps)", report.F(tm.Arrival, 0))
	t.AddNote("pessimism gap   = %s ps", report.F(p.GBAArrival-tm.Arrival, 0))
	return t, nil
}

// Sec32 reproduces the in-text path-selection study of §3.2: fitting on
// (a) every violated path, (b) the global worst-m' subset, and (c) the
// per-endpoint top-k' subset, always evaluating the error phi of Eq. (10)
// and the gate coverage against the full violated population.
func Sec32(e *Env) (*report.Table, error) {
	g, r, an, err := e.buildToy()
	if err != nil {
		return nil, err
	}
	// One shared enumeration of the violated population; the three selection
	// schemes are cheap views over it rather than three k-worst searches.
	pop := pathsel.Enumerate(an, 2000)
	all := pop.All()
	if len(all.Paths) == 0 {
		return nil, fmt.Errorf("expt: toy design has no violated paths")
	}
	allTimings := make([]*pba.Timing, len(all.Paths))
	golden := make([]float64, len(all.Paths))
	for i, p := range all.Paths {
		allTimings[i] = an.Retime(p)
		golden[i] = allTimings[i].Slack
	}

	perEp := pop.TopK(20, 0)
	budget := len(perEp.Paths)
	global := pop.GlobalTopM(budget)

	t := report.New(fmt.Sprintf("Sec 3.2 path-selection study (toy: %d violated paths, %d gates in population)",
		len(all.Paths), len(all.CellSet())),
		"scheme", "paths fitted", "gate coverage (%)", "phi on all violated (%)")
	for _, sc := range []*pathsel.Selection{all, global, perEp} {
		model, err := fitOn(g, sc)
		if err != nil {
			return nil, err
		}
		fitted := make([]float64, len(all.Paths))
		for i, p := range all.Paths {
			fitted[i] = core.PathSlackWithWeights(r, an, p, model.Weights)
		}
		phi := core.Compare(fitted, golden, 0.02).Phi
		t.AddRow(sc.Scheme,
			fmt.Sprintf("%d", len(sc.Paths)),
			report.Pct(sc.Coverage(all), 2),
			report.Pct(phi, 2))
	}
	t.AddNote("paper: full solve phi=4.1%%; global top-m phi=72.4%% at 47.5%% coverage; per-endpoint k'=20 phi=5.1%% at 95.3%% coverage")
	return t, nil
}

// fitOn calibrates weights against an explicit path selection.
func fitOn(g *graph.Graph, sel *pathsel.Selection) (*core.Model, error) {
	opt := core.DefaultOptions()
	opt.Method = core.MethodSCGRS
	// Calibrate selects per-endpoint internally; to fit on an arbitrary
	// selection the experiment builds the model manually through the same
	// pipeline, reusing Calibrate by substituting the selection afterwards
	// would skew results. Instead we re-run the core pipeline pieces here.
	return core.CalibrateOnSelection(context.Background(), g, sta.DefaultConfig(), opt, sel)
}

// Fig3 reproduces the sparsity histogram of the optimal correction vector:
// the text rendering plus the headline fraction near zero.
func Fig3(e *Env) (string, *core.Model, error) {
	g, _, _, err := e.buildToy()
	if err != nil {
		return "", nil, err
	}
	opt := core.DefaultOptions()
	opt.Method = core.MethodSCGRS
	m, err := core.Calibrate(context.Background(), g, sta.DefaultConfig(), opt)
	if err != nil {
		return "", nil, err
	}
	h := m.CorrectionHistogram(0.25, 25)
	s := report.Histogram("Fig. 3: distribution of the optimal correction x* (toy design)", h, 48)
	s += fmt.Sprintf("\nfraction within [-0.01, 0.01]: %s%% (paper: 95.9%%)\n",
		report.Pct(m.SparsityFraction(0.01), 1))
	return s, m, nil
}

// Fig4 reproduces the accuracy-vs-sampled-rows curve: the quality of the
// solution fitted on a uniformly sampled row subset, measured (like every
// accuracy number in the paper) against golden PBA over the *whole*
// selected-path population, as the row count doubles per Algorithm 1's
// schedule. The rank-deficient systems admit many equal-quality solutions,
// so quality is what converges, not the coordinates of x.
func Fig4(e *Env) (*report.Table, error) {
	g, r0, an, err := e.buildToy()
	if err != nil {
		return nil, err
	}
	opt := core.DefaultOptions()
	opt.Method = core.MethodFull
	m, err := core.Calibrate(context.Background(), g, sta.DefaultConfig(), opt)
	if err != nil {
		return nil, err
	}
	if m.Problem == nil {
		return nil, fmt.Errorf("expt: toy produced no problem")
	}
	golden, err := m.PathSlacks("pba")
	if err != nil {
		return nil, err
	}
	phiAt := func(x []float64) float64 {
		// Translate the correction into weights and evaluate every
		// selected path.
		weights := make([]float64, len(g.D.Instances))
		for i := range weights {
			weights[i] = 1
		}
		for k, c := range m.Columns {
			weights[c] = 1 + x[k]
		}
		fitted := make([]float64, len(m.Selection.Paths))
		for i, p := range m.Selection.Paths {
			fitted[i] = core.PathSlackWithWeights(r0, an, p, weights)
		}
		return core.Compare(fitted, golden, opt.Epsilon).Phi
	}
	floor := phiAt(m.Correction)

	t := report.New("Fig. 4: fit accuracy vs number of sampled rows (toy design)",
		"rows sampled", "of total (%)", "phi on all selected paths (%)")
	r := rng.New(909)
	total := m.Problem.A.Rows()
	sopt := solver.DefaultOptions()
	for rows := 64; ; rows *= 2 {
		if rows > total {
			rows = total
		}
		sel := r.SampleWithoutReplacement(total, rows)
		sub := m.Problem.SubProblem(sel)
		x, _, err := solver.SCG(context.Background(), sub, sopt, rng.New(17))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", rows),
			report.Pct(float64(rows)/float64(total), 1),
			report.Pct(phiAt(x), 2))
		if rows == total {
			break
		}
	}
	t.AddNote("exact full-system solve reaches phi = %s%%; the sampled curve converges sharply toward it (paper Fig. 4)",
		report.Pct(floor, 2))
	return t, nil
}

// SolverRow is one design's Table 4 measurement.
type SolverRow struct {
	Design   string
	Paths    int
	Accuracy map[core.Method]float64 // mse over selected paths
	Seconds  map[core.Method]float64 // solver wall-clock
}

// Table4 compares GD, SCG and SCG+RS on every suite design: modelling mse
// (Eq. 12) and solve time, with speedups normalized to GD.
func Table4(e *Env) (*report.Table, []SolverRow, error) {
	methods := []core.Method{core.MethodGD, core.MethodSCG, core.MethodSCGRS}
	t := report.New("Table 4: accuracy and speed of the optimization solvers",
		"design", "paths",
		"GD mse(1e-3)", "GD time(s)",
		"SCG mse(1e-3)", "SCG time(s)", "SCG speedup",
		"SCG+RS mse(1e-3)", "SCG+RS time(s)", "SCG+RS speedup")
	var rows []SolverRow
	sumAcc := map[core.Method]float64{}
	sumTime := map[core.Method]float64{}
	n := 0
	for _, cfg := range e.SuiteConfigs() {
		// The analysis experiments use the uncapped constraint profile:
		// violations spread across the whole endpoint population, like the
		// paper's analysis tables. (The closure experiments keep the
		// fixability cap; see DESIGN.md.)
		cfg.DepthCap = 0
		d, err := gen.Generate(cfg)
		if err != nil {
			return nil, nil, err
		}
		g, err := graph.Build(d)
		if err != nil {
			return nil, nil, err
		}
		row := SolverRow{Design: cfg.Name, Accuracy: map[core.Method]float64{}, Seconds: map[core.Method]float64{}}
		for _, method := range methods {
			opt := core.DefaultOptions()
			opt.Method = method
			m, err := core.Calibrate(context.Background(), g, sta.DefaultConfig(), opt)
			if err != nil {
				return nil, nil, err
			}
			mt, err := m.Evaluate("mgba")
			if err != nil {
				return nil, nil, err
			}
			row.Paths = mt.Paths
			row.Accuracy[method] = mt.MSE
			row.Seconds[method] = m.Stats.Elapsed.Seconds()
		}
		gd := row.Seconds[core.MethodGD]
		t.AddRow(cfg.Name, fmt.Sprintf("%d", row.Paths),
			report.F(row.Accuracy[core.MethodGD]*1e3, 3), report.F(gd, 3),
			report.F(row.Accuracy[core.MethodSCG]*1e3, 3), report.F(row.Seconds[core.MethodSCG], 3),
			report.F(gd/math.Max(row.Seconds[core.MethodSCG], 1e-9), 2),
			report.F(row.Accuracy[core.MethodSCGRS]*1e3, 3), report.F(row.Seconds[core.MethodSCGRS], 3),
			report.F(gd/math.Max(row.Seconds[core.MethodSCGRS], 1e-9), 2))
		rows = append(rows, row)
		for _, method := range methods {
			sumAcc[method] += row.Accuracy[method]
			sumTime[method] += row.Seconds[method]
		}
		n++
		e.logf("table4: %s done\n", cfg.Name)
	}
	if n > 0 {
		gd := sumTime[core.MethodGD] / float64(n)
		t.AddRow("Avg.", "",
			report.F(sumAcc[core.MethodGD]/float64(n)*1e3, 3), report.F(gd, 3),
			report.F(sumAcc[core.MethodSCG]/float64(n)*1e3, 3), report.F(sumTime[core.MethodSCG]/float64(n), 3),
			report.F(gd/math.Max(sumTime[core.MethodSCG]/float64(n), 1e-9), 2),
			report.F(sumAcc[core.MethodSCGRS]/float64(n)*1e3, 3), report.F(sumTime[core.MethodSCGRS]/float64(n), 3),
			report.F(gd/math.Max(sumTime[core.MethodSCGRS]/float64(n), 1e-9), 2))
	}
	t.AddNote("paper averages: GD 2.97e-3 @1.00x, SCG 2.45e-3 @2.71x, SCG+RS 1.99e-3 @13.82x")
	return t, rows, nil
}

// Table4Scaling is a supplementary study of the row-sampling regime: the
// paper's 5.1x gain of SCG+RS over plain SCG materializes when the path
// count m dwarfs the gate count n (their designs: m up to 3.5M rows). The
// suite designs sit at m/n of only 1-3, so this experiment sweeps k' to
// grow m on a fixed design and reports how the solvers scale.
func Table4Scaling(e *Env) (*report.Table, error) {
	cfg := e.SuiteConfigs()[1] // the largest design
	cfg.DepthCap = 0
	ks := []int{20, 80, 320}
	if e.Quick {
		ks = []int{10, 40}
	}
	d, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	g, err := graph.Build(d)
	if err != nil {
		return nil, err
	}
	t := report.New("Table 4 supplement: solver scaling with the selected-path count (design "+cfg.Name+")",
		"k'", "rows m", "cols n", "m/n", "GD time(s)", "SCG time(s)", "SCG+RS time(s)", "RS vs SCG")
	for _, k := range ks {
		opt := core.DefaultOptions()
		opt.K = k
		opt.Method = core.MethodSCGRS
		m, err := core.Calibrate(context.Background(), g, sta.DefaultConfig(), opt)
		if err != nil {
			return nil, err
		}
		if m.Problem == nil {
			continue
		}
		p := m.Problem
		_, gdStats, err := solver.GD(context.Background(), p, solver.DefaultOptions())
		if err != nil {
			return nil, err
		}
		_, scgStats, err := solver.SCG(context.Background(), p, solver.DefaultOptions(), rng.New(5))
		if err != nil {
			return nil, err
		}
		_, rsStats, err := solver.SCGRS(context.Background(), p, solver.DefaultOptions(), rng.New(5))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", p.A.Rows()),
			fmt.Sprintf("%d", p.A.Cols()),
			report.F(float64(p.A.Rows())/float64(p.A.Cols()), 1),
			report.F(gdStats.Elapsed.Seconds(), 3),
			report.F(scgStats.Elapsed.Seconds(), 3),
			report.F(rsStats.Elapsed.Seconds(), 3),
			report.F(scgStats.Elapsed.Seconds()/rsStats.Elapsed.Seconds(), 2))
		e.logf("table4x: k'=%d done\n", k)
	}
	t.AddNote("GD scales with m per iteration; the sampled solvers decouple from m, which is the paper's point")
	return t, nil
}

// PassRow is one design's Table 3 measurement.
type PassRow struct {
	Design            string
	Paths             int
	GBAPass, MGBAPass float64
}

// Table3 compares the pass ratio (5% / 5 ps criterion against golden PBA)
// of original GBA and calibrated mGBA over the selected paths.
func Table3(e *Env) (*report.Table, []PassRow, error) {
	t := report.New("Table 3: pass ratio of GBA vs mGBA (golden: PBA; pass = within 5% or 5 ps)",
		"design", "selected paths", "GBA (%)", "mGBA (%)", "improvement (pts)")
	var rows []PassRow
	var sumG, sumM float64
	var sumPaths int
	for _, cfg := range e.SuiteConfigs() {
		cfg.DepthCap = 0 // analysis profile: violations span the population
		d, err := gen.Generate(cfg)
		if err != nil {
			return nil, nil, err
		}
		g, err := graph.Build(d)
		if err != nil {
			return nil, nil, err
		}
		opt := core.DefaultOptions()
		opt.Method = core.MethodSCGRS
		m, err := core.Calibrate(context.Background(), g, sta.DefaultConfig(), opt)
		if err != nil {
			return nil, nil, err
		}
		gbaM, err := m.Evaluate("gba")
		if err != nil {
			return nil, nil, err
		}
		mgbaM, err := m.Evaluate("mgba")
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, PassRow{cfg.Name, gbaM.Paths, gbaM.PassRatio, mgbaM.PassRatio})
		t.AddRow(cfg.Name, fmt.Sprintf("%d", gbaM.Paths),
			report.Pct(gbaM.PassRatio, 2), report.Pct(mgbaM.PassRatio, 2),
			report.Pct(mgbaM.PassRatio-gbaM.PassRatio, 2))
		sumG += gbaM.PassRatio
		sumM += mgbaM.PassRatio
		sumPaths += gbaM.Paths
		e.logf("table3: %s done\n", cfg.Name)
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		t.AddRow("Avg.", fmt.Sprintf("%d", sumPaths/len(rows)),
			report.Pct(sumG/n, 2), report.Pct(sumM/n, 2), report.Pct((sumM-sumG)/n, 2))
	}
	t.AddNote("paper averages: GBA 51.57%%, mGBA 95.36%%, improvement 43.79 pts; no design regresses")
	return t, rows, nil
}

// ClosureOutcome bundles the two flow runs of one design for Tables 2 & 5.
type ClosureOutcome struct {
	Design     string
	GBA, MGBA  *closure.Result
	BeforeArea float64
	BeforeLeak float64
}

// runClosure executes (and caches) both flow variants on a design.
func (e *Env) runClosure(cfg gen.Config) (*ClosureOutcome, error) {
	if out, ok := e.closureRuns[cfg.Name]; ok {
		return out, nil
	}
	out := &ClosureOutcome{Design: cfg.Name}
	for _, timer := range []closure.TimerKind{closure.TimerGBA, closure.TimerMGBA} {
		d, err := gen.Generate(cfg) // same seed: identical starting design
		if err != nil {
			return nil, err
		}
		if timer == closure.TimerGBA {
			out.BeforeArea = d.Area()
			out.BeforeLeak = d.Leakage()
		}
		res, err := closure.Optimize(d, closure.DefaultOptions(timer))
		if err != nil {
			return nil, err
		}
		if timer == closure.TimerGBA {
			out.GBA = res
		} else {
			out.MGBA = res
		}
	}
	e.closureRuns[cfg.Name] = out
	e.logf("closure: %s done\n", cfg.Name)
	return out, nil
}

// improvement returns (gba-mgba)/gba as a percentage: positive means the
// mGBA flow used less of the resource.
func improvement(gba, mgba float64) float64 {
	if gba == 0 {
		return 0
	}
	return (gba - mgba) / math.Abs(gba) * 100
}

// slackImprovement returns the sign-off slack improvement percentage in
// the paper's convention: positive when mGBA's final slack is better.
func slackImprovement(gba, mgba float64) float64 {
	if gba == mgba {
		return 0
	}
	base := math.Abs(gba)
	if base == 0 {
		base = math.Abs(mgba)
	}
	return (mgba - gba) / base * 100
}

// Table2 compares the final QoR of the GBA-embedded and mGBA-embedded
// closure flows.
func Table2(e *Env) (*report.Table, []*ClosureOutcome, error) {
	t := report.New("Table 2: QoR improvement of the mGBA-embedded flow over the GBA-embedded flow",
		"design", "WNS (%)", "TNS (%)", "area (%)", "leakage (%)", "buffer (%)", "fixes (%)")
	var outs []*ClosureOutcome
	var sum [6]float64
	for _, cfg := range e.SuiteConfigs() {
		out, err := e.runClosure(cfg)
		if err != nil {
			return nil, nil, err
		}
		outs = append(outs, out)
		vals := [6]float64{
			slackImprovement(out.GBA.SignoffWNS, out.MGBA.SignoffWNS),
			slackImprovement(out.GBA.SignoffTNS, out.MGBA.SignoffTNS),
			improvement(out.GBA.Area, out.MGBA.Area),
			improvement(out.GBA.Leakage, out.MGBA.Leakage),
			improvement(float64(out.GBA.Buffers), float64(out.MGBA.Buffers)),
			improvement(float64(out.GBA.Upsized+out.GBA.BuffersAdded),
				float64(out.MGBA.Upsized+out.MGBA.BuffersAdded)),
		}
		t.AddRow(out.Design,
			report.F(vals[0], 2), report.F(vals[1], 2), report.F(vals[2], 2),
			report.F(vals[3], 2), report.F(vals[4], 2), report.F(vals[5], 2))
		for i := range sum {
			sum[i] += vals[i]
		}
	}
	if len(outs) > 0 {
		n := float64(len(outs))
		t.AddRow("Avg.", report.F(sum[0]/n, 2), report.F(sum[1]/n, 2),
			report.F(sum[2]/n, 2), report.F(sum[3]/n, 2), report.F(sum[4]/n, 2),
			report.F(sum[5]/n, 2))
	}
	t.AddNote("positive = mGBA flow better; paper averages: WNS 1.20, TNS 0.65, area 5.58, leakage 14.77, buffer 4.84")
	t.AddNote("WNS/TNS measured at PBA sign-off for both flows; 'fixes' counts accepted timing repairs,")
	t.AddNote("the over-design mechanism behind the paper's area/leakage gains")
	return t, outs, nil
}

// Table5 compares end-to-end flow runtimes, decomposing the mGBA flow into
// post-route optimization and calibration time.
func Table5(e *Env) (*report.Table, error) {
	t := report.New("Table 5: runtime (s) of the closure flow with GBA and with mGBA embedded",
		"design", "GBA flow", "mGBA post-route", "mGBA calib", "mGBA total", "speedup")
	var sumG, sumP, sumC, sumT float64
	n := 0
	for _, cfg := range e.SuiteConfigs() {
		out, err := e.runClosure(cfg)
		if err != nil {
			return nil, err
		}
		gba := out.GBA.Elapsed.Seconds()
		calib := out.MGBA.CalibElapsed.Seconds()
		post := out.MGBA.Elapsed.Seconds() - calib
		total := out.MGBA.Elapsed.Seconds()
		t.AddRow(out.Design, report.F(gba, 3), report.F(post, 3), report.F(calib, 3),
			report.F(total, 3), report.F(gba/math.Max(total, 1e-9), 2))
		sumG += gba
		sumP += post
		sumC += calib
		sumT += total
		n++
	}
	if n > 0 {
		t.AddRow("Avg.", report.F(sumG/float64(n), 3), report.F(sumP/float64(n), 3),
			report.F(sumC/float64(n), 3), report.F(sumT/float64(n), 3),
			report.F(sumG/math.Max(sumT, 1e-9), 2))
	}
	t.AddNote("paper average speedup: 1.21x; at laptop scale the calibration is not amortized the way")
	t.AddNote("it is on >100M-path industrial designs, so compare the post-route column against the GBA flow")
	return t, nil
}
