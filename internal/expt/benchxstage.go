package expt

import (
	"context"
	"fmt"
	"testing"

	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/report"
	"mgba/internal/sta"
)

// XStagePairBench is one row of the cross-stage benchmark: a full cold
// calibration of the D3 stand-in under one view pair, with the accuracy
// the fit reaches against that pair's golden view.
type XStagePairBench struct {
	Pair    string `json:"pair"`
	Paths   int    `json:"paths"`
	Columns int    `json:"columns"`
	FitNsOp int64  `json:"fit_ns_per_op"`

	CheapPassRatio float64 `json:"cheap_pass_ratio"`
	MGBAPassRatio  float64 `json:"mgba_pass_ratio"`
	CheapMSE       float64 `json:"cheap_mse"`
	MGBAMSE        float64 `json:"mgba_mse"`
	CheapOptimism  int     `json:"cheap_optimism"`
	MGBAOptimism   int     `json:"mgba_optimism"`
}

// XStageBench backs the BENCH_xstage.json artifact: the same design
// calibrated under every registered view pair, so the cross-stage pair's
// fit cost and accuracy are tracked next to the paper's GBA↔PBA baseline.
type XStageBench struct {
	Design string            `json:"design"`
	Gates  int               `json:"gates"`
	Pairs  []XStagePairBench `json:"pairs"`

	Mem MemStats `json:"mem"`
}

// BenchXStage times a cold calibration of the D3 stand-in under each
// registered view pair and reports pass ratio, MSE and residual optimism
// of the cheap and fitted views against that pair's golden slacks. On the
// preroute pair the fit must end with zero optimism — the strict Eq. (5)
// lift the pair forces — which this artifact makes a tracked number
// rather than a one-time test assertion.
func BenchXStage(e *Env) (*report.Table, *XStageBench, error) {
	cfg := gen.Suite()[2] // D3
	if e.Quick {
		cfg.Gates, cfg.FFs = cfg.Gates/4, cfg.FFs/4
	}
	d, err := gen.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	g, err := graph.Build(d)
	if err != nil {
		return nil, nil, err
	}
	ctx := context.Background()
	res := &XStageBench{Design: cfg.Name, Gates: len(d.Instances)}

	for _, pair := range core.ViewPairNames() {
		e.logf("benchxstage: timing %s calibration on %s...\n", pair, cfg.Name)
		opt := core.DefaultOptions()
		opt.ViewPair = pair
		sess := engine.NewSession(g)
		var last *core.Model
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := core.CalibrateWithSession(ctx, sess, sta.DefaultConfig(), opt)
				if err != nil {
					b.Fatal(err)
				}
				if last != nil {
					last.MGBA.Release()
					if last.GBA != last.MGBA {
						last.GBA.Release()
					}
				}
				last = m
			}
		})
		if last == nil {
			return nil, nil, fmt.Errorf("expt: benchxstage produced no model for pair %s", pair)
		}
		cheap, err := last.Evaluate("cheap")
		if err != nil {
			return nil, nil, err
		}
		mgba, err := last.Evaluate("mgba")
		if err != nil {
			return nil, nil, err
		}
		res.Pairs = append(res.Pairs, XStagePairBench{
			Pair:           pair,
			Paths:          cheap.Paths,
			Columns:        len(last.Columns),
			FitNsOp:        br.NsPerOp(),
			CheapPassRatio: cheap.PassRatio,
			MGBAPassRatio:  mgba.PassRatio,
			CheapMSE:       cheap.MSE,
			MGBAMSE:        mgba.MSE,
			CheapOptimism:  cheap.Optimism,
			MGBAOptimism:   mgba.Optimism,
		})
		last.MGBA.Release()
		if last.GBA != last.MGBA {
			last.GBA.Release()
		}
	}

	t := report.New(fmt.Sprintf("Cross-stage calibration per view pair (%s, %d gates)", res.Design, res.Gates),
		"pair", "paths", "columns", "fit ns/op", "pass cheap", "pass mgba", "mse cheap", "mse mgba", "optim cheap", "optim mgba")
	for _, p := range res.Pairs {
		t.AddRow(p.Pair, fmt.Sprintf("%d", p.Paths), fmt.Sprintf("%d", p.Columns),
			fmt.Sprintf("%d", p.FitNsOp),
			report.Pct(p.CheapPassRatio, 2), report.Pct(p.MGBAPassRatio, 2),
			report.F(p.CheapMSE*1e3, 3), report.F(p.MGBAMSE*1e3, 3),
			fmt.Sprintf("%d", p.CheapOptimism), fmt.Sprintf("%d", p.MGBAOptimism))
	}
	t.AddNote("mse in 1e-3; optimism counts paths whose model slack beats golden beyond the eps guard")
	t.AddNote("the preroute pair fits against a deterministically routed twin and must end with zero mgba optimism")
	res.Mem = CaptureMem()
	return t, res, nil
}
