package expt

import "runtime"

// MemStats snapshots the process memory state and scheduler width for a
// bench artifact. Every BENCH_*.json embeds one (taken as the benchmark
// returns), so artifact diffs across commits carry the memory context the
// timings were measured under.
type MemStats struct {
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	SysBytes       uint64 `json:"sys_bytes"`
	GOMAXPROCS     int    `json:"gomaxprocs"`
}

// CaptureMem reads the runtime memory statistics into a MemStats.
func CaptureMem() MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemStats{
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		SysBytes:       ms.Sys,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}
}
