package expt

import (
	"fmt"
	"strings"
	"testing"

	"mgba/internal/closure"
	"mgba/internal/fixtures"
	"mgba/internal/gen"
	"mgba/internal/netlist"
	"mgba/internal/report"
)

// ClosureMixBench is one row of the closure-throughput benchmark: the full
// flow on one design under one transform registry. Throughput is accepted
// transforms per second of flow wall time; the recalibration share is the
// fraction of that wall time the mGBA calibrator consumed.
type ClosureMixBench struct {
	Design     string         `json:"design"`
	Transforms string         `json:"transforms"` // registry, comma-separated
	Gates      int            `json:"gates"`
	NsOp       int64          `json:"ns_per_op"`
	Accepted   int            `json:"accepted_transforms"`
	Kinds      map[string]int `json:"kinds"`

	TransformsPerSec float64 `json:"transforms_per_sec"`
	RecalShare       float64 `json:"recalibration_share"`
}

// ClosureBench backs the BENCH_closure.json artifact: flow throughput per
// transform mix, from the historical sizing registry to the full registry
// with connectivity-changing retiming (whose accepted moves each force a
// session rebuild plus an incremental recalibration rebind).
type ClosureBench struct {
	Timer string            `json:"timer"`
	Mixes []ClosureMixBench `json:"mixes"`

	Mem MemStats `json:"mem"`
}

// BenchClosure measures the closure flow end to end per transform mix: the
// default registry on a generated design and on the buffer fixture, and
// the retiming registry on the register-bound pipeline.
func BenchClosure(e *Env) (*report.Table, *ClosureBench, error) {
	toy := gen.Toy()
	if !e.Quick {
		toy.Gates, toy.FFs = toy.Gates*2, toy.FFs*2
	}
	mixes := []struct {
		design string
		build  func() (*netlist.Design, error)
		names  []string
	}{
		{toy.Name, func() (*netlist.Design, error) { return gen.Generate(toy) }, nil},
		{"bufcase", fixtures.BufferCase, nil},
		{"retimetoy", func() (*netlist.Design, error) { return fixtures.RetimePipeline(4) },
			[]string{"upsize", "buffer", "retime"}},
	}

	res := &ClosureBench{Timer: closure.TimerMGBA.String()}
	for _, mix := range mixes {
		label := strings.Join(mix.names, ",")
		if mix.names == nil {
			label = "upsize,buffer"
		}
		e.logf("benchclosure: timing %s with %s...\n", mix.design, label)
		var last *closure.Result
		var gates int
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, err := mix.build()
				if err != nil {
					b.Fatal(err)
				}
				gates = len(d.Instances)
				opt := closure.DefaultOptions(closure.TimerMGBA)
				opt.Transforms = mix.names
				b.StartTimer()
				r, err := closure.Optimize(d, opt)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
		})
		if last == nil {
			return nil, nil, fmt.Errorf("expt: benchclosure produced no result for %s", mix.design)
		}
		row := ClosureMixBench{
			Design:     mix.design,
			Transforms: label,
			Gates:      gates,
			NsOp:       br.NsPerOp(),
			Accepted:   last.Transforms,
			Kinds:      last.Kinds,
		}
		if br.NsPerOp() > 0 {
			row.TransformsPerSec = float64(last.Transforms) / (float64(br.NsPerOp()) / 1e9)
		}
		if last.Elapsed > 0 {
			row.RecalShare = float64(last.CalibElapsed) / float64(last.Elapsed)
		}
		res.Mixes = append(res.Mixes, row)
	}

	t := report.New("Closure-flow throughput per transform mix (mGBA timer)",
		"design", "transforms", "gates", "accepted", "ns/op", "transforms/s", "recal share")
	for _, m := range res.Mixes {
		t.AddRow(m.Design, m.Transforms, fmt.Sprintf("%d", m.Gates),
			fmt.Sprintf("%d", m.Accepted), fmt.Sprintf("%d", m.NsOp),
			fmt.Sprintf("%.1f", m.TransformsPerSec), fmt.Sprintf("%.3f", m.RecalShare))
	}
	t.AddNote("recal share is calibrator wall time over flow wall time; retimes force a session rebuild + calibrator rebind each")
	res.Mem = CaptureMem()
	return t, res, nil
}
