package expt

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/netio"
	"mgba/internal/report"
	"mgba/internal/serve"
)

// CalibdLevelBench is one row of the daemon benchmark: the serving
// latency distribution at one client concurrency level. Latencies cover
// accepted batch requests end to end (HTTP round trip, queueing on the
// session's writer lock, incremental recalibration); rejected requests
// are the 429s backpressure issued while the level ran.
type CalibdLevelBench struct {
	Clients  int   `json:"clients"`
	Requests int   `json:"accepted_requests"`
	Rejected int64 `json:"rejected_429"`
	P50NS    int64 `json:"p50_ns"`
	P99NS    int64 `json:"p99_ns"`
	WallNS   int64 `json:"wall_ns"`
}

// CalibdBench backs the BENCH_calibd.json artifact: recalibrate-request
// latency through the full daemon stack on the D3 stand-in, as client
// concurrency ramps past the in-flight budget.
type CalibdBench struct {
	Design      string             `json:"design"`
	Gates       int                `json:"gates"`
	MaxInFlight int                `json:"max_in_flight"`
	MaxQueue    int                `json:"max_queue"`
	Levels      []CalibdLevelBench `json:"levels"`

	Mem MemStats `json:"mem"`
}

// BenchCalibd measures the calibration daemon end to end: one session on
// the D3 stand-in, hammered with single-op sizing batches by 1, 8 and 32
// concurrent clients. One session means the single-writer lock is the
// bottleneck by construction — the benchmark shows what the backpressure
// envelope does with that: how request latency stretches with queueing
// and how many requests are shed with 429 + Retry-After instead of
// piling up.
func BenchCalibd(e *Env) (*report.Table, *CalibdBench, error) {
	cfg := gen.Suite()[2] // D3
	if e.Quick {
		cfg.Gates, cfg.FFs = cfg.Gates/4, cfg.FFs/4
	}
	d, err := gen.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	g, err := graph.Build(d)
	if err != nil {
		return nil, nil, err
	}
	var gates []int
	for id, inst := range d.Instances {
		if inst.IsFF() || inst.Dead || g.IsClock(id) || d.Lib.Upsize(inst.Cell) == nil {
			continue
		}
		gates = append(gates, id)
	}
	if len(gates) < 32 {
		return nil, nil, fmt.Errorf("expt: benchcalibd: only %d upsizable gates", len(gates))
	}

	scfg := serve.DefaultConfig()
	scfg.SnapshotDir = "" // memory-only: measure serving, not the disk
	sv, err := serve.New(scfg)
	if err != nil {
		return nil, nil, err
	}
	ts := httptest.NewServer(sv)
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = sv.Shutdown(ctx)
	}()

	var buf bytes.Buffer
	if err := netio.Save(&buf, d); err != nil {
		return nil, nil, err
	}
	create, err := json.Marshal(map[string]any{"id": "bench", "design_json": json.RawMessage(buf.Bytes())})
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(create))
	if err != nil {
		return nil, nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, nil, fmt.Errorf("expt: benchcalibd: create returned %s", resp.Status)
	}

	totalOps := 48
	if e.Quick {
		totalOps = 12
	}
	res := &CalibdBench{
		Design:      cfg.Name,
		Gates:       len(d.Instances),
		MaxInFlight: scfg.MaxInFlight,
		MaxQueue:    scfg.MaxQueue,
	}
	for _, clients := range []int{1, 8, 32} {
		ops := totalOps / clients
		if ops == 0 {
			ops = 1
		}
		e.logf("benchcalibd: %d clients x %d ops on %s...\n", clients, ops, cfg.Name)
		level, err := runCalibdLevel(ts.URL, gates, clients, ops)
		if err != nil {
			return nil, nil, err
		}
		res.Levels = append(res.Levels, *level)
	}

	t := report.New("Calibration daemon recalibrate latency under concurrency ("+cfg.Name+" stand-in)",
		"clients", "accepted", "rejected(429)", "p50 ms", "p99 ms", "wall ms")
	for _, l := range res.Levels {
		t.AddRow(fmt.Sprintf("%d", l.Clients), fmt.Sprintf("%d", l.Requests),
			fmt.Sprintf("%d", l.Rejected),
			fmt.Sprintf("%.2f", float64(l.P50NS)/1e6), fmt.Sprintf("%.2f", float64(l.P99NS)/1e6),
			fmt.Sprintf("%.1f", float64(l.WallNS)/1e6))
	}
	t.AddNote(fmt.Sprintf("one session (single-writer), in-flight budget %d, per-session queue %d; rejected requests got 429 + Retry-After and were retried",
		scfg.MaxInFlight, scfg.MaxQueue))
	res.Mem = CaptureMem()
	return t, res, nil
}

// runCalibdLevel drives one concurrency level. Every client alternates
// upsize/downsize on its own gate (so the design never walks off the
// drive ladder and every batch dirties the netlist), retrying 429s after
// the server's hint until accepted.
func runCalibdLevel(base string, gates []int, clients, ops int) (*CalibdLevelBench, error) {
	var rejected atomic.Int64
	latencies := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	client := &http.Client{Timeout: 5 * time.Minute}
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gate := gates[c%len(gates)]
			<-start
			for i := 0; i < ops; i++ {
				op := "upsize"
				if i%2 == 1 {
					op = "downsize"
				}
				body, _ := json.Marshal(map[string]any{
					"ops": []map[string]any{{"op": op, "instance": gate}},
				})
				for attempt := 0; ; attempt++ {
					if attempt > 10*ops+100 {
						errs[c] = fmt.Errorf("expt: benchcalibd: client %d starved after %d attempts", c, attempt)
						return
					}
					reqStart := time.Now()
					resp, err := client.Post(base+"/v1/sessions/bench/batch", "application/json", bytes.NewReader(body))
					if err != nil {
						errs[c] = err
						return
					}
					var eb struct {
						RetryAfterMS int64 `json:"retry_after_ms"`
					}
					err = json.NewDecoder(resp.Body).Decode(&eb)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						latencies[c] = append(latencies[c], time.Since(reqStart))
					case http.StatusTooManyRequests, http.StatusServiceUnavailable:
						rejected.Add(1)
						backoff := time.Duration(eb.RetryAfterMS) * time.Millisecond
						if err != nil || backoff <= 0 {
							backoff = 10 * time.Millisecond
						}
						if backoff > 100*time.Millisecond {
							backoff = 100 * time.Millisecond
						}
						time.Sleep(backoff)
						continue
					default:
						errs[c] = fmt.Errorf("expt: benchcalibd: client %d got %s", c, resp.Status)
						return
					}
					break
				}
			}
		}(c)
	}
	close(start)
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) == 0 {
		return nil, fmt.Errorf("expt: benchcalibd: no accepted requests at %d clients", clients)
	}
	pct := func(p int) int64 {
		idx := len(all) * p / 100
		if idx >= len(all) {
			idx = len(all) - 1
		}
		return int64(all[idx])
	}
	return &CalibdLevelBench{
		Clients:  clients,
		Requests: len(all),
		Rejected: rejected.Load(),
		P50NS:    pct(50),
		P99NS:    pct(99),
		WallNS:   int64(wall),
	}, nil
}
