package expt

import (
	"context"
	"fmt"
	"testing"

	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/report"
	"mgba/internal/sta"
)

// MCMMSetBench is one row of the multi-corner benchmark: the same corner
// set calibrated the shared way (one enumeration feeding every corner's
// fit) and the naive way (one full single-corner calibration per corner).
type MCMMSetBench struct {
	Corners         []string `json:"corners"`
	SharedNsOp      int64    `json:"shared_ns_per_op"`
	IndependentNsOp int64    `json:"independent_ns_per_op"`
	Speedup         float64  `json:"speedup"`

	Paths       int     `json:"paths"`
	WorstWNS    float64 `json:"worst_wns_ps"`
	MaxOptimism int     `json:"max_corner_optimism"`
}

// MCMMBench backs the BENCH_mcmm.json artifact: shared-enumeration
// multi-corner calibration against N independent cold calibrations on the
// D3 stand-in, at N = 1, 2 and 4 corners. The speedup at N >= 2 is the
// framework's amortization claim made a tracked number; the per-corner
// optimism column pins the Eq. (5) guard at every N.
type MCMMBench struct {
	Design string         `json:"design"`
	Gates  int            `json:"gates"`
	Sets   []MCMMSetBench `json:"sets"`

	Mem MemStats `json:"mem"`
}

// mcmmCornerSets are the benchmark's corner sets: the base corner alone
// (the single-corner pipeline), plus margin-scaled/uncertainty-shifted
// companions at N=2 and N=4.
func mcmmCornerSets() [][]core.CornerSpec {
	typ := core.CornerSpec{Name: "typ"}
	slow := core.CornerSpec{Name: "slow", DerateScale: 1.15, Uncertainty: 10}
	fast := core.CornerSpec{Name: "fast", DerateScale: 0.85, Uncertainty: 5}
	hot := core.CornerSpec{Name: "hot", DerateScale: 1.3, Uncertainty: 20}
	return [][]core.CornerSpec{
		{typ},
		{typ, slow},
		{typ, slow, fast, hot},
	}
}

// releaseMCMM returns a model's caller-owned analyses to the session pool
// (the baseline GBA stays with the calibrator, which advances it).
func releaseMCMM(m *core.Model) {
	if m == nil {
		return
	}
	for _, cf := range m.Corners {
		// Corners[0] mirrors the model's own MGBA; extra corners own theirs.
		if cf != nil && cf.MGBA != nil && cf.MGBA != m.MGBA && cf.MGBA != m.GBA {
			cf.MGBA.Release()
		}
	}
	if m.MGBA != nil && m.MGBA != m.GBA {
		m.MGBA.Release()
	}
}

// BenchMCMM times shared-enumeration multi-corner calibration against N
// independent single-corner calibrations of the same corners, on the D3
// stand-in. Both arms run persistent calibrators with the warm start reset
// each iteration, so every measured pass is a genuinely cold pipeline.
func BenchMCMM(e *Env) (*report.Table, *MCMMBench, error) {
	cfg := gen.Suite()[2] // D3
	if e.Quick {
		cfg.Gates, cfg.FFs = cfg.Gates/4, cfg.FFs/4
	}
	d, err := gen.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	g, err := graph.Build(d)
	if err != nil {
		return nil, nil, err
	}
	ctx := context.Background()
	res := &MCMMBench{Design: cfg.Name, Gates: len(d.Instances)}

	for _, set := range mcmmCornerSets() {
		names := core.CornerNames(set)
		e.logf("benchmcmm: %d corners (%v) on %s: shared enumeration...\n", len(set), names, cfg.Name)

		// Shared arm: one calibrator carrying the whole corner set.
		sharedSess := engine.NewSession(g)
		sharedOpt := core.DefaultOptions()
		sharedOpt.Corners = set
		// Forced on at N >= 2 anyway; pinning it here keeps the N=1 row and
		// the independent arm fitting the same (never-optimistic) way.
		sharedOpt.StrictSafety = true
		sharedCal, err := core.NewCalibrator(sharedSess, sta.DefaultConfig(), sharedOpt)
		if err != nil {
			return nil, nil, err
		}
		var last *core.Model
		sharedBr := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sharedCal.SetWarmWeights(nil)
				sharedCal.Invalidate()
				m, err := sharedCal.Calibrate(ctx)
				if err != nil {
					b.Fatal(err)
				}
				releaseMCMM(last)
				last = m
			}
		})
		if last == nil {
			return nil, nil, fmt.Errorf("expt: benchmcmm produced no model for %v", names)
		}

		e.logf("benchmcmm: %d corners: independent calibrations...\n", len(set))
		// Independent arm: one single-corner calibrator per corner, each
		// paying its own enumeration.
		cals := make([]*core.Calibrator, len(set))
		for i, spec := range set {
			opt := core.DefaultOptions()
			opt.Corners = []core.CornerSpec{spec}
			opt.StrictSafety = true
			sess := engine.NewSession(g)
			if cals[i], err = core.NewCalibrator(sess, sta.DefaultConfig(), opt); err != nil {
				return nil, nil, err
			}
		}
		indepBr := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, cal := range cals {
					cal.SetWarmWeights(nil)
					cal.Invalidate()
					m, err := cal.Calibrate(ctx)
					if err != nil {
						b.Fatal(err)
					}
					releaseMCMM(m)
				}
			}
		})

		maxOpt := 0
		if len(last.Corners) == 0 {
			m, err := last.Evaluate("mgba")
			if err != nil {
				return nil, nil, err
			}
			maxOpt = m.Optimism
		}
		for _, cf := range last.Corners {
			cm, err := cf.Evaluate("mgba", sharedOpt.Epsilon)
			if err != nil {
				return nil, nil, err
			}
			if cm.Optimism > maxOpt {
				maxOpt = cm.Optimism
			}
		}
		worst := last.MGBA.WNS
		if last.WorstSlack != nil {
			worst = last.WorstWNS
		}
		res.Sets = append(res.Sets, MCMMSetBench{
			Corners:         names,
			SharedNsOp:      sharedBr.NsPerOp(),
			IndependentNsOp: indepBr.NsPerOp(),
			Speedup:         float64(indepBr.NsPerOp()) / float64(sharedBr.NsPerOp()),
			Paths:           len(last.Selection.Paths),
			WorstWNS:        worst,
			MaxOptimism:     maxOpt,
		})
		releaseMCMM(last)
	}

	t := report.New(fmt.Sprintf("Multi-corner calibration: shared enumeration vs independent (%s, %d gates)", res.Design, res.Gates),
		"corners", "shared ns/op", "independent ns/op", "speedup", "paths", "worst WNS", "max optimism")
	for _, s := range res.Sets {
		t.AddRow(fmt.Sprintf("%d", len(s.Corners)),
			fmt.Sprintf("%d", s.SharedNsOp),
			fmt.Sprintf("%d", s.IndependentNsOp),
			report.F(s.Speedup, 2)+"x",
			fmt.Sprintf("%d", s.Paths),
			report.F(s.WorstWNS, 1),
			fmt.Sprintf("%d", s.MaxOptimism))
	}
	t.AddNote("shared: one path enumeration on the selection corner feeds every corner's Eq. (9) fit")
	t.AddNote("independent: each corner pays its own enumeration and golden retiming (N separate cold calibrations)")
	t.AddNote("max optimism counts model-beats-golden paths beyond the eps guard, worst corner — must be 0")
	res.Mem = CaptureMem()
	return t, res, nil
}
