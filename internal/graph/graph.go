// Package graph derives the timing graph of a design: data-edge adjacency,
// topological order, clock-tree chains, and the two worst-casing DPs that
// feed graph-based AOCV derating — minimum cell depth through each gate and
// the conservative launch/capture bounding boxes that bound the endpoint
// distance of any path through a gate.
//
// The graph is purely structural; delay numbers live in internal/sta and
// internal/pba, which both consume this package.
//
// Layout: adjacency is stored CSR-style — one flat edge arena per direction
// plus int32 offsets per instance — instead of a slice-of-slices, and every
// index field is an int32. At the 100k–1M-gate scale this halves the hot
// adjacency footprint and removes per-node allocations; the price is a hard
// 2^31-1 ceiling on instances, nets and edges, which Build enforces as a
// checked error (see DESIGN.md §11).
package graph

import (
	"fmt"
	"math"

	"mgba/internal/cells"
	"mgba/internal/netlist"
)

// Edge is one data arc from the output of instance From to input pin Pin of
// instance To, across net Net. Arcs into a flip-flop's D pin are the path
// endpoints; arcs out of a flip-flop's Q pin are the path startpoints.
type Edge struct {
	From, To, Net, Pin int32
}

// indexLimit is the largest count (instances, nets, edges) the int32 index
// contract admits. A package variable rather than a constant so tests can
// lower it to exercise the overflow error without building 2^31 objects.
var indexLimit = int64(math.MaxInt32)

// Graph is the structural timing graph of one design. It becomes stale when
// the design's connectivity changes (buffer insertion); rebuild it then.
// Gate resizing does not change the structure.
type Graph struct {
	D *netlist.Design

	Topo []int32 // data instances (FFs + combinational) in topological order

	// ClockChain[i] lists, for D.FFs[i], the clock-buffer instance IDs from
	// the clock root down to the FF's CK pin (root-most first). FFs on the
	// same clock leaf net share one backing slice.
	ClockChain [][]int32

	// CSR adjacency: the edges leaving (entering) instance v are
	// fanoutEdges[fanoutOff[v]:fanoutOff[v+1]] (resp. fanin), in the exact
	// order the historical per-node append produced them.
	fanoutEdges []Edge
	fanoutOff   []int32
	faninEdges  []Edge
	faninOff    []int32

	ffPos      []int32     // instance ID -> index into D.FFs, -1 for non-FFs
	isClock    []bool      // instance is part of the clock tree
	clockIndex *ClockIndex // lazy CRPR reachability index
}

// Fanout returns the data edges leaving instance v's output. Shared
// storage; callers must not modify.
func (g *Graph) Fanout(v int) []Edge { return g.fanoutEdges[g.fanoutOff[v]:g.fanoutOff[v+1]] }

// Fanin returns the data edges entering instance v's input pins. Shared
// storage; callers must not modify.
func (g *Graph) Fanin(v int) []Edge { return g.faninEdges[g.faninOff[v]:g.faninOff[v+1]] }

// NumEdges returns the data-arc count.
func (g *Graph) NumEdges() int { return len(g.fanoutEdges) }

// Build constructs the graph and validates the data DAG. The design should
// already pass netlist.Validate; Build re-detects combinational cycles via
// its topological sort and rejects clock buffers used as data drivers. It
// also enforces the int32 index contract: designs whose instance, net or
// edge count exceeds 2^31-1 are rejected with an error instead of silently
// corrupting indices.
func Build(d *netlist.Design) (*Graph, error) {
	if int64(len(d.Instances)) > indexLimit || int64(len(d.Nets)) > indexLimit {
		return nil, fmt.Errorf("graph: design exceeds int32 index ceiling (%d instances, %d nets, limit %d)",
			len(d.Instances), len(d.Nets), indexLimit)
	}
	n := len(d.Instances)
	g := &Graph{
		D:       d,
		ffPos:   make([]int32, n),
		isClock: make([]bool, n),
	}
	for i := range g.ffPos {
		g.ffPos[i] = -1
	}
	for i, ff := range d.FFs {
		g.ffPos[ff] = int32(i)
	}
	for _, in := range d.Instances {
		if !in.Dead && in.Cell.Kind == cells.ClkBuf {
			g.isClock[in.ID] = true
		}
	}
	// Data edges, two passes over the identical sink scan: the first counts
	// per-instance degrees, the second fills the CSR arenas through cursor
	// slices — so each node's edge order matches the historical per-node
	// append exactly.
	var nEdges int64
	emit := func(fill bool) error {
		for _, in := range d.Instances {
			if in.Dead || g.isClock[in.ID] || in.Output < 0 {
				continue
			}
			net := d.Nets[in.Output]
			for _, s := range net.Sinks {
				sink := d.Instances[s]
				if sink.Clock == net.ID && sink.IsFF() {
					continue // CK pin, not a data arc
				}
				if g.isClock[s] {
					return fmt.Errorf("graph: data net %d drives clock buffer %s", net.ID, sink.Name)
				}
				for pin, inNet := range sink.Inputs {
					if inNet == net.ID {
						if !fill {
							g.fanoutOff[in.ID+1]++
							g.faninOff[s+1]++
							nEdges++
							continue
						}
						e := Edge{From: int32(in.ID), To: int32(s), Net: int32(net.ID), Pin: int32(pin)}
						g.fanoutEdges[g.fanoutOff[in.ID]] = e
						g.fanoutOff[in.ID]++
						g.faninEdges[g.faninOff[s]] = e
						g.faninOff[s]++
					}
				}
			}
		}
		return nil
	}
	g.fanoutOff = make([]int32, n+1)
	g.faninOff = make([]int32, n+1)
	if err := emit(false); err != nil {
		return nil, err
	}
	if nEdges > indexLimit {
		return nil, fmt.Errorf("graph: design exceeds int32 index ceiling (%d data edges, limit %d)",
			nEdges, indexLimit)
	}
	for v := 0; v < n; v++ {
		g.fanoutOff[v+1] += g.fanoutOff[v]
		g.faninOff[v+1] += g.faninOff[v]
	}
	g.fanoutEdges = make([]Edge, nEdges)
	g.faninEdges = make([]Edge, nEdges)
	// The fill pass advances the offsets as cursors; shift them back after.
	if err := emit(true); err != nil {
		return nil, err
	}
	for v := n; v > 0; v-- {
		g.fanoutOff[v] = g.fanoutOff[v-1]
		g.faninOff[v] = g.faninOff[v-1]
	}
	g.fanoutOff[0], g.faninOff[0] = 0, 0
	// Reject clock buffers reading from data cells.
	for _, in := range d.Instances {
		if in.Dead || !g.isClock[in.ID] {
			continue
		}
		src := d.Nets[in.Inputs[0]]
		if src.Driver >= 0 && !g.isClock[src.Driver] {
			return nil, fmt.Errorf("graph: clock buffer %s driven by data cell", in.Name)
		}
	}
	if err := g.topoSort(); err != nil {
		return nil, err
	}
	if err := g.buildClockChains(); err != nil {
		return nil, err
	}
	return g, nil
}

// topoSort orders data instances with Kahn's algorithm. Edges into a
// flip-flop do not count toward its in-degree: registers are path breaks.
func (g *Graph) topoSort() error {
	d := g.D
	indeg := make([]int32, len(d.Instances))
	nData := 0
	for _, in := range d.Instances {
		if in.Dead || g.isClock[in.ID] {
			continue
		}
		nData++
		if in.IsFF() {
			continue // sources regardless of D-pin fanin
		}
		indeg[in.ID] = int32(len(g.Fanin(in.ID)))
	}
	queue := make([]int32, 0, nData)
	for _, in := range d.Instances {
		if !in.Dead && !g.isClock[in.ID] && indeg[in.ID] == 0 {
			queue = append(queue, int32(in.ID))
		}
	}
	g.Topo = g.Topo[:0]
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.Topo = append(g.Topo, v)
		for _, e := range g.Fanout(int(v)) {
			if d.Instances[e.To].IsFF() {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(g.Topo) != nData {
		return fmt.Errorf("graph: combinational cycle (%d of %d ordered)", len(g.Topo), nData)
	}
	return nil
}

func (g *Graph) buildClockChains() error {
	d := g.D
	g.ClockChain = make([][]int32, len(d.FFs))
	// FFs sharing a clock leaf net share the entire chain; memoize per net
	// so a 100k-FF design stores one chain per leaf, not one per FF.
	byNet := make(map[int][]int32)
	for i, ffID := range d.FFs {
		net := d.Instances[ffID].Clock
		if chain, ok := byNet[net]; ok {
			g.ClockChain[i] = chain
			continue
		}
		var chain []int32
		cur := net
		for steps := 0; cur != d.ClockRoot; steps++ {
			if steps > len(d.Instances) {
				return fmt.Errorf("graph: clock cycle at FF %s", d.Instances[ffID].Name)
			}
			drv := d.Nets[cur].Driver
			if drv < 0 {
				return fmt.Errorf("graph: FF %s clock dangles at net %d", d.Instances[ffID].Name, cur)
			}
			chain = append(chain, int32(drv))
			cur = d.Instances[drv].Inputs[0]
		}
		// Reverse to root-first order.
		for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
			chain[l], chain[r] = chain[r], chain[l]
		}
		byNet[net] = chain
		g.ClockChain[i] = chain
	}
	return nil
}

// FFIndex returns the D.FFs position of an FF instance ID, or -1.
func (g *Graph) FFIndex(instID int) int {
	if instID < 0 || instID >= len(g.ffPos) {
		return -1
	}
	return int(g.ffPos[instID])
}

// IsClock reports whether the instance belongs to the clock tree.
func (g *Graph) IsClock(instID int) bool { return g.isClock[instID] }

// Endpoints returns the instance IDs of flip-flops whose D pin is driven by
// a data arc — the timing endpoints.
func (g *Graph) Endpoints() []int {
	var out []int
	for _, ff := range g.D.FFs {
		if len(g.Fanin(ff)) > 0 {
			out = append(out, ff)
		}
	}
	return out
}

// CommonClockDepth returns the number of shared clock buffers on the root
// prefix of the launch and capture FFs' clock chains — the quantity CRPR
// credits. Both arguments are positions into D.FFs.
func (g *Graph) CommonClockDepth(launchIdx, captureIdx int) int {
	a, b := g.ClockChain[launchIdx], g.ClockChain[captureIdx]
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// ClockIndex supports clock-reconvergence pessimism analysis: it groups
// flip-flops by clock leaf (the net feeding their CK pins — FFs on one
// leaf share the entire clock chain), knows the shared-prefix length of
// every leaf pair, and records which launch leaves reach each endpoint.
// GBA uses it to apply the industry-standard *conservative* CRPR credit:
// the smallest credit over every launch leaf that can reach the endpoint.
type ClockIndex struct {
	LeafOfFF []int32   // per D.FFs position: dense leaf id
	Chains   [][]int32 // per leaf id: clock-buffer chain, root first

	// common[a*nl+b] is the shared root-prefix length of leaf chains a and
	// b, stored flat as uint16 (chain depth is bounded far below 65535; the
	// builder enforces it). nl×nl entries at 2 bytes keeps the pair table
	// small even at thousands of leaves.
	common []uint16
	nl     int

	// LaunchLeaves[fi] lists the distinct leaf ids of launch FFs with a
	// data path into endpoint fi (a D.FFs position). The per-endpoint
	// slices share one backing arena.
	LaunchLeaves [][]int32
}

// CommonLen returns the shared root-prefix length of leaf chains a and b.
func (ci *ClockIndex) CommonLen(a, b int) int { return int(ci.common[a*ci.nl+b]) }

// NumLeaves returns the number of distinct clock leaves.
func (ci *ClockIndex) NumLeaves() int { return ci.nl }

// ClockIndex computes (and caches) the clock index; it depends only on
// structure, so one index serves any number of timing analyses.
func (g *Graph) ClockIndex() *ClockIndex {
	if g.clockIndex != nil {
		return g.clockIndex
	}
	d := g.D
	ci := &ClockIndex{LeafOfFF: make([]int32, len(d.FFs))}
	leafID := map[int]int32{} // clock net -> dense id
	for fi, ffID := range d.FFs {
		net := d.Instances[ffID].Clock
		id, ok := leafID[net]
		if !ok {
			id = int32(len(ci.Chains))
			leafID[net] = id
			ci.Chains = append(ci.Chains, g.ClockChain[fi])
		}
		ci.LeafOfFF[fi] = id
	}
	nl := len(ci.Chains)
	ci.nl = nl
	for _, chain := range ci.Chains {
		if len(chain) > math.MaxUint16 {
			panic(fmt.Sprintf("graph: clock chain depth %d exceeds uint16 prefix table", len(chain)))
		}
	}
	ci.common = make([]uint16, nl*nl)
	for a := 0; a < nl; a++ {
		for b := 0; b < nl; b++ {
			n := 0
			for n < len(ci.Chains[a]) && n < len(ci.Chains[b]) && ci.Chains[a][n] == ci.Chains[b][n] {
				n++
			}
			ci.common[a*nl+b] = uint16(n)
		}
	}
	// Launch-leaf reachability over the data graph, as bitsets backed by
	// one arena (O(V·nl/64) transient, freed when this function returns).
	words := (nl + 63) / 64
	arena := make([]uint64, len(d.Instances)*words)
	mask := func(v int32) []uint64 {
		return arena[int(v)*words : (int(v)+1)*words]
	}
	orInto := func(dst, src []uint64) {
		for w := range dst {
			dst[w] |= src[w]
		}
	}
	for _, v := range g.Topo {
		in := d.Instances[v]
		if in.IsFF() {
			leaf := ci.LeafOfFF[g.ffPos[v]]
			mask(v)[leaf/64] |= 1 << (uint(leaf) % 64)
			continue
		}
		mv := mask(v)
		for _, e := range g.Fanin(int(v)) {
			orInto(mv, mask(e.From))
		}
	}
	ci.LaunchLeaves = make([][]int32, len(d.FFs))
	acc := make([]uint64, words)
	var leafArena []int32
	counts := make([]int32, len(d.FFs))
	for pass := 0; pass < 2; pass++ {
		off := int32(0)
		for fi, ffID := range d.FFs {
			clear(acc)
			for _, e := range g.Fanin(ffID) {
				orInto(acc, mask(e.From))
			}
			n := int32(0)
			for leaf := 0; leaf < nl; leaf++ {
				if acc[leaf/64]&(1<<(uint(leaf)%64)) != 0 {
					if pass == 1 {
						leafArena[off+n] = int32(leaf)
					}
					n++
				}
			}
			if pass == 0 {
				counts[fi] = n
				off += n
			} else {
				ci.LaunchLeaves[fi] = leafArena[off : off+counts[fi] : off+counts[fi]]
				off += counts[fi]
			}
		}
		if pass == 0 {
			leafArena = make([]int32, off)
		}
	}
	g.clockIndex = ci
	return ci
}

// Depths holds the worst-casing cell-depth DP results used by GBA AOCV
// lookups. All counts are over combinational data gates only.
type Depths struct {
	// MinPrefix[v]: fewest combinational gates on any launch-to-v path,
	// counting v itself (combinational v only; 0 for FFs).
	MinPrefix []int32
	// MinSuffix[v]: fewest combinational gates on any v-to-endpoint path,
	// counting v itself (0 for FFs).
	MinSuffix []int32
	// GBA[v]: the worst (minimum) cell depth GBA assumes for instance v:
	// MinPrefix+MinSuffix-1 for combinational gates; for a flip-flop, the
	// minimum depth among the paths its Q pin launches.
	GBA []int32
}

const unreachable = math.MaxInt32

// ComputeDepths runs the forward/backward minimum-depth DPs. Gates on no
// complete register-to-register path get GBA depth 1 (maximum derate),
// which is what a conservative timer assumes for unconstrained logic.
func (g *Graph) ComputeDepths() *Depths {
	d := g.D
	n := len(d.Instances)
	dp := &Depths{
		MinPrefix: make([]int32, n),
		MinSuffix: make([]int32, n),
		GBA:       make([]int32, n),
	}
	for i := range dp.MinPrefix {
		dp.MinPrefix[i] = unreachable
		dp.MinSuffix[i] = unreachable
	}
	// Forward: topological order guarantees fanins are final.
	for _, v := range g.Topo {
		in := d.Instances[v]
		if in.IsFF() {
			dp.MinPrefix[v] = 0
			continue
		}
		best := int32(unreachable)
		for _, e := range g.Fanin(int(v)) {
			var cand int32
			if d.Instances[e.From].IsFF() {
				cand = 1
			} else if dp.MinPrefix[e.From] != unreachable {
				cand = dp.MinPrefix[e.From] + 1
			} else {
				continue
			}
			if cand < best {
				best = cand
			}
		}
		dp.MinPrefix[v] = best
	}
	// Backward.
	for i := len(g.Topo) - 1; i >= 0; i-- {
		v := g.Topo[i]
		in := d.Instances[v]
		if in.IsFF() {
			dp.MinSuffix[v] = 0
			continue
		}
		best := int32(unreachable)
		for _, e := range g.Fanout(int(v)) {
			var cand int32
			if d.Instances[e.To].IsFF() {
				cand = 1
			} else if dp.MinSuffix[e.To] != unreachable {
				cand = dp.MinSuffix[e.To] + 1
			} else {
				continue
			}
			if cand < best {
				best = cand
			}
		}
		dp.MinSuffix[v] = best
	}
	for _, v := range g.Topo {
		in := d.Instances[v]
		if in.IsFF() {
			// Launch arc: worst depth among launched paths.
			best := int32(unreachable)
			for _, e := range g.Fanout(int(v)) {
				var cand int32
				if d.Instances[e.To].IsFF() {
					cand = 1 // direct FF-to-FF transfer: shallowest possible
				} else if dp.MinSuffix[e.To] != unreachable {
					cand = dp.MinSuffix[e.To]
				} else {
					continue
				}
				if cand < best {
					best = cand
				}
			}
			if best == unreachable {
				best = 1
			}
			dp.GBA[v] = best
			continue
		}
		pre, suf := dp.MinPrefix[v], dp.MinSuffix[v]
		if pre == unreachable || suf == unreachable {
			dp.GBA[v] = 1
		} else {
			dp.GBA[v] = pre + suf - 1
		}
	}
	return dp
}

// BBox is an axis-aligned placement bounding box; Empty boxes have not
// absorbed any point yet.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
	Empty                  bool
}

func emptyBox() BBox { return BBox{Empty: true} }

func (b *BBox) addPoint(x, y float64) {
	if b.Empty {
		b.MinX, b.MinY = x, y
		b.MaxX, b.MaxY = x, y
		b.Empty = false
		return
	}
	if x < b.MinX {
		b.MinX = x
	}
	if x > b.MaxX {
		b.MaxX = x
	}
	if y < b.MinY {
		b.MinY = y
	}
	if y > b.MaxY {
		b.MaxY = y
	}
}

func (b *BBox) union(o BBox) {
	if o.Empty {
		return
	}
	b.addPoint(o.MinX, o.MinY)
	b.addPoint(o.MaxX, o.MaxY)
}

// MaxDistance returns the largest possible distance between a point of a
// and a point of b — the conservative endpoint distance GBA feeds to the
// AOCV table. It returns 0 when either box is empty.
func MaxDistance(a, b BBox) float64 {
	if a.Empty || b.Empty {
		return 0
	}
	dx := math.Max(math.Abs(a.MaxX-b.MinX), math.Abs(b.MaxX-a.MinX))
	dy := math.Max(math.Abs(a.MaxY-b.MinY), math.Abs(b.MaxY-a.MinY))
	return math.Hypot(dx, dy)
}

// Boxes holds the conservative launch/capture bounding boxes per instance.
type Boxes struct {
	Launch  []BBox // placements of launch FFs that reach this instance
	Capture []BBox // placements of capture FFs this instance reaches
	// GBADistance[v] bounds the endpoint distance of any path through v.
	GBADistance []float64
}

// ComputeBoxes runs the forward/backward reachable-FF bounding-box DPs and
// derives the conservative per-gate AOCV distance.
func (g *Graph) ComputeBoxes() *Boxes {
	d := g.D
	n := len(d.Instances)
	bx := &Boxes{
		Launch:      make([]BBox, n),
		Capture:     make([]BBox, n),
		GBADistance: make([]float64, n),
	}
	for i := range bx.Launch {
		bx.Launch[i] = emptyBox()
		bx.Capture[i] = emptyBox()
	}
	for _, v := range g.Topo {
		in := d.Instances[v]
		if in.IsFF() {
			bx.Launch[v].addPoint(in.X, in.Y)
			continue
		}
		for _, e := range g.Fanin(int(v)) {
			bx.Launch[v].union(bx.Launch[e.From])
		}
	}
	// FFs are sources of the topological order, so a plain reverse sweep
	// would read their capture boxes before initialization: seed them
	// first, then sweep the combinational gates, then widen the launch
	// FFs' boxes over their (now final) fanout.
	for _, ffID := range d.FFs {
		in := d.Instances[ffID]
		bx.Capture[ffID].addPoint(in.X, in.Y)
	}
	for i := len(g.Topo) - 1; i >= 0; i-- {
		v := g.Topo[i]
		if d.Instances[v].IsFF() {
			continue
		}
		for _, e := range g.Fanout(int(v)) {
			bx.Capture[v].union(bx.Capture[e.To])
		}
	}
	for _, ffID := range d.FFs {
		for _, e := range g.Fanout(ffID) {
			bx.Capture[ffID].union(bx.Capture[e.To])
		}
	}
	for _, v := range g.Topo {
		bx.GBADistance[v] = MaxDistance(bx.Launch[v], bx.Capture[v])
	}
	return bx
}
