package graph_test

import (
	"testing"

	"mgba/internal/aocv"
	"mgba/internal/cells"
	"mgba/internal/fixtures"
	"mgba/internal/graph"
	"mgba/internal/netlist"
)

func fig2(t *testing.T) (*netlist.Design, *fixtures.Fig2Info, *graph.Graph) {
	t.Helper()
	d, info, _, err := fixtures.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, info, g
}

func TestBuildFig2(t *testing.T) {
	d, info, g := fig2(t)
	// All 12 instances are data instances (no clock buffers here).
	if len(g.Topo) != len(d.Instances) {
		t.Fatalf("topo covers %d of %d", len(g.Topo), len(d.Instances))
	}
	// g4 must have two fanins (g3 and h).
	if n := len(g.Fanin(info.Gates[3])); n != 2 {
		t.Fatalf("g4 fanin = %d, want 2", n)
	}
	// g4 fans out to g5 and k.
	if n := len(g.Fanout(info.Gates[3])); n != 2 {
		t.Fatalf("g4 fanout = %d, want 2", n)
	}
}

func TestTopoOrderRespected(t *testing.T) {
	d, _, g := fig2(t)
	pos := make(map[int32]int, len(g.Topo))
	for i, v := range g.Topo {
		pos[v] = i
	}
	for v := range d.Instances {
		for _, e := range g.Fanout(v) {
			if g.D.Instances[e.To].IsFF() {
				continue
			}
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("edge %d->%d violates topo order", v, e.To)
			}
		}
	}
}

func TestEndpoints(t *testing.T) {
	_, _, g := fig2(t)
	eps := g.Endpoints()
	if len(eps) != 4 { // all four FFs have driven D pins in the fixture
		t.Fatalf("endpoints = %v", eps)
	}
}

func TestFFIndex(t *testing.T) {
	d, info, g := fig2(t)
	if g.FFIndex(info.FF1) != 0 {
		t.Fatalf("FFIndex(FF1) = %d", g.FFIndex(info.FF1))
	}
	if g.FFIndex(info.Gates[0]) != -1 {
		t.Fatal("combinational gate has an FF index")
	}
	_ = d
}

// The heart of the fixture: GBA worst depths along the main path must be
// exactly 5, 5, 5, 3, 4, 4 — the depths behind Eq. (3) of the paper.
func TestFig2GBADepths(t *testing.T) {
	_, info, g := fig2(t)
	dp := g.ComputeDepths()
	want := [6]int32{5, 5, 5, 3, 4, 4}
	for i, id := range info.Gates {
		if dp.GBA[id] != want[i] {
			t.Errorf("g%d GBA depth = %d, want %d", i+1, dp.GBA[id], want[i])
		}
	}
}

func TestFig2PrefixSuffix(t *testing.T) {
	_, info, g := fig2(t)
	dp := g.ComputeDepths()
	// Prefixes along the main path: 1,2,3 then the FF2 shortcut makes g4's
	// prefix 2, so 2,3,4 follow.
	wantPre := [6]int32{1, 2, 3, 2, 3, 4}
	wantSuf := [6]int32{5, 4, 3, 2, 2, 1}
	for i, id := range info.Gates {
		if dp.MinPrefix[id] != wantPre[i] {
			t.Errorf("g%d MinPrefix = %d, want %d", i+1, dp.MinPrefix[id], wantPre[i])
		}
		if dp.MinSuffix[id] != wantSuf[i] {
			t.Errorf("g%d MinSuffix = %d, want %d", i+1, dp.MinSuffix[id], wantSuf[i])
		}
	}
}

func TestGBADepthNeverExceedsPathDepth(t *testing.T) {
	// On a pure chain, every gate lies on exactly one path, so the GBA
	// depth must equal the path depth n.
	d, ids, err := fixtures.Chain(7, 10, 28, 2000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	dp := g.ComputeDepths()
	for _, id := range ids {
		if dp.GBA[id] != 7 {
			t.Fatalf("chain gate depth = %d, want 7", dp.GBA[id])
		}
	}
}

func TestFig2GBADistance(t *testing.T) {
	_, info, g := fig2(t)
	bx := g.ComputeBoxes()
	// Launch FFs at x=0, captures at x=0.5: every main gate's conservative
	// distance is 0.5 um.
	for i, id := range info.Gates {
		if got := bx.GBADistance[id]; got < 0.5-1e-12 || got > 0.5+1e-12 {
			t.Errorf("g%d GBA distance = %v, want 0.5", i+1, got)
		}
	}
}

func TestMaxDistance(t *testing.T) {
	a := graph.BBox{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	b := graph.BBox{MinX: 3, MinY: 0, MaxX: 4, MaxY: 2}
	if got := graph.MaxDistance(a, b); got < 4.47 || got > 4.48 {
		t.Fatalf("MaxDistance = %v, want ~sqrt(20)", got)
	}
	if graph.MaxDistance(a, graph.BBox{Empty: true}) != 0 {
		t.Fatal("empty box distance != 0")
	}
}

func TestClockChainsAndCommonDepth(t *testing.T) {
	lib := cells.Default(28)
	d := netlist.New("ct", 28, lib, aocv.Default(28), 1000)
	clkRoot := d.AddNet()
	d.SetClockRoot(clkRoot)
	cb, _ := lib.Pick(cells.ClkBuf, 2)
	// Root buffer feeding two leaf buffers.
	nRoot := d.AddNet()
	rootBuf, _ := d.AddGate(cb, 0, 0, []int{clkRoot}, nRoot)
	nA, nB := d.AddNet(), d.AddNet()
	bufA, _ := d.AddGate(cb, -5, 0, []int{nRoot}, nA)
	bufB, _ := d.AddGate(cb, 5, 0, []int{nRoot}, nB)
	ffc, _ := lib.Pick(cells.DFF, 1)
	inv, _ := lib.Pick(cells.Inv, 1)
	q0, mid, q1 := d.AddNet(), d.AddNet(), d.AddNet()
	d.AddFF(ffc, -5, 1, q1, q0, nA)
	d.AddGate(inv, 0, 1, []int{q0}, mid)
	d.AddFF(ffc, 5, 1, mid, q1, nB)
	d.AutoWire()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.ClockChain[0]) != 2 || g.ClockChain[0][0] != int32(rootBuf.ID) || g.ClockChain[0][1] != int32(bufA.ID) {
		t.Fatalf("chain0 = %v", g.ClockChain[0])
	}
	if len(g.ClockChain[1]) != 2 || g.ClockChain[1][1] != int32(bufB.ID) {
		t.Fatalf("chain1 = %v", g.ClockChain[1])
	}
	if got := g.CommonClockDepth(0, 1); got != 1 {
		t.Fatalf("CommonClockDepth = %d, want 1 (shared root buffer)", got)
	}
	if got := g.CommonClockDepth(0, 0); got != 2 {
		t.Fatalf("self CommonClockDepth = %d, want 2", got)
	}
	if !g.IsClock(rootBuf.ID) || g.IsClock(g.D.FFs[0]) {
		t.Fatal("IsClock misclassifies")
	}
}

func TestBuildRejectsDataIntoClockBuf(t *testing.T) {
	lib := cells.Default(28)
	d := netlist.New("bad", 28, lib, aocv.Default(28), 1000)
	clk := d.AddNet()
	d.SetClockRoot(clk)
	inv, _ := lib.Pick(cells.Inv, 1)
	cb, _ := lib.Pick(cells.ClkBuf, 1)
	a, b, c := d.AddNet(), d.AddNet(), d.AddNet()
	d.AddGate(inv, 0, 0, []int{a}, b)
	d.AddGate(cb, 0, 0, []int{b}, c) // clock buffer fed by a data inverter
	ffc, _ := lib.Pick(cells.DFF, 1)
	q := d.AddNet()
	d.AddFF(ffc, 0, 0, q, a, clk)
	d.Nets[q].Driver = -1 // leave q as a pseudo-driven net for this test
	d.Nets[q].Driver = d.FFs[0]
	if _, err := graph.Build(d); err == nil {
		t.Fatal("clock buffer on data net accepted")
	}
}

func TestBuildDetectsCycle(t *testing.T) {
	lib := cells.Default(28)
	d := netlist.New("cyc", 28, lib, aocv.Default(28), 1000)
	clk := d.AddNet()
	d.SetClockRoot(clk)
	inv, _ := lib.Pick(cells.Inv, 1)
	a, b := d.AddNet(), d.AddNet()
	d.AddGate(inv, 0, 0, []int{a}, b)
	d.AddGate(inv, 0, 0, []int{b}, a)
	ffc, _ := lib.Pick(cells.DFF, 1)
	q := d.AddNet()
	d.AddFF(ffc, 0, 0, a, q, clk)
	if _, err := graph.Build(d); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestDepthsOnDirectFFToFF(t *testing.T) {
	// Two FFs connected Q->D with no logic: the launch arc depth is 1.
	lib := cells.Default(28)
	d := netlist.New("ff2ff", 28, lib, aocv.Default(28), 1000)
	clk := d.AddNet()
	d.SetClockRoot(clk)
	ffc, _ := lib.Pick(cells.DFF, 1)
	q0, q1 := d.AddNet(), d.AddNet()
	ff0, _ := d.AddFF(ffc, 0, 0, q1, q0, clk)
	d.AddFF(ffc, 1, 0, q0, q1, clk)
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	dp := g.ComputeDepths()
	if dp.GBA[ff0.ID] != 1 {
		t.Fatalf("direct FF-FF launch depth = %d, want 1", dp.GBA[ff0.ID])
	}
}
