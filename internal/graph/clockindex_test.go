package graph_test

import (
	"testing"

	"mgba/internal/gen"
	"mgba/internal/graph"
)

func coneGraph(t *testing.T) *graph.Graph {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 400, 60
	cfg.Name = "clockindex"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestClockIndexLeafGrouping(t *testing.T) {
	g := coneGraph(t)
	ci := g.ClockIndex()
	if len(ci.LeafOfFF) != len(g.D.FFs) {
		t.Fatalf("LeafOfFF size %d, want %d", len(ci.LeafOfFF), len(g.D.FFs))
	}
	// FFs sharing a clock net must share a leaf id and hence a chain.
	byNet := map[int]int32{}
	for fi, ffID := range g.D.FFs {
		net := g.D.Instances[ffID].Clock
		if prev, ok := byNet[net]; ok {
			if ci.LeafOfFF[fi] != prev {
				t.Fatalf("FFs on net %d got leaves %d and %d", net, prev, ci.LeafOfFF[fi])
			}
		} else {
			byNet[net] = ci.LeafOfFF[fi]
		}
	}
	if len(ci.Chains) != len(byNet) {
		t.Fatalf("chains %d, distinct clock nets %d", len(ci.Chains), len(byNet))
	}
}

func TestClockIndexCommonSymmetricAndBounded(t *testing.T) {
	g := coneGraph(t)
	ci := g.ClockIndex()
	n := len(ci.Chains)
	for a := 0; a < n; a++ {
		if ci.CommonLen(a, a) != len(ci.Chains[a]) {
			t.Fatalf("self common %d != chain length %d", ci.CommonLen(a, a), len(ci.Chains[a]))
		}
		for b := 0; b < n; b++ {
			if ci.CommonLen(a, b) != ci.CommonLen(b, a) {
				t.Fatal("common prefix not symmetric")
			}
			if ci.CommonLen(a, b) > len(ci.Chains[a]) || ci.CommonLen(a, b) > len(ci.Chains[b]) {
				t.Fatal("common prefix exceeds a chain length")
			}
		}
	}
}

func TestClockIndexMatchesCommonClockDepth(t *testing.T) {
	g := coneGraph(t)
	ci := g.ClockIndex()
	for fi := range g.D.FFs {
		for fj := range g.D.FFs {
			if fi > 8 || fj > 8 {
				break // spot check a few pairs
			}
			want := g.CommonClockDepth(fi, fj)
			got := ci.CommonLen(int(ci.LeafOfFF[fi]), int(ci.LeafOfFF[fj]))
			if got != want {
				t.Fatalf("pair (%d,%d): index common %d, chain walk %d", fi, fj, got, want)
			}
		}
	}
}

func TestClockIndexLaunchLeavesSound(t *testing.T) {
	g := coneGraph(t)
	ci := g.ClockIndex()
	// Every endpoint with data fanin must have at least one launch leaf,
	// and every reported leaf id must be valid.
	for fi, ffID := range g.D.FFs {
		leaves := ci.LaunchLeaves[fi]
		if len(g.Fanin(ffID)) > 0 && len(leaves) == 0 {
			t.Fatalf("endpoint %d has fanin but no launch leaves", fi)
		}
		for _, leaf := range leaves {
			if leaf < 0 || int(leaf) >= len(ci.Chains) {
				t.Fatalf("endpoint %d: leaf id %d out of range", fi, leaf)
			}
		}
	}
}

func TestClockIndexCached(t *testing.T) {
	g := coneGraph(t)
	if g.ClockIndex() != g.ClockIndex() {
		t.Fatal("ClockIndex not memoized")
	}
}
