package graph_test

import (
	"strings"
	"testing"

	"mgba/internal/aocv"
	"mgba/internal/cells"
	"mgba/internal/fixtures"
	"mgba/internal/graph"
	"mgba/internal/netlist"
)

// The int32 index contract (DESIGN.md §11): a design whose instance, net
// or edge count exceeds the ceiling must be rejected with an error, never
// silently wrapped into corrupt indices.
func TestBuildRejectsInstanceOverflow(t *testing.T) {
	d, _, _, err := fixtures.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	restore := graph.SetIndexLimitForTest(4) // below the 12-instance fixture
	if _, err := graph.Build(d); err == nil || !strings.Contains(err.Error(), "int32 index ceiling") {
		t.Fatalf("instance overflow not rejected: %v", err)
	}
	restore()
	if _, err := graph.Build(d); err != nil {
		t.Fatalf("build fails at the real limit: %v", err)
	}
}

func TestBuildRejectsEdgeOverflow(t *testing.T) {
	// Two cross-coupled FFs fanning out to five 2-input gates: 12 data
	// edges (10 gate fanins + 2 FF-to-FF transfers) from 7 instances and 8
	// nets, so a limit of 8 admits the instance and net counts but must
	// trip on the edges.
	lib := cells.Default(28)
	d := netlist.New("wide", 28, lib, aocv.Default(28), 1000)
	clk := d.AddNet()
	d.SetClockRoot(clk)
	ffc, _ := lib.Pick(cells.DFF, 1)
	q0, q1 := d.AddNet(), d.AddNet()
	d.AddFF(ffc, 0, 0, q1, q0, clk)
	d.AddFF(ffc, 1, 0, q0, q1, clk)
	gate, _ := lib.Pick(cells.Nand2, 1)
	for i := 0; i < 5; i++ {
		out := d.AddNet()
		d.AddGate(gate, float64(i), 1, []int{q0, q1}, out)
	}
	restore := graph.SetIndexLimitForTest(int64(len(d.Nets)))
	if _, err := graph.Build(d); err == nil || !strings.Contains(err.Error(), "data edges") {
		t.Fatalf("edge overflow not rejected: %v", err)
	}
	restore()
	g, err := graph.Build(d)
	if err != nil {
		t.Fatalf("build fails at the real limit: %v", err)
	}
	if g.NumEdges() != 12 {
		t.Fatalf("edge count = %d, want 12", g.NumEdges())
	}
}
