package graph

// SetIndexLimitForTest lowers the int32 index ceiling so the overflow
// error path can be exercised without building 2^31 objects. It returns a
// func restoring the real limit.
func SetIndexLimitForTest(v int64) (restore func()) {
	old := indexLimit
	indexLimit = v
	return func() { indexLimit = old }
}
