package pba_test

import (
	"testing"

	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

// Every enumerated path must round-trip through the slab store bit-exactly:
// cell order, launch/capture and the GBA floats.
func TestPathStoreRoundTrip(t *testing.T) {
	d, err := gen.Generate(gen.Toy())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	a := pba.NewAnalyzer(r)

	ps := pba.NewPathStore(0, 0)
	var orig []*pba.Path
	for _, fi := range a.EndpointIndices() {
		for _, p := range a.KWorst(fi, 10, nil) {
			if err := ps.Append(p); err != nil {
				t.Fatal(err)
			}
			orig = append(orig, p)
		}
	}
	if ps.Len() != len(orig) {
		t.Fatalf("store holds %d paths, appended %d", ps.Len(), len(orig))
	}
	var buf pba.Path
	for i, want := range orig {
		got := ps.PathInto(&buf, i)
		if got.Launch != want.Launch || got.Capture != want.Capture {
			t.Fatalf("path %d: launch/capture %d/%d, want %d/%d",
				i, got.Launch, got.Capture, want.Launch, want.Capture)
		}
		if got.GBAArrival != want.GBAArrival || got.GBASlack != want.GBASlack {
			t.Fatalf("path %d: floats differ", i)
		}
		if len(got.Cells) != len(want.Cells) {
			t.Fatalf("path %d: %d cells, want %d", i, len(got.Cells), len(want.Cells))
		}
		for j := range got.Cells {
			if got.Cells[j] != want.Cells[j] {
				t.Fatalf("path %d cell %d: %d, want %d", i, j, got.Cells[j], want.Cells[j])
			}
		}
		fresh := ps.PathAt(i)
		if fresh.Launch != want.Launch || len(fresh.Cells) != len(want.Cells) {
			t.Fatalf("path %d: PathAt disagrees with PathInto", i)
		}
	}
	if ps.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not positive")
	}
}

func TestPathStoreNegativeDeltas(t *testing.T) {
	// Descending and mixed cell IDs must survive the zigzag delta coding.
	ps := pba.NewPathStore(2, 4)
	p1 := &pba.Path{Launch: 900, Capture: 7, Cells: []int{900, 3, 850, 4}, GBAArrival: 1.5, GBASlack: -0.25}
	p2 := &pba.Path{Launch: 0, Capture: 1, Cells: []int{0}, GBAArrival: 0, GBASlack: 0}
	if err := ps.Append(p1); err != nil {
		t.Fatal(err)
	}
	if err := ps.Append(p2); err != nil {
		t.Fatal(err)
	}
	got := ps.PathAt(0)
	for j, c := range p1.Cells {
		if got.Cells[j] != c {
			t.Fatalf("cell %d: %d, want %d", j, got.Cells[j], c)
		}
	}
	if got2 := ps.PathAt(1); got2.Launch != 0 || len(got2.Cells) != 1 {
		t.Fatalf("single-cell path mangled: %+v", got2)
	}
}
