package pba_test

import (
	"fmt"
	"runtime"
	"testing"

	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

func toyAnalyzer(t *testing.T) *pba.Analyzer {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 900, 110
	cfg.Name = "pba-parallel-test"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return pba.NewAnalyzer(sta.Analyze(g, sta.DefaultConfig()))
}

func samePaths(t *testing.T, a, b [][]*pba.Path, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d endpoint groups vs %d", label, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("%s: endpoint %d has %d paths vs %d", label, i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			p, q := a[i][j], b[i][j]
			if p.Launch != q.Launch || p.Capture != q.Capture ||
				p.GBAArrival != q.GBAArrival || p.GBASlack != q.GBASlack {
				t.Fatalf("%s: endpoint %d path %d differs: %+v vs %+v", label, i, j, p, q)
			}
			if len(p.Cells) != len(q.Cells) {
				t.Fatalf("%s: endpoint %d path %d cell counts differ", label, i, j)
			}
			for k := range p.Cells {
				if p.Cells[k] != q.Cells[k] {
					t.Fatalf("%s: endpoint %d path %d cell %d differs", label, i, j, k)
				}
			}
		}
	}
}

// TestKWorstAllParallelDeterministic is the parallel fan-out's contract:
// the merged result is identical — same paths, same order, same floats —
// at every Parallelism setting. Run under -race in CI, it also proves the
// worker pool shares no mutable state.
func TestKWorstAllParallelDeterministic(t *testing.T) {
	a := toyAnalyzer(t)
	eps := a.EndpointIndices()
	if len(eps) == 0 {
		t.Fatal("fixture has no constrained endpoints")
	}
	zero := 0.0
	serial := a.KWorstAll(eps, 20, &zero, 1)
	nonEmpty := 0
	for _, g := range serial {
		if len(g) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("fixture enumerated no violated paths")
	}
	for _, par := range []int{2, runtime.NumCPU(), 0} {
		got := a.KWorstAll(eps, 20, &zero, par)
		samePaths(t, serial, got, fmt.Sprintf("parallelism %d", par))
	}
}

// TestKWorstAllMatchesKWorst: the fan-out must return exactly what
// per-endpoint KWorst calls return, for any subset and order of endpoints.
func TestKWorstAllMatchesKWorst(t *testing.T) {
	a := toyAnalyzer(t)
	eps := a.EndpointIndices()
	// A deliberately scrambled, partial subset.
	subset := make([]int, 0, len(eps)/2)
	for i := len(eps) - 1; i >= 0; i -= 2 {
		subset = append(subset, eps[i])
	}
	zero := 0.0
	got := a.KWorstAll(subset, 7, &zero, 4)
	want := make([][]*pba.Path, len(subset))
	for i, fi := range subset {
		want[i] = a.KWorst(fi, 7, &zero)
	}
	samePaths(t, want, got, "subset")
}

// TestKWorstReusedScratch: repeated enumerations through the pooled
// scratch must not corrupt earlier results (paths own their storage).
func TestKWorstReusedScratch(t *testing.T) {
	a := toyAnalyzer(t)
	eps := a.EndpointIndices()
	zero := 0.0
	first := a.KWorstAll(eps, 10, &zero, 2)
	snapshot := make([][]int, 0)
	for _, g := range first {
		for _, p := range g {
			snapshot = append(snapshot, append([]int(nil), p.Cells...))
		}
	}
	// Churn the pool with more enumerations.
	for i := 0; i < 3; i++ {
		a.KWorstAll(eps, 10, &zero, 2)
	}
	k := 0
	for _, g := range first {
		for _, p := range g {
			for c := range p.Cells {
				if p.Cells[c] != snapshot[k][c] {
					t.Fatal("pooled scratch reuse corrupted previously returned paths")
				}
			}
			k++
		}
	}
}
