package pba

import (
	"encoding/binary"
	"fmt"
)

// PathStore is a slab-backed layout for large path populations. The
// pointer-rich *Path representation costs ~180 bytes per path at typical
// depths (Path header in its size class, a Cells slice, the pointer into
// the group slice); at the million-path scale that alone dominates heap.
// The store keeps the same information in flat arenas:
//
//   - cell IDs as zigzag-varint deltas in one shared byte slab — cell IDs
//     along a path are consecutive instance IDs more often than not, so
//     deltas are short and most encode in one byte;
//   - one uint32 slab offset, an int32 capture ID and the two float64
//     timing fields per path.
//
// Appended paths decode bit-exactly: cell order, launch/capture IDs and
// the GBA floats round-trip unchanged. The store is append-only and not
// safe for concurrent mutation; concurrent readers are fine once writes
// stop.
type PathStore struct {
	cellData []byte   // zigzag-varint: absolute first cell, then deltas
	cellOff  []uint32 // per path; len = Len()+1
	capture  []int32
	arrival  []float64
	slack    []float64
}

// NewPathStore returns an empty store, optionally pre-sized for n paths of
// roughly depth d.
func NewPathStore(n, d int) *PathStore {
	ps := &PathStore{}
	if n > 0 {
		ps.cellOff = make([]uint32, 1, n+1)
		ps.capture = make([]int32, 0, n)
		ps.arrival = make([]float64, 0, n)
		ps.slack = make([]float64, 0, n)
		ps.cellData = make([]byte, 0, n*(4+2*d))
	} else {
		ps.cellOff = append(ps.cellOff, 0)
	}
	return ps
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Append encodes one path into the slab. The *Path is not retained.
func (ps *PathStore) Append(p *Path) error {
	if len(ps.cellData) > (1<<32)-1-64*len(p.Cells) {
		return fmt.Errorf("pba: path store cell slab exceeds uint32 offsets (%d bytes)", len(ps.cellData))
	}
	prev := int64(0)
	for i, c := range p.Cells {
		v := int64(c)
		if i == 0 {
			ps.cellData = binary.AppendUvarint(ps.cellData, zigzag(v))
		} else {
			ps.cellData = binary.AppendUvarint(ps.cellData, zigzag(v-prev))
		}
		prev = v
	}
	ps.cellOff = append(ps.cellOff, uint32(len(ps.cellData)))
	ps.capture = append(ps.capture, int32(p.Capture))
	ps.arrival = append(ps.arrival, p.GBAArrival)
	ps.slack = append(ps.slack, p.GBASlack)
	return nil
}

// Len returns the number of stored paths.
func (ps *PathStore) Len() int { return len(ps.capture) }

// Capture returns the capture FF instance ID of path i.
func (ps *PathStore) Capture(i int) int { return int(ps.capture[i]) }

// GBAArrival returns the GBA arrival of path i.
func (ps *PathStore) GBAArrival(i int) float64 { return ps.arrival[i] }

// GBASlack returns the GBA slack of path i.
func (ps *PathStore) GBASlack(i int) float64 { return ps.slack[i] }

// AppendCells decodes path i's cell IDs (launch FF first) into dst.
func (ps *PathStore) AppendCells(dst []int, i int) []int {
	data := ps.cellData[ps.cellOff[i]:ps.cellOff[i+1]]
	prev := int64(0)
	for pos := 0; pos < len(data); {
		u, n := binary.Uvarint(data[pos:])
		pos += n
		prev += unzigzag(u)
		dst = append(dst, int(prev))
	}
	return dst
}

// PathInto decodes path i into buf, reusing buf.Cells' capacity, and
// returns buf. The decoded path is bit-identical to the appended one.
func (ps *PathStore) PathInto(buf *Path, i int) *Path {
	buf.Cells = ps.AppendCells(buf.Cells[:0], i)
	buf.Launch = buf.Cells[0]
	buf.Capture = int(ps.capture[i])
	buf.GBAArrival = ps.arrival[i]
	buf.GBASlack = ps.slack[i]
	return buf
}

// PathAt materializes path i as a fresh *Path.
func (ps *PathStore) PathAt(i int) *Path {
	return ps.PathInto(&Path{}, i)
}

// SizeBytes returns the retained byte footprint of the slabs (capacities,
// not lengths — what the heap actually holds).
func (ps *PathStore) SizeBytes() int64 {
	return int64(cap(ps.cellData)) + 4*int64(cap(ps.cellOff)) + 4*int64(cap(ps.capture)) +
		8*int64(cap(ps.arrival)) + 8*int64(cap(ps.slack))
}
