package pba_test

import (
	"math"
	"testing"

	"mgba/internal/fixtures"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

func fig2(t *testing.T) (*graph.Graph, *fixtures.Fig2Info, *sta.Result, *pba.Analyzer) {
	t.Helper()
	d, info, cfg, err := fixtures.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, cfg)
	return g, info, r, pba.NewAnalyzer(r)
}

// Eq. (2) of the paper: PBA prices the FF1->FF4 path at 690 ps while GBA
// says 740 ps — a 50 ps pessimism gap.
func TestFig2WorkedExample(t *testing.T) {
	g, info, _, a := fig2(t)
	fi4 := g.FFIndex(info.FF4)
	p := a.WorstPath(fi4)
	if p == nil {
		t.Fatal("no path at FF4")
	}
	if p.Launch != info.FF1 || p.Capture != info.FF4 {
		t.Fatalf("worst path %d->%d, want FF1->FF4", p.Launch, p.Capture)
	}
	if p.NumGates() != 6 {
		t.Fatalf("depth = %d, want 6", p.NumGates())
	}
	if math.Abs(p.GBAArrival-740) > 1e-9 {
		t.Fatalf("GBA arrival = %v, want 740 (Eq. 3)", p.GBAArrival)
	}
	tm := a.Retime(p)
	if math.Abs(tm.Arrival-690) > 1e-9 {
		t.Fatalf("PBA arrival = %v, want 690 (Eq. 2)", tm.Arrival)
	}
	if math.Abs(tm.LateDerate-1.15) > 1e-12 {
		t.Fatalf("path derate = %v, want 1.15", tm.LateDerate)
	}
	if tm.Depth != 6 || math.Abs(tm.Distance-0.5) > 1e-12 {
		t.Fatalf("depth/dist = %d/%v", tm.Depth, tm.Distance)
	}
	// The pessimism gap: 50 ps of slack recovered by PBA.
	if gap := tm.Slack - p.GBASlack; math.Abs(gap-50) > 1e-9 {
		t.Fatalf("slack gap = %v, want 50", gap)
	}
}

func TestFig2PathOrdering(t *testing.T) {
	g, info, _, a := fig2(t)
	fi4 := g.FFIndex(info.FF4)
	ps := a.KWorst(fi4, 10, nil)
	if len(ps) != 2 {
		t.Fatalf("paths at FF4 = %d, want 2", len(ps))
	}
	// Worst first: FF1 path (740) then FF2 path (510).
	if math.Abs(ps[0].GBAArrival-740) > 1e-9 {
		t.Fatalf("first arrival = %v", ps[0].GBAArrival)
	}
	if ps[1].Launch != info.FF2 {
		t.Fatalf("second path launches at %d, want FF2", ps[1].Launch)
	}
	if math.Abs(ps[1].GBAArrival-510) > 1e-9 {
		t.Fatalf("second arrival = %v, want 510 (1.30+1.30+1.25+1.25)*100", ps[1].GBAArrival)
	}
}

func TestFig2FF3Paths(t *testing.T) {
	g, info, _, a := fig2(t)
	fi3 := g.FFIndex(info.FF3)
	ps := a.KWorst(fi3, 10, nil)
	if len(ps) != 2 {
		t.Fatalf("paths at FF3 = %d, want 2", len(ps))
	}
	// FF1->FF3: five gates (g1..g4, k) each at GBA derates 1.20x3, 1.30,
	// then k at depth... k: prefix 3 (via FF2-h-g4? prefix of k = pre(g4)+1
	// = 3), suffix 1, so depth 3 -> 1.30. Total 100*(1.2*3+1.3+1.3) = 620.
	if math.Abs(ps[0].GBAArrival-620) > 1e-9 {
		t.Fatalf("FF1->FF3 GBA arrival = %v, want 620", ps[0].GBAArrival)
	}
	tm := a.Retime(ps[0])
	// PBA: depth 5 at 0.5um -> 1.20; 5 gates * 100 * 1.20 = 600.
	if math.Abs(tm.Arrival-600) > 1e-9 {
		t.Fatalf("FF1->FF3 PBA arrival = %v, want 600", tm.Arrival)
	}
	// FF2->FF3 path: h, g4, k -> depths 3,3,3 GBA: 100*(1.3*3)=390.
	if math.Abs(ps[1].GBAArrival-390) > 1e-9 {
		t.Fatalf("FF2->FF3 GBA arrival = %v, want 390", ps[1].GBAArrival)
	}
	tm2 := a.Retime(ps[1])
	// PBA: depth 3, dist 0.5 -> 1.30: 390. No pessimism on this path.
	if math.Abs(tm2.Arrival-390) > 1e-9 {
		t.Fatalf("FF2->FF3 PBA arrival = %v, want 390", tm2.Arrival)
	}
}

func TestKWorstRespectsK(t *testing.T) {
	g, _, _, a := fig2(t)
	for fi := range g.D.FFs {
		ps := a.KWorst(fi, 1, nil)
		if len(ps) > 1 {
			t.Fatalf("k=1 returned %d paths", len(ps))
		}
	}
}

func TestKWorstDescendingOrder(t *testing.T) {
	d, err := gen.Generate(genSmall())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	a := pba.NewAnalyzer(r)
	for fi := range d.FFs {
		ps := a.KWorst(fi, 25, nil)
		for i := 1; i < len(ps); i++ {
			if ps[i].GBAArrival > ps[i-1].GBAArrival+1e-9 {
				t.Fatalf("endpoint %d: path %d arrival %v above predecessor %v",
					fi, i, ps[i].GBAArrival, ps[i-1].GBAArrival)
			}
		}
	}
}

func genSmall() gen.Config {
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 400, 60
	cfg.Name = "pba-small"
	return cfg
}

// The fundamental soundness property of the whole framework: PBA slack is
// never worse than GBA slack, path by path, because every worst-casing GBA
// applies (depth, distance, slew, CRPR) is relaxed exactly in PBA.
func TestPBANeverMorePessimisticThanGBA(t *testing.T) {
	d, err := gen.Generate(genSmall())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	a := pba.NewAnalyzer(r)
	checked := 0
	for fi := range d.FFs {
		for _, p := range a.KWorst(fi, 10, nil) {
			tm := a.Retime(p)
			if tm.Slack < p.GBASlack-1e-6 {
				t.Fatalf("endpoint %d: PBA slack %v below GBA slack %v", fi, tm.Slack, p.GBASlack)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d paths checked; fixture too small", checked)
	}
}

// The worst GBA path arrival found by enumeration must match the graph
// arrival at the endpoint (they are the same maximization).
func TestWorstPathMatchesGraphArrival(t *testing.T) {
	d, err := gen.Generate(genSmall())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	a := pba.NewAnalyzer(r)
	for fi, ffID := range d.FFs {
		if len(g.Fanin(ffID)) == 0 {
			continue
		}
		p := a.WorstPath(fi)
		if p == nil {
			t.Fatalf("endpoint %d: no path", fi)
		}
		if math.Abs(p.GBAArrival-r.DataAtD[fi]) > 1e-6 {
			t.Fatalf("endpoint %d: enumerated worst %v vs graph %v", fi, p.GBAArrival, r.DataAtD[fi])
		}
		if math.Abs(p.GBASlack-r.Slack[fi]) > 1e-6 {
			t.Fatalf("endpoint %d: slack mismatch %v vs %v", fi, p.GBASlack, r.Slack[fi])
		}
	}
}

func TestAllViolatedOnlyNegative(t *testing.T) {
	d, err := gen.Generate(genSmall())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	a := pba.NewAnalyzer(r)
	ps := a.AllViolated(200)
	if len(ps) == 0 {
		t.Fatal("no violated paths on a heavily violating design")
	}
	for _, p := range ps {
		if p.GBASlack >= 0 {
			t.Fatalf("non-violated path returned: slack %v", p.GBASlack)
		}
	}
}

func TestPathsAreContiguous(t *testing.T) {
	// Every consecutive cell pair on a path must be a real graph edge.
	d, err := gen.Generate(genSmall())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	a := pba.NewAnalyzer(r)
	for fi := range d.FFs {
		for _, p := range a.KWorst(fi, 5, nil) {
			if !d.Instances[p.Cells[0]].IsFF() {
				t.Fatal("path does not start at an FF")
			}
			for i := 1; i < len(p.Cells); i++ {
				found := false
				for _, e := range g.Fanout(p.Cells[i-1]) {
					if int(e.To) == p.Cells[i] {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("cells %d->%d not connected", p.Cells[i-1], p.Cells[i])
				}
			}
			// Last cell must feed the capture FF.
			found := false
			for _, e := range g.Fanout(p.Cells[len(p.Cells)-1]) {
				if int(e.To) == p.Capture {
					found = true
					break
				}
			}
			if !found {
				t.Fatal("path tail does not reach the capture FF")
			}
		}
	}
}

func TestStopAtSlack(t *testing.T) {
	g, _, _, a := fig2(t)
	// With a huge stop threshold nothing is collected.
	lo := -1e18
	for fi := range g.D.FFs {
		ps := a.KWorst(fi, 100, &lo)
		if len(ps) != 0 {
			t.Fatalf("low stopAtSlack returned %d paths", len(ps))
		}
	}
}

func TestBudgetMatchesSlackDefinition(t *testing.T) {
	g, info, r, a := fig2(t)
	fi4 := g.FFIndex(info.FF4)
	p := a.WorstPath(fi4)
	if math.Abs((a.Budget(fi4)+r.GBACRPR[fi4]-p.GBAArrival)-r.Slack[fi4]) > 1e-9 {
		t.Fatal("budget + credit - arrival != endpoint slack")
	}
}
