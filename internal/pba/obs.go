package pba

import "mgba/internal/obs"

// PBA metrics: exact-path enumeration and retiming volume. kWorst and
// Retime run inside parallel workers, so the counters lean on their
// atomic, allocation-free increments; they record totals only and never
// influence enumeration order (obs inertness contract).
var (
	obsPathsEnumerated = obs.NewCounter("pba.paths.enumerated")
	obsEndpointsSwept  = obs.NewCounter("pba.endpoints.swept")
	obsRetimes         = obs.NewCounter("pba.retimes")
	obsFanoutGauge     = obs.NewGauge("pba.last.endpoint_fanout")
)
