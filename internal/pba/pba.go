// Package pba implements path-based analysis: exact per-path timing with
// path-specific AOCV derating, path-specific slew propagation and exact
// clock-reconvergence-pessimism credit. Its results are the golden
// reference the mGBA weights are fitted against (§2.2 of the paper).
//
// Because enumerating every path of a real design is intractable, the
// package provides a per-endpoint k-worst-path enumerator over the GBA
// timing graph: paths pop in exactly descending GBA-arrival order, so the
// k worst GBA-slack paths of an endpoint come out first. The critical-path
// selection schemes of §3.2 are built on top of this in internal/pathsel.
package pba

import (
	"container/heap"
	"math"
	"sync"
	"sync/atomic"

	"mgba/internal/engine"
	"mgba/internal/faultinject"
	"mgba/internal/netlist"
	"mgba/internal/par"
	"mgba/internal/sta"
)

// Path is one register-to-register path found by the enumerator. Cells
// lists the delay-carrying instances in path order: the launch FF (whose
// CK->Q arc is derated like a data cell) followed by the combinational
// gates. The capture FF contributes its setup time, not a cell delay.
type Path struct {
	Launch  int   // launch FF instance ID
	Capture int   // capture FF instance ID (the endpoint)
	Cells   []int // launch FF followed by combinational gate instance IDs

	GBAArrival float64 // data arrival at the D pin under GBA
	GBASlack   float64 // setup slack under GBA (conservative CRPR credit applied)
}

// NumGates returns the combinational cell depth of the path (PBA depth).
func (p *Path) NumGates() int { return len(p.Cells) - 1 }

// Timing is the exact PBA retiming of one path.
type Timing struct {
	Path *Path

	Depth      int     // combinational cell depth used for the AOCV lookup
	Distance   float64 // launch-to-capture endpoint distance, um
	LateDerate float64 // the single path-specific late factor
	CRPR       float64 // clock reconvergence credit added to the slack

	CellSum float64 // sum of path-specific derated cell delays
	WireSum float64 // sum of (underated) wire delays along the path
	Arrival float64 // data arrival at the D pin under PBA
	Slack   float64 // setup slack under PBA
}

// Analyzer retimes paths exactly against a finished GBA analysis (the GBA
// result supplies clock insertion delays, budgets and the graph). Because
// every Result is backed by an engine.Session, the exact per-pair CRPR
// credits consulted by Retime come from the session's precomputed
// leaf-pair matrix — repeated retiming never re-walks the clock tree.
type Analyzer struct {
	R *sta.Result
}

// NewAnalyzer wraps a GBA result for path retiming. The result must stay
// unreleased for the analyzer's lifetime.
func NewAnalyzer(r *sta.Result) *Analyzer { return &Analyzer{R: r} }

// Session returns the timing session backing the wrapped analysis.
func (a *Analyzer) Session() *engine.Session { return a.R.S }

// Budget returns the slack budget of an endpoint (D.FFs position):
// period + early capture clock - setup. Slack = budget + CRPR - arrival.
func (a *Analyzer) Budget(captureIdx int) float64 {
	d := a.R.G.D
	ff := d.Instances[d.FFs[captureIdx]]
	return d.ClockPeriod + a.R.ClockEarly[captureIdx] - ff.Cell.Setup - a.R.Cfg.Uncertainty
}

// Retime computes the exact PBA timing of p: the path-specific AOCV late
// factor at the path's true depth and endpoint distance, slew propagated
// along the path only, and the exact CRPR credit of the launch/capture
// clock pair.
func (a *Analyzer) Retime(p *Path) *Timing {
	obsRetimes.Inc()
	r := a.R
	d := r.G.D
	launch := d.Instances[p.Launch]
	capture := d.Instances[p.Capture]

	depth := p.NumGates()
	dist := netlist.Distance(launch, capture)
	late := 1.0
	if r.Cfg.DerateData {
		lookupDepth := float64(depth)
		if lookupDepth < 1 {
			lookupDepth = 1 // direct FF-to-FF transfer
		}
		derates := r.Cfg.Derates
		if derates == nil {
			derates = d.Derates
		}
		late = derates.Late.Lookup(lookupDepth, dist)
	}

	var cellSum, wireSum, slew float64
	for _, v := range p.Cells {
		in := d.Instances[v]
		var nom float64
		if ov, ok := r.Cfg.DelayOverride[v]; ok {
			nom = ov
			slew = 0
		} else {
			load := d.LoadCap(d.Nets[in.Output])
			nom = in.Cell.Delay(load, slew)
			slew = in.Cell.OutputSlew(load, slew)
		}
		w := 1.0
		if r.Cfg.Weights != nil {
			// Weighted retiming is only meaningful for mGBA validation;
			// golden PBA uses unit weights. Kept for completeness.
			w = r.Cfg.Weights[v]
		}
		cellSum += nom * late * w
		wireSum += r.WireDelay[v]
	}

	launchIdx := r.G.FFIndex(p.Launch)
	captureIdx := r.G.FFIndex(p.Capture)
	crpr := r.CRPRCredit(launchIdx, captureIdx)
	arrival := r.ClockLate[launchIdx] + cellSum + wireSum
	slack := a.Budget(captureIdx) + crpr - arrival
	return &Timing{
		Path:       p,
		Depth:      depth,
		Distance:   dist,
		LateDerate: late,
		CRPR:       crpr,
		CellSum:    cellSum,
		WireSum:    wireSum,
		Arrival:    arrival,
		Slack:      slack,
	}
}

// searchState is a partial path suffix during backward best-first search:
// everything from inst's output pin to the endpoint's D pin is fixed and
// costs tail picoseconds under GBA.
type searchState struct {
	inst   int
	tail   float64
	parent *searchState // towards the endpoint
	bound  float64      // ArrivalOut[inst] + tail: exact max completion
}

type stateHeap []*searchState

func (h stateHeap) Len() int           { return len(h) }
func (h stateHeap) Less(i, j int) bool { return h[i].bound > h[j].bound }
func (h stateHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x any)        { *h = append(*h, x.(*searchState)) }
func (h *stateHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// stateArena bump-allocates searchStates in fixed-size blocks. Blocks are
// never reallocated, so parent pointers between states stay valid for the
// whole enumeration; reset rewinds the arena without freeing the blocks.
type stateArena struct {
	blocks [][]searchState
	block  int // index of the block currently being filled
	used   int // entries handed out from that block
}

const arenaBlockSize = 1024

func (a *stateArena) alloc() *searchState {
	if a.block == len(a.blocks) {
		a.blocks = append(a.blocks, make([]searchState, arenaBlockSize))
	}
	s := &a.blocks[a.block][a.used]
	a.used++
	if a.used == arenaBlockSize {
		a.block++
		a.used = 0
	}
	return s
}

func (a *stateArena) reset() {
	a.block = 0
	a.used = 0
}

// enumScratch is the per-enumeration working set — the best-first heap and
// the state arena — pooled so repeated KWorst calls (one per endpoint per
// recalibration) run allocation-free in steady state.
type enumScratch struct {
	heap  stateHeap
	arena stateArena
}

var scratchPool = sync.Pool{New: func() any { return new(enumScratch) }}

func getScratch() *enumScratch { return scratchPool.Get().(*enumScratch) }

func putScratch(sc *enumScratch) {
	sc.heap = sc.heap[:0]
	sc.arena.reset()
	scratchPool.Put(sc)
}

// KWorst enumerates up to k paths ending at endpoint captureIdx (a D.FFs
// position) in descending GBA-arrival order — i.e. worst GBA slack first.
// When stopAtSlack is non-nil, enumeration also stops as soon as the next
// path's GBA slack reaches *stopAtSlack (use 0 to collect exactly the
// violated paths).
//
// The bound function ArrivalOut[v] + tail is exact for GBA delays, so every
// heap pop whose head is a flip-flop completes a genuine next-worst path;
// the enumeration order is exact, not heuristic.
func (a *Analyzer) KWorst(captureIdx, k int, stopAtSlack *float64) []*Path {
	sc := getScratch()
	out := a.kWorst(sc, captureIdx, k, stopAtSlack)
	putScratch(sc)
	return out
}

func (a *Analyzer) kWorst(sc *enumScratch, captureIdx, k int, stopAtSlack *float64) []*Path {
	_ = faultinject.Float64(faultinject.PathEnum, float64(captureIdx))
	r := a.R
	d := r.G.D
	ffID := d.FFs[captureIdx]
	budget := a.Budget(captureIdx)

	h := &sc.heap
	for _, e := range r.G.Fanin(ffID) {
		s := sc.arena.alloc()
		*s = searchState{
			inst: int(e.From),
			tail: r.WireDelay[e.From],
		}
		s.bound = r.ArrivalOut[e.From] + s.tail
		heap.Push(h, s)
	}
	gbaCredit := r.GBACRPR[captureIdx]
	var out []*Path
	for h.Len() > 0 && len(out) < k {
		s := heap.Pop(h).(*searchState)
		in := d.Instances[s.inst]
		if in.IsFF() {
			arrival := s.bound // ArrivalOut[FF] + tail is the exact arrival
			slack := budget + gbaCredit - arrival
			if stopAtSlack != nil && slack >= *stopAtSlack {
				break // everything still enqueued is at least this good
			}
			cells := []int{s.inst}
			for st := s.parent; st != nil; st = st.parent {
				cells = append(cells, st.inst)
			}
			out = append(out, &Path{
				Launch:     s.inst,
				Capture:    ffID,
				Cells:      cells,
				GBAArrival: arrival,
				GBASlack:   slack,
			})
			continue
		}
		for _, e := range r.G.Fanin(s.inst) {
			ns := sc.arena.alloc()
			*ns = searchState{
				inst:   int(e.From),
				tail:   s.tail + r.CellDelay[s.inst] + r.WireDelay[e.From],
				parent: s,
			}
			ns.bound = r.ArrivalOut[e.From] + ns.tail
			heap.Push(h, ns)
		}
	}
	sc.heap = sc.heap[:0]
	sc.arena.reset()
	obsEndpointsSwept.Inc()
	obsPathsEnumerated.Add(int64(len(out)))
	return out
}

// EndpointIndices returns the D.FFs positions of every constrained
// endpoint — flip-flops with at least one data fanin — in FF order.
func (a *Analyzer) EndpointIndices() []int {
	g := a.R.G
	out := make([]int, 0, len(g.D.FFs))
	for fi, id := range g.D.FFs {
		if len(g.Fanin(id)) > 0 {
			out = append(out, fi)
		}
	}
	return out
}

// KWorstAll runs KWorst for every endpoint in endpoints (D.FFs positions)
// and returns the per-endpoint path lists in input order. The independent
// searches are fanned across a worker pool sized by parallelism (engine
// convention: 0 = NumCPU, 1 = sequential); because each endpoint's search
// is self-contained and results are slotted by input position, the output
// is identical to serial KWorst calls at every parallelism setting.
func (a *Analyzer) KWorstAll(endpoints []int, k int, stopAtSlack *float64, parallelism int) [][]*Path {
	obsFanoutGauge.SetInt(len(endpoints))
	out := make([][]*Path, len(endpoints))
	workers := engine.Workers(parallelism)
	if workers > len(endpoints) {
		workers = len(endpoints)
	}
	if workers <= 1 {
		sc := getScratch()
		for i, fi := range endpoints {
			out[i] = a.kWorst(sc, fi, k, stopAtSlack)
		}
		putScratch(sc)
		return out
	}
	// Fan out on the shared internal/par pool: each worker drains an
	// atomic endpoint counter with its own pooled scratch (endpoint costs
	// are wildly uneven, so dynamic balancing beats fixed ranges).
	var next atomic.Int64
	par.Run(workers, func() {
		sc := getScratch()
		defer putScratch(sc)
		for {
			i := int(next.Add(1)) - 1
			if i >= len(endpoints) {
				return
			}
			out[i] = a.kWorst(sc, endpoints[i], k, stopAtSlack)
		}
	})
	return out
}

// WorstPath returns the single worst GBA path of an endpoint, or nil when
// the endpoint is unconstrained.
func (a *Analyzer) WorstPath(captureIdx int) *Path {
	ps := a.KWorst(captureIdx, 1, nil)
	if len(ps) == 0 {
		return nil
	}
	return ps[0]
}

// AllViolated enumerates every negative-GBA-slack path of every endpoint,
// capped at capPerEndpoint per endpoint (a safety valve: reconvergent
// designs have exponentially many paths). Endpoints are enumerated with
// the analysis' Parallelism setting; the result is endpoint-major in FF
// order, identical at every setting.
func (a *Analyzer) AllViolated(capPerEndpoint int) []*Path {
	zero := 0.0
	per := a.KWorstAll(a.EndpointIndices(), capPerEndpoint, &zero, a.R.Cfg.Parallelism)
	var out []*Path
	for _, ps := range per {
		out = append(out, ps...)
	}
	return out
}

// MaxFloat is a convenience for stopAtSlack pointers.
func MaxFloat() *float64 {
	v := math.MaxFloat64
	return &v
}
