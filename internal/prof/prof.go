// Package prof wires the standard pprof outputs into the command-line
// tools: a CPU profile covering the run and a heap profile written at
// exit. It exists so every cmd exposes the same -cpuprofile/-memprofile
// contract with one line of setup.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles. cpuPath and memPath may each be
// empty to disable that profile. The returned stop function ends the CPU
// profile and writes the heap profile; call it exactly once, before the
// process exits (a profile is silently incomplete otherwise).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			runtime.GC() // materialize the live set before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("prof: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
