package netio_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/netio"
	"mgba/internal/sta"
)

func genDesign(t *testing.T) ([]byte, *sta.Result) {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 300, 40
	cfg.Name = "netio-test"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	var buf bytes.Buffer
	if err := netio.Save(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), r
}

func TestRoundTripPreservesTiming(t *testing.T) {
	blob, orig := genDesign(t)
	d2, err := netio.Load(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := graph.Build(d2)
	if err != nil {
		t.Fatal(err)
	}
	r2 := sta.Analyze(g2, sta.DefaultConfig())
	if len(r2.Slack) != len(orig.Slack) {
		t.Fatalf("endpoint counts differ: %d vs %d", len(r2.Slack), len(orig.Slack))
	}
	for fi := range orig.Slack {
		a, b := orig.Slack[fi], r2.Slack[fi]
		if math.IsInf(a, 1) && math.IsInf(b, 1) {
			continue
		}
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("endpoint %d slack drifted: %v vs %v", fi, a, b)
		}
	}
	if math.Abs(orig.TNS-r2.TNS) > 1e-9 {
		t.Fatalf("TNS drifted: %v vs %v", orig.TNS, r2.TNS)
	}
}

func TestRoundTripIdempotent(t *testing.T) {
	blob, _ := genDesign(t)
	d2, err := netio.Load(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := netio.Save(&buf2, d2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, buf2.Bytes()) {
		t.Fatal("save -> load -> save is not byte-identical")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := netio.Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	blob, _ := genDesign(t)
	bad := bytes.Replace(blob, []byte("\"version\": 1"), []byte("\"version\": 99"), 1)
	if bytes.Equal(bad, blob) {
		t.Fatal("version field not found in blob")
	}
	if _, err := netio.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestLoadRejectsUnknownCell(t *testing.T) {
	blob, _ := genDesign(t)
	bad := bytes.Replace(blob, []byte("\"DFF_X1\""), []byte("\"BOGUS_X9\""), 1)
	if _, err := netio.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown cell accepted")
	}
}

func TestLoadRejectsDanglingReferences(t *testing.T) {
	blob, _ := genDesign(t)
	// Point an output at a non-existent net.
	bad := bytes.Replace(blob, []byte("\"output\": 1,"), []byte("\"output\": 99999,"), 1)
	if bytes.Equal(bad, blob) {
		t.Skip("no matching output field to corrupt")
	}
	if _, err := netio.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("dangling net reference accepted")
	}
}

func TestSaveStreams(t *testing.T) {
	blob, _ := genDesign(t)
	if len(blob) < 1000 {
		t.Fatalf("implausibly small blob: %d bytes", len(blob))
	}
	if !strings.Contains(string(blob), "\"clock_period_ps\"") {
		t.Fatal("missing clock period field")
	}
}
