package netio_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mgba/internal/faultinject"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/netio"
	"mgba/internal/netlist"
	"mgba/internal/sta"
)

func genDesign(t *testing.T) ([]byte, *sta.Result) {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 300, 40
	cfg.Name = "netio-test"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	var buf bytes.Buffer
	if err := netio.Save(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), r
}

func TestRoundTripPreservesTiming(t *testing.T) {
	blob, orig := genDesign(t)
	d2, err := netio.Load(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := graph.Build(d2)
	if err != nil {
		t.Fatal(err)
	}
	r2 := sta.Analyze(g2, sta.DefaultConfig())
	if len(r2.Slack) != len(orig.Slack) {
		t.Fatalf("endpoint counts differ: %d vs %d", len(r2.Slack), len(orig.Slack))
	}
	for fi := range orig.Slack {
		a, b := orig.Slack[fi], r2.Slack[fi]
		if math.IsInf(a, 1) && math.IsInf(b, 1) {
			continue
		}
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("endpoint %d slack drifted: %v vs %v", fi, a, b)
		}
	}
	if math.Abs(orig.TNS-r2.TNS) > 1e-9 {
		t.Fatalf("TNS drifted: %v vs %v", orig.TNS, r2.TNS)
	}
}

func TestRoundTripIdempotent(t *testing.T) {
	blob, _ := genDesign(t)
	d2, err := netio.Load(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := netio.Save(&buf2, d2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, buf2.Bytes()) {
		t.Fatal("save -> load -> save is not byte-identical")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := netio.Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	blob, _ := genDesign(t)
	bad := bytes.Replace(blob, []byte("\"version\": 1"), []byte("\"version\": 99"), 1)
	if bytes.Equal(bad, blob) {
		t.Fatal("version field not found in blob")
	}
	if _, err := netio.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestLoadRejectsUnknownCell(t *testing.T) {
	blob, _ := genDesign(t)
	bad := bytes.Replace(blob, []byte("\"DFF_X1\""), []byte("\"BOGUS_X9\""), 1)
	if _, err := netio.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown cell accepted")
	}
}

func TestLoadRejectsDanglingReferences(t *testing.T) {
	blob, _ := genDesign(t)
	// Point an output at a non-existent net.
	bad := bytes.Replace(blob, []byte("\"output\": 1,"), []byte("\"output\": 99999,"), 1)
	if bytes.Equal(bad, blob) {
		t.Skip("no matching output field to corrupt")
	}
	if _, err := netio.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("dangling net reference accepted")
	}
}

func TestSaveStreams(t *testing.T) {
	blob, _ := genDesign(t)
	if len(blob) < 1000 {
		t.Fatalf("implausibly small blob: %d bytes", len(blob))
	}
	if !strings.Contains(string(blob), "\"clock_period_ps\"") {
		t.Fatal("missing clock period field")
	}
}

// makeDesign generates a small valid design for file-level tests.
func makeDesign(t *testing.T) *netlist.Design {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 120, 16
	cfg.Name = "netio-file-test"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// failingWriter errors after passing through limit bytes, simulating a
// disk-full or crash partway through a snapshot write.
type failingWriter struct {
	w     io.Writer
	limit int
	n     int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n+len(p) > f.limit {
		room := f.limit - f.n
		if room > 0 {
			f.w.Write(p[:room])
			f.n = f.limit
		}
		return room, errors.New("injected write failure")
	}
	n, err := f.w.Write(p)
	f.n += n
	return n, err
}

func TestSaveFileRoundTrip(t *testing.T) {
	d := makeDesign(t)
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := netio.SaveFile(path, d); err != nil {
		t.Fatal(err)
	}
	d2, err := netio.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Instances) != len(d.Instances) || len(d2.Nets) != len(d.Nets) {
		t.Fatalf("round trip lost elements: %d/%d instances, %d/%d nets",
			len(d2.Instances), len(d.Instances), len(d2.Nets), len(d.Nets))
	}
}

// TestSaveFileCrashLeavesOldSnapshot simulates a crash mid-write: the
// injected writer fails after a partial write, and the previous snapshot
// must survive untouched with no temp files littering the directory.
func TestSaveFileCrashLeavesOldSnapshot(t *testing.T) {
	d := makeDesign(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	if err := netio.SaveFile(path, d); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.SetWriter(faultinject.NetioWrite, func(w io.Writer) io.Writer {
		return &failingWriter{w: w, limit: 64}
	})
	defer faultinject.Reset()
	if err := netio.SaveFile(path, d); err == nil {
		t.Fatal("SaveFile succeeded despite injected write failure")
	}
	faultinject.Reset()

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed save corrupted the existing snapshot")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("temp litter left behind: %v", names)
	}
	if d2, err := netio.LoadFile(path); err != nil || d2.Validate() != nil {
		t.Fatalf("surviving snapshot unreadable: %v", err)
	}
}

// TestSaveFileDirSyncFault exercises the rename-then-crash window: the
// rename itself succeeds but the parent-directory fsync that makes it
// durable fails. The writer must surface that as an error — a caller told
// "checkpoint ok" while the directory entry could still roll back on power
// loss is exactly the bug this sync exists to close — while the renamed
// file (already complete on disk) must load cleanly.
func TestSaveFileDirSyncFault(t *testing.T) {
	d := makeDesign(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")

	faultinject.SetError(faultinject.NetioSyncDir, func() error {
		return errors.New("injected dir sync failure")
	})
	defer faultinject.Reset()
	err := netio.SaveFile(path, d)
	faultinject.Reset()
	if err == nil {
		t.Fatal("SaveFile reported success despite the directory sync failing")
	}
	if !strings.Contains(err.Error(), "sync dir") {
		t.Fatalf("error does not identify the directory sync: %v", err)
	}

	// The rename happened before the failed sync: the new snapshot is
	// complete and readable, and no temp litter remains.
	d2, err := netio.LoadFile(path)
	if err != nil {
		t.Fatalf("renamed snapshot unreadable after dir-sync failure: %v", err)
	}
	if len(d2.Instances) != len(d.Instances) {
		t.Fatalf("snapshot incomplete: %d/%d instances", len(d2.Instances), len(d.Instances))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("unexpected directory contents: %v", entries)
	}

	// A clean retry over the same path must succeed and stay durable.
	if err := netio.SaveFile(path, d); err != nil {
		t.Fatalf("retry after dir-sync fault failed: %v", err)
	}
}

// TestCheckpointFileDirSyncFault runs the same window through the
// checkpoint writer, which is what the closure flow calls mid-run.
func TestCheckpointFileDirSyncFault(t *testing.T) {
	d := makeDesign(t)
	w := make([]float64, len(d.Instances))
	for i := range w {
		w[i] = 1
	}
	path := filepath.Join(t.TempDir(), "ckpt.json")
	faultinject.SetError(faultinject.NetioSyncDir, func() error {
		return errors.New("injected dir sync failure")
	})
	defer faultinject.Reset()
	if err := netio.SaveCheckpointFile(path, &netio.Checkpoint{Design: d, Weights: w}); err == nil {
		t.Fatal("checkpoint save reported success despite the directory sync failing")
	}
	faultinject.Reset()
	if _, err := netio.LoadCheckpointFile(path); err != nil {
		t.Fatalf("renamed checkpoint unreadable: %v", err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	d := makeDesign(t)
	w := make([]float64, len(d.Instances))
	for i := range w {
		w[i] = 1 + 0.001*float64(i%7)
	}
	state := json.RawMessage(`{"phase":"recovery","round":3}`)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := netio.SaveCheckpointFile(path, &netio.Checkpoint{Design: d, Weights: w, State: state}); err != nil {
		t.Fatal(err)
	}
	c, err := netio.LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Weights) != len(w) {
		t.Fatalf("weights length drifted: %d vs %d", len(c.Weights), len(w))
	}
	for i := range w {
		if c.Weights[i] != w[i] {
			t.Fatalf("weight %d drifted: %v vs %v", i, c.Weights[i], w[i])
		}
	}
	var got, want bytes.Buffer
	if err := json.Compact(&got, c.State); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&want, state); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("state blob drifted: %s vs %s", got.Bytes(), want.Bytes())
	}
	if err := c.Design.Validate(); err != nil {
		t.Fatalf("loaded checkpoint design invalid: %v", err)
	}
}

func TestCheckpointNilWeights(t *testing.T) {
	d := makeDesign(t)
	var buf bytes.Buffer
	if err := netio.SaveCheckpoint(&buf, &netio.Checkpoint{Design: d}); err != nil {
		t.Fatal(err)
	}
	c, err := netio.LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Weights != nil {
		t.Fatal("nil weights did not round trip as nil")
	}
}

func TestCheckpointRejectsBadWeights(t *testing.T) {
	d := makeDesign(t)
	bad := [][]float64{
		make([]float64, len(d.Instances)+1),              // wrong length (also zeros)
		append(make([]float64, len(d.Instances)-1), -1),  // negative
		append(make([]float64, len(d.Instances)-1), 0.5), // zeros elsewhere
	}
	nan := make([]float64, len(d.Instances))
	for i := range nan {
		nan[i] = 1
	}
	nan[3] = math.NaN()
	bad = append(bad, nan)
	for i, w := range bad {
		var buf bytes.Buffer
		if err := netio.SaveCheckpoint(&buf, &netio.Checkpoint{Design: d, Weights: w}); err == nil {
			t.Fatalf("bad weights %d accepted by SaveCheckpoint", i)
		}
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	d := makeDesign(t)
	w := make([]float64, len(d.Instances))
	for i := range w {
		w[i] = 1
	}
	var buf bytes.Buffer
	if err := netio.SaveCheckpoint(&buf, &netio.Checkpoint{Design: d, Weights: w}); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	if _, err := netio.LoadCheckpoint(bytes.NewReader(blob[:len(blob)/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	bad := bytes.Replace(blob, []byte(`"checkpoint_version": 2`), []byte(`"checkpoint_version": 9`), 1)
	if bytes.Equal(bad, blob) {
		t.Fatal("checkpoint version field not found")
	}
	if _, err := netio.LoadCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Fatal("wrong checkpoint version accepted")
	}
}

// TestLoadReadFault exercises the NetioRead hook: a reader that truncates
// the stream mid-flight must surface as a load error.
func TestLoadReadFault(t *testing.T) {
	blob, _ := genDesign(t)
	faultinject.SetReader(faultinject.NetioRead, func(r io.Reader) io.Reader {
		return io.LimitReader(r, int64(len(blob)/3))
	})
	defer faultinject.Reset()
	if _, err := netio.Load(bytes.NewReader(blob)); err == nil {
		t.Fatal("truncated read accepted")
	}
}

// TestCheckpointV1ReadCompat verifies the format-v2 reader still accepts a
// version-1 checkpoint (no per-kind blobs). A v1 file is indistinguishable
// from a v2 file that carries no kinds, so demoting the version field of
// such a file is exactly the bytes a pre-v2 writer produced.
func TestCheckpointV1ReadCompat(t *testing.T) {
	d := makeDesign(t)
	w := make([]float64, len(d.Instances))
	for i := range w {
		w[i] = 1
	}
	var buf bytes.Buffer
	if err := netio.SaveCheckpoint(&buf, &netio.Checkpoint{Design: d, Weights: w, State: json.RawMessage(`{"round":1}`)}); err != nil {
		t.Fatal(err)
	}
	v1 := bytes.Replace(buf.Bytes(), []byte(`"checkpoint_version": 2`), []byte(`"checkpoint_version": 1`), 1)
	if bytes.Equal(v1, buf.Bytes()) {
		t.Fatal("checkpoint version field not found")
	}
	c, err := netio.LoadCheckpoint(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 checkpoint rejected: %v", err)
	}
	if c.Kinds != nil {
		t.Fatalf("v1 checkpoint produced kinds: %v", c.Kinds)
	}
	if len(c.Weights) != len(w) {
		t.Fatalf("weights length drifted: %d vs %d", len(c.Weights), len(w))
	}
}

// TestCheckpointV1RejectsKinds: a checkpoint claiming version 1 but carrying
// per-transform blobs is internally inconsistent and must be refused rather
// than silently dropping state.
func TestCheckpointV1RejectsKinds(t *testing.T) {
	d := makeDesign(t)
	var buf bytes.Buffer
	ck := &netio.Checkpoint{
		Design: d,
		Kinds:  map[string]json.RawMessage{"retime": json.RawMessage(`{"lags":{"3":1}}`)},
	}
	if err := netio.SaveCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	v1 := bytes.Replace(buf.Bytes(), []byte(`"checkpoint_version": 2`), []byte(`"checkpoint_version": 1`), 1)
	if _, err := netio.LoadCheckpoint(bytes.NewReader(v1)); err == nil {
		t.Fatal("version-1 checkpoint with kinds accepted")
	}
}

// TestCheckpointKindsRoundTrip: per-transform blobs survive save/load
// byte-for-byte (modulo JSON whitespace).
func TestCheckpointKindsRoundTrip(t *testing.T) {
	d := makeDesign(t)
	kinds := map[string]json.RawMessage{
		"retime": json.RawMessage(`{"lags":{"3":1,"7":-2}}`),
	}
	var buf bytes.Buffer
	if err := netio.SaveCheckpoint(&buf, &netio.Checkpoint{Design: d, Kinds: kinds}); err != nil {
		t.Fatal(err)
	}
	c, err := netio.LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := json.Compact(&got, c.Kinds["retime"]); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&want, kinds["retime"]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("kinds blob drifted: %s vs %s", got.Bytes(), want.Bytes())
	}
}
