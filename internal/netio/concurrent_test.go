package netio_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"mgba/internal/faultinject"
	"mgba/internal/gen"
	"mgba/internal/netio"
	"mgba/internal/netlist"
)

// slowWriter throttles writes to a few bytes per call so a concurrent
// save spends real time inside the temp-file write, widening the window
// in which a torn file would be observable if the rename path were not
// atomic.
type slowWriter struct{ w io.Writer }

func (s *slowWriter) Write(p []byte) (int, error) {
	const chunk = 7
	done := 0
	for done < len(p) {
		hi := done + chunk
		if hi > len(p) {
			hi = len(p)
		}
		n, err := s.w.Write(p[done:hi])
		done += n
		if err != nil {
			return done, err
		}
	}
	return done, nil
}

// concurrentDesign builds a small design shared by every writer; only the
// weights and state blob vary per version, which is what makes a torn or
// interleaved file detectable (weights and state must agree).
func concurrentDesign(t *testing.T) *netlist.Design {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 120, 16
	cfg.Name = "ckpt-concurrent"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// versionedCheckpoint builds checkpoint version v: every weight is the
// same marker value and the state blob repeats it, so any mix of two
// versions in one decoded file is self-inconsistent.
func versionedCheckpoint(d *netlist.Design, v int) *netio.Checkpoint {
	w := make([]float64, len(d.Instances))
	marker := 1 + float64(v)/1024
	for i := range w {
		w[i] = marker
	}
	blob, _ := json.Marshal(map[string]int{"version": v})
	return &netio.Checkpoint{Design: d, Weights: w, State: blob}
}

// checkConsistent fails if a loaded checkpoint mixes two versions: all
// weights must equal the marker derived from the state blob's version.
func checkConsistent(t *testing.T, c *netio.Checkpoint) {
	t.Helper()
	var st struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(c.State, &st); err != nil {
		t.Fatalf("state blob corrupt: %v", err)
	}
	marker := 1 + float64(st.Version)/1024
	for i, w := range c.Weights {
		if w != marker {
			t.Fatalf("torn checkpoint: state says version %d (marker %v) but weight %d is %v",
				st.Version, marker, i, w)
		}
	}
}

// TestCheckpointConcurrentSaveLoad hammers one checkpoint path with two
// saving goroutines and two loading goroutines. The atomic
// write-temp/fsync/rename protocol must guarantee every load observes
// one complete checkpoint — never a mix of two saves, never a partial
// file — even with writes slowed to a crawl via the faultinject writer
// hook. This is the serving daemon's persistence pattern: snapshot
// flusher and eviction snapshots racing over one session directory.
func TestCheckpointConcurrentSaveLoad(t *testing.T) {
	d := concurrentDesign(t)
	path := filepath.Join(t.TempDir(), "session.ckpt")
	if err := netio.SaveCheckpointFile(path, versionedCheckpoint(d, 0)); err != nil {
		t.Fatal(err)
	}

	faultinject.SetWriter(faultinject.NetioWrite, func(w io.Writer) io.Writer { return &slowWriter{w: w} })
	defer faultinject.Reset()

	const writers, savesPerWriter = 2, 12
	var version atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < savesPerWriter; j++ {
				v := int(version.Add(1))
				if err := netio.SaveCheckpointFile(path, versionedCheckpoint(d, v)); err != nil {
					errc <- fmt.Errorf("save v%d: %w", v, err)
					return
				}
			}
		}()
	}
	var loads int
	readErr := make(chan error, 1)
	go func() {
		defer close(readErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			c, err := netio.LoadCheckpointFile(path)
			if err != nil {
				readErr <- fmt.Errorf("load after %d good loads: %w", loads, err)
				return
			}
			var st struct {
				Version int `json:"version"`
			}
			if err := json.Unmarshal(c.State, &st); err != nil {
				readErr <- fmt.Errorf("load %d: state blob corrupt: %w", loads, err)
				return
			}
			marker := 1 + float64(st.Version)/1024
			for i, w := range c.Weights {
				if w != marker {
					readErr <- fmt.Errorf("torn checkpoint: version %d but weight %d = %v", st.Version, i, w)
					return
				}
			}
			loads++
		}
	}()
	wg.Wait()
	close(stop)
	if err, ok := <-readErr; ok && err != nil {
		t.Fatal(err)
	}
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	final, err := netio.LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, final)

	// No temp litter: every writer either renamed its temp file over the
	// target or cleaned it up on failure.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(path) {
			t.Errorf("leftover file %q after concurrent saves", e.Name())
		}
	}
}

// TestCheckpointConcurrentSaveWithDirSyncFault repeats the concurrent
// hammering with the parent-directory fsync failing (the
// rename-then-crash window): saves report the durability error, but the
// on-disk file must still always decode to one complete checkpoint.
func TestCheckpointConcurrentSaveWithDirSyncFault(t *testing.T) {
	d := concurrentDesign(t)
	path := filepath.Join(t.TempDir(), "session.ckpt")
	if err := netio.SaveCheckpointFile(path, versionedCheckpoint(d, 0)); err != nil {
		t.Fatal(err)
	}

	syncErr := errors.New("injected dir sync failure")
	faultinject.SetError(faultinject.NetioSyncDir, func() error { return syncErr })
	defer faultinject.Reset()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		base := 100 * (i + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				err := netio.SaveCheckpointFile(path, versionedCheckpoint(d, base+j))
				if !errors.Is(err, syncErr) {
					t.Errorf("save should surface the injected dir-sync error, got %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	c, err := netio.LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, c)

	if _, err := os.Stat(path); errors.Is(err, fs.ErrNotExist) {
		t.Fatal("checkpoint vanished under dir-sync faults")
	}
}
