package netio_test

import (
	"bytes"
	"testing"

	"mgba/internal/gen"
	"mgba/internal/netio"
)

// FuzzLoad throws arbitrary bytes — seeded with a valid snapshot plus
// truncations and bit flips of it — at the loader. The contract: Load may
// reject the input with an error, but must never panic, and a design it
// does accept must pass full validation.
func FuzzLoad(f *testing.F) {
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 80, 10
	cfg.Name = "fuzz-seed"
	d, err := gen.Generate(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netio.Save(&buf, d); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version": 1}`))
	f.Add([]byte("not json at all"))
	for _, frac := range []int{4, 2, 10} {
		f.Add(valid[:len(valid)/frac])
	}
	for _, pos := range []int{17, len(valid) / 3, len(valid) / 2, len(valid) - 20} {
		flipped := append([]byte(nil), valid...)
		flipped[pos] ^= 0x20
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := netio.Load(bytes.NewReader(data))
		if err != nil {
			if d != nil {
				t.Fatal("Load returned both a design and an error")
			}
			return
		}
		if d == nil {
			t.Fatal("Load returned nil design with nil error")
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("Load accepted an invalid design: %v", err)
		}
	})
}
