// Package netio persists designs to a versioned JSON format and loads them
// back, so generated test cases can be archived, diffed and shared. Cell
// and derate libraries are reconstructed from the design's technology node
// (the library is synthesized deterministically), so the format stores
// cell *names*, not characterization data.
//
// On top of plain design snapshots the package provides atomic file
// persistence (write to a temp file in the target directory, fsync,
// rename) and a checkpoint format bundling a design with calibration
// weights and an opaque flow-state blob — the durability layer of the
// closure flow's checkpoint/resume mechanism.
package netio

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"mgba/internal/aocv"
	"mgba/internal/cells"
	"mgba/internal/faultinject"
	"mgba/internal/netlist"
)

// FormatVersion identifies the on-disk design schema.
const FormatVersion = 1

// CheckpointVersion identifies the on-disk checkpoint schema. Version 2
// added the per-transform-kind state blobs; version-1 checkpoints remain
// readable.
const CheckpointVersion = 2

type fileDesign struct {
	Version     int     `json:"version"`
	Name        string  `json:"name"`
	Node        int     `json:"node"`
	ClockPeriod float64 `json:"clock_period_ps"`
	ClockRoot   int     `json:"clock_root"`

	Instances []fileInstance `json:"instances"`
	Nets      []fileNet      `json:"nets"`
	FFs       []int          `json:"ffs"`
}

type fileInstance struct {
	Name   string  `json:"name"`
	Cell   string  `json:"cell"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Inputs []int   `json:"inputs,omitempty"`
	Output int     `json:"output"`
	Clock  int     `json:"clock"`
	Dead   bool    `json:"dead,omitempty"`
}

type fileNet struct {
	Driver    int     `json:"driver"`
	Sinks     []int   `json:"sinks,omitempty"`
	WireCap   float64 `json:"wire_cap_ff"`
	WireDelay float64 `json:"wire_delay_ps"`
}

// toFile flattens a design into its serializable form.
func toFile(d *netlist.Design) fileDesign {
	fd := fileDesign{
		Version:     FormatVersion,
		Name:        d.Name,
		Node:        d.Node,
		ClockPeriod: d.ClockPeriod,
		ClockRoot:   d.ClockRoot,
		FFs:         d.FFs,
	}
	for _, in := range d.Instances {
		fd.Instances = append(fd.Instances, fileInstance{
			Name:   in.Name,
			Cell:   in.Cell.Name,
			X:      in.X,
			Y:      in.Y,
			Inputs: in.Inputs,
			Output: in.Output,
			Clock:  in.Clock,
			Dead:   in.Dead,
		})
	}
	for _, n := range d.Nets {
		fd.Nets = append(fd.Nets, fileNet{
			Driver:    n.Driver,
			Sinks:     n.Sinks,
			WireCap:   n.WireCap,
			WireDelay: n.WireDelay,
		})
	}
	return fd
}

// fromFile reconstructs and revalidates a design from its serialized form.
func fromFile(fd *fileDesign) (*netlist.Design, error) {
	if fd.Version != FormatVersion {
		return nil, fmt.Errorf("netio: unsupported format version %d (want %d)", fd.Version, FormatVersion)
	}
	lib, err := cells.DefaultLibrary(fd.Node)
	if err != nil {
		return nil, fmt.Errorf("netio: node %d: %w", fd.Node, err)
	}
	derates, err := aocv.DefaultSet(fd.Node)
	if err != nil {
		return nil, fmt.Errorf("netio: node %d: %w", fd.Node, err)
	}
	d := netlist.New(fd.Name, fd.Node, lib, derates, fd.ClockPeriod)
	for i, fi := range fd.Instances {
		cell := lib.ByName(fi.Cell)
		if cell == nil {
			return nil, fmt.Errorf("netio: instance %d references unknown cell %q", i, fi.Cell)
		}
		in := &netlist.Instance{
			ID:     i,
			Name:   fi.Name,
			Cell:   cell,
			X:      fi.X,
			Y:      fi.Y,
			Inputs: fi.Inputs,
			Output: fi.Output,
			Clock:  fi.Clock,
			Dead:   fi.Dead,
		}
		d.Instances = append(d.Instances, in)
	}
	for i, fn := range fd.Nets {
		d.Nets = append(d.Nets, &netlist.Net{
			ID:        i,
			Driver:    fn.Driver,
			Sinks:     fn.Sinks,
			WireCap:   fn.WireCap,
			WireDelay: fn.WireDelay,
		})
	}
	d.FFs = fd.FFs
	d.ClockRoot = fd.ClockRoot
	if err := checkRefs(d); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("netio: loaded design invalid: %w", err)
	}
	return d, nil
}

// Save writes the design as indented JSON. For durable on-disk snapshots
// use SaveFile, which writes atomically.
func Save(w io.Writer, d *netlist.Design) error {
	w = faultinject.Writer(faultinject.NetioWrite, w)
	fd := toFile(d)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(fd); err != nil {
		return fmt.Errorf("netio: %w", err)
	}
	return nil
}

// Load reads a design saved by Save and revalidates it. The standard-cell
// library and AOCV tables are resynthesized from the stored node.
func Load(r io.Reader) (*netlist.Design, error) {
	r = faultinject.Reader(faultinject.NetioRead, r)
	var fd fileDesign
	dec := json.NewDecoder(r)
	if err := dec.Decode(&fd); err != nil {
		return nil, fmt.Errorf("netio: %w", err)
	}
	return fromFile(&fd)
}

// writeAtomic writes via fn to a temp file alongside path, fsyncs, renames
// it over path, and fsyncs the parent directory, so a crash at any point
// can never clobber or lose an existing snapshot: readers observe either
// the old complete file or the new one. The directory sync is what makes
// the rename itself durable — without it, a power loss shortly after a
// "successful" checkpoint can roll the directory entry back to the old
// file (or to nothing, for a first write).
func writeAtomic(path string, fn func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("netio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = fn(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("netio: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("netio: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("netio: %w", err)
	}
	if err = syncDir(dir); err != nil {
		// The rename has happened and the new snapshot is complete on
		// disk; only its durability against power loss is in doubt, which
		// the caller must hear about.
		return fmt.Errorf("netio: sync dir after rename: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a preceding rename in it is durable.
func syncDir(dir string) error {
	if err := faultinject.Err(faultinject.NetioSyncDir); err != nil {
		return err
	}
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := df.Sync()
	cerr := df.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// SaveFile atomically writes the design snapshot to path.
func SaveFile(path string, d *netlist.Design) error {
	return writeAtomic(path, func(w io.Writer) error { return Save(w, d) })
}

// LoadFile loads a design snapshot from path.
func LoadFile(path string) (*netlist.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netio: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Checkpoint bundles everything needed to resume an interrupted
// optimization run: the current design, the calibration weights in effect
// (nil when running pure GBA), an opaque flow-state blob owned by the
// flow that wrote the checkpoint, and — since format v2 — per-transform
// state blobs keyed by transform kind (a stateful transform like the
// retimer checkpoints its lag map there). Version-1 checkpoints load with
// nil Kinds; the flow derives what it can from the v1 counters.
type Checkpoint struct {
	Design  *netlist.Design
	Weights []float64
	State   json.RawMessage
	Kinds   map[string]json.RawMessage
}

type fileCheckpoint struct {
	Version int                        `json:"checkpoint_version"`
	Design  fileDesign                 `json:"design"`
	Weights []float64                  `json:"weights,omitempty"`
	State   json.RawMessage            `json:"state,omitempty"`
	Kinds   map[string]json.RawMessage `json:"kinds,omitempty"`
}

// SaveCheckpoint writes the checkpoint as one JSON document (always at
// the current CheckpointVersion).
func SaveCheckpoint(w io.Writer, c *Checkpoint) error {
	if c == nil || c.Design == nil {
		return fmt.Errorf("netio: nil checkpoint design")
	}
	if err := validWeights(c.Weights, len(c.Design.Instances)); err != nil {
		return err
	}
	w = faultinject.Writer(faultinject.NetioWrite, w)
	fc := fileCheckpoint{
		Version: CheckpointVersion,
		Design:  toFile(c.Design),
		Weights: c.Weights,
		State:   c.State,
		Kinds:   c.Kinds,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("netio: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint, fully
// revalidating the embedded design and weights: a corrupt or truncated
// stream yields an error, never a partially valid checkpoint. Both the
// current format (v2) and the pre-transform-framework v1 load; a v1
// checkpoint simply has no per-kind blobs.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	r = faultinject.Reader(faultinject.NetioRead, r)
	var fc fileCheckpoint
	dec := json.NewDecoder(r)
	if err := dec.Decode(&fc); err != nil {
		return nil, fmt.Errorf("netio: %w", err)
	}
	if fc.Version < 1 || fc.Version > CheckpointVersion {
		return nil, fmt.Errorf("netio: unsupported checkpoint version %d (want 1..%d)", fc.Version, CheckpointVersion)
	}
	if fc.Version == 1 && fc.Kinds != nil {
		return nil, fmt.Errorf("netio: version-1 checkpoint carries per-kind state")
	}
	d, err := fromFile(&fc.Design)
	if err != nil {
		return nil, err
	}
	if err := validWeights(fc.Weights, len(d.Instances)); err != nil {
		return nil, err
	}
	return &Checkpoint{Design: d, Weights: fc.Weights, State: fc.State, Kinds: fc.Kinds}, nil
}

// SaveCheckpointFile atomically writes the checkpoint to path.
func SaveCheckpointFile(path string, c *Checkpoint) error {
	return writeAtomic(path, func(w io.Writer) error { return SaveCheckpoint(w, c) })
}

// LoadCheckpointFile loads a checkpoint from path.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netio: %w", err)
	}
	defer f.Close()
	return LoadCheckpoint(f)
}

// validWeights checks a calibration weight vector against the design it
// belongs to: nil is fine (pure GBA), otherwise one positive finite weight
// per instance.
func validWeights(w []float64, instances int) error {
	if w == nil {
		return nil
	}
	if len(w) != instances {
		return fmt.Errorf("netio: %d weights for %d instances", len(w), instances)
	}
	for i, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("netio: weight %d is %v", i, v)
		}
	}
	return nil
}

// checkRefs bounds-checks every cross-reference before Validate walks them.
func checkRefs(d *netlist.Design) error {
	nI, nN := len(d.Instances), len(d.Nets)
	netOK := func(id int) bool { return id >= -1 && id < nN }
	instOK := func(id int) bool { return id >= -1 && id < nI }
	for i, in := range d.Instances {
		if !netOK(in.Output) || !netOK(in.Clock) {
			return fmt.Errorf("netio: instance %d has out-of-range net reference", i)
		}
		for _, nid := range in.Inputs {
			if nid < 0 || nid >= nN {
				return fmt.Errorf("netio: instance %d input net %d out of range", i, nid)
			}
		}
	}
	for i, n := range d.Nets {
		if !instOK(n.Driver) {
			return fmt.Errorf("netio: net %d driver out of range", i)
		}
		for _, s := range n.Sinks {
			if s < 0 || s >= nI {
				return fmt.Errorf("netio: net %d sink %d out of range", i, s)
			}
		}
	}
	for _, ff := range d.FFs {
		if ff < 0 || ff >= nI {
			return fmt.Errorf("netio: FF id %d out of range", ff)
		}
		if !d.Instances[ff].IsFF() {
			return fmt.Errorf("netio: instance %d listed as FF but is %s", ff, d.Instances[ff].Cell.Name)
		}
	}
	if d.ClockRoot < -1 || d.ClockRoot >= nN {
		return fmt.Errorf("netio: clock root %d out of range", d.ClockRoot)
	}
	return nil
}
