// Package netio persists designs to a versioned JSON format and loads them
// back, so generated test cases can be archived, diffed and shared. Cell
// and derate libraries are reconstructed from the design's technology node
// (the library is synthesized deterministically), so the format stores
// cell *names*, not characterization data.
package netio

import (
	"encoding/json"
	"fmt"
	"io"

	"mgba/internal/aocv"
	"mgba/internal/cells"
	"mgba/internal/netlist"
)

// FormatVersion identifies the on-disk schema.
const FormatVersion = 1

type fileDesign struct {
	Version     int     `json:"version"`
	Name        string  `json:"name"`
	Node        int     `json:"node"`
	ClockPeriod float64 `json:"clock_period_ps"`
	ClockRoot   int     `json:"clock_root"`

	Instances []fileInstance `json:"instances"`
	Nets      []fileNet      `json:"nets"`
	FFs       []int          `json:"ffs"`
}

type fileInstance struct {
	Name   string  `json:"name"`
	Cell   string  `json:"cell"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Inputs []int   `json:"inputs,omitempty"`
	Output int     `json:"output"`
	Clock  int     `json:"clock"`
	Dead   bool    `json:"dead,omitempty"`
}

type fileNet struct {
	Driver    int     `json:"driver"`
	Sinks     []int   `json:"sinks,omitempty"`
	WireCap   float64 `json:"wire_cap_ff"`
	WireDelay float64 `json:"wire_delay_ps"`
}

// Save writes the design as indented JSON.
func Save(w io.Writer, d *netlist.Design) error {
	fd := fileDesign{
		Version:     FormatVersion,
		Name:        d.Name,
		Node:        d.Node,
		ClockPeriod: d.ClockPeriod,
		ClockRoot:   d.ClockRoot,
		FFs:         d.FFs,
	}
	for _, in := range d.Instances {
		fd.Instances = append(fd.Instances, fileInstance{
			Name:   in.Name,
			Cell:   in.Cell.Name,
			X:      in.X,
			Y:      in.Y,
			Inputs: in.Inputs,
			Output: in.Output,
			Clock:  in.Clock,
			Dead:   in.Dead,
		})
	}
	for _, n := range d.Nets {
		fd.Nets = append(fd.Nets, fileNet{
			Driver:    n.Driver,
			Sinks:     n.Sinks,
			WireCap:   n.WireCap,
			WireDelay: n.WireDelay,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(fd)
}

// Load reads a design saved by Save and revalidates it. The standard-cell
// library and AOCV tables are resynthesized from the stored node.
func Load(r io.Reader) (*netlist.Design, error) {
	var fd fileDesign
	dec := json.NewDecoder(r)
	if err := dec.Decode(&fd); err != nil {
		return nil, fmt.Errorf("netio: %w", err)
	}
	if fd.Version != FormatVersion {
		return nil, fmt.Errorf("netio: unsupported format version %d (want %d)", fd.Version, FormatVersion)
	}
	lib := cells.Default(fd.Node)
	d := netlist.New(fd.Name, fd.Node, lib, aocv.Default(fd.Node), fd.ClockPeriod)
	for i, fi := range fd.Instances {
		cell := lib.ByName(fi.Cell)
		if cell == nil {
			return nil, fmt.Errorf("netio: instance %d references unknown cell %q", i, fi.Cell)
		}
		in := &netlist.Instance{
			ID:     i,
			Name:   fi.Name,
			Cell:   cell,
			X:      fi.X,
			Y:      fi.Y,
			Inputs: fi.Inputs,
			Output: fi.Output,
			Clock:  fi.Clock,
			Dead:   fi.Dead,
		}
		d.Instances = append(d.Instances, in)
	}
	for i, fn := range fd.Nets {
		d.Nets = append(d.Nets, &netlist.Net{
			ID:        i,
			Driver:    fn.Driver,
			Sinks:     fn.Sinks,
			WireCap:   fn.WireCap,
			WireDelay: fn.WireDelay,
		})
	}
	d.FFs = fd.FFs
	d.ClockRoot = fd.ClockRoot
	if err := checkRefs(d); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("netio: loaded design invalid: %w", err)
	}
	return d, nil
}

// checkRefs bounds-checks every cross-reference before Validate walks them.
func checkRefs(d *netlist.Design) error {
	nI, nN := len(d.Instances), len(d.Nets)
	netOK := func(id int) bool { return id >= -1 && id < nN }
	instOK := func(id int) bool { return id >= -1 && id < nI }
	for i, in := range d.Instances {
		if !netOK(in.Output) || !netOK(in.Clock) {
			return fmt.Errorf("netio: instance %d has out-of-range net reference", i)
		}
		for _, nid := range in.Inputs {
			if nid < 0 || nid >= nN {
				return fmt.Errorf("netio: instance %d input net %d out of range", i, nid)
			}
		}
	}
	for i, n := range d.Nets {
		if !instOK(n.Driver) {
			return fmt.Errorf("netio: net %d driver out of range", i)
		}
		for _, s := range n.Sinks {
			if s < 0 || s >= nI {
				return fmt.Errorf("netio: net %d sink %d out of range", i, s)
			}
		}
	}
	for _, ff := range d.FFs {
		if ff < 0 || ff >= nI {
			return fmt.Errorf("netio: FF id %d out of range", ff)
		}
		if !d.Instances[ff].IsFF() {
			return fmt.Errorf("netio: instance %d listed as FF but is %s", ff, d.Instances[ff].Cell.Name)
		}
	}
	if d.ClockRoot < -1 || d.ClockRoot >= nN {
		return fmt.Errorf("netio: clock root %d out of range", d.ClockRoot)
	}
	return nil
}
