package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	v := r.Uint64()
	if v == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck all-zero stream")
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(7)
	f := r.Fork()
	// The fork and the parent should produce different streams.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork correlates with parent: %d matches", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var s float64
	const n = 100000
	for i := 0; i < n; i++ {
		s += r.Float64()
	}
	mean := s / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("Intn biased: digit %d count %d", d, c)
		}
	}
}

func TestIntnOne(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Intn(1) != 0 {
			t.Fatal("Intn(1) != 0")
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(21)
	const n = 200000
	var s, s2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		s += v
		s2 += v * v
	}
	mean := s / n
	variance := s2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%100 + 1
		k := int(kRaw) % (n + 1)
		s := New(seed).SampleWithoutReplacement(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	s := New(2).SampleWithoutReplacement(10, 10)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
}

func TestSampleWithoutReplacementZero(t *testing.T) {
	if s := New(2).SampleWithoutReplacement(10, 0); len(s) != 0 {
		t.Fatalf("len = %d, want 0", len(s))
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestSampleUniformity(t *testing.T) {
	// Small-k path (Floyd) must still be uniform over indices.
	r := New(17)
	counts := make([]int, 20)
	const trials = 40000
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleWithoutReplacement(20, 2) {
			counts[v]++
		}
	}
	want := float64(trials*2) / 20
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("index %d count %d, want ~%v", i, c, want)
		}
	}
}

func TestWeightedSamplerProportional(t *testing.T) {
	ws := NewWeightedSampler([]float64{1, 0, 3})
	r := New(23)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[ws.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.15 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedSamplerTotal(t *testing.T) {
	ws := NewWeightedSampler([]float64{2, 3})
	if ws.Total() != 5 {
		t.Fatalf("Total = %v", ws.Total())
	}
}

func TestWeightedSamplerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWeightedSampler([]float64{1, -1})
}

func TestWeightedSamplerZeroTotalPanics(t *testing.T) {
	ws := NewWeightedSampler([]float64{0, 0})
	if ws.Total() != 0 {
		t.Fatalf("Total = %v", ws.Total())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ws.Sample(New(1))
}

func TestWeightedSamplerSingle(t *testing.T) {
	ws := NewWeightedSampler([]float64{0.5})
	r := New(4)
	for i := 0; i < 100; i++ {
		if ws.Sample(r) != 0 {
			t.Fatal("single-weight sampler returned nonzero index")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkWeightedSample(b *testing.B) {
	w := make([]float64, 100000)
	r := New(1)
	for i := range w {
		w[i] = r.Float64()
	}
	ws := NewWeightedSampler(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ws.Sample(r)
	}
}
