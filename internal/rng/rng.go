// Package rng implements a small, fast, deterministic pseudo-random number
// generator (xoshiro256**) seeded through splitmix64.
//
// All stochastic components of the framework — the synthetic design
// generator, the uniform row sampler of Algorithm 1, and the norm-weighted
// row sampler of Algorithm 2 — draw from this package so that every
// experiment is exactly reproducible from its seed. math/rand would also
// work, but owning the generator keeps the stream stable across Go releases
// and lets us fork independent substreams cheaply.
package rng

import "math"

// Rand is a xoshiro256** generator. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, which guarantees
// a well-mixed nonzero internal state for any seed value, including 0.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork returns a new generator whose stream is independent of r's future
// output. It consumes four values from r.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64() ^ r.Uint64()<<1 ^ r.Uint64()<<2 ^ r.Uint64()<<3)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle applies a Fisher-Yates shuffle over n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n), in no particular order. It panics if k > n or k < 0.
//
// For small k relative to n it uses Floyd's algorithm (O(k) expected work,
// O(k) memory); otherwise it shuffles a full index slice.
func (r *Rand) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleWithoutReplacement k out of range")
	}
	if k == 0 {
		return nil
	}
	if k*4 > n {
		p := r.Perm(n)
		return p[:k]
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// WeightedSampler draws indices with probability proportional to fixed
// nonnegative weights, as Eq. (11) requires for the stochastic CG solver.
// It is built once per weight vector (O(n)) and then samples in O(log n)
// via binary search on the cumulative distribution.
type WeightedSampler struct {
	cum   []float64
	total float64
}

// NewWeightedSampler builds a sampler over weights. Negative weights panic;
// an all-zero or empty weight vector yields a sampler whose Sample panics,
// detectable via Total() == 0.
func NewWeightedSampler(weights []float64) *WeightedSampler {
	ws := &WeightedSampler{cum: make([]float64, len(weights))}
	var c float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: negative or NaN weight")
		}
		c += w
		ws.cum[i] = c
	}
	ws.total = c
	return ws
}

// Total returns the sum of all weights.
func (ws *WeightedSampler) Total() float64 { return ws.total }

// Sample returns one index drawn with probability weight[i]/Total().
func (ws *WeightedSampler) Sample(r *Rand) int {
	if ws.total <= 0 {
		panic("rng: WeightedSampler with zero total weight")
	}
	u := r.Float64() * ws.total
	// Binary search for the first cumulative value exceeding u.
	lo, hi := 0, len(ws.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ws.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
