package gen

import (
	"math"
	"testing"

	"mgba/internal/graph"
	"mgba/internal/sta"
)

func TestConfigValidate(t *testing.T) {
	ok := Toy()
	if err := ok.Validate(); err != nil {
		t.Fatalf("Toy invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Gates = 0 },
		func(c *Config) { c.FFs = 1 },
		func(c *Config) { c.MaxLevel = 0 },
		func(c *Config) { c.LongEdgeP = 1.5 },
		func(c *Config) { c.AreaPerGate = 0 },
		func(c *Config) { c.ViolateFrac = 1 },
		func(c *Config) { c.ViolateFrac = -0.1 },
	}
	for i, mutate := range bad {
		c := Toy()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateToy(t *testing.T) {
	d, err := Generate(Toy())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.FFs) != Toy().FFs {
		t.Fatalf("FFs = %d, want %d", len(d.FFs), Toy().FFs)
	}
	// Instance count = gates + FFs + clock tree.
	comb := 0
	for _, in := range d.Instances {
		if !in.IsFF() && in.Cell.Kind.String() != "CLKBUF" {
			comb++
		}
	}
	if comb != Toy().Gates {
		t.Fatalf("comb gates = %d, want %d", comb, Toy().Gates)
	}
	if d.ClockPeriod <= 0 {
		t.Fatalf("period = %v", d.ClockPeriod)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Toy()
	cfg.Gates, cfg.FFs = 300, 40
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Instances) != len(b.Instances) || a.ClockPeriod != b.ClockPeriod {
		t.Fatal("same seed produced different designs")
	}
	for i := range a.Instances {
		ia, ib := a.Instances[i], b.Instances[i]
		if ia.Cell.Name != ib.Cell.Name || ia.X != ib.X || ia.Output != ib.Output {
			t.Fatalf("instance %d differs", i)
		}
	}
}

func TestSeedChangesDesign(t *testing.T) {
	cfg := Toy()
	cfg.Gates, cfg.FFs = 300, 40
	a, _ := Generate(cfg)
	cfg.Seed++
	b, _ := Generate(cfg)
	same := true
	for i := range a.Instances {
		if i >= len(b.Instances) || a.Instances[i].X != b.Instances[i].X {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical placements")
	}
}

func TestViolationFractionRoughlyMet(t *testing.T) {
	cfg := Toy()
	cfg.Gates, cfg.FFs = 800, 120
	cfg.ViolateFrac = 0.4
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	constrained := 0
	for fi, s := range r.Slack {
		if !math.IsInf(s, 1) {
			constrained++
		}
		_ = fi
	}
	frac := float64(len(r.ViolatingEndpoints())) / float64(constrained)
	if frac < 0.2 || frac > 0.6 {
		t.Fatalf("violating fraction = %v, want near 0.4", frac)
	}
}

func TestDepthDiversity(t *testing.T) {
	// The generator must produce a wide GBA depth spread — that is what
	// makes AOCV pessimism interesting.
	d, err := Generate(Toy())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	dp := g.ComputeDepths()
	minD, maxD := 1<<30, 0
	for _, v := range g.Topo {
		if d.Instances[v].IsFF() {
			continue
		}
		if int(dp.GBA[v]) < minD {
			minD = int(dp.GBA[v])
		}
		if int(dp.GBA[v]) > maxD {
			maxD = int(dp.GBA[v])
		}
	}
	if maxD-minD < 5 {
		t.Fatalf("depth spread [%d,%d] too narrow", minD, maxD)
	}
}

func TestMostGatesOnPaths(t *testing.T) {
	// Dangling logic is wasted: the generator should keep it rare.
	d, err := Generate(Toy())
	if err != nil {
		t.Fatal(err)
	}
	dangling := 0
	comb := 0
	for _, in := range d.Instances {
		if in.IsFF() || in.Cell.Kind.String() == "CLKBUF" {
			continue
		}
		comb++
		if len(d.Nets[in.Output].Sinks) == 0 {
			dangling++
		}
	}
	if frac := float64(dangling) / float64(comb); frac > 0.25 {
		t.Fatalf("dangling gate fraction = %v", frac)
	}
}

func TestSuiteShapes(t *testing.T) {
	suite := Suite()
	if len(suite) != 10 {
		t.Fatalf("suite size = %d", len(suite))
	}
	seen := map[string]bool{}
	for _, cfg := range suite {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
		if seen[cfg.Name] {
			t.Errorf("duplicate name %s", cfg.Name)
		}
		seen[cfg.Name] = true
	}
}

func TestGenerateSmallSuiteMember(t *testing.T) {
	cfg := Suite()[0]
	cfg.Gates, cfg.FFs = 500, 60 // shrink for test speed
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graph.Build(d); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateTinyConfig(t *testing.T) {
	// Degenerate-but-legal configs must still produce valid designs.
	cfg := Config{
		Name: "tiny", Seed: 1, Node: 28, Gates: 5, FFs: 2,
		MaxLevel: 2, LongEdgeP: 0, AreaPerGate: 30, ViolateFrac: 0,
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}
