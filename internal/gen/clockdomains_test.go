package gen

import (
	"testing"

	"mgba/internal/engine"
	"mgba/internal/graph"
	"mgba/internal/sta"
)

// domainConfig is a small multi-domain design for the clock properties.
func domainConfig(domains int, seed uint64) Config {
	c := Toy()
	c.Name = "domains"
	c.Seed = seed
	c.Gates, c.FFs = 800, 120
	c.ClockDomains = domains
	c.FFsPerLeaf = 16
	return c
}

// TestClockDomainsProperties is the multi-domain clock contract between
// gen and graph.ClockIndex: flip-flops group by clock leaf exactly as
// their CK nets say, the precomputed shared-prefix table matches a brute
// recomputation from the chains, chains of different domains share no
// buffer, and the engine's CRPR credit is therefore exactly zero across
// domains while staying positive within a leaf.
func TestClockDomainsProperties(t *testing.T) {
	for _, domains := range []int{2, 3, 4} {
		for _, seed := range []uint64{7, 19} {
			d, err := Generate(domainConfig(domains, seed))
			if err != nil {
				t.Fatal(err)
			}
			g, err := graph.Build(d)
			if err != nil {
				t.Fatal(err)
			}
			ci := g.ClockIndex()

			// Leaf grouping: same CK net <=> same leaf id.
			leafOfNet := make(map[int]int32)
			for fi, ffID := range d.FFs {
				ck := d.Instances[ffID].Clock
				if prev, ok := leafOfNet[ck]; ok {
					if prev != ci.LeafOfFF[fi] {
						t.Fatalf("domains=%d seed=%d: CK net %d maps to leaves %d and %d",
							domains, seed, ck, prev, ci.LeafOfFF[fi])
					}
				} else {
					leafOfNet[ck] = ci.LeafOfFF[fi]
				}
			}
			seenLeaf := make(map[int32]int)
			for ck, leaf := range leafOfNet {
				if prev, ok := seenLeaf[leaf]; ok {
					t.Fatalf("domains=%d seed=%d: leaf %d claimed by CK nets %d and %d",
						domains, seed, leaf, prev, ck)
				}
				seenLeaf[leaf] = ck
			}

			// Shared-prefix table vs brute recomputation over the chains.
			brute := func(a, b []int32) int {
				n := 0
				for n < len(a) && n < len(b) && a[n] == b[n] {
					n++
				}
				return n
			}
			nl := ci.NumLeaves()
			for a := 0; a < nl; a++ {
				for b := 0; b < nl; b++ {
					if got, want := ci.CommonLen(a, b), brute(ci.Chains[a], ci.Chains[b]); got != want {
						t.Fatalf("domains=%d seed=%d: CommonLen(%d,%d)=%d, brute %d",
							domains, seed, a, b, got, want)
					}
				}
			}

			// Domain separation: FFs are assigned round-robin by creation
			// order, so fi%domains is the domain; cross-domain chains must
			// share nothing, same-domain chains share at least the 3-buffer
			// domain repeater chain.
			cfg := sta.DefaultConfig()
			r := engine.NewSession(g).Run(cfg)
			crossChecked, sameChecked := 0, 0
			for fi := range d.FFs {
				for fj := fi + 1; fj < len(d.FFs); fj++ {
					la, lb := int(ci.LeafOfFF[fi]), int(ci.LeafOfFF[fj])
					if fi%domains != fj%domains {
						if n := ci.CommonLen(la, lb); n != 0 {
							t.Fatalf("domains=%d seed=%d: cross-domain FFs %d,%d share %d clock buffers",
								domains, seed, fi, fj, n)
						}
						if c := r.CRPRCredit(fi, fj); c != 0 {
							t.Fatalf("domains=%d seed=%d: cross-domain CRPR credit %v != 0",
								domains, seed, c)
						}
						crossChecked++
					} else if la == lb {
						if n := ci.CommonLen(la, lb); n != len(ci.Chains[la]) {
							t.Fatalf("domains=%d seed=%d: self prefix %d != chain depth %d",
								domains, seed, n, len(ci.Chains[la]))
						}
						if c := r.CRPRCredit(fi, fj); c <= 0 {
							t.Fatalf("domains=%d seed=%d: same-leaf CRPR credit %v not positive",
								domains, seed, c)
						}
						sameChecked++
					} else if n := ci.CommonLen(la, lb); n < 3 {
						t.Fatalf("domains=%d seed=%d: same-domain leaves %d,%d share only %d buffers (< repeater chain)",
							domains, seed, la, lb, n)
					}
				}
			}
			if crossChecked == 0 || sameChecked == 0 {
				t.Fatalf("domains=%d seed=%d: degenerate coverage (cross=%d same=%d)",
					domains, seed, crossChecked, sameChecked)
			}
		}
	}
}

// TestSingleDomainUnchanged pins backward compatibility: ClockDomains <= 1
// with FFsPerLeaf unset must produce the identical design to a config
// that predates the knobs.
func TestSingleDomainUnchanged(t *testing.T) {
	a, err := Generate(Toy())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Toy()
	cfg.ClockDomains = 1
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Instances) != len(b.Instances) || len(a.Nets) != len(b.Nets) || a.ClockPeriod != b.ClockPeriod {
		t.Fatalf("ClockDomains=1 changed the design: %d/%d insts, %d/%d nets, period %v/%v",
			len(a.Instances), len(b.Instances), len(a.Nets), len(b.Nets), a.ClockPeriod, b.ClockPeriod)
	}
	for i, in := range a.Instances {
		bi := b.Instances[i]
		if in.Cell.Name != bi.Cell.Name || in.X != bi.X || in.Y != bi.Y {
			t.Fatalf("instance %d differs", i)
		}
	}
}
