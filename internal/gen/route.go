package gen

import (
	"fmt"

	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/rng"
)

// The routed perturbation band: per-net wire delays scale by a factor in
// [RouteMinFactor, RouteMaxFactor), biased toward increase — detours,
// layer assignment and via stacks mostly lengthen a route relative to
// the pre-route span estimate, and occasionally a net shakes out
// slightly shorter.
const (
	RouteMinFactor = 0.95
	RouteMaxFactor = 1.40
)

// routeSalt decorrelates the per-net route stream from every other use
// of the run seed (the solver's row-selection stream in particular).
const routeSalt = 0x9E3779B97F4A7C15

// Route emits the deterministic "routed" twin of a design: the same
// netlist and placement with every data net's wire delay scaled by a
// reproducible per-net factor — the stand-in for the parasitics a router
// would produce. Clock nets (the clock root and every net driven from
// inside the clock tree) are left untouched, so clock arrivals, capture
// budgets and CRPR credits are bit-identical between the pre-route and
// routed views and the whole cross-stage gap lives in the data path.
//
// The perturbation is a pure function of (seed, net ID): deriving the
// routed twin twice from the same design state — or mirroring cell
// changes into an existing twin instead of re-deriving it — lands on
// bit-identical timing, which is what lets incremental recalibration on
// the cross-stage pair match cold calibration exactly.
func Route(d *netlist.Design, seed uint64) (*netlist.Design, error) {
	g, err := graph.Build(d)
	if err != nil {
		return nil, fmt.Errorf("gen: route: %w", err)
	}
	rd := d.Clone()
	rd.Name = d.Name + "-routed"
	for _, n := range rd.Nets {
		if n.ID == rd.ClockRoot || n.Driver < 0 || g.IsClock(n.Driver) {
			continue
		}
		n.WireDelay *= RouteFactor(seed, n.ID)
	}
	return rd, nil
}

// RouteFactor returns the deterministic wire-delay scale of one net under
// the given route seed.
func RouteFactor(seed uint64, netID int) float64 {
	r := rng.New(seed ^ routeSalt*uint64(netID+1))
	return RouteMinFactor + r.Float64()*(RouteMaxFactor-RouteMinFactor)
}
