package gen

import (
	"testing"

	"mgba/internal/graph"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

func coneCfg() Config {
	cfg := Toy() // Toy is cone mode
	cfg.Gates, cfg.FFs = 500, 60
	cfg.Name = "cone-test"
	return cfg
}

func TestConeModeValidDesign(t *testing.T) {
	d, err := Generate(coneCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := graph.Build(d); err != nil {
		t.Fatal(err)
	}
}

func TestConeModeDeterministic(t *testing.T) {
	a, err := Generate(coneCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(coneCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Instances) != len(b.Instances) || a.ClockPeriod != b.ClockPeriod {
		t.Fatal("cone mode not deterministic")
	}
}

func TestConeModeEveryEndpointDriven(t *testing.T) {
	d, err := Generate(coneCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, ffID := range d.FFs {
		ff := d.Instances[ffID]
		if d.Nets[ff.Inputs[0]].Driver < 0 {
			t.Fatalf("FF %s D pin undriven", ff.Name)
		}
	}
}

func TestConeModeDepthsClustered(t *testing.T) {
	cfg := coneCfg()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	an := pba.NewAnalyzer(r)
	// Worst-path depths should cluster within the configured band (the
	// generator clusters cone depths near MaxLevel, modulo joins/shares).
	deep := 0
	total := 0
	for fi, ffID := range d.FFs {
		if len(g.Fanin(ffID)) == 0 {
			continue
		}
		p := an.WorstPath(fi)
		if p == nil {
			continue
		}
		total++
		if p.NumGates() >= cfg.MaxLevel-3 {
			deep++
		}
	}
	if total == 0 {
		t.Fatal("no constrained endpoints")
	}
	if frac := float64(deep) / float64(total); frac < 0.5 {
		t.Fatalf("only %.0f%% of worst paths near the depth band", frac*100)
	}
}

func TestConeModeMultiplicity(t *testing.T) {
	// The defining property of the cone regime: endpoints own many more
	// violated paths than the per-endpoint top-k' selection keeps.
	d, err := Generate(coneCfg())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.DefaultConfig())
	an := pba.NewAnalyzer(r)
	many := 0
	for fi := range d.FFs {
		if len(an.KWorst(fi, 60, nil)) >= 50 {
			many++
		}
	}
	if many < 5 {
		t.Fatalf("only %d endpoints with >=50 paths; cone reconvergence too weak", many)
	}
}

func TestConeModeShareValidation(t *testing.T) {
	cfg := coneCfg()
	cfg.ShareP = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("ShareP > 1 accepted")
	}
	cfg = coneCfg()
	cfg.JoinP = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative JoinP accepted")
	}
}

func TestDepthCapLimitsViolationDepth(t *testing.T) {
	base := coneCfg()
	base.DepthCap = 0
	capped := coneCfg()
	capped.DepthCap = 0.05
	dBase, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	dCapped, err := Generate(capped)
	if err != nil {
		t.Fatal(err)
	}
	// The capped design must not have a shorter period than the uncapped
	// one (the floor can only raise it).
	if dCapped.ClockPeriod < dBase.ClockPeriod-1e-9 {
		t.Fatalf("depth cap lowered the period: %v vs %v", dCapped.ClockPeriod, dBase.ClockPeriod)
	}
}

func TestSeaAndConeSuiteMix(t *testing.T) {
	suite := Suite()
	cones, seas := 0, 0
	for _, cfg := range suite {
		if cfg.ConeMode {
			cones++
		} else {
			seas++
		}
	}
	if cones == 0 || seas == 0 {
		t.Fatalf("suite must mix styles: %d cone, %d sea", cones, seas)
	}
}
