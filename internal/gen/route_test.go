package gen

import (
	"testing"

	"mgba/internal/graph"
)

func TestRouteDeterministicAndClockInvariant(t *testing.T) {
	d, err := Generate(Toy())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Route(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Route(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Validate(); err != nil {
		t.Fatalf("routed twin invalid: %v", err)
	}
	perturbed := 0
	for i, n := range d.Nets {
		n1, n2 := r1.Nets[i], r2.Nets[i]
		if n1.WireDelay != n2.WireDelay {
			t.Fatalf("net %d: routing not deterministic (%v vs %v)", i, n1.WireDelay, n2.WireDelay)
		}
		clock := n.ID == d.ClockRoot || (n.Driver >= 0 && g.IsClock(n.Driver))
		if clock {
			if n1.WireDelay != n.WireDelay {
				t.Fatalf("clock net %d perturbed: %v -> %v", i, n.WireDelay, n1.WireDelay)
			}
			continue
		}
		if n1.WireCap != n.WireCap {
			t.Fatalf("net %d: wire cap perturbed (%v -> %v); routing must only move delays",
				i, n.WireCap, n1.WireCap)
		}
		if n.WireDelay == 0 {
			continue
		}
		f := n1.WireDelay / n.WireDelay
		if f < RouteMinFactor || f >= RouteMaxFactor {
			t.Fatalf("net %d: factor %v outside [%v,%v)", i, f, RouteMinFactor, RouteMaxFactor)
		}
		if n1.WireDelay != n.WireDelay {
			perturbed++
		}
	}
	if perturbed == 0 {
		t.Fatal("Route perturbed no data net")
	}
	// A different seed must route differently.
	r3, err := Route(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range r1.Nets {
		if r1.Nets[i].WireDelay != r3.Nets[i].WireDelay {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed has no effect on routing")
	}
	// The twin is independent of the source design.
	origCell := d.Instances[0].Cell
	r1.Instances[0].Cell = nil
	if d.Instances[0].Cell != origCell {
		t.Fatal("routed twin shares instance storage with the source design")
	}
	r1.Instances[0].Cell = origCell
}
