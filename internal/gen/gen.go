// Package gen synthesizes placed register-to-register designs that stand
// in for the paper's proprietary industrial test cases D1-D10.
//
// The generator controls exactly the properties the pessimism mechanisms
// feed on:
//
//   - a wide logic-depth distribution (shallow joins into deep cones make
//     GBA's worst-depth AOCV lookup pessimistic, as in Fig. 2);
//   - reconvergent fanout and multi-input merges (worst-slew pessimism);
//   - spatial placement spread (distance-dependent derating and wire delay);
//   - a multi-level clock tree with distinct branches (CRPR pessimism);
//   - a clock period tuned so a controlled fraction of endpoints violate,
//     which is the population the closure flow and the mGBA fit work on.
//
// Everything is reproducible from Config.Seed.
package gen

import (
	"fmt"
	"math"
	"sort"

	"mgba/internal/aocv"
	"mgba/internal/cells"
	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/rng"
	"mgba/internal/sta"
)

// Config parameterizes one synthetic design.
type Config struct {
	Name string
	Seed uint64
	Node int // technology node in nm

	Gates int // combinational gate count
	FFs   int // flip-flop count

	MaxLevel    int     // upper bound on assigned logic levels
	LongEdgeP   float64 // probability an input reaches far back in levels
	AreaPerGate float64 // um^2 of die area per gate (sets the die size)

	// ViolateFrac is the fraction of endpoints that should have negative
	// GBA setup slack after period tuning.
	ViolateFrac float64

	// EndpointLevelBias is the probability that a flip-flop D pin attaches
	// in the top third of the logic levels (cone outputs). The remainder
	// attach at arbitrary levels, creating shallow endpoints. Zero defaults
	// to 0.95. Ignored in cone mode.
	EndpointLevelBias float64

	// DepthCap bounds how deep the bulk of the violations may be, as a
	// fraction of the 95th-percentile required period (see sta.TunePeriod).
	// Zero disables the cap. Cone designs use a small cap so violations
	// stay within gate-sizing reach; sea-of-gates designs leave it off.
	DepthCap float64

	// ConeMode switches the logic style: instead of one global
	// level-structured sea of gates, every endpoint receives its own small
	// reconvergent logic cone (datapath-like structure). Cones multiply
	// path counts through few gates — the regime of the paper's §3.2
	// study. ShareP is the probability a cone input borrows a signal from
	// an earlier cone; JoinP the probability a register output joins a
	// cone at a deep level (the shallow-join pessimism of Fig. 2).
	ConeMode bool
	ShareP   float64
	JoinP    float64

	// ClockDomains, when >= 2, builds that many independent clock subtrees
	// diverging at the clock root net: flip-flops are assigned to domains
	// round-robin by creation order, and launch/capture pairs in different
	// domains share no clock buffers (zero CRPR credit). <= 1 keeps the
	// historical single quadrant tree, bit-identical to older configs.
	ClockDomains int

	// FFsPerLeaf sets the clock tree's leaf-buffer density — one leaf
	// buffer per this many flip-flops, on a regular die-covering grid whose
	// containing cell gives the nearest leaf in O(1). 0 keeps the
	// historical per-quadrant grid with its linear-scan hookup. Setting
	// either this or ClockDomains >= 2 selects the grid layout.
	FFsPerLeaf int
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Gates < 1:
		return fmt.Errorf("gen: need at least one gate")
	case c.FFs < 2:
		return fmt.Errorf("gen: need at least two flip-flops")
	case c.MaxLevel < 1:
		return fmt.Errorf("gen: MaxLevel must be >= 1")
	case c.LongEdgeP < 0 || c.LongEdgeP > 1:
		return fmt.Errorf("gen: LongEdgeP outside [0,1]")
	case c.AreaPerGate <= 0:
		return fmt.Errorf("gen: AreaPerGate must be positive")
	case c.ViolateFrac < 0 || c.ViolateFrac >= 1:
		return fmt.Errorf("gen: ViolateFrac outside [0,1)")
	case c.ShareP < 0 || c.ShareP > 1:
		return fmt.Errorf("gen: ShareP outside [0,1]")
	case c.JoinP < 0 || c.JoinP > 1:
		return fmt.Errorf("gen: JoinP outside [0,1]")
	case c.ClockDomains < 0 || c.ClockDomains > 16:
		return fmt.Errorf("gen: ClockDomains outside [0,16]")
	case c.FFsPerLeaf < 0:
		return fmt.Errorf("gen: FFsPerLeaf must be >= 0")
	}
	return nil
}

// Generate builds, places, wires, validates and period-tunes a design.
func Generate(cfg Config) (*netlist.Design, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	lib := cells.Default(cfg.Node)
	d := netlist.New(cfg.Name, cfg.Node, lib, aocv.Default(cfg.Node), 1)

	die := math.Sqrt(float64(cfg.Gates+cfg.FFs) * cfg.AreaPerGate)

	var clkNets *clockNets
	var err error
	if cfg.ClockDomains >= 2 || cfg.FFsPerLeaf > 0 {
		clkNets, err = buildClockForest(d, die, cfg.FFs, cfg.ClockDomains, cfg.FFsPerLeaf)
	} else {
		clkNets, err = buildClockTree(d, r, die, cfg.FFs)
	}
	if err != nil {
		return nil, err
	}

	// Place flip-flops and create their Q nets; D nets are wired at the end.
	ffCell, err := lib.Pick(cells.DFF, 1)
	if err != nil {
		return nil, err
	}
	type ffRec struct {
		id   int
		dNet int
	}
	ffs := make([]ffRec, cfg.FFs)
	qNets := make([]int, cfg.FFs)
	for i := range ffs {
		x, y := r.Float64()*die, r.Float64()*die
		dNet := d.AddNet()
		qNet := d.AddNet()
		clk := clkNets.leafFor(i, x, y)
		ff, err := d.AddFF(ffCell, x, y, dNet, qNet, clk)
		if err != nil {
			return nil, err
		}
		ffs[i] = ffRec{id: ff.ID, dNet: dNet}
		qNets[i] = qNet
	}

	if cfg.ConeMode {
		ffIDs := make([]int, len(ffs))
		dNets := make([]int, len(ffs))
		for i := range ffs {
			ffIDs[i] = ffs[i].id
			dNets[i] = ffs[i].dNet
		}
		if err := generateCones(cfg, d, r, lib, die, ffIDs, dNets, qNets); err != nil {
			return nil, err
		}
		return finishDesign(cfg, d)
	}

	// driverRec tracks candidate input sources per logic level.
	type driverRec struct {
		net     int
		x, y    float64
		fanouts int
	}
	levels := make([][]driverRec, cfg.MaxLevel+1)
	for i, q := range qNets {
		ff := d.Instances[ffs[i].id]
		levels[0] = append(levels[0], driverRec{net: q, x: ff.X, y: ff.Y})
	}

	// pick chooses an input driver for a gate at the given level and
	// position: sample a handful of candidates from a level window and take
	// the spatially closest, preferring drivers that still have no fanout.
	pick := func(level int, x, y float64) *driverRec {
		var best *driverRec
		bestScore := math.Inf(1)
		for try := 0; try < 12; try++ {
			// Mostly strict level discipline (stride 1): the minimum depth
			// through a gate then tracks its level, keeping GBA's
			// worst-depth lookup honest for most of the logic. Long edges
			// (enable-like signals from any earlier level) are the
			// controlled source of depth pessimism.
			var l int
			switch {
			case r.Float64() < cfg.LongEdgeP:
				l = r.Intn(level)
			case level >= 2 && r.Float64() < 0.05:
				l = level - 2
			default:
				l = level - 1
			}
			if len(levels[l]) == 0 {
				continue
			}
			c := &levels[l][r.Intn(len(levels[l]))]
			score := math.Hypot(c.x-x, c.y-y)
			if c.fanouts == 0 {
				score *= 0.25 // strongly prefer absorbing dangling outputs
			}
			if score < bestScore {
				bestScore = score
				best = c
			}
		}
		return best
	}

	kinds1 := []cells.Kind{cells.Inv, cells.Buf}
	kinds2 := []cells.Kind{cells.Nand2, cells.Nor2, cells.And2, cells.Or2, cells.Xor2}
	kinds3 := []cells.Kind{cells.Aoi21, cells.Oai21, cells.Mux2}

	// Assign levels up front and create gates in ascending level order, so
	// every gate finds genuinely lower-level drivers and the fallback to a
	// register output (a depth-1 shortcut) stays a rare event instead of a
	// systematic one.
	levelsOf := make([]int, cfg.Gates)
	for i := range levelsOf {
		levelsOf[i] = 1 + r.Intn(cfg.MaxLevel)
	}
	sort.Ints(levelsOf)
	for i := 0; i < cfg.Gates; i++ {
		level := levelsOf[i]
		x, y := r.Float64()*die, r.Float64()*die

		var kind cells.Kind
		switch p := r.Float64(); {
		case p < 0.30:
			kind = kinds1[r.Intn(len(kinds1))]
		case p < 0.88:
			kind = kinds2[r.Intn(len(kinds2))]
		default:
			kind = kinds3[r.Intn(len(kinds3))]
		}
		// Everything starts at minimum drive: the input to a post-route
		// flow is already area-optimized, so area/leakage differences
		// between the flows come from over-fixing, not from recovering a
		// pre-existing slack pool.
		cell, err := lib.Pick(kind, 1)
		if err != nil {
			return nil, err
		}
		ins := make([]int, kind.Inputs())
		ok := true
		for p := range ins {
			c := pick(level, x, y)
			if c == nil {
				ok = false
				break
			}
			c.fanouts++
			ins[p] = c.net
		}
		if !ok {
			// No candidates below this level yet (possible very early with
			// tiny configs): fall back to an FF output.
			q := qNets[r.Intn(len(qNets))]
			for p := range ins {
				ins[p] = q
			}
		}
		out := d.AddNet()
		g, err := d.AddGate(cell, x, y, ins, out)
		if err != nil {
			return nil, err
		}
		levels[level] = append(levels[level], driverRec{net: out, x: g.X, y: g.Y})
	}

	// Wire every FF's D pin, preferring dangling outputs and spatial
	// proximity. Candidate levels are biased toward the top of the cone:
	// real endpoints collect the outputs of their logic cones, and an
	// endpoint attached deep inside a cone would collapse the minimum
	// suffix depth (and thus the GBA AOCV depth) of everything above it,
	// inflating pessimism far beyond realistic netlists. A minority of
	// endpoints still attach at arbitrary levels — those are the shallow
	// paths that make worst-depth pessimism interesting (Fig. 2).
	bias := cfg.EndpointLevelBias
	if bias == 0 {
		bias = 0.95
	}
	for i := range ffs {
		ff := d.Instances[ffs[i].id]
		var best *driverRec
		bestScore := math.Inf(1)
		for try := 0; try < 24; try++ {
			var l int
			if r.Float64() < bias {
				span := cfg.MaxLevel / 3
				if span < 1 {
					span = 1
				}
				l = cfg.MaxLevel - r.Intn(span)
			} else {
				l = 1 + r.Intn(cfg.MaxLevel)
			}
			if len(levels[l]) == 0 {
				continue
			}
			c := &levels[l][r.Intn(len(levels[l]))]
			score := math.Hypot(c.x-ff.X, c.y-ff.Y)
			if c.fanouts == 0 {
				score *= 0.1
			}
			if score < bestScore {
				bestScore = score
				best = c
			}
		}
		if best == nil {
			// Degenerate tiny config: feed from another FF's Q.
			best = &levels[0][r.Intn(len(levels[0]))]
		}
		best.fanouts++
		src := best.net
		// Rewire the placeholder D net: detach the FF from it and connect
		// the FF as a sink of src instead.
		old := d.Nets[ffs[i].dNet]
		for k, s := range old.Sinks {
			if s == ff.ID {
				old.Sinks = append(old.Sinks[:k], old.Sinks[k+1:]...)
				break
			}
		}
		ff.Inputs[0] = src
		d.Nets[src].Sinks = append(d.Nets[src].Sinks, ff.ID)
	}

	return finishDesign(cfg, d)
}

// finishDesign derives wire parasitics, validates, and tunes the clock
// period to the configured violation pressure.
func finishDesign(cfg Config, d *netlist.Design) (*netlist.Design, error) {
	d.AutoWire()
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated design invalid: %w", err)
	}
	g, err := graph.Build(d)
	if err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}
	period, err := sta.TunePeriod(g, sta.DefaultConfig(), cfg.ViolateFrac, cfg.DepthCap)
	if err != nil {
		return nil, err
	}
	d.ClockPeriod = period
	return d, nil
}

// coneDriver is an input candidate while building a cone.
type coneDriver struct {
	net     int
	x, y    float64
	fanouts int
}

// generateCones builds one small reconvergent cone per endpoint until the
// gate budget runs out. Cones have strict level discipline internally, so
// each gate's minimum depth tracks its level; pessimism enters through
// JoinP register joins and ShareP cross-cone borrowing.
func generateCones(cfg Config, d *netlist.Design, r *rng.Rand, lib *cells.Library,
	die float64, ffIDs, dNets, qNets []int) error {

	kinds2 := []cells.Kind{cells.Nand2, cells.Nor2, cells.And2, cells.Or2, cells.Xor2}
	rewireD := func(i int, srcNet int) {
		ff := d.Instances[ffIDs[i]]
		old := d.Nets[dNets[i]]
		for k, sk := range old.Sinks {
			if sk == ff.ID {
				old.Sinks = append(old.Sinks[:k], old.Sinks[k+1:]...)
				break
			}
		}
		ff.Inputs[0] = srcNet
		d.Nets[srcNet].Sinks = append(d.Nets[srcNet].Sinks, ff.ID)
	}

	// Gates from completed cones, available for cross-cone sharing.
	var shared []coneDriver
	launchUse := make([]int, len(qNets))
	budget := cfg.Gates
	avg := cfg.Gates/len(ffIDs) + 1
	order := r.Perm(len(ffIDs))
	fedBy := make([]int, len(ffIDs)) // net feeding each endpoint, -1 pending
	for i := range fedBy {
		fedBy[i] = -1
	}
	for _, ei := range order {
		if budget <= 0 {
			break
		}
		ep := d.Instances[ffIDs[ei]]
		size := 2 + r.Intn(2*avg)
		if size > budget {
			size = budget
		}
		// Cone depths cluster near MaxLevel, the way synthesis balances
		// paths against the clock target; multiplicity still varies through
		// cone width. A clustered delay distribution is what lets many
		// endpoints violate *shallowly* after period tuning.
		depth := cfg.MaxLevel - r.Intn(3)
		if depth < 2 {
			depth = 2
		}
		if depth > size {
			depth = size
		}
		// Launch registers: prefer nearby, lightly-used ones. Die-wide or
		// heavily-shared launches would carry enormous wire loads and a
		// collapsed minimum launched depth, drowning every other pessimism
		// source in the FF arc.
		nLaunch := 2 + r.Intn(3)
		var l0 []coneDriver
		for t := 0; t < nLaunch; t++ {
			bestLi, bestScore := 0, math.Inf(1)
			for try := 0; try < 8; try++ {
				li := r.Intn(len(qNets))
				lf := d.Instances[ffIDs[li]]
				score := (1 + math.Hypot(lf.X-ep.X, lf.Y-ep.Y)) * float64(1+launchUse[li])
				if score < bestScore {
					bestScore, bestLi = score, li
				}
			}
			launchUse[bestLi]++
			lf := d.Instances[ffIDs[bestLi]]
			l0 = append(l0, coneDriver{net: qNets[bestLi], x: lf.X, y: lf.Y})
		}
		levels := make([][]coneDriver, depth+1)
		levels[0] = l0
		// One gate per level first (guarantees full depth), remainder
		// spread randomly.
		levelOf := make([]int, size)
		for k := 0; k < size; k++ {
			if k < depth {
				levelOf[k] = k + 1
			} else {
				levelOf[k] = 1 + r.Intn(depth)
			}
		}
		sort.Ints(levelOf)
		pick := func(l int) *coneDriver {
			// Prefer dangling outputs of the previous level for internal
			// reconvergence without depth spread.
			pool := levels[l-1]
			if len(pool) == 0 {
				pool = levels[0]
			}
			best := &pool[r.Intn(len(pool))]
			for t := 0; t < 4; t++ {
				c := &pool[r.Intn(len(pool))]
				if c.fanouts < best.fanouts {
					best = c
				}
			}
			return best
		}
		for k := 0; k < size; k++ {
			l := levelOf[k]
			var kind cells.Kind
			if r.Float64() < 0.45 {
				kind = cells.Inv
			} else {
				kind = kinds2[r.Intn(len(kinds2))]
			}
			cell, err := lib.Pick(kind, 1)
			if err != nil {
				return err
			}
			// Place along the launch-to-endpoint span with jitter.
			frac := float64(l) / float64(depth+1)
			lx := levels[0][0].x
			ly := levels[0][0].y
			x := lx + (ep.X-lx)*frac + (r.Float64()-0.5)*die*0.05
			y := ly + (ep.Y-ly)*frac + (r.Float64()-0.5)*die*0.05
			ins := make([]int, kind.Inputs())
			for pin := range ins {
				switch {
				case r.Float64() < cfg.JoinP:
					// A register joins the cone at this depth (Fig. 2).
					ins[pin] = qNets[r.Intn(len(qNets))]
				case len(shared) > 0 && r.Float64() < cfg.ShareP:
					c := &shared[r.Intn(len(shared))]
					c.fanouts++
					ins[pin] = c.net
				default:
					c := pick(l)
					c.fanouts++
					ins[pin] = c.net
				}
			}
			out := d.AddNet()
			g, err := d.AddGate(cell, x, y, ins, out)
			if err != nil {
				return err
			}
			levels[l] = append(levels[l], coneDriver{net: out, x: g.X, y: g.Y})
			budget--
		}
		// The endpoint consumes a top-level gate; remaining cone gates
		// become sharable drivers.
		top := &levels[depth][r.Intn(len(levels[depth]))]
		top.fanouts++
		rewireD(ei, top.net)
		fedBy[ei] = top.net
		for l := 1; l <= depth; l++ {
			shared = append(shared, levels[l]...)
		}
	}
	// Endpoints left without a cone (budget exhausted): feed from a shared
	// gate, or from another register when no logic exists at all.
	for ei, fed := range fedBy {
		if fed >= 0 {
			continue
		}
		if len(shared) > 0 {
			c := &shared[r.Intn(len(shared))]
			c.fanouts++
			rewireD(ei, c.net)
		} else {
			rewireD(ei, qNets[(ei+1)%len(qNets)])
		}
	}
	return nil
}

// clockNets locates the leaf clock nets for nearest-leaf FF hookup. The
// historical tree fills only nets/xs/ys and scans linearly; the forest
// layout additionally sets domains/gridN/die and answers in O(1) from the
// regular leaf grid.
type clockNets struct {
	nets []int
	xs   []float64
	ys   []float64

	domains int     // 0 for the historical tree
	gridN   int     // leaves per domain are a gridN x gridN die cover
	die     float64 // die edge, for grid-cell lookup
}

func (c *clockNets) nearest(x, y float64) int {
	best, bestD := c.nets[0], math.Inf(1)
	for i, n := range c.nets {
		dd := math.Hypot(c.xs[i]-x, c.ys[i]-y)
		if dd < bestD {
			bestD = dd
			best = n
		}
	}
	return best
}

// leafFor returns the clock leaf net for flip-flop ffIdx at (x, y):
// the nearest leaf of the FF's round-robin domain in forest layouts, the
// historical nearest-of-all scan otherwise. On a regular grid the leaf of
// the containing cell is never farther than any other cell's leaf (per
// axis, |x-own| <= cell/2 <= |x-other|), so the lookup is exact.
func (c *clockNets) leafFor(ffIdx int, x, y float64) int {
	if c.domains == 0 {
		return c.nearest(x, y)
	}
	dom := ffIdx % c.domains
	cell := func(v float64) int {
		g := int(v / c.die * float64(c.gridN))
		if g < 0 {
			g = 0
		}
		if g >= c.gridN {
			g = c.gridN - 1
		}
		return g
	}
	return c.nets[(dom*c.gridN+cell(x))*c.gridN+cell(y)]
}

// buildClockTree creates a three-level tree — root buffer, four quadrant
// buffers, and a grid of leaf buffers — and returns the leaf nets.
func buildClockTree(d *netlist.Design, r *rng.Rand, die float64, nFFs int) (*clockNets, error) {
	root := d.AddNet()
	if err := d.SetClockRoot(root); err != nil {
		return nil, err
	}
	cb, err := d.Lib.Pick(cells.ClkBuf, 4)
	if err != nil {
		return nil, err
	}
	cbLeaf, err := d.Lib.Pick(cells.ClkBuf, 2)
	if err != nil {
		return nil, err
	}
	// Root repeater chain at the die center: realistic clock trees are
	// many buffers deep, which both tempers per-buffer AOCV derates (depth
	// cancellation) and creates a deep shared prefix for CRPR.
	cur := root
	for i := 0; i < 3; i++ {
		next := d.AddNet()
		if _, err := d.AddGate(cb, die/2, die/2, []int{cur}, next); err != nil {
			return nil, err
		}
		cur = next
	}
	rootOut := cur
	leaves := &clockNets{}
	gridN := int(math.Max(1, math.Round(math.Sqrt(float64(nFFs)/8))))
	for qx := 0; qx < 2; qx++ {
		for qy := 0; qy < 2; qy++ {
			quadX := (float64(qx)*2 + 1) * die / 4
			quadY := (float64(qy)*2 + 1) * die / 4
			// Two-buffer spine per quadrant.
			quadIn := d.AddNet()
			if _, err := d.AddGate(cb, (die/2+quadX)/2, (die/2+quadY)/2, []int{rootOut}, quadIn); err != nil {
				return nil, err
			}
			quadOut := d.AddNet()
			if _, err := d.AddGate(cb, quadX, quadY, []int{quadIn}, quadOut); err != nil {
				return nil, err
			}
			for gx := 0; gx < gridN; gx++ {
				for gy := 0; gy < gridN; gy++ {
					lx := (float64(qx) + (float64(gx)+0.5)/float64(gridN)) * die / 2
					ly := (float64(qy) + (float64(gy)+0.5)/float64(gridN)) * die / 2
					leafOut := d.AddNet()
					if _, err := d.AddGate(cbLeaf, lx, ly, []int{quadOut}, leafOut); err != nil {
						return nil, err
					}
					leaves.nets = append(leaves.nets, leafOut)
					leaves.xs = append(leaves.xs, lx)
					leaves.ys = append(leaves.ys, ly)
				}
			}
		}
	}
	return leaves, nil
}

// buildClockForest creates one independent clock subtree per domain, all
// diverging at the shared root net: a per-domain repeater chain at the die
// center, four quadrant spines, and a regular gridN x gridN leaf grid
// covering the whole die (domains overlap spatially, as real multi-domain
// floorplans do). Chains of different domains share no buffer, so the CRPR
// common prefix across domains is zero. Leaf density follows ffsPerLeaf;
// construction and hookup are O(gates), which is what lets the scale
// configs stay memory- and time-lean.
func buildClockForest(d *netlist.Design, die float64, nFFs, domains, ffsPerLeaf int) (*clockNets, error) {
	if domains < 1 {
		domains = 1
	}
	if ffsPerLeaf <= 0 {
		ffsPerLeaf = 8
	}
	root := d.AddNet()
	if err := d.SetClockRoot(root); err != nil {
		return nil, err
	}
	cb, err := d.Lib.Pick(cells.ClkBuf, 4)
	if err != nil {
		return nil, err
	}
	cbLeaf, err := d.Lib.Pick(cells.ClkBuf, 2)
	if err != nil {
		return nil, err
	}
	perDomain := (nFFs + domains - 1) / domains
	wantLeaves := (perDomain + ffsPerLeaf - 1) / ffsPerLeaf
	gridN := int(math.Max(1, math.Ceil(math.Sqrt(float64(wantLeaves)))))
	leaves := &clockNets{domains: domains, gridN: gridN, die: die}
	for dom := 0; dom < domains; dom++ {
		cur := root
		for i := 0; i < 3; i++ {
			next := d.AddNet()
			if _, err := d.AddGate(cb, die/2, die/2, []int{cur}, next); err != nil {
				return nil, err
			}
			cur = next
		}
		var quadOut [2][2]int
		for qx := 0; qx < 2; qx++ {
			for qy := 0; qy < 2; qy++ {
				quadX := (float64(qx)*2 + 1) * die / 4
				quadY := (float64(qy)*2 + 1) * die / 4
				quadIn := d.AddNet()
				if _, err := d.AddGate(cb, (die/2+quadX)/2, (die/2+quadY)/2, []int{cur}, quadIn); err != nil {
					return nil, err
				}
				quadOut[qx][qy] = d.AddNet()
				if _, err := d.AddGate(cb, quadX, quadY, []int{quadIn}, quadOut[qx][qy]); err != nil {
					return nil, err
				}
			}
		}
		// Leaf order is gx-major then gy, matching leafFor's index math.
		for gx := 0; gx < gridN; gx++ {
			for gy := 0; gy < gridN; gy++ {
				lx := (float64(gx) + 0.5) / float64(gridN) * die
				ly := (float64(gy) + 0.5) / float64(gridN) * die
				qx, qy := 0, 0
				if lx >= die/2 {
					qx = 1
				}
				if ly >= die/2 {
					qy = 1
				}
				leafOut := d.AddNet()
				if _, err := d.AddGate(cbLeaf, lx, ly, []int{quadOut[qx][qy]}, leafOut); err != nil {
					return nil, err
				}
				leaves.nets = append(leaves.nets, leafOut)
				leaves.xs = append(leaves.xs, lx)
				leaves.ys = append(leaves.ys, ly)
			}
		}
	}
	return leaves, nil
}

// Large returns the scale-layer design family: cone-structured designs of
// 100k to 1M gates with three clock domains and a leaf grid dense enough
// that the per-leaf CRPR credit matrix stays small. Generation is
// O(gates); pair with Options.StreamShard so calibration memory stays
// bounded by one endpoint shard.
func Large(gates int) Config {
	return Config{
		Name:         fmt.Sprintf("large-%dk", gates/1000),
		Seed:         77001 + uint64(gates),
		Node:         28,
		Gates:        gates,
		FFs:          gates / 10,
		MaxLevel:     12,
		AreaPerGate:  30,
		ViolateFrac:  0.10,
		DepthCap:     0.05,
		ConeMode:     true,
		JoinP:        0.04,
		ShareP:       0.03,
		ClockDomains: 3,
		FFsPerLeaf:   64,
	}
}

// Toy returns the small design of the paper's §3.2 study: about 1.4k
// variables and several thousand violated paths.
func Toy() Config {
	return Config{
		Name:        "toy",
		Seed:        12001,
		Node:        28,
		Gates:       1400,
		FFs:         150,
		MaxLevel:    8,
		AreaPerGate: 30,
		ViolateFrac: 0.40,
		ConeMode:    true,
		JoinP:       0.05,
		ShareP:      0.03,
	}
}

// Suite returns the ten designs standing in for the paper's D1-D10.
//
// Technology node, size, logic style and reconvergence pressure vary the
// way the paper's population does: its GBA pass ratios range from 92.4%
// (D1) down to 0.12% (D8), so the stand-ins span clean datapath-style
// cone designs (high GBA pass) through heavily reconvergent sea-of-gates
// designs (near-zero GBA pass).
func Suite() []Config {
	type spec struct {
		node, gates, ffs, maxLevel int
		cone                       bool
		joinP, shareP, longP       float64
		violate                    float64
	}
	base := []spec{
		{65, 1500, 170, 6, true, 0.00, 0.00, 0, 0.30},  // D1: clean, old node
		{40, 6000, 650, 10, true, 0.05, 0.04, 0, 0.50}, // D2: large datapath
		{28, 3000, 330, 8, true, 0.02, 0.02, 0, 0.40},  // D3
		{28, 2800, 310, 6, true, 0.00, 0.01, 0, 0.40},  // D4: near-clean
		{40, 2000, 230, 8, true, 0.02, 0.02, 0, 0.35},  // D5
		{28, 3600, 390, 12, true, 0.08, 0.06, 0, 0.45}, // D6: deeper, joins
		{16, 3200, 350, 10, true, 0.12, 0.08, 0, 0.45}, // D7: advanced node
		{16, 5200, 540, 38, false, 0, 0, 0.20, 0.55},   // D8: reconvergent sea (paper D8: 0.12% pass)
		{16, 4600, 480, 14, true, 0.20, 0.15, 0, 0.50}, // D9: heavy joins
		{28, 4200, 440, 30, false, 0, 0, 0.05, 0.45},   // D10: moderate sea
	}
	depthCaps := []float64{0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0, 0.05, 0}
	out := make([]Config, len(base))
	for i, b := range base {
		out[i] = Config{
			Name:        fmt.Sprintf("D%d", i+1),
			Seed:        uint64(41000 + 13*i),
			Node:        b.node,
			Gates:       b.gates,
			FFs:         b.ffs,
			MaxLevel:    b.maxLevel,
			LongEdgeP:   b.longP,
			AreaPerGate: 30,
			ViolateFrac: b.violate,
			ConeMode:    b.cone,
			JoinP:       b.joinP,
			ShareP:      b.shareP,
			DepthCap:    depthCaps[i],
		}
	}
	return out
}
