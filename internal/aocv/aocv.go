// Package aocv implements Advanced On-Chip Variation derating tables:
// per-gate delay penalty factors looked up by path cell depth and by the
// distance between the path endpoints, as in Table 1 of the paper.
//
// Two tables exist per technology node: a late table (factors >= 1, applied
// to launch-clock and data-path delays in setup analysis) and an early
// table (factors <= 1, applied to the capture clock path). Late factors
// shrink toward 1 as depth grows (statistical variation cancellation) and
// grow with distance (spatial correlation loss); early factors mirror that
// behaviour below 1.
package aocv

import (
	"fmt"
	"math"

	"mgba/internal/faultinject"
)

// Table is a depth x distance derating lookup with bilinear interpolation
// inside the grid and clamping outside it, which is how industrial timers
// consume foundry AOCV tables.
type Table struct {
	Depths    []float64   // ascending cell-depth breakpoints
	Distances []float64   // ascending endpoint-distance breakpoints (um)
	Values    [][]float64 // Values[di][de] for Distances[di], Depths[de]
}

// NewTable validates and wraps the given grid. Breakpoints must be strictly
// ascending and the value matrix must match the breakpoint dimensions.
func NewTable(depths, distances []float64, values [][]float64) (*Table, error) {
	if len(depths) == 0 || len(distances) == 0 {
		return nil, fmt.Errorf("aocv: empty breakpoint axis")
	}
	for i := 1; i < len(depths); i++ {
		if depths[i] <= depths[i-1] {
			return nil, fmt.Errorf("aocv: depth breakpoints not ascending at %d", i)
		}
	}
	for i := 1; i < len(distances); i++ {
		if distances[i] <= distances[i-1] {
			return nil, fmt.Errorf("aocv: distance breakpoints not ascending at %d", i)
		}
	}
	if len(values) != len(distances) {
		return nil, fmt.Errorf("aocv: %d value rows for %d distances", len(values), len(distances))
	}
	for i, row := range values {
		if len(row) != len(depths) {
			return nil, fmt.Errorf("aocv: row %d has %d values for %d depths", i, len(row), len(depths))
		}
	}
	return &Table{Depths: depths, Distances: distances, Values: values}, nil
}

// Lookup returns the derating factor for the given cell depth and endpoint
// distance, bilinearly interpolated and clamped to the table boundary.
func (t *Table) Lookup(depth, distance float64) float64 {
	de0, de1, fde := bracket(t.Depths, depth)
	di0, di1, fdi := bracket(t.Distances, distance)
	v00 := t.Values[di0][de0]
	v01 := t.Values[di0][de1]
	v10 := t.Values[di1][de0]
	v11 := t.Values[di1][de1]
	lo := v00*(1-fde) + v01*fde
	hi := v10*(1-fde) + v11*fde
	return faultinject.Float64(faultinject.AOCVLookup, lo*(1-fdi)+hi*fdi)
}

// bracket locates x within ascending breakpoints xs, returning the two
// surrounding indices and the interpolation fraction, with clamping.
func bracket(xs []float64, x float64) (i0, i1 int, frac float64) {
	n := len(xs)
	if x <= xs[0] {
		return 0, 0, 0
	}
	if x >= xs[n-1] {
		return n - 1, n - 1, 0
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, hi, (x - xs[lo]) / (xs[hi] - xs[lo])
}

// MonotoneLate reports whether the table behaves like a late AOCV table:
// values >= 1 everywhere, non-increasing along depth, non-decreasing along
// distance. Used by validation and property tests.
func (t *Table) MonotoneLate() bool {
	for di, row := range t.Values {
		for de, v := range row {
			if v < 1 {
				return false
			}
			if de > 0 && row[de] > row[de-1] {
				return false
			}
			if di > 0 && v < t.Values[di-1][de] {
				return false
			}
		}
	}
	return true
}

// MonotoneEarly reports whether the table behaves like an early AOCV table:
// values <= 1, non-decreasing along depth, non-increasing along distance.
func (t *Table) MonotoneEarly() bool {
	for di, row := range t.Values {
		for de, v := range row {
			if v > 1 {
				return false
			}
			if de > 0 && row[de] < row[de-1] {
				return false
			}
			if di > 0 && v > t.Values[di-1][de] {
				return false
			}
		}
	}
	return true
}

// Set bundles the late and early tables a timer needs for setup analysis.
type Set struct {
	Late  *Table
	Early *Table
}

// Scale returns a derived corner table set with every derate margin
// scaled by f: late factors become 1 + f*(v-1), early factors become
// 1 - f*(1-v) (clamped to a small positive floor so clock paths keep a
// meaningful early bound). f == 1 reproduces the input set exactly;
// f > 1 models a more pessimistic corner, f in (0,1) a tighter one.
// For f >= 0 the transform is affine in v, so the late/early
// monotonicity properties of the source tables are preserved.
func (s *Set) Scale(f float64) (*Set, error) {
	if f < 0 {
		return nil, fmt.Errorf("aocv: negative derate scale %v", f)
	}
	scaleTable := func(t *Table, late bool) (*Table, error) {
		values := make([][]float64, len(t.Values))
		for di, row := range t.Values {
			values[di] = make([]float64, len(row))
			for de, v := range row {
				var sv float64
				if late {
					sv = 1 + f*(v-1)
				} else {
					sv = 1 - f*(1-v)
					if sv < 0.05 {
						sv = 0.05
					}
				}
				values[di][de] = sv
			}
		}
		return NewTable(append([]float64(nil), t.Depths...),
			append([]float64(nil), t.Distances...), values)
	}
	lt, err := scaleTable(s.Late, true)
	if err != nil {
		return nil, err
	}
	et, err := scaleTable(s.Early, false)
	if err != nil {
		return nil, err
	}
	return &Set{Late: lt, Early: et}, nil
}

// sigma0 returns the single-stage relative variation for a node; smaller
// nodes vary more, which is what makes GBA pessimism grow as nodes shrink.
func sigma0(node int) float64 {
	switch {
	case node >= 65:
		return 0.05
	case node >= 40:
		return 0.065
	case node >= 28:
		return 0.08
	default:
		return 0.11
	}
}

// Default synthesizes the AOCV table set for a technology node. The late
// factor at depth n and distance D is modelled as
//
//	1 + 3*sigma0(node)*(1 + D/1500) / sqrt(n)
//
// the textbook stage-count cancellation (1/sqrt(n)) with a linear spatial
// term, quantized onto a breakpoint grid shaped like the paper's Table 1.
func Default(node int) *Set {
	s, err := DefaultSet(node)
	if err != nil {
		panic(err) // generated grid is valid by construction
	}
	return s
}

// DefaultSet is Default with an error return instead of a panic. Loaders
// that synthesize tables from untrusted input (netio) use it so a bad
// node value surfaces as a load error rather than a crash.
func DefaultSet(node int) (*Set, error) {
	depths := []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
	distances := []float64{0.5, 1.0, 1.5, 2.5, 5, 10, 25, 50, 100, 200, 400, 800}
	s0 := sigma0(node)
	late := make([][]float64, len(distances))
	early := make([][]float64, len(distances))
	for di, D := range distances {
		late[di] = make([]float64, len(depths))
		early[di] = make([]float64, len(depths))
		for de, n := range depths {
			spread := 3 * s0 * (1 + D/1500) / math.Sqrt(n)
			late[di][de] = 1 + spread
			e := 1 - spread
			if e < 0.5 {
				e = 0.5
			}
			early[di][de] = e
		}
	}
	lt, err := NewTable(depths, distances, late)
	if err != nil {
		return nil, err
	}
	et, err := NewTable(depths, distances, early)
	if err != nil {
		return nil, err
	}
	return &Set{Late: lt, Early: et}, nil
}

// PaperTable1 returns the exact example lookup table printed as Table 1 of
// the paper (late derates; distances in nm converted to um). It drives the
// Fig. 1/2 worked example and its regression test.
func PaperTable1() *Table {
	t, err := NewTable(
		[]float64{3, 4, 5, 6},
		[]float64{0.5, 1.0, 1.5}, // 500 nm, 1000 nm, 1500 nm
		[][]float64{
			{1.30, 1.25, 1.20, 1.15},
			{1.32, 1.27, 1.23, 1.18},
			{1.35, 1.31, 1.28, 1.25},
		},
	)
	if err != nil {
		panic(err)
	}
	return t
}
