package aocv

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewTableValidation(t *testing.T) {
	ok := [][]float64{{1.3, 1.2}, {1.35, 1.25}}
	if _, err := NewTable([]float64{3, 4}, []float64{1, 2}, ok); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	cases := []struct {
		name          string
		depths, dists []float64
		values        [][]float64
	}{
		{"empty depths", nil, []float64{1}, [][]float64{{}}},
		{"empty dists", []float64{1}, nil, nil},
		{"non-ascending depths", []float64{3, 3}, []float64{1, 2}, ok},
		{"non-ascending dists", []float64{3, 4}, []float64{2, 1}, ok},
		{"row count mismatch", []float64{3, 4}, []float64{1, 2}, [][]float64{{1.3, 1.2}}},
		{"col count mismatch", []float64{3, 4}, []float64{1, 2}, [][]float64{{1.3}, {1.35, 1.25}}},
	}
	for _, c := range cases {
		if _, err := NewTable(c.depths, c.dists, c.values); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestPaperTable1Exact(t *testing.T) {
	tab := PaperTable1()
	// Exact grid points from Table 1 of the paper.
	cases := []struct {
		depth, dist, want float64
	}{
		{3, 0.5, 1.30}, {4, 0.5, 1.25}, {5, 0.5, 1.20}, {6, 0.5, 1.15},
		{3, 1.0, 1.32}, {6, 1.0, 1.18},
		{3, 1.5, 1.35}, {4, 1.5, 1.31}, {5, 1.5, 1.28}, {6, 1.5, 1.25},
	}
	for _, c := range cases {
		if got := tab.Lookup(c.depth, c.dist); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Lookup(%v,%v) = %v, want %v", c.depth, c.dist, got, c.want)
		}
	}
}

func TestLookupClamping(t *testing.T) {
	tab := PaperTable1()
	if got := tab.Lookup(1, 0.5); got != 1.30 {
		t.Errorf("below-range depth = %v, want clamp to 1.30", got)
	}
	if got := tab.Lookup(100, 0.5); got != 1.15 {
		t.Errorf("above-range depth = %v, want clamp to 1.15", got)
	}
	if got := tab.Lookup(3, 0.1); got != 1.30 {
		t.Errorf("below-range dist = %v, want 1.30", got)
	}
	if got := tab.Lookup(6, 99); got != 1.25 {
		t.Errorf("above-range dist = %v, want 1.25", got)
	}
}

func TestLookupInterpolation(t *testing.T) {
	tab := PaperTable1()
	// Midpoint between depth 3 (1.30) and 4 (1.25) at 500nm.
	if got := tab.Lookup(3.5, 0.5); math.Abs(got-1.275) > 1e-12 {
		t.Errorf("depth midpoint = %v, want 1.275", got)
	}
	// Midpoint between 500nm (1.30) and 1000nm (1.32) at depth 3.
	if got := tab.Lookup(3, 0.75); math.Abs(got-1.31) > 1e-12 {
		t.Errorf("distance midpoint = %v, want 1.31", got)
	}
	// Bilinear center of the depth 3-4 / dist 0.5-1.0 patch.
	want := (1.30 + 1.25 + 1.32 + 1.27) / 4
	if got := tab.Lookup(3.5, 0.75); math.Abs(got-want) > 1e-12 {
		t.Errorf("bilinear center = %v, want %v", got, want)
	}
}

func TestLookupMonotoneProperty(t *testing.T) {
	set := Default(16)
	f := func(dRaw, distRaw uint16) bool {
		depth := 1 + float64(dRaw%640)/10
		dist := float64(distRaw%8000) / 10
		l := set.Late.Lookup(depth, dist)
		// Deeper paths never derate more.
		if set.Late.Lookup(depth+1, dist) > l+1e-12 {
			return false
		}
		// Longer distance never derates less.
		if set.Late.Lookup(depth, dist+1) < l-1e-12 {
			return false
		}
		e := set.Early.Lookup(depth, dist)
		return l >= 1 && e <= 1 && e > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultTablesWellFormed(t *testing.T) {
	for _, node := range []int{65, 40, 28, 16} {
		set := Default(node)
		if !set.Late.MonotoneLate() {
			t.Errorf("node %d: late table not monotone-late", node)
		}
		if !set.Early.MonotoneEarly() {
			t.Errorf("node %d: early table not monotone-early", node)
		}
	}
}

func TestSmallerNodesVaryMore(t *testing.T) {
	d65 := Default(65).Late.Lookup(4, 10)
	d16 := Default(16).Late.Lookup(4, 10)
	if d16 <= d65 {
		t.Fatalf("16nm late derate %v should exceed 65nm %v", d16, d65)
	}
}

func TestDepthCancellation(t *testing.T) {
	// The paper's premise: deep paths approach derate 1 (Table 1 trend).
	set := Default(28)
	shallow := set.Late.Lookup(2, 5)
	deep := set.Late.Lookup(64, 5)
	if deep >= shallow {
		t.Fatalf("deep derate %v should be below shallow %v", deep, shallow)
	}
	if deep > 1.10 {
		t.Fatalf("derate at depth 64 = %v, want close to 1", deep)
	}
}

func TestEarlyFloor(t *testing.T) {
	// Early derates must never go non-positive even at extreme settings.
	set := Default(16)
	if v := set.Early.Lookup(1, 800); v < 0.5-1e-12 {
		t.Fatalf("early derate %v below floor", v)
	}
}

func TestMonotoneCheckers(t *testing.T) {
	bad, err := NewTable([]float64{3, 4}, []float64{1}, [][]float64{{1.2, 1.3}})
	if err != nil {
		t.Fatal(err)
	}
	if bad.MonotoneLate() {
		t.Fatal("increasing-along-depth table passed MonotoneLate")
	}
	sub, err := NewTable([]float64{3, 4}, []float64{1}, [][]float64{{0.9, 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.MonotoneEarly() {
		t.Fatal("valid early table failed MonotoneEarly")
	}
	if sub.MonotoneLate() {
		t.Fatal("sub-unity table passed MonotoneLate")
	}
}

func TestBracketEdges(t *testing.T) {
	xs := []float64{1, 2, 4}
	if i0, i1, f := bracket(xs, 0.5); i0 != 0 || i1 != 0 || f != 0 {
		t.Fatalf("below range: %d %d %v", i0, i1, f)
	}
	if i0, i1, f := bracket(xs, 9); i0 != 2 || i1 != 2 || f != 0 {
		t.Fatalf("above range: %d %d %v", i0, i1, f)
	}
	if i0, i1, f := bracket(xs, 3); i0 != 1 || i1 != 2 || math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("interior: %d %d %v", i0, i1, f)
	}
	if i0, i1, f := bracket(xs, 2); i0 != 1 || i1 != 2 || f != 0 {
		t.Fatalf("exact breakpoint: %d %d %v", i0, i1, f)
	}
}

func BenchmarkLookup(b *testing.B) {
	set := Default(16)
	for i := 0; i < b.N; i++ {
		_ = set.Late.Lookup(float64(i%60)+1, float64(i%500))
	}
}
