package sta_test

import (
	"math"
	"testing"

	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/sta"
)

func generated(t *testing.T) (*graph.Graph, *sta.Result) {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 400, 60
	cfg.Name = "crpr-test"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return g, sta.Analyze(g, sta.DefaultConfig())
}

// GBA's per-endpoint credit must be conservative: no larger than the exact
// pair credit of any launch leaf that reaches the endpoint.
func TestGBACRPRIsConservative(t *testing.T) {
	g, r := generated(t)
	ci := g.ClockIndex()
	checked := 0
	for fi, ffID := range g.D.FFs {
		if len(g.Fanin(ffID)) == 0 {
			continue
		}
		for lj := range g.D.FFs {
			// Only pairs whose launch leaf actually reaches fi matter, but
			// conservatism must hold for those.
			leafL := ci.LeafOfFF[lj]
			reachable := false
			for _, l := range ci.LaunchLeaves[fi] {
				if l == leafL {
					reachable = true
					break
				}
			}
			if !reachable {
				continue
			}
			exact := r.CRPRCredit(lj, fi)
			if r.GBACRPR[fi] > exact+1e-9 {
				t.Fatalf("endpoint %d: GBA credit %v exceeds exact pair credit %v", fi, r.GBACRPR[fi], exact)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d pairs checked", checked)
	}
}

func TestGBACRPRNonNegative(t *testing.T) {
	_, r := generated(t)
	for fi, c := range r.GBACRPR {
		if c < 0 {
			t.Fatalf("endpoint %d: negative credit %v", fi, c)
		}
	}
}

// Applying the credit can only help slack: an endpoint's slack with
// credit >= the slack computed without it.
func TestGBACRPRImprovesSlack(t *testing.T) {
	g, withCredit := generated(t)
	// Re-analyze with an ideal clock to remove the mechanism entirely; the
	// comparison is structural rather than numeric, so instead check the
	// bookkeeping identity: slack = required - arrival with the credit
	// folded into required.
	d := g.D
	for fi, ffID := range d.FFs {
		if len(g.Fanin(ffID)) == 0 {
			continue
		}
		ff := d.Instances[ffID]
		want := d.ClockPeriod + withCredit.ClockEarly[fi] - ff.Cell.Setup +
			withCredit.GBACRPR[fi] - withCredit.DataAtD[fi]
		if math.Abs(want-withCredit.Slack[fi]) > 1e-9 {
			t.Fatalf("endpoint %d: slack identity broken: %v vs %v", fi, want, withCredit.Slack[fi])
		}
	}
}

func TestCreditSelfPairIsLargest(t *testing.T) {
	g, r := generated(t)
	ci := g.ClockIndex()
	for fi := range g.D.FFs {
		if fi > 20 {
			break
		}
		self := r.CRPRCredit(fi, fi)
		for fj := range g.D.FFs {
			if fj > 20 {
				break
			}
			cross := r.CRPRCredit(fj, fi)
			// A pair sharing the full capture chain cannot have more
			// common buffers than the self pair.
			if ci.LeafOfFF[fj] != ci.LeafOfFF[fi] && cross > self+1e-9 {
				t.Fatalf("cross credit %v above self credit %v", cross, self)
			}
		}
	}
}
