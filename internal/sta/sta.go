// Package sta implements graph-based static timing analysis (GBA) with the
// three worst-casing pessimism sources the paper's framework targets:
//
//   - AOCV derating looked up at the *worst* (minimum) cell depth and the
//     *largest* bounding-box endpoint distance of any path through a gate
//     (§2.2 of the paper, Fig. 2);
//   - worst-slew propagation: at every gate the largest input transition of
//     any fanin is assumed, inflating the delay of every path through it;
//   - conservative clock-reconvergence-pessimism removal: GBA applies, at
//     each endpoint, the smallest CRPR credit over every launch leaf that
//     can reach it (the safe worst pair), while PBA applies the exact
//     per-pair credit.
//
// The engine computes, per instance, a derated cell delay (optionally
// multiplied by an mGBA weighting factor), and propagates arrival and
// required times over the timing graph to produce per-endpoint setup
// slacks, WNS and TNS. Hold analysis uses the mirrored early/late
// worst-casing. An incremental-update mode re-propagates only the cone
// affected by a set of modified instances, which is what makes the
// timing-closure loop affordable (§3.4).
//
// Sign conventions: all times in picoseconds; slack > 0 means the
// constraint is met.
package sta

import (
	"fmt"
	"math"
	"sort"

	"mgba/internal/graph"
	"mgba/internal/netlist"
)

// Config selects the analysis features. The zero value is a plain timer
// with every pessimism source disabled; use DefaultConfig for the paper's
// GBA setting.
type Config struct {
	DerateData  bool // apply AOCV late derates to data cells and FF CK->Q arcs
	DerateClock bool // apply AOCV late/early derates to the clock tree

	// DelayOverride forces the nominal (pre-derate) delay of specific
	// instances, bypassing the load/slew model. Used by the Fig. 2 worked
	// example (all gates exactly 100 ps) and by tests.
	DelayOverride map[int]float64

	// Weights is the per-instance mGBA weighting factor vector (Eq. 8)
	// applied multiplicatively to the derated cell delay. nil means all 1
	// (original GBA).
	Weights []float64

	// IdealClock treats every clock buffer as zero-delay, removing clock
	// insertion and CRPR effects entirely.
	IdealClock bool
}

// DefaultConfig is the paper's GBA: full AOCV derating on data and clock,
// worst-slew merging, no CRPR credit.
func DefaultConfig() Config {
	return Config{DerateData: true, DerateClock: true}
}

// Result holds a complete forward/backward GBA analysis of one design.
type Result struct {
	G   *graph.Graph
	Cfg Config

	Depths *graph.Depths
	Boxes  *graph.Boxes

	creditMemo map[[2]int]float64 // leaf-pair CRPR credit cache

	// Per-instance quantities (indexed by instance ID).
	NominalDelay []float64 // load/slew delay before derating, incl. overrides
	Derate       []float64 // late AOCV factor applied (1 when not derated)
	CellDelay    []float64 // NominalDelay * Derate * weight — the a_ij basis
	WireDelay    []float64 // output-net wire delay (not derated, not weighted)
	Slew         []float64 // worst-case output transition
	ArrivalOut   []float64 // latest data arrival at the instance output
	RequiredOut  []float64 // earliest required time at the instance output
	MinArrival   []float64 // earliest data arrival (hold analysis)

	// Per-FF quantities (indexed by position in D.FFs).
	ClockLate  []float64 // launch clock insertion delay (late derates)
	ClockEarly []float64 // capture clock insertion delay (early derates)
	GBACRPR    []float64 // conservative (worst launch pair) CRPR credit GBA applies
	DataAtD    []float64 // latest data arrival at the FF's D pin
	MinAtD     []float64 // earliest data arrival at the FF's D pin
	Slack      []float64 // setup slack per endpoint (+Inf when unconstrained)
	HoldSlack  []float64 // hold slack per endpoint (+Inf when unconstrained)

	WNS, TNS float64 // worst / total negative setup slack over endpoints
}

var unconstrained = math.Inf(1)

// Analyze runs a full GBA pass over the design's timing graph.
func Analyze(g *graph.Graph, cfg Config) *Result {
	r := &Result{
		G:      g,
		Cfg:    cfg,
		Depths: g.ComputeDepths(),
		Boxes:  g.ComputeBoxes(),
	}
	n := len(g.D.Instances)
	r.NominalDelay = make([]float64, n)
	r.Derate = make([]float64, n)
	r.CellDelay = make([]float64, n)
	r.WireDelay = make([]float64, n)
	r.Slew = make([]float64, n)
	r.ArrivalOut = make([]float64, n)
	r.RequiredOut = make([]float64, n)
	r.MinArrival = make([]float64, n)
	nf := len(g.D.FFs)
	r.ClockLate = make([]float64, nf)
	r.ClockEarly = make([]float64, nf)
	r.GBACRPR = make([]float64, nf)
	r.DataAtD = make([]float64, nf)
	r.MinAtD = make([]float64, nf)
	r.Slack = make([]float64, nf)
	r.HoldSlack = make([]float64, nf)

	r.propagateClock()
	r.computeGBACRPR()
	r.forwardAll()
	r.backwardAll()
	r.endpointSlacks()
	return r
}

// weight returns the mGBA weighting factor of instance v.
func (r *Result) weight(v int) float64 {
	if r.Cfg.Weights == nil {
		return 1
	}
	return r.Cfg.Weights[v]
}

// lateDerate returns the conservative late AOCV factor GBA applies to the
// data cell v.
func (r *Result) lateDerate(v int) float64 {
	if !r.Cfg.DerateData {
		return 1
	}
	d := r.G.D
	return d.Derates.Late.Lookup(float64(r.Depths.GBA[v]), r.Boxes.GBADistance[v])
}

// propagateClock walks every FF's clock chain computing late and early
// insertion delays. Clock buffers are derated by their tree depth; the
// spatial term uses the buffer's distance from the first chain element.
func (r *Result) propagateClock() {
	d := r.G.D
	if r.Cfg.IdealClock {
		return // arrays stay zero
	}
	// Memoize per-buffer delay/slew: a buffer appears in many chains.
	type bufT struct {
		delay, slew float64
		done        bool
	}
	memo := make(map[int]*bufT)
	var eval func(chain []int, k int) *bufT
	eval = func(chain []int, k int) *bufT {
		id := chain[k]
		if m, ok := memo[id]; ok && m.done {
			return m
		}
		in := d.Instances[id]
		var inSlew float64
		if k > 0 {
			inSlew = eval(chain, k-1).slew
		}
		load := d.LoadCap(d.Nets[in.Output])
		m := &bufT{
			delay: in.Cell.Delay(load, inSlew) + d.Nets[in.Output].WireDelay,
			slew:  in.Cell.OutputSlew(load, inSlew),
			done:  true,
		}
		memo[id] = m
		return m
	}
	for fi := range d.FFs {
		chain := r.G.ClockChain[fi]
		var late, early float64
		var root *netlist.Instance
		if len(chain) > 0 {
			root = d.Instances[chain[0]]
		}
		// AOCV depth semantics: every element of a path is derated at the
		// path's cell depth. A clock chain is a unique path of length
		// len(chain), so all its buffers share that depth — this is also
		// why clock paths carry no graph-vs-path depth pessimism.
		depth := float64(len(chain))
		for k, id := range chain {
			b := eval(chain, k)
			lateF, earlyF := 1.0, 1.0
			if r.Cfg.DerateClock {
				dist := 0.0
				if root != nil {
					dist = netlist.Distance(root, d.Instances[id])
				}
				lateF = d.Derates.Late.Lookup(depth, dist)
				earlyF = d.Derates.Early.Lookup(depth, dist)
			}
			late += b.delay * lateF
			early += b.delay * earlyF
		}
		r.ClockLate[fi] = late
		r.ClockEarly[fi] = early
	}
}

// creditBetweenLeaves returns the CRPR credit between two clock leaves:
// the late-minus-early spread accumulated on their chains' shared prefix.
// The common buffers were derated late at the launch chain's depth and
// early at the capture chain's depth; the credit undoes exactly that
// double-counted spread.
func (r *Result) creditBetweenLeaves(ci *graph.ClockIndex, leafL, leafC int) float64 {
	if r.Cfg.IdealClock || !r.Cfg.DerateClock {
		return 0
	}
	if c, ok := r.creditMemo[[2]int{leafL, leafC}]; ok {
		return c
	}
	d := r.G.D
	common := ci.Common[leafL][leafC]
	chain := ci.Chains[leafL]
	var credit float64
	var inSlew float64
	var root *netlist.Instance
	if len(chain) > 0 {
		root = d.Instances[chain[0]]
	}
	lateDepth := float64(len(chain))
	earlyDepth := float64(len(ci.Chains[leafC]))
	for k := 0; k < common; k++ {
		in := d.Instances[chain[k]]
		load := d.LoadCap(d.Nets[in.Output])
		delay := in.Cell.Delay(load, inSlew) + d.Nets[in.Output].WireDelay
		inSlew = in.Cell.OutputSlew(load, inSlew)
		dist := netlist.Distance(root, in)
		lateF := d.Derates.Late.Lookup(lateDepth, dist)
		earlyF := d.Derates.Early.Lookup(earlyDepth, dist)
		credit += delay * (lateF - earlyF)
	}
	if r.creditMemo == nil {
		r.creditMemo = map[[2]int]float64{}
	}
	r.creditMemo[[2]int{leafL, leafC}] = credit
	return credit
}

// CRPRCredit returns the exact clock-reconvergence pessimism credit for a
// launch/capture FF pair (positions into D.FFs). PBA applies it per path;
// GBA applies only the conservative per-endpoint minimum (GBACRPR).
func (r *Result) CRPRCredit(launchIdx, captureIdx int) float64 {
	if r.Cfg.IdealClock || !r.Cfg.DerateClock {
		return 0
	}
	ci := r.G.ClockIndex()
	return r.creditBetweenLeaves(ci, ci.LeafOfFF[launchIdx], ci.LeafOfFF[captureIdx])
}

// computeGBACRPR fills the conservative per-endpoint credit: the smallest
// pair credit over every launch leaf that can reach the endpoint. This is
// what industrial GBA applies — safe for any path, pessimistic for paths
// whose true launch shares a deeper clock prefix.
func (r *Result) computeGBACRPR() {
	if r.Cfg.IdealClock || !r.Cfg.DerateClock {
		return
	}
	ci := r.G.ClockIndex()
	for fi := range r.G.D.FFs {
		leaves := ci.LaunchLeaves[fi]
		if len(leaves) == 0 {
			continue
		}
		minCredit := math.Inf(1)
		for _, leaf := range leaves {
			if c := r.creditBetweenLeaves(ci, leaf, ci.LeafOfFF[fi]); c < minCredit {
				minCredit = c
			}
		}
		r.GBACRPR[fi] = minCredit
	}
}

// nominalDelay computes the pre-derate delay of instance v given its worst
// input slew, honouring overrides.
func (r *Result) nominalDelay(v int, inSlew float64) float64 {
	if ov, ok := r.Cfg.DelayOverride[v]; ok {
		return ov
	}
	d := r.G.D
	in := d.Instances[v]
	if in.Output < 0 {
		return 0
	}
	load := d.LoadCap(d.Nets[in.Output])
	return in.Cell.Delay(load, inSlew)
}

// forwardAll propagates worst slews and max/min arrivals in topological
// order over the whole graph.
func (r *Result) forwardAll() {
	for _, v := range r.G.Topo {
		r.evalInstance(v)
	}
	r.collectEndpointArrivals()
}

// evalInstance recomputes the slew, delays and arrivals of one instance
// from its (already final) fanins.
func (r *Result) evalInstance(v int) {
	d := r.G.D
	in := d.Instances[v]

	// Worst input slew and input arrival window.
	var worstSlew float64
	maxAt := math.Inf(-1)
	minAt := math.Inf(1)
	if in.IsFF() {
		fi := r.G.FFIndex(v)
		maxAt = r.ClockLate[fi]
		minAt = r.ClockEarly[fi]
		worstSlew = 0
	} else {
		for _, e := range r.G.Fanin[v] {
			if s := r.Slew[e.From]; s > worstSlew {
				worstSlew = s
			}
			at := r.ArrivalOut[e.From] + r.WireDelay[e.From]
			if at > maxAt {
				maxAt = at
			}
			mn := r.MinArrival[e.From] + r.WireDelay[e.From]
			if mn < minAt {
				minAt = mn
			}
		}
		if len(r.G.Fanin[v]) == 0 {
			maxAt, minAt = 0, 0
		}
	}

	nom := r.nominalDelay(v, worstSlew)
	der := r.lateDerate(v)
	r.NominalDelay[v] = nom
	r.Derate[v] = der
	r.CellDelay[v] = nom * der * r.weight(v)
	if in.Output >= 0 {
		r.WireDelay[v] = d.Nets[in.Output].WireDelay
		if _, ok := r.Cfg.DelayOverride[v]; ok {
			r.Slew[v] = 0
		} else {
			r.Slew[v] = in.Cell.OutputSlew(d.LoadCap(d.Nets[in.Output]), worstSlew)
		}
	}
	r.ArrivalOut[v] = maxAt + r.CellDelay[v]
	// Hold analysis uses the same derated delay basis; the pessimism gap
	// for hold comes from the max/min window, kept simple deliberately.
	r.MinArrival[v] = minAt + r.CellDelay[v]
}

// collectEndpointArrivals refreshes the per-endpoint D-pin arrival windows
// from the final instance arrivals.
func (r *Result) collectEndpointArrivals() {
	d := r.G.D
	for fi, ffID := range d.FFs {
		maxAt := math.Inf(-1)
		minAt := math.Inf(1)
		for _, e := range r.G.Fanin[ffID] {
			at := r.ArrivalOut[e.From] + r.WireDelay[e.From]
			if at > maxAt {
				maxAt = at
			}
			mn := r.MinArrival[e.From] + r.WireDelay[e.From]
			if mn < minAt {
				minAt = mn
			}
		}
		if len(r.G.Fanin[ffID]) == 0 {
			r.DataAtD[fi] = math.Inf(-1)
			r.MinAtD[fi] = math.Inf(1)
			continue
		}
		r.DataAtD[fi] = maxAt
		r.MinAtD[fi] = minAt
	}
}

// endpointRequired returns the setup required time at endpoint fi's D pin:
// the capture edge (period + early capture clock) minus the setup time,
// plus GBA's conservative CRPR credit.
func (r *Result) endpointRequired(fi int) float64 {
	d := r.G.D
	ff := d.Instances[d.FFs[fi]]
	return d.ClockPeriod + r.ClockEarly[fi] - ff.Cell.Setup + r.GBACRPR[fi]
}

// endpointSlacks derives setup and hold slacks, WNS and TNS.
func (r *Result) endpointSlacks() {
	d := r.G.D
	r.WNS, r.TNS = 0, 0
	for fi, ffID := range d.FFs {
		if len(r.G.Fanin[ffID]) == 0 {
			r.Slack[fi] = unconstrained
			r.HoldSlack[fi] = unconstrained
			continue
		}
		ff := d.Instances[ffID]
		r.Slack[fi] = r.endpointRequired(fi) - r.DataAtD[fi]
		// Hold: earliest data edge must beat the same-cycle capture edge
		// (late capture clock) plus the hold requirement.
		r.HoldSlack[fi] = r.MinAtD[fi] - (r.ClockLate[fi] - r.ClockEarly[fi] + ff.Cell.Hold) - r.ClockEarly[fi]
		if s := r.Slack[fi]; s < 0 {
			r.TNS += s
			if s < r.WNS {
				r.WNS = s
			}
		}
	}
}

// backwardAll propagates required times from endpoints toward launch FFs.
// RequiredOut[v] is the latest time instance v's output may switch without
// violating any downstream endpoint.
func (r *Result) backwardAll() {
	d := r.G.D
	for i := range r.RequiredOut {
		r.RequiredOut[i] = unconstrained
	}
	for i := len(r.G.Topo) - 1; i >= 0; i-- {
		v := r.G.Topo[i]
		req := unconstrained
		for _, e := range r.G.Fanout[v] {
			to := d.Instances[e.To]
			var cand float64
			if to.IsFF() {
				cand = r.endpointRequired(r.G.FFIndex(e.To)) - r.WireDelay[v]
			} else {
				cand = r.RequiredOut[e.To] - r.CellDelay[e.To] - r.WireDelay[v]
			}
			if cand < req {
				req = cand
			}
		}
		r.RequiredOut[v] = req
	}
}

// InstanceSlack returns the slack of the worst path through instance v —
// the quantity the closure flow sorts on when choosing what to fix.
func (r *Result) InstanceSlack(v int) float64 {
	if math.IsInf(r.RequiredOut[v], 1) {
		return unconstrained
	}
	return r.RequiredOut[v] - r.ArrivalOut[v]
}

// ViolatingEndpoints returns the D.FFs positions of endpoints with negative
// setup slack, unsorted.
func (r *Result) ViolatingEndpoints() []int {
	var out []int
	for fi, s := range r.Slack {
		if s < 0 {
			out = append(out, fi)
		}
	}
	return out
}

// Update re-propagates timing after the given instances changed (resize or
// delay override change). It recomputes the forward cone of the modified
// set plus the drivers whose load changed (the caller passes those too),
// then refreshes endpoint slacks and the backward pass.
//
// Connectivity changes (buffer insertion) invalidate the graph; rebuild
// with graph.Build and call Analyze instead.
func (r *Result) Update(modified []int) {
	if len(modified) == 0 {
		return
	}
	d := r.G.D
	dirty := make(map[int]bool, len(modified))
	queue := append([]int(nil), modified...)
	for _, v := range queue {
		dirty[v] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range r.G.Fanout[v] {
			if !d.Instances[e.To].IsFF() && !dirty[e.To] {
				dirty[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	// Re-evaluate dirty instances in global topological order.
	for _, v := range r.G.Topo {
		if dirty[v] {
			r.evalInstance(v)
		}
	}
	r.collectEndpointArrivals()
	r.backwardAll()
	r.endpointSlacks()
}

// TunePeriod returns a clock period that makes approximately violateFrac of
// the constrained endpoints violate under this analysis' arrival times,
// while capping how *deep* the worst violation is: the period never drops
// below (1-maxViolDepth) of the worst endpoint's required period, so every
// violation stays within reach of gate sizing. maxViolDepth <= 0 disables
// the depth cap.
func TunePeriod(g *graph.Graph, cfg Config, violateFrac, maxViolDepth float64) (float64, error) {
	if violateFrac < 0 || violateFrac >= 1 {
		return 0, fmt.Errorf("sta: violateFrac %v outside [0,1)", violateFrac)
	}
	if maxViolDepth >= 1 {
		return 0, fmt.Errorf("sta: maxViolDepth %v must be below 1", maxViolDepth)
	}
	d := g.D
	save := d.ClockPeriod
	d.ClockPeriod = 1 // any positive value; slack shifts linearly with T
	r := Analyze(g, cfg)
	d.ClockPeriod = save
	var needs []float64
	for fi, ffID := range d.FFs {
		if len(g.Fanin[ffID]) == 0 {
			continue
		}
		ff := d.Instances[ffID]
		// Minimal period for endpoint fi to meet setup.
		needs = append(needs, r.DataAtD[fi]+ff.Cell.Setup-r.ClockEarly[fi])
	}
	if len(needs) == 0 {
		return 0, fmt.Errorf("sta: no constrained endpoints")
	}
	// Period at the (1-violateFrac) quantile: endpoints above it violate.
	sorted := append([]float64(nil), needs...)
	sort.Float64s(sorted)
	idx := int(float64(len(sorted)-1) * (1 - violateFrac))
	period := sorted[idx]
	if maxViolDepth > 0 {
		// The floor references the 95th-percentile need rather than the
		// absolute maximum: a handful of outlier endpoints may violate
		// deeply (real designs have their hopeless paths too — the paper
		// accepts up to ~100 unwaived endpoints), but the bulk of the
		// violations stays within sizing reach.
		q95 := sorted[int(float64(len(sorted)-1)*0.95)]
		if floor := q95 * (1 - maxViolDepth); period < floor {
			period = floor
		}
	}
	return period, nil
}
