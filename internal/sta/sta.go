// Package sta is the compatibility surface of the graph-based static
// timing analyzer (GBA). The engine itself — the session that owns the
// design-derived immutable state, the pooled per-run buffers, and the
// level-parallel forward/backward propagation — lives in internal/engine;
// this package aliases its types and keeps the historical entry points
// (Analyze, DefaultConfig, TunePeriod) so every consumer and test written
// against the original single-shot API keeps working unchanged.
//
// The analysis implements the three worst-casing pessimism sources the
// paper's framework targets:
//
//   - AOCV derating looked up at the *worst* (minimum) cell depth and the
//     *largest* bounding-box endpoint distance of any path through a gate
//     (§2.2 of the paper, Fig. 2);
//   - worst-slew propagation: at every gate the largest input transition of
//     any fanin is assumed, inflating the delay of every path through it;
//   - conservative clock-reconvergence-pessimism removal: GBA applies, at
//     each endpoint, the smallest CRPR credit over every launch leaf that
//     can reach it (the safe worst pair), while PBA applies the exact
//     per-pair credit.
//
// Sign conventions: all times in picoseconds; slack > 0 means the
// constraint is met.
//
// Callers that re-time one design repeatedly (the closure loop, mGBA
// recalibration, PBA budget queries) should hold an engine.Session and
// call Run on it instead of Analyze: the session computes depths, boxes,
// the clock index and the CRPR credit cache once per design, and recycles
// the per-run buffers.
package sta

import (
	"fmt"
	"sort"

	"mgba/internal/engine"
	"mgba/internal/graph"
)

// Config selects the analysis features; it is the engine's Config. The
// zero value is a plain timer with every pessimism source disabled; use
// DefaultConfig for the paper's GBA setting.
type Config = engine.Config

// Result holds a complete forward/backward GBA analysis of one design; it
// is the engine's Result.
type Result = engine.Result

// DefaultConfig is the paper's GBA: full AOCV derating on data and clock,
// worst-slew merging, conservative CRPR crediting.
func DefaultConfig() Config { return engine.DefaultConfig() }

// Analyze runs a full GBA pass over the design's timing graph: a cold
// one-shot session plus one run. Prefer engine.NewSession + Run for
// repeated analyses of the same design.
func Analyze(g *graph.Graph, cfg Config) *Result {
	return engine.Analyze(g, cfg)
}

// TunePeriod returns a clock period that makes approximately violateFrac of
// the constrained endpoints violate under this analysis' arrival times,
// while capping how *deep* the worst violation is: the period never drops
// below (1-maxViolDepth) of the worst endpoint's required period, so every
// violation stays within reach of gate sizing. maxViolDepth <= 0 disables
// the depth cap.
func TunePeriod(g *graph.Graph, cfg Config, violateFrac, maxViolDepth float64) (float64, error) {
	if violateFrac < 0 || violateFrac >= 1 {
		return 0, fmt.Errorf("sta: violateFrac %v outside [0,1)", violateFrac)
	}
	if maxViolDepth >= 1 {
		return 0, fmt.Errorf("sta: maxViolDepth %v must be below 1", maxViolDepth)
	}
	d := g.D
	save := d.ClockPeriod
	d.ClockPeriod = 1 // any positive value; slack shifts linearly with T
	r := Analyze(g, cfg)
	d.ClockPeriod = save
	defer r.Release()
	var needs []float64
	for fi, ffID := range d.FFs {
		if len(g.Fanin(ffID)) == 0 {
			continue
		}
		ff := d.Instances[ffID]
		// Minimal period for endpoint fi to meet setup.
		needs = append(needs, r.DataAtD[fi]+ff.Cell.Setup-r.ClockEarly[fi])
	}
	if len(needs) == 0 {
		return 0, fmt.Errorf("sta: no constrained endpoints")
	}
	// Period at the (1-violateFrac) quantile: endpoints above it violate.
	sorted := append([]float64(nil), needs...)
	sort.Float64s(sorted)
	idx := int(float64(len(sorted)-1) * (1 - violateFrac))
	period := sorted[idx]
	if maxViolDepth > 0 {
		// The floor references the 95th-percentile need rather than the
		// absolute maximum: a handful of outlier endpoints may violate
		// deeply (real designs have their hopeless paths too — the paper
		// accepts up to ~100 unwaived endpoints), but the bulk of the
		// violations stays within sizing reach.
		q95 := sorted[int(float64(len(sorted)-1)*0.95)]
		if floor := q95 * (1 - maxViolDepth); period < floor {
			period = floor
		}
	}
	return period, nil
}
