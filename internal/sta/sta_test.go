package sta_test

import (
	"math"
	"testing"

	"mgba/internal/aocv"
	"mgba/internal/cells"
	"mgba/internal/fixtures"
	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/sta"
)

func analyzeFig2(t *testing.T) (*netlist.Design, *fixtures.Fig2Info, *graph.Graph, *sta.Result) {
	t.Helper()
	d, info, cfg, err := fixtures.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, info, g, sta.Analyze(g, cfg)
}

// Eq. (3) of the paper: GBA prices the FF1->FF4 path at 740 ps.
func TestFig2GBAPathDelay(t *testing.T) {
	d, info, g, r := analyzeFig2(t)
	fi4 := g.FFIndex(info.FF4)
	if got := r.DataAtD[fi4]; math.Abs(got-740) > 1e-9 {
		t.Fatalf("GBA arrival at FF4.D = %v, want 740 (Eq. 3)", got)
	}
	// Per-gate derates along the main path: 1.20,1.20,1.20,1.30,1.25,1.25.
	want := [6]float64{1.20, 1.20, 1.20, 1.30, 1.25, 1.25}
	for i, id := range info.Gates {
		if math.Abs(r.Derate[id]-want[i]) > 1e-12 {
			t.Errorf("g%d derate = %v, want %v", i+1, r.Derate[id], want[i])
		}
	}
	_ = d
}

func TestFig2CellDelays(t *testing.T) {
	_, info, _, r := analyzeFig2(t)
	// Every main gate contributes 100ps * derate.
	if math.Abs(r.CellDelay[info.Gates[3]]-130) > 1e-9 {
		t.Fatalf("g4 cell delay = %v, want 130", r.CellDelay[info.Gates[3]])
	}
	if r.NominalDelay[info.Gates[0]] != 100 {
		t.Fatalf("override not applied: %v", r.NominalDelay[info.Gates[0]])
	}
}

func TestFig2EndpointSlack(t *testing.T) {
	d, info, g, r := analyzeFig2(t)
	fi4 := g.FFIndex(info.FF4)
	ff4 := d.Instances[info.FF4]
	want := d.ClockPeriod - ff4.Cell.Setup - 740 // ideal clock
	if math.Abs(r.Slack[fi4]-want) > 1e-9 {
		t.Fatalf("slack = %v, want %v", r.Slack[fi4], want)
	}
}

func TestWeightsScaleDelays(t *testing.T) {
	d, info, cfg, err := fixtures.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, len(d.Instances))
	for i := range w {
		w[i] = 1
	}
	// Weight the g4 gate down to its PBA-accurate derate: 1.15/1.30.
	w[info.Gates[3]] = 1.15 / 1.30
	cfg.Weights = w
	r := sta.Analyze(g, cfg)
	fi4 := g.FFIndex(info.FF4)
	want := 740 - 130 + 115.0
	if math.Abs(r.DataAtD[fi4]-want) > 1e-9 {
		t.Fatalf("weighted arrival = %v, want %v", r.DataAtD[fi4], want)
	}
}

func TestRequiredTimesAndInstanceSlack(t *testing.T) {
	d, info, g, r := analyzeFig2(t)
	// The instance slack of every main-path gate equals the endpoint slack
	// of its worst downstream endpoint.
	fi4 := g.FFIndex(info.FF4)
	fi3 := g.FFIndex(info.FF3)
	worst := math.Min(r.Slack[fi4], r.Slack[fi3])
	if got := r.InstanceSlack(info.Gates[3]); math.Abs(got-worst) > 1e-9 {
		t.Fatalf("g4 instance slack = %v, want %v", got, worst)
	}
	_ = d
}

func TestWNSTNS(t *testing.T) {
	// Shrink the period so endpoints violate and check the aggregates.
	d, _, cfg, err := fixtures.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	d.ClockPeriod = 500
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, cfg)
	if r.WNS >= 0 {
		t.Fatalf("WNS = %v, want negative at 500ps period", r.WNS)
	}
	var tns, wns float64
	for _, s := range r.Slack {
		if s < 0 {
			tns += s
			if s < wns {
				wns = s
			}
		}
	}
	if math.Abs(tns-r.TNS) > 1e-9 || math.Abs(wns-r.WNS) > 1e-9 {
		t.Fatalf("aggregates mismatch: TNS %v vs %v, WNS %v vs %v", r.TNS, tns, r.WNS, wns)
	}
	if len(r.ViolatingEndpoints()) == 0 {
		t.Fatal("no violating endpoints reported")
	}
}

func TestWorstSlewPropagationIsPessimistic(t *testing.T) {
	// A NAND merges a lightly-loaded fast driver and a heavily-loaded slow
	// driver. GBA must use the slow driver's slew for the NAND delay.
	lib := cells.Default(28)
	d := netlist.New("slew", 28, lib, aocv.Default(28), 10000)
	clk := d.AddNet()
	d.SetClockRoot(clk)
	ffc, _ := lib.Pick(cells.DFF, 1)
	invW, _ := lib.Pick(cells.Inv, 1) // weak: slow slew under load
	nand, _ := lib.Pick(cells.Nand2, 1)
	qa, qb := d.AddNet(), d.AddNet()
	na, nb, no := d.AddNet(), d.AddNet(), d.AddNet()
	qx := d.AddNet()
	ffA, _ := d.AddFF(ffc, 0, 0, qx, qa, clk)
	ffB, _ := d.AddFF(ffc, 0, 50, no, qb, clk) // far away: big wire load on its cone
	gA, _ := d.AddGate(invW, 1, 0, []int{qa}, na)
	gB, _ := d.AddGate(invW, 1, 50, []int{qb}, nb)
	gN, _ := d.AddGate(nand, 2, 0, []int{na, nb}, no)
	d.AddFF(ffc, 3, 0, no, qx, clk)
	d.AutoWire()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sta.Config{IdealClock: true}
	r := sta.Analyze(g, cfg)
	slowSlew := math.Max(r.Slew[gA.ID], r.Slew[gB.ID])
	// NAND nominal delay must reflect the worst input slew.
	load := d.LoadCap(d.Nets[gN.Output])
	want := gN.Cell.Delay(load, slowSlew)
	if math.Abs(r.NominalDelay[gN.ID]-want) > 1e-9 {
		t.Fatalf("NAND delay = %v, want worst-slew %v", r.NominalDelay[gN.ID], want)
	}
	if r.Slew[gA.ID] == r.Slew[gB.ID] {
		t.Fatal("test vacuous: both drivers have identical slew")
	}
	_ = ffA
	_ = ffB
}

func clockTreeDesign(t *testing.T) (*netlist.Design, *graph.Graph) {
	t.Helper()
	lib := cells.Default(28)
	d := netlist.New("ct", 28, lib, aocv.Default(28), 2000)
	clk := d.AddNet()
	d.SetClockRoot(clk)
	cb, _ := lib.Pick(cells.ClkBuf, 2)
	nRoot := d.AddNet()
	d.AddGate(cb, 0, 0, []int{clk}, nRoot)
	nA, nB := d.AddNet(), d.AddNet()
	d.AddGate(cb, -20, 0, []int{nRoot}, nA)
	d.AddGate(cb, 20, 0, []int{nRoot}, nB)
	ffc, _ := lib.Pick(cells.DFF, 1)
	inv, _ := lib.Pick(cells.Inv, 1)
	q0, mid, q1 := d.AddNet(), d.AddNet(), d.AddNet()
	d.AddFF(ffc, -20, 5, q1, q0, nA)
	d.AddGate(inv, 0, 5, []int{q0}, mid)
	d.AddFF(ffc, 20, 5, mid, q1, nB)
	d.AutoWire()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, g
}

func TestClockInsertionLateAboveEarly(t *testing.T) {
	_, g := clockTreeDesign(t)
	r := sta.Analyze(g, sta.DefaultConfig())
	for fi := range r.ClockLate {
		if r.ClockLate[fi] <= r.ClockEarly[fi] {
			t.Fatalf("FF %d: late %v <= early %v", fi, r.ClockLate[fi], r.ClockEarly[fi])
		}
		if r.ClockEarly[fi] <= 0 {
			t.Fatalf("FF %d: non-positive early insertion %v", fi, r.ClockEarly[fi])
		}
	}
}

func TestCRPRCredit(t *testing.T) {
	_, g := clockTreeDesign(t)
	r := sta.Analyze(g, sta.DefaultConfig())
	// FFs share one root buffer: the credit is positive but smaller than
	// the full late-early insertion gap.
	credit := r.CRPRCredit(0, 1)
	if credit <= 0 {
		t.Fatalf("credit = %v, want > 0 for shared root buffer", credit)
	}
	fullGap := r.ClockLate[0] - r.ClockEarly[0]
	if credit >= fullGap {
		t.Fatalf("credit %v >= full gap %v", credit, fullGap)
	}
	// Self-pair credit equals the launch FF's full insertion gap.
	self := r.CRPRCredit(0, 0)
	if math.Abs(self-fullGap) > 1e-9 {
		t.Fatalf("self credit = %v, want %v", self, fullGap)
	}
}

func TestCRPRZeroWhenIdealOrUnderated(t *testing.T) {
	_, g := clockTreeDesign(t)
	r := sta.Analyze(g, sta.Config{DerateData: true})
	if r.CRPRCredit(0, 1) != 0 {
		t.Fatal("credit without clock derating must be 0")
	}
	r = sta.Analyze(g, sta.Config{DerateData: true, DerateClock: true, IdealClock: true})
	if r.CRPRCredit(0, 1) != 0 {
		t.Fatal("credit with ideal clock must be 0")
	}
}

func TestHoldSlackDirectTransfer(t *testing.T) {
	// Direct FF->FF transfers are the classic hold hazard; with an ideal
	// clock and a real CK->Q delay the hold slack must be positive here.
	d, _, err := fixtures.Chain(1, 5, 28, 2000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	r := sta.Analyze(g, sta.Config{IdealClock: true})
	for fi, hs := range r.HoldSlack {
		if math.IsInf(hs, 1) {
			continue
		}
		if hs <= 0 {
			t.Fatalf("endpoint %d hold slack = %v, want positive with ideal clock", fi, hs)
		}
	}
}

func TestDerationIncreasesArrival(t *testing.T) {
	d, _, err := fixtures.Chain(10, 10, 16, 3000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	plain := sta.Analyze(g, sta.Config{IdealClock: true})
	derated := sta.Analyze(g, sta.Config{DerateData: true, IdealClock: true})
	for fi := range plain.DataAtD {
		if math.IsInf(plain.DataAtD[fi], -1) {
			continue
		}
		if derated.DataAtD[fi] <= plain.DataAtD[fi] {
			t.Fatalf("derated arrival %v not above nominal %v", derated.DataAtD[fi], plain.DataAtD[fi])
		}
	}
}

func TestIncrementalUpdateMatchesFull(t *testing.T) {
	d, ids, err := fixtures.Chain(12, 8, 28, 2500)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sta.DefaultConfig()
	r := sta.Analyze(g, cfg)

	// Resize a mid-chain inverter up and incrementally update. The
	// modified set includes the resized gate and its fanin driver (whose
	// load changed).
	mid := ids[6]
	inst := d.Instances[mid]
	up := d.Lib.Upsize(inst.Cell)
	if up == nil {
		t.Fatal("no upsize available")
	}
	if err := d.Resize(inst, up); err != nil {
		t.Fatal(err)
	}
	fanin := d.Nets[inst.Inputs[0]].Driver
	r.Update([]int{mid, fanin})

	full := sta.Analyze(g, cfg)
	for v := range full.ArrivalOut {
		if math.Abs(full.ArrivalOut[v]-r.ArrivalOut[v]) > 1e-9 {
			t.Fatalf("instance %d arrival: incremental %v vs full %v", v, r.ArrivalOut[v], full.ArrivalOut[v])
		}
		if math.Abs(full.RequiredOut[v]-r.RequiredOut[v]) > 1e-9 {
			t.Fatalf("instance %d required: incremental %v vs full %v", v, r.RequiredOut[v], full.RequiredOut[v])
		}
	}
	for fi := range full.Slack {
		if math.Abs(full.Slack[fi]-r.Slack[fi]) > 1e-9 {
			t.Fatalf("endpoint %d slack: incremental %v vs full %v", fi, r.Slack[fi], full.Slack[fi])
		}
	}
	if math.Abs(full.TNS-r.TNS) > 1e-9 || math.Abs(full.WNS-r.WNS) > 1e-9 {
		t.Fatal("aggregate mismatch after incremental update")
	}
}

func TestUpdateEmptyNoop(t *testing.T) {
	_, _, g, r := analyzeFig2(t)
	before := r.TNS
	r.Update(nil)
	if r.TNS != before {
		t.Fatal("empty update changed state")
	}
	_ = g
}

func TestTunePeriod(t *testing.T) {
	d, _, err := fixtures.Chain(20, 10, 28, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sta.DefaultConfig()
	p0, err := sta.TunePeriod(g, cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.ClockPeriod = p0
	r := sta.Analyze(g, cfg)
	if len(r.ViolatingEndpoints()) != 0 {
		t.Fatalf("violations at violateFrac=0: %v", r.ViolatingEndpoints())
	}
	p50, err := sta.TunePeriod(g, cfg, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p50 >= p0 {
		t.Fatalf("period at 50%% violations (%v) should be below zero-violation period (%v)", p50, p0)
	}
	d.ClockPeriod = p50
	r = sta.Analyze(g, cfg)
	if len(r.ViolatingEndpoints()) == 0 {
		t.Fatal("no violations at violateFrac=0.5")
	}
}

func TestTunePeriodBadFrac(t *testing.T) {
	d, _, err := fixtures.Chain(2, 10, 28, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sta.TunePeriod(g, sta.DefaultConfig(), 1.0, 0); err == nil {
		t.Fatal("violateFrac=1 accepted")
	}
	if _, err := sta.TunePeriod(g, sta.DefaultConfig(), -0.1, 0); err == nil {
		t.Fatal("negative violateFrac accepted")
	}
}
