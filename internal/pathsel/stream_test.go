package pathsel_test

import (
	"errors"
	"testing"

	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/pathsel"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

func streamAnalyzer(t *testing.T, parallelism int) *pba.Analyzer {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 500, 70
	cfg.Name = "stream"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	sc := sta.DefaultConfig()
	sc.Parallelism = parallelism
	return pba.NewAnalyzer(sta.Analyze(g, sc))
}

// The streamed shards, concatenated, must reproduce the materialized
// population bit-exactly — same endpoints, same groups, same path order,
// same floats — at every shard size and Parallelism.
func TestEnumerateStreamBitIdentical(t *testing.T) {
	for _, par := range []int{1, 4} {
		a := streamAnalyzer(t, par)
		pop := pathsel.Enumerate(a, 25)
		for _, shardSize := range []int{1, 3, 16, 0} {
			var eps []int
			var groups [][]*pba.Path
			err := pathsel.EnumerateStream(a, 25, shardSize, func(sh *pathsel.Shard) error {
				if sh.Start != len(eps) {
					t.Fatalf("shard start %d, expected %d", sh.Start, len(eps))
				}
				eps = append(eps, sh.Endpoints...)
				groups = append(groups, sh.Groups...)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			wantEps := pop.Endpoints()
			wantGroups := pop.Groups()
			if len(eps) != len(wantEps) || len(groups) != len(wantGroups) {
				t.Fatalf("par %d shard %d: %d endpoints, want %d", par, shardSize, len(eps), len(wantEps))
			}
			for i := range eps {
				if eps[i] != wantEps[i] {
					t.Fatalf("par %d shard %d: endpoint %d differs", par, shardSize, i)
				}
				if len(groups[i]) != len(wantGroups[i]) {
					t.Fatalf("par %d shard %d: group %d size %d, want %d",
						par, shardSize, i, len(groups[i]), len(wantGroups[i]))
				}
				for j, p := range groups[i] {
					w := wantGroups[i][j]
					if p.Launch != w.Launch || p.Capture != w.Capture ||
						p.GBAArrival != w.GBAArrival || p.GBASlack != w.GBASlack {
						t.Fatalf("par %d shard %d: path (%d,%d) differs", par, shardSize, i, j)
					}
					for k := range p.Cells {
						if p.Cells[k] != w.Cells[k] {
							t.Fatalf("par %d shard %d: cells differ at (%d,%d,%d)", par, shardSize, i, j, k)
						}
					}
				}
			}
		}
	}
}

func TestEnumerateStreamStopsOnError(t *testing.T) {
	a := streamAnalyzer(t, 1)
	boom := errors.New("boom")
	calls := 0
	err := pathsel.EnumerateStream(a, 25, 2, func(sh *pathsel.Shard) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("stream continued after error (%d calls)", calls)
	}
}

// A bank built shard by shard must hold the same population as the
// materialized groups, decodable bit-exactly.
func TestBankMatchesPopulation(t *testing.T) {
	a := streamAnalyzer(t, 1)
	pop := pathsel.Enumerate(a, 25)
	bank := pathsel.NewBank(0)
	err := pathsel.EnumerateStream(a, 25, 4, func(sh *pathsel.Shard) error {
		return bank.AppendShard(sh)
	})
	if err != nil {
		t.Fatal(err)
	}
	if bank.Total() != pop.Total() {
		t.Fatalf("bank holds %d paths, population %d", bank.Total(), pop.Total())
	}
	if bank.NumGroups() != len(pop.Groups()) {
		t.Fatalf("bank groups %d, population %d", bank.NumGroups(), len(pop.Groups()))
	}
	var buf pba.Path
	idx := 0
	for gi, g := range pop.Groups() {
		lo, hi := bank.Group(gi)
		if hi-lo != len(g) {
			t.Fatalf("group %d: bank size %d, want %d", gi, hi-lo, len(g))
		}
		if bank.Endpoints()[gi] != pop.Endpoints()[gi] {
			t.Fatalf("group %d: endpoint differs", gi)
		}
		for _, w := range g {
			got := bank.Store.PathInto(&buf, idx)
			if got.Launch != w.Launch || got.Capture != w.Capture ||
				got.GBAArrival != w.GBAArrival || got.GBASlack != w.GBASlack {
				t.Fatalf("path %d differs", idx)
			}
			for k := range w.Cells {
				if got.Cells[k] != w.Cells[k] {
					t.Fatalf("path %d cell %d differs", idx, k)
				}
			}
			idx++
		}
	}
}
