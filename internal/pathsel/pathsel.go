// Package pathsel implements the critical-path selection schemes compared
// in §3.2 of the paper:
//
//   - GlobalTopM: sort all violated paths by GBA slack and keep the m'
//     worst. Simple, but the kept paths concentrate on a few critical
//     endpoints and leave most gates uncovered, which ruins the fit.
//   - PerEndpointTopK: keep the k' worst paths of *every* endpoint. Same
//     path budget, far better gate coverage — the scheme the paper adopts
//     (k' = 20, m' capped).
//
// Both schemes draw from the exact per-endpoint enumerator in internal/pba.
package pathsel

import (
	"sort"

	"mgba/internal/pba"
)

// Selection is the outcome of a path-selection scheme.
type Selection struct {
	Scheme string
	Paths  []*pba.Path
}

// CellSet returns the set of delay cells (launch FFs and combinational
// gates) covered by the selected paths.
func (s *Selection) CellSet() map[int]bool {
	set := make(map[int]bool)
	for _, p := range s.Paths {
		for _, c := range p.Cells {
			set[c] = true
		}
	}
	return set
}

// Coverage returns |cells covered by s| / |cells covered by ref| — the
// gate-coverage metric of §3.2, measured against a reference population
// (normally the full violated path set).
func (s *Selection) Coverage(ref *Selection) float64 {
	refSet := ref.CellSet()
	if len(refSet) == 0 {
		return 0
	}
	mine := s.CellSet()
	n := 0
	for c := range mine {
		if refSet[c] {
			n++
		}
	}
	return float64(n) / float64(len(refSet))
}

// Population is one shared enumeration of the violated-path population,
// grouped per endpoint. Every selection scheme is a cheap view over it, so
// comparing schemes — or recalibrating incrementally — never re-runs the
// k-worst search. The per-endpoint groups are in FF order, each group in
// descending GBA-arrival order, exactly as the enumerator produced them.
type Population struct {
	cap       int   // per-endpoint enumeration cap the groups were built with
	endpoints []int // D.FFs positions, FF order; parallel to groups
	groups    [][]*pba.Path
	total     int
}

// Enumerate collects up to capPerEndpoint violated paths of every
// constrained endpoint in one pass, fanning the per-endpoint searches
// across workers per the analysis' Parallelism setting. The result is
// identical at every setting.
func Enumerate(a *pba.Analyzer, capPerEndpoint int) *Population {
	zero := 0.0
	eps := a.EndpointIndices()
	groups := a.KWorstAll(eps, capPerEndpoint, &zero, a.R.Cfg.Parallelism)
	return FromGroups(eps, groups, capPerEndpoint)
}

// FromGroups wraps an already-enumerated per-endpoint path partition (as
// produced by pba.Analyzer.KWorstAll over endpoints in FF order) into a
// Population without re-running any search.
func FromGroups(endpoints []int, groups [][]*pba.Path, capPerEndpoint int) *Population {
	p := &Population{cap: capPerEndpoint, endpoints: endpoints, groups: groups}
	for _, ps := range groups {
		p.total += len(ps)
	}
	return p
}

// Total returns the number of enumerated violated paths.
func (p *Population) Total() int { return p.total }

// Endpoints returns the enumerated endpoints (D.FFs positions, FF order),
// parallel to Groups. Shared storage; callers must not modify.
func (p *Population) Endpoints() []int { return p.endpoints }

// Groups returns the per-endpoint path lists, parallel to Endpoints.
// Shared storage; callers must not modify.
func (p *Population) Groups() [][]*pba.Path { return p.groups }

// All returns the complete enumerated population, endpoint-major.
func (p *Population) All() *Selection {
	sel := &Selection{Scheme: "all-violated"}
	for _, ps := range p.groups {
		sel.Paths = append(sel.Paths, ps...)
	}
	return sel
}

// GlobalTopM sorts the population by ascending GBA slack (worst first) and
// keeps the m worst.
func (p *Population) GlobalTopM(m int) *Selection {
	all := p.All().Paths
	sort.SliceStable(all, func(i, j int) bool { return all[i].GBASlack < all[j].GBASlack })
	if m > len(all) {
		m = len(all)
	}
	return &Selection{Scheme: "global-top-m", Paths: all[:m]}
}

// TopK keeps the k worst paths of every endpoint (k must not exceed the
// population's enumeration cap, or the view would under-report), then caps
// the total at mCap (mCap <= 0 means no cap) by dropping the highest
// per-endpoint ranks first, preserving coverage.
func (p *Population) TopK(k, mCap int) *Selection {
	perEndpoint := make([][]*pba.Path, 0, len(p.groups))
	total := 0
	for _, ps := range p.groups {
		if len(ps) > k {
			ps = ps[:k]
		}
		if len(ps) > 0 {
			perEndpoint = append(perEndpoint, ps)
			total += len(ps)
		}
	}
	sel := &Selection{Scheme: "per-endpoint-top-k"}
	if mCap <= 0 || total <= mCap {
		for _, ps := range perEndpoint {
			sel.Paths = append(sel.Paths, ps...)
		}
		return sel
	}
	// Round-robin by rank: every endpoint keeps its rank-0 path before any
	// endpoint keeps a rank-1 path, and so on until the cap.
	for rank := 0; rank < k && len(sel.Paths) < mCap; rank++ {
		for _, ps := range perEndpoint {
			if rank < len(ps) {
				sel.Paths = append(sel.Paths, ps[rank])
				if len(sel.Paths) == mCap {
					break
				}
			}
		}
	}
	return sel
}

// AllViolated collects the complete violated-path population (capped per
// endpoint), the reference both schemes select from.
func AllViolated(a *pba.Analyzer, capPerEndpoint int) *Selection {
	return Enumerate(a, capPerEndpoint).All()
}

// GlobalTopM sorts the violated-path population by ascending GBA slack
// (worst first) and keeps the m worst.
func GlobalTopM(a *pba.Analyzer, m, capPerEndpoint int) *Selection {
	return Enumerate(a, capPerEndpoint).GlobalTopM(m)
}

// PerEndpointTopK keeps the k worst violated paths of every endpoint,
// then caps the total at mCap (mCap <= 0 means no cap) by dropping the
// highest per-endpoint ranks first, preserving coverage.
func PerEndpointTopK(a *pba.Analyzer, k, mCap int) *Selection {
	return Enumerate(a, k).TopK(k, mCap)
}
