// Package pathsel implements the critical-path selection schemes compared
// in §3.2 of the paper:
//
//   - GlobalTopM: sort all violated paths by GBA slack and keep the m'
//     worst. Simple, but the kept paths concentrate on a few critical
//     endpoints and leave most gates uncovered, which ruins the fit.
//   - PerEndpointTopK: keep the k' worst paths of *every* endpoint. Same
//     path budget, far better gate coverage — the scheme the paper adopts
//     (k' = 20, m' capped).
//
// Both schemes draw from the exact per-endpoint enumerator in internal/pba.
package pathsel

import (
	"sort"

	"mgba/internal/pba"
)

// Selection is the outcome of a path-selection scheme.
type Selection struct {
	Scheme string
	Paths  []*pba.Path
}

// CellSet returns the set of delay cells (launch FFs and combinational
// gates) covered by the selected paths.
func (s *Selection) CellSet() map[int]bool {
	set := make(map[int]bool)
	for _, p := range s.Paths {
		for _, c := range p.Cells {
			set[c] = true
		}
	}
	return set
}

// Coverage returns |cells covered by s| / |cells covered by ref| — the
// gate-coverage metric of §3.2, measured against a reference population
// (normally the full violated path set).
func (s *Selection) Coverage(ref *Selection) float64 {
	refSet := ref.CellSet()
	if len(refSet) == 0 {
		return 0
	}
	mine := s.CellSet()
	n := 0
	for c := range mine {
		if refSet[c] {
			n++
		}
	}
	return float64(n) / float64(len(refSet))
}

// AllViolated collects the complete violated-path population (capped per
// endpoint), the reference both schemes select from.
func AllViolated(a *pba.Analyzer, capPerEndpoint int) *Selection {
	return &Selection{
		Scheme: "all-violated",
		Paths:  a.AllViolated(capPerEndpoint),
	}
}

// GlobalTopM sorts the violated-path population by ascending GBA slack
// (worst first) and keeps the m worst.
func GlobalTopM(a *pba.Analyzer, m, capPerEndpoint int) *Selection {
	all := a.AllViolated(capPerEndpoint)
	sort.SliceStable(all, func(i, j int) bool { return all[i].GBASlack < all[j].GBASlack })
	if m > len(all) {
		m = len(all)
	}
	return &Selection{Scheme: "global-top-m", Paths: all[:m]}
}

// PerEndpointTopK keeps the k worst violated paths of every endpoint,
// then caps the total at mCap (mCap <= 0 means no cap) by dropping the
// highest per-endpoint ranks first, preserving coverage.
func PerEndpointTopK(a *pba.Analyzer, k, mCap int) *Selection {
	ffs := a.R.G.D.FFs
	zero := 0.0
	perEndpoint := make([][]*pba.Path, 0, len(ffs))
	total := 0
	for fi, ffID := range ffs {
		if len(a.R.G.Fanin[ffID]) == 0 {
			continue
		}
		ps := a.KWorst(fi, k, &zero)
		if len(ps) > 0 {
			perEndpoint = append(perEndpoint, ps)
			total += len(ps)
		}
	}
	sel := &Selection{Scheme: "per-endpoint-top-k"}
	if mCap <= 0 || total <= mCap {
		for _, ps := range perEndpoint {
			sel.Paths = append(sel.Paths, ps...)
		}
		return sel
	}
	// Round-robin by rank: every endpoint keeps its rank-0 path before any
	// endpoint keeps a rank-1 path, and so on until the cap.
	for rank := 0; rank < k && len(sel.Paths) < mCap; rank++ {
		for _, ps := range perEndpoint {
			if rank < len(ps) {
				sel.Paths = append(sel.Paths, ps[rank])
				if len(sel.Paths) == mCap {
					break
				}
			}
		}
	}
	return sel
}
