package pathsel_test

import (
	"testing"

	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/pathsel"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

func analyzer(t *testing.T) *pba.Analyzer {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 600, 90
	cfg.Name = "pathsel"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return pba.NewAnalyzer(sta.Analyze(g, sta.DefaultConfig()))
}

func TestGlobalTopMSortedAndCapped(t *testing.T) {
	a := analyzer(t)
	sel := pathsel.GlobalTopM(a, 50, 100)
	if len(sel.Paths) == 0 {
		t.Fatal("no paths selected")
	}
	if len(sel.Paths) > 50 {
		t.Fatalf("cap violated: %d", len(sel.Paths))
	}
	for i := 1; i < len(sel.Paths); i++ {
		if sel.Paths[i].GBASlack < sel.Paths[i-1].GBASlack-1e-9 {
			t.Fatal("global selection not worst-first")
		}
	}
}

func TestGlobalTopMLargerThanPopulation(t *testing.T) {
	a := analyzer(t)
	all := pathsel.AllViolated(a, 100)
	sel := pathsel.GlobalTopM(a, len(all.Paths)+1000, 100)
	if len(sel.Paths) != len(all.Paths) {
		t.Fatalf("m beyond population: got %d, want %d", len(sel.Paths), len(all.Paths))
	}
}

func TestPerEndpointTopKRespectsK(t *testing.T) {
	a := analyzer(t)
	sel := pathsel.PerEndpointTopK(a, 3, 0)
	counts := map[int]int{}
	for _, p := range sel.Paths {
		counts[p.Capture]++
	}
	for ep, c := range counts {
		if c > 3 {
			t.Fatalf("endpoint %d has %d paths, want <= 3", ep, c)
		}
	}
	for _, p := range sel.Paths {
		if p.GBASlack >= 0 {
			t.Fatalf("non-violated path selected: %v", p.GBASlack)
		}
	}
}

func TestPerEndpointCapRoundRobin(t *testing.T) {
	a := analyzer(t)
	uncapped := pathsel.PerEndpointTopK(a, 5, 0)
	cap := len(uncapped.Paths) / 2
	capped := pathsel.PerEndpointTopK(a, 5, cap)
	if len(capped.Paths) != cap {
		t.Fatalf("capped size = %d, want %d", len(capped.Paths), cap)
	}
	// Round-robin keeps rank-0 paths of all endpoints: the number of
	// distinct endpoints covered must not shrink versus uncapped (as long
	// as the cap exceeds the endpoint count).
	eps := func(s *pathsel.Selection) int {
		m := map[int]bool{}
		for _, p := range s.Paths {
			m[p.Capture] = true
		}
		return len(m)
	}
	if cap >= eps(uncapped) && eps(capped) != eps(uncapped) {
		t.Fatalf("cap lost endpoints: %d vs %d", eps(capped), eps(uncapped))
	}
}

// The experimental claim of §3.2: with the same path budget, the
// per-endpoint scheme covers far more gates than the global scheme.
func TestPerEndpointCoversMoreGates(t *testing.T) {
	a := analyzer(t)
	all := pathsel.AllViolated(a, 200)
	perEp := pathsel.PerEndpointTopK(a, 20, 0)
	budget := len(perEp.Paths)
	global := pathsel.GlobalTopM(a, budget, 200)

	covPer := perEp.Coverage(all)
	covGlobal := global.Coverage(all)
	t.Logf("coverage: per-endpoint %.1f%%, global %.1f%% (budget %d paths of %d violated)",
		covPer*100, covGlobal*100, budget, len(all.Paths))
	if covPer < covGlobal*1.5 {
		t.Fatalf("per-endpoint coverage %.3f not clearly above global %.3f", covPer, covGlobal)
	}
	if covPer < 0.5 {
		t.Fatalf("per-endpoint coverage %.3f suspiciously low", covPer)
	}
}

func TestCoverageBounds(t *testing.T) {
	a := analyzer(t)
	all := pathsel.AllViolated(a, 100)
	if got := all.Coverage(all); got != 1 {
		t.Fatalf("self coverage = %v", got)
	}
	empty := &pathsel.Selection{}
	if got := empty.Coverage(all); got != 0 {
		t.Fatalf("empty coverage = %v", got)
	}
	if got := all.Coverage(empty); got != 0 {
		t.Fatalf("coverage against empty ref = %v", got)
	}
}

func TestCellSet(t *testing.T) {
	a := analyzer(t)
	sel := pathsel.PerEndpointTopK(a, 1, 0)
	set := sel.CellSet()
	if len(set) == 0 {
		t.Fatal("empty cell set")
	}
	for _, p := range sel.Paths {
		for _, c := range p.Cells {
			if !set[c] {
				t.Fatal("cell missing from set")
			}
		}
	}
}
