package pathsel

import (
	"mgba/internal/pba"
)

// Shard is one contiguous run of endpoints handed to a streaming consumer:
// the endpoints (D.FFs positions, FF order) and their enumerated path
// groups, exactly as Enumerate would have produced for those positions.
// The groups are owned by the consumer and become garbage once the
// callback returns — that is the point: peak memory is one shard.
type Shard struct {
	Start     int   // position of Endpoints[0] in the full FF-order endpoint list
	Endpoints []int // D.FFs positions; parallel to Groups
	Groups    [][]*pba.Path
}

// EnumerateStream enumerates the violated-path population shard by shard
// instead of materializing it whole: endpoints are processed in FF order
// in runs of shardSize (<= 0 means one shard), each run fanned across
// workers exactly as Enumerate fans the full list. Per-endpoint searches
// are independent and slot-written by position, so the concatenation of
// the streamed groups is bit-identical to Enumerate's at every
// Parallelism setting — the equivalence tests pin this.
//
// fn is called once per shard, in order, on the caller's goroutine. A
// non-nil error stops the stream and is returned.
func EnumerateStream(a *pba.Analyzer, capPerEndpoint, shardSize int, fn func(*Shard) error) error {
	zero := 0.0
	eps := a.EndpointIndices()
	if shardSize <= 0 || shardSize > len(eps) {
		shardSize = len(eps)
	}
	for lo := 0; lo < len(eps); lo += shardSize {
		hi := lo + shardSize
		if hi > len(eps) {
			hi = len(eps)
		}
		groups := a.KWorstAll(eps[lo:hi], capPerEndpoint, &zero, a.R.Cfg.Parallelism)
		if err := fn(&Shard{Start: lo, Endpoints: eps[lo:hi], Groups: groups}); err != nil {
			return err
		}
	}
	return nil
}

// Bank is the slab-backed form of a per-endpoint grouped path population:
// the same information as Population's [][]*pba.Path, held in one
// pba.PathStore plus a group-offset arena. It is built shard by shard
// (AppendShard) and never holds pointer-form paths.
type Bank struct {
	Store     *pba.PathStore
	endpoints []int
	groupOff  []int32 // per group: start index into Store; len = len(endpoints)+1
}

// NewBank returns an empty bank, optionally pre-sized for n endpoints.
func NewBank(n int) *Bank {
	b := &Bank{Store: pba.NewPathStore(0, 0)}
	if n > 0 {
		b.endpoints = make([]int, 0, n)
		b.groupOff = make([]int32, 1, n+1)
	} else {
		b.groupOff = append(b.groupOff, 0)
	}
	return b
}

// AppendShard encodes a shard's groups into the bank. Shards must arrive
// in stream order.
func (b *Bank) AppendShard(sh *Shard) error {
	for gi, g := range sh.Groups {
		for _, p := range g {
			if err := b.Store.Append(p); err != nil {
				return err
			}
		}
		b.endpoints = append(b.endpoints, sh.Endpoints[gi])
		b.groupOff = append(b.groupOff, int32(b.Store.Len()))
	}
	return nil
}

// Total returns the number of stored paths.
func (b *Bank) Total() int { return b.Store.Len() }

// NumGroups returns the number of endpoint groups.
func (b *Bank) NumGroups() int { return len(b.endpoints) }

// Endpoints returns the endpoint (D.FFs) positions, parallel to groups.
// Shared storage; callers must not modify.
func (b *Bank) Endpoints() []int { return b.endpoints }

// Group returns the [lo, hi) store-index range of group gi.
func (b *Bank) Group(gi int) (lo, hi int) {
	return int(b.groupOff[gi]), int(b.groupOff[gi+1])
}

// SizeBytes returns the retained byte footprint of the bank's slabs.
func (b *Bank) SizeBytes() int64 {
	return b.Store.SizeBytes() + 8*int64(cap(b.endpoints)) + 4*int64(cap(b.groupOff))
}
