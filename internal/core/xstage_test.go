package core_test

import (
	"context"
	"testing"

	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/sta"
)

// The cross-stage ("preroute") pair corrects a pre-route analysis
// against a deterministically routed twin of the design. These tests pin
// the two contracts the abstraction must uphold on the new pair: the
// Eq. (5) never-optimistic constraint against the routed golden, and
// bit-exact equivalence between incremental recalibration and cold
// calibration.

func prerouteOptions() core.Options {
	opt := core.DefaultOptions()
	opt.ViewPair = core.PreroutePair
	// StrictSafety is deliberately NOT set: a cross-stage pair declares it
	// needs exact Eq. (5) enforcement and the calibrator forces it on —
	// the never-optimistic assertions below cover that forcing.
	return opt
}

func TestPrerouteCalibrateFitsRoutedGolden(t *testing.T) {
	_, _, sess := calDesign(t)
	cfg := sta.DefaultConfig()
	opt := prerouteOptions()

	m, err := core.CalibrateWithSession(context.Background(), sess, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pair != core.PreroutePair {
		t.Fatalf("model pair = %q, want %q", m.Pair, core.PreroutePair)
	}
	if m.Fault != "" || m.Degraded {
		t.Fatalf("preroute calibration degraded: fault=%q degraded=%v", m.Fault, m.Degraded)
	}
	if len(m.Selection.Paths) == 0 {
		t.Fatal("preroute pair selected no paths")
	}
	gba, err := m.Evaluate("cheap")
	if err != nil {
		t.Fatal(err)
	}
	mgba, err := m.Evaluate("mgba")
	if err != nil {
		t.Fatal(err)
	}
	// The routed twin lengthens most wires, so the uncorrected pre-route
	// view is optimistic on a healthy fraction of paths — the gap the fit
	// must close from below, which scale-back toward identity never could.
	if gba.Optimism == 0 {
		t.Fatal("routed perturbation produced no optimistic pre-route paths; the cross-stage case is vacuous")
	}
	// Eq. (5) on the new pair: no fitted slack is optimistic beyond the
	// epsilon guard against the routed golden.
	if mgba.Optimism != 0 {
		t.Fatalf("fitted pre-route slacks optimistic beyond eps on %d/%d paths (MSE %.3g)",
			mgba.Optimism, mgba.Paths, mgba.MSE)
	}
	if mgba.MSE >= gba.MSE {
		t.Fatalf("fit did not improve MSE: cheap %.3g -> mgba %.3g", gba.MSE, mgba.MSE)
	}
	// Weights above one must be reachable (the cheap view under-times
	// routed paths); the default pair's fits are all <= 1.
	up := 0
	for _, w := range m.Weights {
		if w > 1 {
			up++
		}
	}
	if up == 0 {
		t.Fatal("no fitted weight above 1: routed lengthening was not absorbed")
	}
}

// TestPrerouteRecalibrateMatchesCold is the calibrator contract replayed
// on the cross-stage pair: after a sizing batch, the incremental path —
// baseline update, routed-twin cell mirroring, row patching, warm solve —
// must land bit-identically on a cold calibration of the same state.
func TestPrerouteRecalibrateMatchesCold(t *testing.T) {
	d, g, sess := calDesign(t)
	ctx := context.Background()
	cfg := sta.DefaultConfig()
	opt := prerouteOptions()

	cal, err := core.NewCalibrator(sess, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Pair() != core.PreroutePair {
		t.Fatalf("calibrator pair = %q", cal.Pair())
	}
	m0, err := cal.Calibrate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m0.Selection.Paths) == 0 {
		t.Fatal("toy design selected no paths")
	}

	dirty := upsizeSelected(t, d, g, m0, 40)

	mInc, err := cal.Recalibrate(ctx, dirty)
	if err != nil {
		t.Fatal(err)
	}
	st := cal.Stats()
	if st.Incremental != 1 {
		t.Fatalf("expected 1 incremental recalibration, stats %+v", st)
	}

	coldOpt := opt
	coldOpt.WarmWeights = m0.Weights
	mCold, err := core.CalibrateWithSession(ctx, engine.NewSession(g), cfg, coldOpt)
	if err != nil {
		t.Fatal(err)
	}

	if !sameFloats(mInc.Weights, mCold.Weights) {
		t.Error("incremental weights differ from cold calibration on the preroute pair")
	}
	if len(mInc.Timings) != len(mCold.Timings) {
		t.Fatalf("timing counts differ: %d vs %d", len(mInc.Timings), len(mCold.Timings))
	}
	for i := range mInc.Timings {
		if mInc.Timings[i].Slack != mCold.Timings[i].Slack {
			t.Fatalf("routed golden slack %d differs: %v vs %v",
				i, mInc.Timings[i].Slack, mCold.Timings[i].Slack)
		}
	}
	if !sameFloats(mInc.Problem.B, mCold.Problem.B) {
		t.Error("assembled targets differ from cold calibration")
	}
	if !sameFloats(mInc.MGBA.Slack, mCold.MGBA.Slack) {
		t.Error("mGBA endpoint slacks differ from cold calibration")
	}
}

// TestPrerouteTargetsDifferFromDefault guards against the cross-stage
// pair silently degenerating into the default one: the routed golden
// must move the fit targets.
func TestPrerouteTargetsDifferFromDefault(t *testing.T) {
	_, _, sess := calDesign(t)
	ctx := context.Background()
	cfg := sta.DefaultConfig()

	mDef, err := core.CalibrateWithSession(ctx, sess, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mPre, err := core.CalibrateWithSession(ctx, sess, cfg, prerouteOptions())
	if err != nil {
		t.Fatal(err)
	}
	if mDef.Pair != core.DefaultViewPair {
		t.Fatalf("default model pair = %q", mDef.Pair)
	}
	if sameFloats(mDef.Problem.B, mPre.Problem.B) {
		t.Fatal("preroute targets identical to default pair; routed golden had no effect")
	}
}

func TestPathSlackKindAliases(t *testing.T) {
	_, _, sess := calDesign(t)
	m, err := core.CalibrateWithSession(context.Background(), sess, sta.DefaultConfig(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"golden", "pba"}, {"cheap", "gba"}} {
		a, err := m.PathSlacks(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.PathSlacks(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !sameFloats(a, b) {
			t.Errorf("PathSlacks(%q) != PathSlacks(%q)", pair[0], pair[1])
		}
	}
}

func TestLookupViewPair(t *testing.T) {
	if _, err := core.LookupViewPair(""); err != nil {
		t.Fatalf("empty name must resolve to the default pair: %v", err)
	}
	for _, name := range []string{core.DefaultViewPair, core.PreroutePair} {
		p, err := core.LookupViewPair(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("LookupViewPair(%q).Name() = %q", name, p.Name())
		}
	}
	_, err := core.LookupViewPair("no-such-pair")
	if err == nil {
		t.Fatal("unknown pair name did not error")
	}
	for _, want := range []string{core.DefaultViewPair, core.PreroutePair} {
		if !containsStr(err.Error(), want) {
			t.Errorf("lookup error %q does not list registered pair %q", err, want)
		}
	}
	names := core.ViewPairNames()
	if len(names) < 2 {
		t.Fatalf("expected at least 2 registered pairs, got %v", names)
	}

	_, _, sess := calDesign(t)
	opt := core.DefaultOptions()
	opt.ViewPair = "no-such-pair"
	if _, err := core.NewCalibrator(sess, sta.DefaultConfig(), opt); err == nil {
		t.Fatal("NewCalibrator accepted an unknown view pair")
	}
	if _, err := core.CalibrateWithSession(context.Background(), sess, sta.DefaultConfig(), opt); err == nil {
		t.Fatal("CalibrateWithSession accepted an unknown view pair")
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
