package core

import (
	"context"
	"errors"

	"mgba/internal/engine"
	"mgba/internal/pba"
	"mgba/internal/solver"
	"mgba/internal/sparse"
	"mgba/internal/sta"
)

// Multi-corner (MCMM) calibration: one path enumeration on the selection
// corner (Corners[0]) feeds N per-corner Eq. (9) systems. Every corner
// re-times the same selected paths under its own derate tables and clock
// uncertainty (per-corner golden targets and guards), and the fits are
// solved either independently per corner or as one stacked joint system
// sharing the sparsity pattern (Options.JointFit). StrictSafety is forced
// in multi-corner mode, so no fitted corner is ever optimistic past its
// Eq. (5) guard. The enumeration — the dominant cost the framework exists
// to amortize — runs exactly once.

// CornerFit is the per-corner outcome of a multi-corner calibration.
// Corners[0] of a Model mirrors the model's own selection-corner fit; the
// rest are the extra corners in set order.
type CornerFit struct {
	Spec CornerSpec
	Cfg  sta.Config // the corner's analysis config (Weights == nil)

	Weights     []float64 // per instance ID: 1 + dx (shared across corners under JointFit)
	Correction  []float64 // solved dx per column (Model.Columns order)
	Stats       solver.Stats
	Degraded    bool
	Partial     bool
	Fault       string
	SafetyScale float64

	// Problem is the corner's Eq. (9) system over the shared selection
	// (shared column order with Model.Columns). GoldenSlack, CheapSlack
	// and ModelSlack are the per-path slacks under this corner: golden
	// view, unweighted cheap view, and the fitted model. Row order is the
	// shared selection order.
	Problem     *solver.Problem
	GoldenSlack []float64
	CheapSlack  []float64
	ModelSlack  []float64

	// MGBA is the cheap re-analysis of this corner under the fitted
	// weights — the per-corner slack view the merged worst-corner view is
	// built from.
	MGBA *sta.Result
}

// Evaluate computes the paper's accuracy metrics for this corner's fit
// ("cheap" or "mgba") against the corner's golden slacks.
func (cf *CornerFit) Evaluate(kind string, epsilon float64) (Metrics, error) {
	switch kind {
	case "cheap", "gba":
		return Compare(cf.CheapSlack, cf.GoldenSlack, epsilon), nil
	case "mgba":
		return Compare(cf.ModelSlack, cf.GoldenSlack, epsilon), nil
	}
	return Metrics{}, errors.New("core: unknown slack kind " + kind)
}

// MergedSlack returns the per-endpoint slack view closure should drive
// transforms from: the worst-corner merge when the model is
// multi-corner, the plain mGBA slacks otherwise.
func (m *Model) MergedSlack() []float64 {
	if m.WorstSlack != nil {
		return m.WorstSlack
	}
	return m.MGBA.Slack
}

// cornerState is the calibrator's persistent per-extra-corner state: the
// corner's bound views, its cached cheap baseline (advanced in place by
// incremental recalibrations), the warm start for its next solve, and —
// while the incremental cache is valid — the corner's golden retimings
// grouped by the corner-0 cache slots.
type cornerState struct {
	spec   CornerSpec
	cfg    sta.Config
	cheap  CheapView
	golden GoldenProvider

	gba     *sta.Result
	warm    []float64
	flat    []*pba.Timing   // last cold's flat retimings (selection order)
	tgroups [][]*pba.Timing // per corner-0 cache slot; nil when uncached
}

// cornerSystem is one corner's assembled Eq. (9) system over the shared
// selection.
type cornerSystem struct {
	prob    *solver.Problem
	golden  []float64
	timings []*pba.Timing // nil for streamed (bank-backed) selections
}

// errCornersCancelled aborts multi-corner assembly on context
// cancellation; the caller abandons the model exactly like a cancelled
// single-corner retiming pass.
var errCornersCancelled = errors.New("core: corners cancelled")

// errCornerCold asks Recalibrate to fall back to a cold calibration
// because a corner's incremental state could not be advanced.
var errCornerCold = errors.New("core: corner needs cold calibration")

// multiCorner reports whether the calibrator runs the N>=2 corner
// machinery.
func (c *Calibrator) multiCorner() bool { return len(c.corners) > 0 }

// forEachSelected visits every selected path of m in row order,
// materialized or banked. Banked paths are decoded into a reused buffer:
// the callback must not retain p.
func forEachSelected(m *Model, fn func(i int, p *pba.Path) error) error {
	if m.Bank != nil {
		var buf pba.Path
		for i := 0; i < m.Bank.Total(); i++ {
			if err := fn(i, m.Bank.Store.PathInto(&buf, i)); err != nil {
				return err
			}
		}
		return nil
	}
	for i, p := range m.Selection.Paths {
		if err := fn(i, p); err != nil {
			return err
		}
	}
	return nil
}

// buildCornerSystem retimes the shared selection under one corner's
// golden view and assembles its Eq. (9) system with the shared column
// order. Row order is the selection order, so every corner's system is
// row-aligned with the corner-0 system.
func (c *Calibrator) buildCornerSystem(ctx context.Context, m *Model, cs *cornerState, colOf map[int]int) (*cornerSystem, error) {
	timer, err := cs.golden.Timer(cs.gba)
	if err != nil {
		return nil, err
	}
	n := len(m.Selection.Paths)
	if m.Bank != nil {
		n = m.Bank.Total()
	}
	b := sparse.NewBuilder(len(m.Columns))
	targets := make([]float64, 0, n)
	guards := make([]float64, 0, n)
	golden := make([]float64, 0, n)
	var timings []*pba.Timing
	if m.Bank == nil {
		timings = make([]*pba.Timing, 0, n)
	}
	err = forEachSelected(m, func(i int, p *pba.Path) error {
		if i%256 == 0 && cancelled(ctx) {
			return errCornersCancelled
		}
		tm := timer.Retime(p)
		idx, val, target, guard := cs.cheap.Row(cs.gba, m.G, c.opt.Epsilon, colOf, p, tm)
		if err := b.AddRow(idx, val); err != nil {
			return err
		}
		targets = append(targets, target)
		guards = append(guards, guard)
		golden = append(golden, tm.Slack)
		if timings != nil {
			timings = append(timings, tm)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	a := b.Build()
	a.SetParallelism(engine.Workers(c.cfg.Parallelism))
	prob := &solver.Problem{A: a, B: targets, Guard: guards, Penalty: c.opt.Penalty}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	return &cornerSystem{prob: prob, golden: golden, timings: timings}, nil
}

// calibrateCorners runs the cold multi-corner pass after the corner-0
// pipeline assembled (and, under independent fits, solved) its system:
// per extra corner a fresh cheap baseline, a golden refresh, a shared-
// selection retiming pass and either an independent or a joint fit.
func (c *Calibrator) calibrateCorners(ctx context.Context, m *Model) error {
	colOf := make(map[int]int, len(m.Columns))
	for k, id := range m.Columns {
		colOf[id] = k
	}
	built := make([]*cornerSystem, len(c.corners))
	for i, cs := range c.corners {
		cs.gba = cs.cheap.Run()
		if err := cs.golden.Refresh(); err != nil {
			return err
		}
		sys, err := c.buildCornerSystem(ctx, m, cs, colOf)
		if err != nil {
			return err
		}
		built[i] = sys
		cs.flat = sys.timings
	}
	return c.fitCorners(ctx, m, built)
}

// fitCorners solves the assembled per-corner systems — independently, or
// as one stacked joint system when Options.JointFit — and attaches the
// per-corner fits plus their weighted re-analyses to the model.
func (c *Calibrator) fitCorners(ctx context.Context, m *Model, built []*cornerSystem) error {
	m.Corners = make([]*CornerFit, len(c.corners)+1)
	if c.opt.JointFit {
		if err := c.jointFit(ctx, m, built); err != nil {
			return err
		}
		for i, cs := range c.corners {
			cf := &CornerFit{
				Spec: cs.spec, Cfg: cs.cfg,
				Weights: m.Weights, Correction: m.Correction,
				Stats: m.Stats, Degraded: m.Degraded, Partial: m.Partial,
				Fault: m.Fault, SafetyScale: m.SafetyScale,
				Problem: built[i].prob, GoldenSlack: built[i].golden,
			}
			cf.fillSlacks(m.Columns)
			wcfg := cs.cfg
			wcfg.Weights = m.Weights
			cf.MGBA = c.sess.Run(wcfg)
			m.Corners[i+1] = cf
			cs.warm = m.Weights
		}
		return nil
	}
	for i, cs := range c.corners {
		cf, err := c.solveCorner(ctx, m, cs, built[i])
		if err != nil {
			return err
		}
		m.Corners[i+1] = cf
	}
	return nil
}

// solveCorner fits one corner's system independently, warm-started from
// the corner's previous weights, and re-analyzes the corner under the
// fitted weights.
func (c *Calibrator) solveCorner(ctx context.Context, m *Model, cs *cornerState, sys *cornerSystem) (*CornerFit, error) {
	sm := &Model{G: m.G, Session: m.Session, Cfg: cs.cfg, Opt: c.opt, Pair: m.Pair, SafetyScale: 1}
	sm.Opt.WarmWeights = cs.warm
	sm.cheap = cs.cheap
	sm.GBA = cs.gba
	sm.Problem = sys.prob
	sm.Columns = m.Columns
	sm.Weights = identity(len(m.G.D.Instances))
	if err := sm.solve(ctx); err != nil {
		return nil, err
	}
	cs.warm = sm.Weights
	cf := &CornerFit{
		Spec: cs.spec, Cfg: cs.cfg,
		Weights: sm.Weights, Correction: sm.Correction,
		Stats: sm.Stats, Degraded: sm.Degraded, Partial: sm.Partial,
		Fault: sm.Fault, SafetyScale: sm.SafetyScale,
		Problem: sys.prob, GoldenSlack: sys.golden,
	}
	cf.fillSlacks(m.Columns)
	wcfg := cs.cfg
	wcfg.Weights = sm.Weights
	cf.MGBA = c.sess.Run(wcfg)
	return cf, nil
}

// jointFit stacks the corner-0 system and every extra corner's system
// corner-major into one tall problem over the shared columns, solves it
// once, and adopts the result as the model's own fit. Every corner's
// Eq. (5) guard rows sit in the stacked system, so the forced strict
// enforcement covers all corners with one scale-back/lift pass.
func (c *Calibrator) jointFit(ctx context.Context, m *Model, built []*cornerSystem) error {
	total := m.Problem.A.Rows()
	for _, sys := range built {
		total += sys.prob.A.Rows()
	}
	b := sparse.NewBuilder(len(m.Columns))
	targets := make([]float64, 0, total)
	guards := make([]float64, 0, total)
	stack := func(p *solver.Problem) error {
		for i := 0; i < p.A.Rows(); i++ {
			idx, val := p.A.Row(i)
			if err := b.AddRow(idx, val); err != nil {
				return err
			}
		}
		targets = append(targets, p.B...)
		guards = append(guards, p.Guard...)
		return nil
	}
	if err := stack(m.Problem); err != nil {
		return err
	}
	for _, sys := range built {
		if err := stack(sys.prob); err != nil {
			return err
		}
	}
	a := b.Build()
	a.SetParallelism(engine.Workers(c.cfg.Parallelism))
	jm := &Model{G: m.G, Session: m.Session, Cfg: c.cfg, Opt: m.Opt, Pair: m.Pair, SafetyScale: 1}
	jm.cheap = c.cheap
	jm.GBA = m.GBA
	jm.Columns = m.Columns
	jm.Weights = identity(len(m.G.D.Instances))
	jm.Problem = &solver.Problem{A: a, B: targets, Guard: guards, Penalty: c.opt.Penalty}
	if err := jm.Problem.Validate(); err != nil {
		return err
	}
	if err := jm.solve(ctx); err != nil {
		return err
	}
	m.Correction = jm.Correction
	m.Weights = jm.Weights
	m.Stats = jm.Stats
	m.Degraded = jm.Degraded
	m.Partial = jm.Partial
	m.Fault = jm.Fault
	m.SafetyScale = jm.SafetyScale
	m.Attempts = append(m.Attempts, jm.Attempts...)
	return nil
}

// fillSlacks derives the corner's per-path cheap and fitted slacks from
// its system: the row target is exactly the cheap-minus-golden delay gap,
// so cheap = golden + target, and the fitted model shifts cheap by the
// row's correction dot product.
func (cf *CornerFit) fillSlacks(columns []int) {
	n := len(cf.GoldenSlack)
	cf.CheapSlack = make([]float64, n)
	for i := range cf.CheapSlack {
		cf.CheapSlack[i] = cf.GoldenSlack[i] + cf.Problem.B[i]
	}
	dx := make([]float64, len(columns))
	for k, id := range columns {
		dx[k] = cf.Weights[id] - 1
	}
	ax := cf.Problem.A.MulVec(nil, dx)
	cf.ModelSlack = make([]float64, n)
	for i := range cf.ModelSlack {
		cf.ModelSlack[i] = cf.CheapSlack[i] - ax[i]
	}
}

// degenerateCorners attaches identity per-corner fits when the selection
// corner found nothing to calibrate on: every corner's model is its own
// unweighted cheap analysis.
func (c *Calibrator) degenerateCorners(m *Model) {
	m.Corners = make([]*CornerFit, len(c.corners)+1)
	for i, cs := range c.corners {
		// The fit owns its analysis outright — no aliasing into the
		// calibrator's cached baseline, which callers may Release.
		if cs.gba != nil {
			cs.gba.Release()
			cs.gba = nil
		}
		m.Corners[i+1] = &CornerFit{
			Spec: cs.spec, Cfg: cs.cfg,
			Weights: identity(len(m.G.D.Instances)), SafetyScale: 1,
			MGBA: cs.cheap.Run(),
		}
	}
}

// rebuildCornerSystems is the incremental counterpart of
// calibrateCorners: each corner's cheap baseline advances over the dirty
// cone, only the re-enumerated slots' paths are re-retimed under the
// corner's golden view (clean slots' cached retimings are provably still
// exact — a dirty instance's fanout cone covers every endpoint whose
// paths could contain it), and the corner's system is rebuilt from the
// cached groups. The enumeration itself was already shared with corner 0.
func (c *Calibrator) rebuildCornerSystems(ctx context.Context, m *Model, slots, dirty []int) ([]*cornerSystem, error) {
	colOf := make(map[int]int, len(c.cols))
	for k, id := range c.cols {
		colOf[id] = k
	}
	built := make([]*cornerSystem, len(c.corners))
	for i, cs := range c.corners {
		if cs.gba == nil || cs.tgroups == nil {
			return nil, errCornerCold
		}
		cs.gba.Update(dirty)
		if err := cs.golden.Update(dirty); err != nil {
			return nil, errCornerCold
		}
		timer, err := cs.golden.Timer(cs.gba)
		if err != nil {
			return nil, err
		}
		retimed := 0
		for _, s := range slots {
			g := c.groups[s]
			tg := make([]*pba.Timing, len(g))
			for j, p := range g {
				if retimed%256 == 0 && cancelled(ctx) {
					return nil, errCornersCancelled
				}
				tg[j] = timer.Retime(p)
				retimed++
			}
			cs.tgroups[s] = tg
		}
		total := 0
		for _, g := range c.groups {
			total += len(g)
		}
		b := sparse.NewBuilder(len(c.cols))
		targets := make([]float64, 0, total)
		guards := make([]float64, 0, total)
		golden := make([]float64, 0, total)
		timings := make([]*pba.Timing, 0, total)
		for s, g := range c.groups {
			for j, p := range g {
				tm := cs.tgroups[s][j]
				idx, val, target, guard := cs.cheap.Row(cs.gba, m.G, c.opt.Epsilon, colOf, p, tm)
				if err := b.AddRow(idx, val); err != nil {
					return nil, err
				}
				targets = append(targets, target)
				guards = append(guards, guard)
				golden = append(golden, tm.Slack)
				timings = append(timings, tm)
			}
		}
		a := b.Build()
		a.SetParallelism(engine.Workers(c.cfg.Parallelism))
		prob := &solver.Problem{A: a, B: targets, Guard: guards, Penalty: c.opt.Penalty}
		if err := prob.Validate(); err != nil {
			return nil, err
		}
		built[i] = &cornerSystem{prob: prob, golden: golden, timings: timings}
		cs.flat = timings
	}
	return built, nil
}

// mergeWorst attaches the selection corner's own fit as Corners[0] and
// builds the merged worst-corner slack view: per endpoint, the minimum
// mGBA slack over every corner. A transform is only safe when it
// regresses no corner — this is the vector the closure flow schedules
// and accepts against.
func (c *Calibrator) mergeWorst(m *Model) {
	if len(m.Corners) == 0 {
		return
	}
	cf0 := &CornerFit{
		Spec: c.opt.Corners[0], Cfg: c.cfg,
		Weights: m.Weights, Correction: m.Correction,
		Stats: m.Stats, Degraded: m.Degraded, Partial: m.Partial,
		Fault: m.Fault, SafetyScale: m.SafetyScale,
		Problem: m.Problem, MGBA: m.MGBA,
	}
	if m.Problem != nil {
		cf0.GoldenSlack, _ = m.PathSlacks("golden")
		cf0.CheapSlack, _ = m.PathSlacks("cheap")
		cf0.ModelSlack, _ = m.PathSlacks("mgba")
	}
	m.Corners[0] = cf0
	worst := append([]float64(nil), m.MGBA.Slack...)
	for _, cf := range m.Corners[1:] {
		for i, s := range cf.MGBA.Slack {
			if s < worst[i] {
				worst[i] = s
			}
		}
	}
	m.WorstSlack = worst
	m.WorstWNS, m.WorstTNS = 0, 0
	for _, s := range worst {
		if s < 0 {
			m.WorstTNS += s
			if s < m.WorstWNS {
				m.WorstWNS = s
			}
		}
	}
}

// fillCornerCache regroups each corner's flat cold retimings by the
// corner-0 cache slots, arming the incremental multi-corner path.
func (c *Calibrator) fillCornerCache() {
	for _, cs := range c.corners {
		if cs.flat == nil || len(cs.flat) != c.cacheTotal() {
			cs.tgroups = nil
			continue
		}
		cs.tgroups = make([][]*pba.Timing, len(c.groups))
		off := 0
		for s, g := range c.groups {
			n := len(g)
			cs.tgroups[s] = cs.flat[off : off+n : off+n]
			off += n
		}
	}
}

// cacheTotal is the number of cached selection paths across all slots.
func (c *Calibrator) cacheTotal() int {
	total := 0
	for _, g := range c.groups {
		total += len(g)
	}
	return total
}
