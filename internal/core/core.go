// Package core implements the paper's contribution — the modified
// graph-based analysis (mGBA) slack model of §3.1 and the calibration
// flow of §3.4 — generalized into a cross-stage slack-correction engine:
// a cheap timing view is fitted against a golden one through a pluggable
// (CheapView, GoldenProvider) pair, so the same machinery that corrects
// GBA against PBA retiming (the paper's instance, and the default pair)
// also corrects a pre-route analysis against a routed twin of the design
// (the "preroute" pair).
//
// Calibration pipeline (the right-hand side of the paper's Fig. 5):
//
//	cheap analyze -> per-endpoint top-k' violated path selection (§3.2)
//	-> golden retiming of the selected paths (fit targets)
//	-> assemble the sparse system of Eq. (9) in correction space
//	-> solve with GD / SCG / SCG+RS (§3.3) -> per-gate weights w = 1 + dx
//	-> re-run the cheap analysis with weighted delays.
//
// The fitted path slack never exceeds the golden slack by more than the
// epsilon tolerance of Eq. (5), enforced through the quadratic penalty of
// Eq. (6).
//
// The pipeline lives in one file per stage: viewpair.go (the pair
// interfaces and registry), assembly.go (the Eq. (9) system), fit.go
// (the solve and its degradation ladder), signoff.go (slack evaluation
// and the paper's accuracy metrics), calibrator.go (the persistent
// incremental session) and preroute.go (the cross-stage pair).
package core

import (
	"context"
	"fmt"

	"mgba/internal/engine"
	"mgba/internal/graph"
	"mgba/internal/obs"
	"mgba/internal/pathsel"
	"mgba/internal/pba"
	"mgba/internal/solver"
	"mgba/internal/sta"
)

// Method selects the optimization solver for the calibration fit.
type Method int

// The solver methods compared in Table 4, plus the exact reference.
const (
	MethodGD    Method = iota // gradient descent, no row selection
	MethodSCG                 // Algorithm 2, no row selection
	MethodSCGRS               // Algorithm 1 + Algorithm 2 (the paper's choice)
	MethodFull                // active-set CGNR reference (tiny cases only)
)

func (m Method) String() string {
	switch m {
	case MethodGD:
		return "GD+w/oRS"
	case MethodSCG:
		return "SCG+w/oRS"
	case MethodSCGRS:
		return "SCG+RS"
	case MethodFull:
		return "full"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options parameterizes a calibration. DefaultOptions matches the paper's
// settings (k' = 20, epsilon-guarded constraints, SCG+RS solver).
type Options struct {
	K              int     // k': worst paths kept per endpoint (20)
	MaxPaths       int     // m' cap across all endpoints; <=0 means no cap
	CapPerEndpoint int     // safety cap for violated-path enumeration
	Epsilon        float64 // eps of Eq. (5): relative optimism tolerance
	Penalty        float64 // w of Eq. (6)
	Method         Method
	Solver         solver.Options
	Seed           uint64

	// ViewPair names the registered (cheap, golden) view pair the
	// calibration corrects between; "" selects DefaultViewPair, the
	// paper's GBA<->PBA pairing. The "preroute" pair corrects a pre-route
	// analysis against a deterministic routed twin of the design, seeded
	// by Seed.
	ViewPair string

	// MinWeight/MaxWeight clamp the fitted weights; a weight outside this
	// band would mean the fit wandered into physically meaningless
	// territory (negative or wildly inflated delays).
	MinWeight, MaxWeight float64

	// WarmWeights, when set, seeds the solver with a previous calibration's
	// per-instance weights (indexed by instance ID). The closure flow uses
	// it to make mid-flow recalibrations cheap: the netlist changed only
	// incrementally, so the old weights are near-optimal already.
	WarmWeights []float64

	// StreamShard, when positive, makes cold calibration stream the path
	// population in endpoint shards of this size instead of materializing
	// it: each shard is enumerated, retimed and appended to the Eq. (9)
	// system, then its pointer-form paths become garbage. Peak memory is
	// one shard plus the (required) assembled system; the fitted weights
	// are bit-identical to the materialized path. The kept population goes
	// into Model.Bank (slab form) instead of Model.Selection, and the
	// incremental cache is not filled. Streaming cannot reproduce the
	// MaxPaths round-robin truncation, so exceeding MaxPaths is an error.
	StreamShard int

	// Corners is the multi-corner (MCMM) corner set. Empty or length 1
	// runs the single-corner pipeline (a one-element set applies that
	// corner's derates and uncertainty to the analysis config and is
	// otherwise bit-identical to the plain calibrator). With N >= 2
	// corners, Corners[0] is the selection corner: its enumeration feeds
	// every corner's Eq. (9) system, StrictSafety is forced on (the
	// never-optimistic guard must hold per corner by construction), and
	// the model grows per-corner fits plus a merged worst-corner slack
	// view.
	Corners []CornerSpec

	// JointFit solves the N per-corner systems as one stacked fit sharing
	// the sparsity pattern — a single weight vector that every corner's
	// guard constrains — instead of N independent per-corner fits. Only
	// meaningful with >= 2 corners.
	JointFit bool

	// StrictSafety enforces Eq. (5) exactly on the training selection by
	// scaling the fitted correction back until no selected path is
	// optimistic beyond the epsilon guard. The paper's soft penalty
	// tolerates a small optimistic tail in exchange for fit quality, so
	// this is off by default; degraded and cancelled (partial) fits are
	// always scaled back regardless, because a fit of unknown quality must
	// never be allowed to go optimistic.
	StrictSafety bool

	// NoFallback disables the degradation ladder: a numerically unhealthy
	// solve returns an error instead of retrying with a safer method.
	// Exists for experiments that measure a single solver in isolation.
	NoFallback bool
}

// DefaultOptions returns the paper's calibration parameters.
func DefaultOptions() Options {
	return Options{
		K:              20,
		MaxPaths:       5_000_000,
		CapPerEndpoint: 2000,
		Epsilon:        0.02,
		Penalty:        50,
		Method:         MethodSCGRS,
		Solver:         solver.DefaultOptions(),
		Seed:           1,
		MinWeight:      0.1,
		MaxWeight:      2.0,
	}
}

// Model is a fitted mGBA model for one design state.
type Model struct {
	G       *graph.Graph
	Session *engine.Session // timing session shared by the cheap and mGBA runs
	Cfg     sta.Config      // the cheap config calibrated against (Weights == nil)
	Opt     Options
	Pair    string // name of the view pair the model was fitted on

	GBA       *sta.Result        // baseline cheap analysis
	Selection *pathsel.Selection // calibration paths (empty when streamed)
	Timings   []*pba.Timing      // golden retiming per selected path

	// Bank holds the calibration paths in slab form when the model was
	// fitted through Options.StreamShard; Selection.Paths is empty then.
	// GoldenSlack is the golden slack per bank path (the streamed
	// counterpart of Timings[i].Slack).
	Bank        *pathsel.Bank
	GoldenSlack []float64

	Problem    *solver.Problem // Eq. (9) system in correction space
	Columns    []int           // column -> instance ID
	Correction []float64       // solved dx per column
	Weights    []float64       // per instance ID: 1 + dx (1 off-path)
	Stats      solver.Stats

	MGBA *sta.Result // re-analysis with the fitted weights

	// Corners holds the per-corner fits of a multi-corner calibration
	// (Corners[0] mirrors the model's own selection-corner fit); nil in
	// single-corner mode. WorstSlack is the merged worst-corner mGBA
	// slack per endpoint — the view the closure flow drives transforms
	// from — with WorstWNS/WorstTNS its negative-slack reduction.
	Corners            []*CornerFit
	WorstSlack         []float64
	WorstWNS, WorstTNS float64

	// cheap is the view the model's rows were decomposed by; assemble and
	// the calibrator's row patching dispatch through it.
	cheap CheapView

	// Robustness record (see DESIGN.md §"Failure model & degradation
	// ladder").

	// Degraded is true when the accepted fit came from a safer solver
	// than requested, or from the identity fallback.
	Degraded bool
	// Partial is true when the fit was cut short by context cancellation
	// and the solver's best iterate was accepted.
	Partial bool
	// Fault describes why calibration fell back to identity weights; ""
	// when a fit was accepted.
	Fault string
	// SafetyScale is the factor the Eq. (5) scale-back applied to the
	// correction: 1 means the raw fit was already safe (or strict safety
	// was not required), 0 means identity weights.
	SafetyScale float64
	// Attempts records every solver run of the degradation ladder, in
	// order, including rejected ones.
	Attempts []Attempt
}

// Attempt is one rung of the degradation ladder: which solver ran, its
// stats, and — when it was rejected — why.
type Attempt struct {
	Method   Method
	Stats    solver.Stats
	Rejected string // "" when the attempt was accepted
}

// Calibrate runs the full mGBA calibration pipeline on a design's timing
// graph under the given cheap configuration, selecting calibration paths
// with the per-endpoint top-k' scheme of §3.2. It builds a throwaway
// engine.Session; callers that recalibrate the same design repeatedly
// (the closure loop) should use CalibrateWithSession instead.
//
// Cancelling ctx stops the pipeline at the next path or solver iteration
// and returns a valid *partial* model: at worst identity weights (mGBA ==
// the cheap baseline), at best the solver's last safe iterate, never an
// error. Errors are reserved for invalid inputs.
func Calibrate(ctx context.Context, g *graph.Graph, cfg sta.Config, opt Options) (*Model, error) {
	return calibrate(ctx, nil, g, cfg, opt, nil)
}

// CalibrateWithSession runs the calibration pipeline on an existing timing
// session, so the per-design immutable state (depths, boxes, clock index,
// CRPR credit cache) and the per-run scratch buffers are reused instead of
// recomputed — the difference between a per-iteration and a per-design
// cost inside the closure loop.
func CalibrateWithSession(ctx context.Context, s *engine.Session, cfg sta.Config, opt Options) (*Model, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil session")
	}
	return calibrate(ctx, s, s.G, cfg, opt, nil)
}

// CalibrateOnSelection runs the same pipeline against an explicit path
// selection instead of the built-in per-endpoint scheme; the §3.2 study
// uses it to compare selection schemes under identical fitting.
func CalibrateOnSelection(ctx context.Context, g *graph.Graph, cfg sta.Config, opt Options, sel *pathsel.Selection) (*Model, error) {
	if sel == nil {
		return nil, fmt.Errorf("core: nil selection")
	}
	return calibrate(ctx, nil, g, cfg, opt, sel)
}

func calibrate(ctx context.Context, s *engine.Session, g *graph.Graph, cfg sta.Config, opt Options, sel *pathsel.Selection) (*Model, error) {
	if s == nil {
		s = engine.NewSession(g)
	}
	// A throwaway Calibrator runs the identical cold pipeline; one-shot
	// callers never exercise its cache, so the weighted-baseline clone is
	// skipped rather than leaked.
	c, err := newBoundCalibrator(s, cfg, opt, true)
	if err != nil {
		return nil, err
	}
	return c.cold(ctx, sel)
}

// validateOptions rejects configurations the pipeline cannot run on.
func validateOptions(cfg sta.Config, opt Options) error {
	if cfg.Weights != nil {
		return fmt.Errorf("core: calibration config must not carry weights")
	}
	if opt.K < 1 {
		return fmt.Errorf("core: K must be >= 1")
	}
	if opt.Epsilon < 0 {
		return fmt.Errorf("core: negative epsilon")
	}
	if opt.MinWeight <= 0 || opt.MaxWeight < opt.MinWeight {
		return fmt.Errorf("core: bad weight clamp [%v,%v]", opt.MinWeight, opt.MaxWeight)
	}
	if _, err := LookupViewPair(opt.ViewPair); err != nil {
		return err
	}
	if err := ValidateCorners(opt.Corners); err != nil {
		return err
	}
	return nil
}

// abandon turns a half-built model into the degenerate identity model:
// unit weights, no selection, mGBA == the cheap baseline. The result is
// always valid, and pessimism-safe whenever the cheap view is
// conservative (the default pair always is: GBA never under-estimates a
// path delay that PBA would increase).
func (m *Model) abandon(why string) *Model {
	obsCalibAbandoned.Inc()
	obs.Event("calibration_abandoned", "why", why)
	m.Selection = &pathsel.Selection{}
	m.Timings = nil
	m.Bank = nil
	m.GoldenSlack = nil
	m.Problem = nil
	m.Columns = nil
	m.Correction = nil
	m.Weights = identity(len(m.G.D.Instances))
	m.MGBA = m.GBA
	m.Corners = nil
	m.WorstSlack = nil
	m.WorstWNS, m.WorstTNS = 0, 0
	m.Partial = true
	m.Degraded = true
	m.Fault = why
	m.SafetyScale = 0
	return m
}

// cancelled reports whether ctx is done; a nil ctx never cancels.
func cancelled(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

func identity(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}
