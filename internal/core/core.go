// Package core implements the paper's contribution: the modified
// graph-based analysis (mGBA) slack model of §3.1 and the calibration flow
// of §3.4 that fits a per-gate weighting factor vector so GBA path slacks
// match golden PBA slacks on the selected critical paths.
//
// Calibration pipeline (the right-hand side of the paper's Fig. 5):
//
//	GBA analyze -> per-endpoint top-k' violated path selection (§3.2)
//	-> PBA retiming of the selected paths (golden targets)
//	-> assemble the sparse system of Eq. (9) in correction space
//	-> solve with GD / SCG / SCG+RS (§3.3) -> per-gate weights w = 1 + dx
//	-> re-run GBA with weighted delays (the updated timing graph).
//
// The fitted path slack never exceeds the PBA slack by more than the
// epsilon tolerance of Eq. (5), enforced through the quadratic penalty of
// Eq. (6).
package core

import (
	"context"
	"fmt"
	"math"

	"mgba/internal/engine"
	"mgba/internal/graph"
	"mgba/internal/num"
	"mgba/internal/obs"
	"mgba/internal/pathsel"
	"mgba/internal/pba"
	"mgba/internal/rng"
	"mgba/internal/solver"
	"mgba/internal/sparse"
	"mgba/internal/sta"
)

// Method selects the optimization solver for the calibration fit.
type Method int

// The solver methods compared in Table 4, plus the exact reference.
const (
	MethodGD    Method = iota // gradient descent, no row selection
	MethodSCG                 // Algorithm 2, no row selection
	MethodSCGRS               // Algorithm 1 + Algorithm 2 (the paper's choice)
	MethodFull                // active-set CGNR reference (tiny cases only)
)

func (m Method) String() string {
	switch m {
	case MethodGD:
		return "GD+w/oRS"
	case MethodSCG:
		return "SCG+w/oRS"
	case MethodSCGRS:
		return "SCG+RS"
	case MethodFull:
		return "full"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options parameterizes a calibration. DefaultOptions matches the paper's
// settings (k' = 20, epsilon-guarded constraints, SCG+RS solver).
type Options struct {
	K              int     // k': worst paths kept per endpoint (20)
	MaxPaths       int     // m' cap across all endpoints; <=0 means no cap
	CapPerEndpoint int     // safety cap for violated-path enumeration
	Epsilon        float64 // eps of Eq. (5): relative optimism tolerance
	Penalty        float64 // w of Eq. (6)
	Method         Method
	Solver         solver.Options
	Seed           uint64

	// MinWeight/MaxWeight clamp the fitted weights; a weight outside this
	// band would mean the fit wandered into physically meaningless
	// territory (negative or wildly inflated delays).
	MinWeight, MaxWeight float64

	// WarmWeights, when set, seeds the solver with a previous calibration's
	// per-instance weights (indexed by instance ID). The closure flow uses
	// it to make mid-flow recalibrations cheap: the netlist changed only
	// incrementally, so the old weights are near-optimal already.
	WarmWeights []float64

	// StrictSafety enforces Eq. (5) exactly on the training selection by
	// scaling the fitted correction back until no selected path is
	// optimistic beyond the epsilon guard. The paper's soft penalty
	// tolerates a small optimistic tail in exchange for fit quality, so
	// this is off by default; degraded and cancelled (partial) fits are
	// always scaled back regardless, because a fit of unknown quality must
	// never be allowed to go optimistic.
	StrictSafety bool

	// NoFallback disables the degradation ladder: a numerically unhealthy
	// solve returns an error instead of retrying with a safer method.
	// Exists for experiments that measure a single solver in isolation.
	NoFallback bool
}

// DefaultOptions returns the paper's calibration parameters.
func DefaultOptions() Options {
	return Options{
		K:              20,
		MaxPaths:       5_000_000,
		CapPerEndpoint: 2000,
		Epsilon:        0.02,
		Penalty:        50,
		Method:         MethodSCGRS,
		Solver:         solver.DefaultOptions(),
		Seed:           1,
		MinWeight:      0.1,
		MaxWeight:      2.0,
	}
}

// Model is a fitted mGBA model for one design state.
type Model struct {
	G       *graph.Graph
	Session *engine.Session // timing session shared by the GBA and mGBA runs
	Cfg     sta.Config      // the GBA config calibrated against (Weights == nil)
	Opt     Options

	GBA       *sta.Result        // baseline GBA analysis
	Selection *pathsel.Selection // calibration paths
	Timings   []*pba.Timing      // golden PBA retiming per selected path

	Problem    *solver.Problem // Eq. (9) system in correction space
	Columns    []int           // column -> instance ID
	Correction []float64       // solved dx per column
	Weights    []float64       // per instance ID: 1 + dx (1 off-path)
	Stats      solver.Stats

	MGBA *sta.Result // re-analysis with the fitted weights

	// Robustness record (see DESIGN.md §"Failure model & degradation
	// ladder").

	// Degraded is true when the accepted fit came from a safer solver
	// than requested, or from the identity fallback.
	Degraded bool
	// Partial is true when the fit was cut short by context cancellation
	// and the solver's best iterate was accepted.
	Partial bool
	// Fault describes why calibration fell back to identity weights; ""
	// when a fit was accepted.
	Fault string
	// SafetyScale is the factor the Eq. (5) scale-back applied to the
	// correction: 1 means the raw fit was already safe (or strict safety
	// was not required), 0 means identity weights.
	SafetyScale float64
	// Attempts records every solver run of the degradation ladder, in
	// order, including rejected ones.
	Attempts []Attempt
}

// Attempt is one rung of the degradation ladder: which solver ran, its
// stats, and — when it was rejected — why.
type Attempt struct {
	Method   Method
	Stats    solver.Stats
	Rejected string // "" when the attempt was accepted
}

// Calibrate runs the full mGBA calibration pipeline on a design's timing
// graph under the given GBA configuration, selecting calibration paths
// with the per-endpoint top-k' scheme of §3.2. It builds a throwaway
// engine.Session; callers that recalibrate the same design repeatedly
// (the closure loop) should use CalibrateWithSession instead.
//
// Cancelling ctx stops the pipeline at the next path or solver iteration
// and returns a valid *partial* model: at worst identity weights (mGBA ==
// GBA), at best the solver's last safe iterate, never an error. Errors
// are reserved for invalid inputs.
func Calibrate(ctx context.Context, g *graph.Graph, cfg sta.Config, opt Options) (*Model, error) {
	return calibrate(ctx, nil, g, cfg, opt, nil)
}

// CalibrateWithSession runs the calibration pipeline on an existing timing
// session, so the per-design immutable state (depths, boxes, clock index,
// CRPR credit cache) and the per-run scratch buffers are reused instead of
// recomputed — the difference between a per-iteration and a per-design
// cost inside the closure loop.
func CalibrateWithSession(ctx context.Context, s *engine.Session, cfg sta.Config, opt Options) (*Model, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil session")
	}
	return calibrate(ctx, s, s.G, cfg, opt, nil)
}

// CalibrateOnSelection runs the same pipeline against an explicit path
// selection instead of the built-in per-endpoint scheme; the §3.2 study
// uses it to compare selection schemes under identical fitting.
func CalibrateOnSelection(ctx context.Context, g *graph.Graph, cfg sta.Config, opt Options, sel *pathsel.Selection) (*Model, error) {
	if sel == nil {
		return nil, fmt.Errorf("core: nil selection")
	}
	return calibrate(ctx, nil, g, cfg, opt, sel)
}

func calibrate(ctx context.Context, s *engine.Session, g *graph.Graph, cfg sta.Config, opt Options, sel *pathsel.Selection) (*Model, error) {
	if err := validateOptions(cfg, opt); err != nil {
		return nil, err
	}
	if s == nil {
		s = engine.NewSession(g)
	}
	// A throwaway Calibrator runs the identical cold pipeline; one-shot
	// callers never exercise its cache, so the weighted-baseline clone is
	// skipped rather than leaked.
	c := &Calibrator{sess: s, cfg: cfg, opt: opt, warm: opt.WarmWeights, oneShot: true}
	return c.cold(ctx, sel)
}

// validateOptions rejects configurations the pipeline cannot run on.
func validateOptions(cfg sta.Config, opt Options) error {
	if cfg.Weights != nil {
		return fmt.Errorf("core: calibration config must not carry weights")
	}
	if opt.K < 1 {
		return fmt.Errorf("core: K must be >= 1")
	}
	if opt.Epsilon < 0 {
		return fmt.Errorf("core: negative epsilon")
	}
	if opt.MinWeight <= 0 || opt.MaxWeight < opt.MinWeight {
		return fmt.Errorf("core: bad weight clamp [%v,%v]", opt.MinWeight, opt.MaxWeight)
	}
	return nil
}

// abandon turns a half-built model into the degenerate identity model:
// unit weights, no selection, mGBA == GBA. The result is always valid and
// always pessimism-safe (GBA never under-estimates a path delay that PBA
// would increase).
func (m *Model) abandon(why string) *Model {
	obsCalibAbandoned.Inc()
	obs.Event("calibration_abandoned", "why", why)
	m.Selection = &pathsel.Selection{}
	m.Timings = nil
	m.Problem = nil
	m.Columns = nil
	m.Correction = nil
	m.Weights = identity(len(m.G.D.Instances))
	m.MGBA = m.GBA
	m.Partial = true
	m.Degraded = true
	m.Fault = why
	m.SafetyScale = 0
	return m
}

// cancelled reports whether ctx is done; a nil ctx never cancels.
func cancelled(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

func identity(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// assemble builds the sparse system of Eq. (9) in correction space: row p
// has entries a_pj = CellDelay_j (the GBA derated delay of every cell on
// the path), target b_p = PBA cell sum - CRPR credit - GBA cell sum, and
// guard eps*|s_pba| (Eq. 5's tolerance).
func (m *Model) assemble() error {
	cols := map[int]int{}
	for _, p := range m.Selection.Paths {
		for _, c := range p.Cells {
			if _, ok := cols[c]; !ok {
				cols[c] = len(m.Columns)
				m.Columns = append(m.Columns, c)
			}
		}
	}
	b := sparse.NewBuilder(len(m.Columns))
	targets := make([]float64, len(m.Selection.Paths))
	guards := make([]float64, len(m.Selection.Paths))
	for i, p := range m.Selection.Paths {
		idx, val, target, guard := pathRow(m.GBA, m.G, m.Opt.Epsilon, cols, p, m.Timings[i])
		if err := b.AddRow(idx, val); err != nil {
			return err
		}
		targets[i] = target
		guards[i] = guard
	}
	a := b.Build()
	// One Parallelism knob drives every stage: the same setting that sizes
	// level-parallel propagation and PBA enumeration configures the solver
	// kernels (whose results are bitwise identical at every worker count).
	a.SetParallelism(engine.Workers(m.Cfg.Parallelism))
	m.Problem = &solver.Problem{
		A:       a,
		B:       targets,
		Guard:   guards,
		Penalty: m.Opt.Penalty,
	}
	return m.Problem.Validate()
}

// pathRow builds one row of the Eq. (9) system: entries a_pj =
// CellDelay_j (the GBA derated delay of every cell on the path), target
// b_p fitting the *delay correction* — the mGBA path delay should drop by
// exactly the pessimism gap: the GBA cell sum minus the PBA cell sum,
// minus whatever CRPR credit PBA grants beyond the conservative credit
// GBA already applied at this endpoint — and guard eps*|s_pba| (Eq. 5's
// tolerance). Shared by the cold assemble and the Calibrator's row
// patching, so both construct bit-identical rows.
func pathRow(gba *sta.Result, g *graph.Graph, epsilon float64, cols map[int]int, p *pba.Path, tm *pba.Timing) (idx []int, val []float64, target, guard float64) {
	idx = make([]int, len(p.Cells))
	val = make([]float64, len(p.Cells))
	var gbaSum float64
	for k, c := range p.Cells {
		idx[k] = cols[c]
		val[k] = gba.CellDelay[c]
		gbaSum += val[k]
	}
	crprExtra := tm.CRPR - gba.GBACRPR[g.FFIndex(p.Capture)]
	target = (tm.CellSum - crprExtra) - gbaSum
	guard = epsilon * math.Abs(tm.Slack)
	return idx, val, target, guard
}

// fallbackChain returns the degradation ladder for a requested method:
// each subsequent entry trades accuracy or speed for numerical safety.
// GD is the terminal rung — full gradients with a monotone Armijo line
// search cannot diverge.
func fallbackChain(m Method) []Method {
	switch m {
	case MethodSCGRS:
		return []Method{MethodSCGRS, MethodSCG, MethodGD}
	case MethodSCG:
		return []Method{MethodSCG, MethodGD}
	case MethodFull:
		return []Method{MethodFull, MethodGD}
	default:
		return []Method{MethodGD}
	}
}

// runSolver executes one rung of the ladder. Each rung gets a fresh rng
// seeded identically, so a retry is deterministic and independent of how
// many iterations the rejected attempt consumed.
func (m *Model) runSolver(ctx context.Context, meth Method) ([]float64, solver.Stats, error) {
	r := rng.New(m.Opt.Seed)
	switch meth {
	case MethodGD:
		return solver.GD(ctx, m.Problem, m.Opt.Solver)
	case MethodSCG:
		return solver.SCG(ctx, m.Problem, m.Opt.Solver, r)
	case MethodSCGRS:
		return solver.SCGRS(ctx, m.Problem, m.Opt.Solver, r)
	case MethodFull:
		return solver.FullSolve(ctx, m.Problem, 12, 500, 1e-10)
	default:
		return nil, solver.Stats{}, fmt.Errorf("core: unknown method %v", meth)
	}
}

// healthCheck decides whether a solver result is trustworthy enough to
// apply to the timing graph. identityF is the objective at x = 0 (unit
// weights): any accepted fit must do at least as well as doing nothing.
func (m *Model) healthCheck(x []float64, st solver.Stats, identityF float64) string {
	if !num.AllFinite(x) {
		return "non-finite solution"
	}
	if st.Reason == solver.StopDiverged {
		return "diverged"
	}
	if st.NumericalEvents > 0 {
		return fmt.Sprintf("%d numerical events", st.NumericalEvents)
	}
	if st.Reverts > 0 && !st.Improved {
		return "safeguard reverts without net improvement"
	}
	// Judge the fit as applied: clamped weights, not the raw iterate.
	f := m.Problem.Objective(m.clampedDx(x))
	if math.IsNaN(f) || f > identityF*(1+1e-9)+1e-12 {
		return fmt.Sprintf("objective %.6g worse than identity %.6g", f, identityF)
	}
	return ""
}

// clampedDx maps a raw correction through the weight clamp and back.
func (m *Model) clampedDx(x []float64) []float64 {
	dx := make([]float64, len(x))
	for k := range x {
		w := 1 + x[k]
		if w < m.Opt.MinWeight {
			w = m.Opt.MinWeight
		}
		if w > m.Opt.MaxWeight {
			w = m.Opt.MaxWeight
		}
		dx[k] = w - 1
	}
	return dx
}

// solve runs the degradation ladder: try the requested method, reject
// numerically unhealthy results, retry with the next-safer method, and on
// total failure keep identity weights (x = 0) — never an error, because
// identity weights reproduce plain GBA, which is always pessimism-safe.
func (m *Model) solve(ctx context.Context) error {
	if m.Opt.Method < MethodGD || m.Opt.Method > MethodFull {
		return fmt.Errorf("core: unknown method %v", m.Opt.Method)
	}
	if m.Opt.WarmWeights != nil {
		obsWarmStartHits.Inc()
		x0 := make([]float64, len(m.Columns))
		for k, c := range m.Columns {
			if c < len(m.Opt.WarmWeights) && m.Opt.WarmWeights[c] > 0 {
				x0[k] = m.Opt.WarmWeights[c] - 1
			}
		}
		m.Opt.Solver.X0 = x0
	}
	identityF := m.Problem.ObjectiveAtZero()
	for rung, meth := range fallbackChain(m.Opt.Method) {
		x, st, err := m.runSolver(ctx, meth)
		att := Attempt{Method: meth, Stats: st}
		if err == nil {
			att.Rejected = m.healthCheck(x, st, identityF)
		} else {
			if m.Opt.NoFallback {
				return err
			}
			att.Rejected = err.Error()
		}
		m.Attempts = append(m.Attempts, att)
		obsLadderAttempts.Inc()
		if att.Rejected != "" {
			obsLadderRejected.Inc()
			obs.Event("ladder_reject", "method", meth.String(), "reason", att.Rejected)
		}
		if err == nil && att.Rejected == "" {
			if rung > 0 {
				obsCalibDegraded.Inc()
			}
			m.Correction = x
			m.Stats = st
			m.Degraded = rung > 0
			m.Partial = st.Reason == solver.StopCancelled
			m.applyWeights(m.Correction)
			if m.Opt.StrictSafety || m.Degraded || m.Partial {
				m.enforceSafety()
			}
			return nil
		}
		if m.Opt.NoFallback {
			return fmt.Errorf("core: %v solve rejected: %s", meth, att.Rejected)
		}
		if err == nil && st.Reason == solver.StopCancelled {
			// Cancelled *and* unhealthy: no budget left to retry safer
			// methods; identity weights are the only safe answer.
			break
		}
	}
	// Total failure: identity weights (mGBA == GBA on every path).
	obsCalibDegraded.Inc()
	m.Correction = make([]float64, len(m.Columns))
	m.Weights = identity(len(m.G.D.Instances))
	m.Stats = solver.Stats{}
	m.Degraded = true
	m.SafetyScale = 0
	m.Fault = "all solver attempts rejected; using identity weights"
	if cancelled(ctx) {
		m.Partial = true
	}
	return nil
}

// applyWeights clamps the correction into the physical weight band and
// scatters it onto the per-instance weight vector.
func (m *Model) applyWeights(x []float64) {
	for k, c := range m.Columns {
		w := 1 + x[k]
		if w < m.Opt.MinWeight {
			w = m.Opt.MinWeight
		}
		if w > m.Opt.MaxWeight {
			w = m.Opt.MaxWeight
		}
		m.Weights[c] = w
	}
}

// enforceSafety projects the fitted correction back inside the Eq. (5)
// feasible region on the training selection. The modelled delay shift of
// row i is (A dx)_i and its floor is B_i - Guard_i (both non-positive:
// GBA is conservative per path, so the target shift is a delay
// *reduction*). Scaling dx by t in [0,1] moves every row's shift
// linearly between 0 (identity, always feasible) and its fitted value,
// so the largest safe t is the minimum over violating rows of
// floor_i / (A dx)_i — one linear pass, no re-solve.
func (m *Model) enforceSafety() {
	dx := m.clampedCorrection()
	ax := m.Problem.A.MulVec(nil, dx)
	t := 1.0
	for i, axi := range ax {
		floor := m.Problem.B[i] - m.Problem.GuardAt(i)
		if axi < floor-1e-12 && axi < 0 {
			if ti := floor / axi; ti < t {
				t = ti
			}
		}
	}
	if t < 0 {
		t = 0
	}
	if t < 1 {
		for k := range dx {
			dx[k] *= t
		}
		m.applyWeights(dx)
	}
	m.SafetyScale = t
}

// PathSlacks returns, for every selected path, the slack under the given
// model: "gba" (unit weights), "mgba" (fitted weights), or "pba" (golden).
func (m *Model) PathSlacks(kind string) ([]float64, error) {
	out := make([]float64, len(m.Selection.Paths))
	switch kind {
	case "pba":
		for i, tm := range m.Timings {
			out[i] = tm.Slack
		}
	case "gba":
		for i, p := range m.Selection.Paths {
			out[i] = p.GBASlack
		}
	case "mgba":
		if m.Problem == nil {
			return nil, fmt.Errorf("core: no fitted problem")
		}
		// s_mgba(p) = s_gba(p) - (A dx)_p: the correction shifts the path
		// delay, and delay shifts map one-to-one onto slack shifts.
		ax := m.Problem.A.MulVec(nil, m.clampedCorrection())
		for i, p := range m.Selection.Paths {
			out[i] = p.GBASlack - ax[i]
		}
	default:
		return nil, fmt.Errorf("core: unknown slack kind %q", kind)
	}
	return out, nil
}

// clampedCorrection returns the correction vector consistent with the
// clamped weights actually applied to the graph.
func (m *Model) clampedCorrection() []float64 {
	dx := make([]float64, len(m.Columns))
	for k, c := range m.Columns {
		dx[k] = m.Weights[c] - 1
	}
	return dx
}

// Metrics bundles the accuracy measures the paper reports.
type Metrics struct {
	Paths     int
	MSE       float64 // Eq. (12): ||s_model - s_pba||^2 / ||s_pba||^2
	Phi       float64 // Eq. (10): ||s_model - s_pba|| / ||s_pba||
	PassRatio float64 // Table 3 criterion: within 5% relative or 5 ps absolute
	Optimism  int     // paths whose model slack exceeds s_pba + eps*|s_pba|
}

// PassTolerances of Table 3: a path passes when its slack error is within
// 5 % relative or 5 ps absolute of golden PBA.
const (
	PassRelTol = 0.05
	PassAbsTol = 5.0
)

// Evaluate computes the accuracy metrics of a model slack vector against
// golden PBA over the selected paths. kind is "gba" or "mgba".
func (m *Model) Evaluate(kind string) (Metrics, error) {
	model, err := m.PathSlacks(kind)
	if err != nil {
		return Metrics{}, err
	}
	golden, err := m.PathSlacks("pba")
	if err != nil {
		return Metrics{}, err
	}
	return Compare(model, golden, m.Opt.Epsilon), nil
}

// Compare computes the paper's accuracy metrics between a model slack
// vector and golden slacks.
func Compare(model, golden []float64, epsilon float64) Metrics {
	if len(model) != len(golden) {
		panic("core: slack vector length mismatch")
	}
	mt := Metrics{Paths: len(model)}
	if len(model) == 0 {
		return mt
	}
	diff := make([]float64, len(model))
	num.Sub(diff, model, golden)
	gn := num.Norm2(golden)
	dn := num.Norm2(diff)
	if gn > 0 {
		mt.Phi = dn / gn
		mt.MSE = (dn * dn) / (gn * gn)
	}
	pass := 0
	for i := range model {
		e := math.Abs(model[i] - golden[i])
		if e <= PassAbsTol || e <= PassRelTol*math.Abs(golden[i]) {
			pass++
		}
		if model[i] > golden[i]+epsilon*math.Abs(golden[i])+1e-9 {
			mt.Optimism++
		}
	}
	mt.PassRatio = float64(pass) / float64(len(model))
	return mt
}

// PathSlackWithWeights evaluates the mGBA slack of an arbitrary path under
// a per-instance weight vector, against the baseline (unit-weight) GBA
// analysis r. Used to judge a fit on paths outside its training selection,
// as the §3.2 study does ("the measurement is always with 8444 violated
// timing paths").
func PathSlackWithWeights(r *sta.Result, an *pba.Analyzer, p *pba.Path, weights []float64) float64 {
	var sum, wires float64
	for _, c := range p.Cells {
		w := 1.0
		if weights != nil {
			w = weights[c]
		}
		sum += r.CellDelay[c] * w
		wires += r.WireDelay[c]
	}
	launchIdx := r.G.FFIndex(p.Launch)
	captureIdx := r.G.FFIndex(p.Capture)
	return an.Budget(captureIdx) + r.GBACRPR[captureIdx] - (r.ClockLate[launchIdx] + sum + wires)
}

// FullCorrection returns the correction of every data instance (launch
// arcs and combinational gates; clock buffers excluded): the x* vector of
// the paper, with exact zeros for gates off every selected path. This is
// the population Fig. 3 bins.
func (m *Model) FullCorrection() []float64 {
	var out []float64
	for _, in := range m.G.D.Instances {
		if m.G.IsClock(in.ID) {
			continue
		}
		out = append(out, m.Weights[in.ID]-1)
	}
	return out
}

// CorrectionHistogram bins the fitted corrections for Fig. 3 (the sparsity
// plot): the fraction of entries inside [-width, width] is its headline.
func (m *Model) CorrectionHistogram(width float64, bins int) *num.Histogram {
	return num.NewHistogram(m.FullCorrection(), -width, width, bins)
}

// SparsityFraction returns the fraction of corrections within [-tol, tol],
// the "95.9% of entries near zero" statistic of Fig. 3.
func (m *Model) SparsityFraction(tol float64) float64 {
	return num.FractionWithin(m.FullCorrection(), -tol, tol)
}
