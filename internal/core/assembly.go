package core

import (
	"math"

	"mgba/internal/engine"
	"mgba/internal/graph"
	"mgba/internal/pba"
	"mgba/internal/solver"
	"mgba/internal/sparse"
	"mgba/internal/sta"
)

// assemble builds the sparse system of Eq. (9) in correction space: row p
// has entries a_pj = CellDelay_j (the cheap derated delay of every cell on
// the path), target b_p = the cheap-vs-golden pessimism gap of the path,
// and guard eps*|s_golden| (Eq. 5's tolerance).
func (m *Model) assemble() error {
	cols := map[int]int{}
	for _, p := range m.Selection.Paths {
		for _, c := range p.Cells {
			if _, ok := cols[c]; !ok {
				cols[c] = len(m.Columns)
				m.Columns = append(m.Columns, c)
			}
		}
	}
	b := sparse.NewBuilder(len(m.Columns))
	targets := make([]float64, len(m.Selection.Paths))
	guards := make([]float64, len(m.Selection.Paths))
	for i, p := range m.Selection.Paths {
		idx, val, target, guard := m.row(cols, p, m.Timings[i])
		if err := b.AddRow(idx, val); err != nil {
			return err
		}
		targets[i] = target
		guards[i] = guard
	}
	a := b.Build()
	// One Parallelism knob drives every stage: the same setting that sizes
	// level-parallel propagation and PBA enumeration configures the solver
	// kernels (whose results are bitwise identical at every worker count).
	a.SetParallelism(engine.Workers(m.Cfg.Parallelism))
	m.Problem = &solver.Problem{
		A:       a,
		B:       targets,
		Guard:   guards,
		Penalty: m.Opt.Penalty,
	}
	return m.Problem.Validate()
}

// row dispatches to the cheap view's decomposition. A Model assembled
// outside a calibrator (none today) falls back to the default rows.
func (m *Model) row(cols map[int]int, p *pba.Path, tm *pba.Timing) ([]int, []float64, float64, float64) {
	if m.cheap != nil {
		return m.cheap.Row(m.GBA, m.G, m.Opt.Epsilon, cols, p, tm)
	}
	return pathRow(m.GBA, m.G, m.Opt.Epsilon, cols, p, tm)
}

// pathRow builds one row of the Eq. (9) system: entries a_pj =
// CellDelay_j (the cheap derated delay of every cell on the path), target
// b_p fitting the *delay correction* — the mGBA path delay should move by
// exactly the pessimism gap: the cheap cell sum minus the golden cell
// sum, minus whatever CRPR credit the golden replay grants beyond the
// conservative credit the cheap analysis already applied at this
// endpoint, plus the golden-vs-cheap wire gap when the pair times the
// path over different parasitics — and guard eps*|s_golden| (Eq. 5's
// tolerance). Shared by the cold assemble and the Calibrator's row
// patching, so both construct bit-identical rows.
func pathRow(gba *sta.Result, g *graph.Graph, epsilon float64, cols map[int]int, p *pba.Path, tm *pba.Timing) (idx []int, val []float64, target, guard float64) {
	idx = make([]int, len(p.Cells))
	val = make([]float64, len(p.Cells))
	var gbaSum, wireSum float64
	for k, c := range p.Cells {
		idx[k] = cols[c]
		val[k] = gba.CellDelay[c]
		gbaSum += val[k]
		wireSum += gba.WireDelay[c]
	}
	crprExtra := tm.CRPR - gba.GBACRPR[g.FFIndex(p.Capture)]
	target = (tm.CellSum - crprExtra) - gbaSum
	// Same-stage pairs replay the path over the very wire-delay array the
	// cheap analysis used — the sums cancel term by term and the gap is an
	// exact 0.0, leaving the historical target bit-for-bit. Cross-stage
	// pairs time the path over different parasitics; the wire gap is part
	// of the pessimism the fitted cell corrections must absorb.
	if wa := tm.WireSum - wireSum; wa != 0 {
		target += wa
	}
	guard = epsilon * math.Abs(tm.Slack)
	return idx, val, target, guard
}
