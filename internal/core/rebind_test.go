package core_test

import (
	"context"
	"testing"

	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/fixtures"
	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/sta"
)

// retimeOne applies the first legal backward register slide in the design
// and returns the structural dirty set the closure flow records for it:
// the moved register, the gate it crossed, and the non-clock drivers of
// their input nets.
func retimeOne(t *testing.T, d *netlist.Design, g *graph.Graph) []int {
	t.Helper()
	for _, ff := range d.Instances {
		if !ff.IsFF() || ff.Dead {
			continue
		}
		if len(ff.Inputs) == 0 {
			continue
		}
		drv := d.Nets[ff.Inputs[0]].Driver
		if drv < 0 {
			continue
		}
		gate := d.Instances[drv]
		if err := d.RetimeBackward(ff, gate); err != nil {
			continue
		}
		seen := make(map[int]bool)
		var dirty []int
		note := func(id int) {
			if !seen[id] {
				seen[id] = true
				dirty = append(dirty, id)
			}
		}
		for _, inst := range []*netlist.Instance{ff, gate} {
			note(inst.ID)
			for _, nid := range inst.Inputs {
				if dr := d.Nets[nid].Driver; dr >= 0 && !g.IsClock(dr) {
					note(dr)
				}
			}
		}
		return dirty
	}
	t.Fatal("no legal backward slide in fixture")
	return nil
}

// TestRebindRecalibrateMatchesCold is the core-level contract behind
// retiming: after a connectivity-changing move, Rebind to the rebuilt
// session plus Recalibrate over the structural dirty set must be
// bit-identical to a cold calibration of the new design state with the
// same warm start.
func TestRebindRecalibrateMatchesCold(t *testing.T) {
	d, err := fixtures.RetimePipeline(3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	sess := engine.NewSession(g)
	ctx := context.Background()
	cfg := sta.DefaultConfig()
	opt := core.DefaultOptions()

	cal, err := core.NewCalibrator(sess, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := cal.Calibrate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m0.Selection.Paths) == 0 {
		t.Fatal("fixture selected no paths")
	}

	dirty := retimeOne(t, d, g)

	// The move changed connectivity: rebuild the timing graph and bind the
	// calibrator to the new session, exactly as the closure flow does. The
	// dirty set grows by every instance whose derate context (AOCV depth or
	// bounding box) the slide shifted.
	g2, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	sess2 := engine.NewSession(g2)
	for i := range d.Instances {
		if sess.Depths.GBA[i] != sess2.Depths.GBA[i] ||
			sess.Boxes.GBADistance[i] != sess2.Boxes.GBADistance[i] {
			dirty = append(dirty, i)
		}
	}
	if err := cal.Rebind(sess2); err != nil {
		t.Fatal(err)
	}

	mInc, err := cal.Recalibrate(ctx, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if st := cal.Stats(); st.Incremental != 1 {
		t.Fatalf("rebind forced a cold recalibration: stats %+v", st)
	}

	coldOpt := opt
	coldOpt.WarmWeights = m0.Weights
	mCold, err := core.CalibrateWithSession(ctx, engine.NewSession(g2), cfg, coldOpt)
	if err != nil {
		t.Fatal(err)
	}

	if !sameFloats(mInc.Weights, mCold.Weights) {
		t.Error("incremental weights differ from cold calibration after rebind")
	}
	if len(mInc.Selection.Paths) != len(mCold.Selection.Paths) {
		t.Fatalf("selection sizes differ: incremental %d vs cold %d",
			len(mInc.Selection.Paths), len(mCold.Selection.Paths))
	}
	for i, p := range mInc.Selection.Paths {
		q := mCold.Selection.Paths[i]
		if p.Launch != q.Launch || p.Capture != q.Capture || p.GBASlack != q.GBASlack {
			t.Fatalf("selected path %d differs: %+v vs %+v", i, p, q)
		}
	}
	if !sameFloats(mInc.MGBA.Slack, mCold.MGBA.Slack) {
		t.Error("mGBA endpoint slacks differ from cold calibration after rebind")
	}
}

// TestRebindShapeMismatchInvalidates: binding a session over a different
// design shape must not patch stale rows — the next calibration is cold.
func TestRebindShapeMismatchInvalidates(t *testing.T) {
	_, _, sess := calDesign(t)
	ctx := context.Background()
	cal, err := core.NewCalibrator(sess, sta.DefaultConfig(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cal.Calibrate(ctx); err != nil {
		t.Fatal(err)
	}

	other, err := fixtures.RetimePipeline(2)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := graph.Build(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := cal.Rebind(engine.NewSession(g2)); err != nil {
		t.Fatal(err)
	}
	if _, err := cal.Recalibrate(ctx, []int{0}); err != nil {
		t.Fatal(err)
	}
	st := cal.Stats()
	if st.Incremental != 0 {
		t.Fatalf("shape mismatch did not force cold recalibration: %+v", st)
	}
}
