package core

import (
	"fmt"
	"strconv"
	"strings"

	"mgba/internal/netlist"
	"mgba/internal/sta"
)

// CornerSpec names one analysis corner of a multi-corner (MCMM)
// calibration. A corner is the base analysis configuration with its own
// AOCV derate tables — the design's tables margin-scaled by DerateScale —
// and its own clock uncertainty. The zero transform (DerateScale 0 or 1,
// Uncertainty 0) reproduces the base corner exactly, which is what pins
// an N=1 corner set bit-identical to a plain single-corner calibration.
//
// The JSON tags are the calibd wire and snapshot format: a session
// created with a corner set keeps it across snapshot/resume.
type CornerSpec struct {
	Name string `json:"name"`
	// DerateScale scales the design's AOCV margins: late factors become
	// 1 + f*(v-1), early factors 1 - f*(1-v). 0 and 1 both mean the
	// design's own tables.
	DerateScale float64 `json:"derate_scale,omitempty"`
	// Uncertainty is the corner's clock uncertainty in ps, subtracted
	// from every setup required time (cheap and golden view alike).
	Uncertainty float64 `json:"uncertainty_ps,omitempty"`
}

func (cs CornerSpec) String() string {
	if cs.Uncertainty != 0 {
		return fmt.Sprintf("%s:%s:%s", cs.Name, trimFloat(cs.effectiveScale()), trimFloat(cs.Uncertainty))
	}
	if s := cs.effectiveScale(); s != 1 {
		return fmt.Sprintf("%s:%s", cs.Name, trimFloat(s))
	}
	return cs.Name
}

// effectiveScale maps the "unset" zero value onto the identity scale.
func (cs CornerSpec) effectiveScale() float64 {
	if cs.DerateScale == 0 {
		return 1
	}
	return cs.DerateScale
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseCorners decodes a -corners flag value: a comma-separated list of
// name[:derate-scale[:uncertainty-ps]] entries, e.g.
//
//	typ,slow:1.15:10,fast:0.85
//
// An empty string yields a nil (single-corner) set.
func ParseCorners(s string) ([]CornerSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []CornerSpec
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		parts := strings.Split(f, ":")
		if len(parts) > 3 {
			return nil, fmt.Errorf("core: bad corner %q (want name[:scale[:uncertainty-ps]])", f)
		}
		spec := CornerSpec{Name: strings.TrimSpace(parts[0])}
		if len(parts) > 1 {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
			if err != nil {
				return nil, fmt.Errorf("core: bad corner derate scale %q: %v", parts[1], err)
			}
			spec.DerateScale = v
		}
		if len(parts) > 2 {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("core: bad corner uncertainty %q: %v", parts[2], err)
			}
			spec.Uncertainty = v
		}
		out = append(out, spec)
	}
	if err := ValidateCorners(out); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatCorners is ParseCorners' inverse; ParseCorners(FormatCorners(s))
// round-trips any valid set.
func FormatCorners(specs []CornerSpec) string {
	parts := make([]string, len(specs))
	for i, cs := range specs {
		parts[i] = cs.String()
	}
	return strings.Join(parts, ",")
}

// CornerNames lists the corner names in set order.
func CornerNames(specs []CornerSpec) []string {
	names := make([]string, len(specs))
	for i, cs := range specs {
		names[i] = cs.Name
	}
	return names
}

// ValidateCorners rejects corner sets the calibrator cannot run on:
// empty or duplicate names, negative derate scales, negative
// uncertainties. A nil/empty set is valid (single-corner calibration).
func ValidateCorners(specs []CornerSpec) error {
	seen := make(map[string]bool, len(specs))
	for i, cs := range specs {
		if strings.TrimSpace(cs.Name) == "" {
			return fmt.Errorf("core: corner %d has no name", i)
		}
		if seen[cs.Name] {
			return fmt.Errorf("core: duplicate corner name %q", cs.Name)
		}
		seen[cs.Name] = true
		if cs.DerateScale < 0 {
			return fmt.Errorf("core: corner %q has negative derate scale %v", cs.Name, cs.DerateScale)
		}
		if cs.Uncertainty < 0 {
			return fmt.Errorf("core: corner %q has negative uncertainty %v", cs.Name, cs.Uncertainty)
		}
	}
	return nil
}

// cornerConfig derives the per-corner analysis configuration from the
// calibration's base config: the corner's scaled derate tables (built
// once here, so the engine's pointer-keyed clock-state cache hits across
// every run of the corner) and its clock uncertainty. The identity spec
// returns the base config unchanged — bit-identical analyses.
func cornerConfig(base sta.Config, d *netlist.Design, spec CornerSpec) (sta.Config, error) {
	cfg := base
	if f := spec.effectiveScale(); f != 1 {
		src := cfg.Derates
		if src == nil {
			src = d.Derates
		}
		scaled, err := src.Scale(f)
		if err != nil {
			return cfg, fmt.Errorf("core: corner %q: %w", spec.Name, err)
		}
		cfg.Derates = scaled
	}
	cfg.Uncertainty += spec.Uncertainty
	return cfg, nil
}
