package core

import (
	"context"
	"errors"
	"fmt"

	"mgba/internal/engine"
	"mgba/internal/obs"
	"mgba/internal/pathsel"
	"mgba/internal/pba"
	"mgba/internal/solver"
	"mgba/internal/sparse"
)

var errStreamCancelled = errors.New("core: stream cancelled")

// coldStream is the cold pipeline with shard-streamed enumeration and row
// assembly: endpoints are enumerated in shards of Options.StreamShard,
// each shard's paths are retimed and turned into Eq. (9) rows on the
// spot, the kept population is appended to a slab bank, and the shard's
// pointer-form paths are dropped. Peak memory is one shard plus the
// assembled system, not the whole pointer population.
//
// Every per-path computation runs in the exact order the materialized
// cold path runs it — endpoints in FF order, paths in enumeration order,
// columns mapped by first occurrence over rows — so the assembled system
// and the fitted weights are bit-identical to a materialized cold
// calibration of the same state at every Parallelism (pinned by the
// equivalence tests). The streamed model carries its paths in Model.Bank;
// the incremental cache is left empty, so a later Recalibrate on this
// calibrator re-runs cold.
func (c *Calibrator) coldStream(ctx context.Context, sp *obs.Span, m *Model) (*Model, error) {
	an := pba.NewAnalyzer(m.GBA)
	timer, err := c.golden.Timer(m.GBA)
	if err != nil {
		return nil, err
	}
	spEnum := sp.Child("enumerate.stream")
	bank := pathsel.NewBank(0)
	b := sparse.NewBuilder(0)
	colOf := map[int]int{}
	var cols []int
	var targets, guards, goldenSlack []float64
	retimed := 0
	streamErr := pathsel.EnumerateStream(an, c.opt.K, c.opt.StreamShard, func(sh *pathsel.Shard) error {
		// Reject a population over MaxPaths before burning golden retimes
		// on a shard that can only end in the same error.
		if c.opt.MaxPaths > 0 {
			shardPaths := 0
			for _, g := range sh.Groups {
				shardPaths += len(g)
			}
			if bank.Total()+shardPaths > c.opt.MaxPaths {
				return fmt.Errorf("core: streamed population exceeds MaxPaths (%d > %d); raise MaxPaths or lower K — streaming cannot reproduce the round-robin truncation", bank.Total()+shardPaths, c.opt.MaxPaths)
			}
		}
		for _, g := range sh.Groups {
			for _, p := range g {
				if retimed%256 == 0 && cancelled(ctx) {
					return errStreamCancelled
				}
				tm := timer.Retime(p)
				retimed++
				for _, cell := range p.Cells {
					if _, ok := colOf[cell]; !ok {
						colOf[cell] = len(cols)
						cols = append(cols, cell)
					}
				}
				b.EnsureCols(len(cols))
				idx, val, target, guard := m.row(colOf, p, tm)
				if err := b.AddRow(idx, val); err != nil {
					return err
				}
				targets = append(targets, target)
				guards = append(guards, guard)
				goldenSlack = append(goldenSlack, tm.Slack)
			}
		}
		return bank.AppendShard(sh)
	})
	spEnum.End()
	if errors.Is(streamErr, errStreamCancelled) {
		return c.finish(m.abandon("cancelled during golden retiming")), nil
	}
	if streamErr != nil {
		return nil, streamErr
	}
	m.Selection = &pathsel.Selection{Scheme: "per-endpoint-top-k-streamed"}
	if bank.Total() == 0 {
		// Nothing violates: mGBA degenerates to the cheap baseline.
		m.MGBA = m.GBA
		if c.multiCorner() {
			c.degenerateCorners(m)
			c.mergeWorst(m)
		}
		return c.finish(m), nil
	}
	m.Bank = bank
	m.GoldenSlack = goldenSlack
	m.Columns = cols
	spAsm := sp.Child("assemble")
	a := b.Build()
	a.SetParallelism(engine.Workers(m.Cfg.Parallelism))
	m.Problem = &solver.Problem{A: a, B: targets, Guard: guards, Penalty: m.Opt.Penalty}
	if err := m.Problem.Validate(); err != nil {
		spAsm.End()
		return nil, err
	}
	spAsm.End()
	spSolve := sp.Child("solve")
	if !(c.multiCorner() && c.opt.JointFit) {
		if err := m.solve(ctx); err != nil {
			spSolve.End()
			return nil, err
		}
	}
	if c.multiCorner() {
		// The extra corners re-retime the banked selection — decoded path
		// by path, never re-materialized — through their own golden views.
		if err := c.calibrateCorners(ctx, m); err != nil {
			spSolve.End()
			if err == errCornersCancelled {
				return c.finish(m.abandon("cancelled during golden retiming")), nil
			}
			return nil, err
		}
	}
	spSolve.End()
	spVal := sp.Child("validate")
	wcfg := c.cfg
	wcfg.Weights = m.Weights
	m.MGBA = c.sess.Run(wcfg)
	spVal.End()
	c.mergeWorst(m)
	return c.finish(m), nil
}
