package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mgba/internal/engine"
	"mgba/internal/graph"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

// A view pair names the two timing views a calibration corrects between:
// the cheap view, whose derated per-gate delays and path decomposition
// yield the A·Δx rows of Eq. (9), and the golden view, whose exact path
// slacks are the fit targets. The paper's instance is GBA (cheap)
// against PBA retiming of the same session (golden); the "preroute" pair
// runs the same machinery across design stages, correcting a pre-route
// analysis against a deterministically routed twin of the design. Pairs
// are registered by name and selected per calibration through
// Options.ViewPair.

// PathTimer produces the golden timing of one selected path.
// pba.Analyzer is the canonical implementation: an exact single-path
// replay with path-specific derates and CRPR.
type PathTimer interface {
	Retime(p *pba.Path) *pba.Timing
}

// CheapView is the inexpensive whole-graph analysis being corrected. It
// produces the baseline result the selection is enumerated on and owns
// the row decomposition that maps a selected path and its golden timing
// onto one row of the Eq. (9) system.
type CheapView interface {
	// Run performs the cheap analysis of the current design state.
	Run() *sta.Result
	// Row builds one row of the Eq. (9) system for selected path p with
	// golden timing tm, against the cheap baseline r: sparse entries
	// (idx, val), the correction target and the Eq. (5) guard.
	Row(r *sta.Result, g *graph.Graph, epsilon float64, cols map[int]int, p *pba.Path, tm *pba.Timing) (idx []int, val []float64, target, guard float64)
	// Rebind moves the view to a new timing session after a structural
	// edit (mirrors Calibrator.Rebind).
	Rebind(s *engine.Session)
}

// GoldenProvider produces golden slacks for selected paths. Refresh
// re-derives the golden view from the current design state (the start of
// every cold calibration); Update mirrors an incremental cheap-side
// change (the instance IDs whose cells changed) into it; Timer hands out
// the path replayer for the current state, given the cheap baseline the
// selection was enumerated on; Rebind follows the calibrator onto a new
// session after a structural edit.
type GoldenProvider interface {
	Refresh() error
	Update(dirty []int) error
	Timer(cheap *sta.Result) (PathTimer, error)
	Rebind(s *engine.Session) error
}

// ViewPair binds a named (cheap, golden) view combination onto a timing
// session.
type ViewPair interface {
	Name() string
	Bind(s *engine.Session, cfg sta.Config, opt Options) (CheapView, GoldenProvider, error)
}

// strictPair is implemented by pairs whose cheap view can be optimistic
// against golden — cross-stage pairs, where the golden stage may lengthen
// a path the cheap stage under-times. Selecting such a pair forces
// Options.StrictSafety on: scale-back toward identity cannot repair an
// optimistic row, so the never-optimistic contract needs the exact
// Eq. (5) lift, not just the soft penalty.
type strictPair interface {
	StrictSafety() bool
}

// DefaultViewPair is the paper's GBA-corrected-against-PBA pairing, used
// whenever Options.ViewPair is empty.
const DefaultViewPair = "gba-pba"

var (
	pairMu  sync.RWMutex
	pairReg = map[string]ViewPair{}
)

// RegisterViewPair adds a pair to the registry. Registration is an
// init-time affair; a duplicate name panics.
func RegisterViewPair(p ViewPair) {
	pairMu.Lock()
	defer pairMu.Unlock()
	if _, dup := pairReg[p.Name()]; dup {
		panic("core: duplicate view pair " + p.Name())
	}
	pairReg[p.Name()] = p
}

// LookupViewPair resolves a pair name; "" selects DefaultViewPair. The
// error lists the registered names, so API layers can surface the valid
// choices verbatim.
func LookupViewPair(name string) (ViewPair, error) {
	if name == "" {
		name = DefaultViewPair
	}
	pairMu.RLock()
	defer pairMu.RUnlock()
	p, ok := pairReg[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown view pair %q (registered: %s)",
			name, strings.Join(pairNamesLocked(), ", "))
	}
	return p, nil
}

// ViewPairNames lists the registered pair names, sorted.
func ViewPairNames() []string {
	pairMu.RLock()
	defer pairMu.RUnlock()
	return pairNamesLocked()
}

func pairNamesLocked() []string {
	names := make([]string, 0, len(pairReg))
	for n := range pairReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// sessionView is the cheap view shared by the registered pairs: the
// plain (unweighted) analysis of the bound session under the calibration
// config, with the paper's Eq. (9) row decomposition.
type sessionView struct {
	sess *engine.Session
	cfg  sta.Config
}

func (v *sessionView) Run() *sta.Result { return v.sess.Run(v.cfg) }

func (v *sessionView) Row(r *sta.Result, g *graph.Graph, epsilon float64, cols map[int]int, p *pba.Path, tm *pba.Timing) ([]int, []float64, float64, float64) {
	return pathRow(r, g, epsilon, cols, p, tm)
}

func (v *sessionView) Rebind(s *engine.Session) { v.sess = s }

// gbaPBAPair is the paper's pairing: derated graph-based analysis as the
// cheap view, exact path-based retiming of the same session as golden.
type gbaPBAPair struct{}

func (gbaPBAPair) Name() string { return DefaultViewPair }

func (gbaPBAPair) Bind(s *engine.Session, cfg sta.Config, opt Options) (CheapView, GoldenProvider, error) {
	return &sessionView{sess: s, cfg: cfg}, pbaProvider{}, nil
}

// pbaProvider replays selected paths with pba.Analyzer against the cheap
// baseline itself — same session, same stage — so Refresh and Update
// have nothing to mirror: the cheap baseline the calibrator maintains is
// the golden view's substrate.
type pbaProvider struct{}

func (pbaProvider) Refresh() error               { return nil }
func (pbaProvider) Update([]int) error           { return nil }
func (pbaProvider) Rebind(*engine.Session) error { return nil }

func (pbaProvider) Timer(cheap *sta.Result) (PathTimer, error) {
	return pba.NewAnalyzer(cheap), nil
}

func init() {
	RegisterViewPair(gbaPBAPair{})
	RegisterViewPair(preroutePair{})
}
