package core

import (
	"context"
	"fmt"
	"sort"

	"mgba/internal/engine"
	"mgba/internal/obs"
	"mgba/internal/pathsel"
	"mgba/internal/pba"
	"mgba/internal/solver"
	"mgba/internal/sparse"
	"mgba/internal/sta"
)

// Calibrator is a persistent calibration session bound to an
// engine.Session, mirroring the engine's immutable-vs-per-run split on the
// calibration side. A cold Calibrate runs the full pipeline and caches its
// intermediate state: the baseline GBA result, the per-endpoint selected
// path sets with their golden retimings, the assembled Eq. (9) matrix and
// its column mapping. A subsequent Recalibrate, fed the set of instances
// the closure flow touched since, then redoes only the invalidated part:
// the baseline advances through the engine's incremental update, only
// endpoints whose fan-in cone contains a touched gate are re-enumerated
// and retimed, only their rows of A are patched in place, and the solve is
// warm-started from the previous fit. Every shortcut is exact — an
// incremental Recalibrate returns bit-identical weights to a cold
// Calibrate of the same design state — so the cache is purely a
// performance artifact.
//
// The cache is dropped (forcing the next call cold) whenever its validity
// cannot be guaranteed: a cancelled or faulted calibration, a dirty set
// touching the clock network, a selection truncated by the MaxPaths cap.
// Topology changes (buffer insertion) invalidate the engine.Session
// itself; build a new Calibrator on the new session, seeded with the old
// weights via Options.WarmWeights or SetWarmWeights.
//
// A Calibrator is not safe for concurrent use. Recalibrate mutates the
// cached matrix in place, so the Problem of a previously returned Model is
// stale after the next (re)calibration; the Model's weights and timing
// results remain valid.
type Calibrator struct {
	sess *engine.Session
	cfg  sta.Config
	opt  Options
	warm []float64 // per-instance weights seeding the next solve

	// The bound view pair: cheap produces the baseline the selection is
	// enumerated on and the Eq. (9) rows; golden produces the fit targets.
	pair   ViewPair
	cheap  CheapView
	golden GoldenProvider

	// corners holds the extra (non-selection) corners of a multi-corner
	// calibration, each with its own bound view pair instances; empty for
	// a single-corner calibrator. The calibrator's own cfg/cheap/golden
	// are the selection corner (Options.Corners[0]).
	corners []*cornerState

	// Cache of the last healthy calibration; eps == nil means no cache.
	gba      *sta.Result // cached baseline, advanced in place via Update
	mgba     *sta.Result // private weighted re-analysis, advanced via Update
	mweights []float64   // weights mgba was last evaluated under
	oneShot  bool        // throwaway calibrator: skip the weighted cache
	eps      []int       // tracked endpoints: D.FFs positions, FF order
	slotOf   map[int]int // D.FFs position -> index into eps/groups
	groups   [][]*pba.Path
	tgroups  [][]*pba.Timing
	targets  [][]float64 // per slot, parallel to groups
	guards   [][]float64
	mat      *sparse.Matrix
	cols     []int // column -> instance ID

	stats CalibratorStats
}

// CalibratorStats counts what the calibrator actually did, for benchmarks
// and tests that assert the incremental path was taken.
type CalibratorStats struct {
	Cold                  int // full-pipeline calibrations (incl. fallbacks)
	Incremental           int // recalibrations served from the cache
	EndpointsReenumerated int // endpoint searches run by incremental calls
	RowsPatched           int // matrix rows spliced in place
	MatrixRebuilds        int // incremental calls that rebuilt A from cache
}

// NewCalibrator validates the configuration, resolves the view pair
// named by Options.ViewPair and binds a calibration session to s.
// Options.WarmWeights, when set, seeds the first solve.
func NewCalibrator(s *engine.Session, cfg sta.Config, opt Options) (*Calibrator, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil session")
	}
	return newBoundCalibrator(s, cfg, opt, false)
}

// newBoundCalibrator is the shared constructor: validate, resolve the
// pair, instantiate its views on the session.
func newBoundCalibrator(s *engine.Session, cfg sta.Config, opt Options, oneShot bool) (*Calibrator, error) {
	if err := validateOptions(cfg, opt); err != nil {
		return nil, err
	}
	vp, err := LookupViewPair(opt.ViewPair)
	if err != nil {
		return nil, err
	}
	if sp, ok := vp.(strictPair); ok && sp.StrictSafety() {
		// A cross-stage pair cannot uphold Eq. (5) with the soft penalty
		// alone; force the exact enforcement the pair declares it needs.
		opt.StrictSafety = true
	}
	// Derive every corner's analysis config once, up front: the scaled
	// derate tables are pointer-stable for the calibrator's lifetime, so
	// the engine's clock-state cache hits on every run of every corner.
	var cornerCfgs []sta.Config
	if len(opt.Corners) > 0 {
		cornerCfgs = make([]sta.Config, len(opt.Corners))
		for i, spec := range opt.Corners {
			ccfg, err := cornerConfig(cfg, s.G.D, spec)
			if err != nil {
				return nil, err
			}
			cornerCfgs[i] = ccfg
		}
		// Corners[0] is the selection corner: the calibrator's own views
		// run under it, so an N=1 set with the identity spec is the plain
		// single-corner pipeline bit for bit.
		cfg = cornerCfgs[0]
		if len(opt.Corners) > 1 {
			// With several corners the soft penalty cannot vouch for all of
			// them; force the exact Eq. (5) enforcement on every fit.
			opt.StrictSafety = true
		}
	}
	cheap, golden, err := vp.Bind(s, cfg, opt)
	if err != nil {
		return nil, err
	}
	c := &Calibrator{
		sess: s, cfg: cfg, opt: opt, warm: opt.WarmWeights,
		pair: vp, cheap: cheap, golden: golden, oneShot: oneShot,
	}
	for i := 1; i < len(cornerCfgs); i++ {
		ccheap, cgolden, err := vp.Bind(s, cornerCfgs[i], opt)
		if err != nil {
			return nil, err
		}
		c.corners = append(c.corners, &cornerState{
			spec: opt.Corners[i], cfg: cornerCfgs[i],
			cheap: ccheap, golden: cgolden, warm: opt.WarmWeights,
		})
	}
	return c, nil
}

// Pair returns the name of the view pair the calibrator corrects
// between.
func (c *Calibrator) Pair() string { return c.pair.Name() }

// Stats returns the calibrator's work counters.
func (c *Calibrator) Stats() CalibratorStats { return c.stats }

// SetWarmWeights replaces the per-instance weights seeding the next solve
// (the closure flow uses it to carry weights across a session rebuild).
func (c *Calibrator) SetWarmWeights(w []float64) {
	if w == nil {
		c.warm = nil
		return
	}
	c.warm = append([]float64(nil), w...)
}

// Rebind moves the calibrator to a new engine.Session after a structural
// edit that preserved the instance set and the clock network — a register
// retiming slide. The per-endpoint path cache survives: the caller owes
// the next Recalibrate a dirty set covering every instance whose timing or
// graph-derived state (depth, bounding box) the edit moved, whose fan-out
// cone then covers every endpoint whose cached paths could have changed —
// clean endpoints' enumerations, retimings and matrix rows are provably
// still exact. The cached baselines are tied to the old session's graph,
// so the GBA baseline is re-run on the new session and the private
// weighted baseline is dropped (the next Recalibrate re-derives it).
//
// A new session whose design changed instance count voids the cache
// entirely; Rebind then degrades to an Invalidate and the next call runs
// cold.
func (c *Calibrator) Rebind(s *engine.Session) error {
	if s == nil {
		return fmt.Errorf("core: rebind to nil session")
	}
	sameShape := c.sess != nil &&
		len(s.G.D.Instances) == len(c.sess.G.D.Instances) &&
		len(s.G.D.FFs) == len(c.sess.G.D.FFs)
	c.sess = s
	c.cheap.Rebind(s)
	if err := c.golden.Rebind(s); err != nil {
		return err
	}
	if c.gba != nil {
		c.gba.Release()
		c.gba = nil
	}
	for _, cs := range c.corners {
		cs.cheap.Rebind(s)
		if err := cs.golden.Rebind(s); err != nil {
			return err
		}
		if cs.gba != nil {
			cs.gba.Release()
			cs.gba = nil
		}
	}
	if !sameShape {
		c.Invalidate()
		return nil
	}
	c.mgba.Release()
	c.mgba = nil
	c.mweights = nil
	if c.eps != nil {
		obsCalibRebinds.Inc()
		c.gba = c.cheap.Run()
		for _, cs := range c.corners {
			cs.gba = cs.cheap.Run()
		}
	}
	return nil
}

// Invalidate drops every cached artifact, forcing the next call cold. The
// cached baseline is not released here — the last returned Model may still
// reference it. The weighted cache is private (callers only ever receive
// clones of it), so its buffers go straight back to the session pool.
func (c *Calibrator) Invalidate() {
	c.gba = nil
	c.mgba.Release()
	c.mgba = nil
	c.mweights = nil
	c.eps = nil
	c.slotOf = nil
	c.groups = nil
	c.tgroups = nil
	c.targets = nil
	c.guards = nil
	c.mat = nil
	c.cols = nil
	for _, cs := range c.corners {
		cs.tgroups = nil
		cs.flat = nil
	}
}

// Calibrate runs a full cold calibration and (re)fills the cache.
func (c *Calibrator) Calibrate(ctx context.Context) (*Model, error) {
	return c.cold(ctx, nil)
}

// cold is the full pipeline — identical to the historical one-shot
// calibrate — plus cache management. sel non-nil substitutes an explicit
// selection (the §3.2 scheme study), which cannot be cached because its
// paths are not grouped per endpoint.
func (c *Calibrator) cold(ctx context.Context, sel *pathsel.Selection) (*Model, error) {
	if c.gba != nil {
		// The previous cached baseline belongs to this calibrator alone
		// (callers were handed it inside now-superseded models); recycle
		// its buffers before running a fresh analysis.
		c.gba.Release()
	}
	for _, cs := range c.corners {
		if cs.gba != nil {
			cs.gba.Release()
			cs.gba = nil
		}
	}
	c.Invalidate()
	c.stats.Cold++
	obsCalibCold.Inc()
	sp := obs.StartSpan("calibrate.cold")
	defer sp.End()
	m := &Model{G: c.sess.G, Session: c.sess, Cfg: c.cfg, Opt: c.opt, Pair: c.pair.Name(), SafetyScale: 1}
	m.Opt.WarmWeights = c.warm
	m.cheap = c.cheap
	// One baseline timing run is the minimum for a usable model and the
	// atomic unit of cancellation: it always runs to completion.
	m.GBA = c.cheap.Run()
	m.Weights = identity(len(m.G.D.Instances))
	if cancelled(ctx) {
		return c.finish(m.abandon("cancelled before path selection")), nil
	}
	// Re-derive the golden view from the current design state: a cold
	// calibration never trusts an incremental mirror (the default pair's
	// provider has nothing to derive; the routed pair rebuilds its twin).
	if err := c.golden.Refresh(); err != nil {
		return nil, err
	}
	if sel == nil && c.opt.StreamShard > 0 {
		return c.coldStream(ctx, sp, m)
	}
	an := pba.NewAnalyzer(m.GBA)
	spEnum := sp.Child("enumerate")
	var pop *pathsel.Population
	if sel != nil {
		m.Selection = sel
	} else {
		pop = pathsel.Enumerate(an, c.opt.K)
		m.Selection = pop.TopK(c.opt.K, c.opt.MaxPaths)
	}
	if len(m.Selection.Paths) == 0 {
		spEnum.End()
		// Nothing violates: mGBA degenerates to the cheap baseline.
		m.MGBA = m.GBA
		if c.multiCorner() {
			c.degenerateCorners(m)
			c.mergeWorst(m)
		}
		return c.finish(m), nil
	}
	timer, err := c.golden.Timer(m.GBA)
	if err != nil {
		spEnum.End()
		return nil, err
	}
	m.Timings = make([]*pba.Timing, len(m.Selection.Paths))
	for i, p := range m.Selection.Paths {
		if i%256 == 0 && cancelled(ctx) {
			spEnum.End()
			return c.finish(m.abandon("cancelled during golden retiming")), nil
		}
		m.Timings[i] = timer.Retime(p)
	}
	spEnum.End()
	spAsm := sp.Child("assemble")
	if err := m.assemble(); err != nil {
		spAsm.End()
		return nil, err
	}
	spAsm.End()
	spSolve := sp.Child("solve")
	if !(c.multiCorner() && c.opt.JointFit) {
		// Under a joint fit the selection corner's rows are solved inside
		// the stacked system instead of standalone.
		if err := m.solve(ctx); err != nil {
			spSolve.End()
			return nil, err
		}
	}
	if c.multiCorner() {
		if err := c.calibrateCorners(ctx, m); err != nil {
			spSolve.End()
			if err == errCornersCancelled {
				return c.finish(m.abandon("cancelled during golden retiming")), nil
			}
			return nil, err
		}
	}
	spSolve.End()
	spVal := sp.Child("validate")
	wcfg := c.cfg
	wcfg.Weights = m.Weights
	m.MGBA = c.sess.Run(wcfg)
	spVal.End()
	c.mergeWorst(m)
	// Fill the cache only when the model is trustworthy and the selection
	// is the plain endpoint-major concatenation (an mCap-truncated
	// round-robin selection cannot be patched per endpoint).
	if pop != nil && !m.Partial && m.Fault == "" && len(m.Selection.Paths) == pop.Total() {
		c.fillCache(m, pop)
		c.fillCornerCache()
		if !c.oneShot {
			c.mgba = m.MGBA.Clone()
			c.mweights = append([]float64(nil), m.Weights...)
		}
	}
	return c.finish(m), nil
}

// finish records the model's weights as the next solve's warm start —
// exactly the closure flow's historical behavior of feeding each
// calibration's weights into the next via Options.WarmWeights.
func (c *Calibrator) finish(m *Model) *Model {
	c.warm = m.Weights
	return m
}

// fillCache adopts a cold model's intermediates as the incremental cache,
// regrouping the flat timing/target/guard vectors per endpoint.
func (c *Calibrator) fillCache(m *Model, pop *pathsel.Population) {
	c.gba = m.GBA
	c.eps = pop.Endpoints()
	c.groups = pop.Groups()
	c.slotOf = make(map[int]int, len(c.eps))
	for i, fi := range c.eps {
		c.slotOf[fi] = i
	}
	c.tgroups = make([][]*pba.Timing, len(c.groups))
	c.targets = make([][]float64, len(c.groups))
	c.guards = make([][]float64, len(c.groups))
	off := 0
	for s, g := range c.groups {
		n := len(g)
		c.tgroups[s] = m.Timings[off : off+n : off+n]
		c.targets[s] = m.Problem.B[off : off+n : off+n]
		c.guards[s] = m.Problem.Guard[off : off+n : off+n]
		off += n
	}
	c.mat = m.Problem.A
	c.cols = m.Columns
}

// Recalibrate re-fits the weights after the given instances changed (gate
// or flip-flop resizes; anything that left the graph's connectivity and
// clock network intact). With a valid cache it runs the incremental path —
// update the baseline over the dirty cone, re-enumerate and retime only
// the affected endpoints, patch their rows of A, warm-start the solve —
// and returns a model bit-identical to a cold Calibrate of the same
// state. Without one (first call, after a fault, after Invalidate) it
// falls back to a cold calibration.
func (c *Calibrator) Recalibrate(ctx context.Context, dirty []int) (*Model, error) {
	if c.eps == nil || c.gba == nil {
		return c.cold(ctx, nil)
	}
	d := c.sess.G.D
	for _, id := range dirty {
		if id < 0 || id >= len(d.Instances) || c.sess.G.IsClock(id) {
			// Unknown instance or a touched clock cell: the cache's
			// clock-invariance assumptions are void, go cold.
			return c.cold(ctx, nil)
		}
	}
	c.stats.Incremental++
	obsCalibIncremental.Inc()
	sp := obs.StartSpan("calibrate.recalibrate")
	defer sp.End()
	m := &Model{G: c.sess.G, Session: c.sess, Cfg: c.cfg, Opt: c.opt, Pair: c.pair.Name(), SafetyScale: 1}
	m.Opt.WarmWeights = c.warm
	c.gba.Update(dirty)
	if err := c.golden.Update(dirty); err != nil {
		// The incremental mirror failed; a cold calibration re-derives the
		// golden view from scratch instead.
		return c.cold(ctx, nil)
	}
	m.GBA = c.gba
	m.Weights = identity(len(m.G.D.Instances))
	m.cheap = c.cheap
	if cancelled(ctx) {
		c.Invalidate()
		return c.finish(m.abandon("cancelled before path selection")), nil
	}
	an := pba.NewAnalyzer(m.GBA)
	spEnum := sp.Child("enumerate")
	var slots []int
	for _, fi := range c.sess.FanoutEndpoints(dirty) {
		if s, ok := c.slotOf[fi]; ok {
			slots = append(slots, s)
		}
	}
	sort.Ints(slots)
	affected := make([]int, len(slots))
	for i, s := range slots {
		affected[i] = c.eps[s]
	}
	zero := 0.0
	newGroups := an.KWorstAll(affected, c.opt.K, &zero, c.cfg.Parallelism)
	c.stats.EndpointsReenumerated += len(affected)
	obsEndpointsReenum.Add(int64(len(affected)))
	if cancelled(ctx) {
		spEnum.End()
		c.Invalidate()
		return c.finish(m.abandon("cancelled before path selection")), nil
	}
	timer, err := c.golden.Timer(m.GBA)
	if err != nil {
		spEnum.End()
		return nil, err
	}
	newTimings := make([][]*pba.Timing, len(newGroups))
	retimed := 0
	for i, g := range newGroups {
		newTimings[i] = make([]*pba.Timing, len(g))
		for j, p := range g {
			if retimed%256 == 0 && cancelled(ctx) {
				spEnum.End()
				c.Invalidate()
				return c.finish(m.abandon("cancelled during golden retiming")), nil
			}
			newTimings[i][j] = timer.Retime(p)
			retimed++
		}
	}
	spEnum.End()
	oldCounts := make([]int, len(c.groups))
	for s, g := range c.groups {
		oldCounts[s] = len(g)
	}
	for i, s := range slots {
		c.groups[s] = newGroups[i]
		c.tgroups[s] = newTimings[i]
	}
	total := 0
	for _, g := range c.groups {
		total += len(g)
	}
	if c.opt.MaxPaths > 0 && total > c.opt.MaxPaths {
		// The cap now binds: the cold selection would be a round-robin
		// truncation, which the per-endpoint cache cannot reproduce.
		return c.cold(ctx, nil)
	}
	spAsm := sp.Child("assemble")
	newCols, colOf := c.columnMap()
	if err := c.refreshRows(m, slots, oldCounts, newCols, colOf); err != nil {
		spAsm.End()
		return nil, err
	}
	c.cols = newCols
	m.Columns = newCols
	m.Selection = &pathsel.Selection{Scheme: "per-endpoint-top-k"}
	for _, g := range c.groups {
		m.Selection.Paths = append(m.Selection.Paths, g...)
	}
	for _, tg := range c.tgroups {
		m.Timings = append(m.Timings, tg...)
	}
	if len(m.Selection.Paths) == 0 {
		spAsm.End()
		// All violations repaired: degenerate to GBA, and drop the cache —
		// an empty matrix is not worth patching back to life.
		m.MGBA = m.GBA
		c.Invalidate()
		if c.multiCorner() {
			c.degenerateCorners(m)
			c.mergeWorst(m)
		}
		return c.finish(m), nil
	}
	flatB := make([]float64, 0, total)
	flatG := make([]float64, 0, total)
	for s := range c.groups {
		flatB = append(flatB, c.targets[s]...)
		flatG = append(flatG, c.guards[s]...)
	}
	c.mat.SetParallelism(engine.Workers(c.cfg.Parallelism))
	m.Problem = &solver.Problem{A: c.mat, B: flatB, Guard: flatG, Penalty: c.opt.Penalty}
	if err := m.Problem.Validate(); err != nil {
		spAsm.End()
		return nil, err
	}
	spAsm.End()
	spSolve := sp.Child("solve")
	var cornerSystems []*cornerSystem
	if c.multiCorner() {
		var cerr error
		cornerSystems, cerr = c.rebuildCornerSystems(ctx, m, slots, dirty)
		switch cerr {
		case nil:
		case errCornerCold:
			spSolve.End()
			return c.cold(ctx, nil)
		case errCornersCancelled:
			spSolve.End()
			c.Invalidate()
			return c.finish(m.abandon("cancelled during golden retiming")), nil
		default:
			spSolve.End()
			return nil, cerr
		}
	}
	if !(c.multiCorner() && c.opt.JointFit) {
		if err := m.solve(ctx); err != nil {
			spSolve.End()
			return nil, err
		}
	}
	if c.multiCorner() {
		if err := c.fitCorners(ctx, m, cornerSystems); err != nil {
			spSolve.End()
			return nil, err
		}
	}
	spSolve.End()
	spVal := sp.Child("validate")
	defer spVal.End()
	wcfg := c.cfg
	wcfg.Weights = m.Weights
	if c.mgba != nil {
		// Advance the private weighted baseline instead of re-running the
		// full weighted analysis: the only instances whose weighted view
		// changed are the dirty ones and those whose weight moved since the
		// cached evaluation, so Update over their union is bitwise equal to
		// a fresh Run under wcfg. The caller gets an independent clone; the
		// original stays with the calibrator for the next round.
		wdirty := append([]int(nil), dirty...)
		for i, w := range m.Weights {
			if c.mweights[i] != w {
				wdirty = append(wdirty, i)
			}
		}
		c.mgba.Cfg = wcfg
		c.mgba.Update(wdirty)
		copy(c.mweights, m.Weights)
		m.MGBA = c.mgba.Clone()
	} else {
		m.MGBA = c.sess.Run(wcfg)
	}
	c.mergeWorst(m)
	if m.Partial || m.Fault != "" {
		// A cut-short or faulted fit may have left the patched system in a
		// state we cannot vouch for; force the next calibration cold.
		c.Invalidate()
	}
	return c.finish(m), nil
}

// columnMap recomputes the column order from the cached selection: first
// occurrence over paths in row order, exactly like a cold assemble.
func (c *Calibrator) columnMap() ([]int, map[int]int) {
	colOf := make(map[int]int)
	var cols []int
	for _, g := range c.groups {
		for _, p := range g {
			for _, cell := range p.Cells {
				if _, ok := colOf[cell]; !ok {
					colOf[cell] = len(cols)
					cols = append(cols, cell)
				}
			}
		}
	}
	return cols, colOf
}

// refreshRows brings the cached matrix and per-slot target/guard vectors
// up to date for the re-enumerated slots. When the new column order
// extends the old one (the common case — new gates on dirty paths append
// columns), only the dirty slots' rows are spliced in place; when columns
// were reordered, the matrix is rebuilt from the cached rows, still
// without touching clean endpoints' enumerations or retimings.
func (c *Calibrator) refreshRows(m *Model, slots, oldCounts []int, newCols []int, colOf map[int]int) error {
	prefixOK := len(newCols) >= len(c.cols)
	if prefixOK {
		for i, id := range c.cols {
			if newCols[i] != id {
				prefixOK = false
				break
			}
		}
	}
	dirtySlot := make(map[int]bool, len(slots))
	for _, s := range slots {
		dirtySlot[s] = true
		c.targets[s] = make([]float64, len(c.groups[s]))
		c.guards[s] = make([]float64, len(c.groups[s]))
	}
	if !prefixOK {
		c.stats.MatrixRebuilds++
		b := sparse.NewBuilder(len(newCols))
		for s, g := range c.groups {
			for j, p := range g {
				idx, val, target, guard := c.cheap.Row(m.GBA, m.G, m.Opt.Epsilon, colOf, p, c.tgroups[s][j])
				if err := b.AddRow(idx, val); err != nil {
					return err
				}
				if dirtySlot[s] {
					c.targets[s][j] = target
					c.guards[s][j] = guard
				}
			}
		}
		c.mat = b.Build()
		return nil
	}
	if len(newCols) > len(c.cols) {
		if err := c.mat.GrowCols(len(newCols)); err != nil {
			return err
		}
	}
	starts := make([]int, len(c.groups)+1)
	for s, n := range oldCounts {
		starts[s+1] = starts[s] + n
	}
	shift := 0
	for _, s := range slots {
		lo := starts[s] + shift
		nOld, nNew := oldCounts[s], len(c.groups[s])
		for j, p := range c.groups[s] {
			idx, val, target, guard := c.cheap.Row(m.GBA, m.G, m.Opt.Epsilon, colOf, p, c.tgroups[s][j])
			var err error
			if j < nOld {
				err = c.mat.SetRow(lo+j, idx, val)
			} else {
				err = c.mat.InsertRow(lo+j, idx, val)
			}
			if err != nil {
				return err
			}
			c.stats.RowsPatched++
			c.targets[s][j] = target
			c.guards[s][j] = guard
		}
		for j := nOld; j > nNew; j-- {
			if err := c.mat.RemoveRow(lo + nNew); err != nil {
				return err
			}
		}
		shift += nNew - nOld
	}
	return nil
}
