package core_test

import (
	"context"
	"math"
	"testing"

	"mgba/internal/core"
	"mgba/internal/fixtures"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/sta"
)

// fig2Violating returns the Fig. 2 fixture squeezed to a 600 ps period so
// its paths violate and enter calibration.
func fig2Violating(t *testing.T) (*graph.Graph, sta.Config) {
	t.Helper()
	d, _, cfg, err := fixtures.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	d.ClockPeriod = 600
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return g, cfg
}

func smallDesign(t *testing.T) (*graph.Graph, sta.Config) {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 500, 70
	cfg.Name = "core-small"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return g, sta.DefaultConfig()
}

func TestCalibrateFig2ExactFit(t *testing.T) {
	g, cfg := fig2Violating(t)
	opt := core.DefaultOptions()
	opt.Method = core.MethodFull
	m, err := core.Calibrate(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Selection.Paths) == 0 {
		t.Fatal("no paths selected on a violating design")
	}
	mgba, err := m.PathSlacks("mgba")
	if err != nil {
		t.Fatal(err)
	}
	pbaS, err := m.PathSlacks("pba")
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 2 system is underdetermined: the exact solver must fit every
	// selected path essentially perfectly.
	for i := range mgba {
		if math.Abs(mgba[i]-pbaS[i]) > 0.5 {
			t.Fatalf("path %d: mgba slack %v vs pba %v", i, mgba[i], pbaS[i])
		}
	}
	// And the mGBA-timed graph recovers the 690 ps PBA arrival at FF4
	// instead of GBA's 740 ps.
	worst := math.Inf(1)
	for fi, s := range m.MGBA.Slack {
		if s < worst {
			worst = s
			_ = fi
		}
	}
	wantWorst := 600 - 690 - g.D.Instances[g.D.FFs[0]].Cell.Setup
	if math.Abs(worst-wantWorst) > 1.0 {
		t.Fatalf("mGBA worst endpoint slack = %v, want ~%v", worst, wantWorst)
	}
}

func TestCalibrateImprovesPassRatio(t *testing.T) {
	g, cfg := smallDesign(t)
	opt := core.DefaultOptions()
	opt.Method = core.MethodSCGRS
	m, err := core.Calibrate(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	gbaM, err := m.Evaluate("gba")
	if err != nil {
		t.Fatal(err)
	}
	mgbaM, err := m.Evaluate("mgba")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pass ratio: GBA %.2f%% -> mGBA %.2f%% over %d paths (mse %.4g -> %.4g)",
		gbaM.PassRatio*100, mgbaM.PassRatio*100, gbaM.Paths, gbaM.MSE, mgbaM.MSE)
	if mgbaM.PassRatio <= gbaM.PassRatio {
		t.Fatalf("mGBA pass ratio %.3f not above GBA %.3f", mgbaM.PassRatio, gbaM.PassRatio)
	}
	if mgbaM.MSE >= gbaM.MSE {
		t.Fatalf("mGBA mse %.4g not below GBA %.4g", mgbaM.MSE, gbaM.MSE)
	}
	if mgbaM.PassRatio < 0.6 {
		t.Fatalf("mGBA pass ratio %.3f too low", mgbaM.PassRatio)
	}
}

func TestOptimismBoundedByPenalty(t *testing.T) {
	g, cfg := smallDesign(t)
	opt := core.DefaultOptions()
	opt.Method = core.MethodSCGRS
	m, err := core.Calibrate(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := m.Evaluate("mgba")
	if err != nil {
		t.Fatal(err)
	}
	// The quadratic penalty is soft, so a few stragglers are acceptable —
	// but optimistic paths must stay a small minority.
	if frac := float64(mt.Optimism) / float64(mt.Paths); frac > 0.15 {
		t.Fatalf("%.1f%% of paths optimistic beyond tolerance", frac*100)
	}
	// GBA must never be optimistic at all: it is the pessimistic baseline.
	gbaMt, err := m.Evaluate("gba")
	if err != nil {
		t.Fatal(err)
	}
	if gbaMt.Optimism != 0 {
		t.Fatalf("GBA reported %d optimistic paths", gbaMt.Optimism)
	}
}

func TestWeightsIdentityOffPath(t *testing.T) {
	g, cfg := smallDesign(t)
	opt := core.DefaultOptions()
	m, err := core.Calibrate(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	onPath := m.Selection.CellSet()
	for _, in := range g.D.Instances {
		if !onPath[in.ID] && m.Weights[in.ID] != 1 {
			t.Fatalf("off-path instance %d has weight %v", in.ID, m.Weights[in.ID])
		}
	}
}

func TestWeightsClamped(t *testing.T) {
	g, cfg := smallDesign(t)
	opt := core.DefaultOptions()
	m, err := core.Calibrate(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range m.Weights {
		if w < opt.MinWeight-1e-12 || w > opt.MaxWeight+1e-12 {
			t.Fatalf("weight %v outside clamp", w)
		}
	}
}

func TestNoViolationsIdentityModel(t *testing.T) {
	// The Fig. 2 fixture at its default relaxed 1000 ps period has no
	// violated paths: calibration must degrade gracefully to unit weights.
	d, _, cfg, err := fixtures.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Calibrate(context.Background(), g, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Selection.Paths) != 0 {
		t.Fatalf("selected %d paths with no violations", len(m.Selection.Paths))
	}
	for _, w := range m.Weights {
		if w != 1 {
			t.Fatal("non-unit weight without calibration paths")
		}
	}
	if m.MGBA != m.GBA {
		t.Fatal("identity model should reuse the GBA result")
	}
}

func TestSparsityOfCorrection(t *testing.T) {
	g, cfg := smallDesign(t)
	opt := core.DefaultOptions()
	opt.Method = core.MethodSCGRS
	m, err := core.Calibrate(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 3's claim: the optimal correction is extremely sparse. Our
	// synthetic designs concentrate pessimism on a minority of gates too.
	frac := m.SparsityFraction(0.01)
	t.Logf("sparsity: %.1f%% of corrections within [-0.01, 0.01]", frac*100)
	if frac < 0.5 {
		t.Fatalf("correction not sparse: only %.1f%% near zero", frac*100)
	}
	h := m.CorrectionHistogram(0.25, 50)
	if h.Total() == 0 {
		t.Fatal("empty correction histogram")
	}
}

func TestPathSlacksKinds(t *testing.T) {
	g, cfg := fig2Violating(t)
	m, err := core.Calibrate(context.Background(), g, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gba, err := m.PathSlacks("gba")
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Selection.Paths {
		if gba[i] != p.GBASlack {
			t.Fatal("gba slack mismatch")
		}
	}
	if _, err := m.PathSlacks("nope"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestCalibrateRejectsBadOptions(t *testing.T) {
	g, cfg := fig2Violating(t)
	opt := core.DefaultOptions()
	opt.K = 0
	if _, err := core.Calibrate(context.Background(), g, cfg, opt); err == nil {
		t.Fatal("K=0 accepted")
	}
	opt = core.DefaultOptions()
	opt.Epsilon = -1
	if _, err := core.Calibrate(context.Background(), g, cfg, opt); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	opt = core.DefaultOptions()
	opt.MinWeight = 0
	if _, err := core.Calibrate(context.Background(), g, cfg, opt); err == nil {
		t.Fatal("zero MinWeight accepted")
	}
	wcfg := cfg
	wcfg.Weights = make([]float64, len(g.D.Instances))
	if _, err := core.Calibrate(context.Background(), g, wcfg, core.DefaultOptions()); err == nil {
		t.Fatal("pre-weighted config accepted")
	}
}

func TestCalibrateDeterministic(t *testing.T) {
	g, cfg := smallDesign(t)
	opt := core.DefaultOptions()
	a, err := core.Calibrate(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Calibrate(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatal("calibration not deterministic")
		}
	}
}

func TestCompareMetrics(t *testing.T) {
	model := []float64{-10, -20, -30}
	golden := []float64{-10, -20, -30}
	mt := core.Compare(model, golden, 0.02)
	if mt.PassRatio != 1 || mt.MSE != 0 || mt.Optimism != 0 {
		t.Fatalf("identical vectors: %+v", mt)
	}
	// 4 ps absolute error on a large slack passes (5 ps rule)...
	mt = core.Compare([]float64{-104}, []float64{-100}, 0.02)
	if mt.PassRatio != 1 {
		t.Fatalf("4ps error should pass: %+v", mt)
	}
	// ...but 7 ps fails absolute and (7%) fails relative.
	mt = core.Compare([]float64{-107}, []float64{-100}, 0.02)
	if mt.PassRatio != 0 {
		t.Fatalf("7ps error should fail: %+v", mt)
	}
	// Optimism: model slack above golden beyond the epsilon band.
	mt = core.Compare([]float64{-90}, []float64{-100}, 0.02)
	if mt.Optimism != 1 {
		t.Fatalf("optimistic path not flagged: %+v", mt)
	}
	if mt.PassRatio != 0 {
		t.Fatalf("10%% error should also fail the pass rule: %+v", mt)
	}
}

func TestMethodString(t *testing.T) {
	if core.MethodGD.String() != "GD+w/oRS" ||
		core.MethodSCG.String() != "SCG+w/oRS" ||
		core.MethodSCGRS.String() != "SCG+RS" {
		t.Fatal("method names drifted from Table 4 labels")
	}
}
