package core

import (
	"fmt"
	"math"

	"mgba/internal/num"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

// PathSlacks returns, for every selected path, the slack under the given
// model: "cheap" (unit weights), "mgba" (fitted weights) or "golden"
// (the pair's golden view). "gba" and "pba" are accepted as aliases for
// "cheap" and "golden" — the names the API used when GBA<->PBA was the
// only pair — so existing callers and the calibd wire format keep
// working.
func (m *Model) PathSlacks(kind string) ([]float64, error) {
	if m.Bank != nil {
		return m.bankPathSlacks(kind)
	}
	out := make([]float64, len(m.Selection.Paths))
	switch kind {
	case "golden", "pba":
		for i, tm := range m.Timings {
			out[i] = tm.Slack
		}
	case "cheap", "gba":
		for i, p := range m.Selection.Paths {
			out[i] = p.GBASlack
		}
	case "mgba":
		if m.Problem == nil {
			return nil, fmt.Errorf("core: no fitted problem")
		}
		// s_mgba(p) = s_cheap(p) - (A dx)_p: the correction shifts the path
		// delay, and delay shifts map one-to-one onto slack shifts.
		ax := m.Problem.A.MulVec(nil, m.clampedCorrection())
		for i, p := range m.Selection.Paths {
			out[i] = p.GBASlack - ax[i]
		}
	default:
		return nil, fmt.Errorf("core: unknown slack kind %q", kind)
	}
	return out, nil
}

// bankPathSlacks is PathSlacks over a slab-banked (streamed) model; rows
// are in bank store order, which is the same endpoint-major order the
// materialized selection would use.
func (m *Model) bankPathSlacks(kind string) ([]float64, error) {
	n := m.Bank.Total()
	out := make([]float64, n)
	switch kind {
	case "golden", "pba":
		copy(out, m.GoldenSlack)
	case "cheap", "gba":
		for i := 0; i < n; i++ {
			out[i] = m.Bank.Store.GBASlack(i)
		}
	case "mgba":
		if m.Problem == nil {
			return nil, fmt.Errorf("core: no fitted problem")
		}
		ax := m.Problem.A.MulVec(nil, m.clampedCorrection())
		for i := 0; i < n; i++ {
			out[i] = m.Bank.Store.GBASlack(i) - ax[i]
		}
	default:
		return nil, fmt.Errorf("core: unknown slack kind %q", kind)
	}
	return out, nil
}

// clampedCorrection returns the correction vector consistent with the
// clamped weights actually applied to the graph.
func (m *Model) clampedCorrection() []float64 {
	dx := make([]float64, len(m.Columns))
	for k, c := range m.Columns {
		dx[k] = m.Weights[c] - 1
	}
	return dx
}

// Metrics bundles the accuracy measures the paper reports.
type Metrics struct {
	Paths     int
	MSE       float64 // Eq. (12): ||s_model - s_golden||^2 / ||s_golden||^2
	Phi       float64 // Eq. (10): ||s_model - s_golden|| / ||s_golden||
	PassRatio float64 // Table 3 criterion: within 5% relative or 5 ps absolute
	Optimism  int     // paths whose model slack exceeds s_golden + eps*|s_golden|
}

// PassTolerances of Table 3: a path passes when its slack error is within
// 5 % relative or 5 ps absolute of the golden view.
const (
	PassRelTol = 0.05
	PassAbsTol = 5.0
)

// Evaluate computes the accuracy metrics of a model slack vector against
// the pair's golden slacks over the selected paths. kind is "cheap"
// (alias "gba") or "mgba".
func (m *Model) Evaluate(kind string) (Metrics, error) {
	model, err := m.PathSlacks(kind)
	if err != nil {
		return Metrics{}, err
	}
	golden, err := m.PathSlacks("golden")
	if err != nil {
		return Metrics{}, err
	}
	return Compare(model, golden, m.Opt.Epsilon), nil
}

// Compare computes the paper's accuracy metrics between a model slack
// vector and the golden slacks of whichever view pair produced them.
func Compare(model, golden []float64, epsilon float64) Metrics {
	if len(model) != len(golden) {
		panic("core: slack vector length mismatch")
	}
	mt := Metrics{Paths: len(model)}
	if len(model) == 0 {
		return mt
	}
	diff := make([]float64, len(model))
	num.Sub(diff, model, golden)
	gn := num.Norm2(golden)
	dn := num.Norm2(diff)
	if gn > 0 {
		mt.Phi = dn / gn
		mt.MSE = (dn * dn) / (gn * gn)
	}
	pass := 0
	for i := range model {
		e := math.Abs(model[i] - golden[i])
		if e <= PassAbsTol || e <= PassRelTol*math.Abs(golden[i]) {
			pass++
		}
		if model[i] > golden[i]+epsilon*math.Abs(golden[i])+1e-9 {
			mt.Optimism++
		}
	}
	mt.PassRatio = float64(pass) / float64(len(model))
	return mt
}

// PathSlackWithWeights evaluates the mGBA slack of an arbitrary path under
// a per-instance weight vector, against the baseline (unit-weight) cheap
// analysis r. Used to judge a fit on paths outside its training selection,
// as the §3.2 study does ("the measurement is always with 8444 violated
// timing paths").
func PathSlackWithWeights(r *sta.Result, an *pba.Analyzer, p *pba.Path, weights []float64) float64 {
	var sum, wires float64
	for _, c := range p.Cells {
		w := 1.0
		if weights != nil {
			w = weights[c]
		}
		sum += r.CellDelay[c] * w
		wires += r.WireDelay[c]
	}
	launchIdx := r.G.FFIndex(p.Launch)
	captureIdx := r.G.FFIndex(p.Capture)
	return an.Budget(captureIdx) + r.GBACRPR[captureIdx] - (r.ClockLate[launchIdx] + sum + wires)
}

// FullCorrection returns the correction of every data instance (launch
// arcs and combinational gates; clock buffers excluded): the x* vector of
// the paper, with exact zeros for gates off every selected path. This is
// the population Fig. 3 bins.
func (m *Model) FullCorrection() []float64 {
	var out []float64
	for _, in := range m.G.D.Instances {
		if m.G.IsClock(in.ID) {
			continue
		}
		out = append(out, m.Weights[in.ID]-1)
	}
	return out
}

// CorrectionHistogram bins the fitted corrections for Fig. 3 (the sparsity
// plot): the fraction of entries inside [-width, width] is its headline.
func (m *Model) CorrectionHistogram(width float64, bins int) *num.Histogram {
	return num.NewHistogram(m.FullCorrection(), -width, width, bins)
}

// SparsityFraction returns the fraction of corrections within [-tol, tol],
// the "95.9% of entries near zero" statistic of Fig. 3.
func (m *Model) SparsityFraction(tol float64) float64 {
	return num.FractionWithin(m.FullCorrection(), -tol, tol)
}
