package core_test

import (
	"reflect"
	"strings"
	"testing"

	"mgba/internal/core"
)

func TestParseCorners(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []core.CornerSpec
	}{
		{"", nil},
		{"   ", nil},
		{"typ", []core.CornerSpec{{Name: "typ"}}},
		{"typ,slow:1.15", []core.CornerSpec{{Name: "typ"}, {Name: "slow", DerateScale: 1.15}}},
		{" typ , slow : 1.15 : 10 ", []core.CornerSpec{{Name: "typ"}, {Name: "slow", DerateScale: 1.15, Uncertainty: 10}}},
		{"a:0.9:5,b:1.2", []core.CornerSpec{{Name: "a", DerateScale: 0.9, Uncertainty: 5}, {Name: "b", DerateScale: 1.2}}},
	} {
		got, err := core.ParseCorners(tc.in)
		if err != nil {
			t.Errorf("ParseCorners(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseCorners(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{
		"slow:fast",   // non-numeric scale
		"slow:1.1:x",  // non-numeric uncertainty
		"slow:1:2:3",  // too many fields
		"typ,typ",     // duplicate name
		":1.1",        // empty name
		"slow:-0.5",   // negative scale
		"slow:1.1:-3", // negative uncertainty
	} {
		if _, err := core.ParseCorners(bad); err == nil {
			t.Errorf("ParseCorners(%q) did not error", bad)
		}
	}
}

func TestFormatCornersRoundTrip(t *testing.T) {
	sets := [][]core.CornerSpec{
		{{Name: "typ"}},
		{{Name: "typ"}, {Name: "slow", DerateScale: 1.15, Uncertainty: 10}},
		{{Name: "fast", DerateScale: 0.85}, {Name: "hot", DerateScale: 1.3, Uncertainty: 20}},
		// Uncertainty without an explicit scale forces the x:1:y form.
		{{Name: "unc", Uncertainty: 7.5}},
	}
	for _, set := range sets {
		s := core.FormatCorners(set)
		back, err := core.ParseCorners(s)
		if err != nil {
			t.Fatalf("round-trip %q: %v", s, err)
		}
		if len(back) != len(set) {
			t.Fatalf("round-trip %q: %d specs, want %d", s, len(back), len(set))
		}
		for i := range set {
			if back[i].Name != set[i].Name ||
				effectiveScale(back[i]) != effectiveScale(set[i]) ||
				back[i].Uncertainty != set[i].Uncertainty {
				t.Errorf("round-trip %q spec %d: %+v vs %+v", s, i, back[i], set[i])
			}
		}
	}
}

// effectiveScale mirrors the spec's zero-means-identity scale handling
// for the round-trip comparison (String() normalizes 0 to 1).
func effectiveScale(cs core.CornerSpec) float64 {
	if cs.DerateScale == 0 {
		return 1
	}
	return cs.DerateScale
}

func TestValidateCorners(t *testing.T) {
	if err := core.ValidateCorners(nil); err != nil {
		t.Errorf("nil set must be valid: %v", err)
	}
	ok := []core.CornerSpec{{Name: "typ"}, {Name: "slow", DerateScale: 1.15, Uncertainty: 10}}
	if err := core.ValidateCorners(ok); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	for _, tc := range []struct {
		set  []core.CornerSpec
		want string
	}{
		{[]core.CornerSpec{{Name: ""}}, "no name"},
		{[]core.CornerSpec{{Name: "a"}, {Name: "a"}}, "duplicate"},
		{[]core.CornerSpec{{Name: "a", DerateScale: -1}}, "negative derate"},
		{[]core.CornerSpec{{Name: "a", Uncertainty: -1}}, "negative uncertainty"},
	} {
		err := core.ValidateCorners(tc.set)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ValidateCorners(%+v) = %v, want error containing %q", tc.set, err, tc.want)
		}
	}
}

func TestCornerNames(t *testing.T) {
	set := []core.CornerSpec{{Name: "typ"}, {Name: "slow"}, {Name: "fast"}}
	if got := core.CornerNames(set); !reflect.DeepEqual(got, []string{"typ", "slow", "fast"}) {
		t.Errorf("CornerNames = %v (set order must be preserved)", got)
	}
	if got := core.CornerNames(nil); len(got) != 0 {
		t.Errorf("CornerNames(nil) = %v", got)
	}
}
