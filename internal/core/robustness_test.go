package core_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/faultinject"
	"mgba/internal/solver"
)

// allOnes reports whether every weight is exactly the identity.
func allOnes(w []float64) bool {
	for _, v := range w {
		if v != 1 {
			return false
		}
	}
	return true
}

// TestLadderFallsToIdentityOnPersistentNaN: when every solver rung sees
// NaN gradients, calibration must land on identity weights (mGBA == GBA),
// record the fault, and never error or panic.
func TestLadderFallsToIdentityOnPersistentNaN(t *testing.T) {
	g, cfg := smallDesign(t)
	faultinject.SetSlice(faultinject.SolverGradient, func(v []float64) {
		for i := range v {
			v[i] = math.NaN()
		}
	})
	defer faultinject.Reset()
	m, err := core.Calibrate(context.Background(), g, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Degraded {
		t.Fatal("persistently poisoned calibration not marked degraded")
	}
	if m.Fault == "" {
		t.Fatal("identity fallback did not record a fault")
	}
	if m.SafetyScale != 0 {
		t.Fatalf("identity fallback SafetyScale = %v, want 0", m.SafetyScale)
	}
	if !allOnes(m.Weights) {
		t.Fatal("fallback weights are not identity")
	}
	if len(m.Attempts) != 3 {
		t.Fatalf("SCGRS ladder ran %d rungs, want 3", len(m.Attempts))
	}
	for _, a := range m.Attempts {
		if a.Rejected == "" {
			t.Fatalf("%v attempt accepted despite NaN gradients", a.Method)
		}
	}
	// Identity weights mean mGBA must reproduce GBA exactly.
	mg, _ := m.PathSlacks("mgba")
	gb, _ := m.PathSlacks("gba")
	for i := range mg {
		if mg[i] != gb[i] {
			t.Fatalf("path %d: identity mGBA slack %v != GBA %v", i, mg[i], gb[i])
		}
	}
}

// TestLadderFallsOneRung: an injected startup error on the first rung only
// must degrade to the next method, which then succeeds.
func TestLadderFallsOneRung(t *testing.T) {
	g, cfg := smallDesign(t)
	calls := 0
	faultinject.SetError(faultinject.SolverStart, func() error {
		calls++
		if calls == 1 {
			return errors.New("injected solver startup failure")
		}
		return nil
	})
	defer faultinject.Reset()
	m, err := core.Calibrate(context.Background(), g, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Degraded {
		t.Fatal("fallback fit not marked degraded")
	}
	if m.Fault != "" {
		t.Fatalf("one-rung fallback should not reach identity, fault: %s", m.Fault)
	}
	if len(m.Attempts) < 2 {
		t.Fatalf("only %d attempts recorded", len(m.Attempts))
	}
	if m.Attempts[0].Rejected == "" {
		t.Fatal("first attempt not rejected")
	}
	if m.Attempts[1].Rejected != "" {
		t.Fatalf("second attempt rejected: %s", m.Attempts[1].Rejected)
	}
	if allOnes(m.Weights) {
		t.Fatal("fallback rung produced no fit at all")
	}
}

// TestNoFallbackSurfacesError: with the ladder disabled, an unhealthy
// solve must surface as an error instead of degrading.
func TestNoFallbackSurfacesError(t *testing.T) {
	g, cfg := smallDesign(t)
	faultinject.SetSlice(faultinject.SolverGradient, func(v []float64) {
		for i := range v {
			v[i] = math.NaN()
		}
	})
	defer faultinject.Reset()
	opt := core.DefaultOptions()
	opt.NoFallback = true
	if _, err := core.Calibrate(context.Background(), g, cfg, opt); err == nil {
		t.Fatal("NoFallback swallowed an unhealthy solve")
	}
}

// TestStrictSafetyNoOptimism: strict mode must leave zero paths optimistic
// beyond the Eq. (5) epsilon guard on the training selection.
func TestStrictSafetyNoOptimism(t *testing.T) {
	g, cfg := smallDesign(t)
	opt := core.DefaultOptions()
	opt.StrictSafety = true
	m, err := core.Calibrate(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	met, err := m.Evaluate("mgba")
	if err != nil {
		t.Fatal(err)
	}
	if met.Optimism != 0 {
		t.Fatalf("strict safety left %d optimistic paths", met.Optimism)
	}
	if m.SafetyScale <= 0 || m.SafetyScale > 1 {
		t.Fatalf("SafetyScale = %v outside (0, 1]", m.SafetyScale)
	}
}

// TestDivergentStepsStaySafe: steps amplified 1e12x must either be
// rejected down the ladder or survive with the scale-back applied — in
// every case the final model obeys Eq. (5) on the selection (degraded fits
// are always scaled back).
func TestDivergentStepsStaySafe(t *testing.T) {
	g, cfg := smallDesign(t)
	faultinject.SetFloat(faultinject.SolverStep, func(v float64) float64 { return v * 1e12 })
	defer faultinject.Reset()
	opt := core.DefaultOptions()
	m, err := core.Calibrate(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range m.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatal("non-finite weight escaped the pipeline")
		}
	}
	if !m.Degraded && !allOnes(m.Weights) {
		t.Fatal("divergent solve accepted as healthy")
	}
	// Eq. 5 on the training selection: s_mgba <= s_pba + eps*|s_pba|.
	mg, err := m.PathSlacks("mgba")
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := m.PathSlacks("pba")
	for i := range mg {
		if mg[i] > pb[i]+opt.Epsilon*math.Abs(pb[i])+1e-9 {
			t.Fatalf("path %d optimistic: mGBA %v vs PBA %v", i, mg[i], pb[i])
		}
	}
}

// TestCalibrateCancelledContext: an already-cancelled context must yield a
// usable identity model immediately — no error, no panic, non-nil
// selection — because callers dereference the model unconditionally.
func TestCalibrateCancelledContext(t *testing.T) {
	g, cfg := smallDesign(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := core.Calibrate(ctx, g, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Partial || !m.Degraded {
		t.Fatalf("cancelled calibration not marked partial+degraded: %+v / %+v", m.Partial, m.Degraded)
	}
	if m.Selection == nil {
		t.Fatal("cancelled calibration returned nil selection")
	}
	if !allOnes(m.Weights) {
		t.Fatal("cancelled calibration returned non-identity weights")
	}
	if m.MGBA != m.GBA {
		t.Fatal("cancelled calibration should reuse the GBA view")
	}
	if m.MGBA == nil {
		t.Fatal("cancelled calibration returned no timing view")
	}
}

// TestCancelledMidSolveScalesBack: cancelling during the solver run must
// accept the partial iterate only with the Eq. (5) scale-back applied.
func TestCancelledMidSolveScalesBack(t *testing.T) {
	g, cfg := smallDesign(t)
	ctx, cancel := context.WithCancel(context.Background())
	steps := 0
	faultinject.SetFloat(faultinject.SolverStep, func(v float64) float64 {
		steps++
		if steps == 40 {
			cancel()
		}
		return v
	})
	defer faultinject.Reset()
	m, err := core.Calibrate(ctx, g, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Partial {
		t.Skip("solver finished before the cancel landed; nothing to assert")
	}
	mg, err := m.PathSlacks("mgba")
	if err != nil {
		// Identity fallback: trivially safe.
		return
	}
	pb, _ := m.PathSlacks("pba")
	for i := range mg {
		if mg[i] > pb[i]+m.Opt.Epsilon*math.Abs(pb[i])+1e-9 {
			t.Fatalf("partial fit optimistic on path %d: mGBA %v vs PBA %v", i, mg[i], pb[i])
		}
	}
}

// TestConvergedFlagOnHealthyFit: the accepted attempt of a healthy
// calibration reports a terminal stop reason.
func TestConvergedFlagOnHealthyFit(t *testing.T) {
	g, cfg := smallDesign(t)
	m, err := core.Calibrate(context.Background(), g, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Degraded {
		t.Skip("fixture unexpectedly degraded")
	}
	if !m.Stats.Converged {
		t.Fatalf("healthy fit did not converge: reason %v", m.Stats.Reason)
	}
	if m.Stats.Reason == solver.StopNone {
		t.Fatal("stop reason not recorded")
	}
}

// TestCorruptedWarmStartRejected: corrupted warm weights must never steer
// the fit. NaN entries fail the positivity filter and are dropped before
// the solver (the calibration proceeds exactly as if unseeded); infinite
// entries pass the filter, trip every rung's non-finite detector, and land
// the ladder on identity weights. Neither panics, errors, or goes
// optimistic.
func TestCorruptedWarmStartRejected(t *testing.T) {
	g, cfg := smallDesign(t)

	// NaN warm start: filtered out, bitwise-equal to an unseeded run.
	opt := core.DefaultOptions()
	opt.WarmWeights = make([]float64, len(g.D.Instances))
	for i := range opt.WarmWeights {
		opt.WarmWeights[i] = math.NaN()
	}
	m, err := core.Calibrate(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Calibrate(context.Background(), g, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Degraded || m.Fault != "" {
		t.Fatalf("NaN warm start degraded the fit: fault=%q", m.Fault)
	}
	for i := range m.Weights {
		if m.Weights[i] != ref.Weights[i] {
			t.Fatalf("NaN warm start steered the fit: weight %d is %v, unseeded %v",
				i, m.Weights[i], ref.Weights[i])
		}
	}

	// Infinite warm start: reaches the solver, rejected on every rung.
	for i := range opt.WarmWeights {
		opt.WarmWeights[i] = math.Inf(1)
	}
	m, err = core.Calibrate(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Degraded || m.Fault == "" {
		t.Fatalf("infinite warm start not rejected: degraded=%v fault=%q", m.Degraded, m.Fault)
	}
	if !allOnes(m.Weights) {
		t.Fatal("infinite warm start leaked non-identity weights")
	}
	for _, a := range m.Attempts {
		if a.Rejected == "" {
			t.Fatalf("%v attempt accepted an infinite warm start", a.Method)
		}
	}
}

// TestCalibratorRecoversFromCorruptedWarmStart: a calibrator seeded with a
// poisoned warm start must degrade to identity on the first calibration and
// then recover on the next one (the identity outcome replaces the warm
// start), without any cache poisoning in between.
func TestCalibratorRecoversFromCorruptedWarmStart(t *testing.T) {
	g, cfg := smallDesign(t)
	sess := engine.NewSession(g)
	cal, err := core.NewCalibrator(sess, cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]float64, len(g.D.Instances))
	for i := range bad {
		bad[i] = math.Inf(1)
	}
	cal.SetWarmWeights(bad)
	m0, err := cal.Calibrate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !allOnes(m0.Weights) {
		t.Fatal("infinite warm start leaked non-identity weights")
	}
	m1, err := cal.Recalibrate(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Fault != "" || m1.Degraded {
		t.Fatalf("calibrator did not recover after poisoned warm start: fault=%q degraded=%v",
			m1.Fault, m1.Degraded)
	}
	if allOnes(m1.Weights) {
		t.Fatal("recovered calibration produced no correction on a violating design")
	}
}
