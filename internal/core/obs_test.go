package core_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"mgba/internal/core"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/obs"
	"mgba/internal/sta"
)

// TestObsOnOffCalibrationBitIdentical is the inertness contract of the
// observability layer at the calibration level: enabling metrics, spans
// and the JSONL event sink must not move a single bit of the fitted
// model — same RNG streams, same ordered combines, same weights — at
// serial and parallel settings alike (the D3 suite design, Parallelism
// 1 and 4).
func TestObsOnOffCalibrationBitIdentical(t *testing.T) {
	cfg := gen.Suite()[2] // D3
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}

	calibrate := func(par int, on bool) *core.Model {
		t.Helper()
		prev := obs.Enabled()
		defer obs.Enable(prev)
		obs.Enable(on)
		if on {
			// Exercise the full instrumented path, sink included.
			var sink bytes.Buffer
			obs.SetSink(&sink)
			defer obs.SetSink(nil)
		}
		scfg := sta.DefaultConfig()
		scfg.Parallelism = par
		m, err := core.Calibrate(context.Background(), g, scfg, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			off := calibrate(par, false)
			on := calibrate(par, true)
			if len(off.Selection.Paths) == 0 {
				t.Fatal("fixture too tame: no violated paths selected")
			}
			if len(on.Weights) != len(off.Weights) {
				t.Fatalf("weight lengths differ: %d vs %d", len(on.Weights), len(off.Weights))
			}
			for i := range off.Weights {
				if on.Weights[i] != off.Weights[i] {
					t.Fatalf("weights diverge at %d: obs-on %v vs obs-off %v",
						i, on.Weights[i], off.Weights[i])
				}
			}
			if len(on.Correction) != len(off.Correction) {
				t.Fatalf("correction lengths differ: %d vs %d", len(on.Correction), len(off.Correction))
			}
			for i := range off.Correction {
				if on.Correction[i] != off.Correction[i] {
					t.Fatalf("correction diverges at %d: %v vs %v",
						i, on.Correction[i], off.Correction[i])
				}
			}
			if on.Stats.Iters != off.Stats.Iters || on.Stats.Objective != off.Stats.Objective {
				t.Fatalf("solver trajectory differs: iters %d/%d, objective %v/%v",
					on.Stats.Iters, off.Stats.Iters, on.Stats.Objective, off.Stats.Objective)
			}
			if on.Degraded != off.Degraded {
				t.Fatalf("degradation differs: %v vs %v", on.Degraded, off.Degraded)
			}
		})
	}
}
