package core_test

import (
	"context"
	"testing"

	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/sta"
)

// calDesign generates a violating toy design with its graph and session.
func calDesign(t *testing.T) (*netlist.Design, *graph.Graph, *engine.Session) {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 700, 90
	cfg.Name = "calibrator-test"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, g, engine.NewSession(g)
}

// upsizeSelected applies n upsizes to distinct gates on the model's
// selected paths (worst first) and returns the dirty set the closure flow
// would record: each resized instance plus the drivers of its input nets.
func upsizeSelected(t *testing.T, d *netlist.Design, g *graph.Graph, m *core.Model, n int) []int {
	t.Helper()
	seen := make(map[int]bool)
	var dirty []int
	note := func(id int) {
		if !seen[id] {
			seen[id] = true
			dirty = append(dirty, id)
		}
	}
	resized := 0
	for _, p := range m.Selection.Paths {
		for _, id := range p.Cells {
			if resized == n {
				return dirty
			}
			inst := d.Instances[id]
			if seen[id] || inst.IsFF() {
				continue
			}
			to := d.Lib.Upsize(inst.Cell)
			if to == nil {
				continue
			}
			if err := d.Resize(inst, to); err != nil {
				continue
			}
			resized++
			note(id)
			for _, nid := range inst.Inputs {
				if drv := d.Nets[nid].Driver; drv >= 0 && !g.IsClock(drv) {
					note(drv)
				}
			}
		}
	}
	if resized == 0 {
		t.Fatal("no gate on the selection could be upsized")
	}
	return dirty
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRecalibrateMatchesColdExactly is the calibrator's core contract:
// after a batch of sizing transforms, the incremental Recalibrate must
// return bit-identical weights, selection, targets and mGBA slacks to a
// cold calibration of the same design state with the same warm start.
func TestRecalibrateMatchesColdExactly(t *testing.T) {
	d, g, sess := calDesign(t)
	ctx := context.Background()
	cfg := sta.DefaultConfig()
	opt := core.DefaultOptions()

	cal, err := core.NewCalibrator(sess, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := cal.Calibrate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(m0.Selection.Paths) == 0 {
		t.Fatal("toy design selected no paths")
	}

	dirty := upsizeSelected(t, d, g, m0, 40)

	mInc, err := cal.Recalibrate(ctx, dirty)
	if err != nil {
		t.Fatal(err)
	}
	st := cal.Stats()
	if st.Incremental != 1 {
		t.Fatalf("expected 1 incremental recalibration, stats %+v", st)
	}
	if st.EndpointsReenumerated == 0 {
		t.Fatalf("incremental recalibration re-enumerated no endpoints: %+v", st)
	}

	// The cold reference: same design state, same warm start, fresh
	// session so nothing is shared with the calibrator under test.
	coldOpt := opt
	coldOpt.WarmWeights = m0.Weights
	mCold, err := core.CalibrateWithSession(ctx, engine.NewSession(g), cfg, coldOpt)
	if err != nil {
		t.Fatal(err)
	}

	if !sameFloats(mInc.Weights, mCold.Weights) {
		t.Error("incremental weights differ from cold calibration")
	}
	if len(mInc.Selection.Paths) != len(mCold.Selection.Paths) {
		t.Fatalf("selection sizes differ: incremental %d vs cold %d",
			len(mInc.Selection.Paths), len(mCold.Selection.Paths))
	}
	for i, p := range mInc.Selection.Paths {
		q := mCold.Selection.Paths[i]
		if p.Launch != q.Launch || p.Capture != q.Capture || p.GBASlack != q.GBASlack {
			t.Fatalf("selected path %d differs: %+v vs %+v", i, p, q)
		}
	}
	if !sameFloats(mInc.Problem.B, mCold.Problem.B) {
		t.Error("assembled targets differ from cold calibration")
	}
	if !sameFloats(mInc.Problem.Guard, mCold.Problem.Guard) {
		t.Error("assembled guards differ from cold calibration")
	}
	if mInc.Problem.A.NNZ() != mCold.Problem.A.NNZ() {
		t.Errorf("matrix NNZ differs: %d vs %d", mInc.Problem.A.NNZ(), mCold.Problem.A.NNZ())
	}
	if !sameFloats(mInc.MGBA.Slack, mCold.MGBA.Slack) {
		t.Error("mGBA endpoint slacks differ from cold calibration")
	}
}

// TestRecalibrateRepeatedBatches drives several transform/recalibrate
// rounds through one calibrator and cross-checks each round against cold.
func TestRecalibrateRepeatedBatches(t *testing.T) {
	d, g, sess := calDesign(t)
	ctx := context.Background()
	cfg := sta.DefaultConfig()
	opt := core.DefaultOptions()

	cal, err := core.NewCalibrator(sess, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cal.Calibrate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		dirty := upsizeSelected(t, d, g, m, 10)
		warm := m.Weights
		m, err = cal.Recalibrate(ctx, dirty)
		if err != nil {
			t.Fatal(err)
		}
		coldOpt := opt
		coldOpt.WarmWeights = warm
		mCold, err := core.CalibrateWithSession(ctx, engine.NewSession(g), cfg, coldOpt)
		if err != nil {
			t.Fatal(err)
		}
		if !sameFloats(m.Weights, mCold.Weights) {
			t.Fatalf("round %d: incremental weights differ from cold", round)
		}
	}
	if st := cal.Stats(); st.Incremental != 3 {
		t.Fatalf("expected 3 incremental recalibrations, stats %+v", st)
	}
}

// TestRecalibrateEmptyDirty mirrors the closure flow's round-boundary
// recalibrations with zero transforms since the last one: the result must
// still match a cold calibration (the warm start changes the solve).
func TestRecalibrateEmptyDirty(t *testing.T) {
	_, g, sess := calDesign(t)
	ctx := context.Background()
	cfg := sta.DefaultConfig()
	opt := core.DefaultOptions()

	cal, err := core.NewCalibrator(sess, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := cal.Calibrate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mInc, err := cal.Recalibrate(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	coldOpt := opt
	coldOpt.WarmWeights = m0.Weights
	mCold, err := core.CalibrateWithSession(ctx, engine.NewSession(g), cfg, coldOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(mInc.Weights, mCold.Weights) {
		t.Error("empty-dirty recalibration differs from cold")
	}
	if st := cal.Stats(); st.EndpointsReenumerated != 0 {
		t.Errorf("empty dirty set re-enumerated %d endpoints", st.EndpointsReenumerated)
	}
}

// TestInvalidateForcesCold asserts the escape hatch: after Invalidate the
// next Recalibrate runs the full pipeline.
func TestInvalidateForcesCold(t *testing.T) {
	d, g, sess := calDesign(t)
	ctx := context.Background()
	cal, err := core.NewCalibrator(sess, sta.DefaultConfig(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m0, err := cal.Calibrate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dirty := upsizeSelected(t, d, g, m0, 5)
	cal.Invalidate()
	if _, err := cal.Recalibrate(ctx, dirty); err != nil {
		t.Fatal(err)
	}
	if st := cal.Stats(); st.Cold != 2 || st.Incremental != 0 {
		t.Fatalf("expected the recalibration to go cold, stats %+v", st)
	}
}
