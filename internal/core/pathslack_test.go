package core_test

import (
	"context"
	"math"
	"testing"

	"mgba/internal/core"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

// PathSlackWithWeights with nil weights must reproduce the enumerator's
// GBA slack exactly, for every selected path — the identity the §3.2
// study's out-of-selection evaluation rests on.
func TestPathSlackWithWeightsIdentity(t *testing.T) {
	g, cfg := smallDesign(t)
	r := sta.Analyze(g, cfg)
	an := pba.NewAnalyzer(r)
	checked := 0
	for fi := range g.D.FFs {
		for _, p := range an.KWorst(fi, 5, nil) {
			got := core.PathSlackWithWeights(r, an, p, nil)
			if math.Abs(got-p.GBASlack) > 1e-9 {
				t.Fatalf("nil-weight slack %v != GBA slack %v", got, p.GBASlack)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d paths checked", checked)
	}
}

// With the fitted weights, the helper must agree with the Model's own
// mgba slack vector on the selected paths.
func TestPathSlackWithWeightsMatchesModel(t *testing.T) {
	g, cfg := smallDesign(t)
	opt := core.DefaultOptions()
	m, err := core.Calibrate(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Selection.Paths) == 0 {
		t.Skip("no violated paths")
	}
	an := pba.NewAnalyzer(m.GBA)
	mgba, err := m.PathSlacks("mgba")
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Selection.Paths {
		got := core.PathSlackWithWeights(m.GBA, an, p, m.Weights)
		if math.Abs(got-mgba[i]) > 1e-6 {
			t.Fatalf("path %d: helper %v vs model %v", i, got, mgba[i])
		}
	}
}

// Scaling a single path gate's weight by w must shift that path's slack by
// exactly (1-w) * CellDelay — the linearity of Eq. (8).
func TestPathSlackLinearInWeights(t *testing.T) {
	g, cfg := smallDesign(t)
	r := sta.Analyze(g, cfg)
	an := pba.NewAnalyzer(r)
	var p0 *pba.Path
	for fi := range g.D.FFs {
		if ps := an.KWorst(fi, 1, nil); len(ps) > 0 && ps[0].NumGates() > 2 {
			p0 = ps[0]
			break
		}
	}
	if p0 == nil {
		t.Skip("no multi-gate path")
	}
	target := p0.Cells[1] // a combinational gate on the path
	w := make([]float64, len(g.D.Instances))
	for i := range w {
		w[i] = 1
	}
	w[target] = 0.8
	got := core.PathSlackWithWeights(r, an, p0, w)
	want := p0.GBASlack + 0.2*r.CellDelay[target]
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("slack shift %v, want %v", got, want)
	}
}
