package core

import (
	"context"
	"fmt"
	"math"

	"mgba/internal/num"
	"mgba/internal/obs"
	"mgba/internal/rng"
	"mgba/internal/solver"
)

// fallbackChain returns the degradation ladder for a requested method:
// each subsequent entry trades accuracy or speed for numerical safety.
// GD is the terminal rung — full gradients with a monotone Armijo line
// search cannot diverge.
func fallbackChain(m Method) []Method {
	switch m {
	case MethodSCGRS:
		return []Method{MethodSCGRS, MethodSCG, MethodGD}
	case MethodSCG:
		return []Method{MethodSCG, MethodGD}
	case MethodFull:
		return []Method{MethodFull, MethodGD}
	default:
		return []Method{MethodGD}
	}
}

// runSolver executes one rung of the ladder. Each rung gets a fresh rng
// seeded identically, so a retry is deterministic and independent of how
// many iterations the rejected attempt consumed.
func (m *Model) runSolver(ctx context.Context, meth Method) ([]float64, solver.Stats, error) {
	r := rng.New(m.Opt.Seed)
	switch meth {
	case MethodGD:
		return solver.GD(ctx, m.Problem, m.Opt.Solver)
	case MethodSCG:
		return solver.SCG(ctx, m.Problem, m.Opt.Solver, r)
	case MethodSCGRS:
		return solver.SCGRS(ctx, m.Problem, m.Opt.Solver, r)
	case MethodFull:
		return solver.FullSolve(ctx, m.Problem, 12, 500, 1e-10)
	default:
		return nil, solver.Stats{}, fmt.Errorf("core: unknown method %v", meth)
	}
}

// healthCheck decides whether a solver result is trustworthy enough to
// apply to the timing graph. identityF is the objective at x = 0 (unit
// weights): any accepted fit must do at least as well as doing nothing.
func (m *Model) healthCheck(x []float64, st solver.Stats, identityF float64) string {
	if !num.AllFinite(x) {
		return "non-finite solution"
	}
	if st.Reason == solver.StopDiverged {
		return "diverged"
	}
	if st.NumericalEvents > 0 {
		return fmt.Sprintf("%d numerical events", st.NumericalEvents)
	}
	if st.Reverts > 0 && !st.Improved {
		return "safeguard reverts without net improvement"
	}
	// Judge the fit as applied: clamped weights, not the raw iterate.
	f := m.Problem.Objective(m.clampedDx(x))
	if math.IsNaN(f) || f > identityF*(1+1e-9)+1e-12 {
		return fmt.Sprintf("objective %.6g worse than identity %.6g", f, identityF)
	}
	return ""
}

// clampedDx maps a raw correction through the weight clamp and back.
func (m *Model) clampedDx(x []float64) []float64 {
	dx := make([]float64, len(x))
	for k := range x {
		w := 1 + x[k]
		if w < m.Opt.MinWeight {
			w = m.Opt.MinWeight
		}
		if w > m.Opt.MaxWeight {
			w = m.Opt.MaxWeight
		}
		dx[k] = w - 1
	}
	return dx
}

// solve runs the degradation ladder: try the requested method, reject
// numerically unhealthy results, retry with the next-safer method, and on
// total failure keep identity weights (x = 0) — never an error, because
// identity weights reproduce the plain cheap analysis, which is
// pessimism-safe whenever the cheap view is conservative.
func (m *Model) solve(ctx context.Context) error {
	if m.Opt.Method < MethodGD || m.Opt.Method > MethodFull {
		return fmt.Errorf("core: unknown method %v", m.Opt.Method)
	}
	if m.Opt.WarmWeights != nil {
		obsWarmStartHits.Inc()
		x0 := make([]float64, len(m.Columns))
		for k, c := range m.Columns {
			if c < len(m.Opt.WarmWeights) && m.Opt.WarmWeights[c] > 0 {
				x0[k] = m.Opt.WarmWeights[c] - 1
			}
		}
		m.Opt.Solver.X0 = x0
	}
	identityF := m.Problem.ObjectiveAtZero()
	for rung, meth := range fallbackChain(m.Opt.Method) {
		x, st, err := m.runSolver(ctx, meth)
		att := Attempt{Method: meth, Stats: st}
		if err == nil {
			att.Rejected = m.healthCheck(x, st, identityF)
		} else {
			if m.Opt.NoFallback {
				return err
			}
			att.Rejected = err.Error()
		}
		m.Attempts = append(m.Attempts, att)
		obsLadderAttempts.Inc()
		if att.Rejected != "" {
			obsLadderRejected.Inc()
			obs.Event("ladder_reject", "method", meth.String(), "reason", att.Rejected)
		}
		if err == nil && att.Rejected == "" {
			if rung > 0 {
				obsCalibDegraded.Inc()
			}
			m.Correction = x
			m.Stats = st
			m.Degraded = rung > 0
			m.Partial = st.Reason == solver.StopCancelled
			m.applyWeights(m.Correction)
			if m.Opt.StrictSafety || m.Degraded || m.Partial {
				m.enforceSafety()
			}
			return nil
		}
		if m.Opt.NoFallback {
			return fmt.Errorf("core: %v solve rejected: %s", meth, att.Rejected)
		}
		if err == nil && st.Reason == solver.StopCancelled {
			// Cancelled *and* unhealthy: no budget left to retry safer
			// methods; identity weights are the only safe answer.
			break
		}
	}
	// Total failure: identity weights (mGBA == cheap on every path).
	obsCalibDegraded.Inc()
	m.Correction = make([]float64, len(m.Columns))
	m.Weights = identity(len(m.G.D.Instances))
	m.Stats = solver.Stats{}
	m.Degraded = true
	m.SafetyScale = 0
	m.Fault = "all solver attempts rejected; using identity weights"
	if cancelled(ctx) {
		m.Partial = true
	}
	return nil
}

// applyWeights clamps the correction into the physical weight band and
// scatters it onto the per-instance weight vector.
func (m *Model) applyWeights(x []float64) {
	for k, c := range m.Columns {
		w := 1 + x[k]
		if w < m.Opt.MinWeight {
			w = m.Opt.MinWeight
		}
		if w > m.Opt.MaxWeight {
			w = m.Opt.MaxWeight
		}
		m.Weights[c] = w
	}
}

// enforceSafety projects the fitted correction back inside the Eq. (5)
// feasible region on the training selection. The modelled delay shift of
// row i is (A dx)_i and its floor is B_i - Guard_i. When the cheap view
// is conservative on a path (the default pair always is: GBA never
// under-times a path PBA would lengthen), both are non-positive — the
// target shift is a delay *reduction* — and scaling dx by t in [0,1]
// moves the row's shift linearly between 0 (identity, feasible) and its
// fitted value, so the largest safe t is the minimum over violating rows
// of floor_i / (A dx)_i — one linear pass, no re-solve. A cross-stage
// pair can put a path's floor above zero (the cheap view was optimistic:
// the routed wires got longer); no scale-back toward identity can lift
// such a row, so after scaling, liftOptimism pushes the correction *up*
// on whatever positive-floor rows the fit left short.
func (m *Model) enforceSafety() {
	dx := m.clampedCorrection()
	ax := m.Problem.A.MulVec(nil, dx)
	t := 1.0
	for i, axi := range ax {
		floor := m.Problem.B[i] - m.Problem.GuardAt(i)
		if floor <= 0 && axi < floor-1e-12 && axi < 0 {
			if ti := floor / axi; ti < t {
				t = ti
			}
		}
	}
	if t < 0 {
		t = 0
	}
	if t < 1 {
		for k := range dx {
			dx[k] *= t
		}
		m.applyWeights(dx)
	}
	m.SafetyScale = t
	m.liftOptimism(dx)
}

// liftOptimism is the scale-back's dual, for rows whose Eq. (5) floor is
// positive — paths where the *cheap* view is optimistic against golden,
// which only a cross-stage pair produces. A row short of its floor gets
// its deficit distributed over its columns as the minimum-norm update
// (delta_j proportional to a_ij), which raises the row's modelled delay
// to exactly the floor. Entries a_ij are non-negative delays, so a lift
// only ever adds pessimism to other rows — it can repair but never
// create a violation — and every pass shrinks the total deficit
// monotonically; iteration stops at feasibility, at the MaxWeight clamp
// (a saturated column caps how much delay a gate can absorb), or at the
// pass cap. Floors at or below zero never lift, so default-pair fits are
// untouched bit-for-bit.
func (m *Model) liftOptimism(dx []float64) {
	const passes = 64
	lifted := false
	for pass := 0; pass < passes; pass++ {
		progressed := false
		for i := 0; i < m.Problem.A.Rows(); i++ {
			floor := m.Problem.B[i] - m.Problem.GuardAt(i)
			if floor <= 0 {
				continue
			}
			// Live dot product: lifts applied earlier in this pass already
			// count, so rows sharing columns never stack the same deficit.
			axi := m.Problem.A.RowDot(i, dx)
			if axi >= floor-1e-12 {
				continue
			}
			idx, val := m.Problem.A.Row(i)
			var norm2 float64
			for _, v := range val {
				norm2 += v * v
			}
			if norm2 == 0 {
				continue
			}
			scale := (floor - axi) / norm2
			for k, j := range idx {
				nd := dx[j] + scale*val[k]
				if max := m.Opt.MaxWeight - 1; nd > max {
					nd = max
				}
				if nd > dx[j] {
					dx[j] = nd
					progressed = true
					lifted = true
				}
			}
		}
		if !progressed {
			break
		}
	}
	if lifted {
		m.applyWeights(dx)
	}
}
