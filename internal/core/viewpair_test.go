package core_test

import (
	"sort"
	"strings"
	"testing"

	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/sta"
)

// fakePair is a minimal registrable pair for registry tests.
type fakePair struct{ name string }

func (p fakePair) Name() string { return p.name }
func (p fakePair) Bind(*engine.Session, sta.Config, core.Options) (core.CheapView, core.GoldenProvider, error) {
	return nil, nil, nil
}

// TestLookupViewPairErrorListsSortedNames pins the error contract API
// layers rely on: an unknown pair name reports every registered pair,
// sorted, so the message can be surfaced verbatim as the valid choices.
func TestLookupViewPairErrorListsSortedNames(t *testing.T) {
	_, err := core.LookupViewPair("no-such-pair")
	if err == nil {
		t.Fatal("unknown pair name did not error")
	}
	names := core.ViewPairNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("ViewPairNames not sorted: %v", names)
	}
	want := "registered: " + strings.Join(names, ", ")
	if !strings.Contains(err.Error(), want) {
		t.Errorf("lookup error %q does not list the sorted registry %q", err, want)
	}
}

// TestRegisterViewPairDuplicatePanics: registration is an init-time
// affair, and a silent overwrite would swap calibration semantics under a
// running daemon — a duplicate name must panic.
func TestRegisterViewPairDuplicatePanics(t *testing.T) {
	p := fakePair{name: "dup-test-pair"}
	core.RegisterViewPair(p)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate RegisterViewPair did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "dup-test-pair") {
			t.Errorf("panic %v does not name the duplicate pair", r)
		}
	}()
	core.RegisterViewPair(p)
}
