package core

import "mgba/internal/obs"

// Calibration metrics: pipeline outcomes, warm-start reuse, and the
// solver degradation ladder. Phase timings live in the span histograms
// (span.calibrate.cold.*, span.calibrate.recalibrate.*) emitted by the
// Calibrator. Observation-only per the obs inertness contract.
var (
	obsCalibCold        = obs.NewCounter("core.calibrations.cold")
	obsCalibIncremental = obs.NewCounter("core.calibrations.incremental")
	obsCalibRebinds     = obs.NewCounter("core.calibrations.rebinds")
	obsCalibDegraded    = obs.NewCounter("core.calibrations.degraded")
	obsCalibAbandoned   = obs.NewCounter("core.calibrations.abandoned")
	obsWarmStartHits    = obs.NewCounter("core.warm_start.hits")
	obsLadderAttempts   = obs.NewCounter("core.ladder.attempts")
	obsLadderRejected   = obs.NewCounter("core.ladder.rejected")
	obsEndpointsReenum  = obs.NewCounter("core.endpoints.reenumerated")
)
