package core

import (
	"fmt"

	"mgba/internal/engine"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/pba"
	"mgba/internal/sta"
)

// PreroutePair is the name of the cross-stage view pair: a pre-route
// analysis corrected against the deterministically routed twin the
// generator emits (gen.Route).
const PreroutePair = "preroute"

// preroutePair corrects across design stages: the cheap view is the
// plain analysis of the bound (pre-route) session, and the golden
// provider replays selected paths against a routed twin of the design
// whose data-net wire delays carry the post-route perturbation. Clock
// nets are never perturbed, so clock arrivals, capture budgets and CRPR
// credits are bit-identical between the two views — the per-pair
// bookkeeping split §3 assumes — and the whole cross-stage gap lives in
// the data path, where the fitted per-gate corrections can absorb it.
// Unlike the default pair, the cheap view here can be *optimistic* on a
// path (routed wires mostly get longer), so fitted weights above one are
// the common case and Eq. (5) safety rides entirely on the one-sided
// penalty of Eq. (6).
type preroutePair struct{}

func (preroutePair) Name() string { return PreroutePair }

// StrictSafety marks the pair cross-stage: its cheap view can be
// optimistic, so selecting it forces exact Eq. (5) enforcement.
func (preroutePair) StrictSafety() bool { return true }

func (preroutePair) Bind(s *engine.Session, cfg sta.Config, opt Options) (CheapView, GoldenProvider, error) {
	return &sessionView{sess: s, cfg: cfg},
		&routedProvider{sess: s, cfg: cfg, seed: opt.Seed}, nil
}

// routedProvider maintains the routed twin: a design clone with
// perturbed data-net wire delays, its own timing session, and the routed
// analysis selected paths replay against. The twin is derived lazily and
// re-derived on Refresh and after Rebind; Update mirrors cheap-side cell
// changes into it without re-running the routed analysis.
type routedProvider struct {
	sess *engine.Session // the pre-route session the golden view shadows
	cfg  sta.Config
	seed uint64

	routed *netlist.Design
	rsess  *engine.Session
	rres   *sta.Result
}

// derive (re)builds the routed twin from the current pre-route design
// state. Route's perturbation is a pure function of (seed, net ID), so
// re-deriving after a run of mirrored cell updates lands on the same
// twin those updates maintained.
func (rp *routedProvider) derive() error {
	rd, err := gen.Route(rp.sess.G.D, rp.seed)
	if err != nil {
		return fmt.Errorf("core: routed golden: %w", err)
	}
	rg, err := graph.Build(rd)
	if err != nil {
		return fmt.Errorf("core: routed golden: %w", err)
	}
	if rp.rres != nil {
		rp.rres.Release()
	}
	rp.routed = rd
	rp.rsess = engine.NewSession(rg)
	rp.rres = rp.rsess.Run(rp.cfg)
	return nil
}

func (rp *routedProvider) Refresh() error { return rp.derive() }

// Update mirrors cheap-side cell changes into the routed twin. Sizing
// leaves nets and placement untouched, and the path replayer recomputes
// cell delays and slews from the design itself (the cached routed result
// only contributes wire delays, clock arrivals and CRPR credits, none of
// which a resize moves), so mirroring the cell pointers keeps the golden
// view exact without re-running the routed analysis.
func (rp *routedProvider) Update(dirty []int) error {
	if rp.routed == nil {
		return nil // nothing derived yet; the next Timer derives fresh
	}
	src := rp.sess.G.D
	if len(rp.routed.Instances) != len(src.Instances) {
		return fmt.Errorf("core: routed golden: twin out of shape (%d vs %d instances)",
			len(rp.routed.Instances), len(src.Instances))
	}
	for _, id := range dirty {
		if id < 0 || id >= len(src.Instances) {
			return fmt.Errorf("core: routed golden: instance %d out of range", id)
		}
		rp.routed.Instances[id].Cell = src.Instances[id].Cell
	}
	return nil
}

func (rp *routedProvider) Timer(cheap *sta.Result) (PathTimer, error) {
	if rp.rres == nil {
		if err := rp.derive(); err != nil {
			return nil, err
		}
	}
	return pba.NewAnalyzer(rp.rres), nil
}

// Rebind follows the calibrator onto a new session after a structural
// edit. The twin's topology no longer matches, so it is dropped; the
// next Refresh or Timer re-derives it from the new design state.
func (rp *routedProvider) Rebind(s *engine.Session) error {
	rp.sess = s
	rp.routed = nil
	rp.rsess = nil
	if rp.rres != nil {
		rp.rres.Release()
		rp.rres = nil
	}
	return nil
}
