package core_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/sta"
)

// mcmmSet returns the first n of a four-corner test set: the base corner
// plus margin-scaled / uncertainty-shifted companions.
func mcmmSet(n int) []core.CornerSpec {
	all := []core.CornerSpec{
		{Name: "typ"},
		{Name: "slow", DerateScale: 1.15, Uncertainty: 10},
		{Name: "fast", DerateScale: 0.85, Uncertainty: 5},
		{Name: "hot", DerateScale: 1.3, Uncertainty: 20},
	}
	return all[:n]
}

// TestSingleCornerSetMatchesGolden pins the N=1 contract against the
// committed golden file: a one-corner set with the identity spec must run
// the exact single-corner pipeline — same weights, corrections, QoR and
// checkpoint hashes on D3 + bufcase at Parallelism 1 and 4 — and must not
// grow any of the multi-corner machinery.
func TestSingleCornerSetMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden equivalence run is not short")
	}
	blob, err := os.ReadFile(calibGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	var want []calibGoldenRun
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, design := range []string{"d3", "bufcase"} {
		for _, par := range []int{1, 4} {
			opt := core.DefaultOptions()
			opt.Corners = mcmmSet(1)
			got := calibGoldenRunWith(t, design, par, opt)
			if i >= len(want) {
				t.Fatalf("golden has only %d runs", len(want))
			}
			if got != want[i] {
				t.Errorf("N=1 corner run %s/par%d diverged from the single-corner golden:\n got %+v\nwant %+v",
					design, par, got, want[i])
			}
			i++
		}
	}
}

// TestSingleCornerSetStaysPlain asserts the N=1 model carries none of the
// multi-corner state: no per-corner fits, no merged worst view.
func TestSingleCornerSetStaysPlain(t *testing.T) {
	_, _, sess := calDesign(t)
	opt := core.DefaultOptions()
	opt.Corners = mcmmSet(1)
	m, err := core.CalibrateWithSession(context.Background(), sess, sta.Config{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Corners != nil {
		t.Errorf("N=1 model grew %d corner fits, want none", len(m.Corners))
	}
	if m.WorstSlack != nil {
		t.Error("N=1 model grew a merged worst-slack view")
	}
	if got := m.MergedSlack(); !sameFloats(got, m.MGBA.Slack) {
		t.Error("N=1 MergedSlack is not the model's own slack vector")
	}
}

// TestCornersNeverOptimistic is the per-corner Eq. (5) contract at N=2
// and N=4, for both independent and joint fits: no corner's fitted model
// may be optimistic against that corner's own golden retimes beyond the
// epsilon guard, and the merged view must be the per-endpoint worst.
func TestCornersNeverOptimistic(t *testing.T) {
	_, _, sess := calDesign(t)
	ctx := context.Background()
	for _, n := range []int{2, 4} {
		for _, joint := range []bool{false, true} {
			opt := core.DefaultOptions()
			opt.Corners = mcmmSet(n)
			opt.JointFit = joint
			m, err := core.CalibrateWithSession(ctx, sess, sta.Config{}, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(m.Corners) != n {
				t.Fatalf("N=%d joint=%v: got %d corner fits", n, joint, len(m.Corners))
			}
			for _, cf := range m.Corners {
				cm, err := cf.Evaluate("mgba", opt.Epsilon)
				if err != nil {
					t.Fatal(err)
				}
				if cm.Optimism != 0 {
					t.Errorf("N=%d joint=%v corner %s: %d optimistic paths past the Eq. (5) guard",
						n, joint, cf.Spec.Name, cm.Optimism)
				}
				if cm.Paths == 0 {
					t.Errorf("N=%d joint=%v corner %s: fit covers no paths", n, joint, cf.Spec.Name)
				}
			}
			if len(m.WorstSlack) != len(m.MGBA.Slack) {
				t.Fatalf("N=%d joint=%v: merged view has %d endpoints, want %d",
					n, joint, len(m.WorstSlack), len(m.MGBA.Slack))
			}
			for i, w := range m.WorstSlack {
				for _, cf := range m.Corners {
					if s := cf.MGBA.Slack[i]; s < w {
						t.Fatalf("N=%d joint=%v endpoint %d: merged %v above corner %s's %v",
							n, joint, i, w, cf.Spec.Name, s)
					}
				}
			}
			if !sameFloats(m.MergedSlack(), m.WorstSlack) {
				t.Errorf("N=%d joint=%v: MergedSlack is not the worst-corner view", n, joint)
			}
		}
	}
}

// requireSameCorners asserts two multi-corner models carry bit-identical
// fits: weights, corrections, per-path slacks and the merged worst view.
func requireSameCorners(t *testing.T, got, want *core.Model) {
	t.Helper()
	if !sameFloats(got.Weights, want.Weights) {
		t.Error("base weights differ")
	}
	if len(got.Corners) != len(want.Corners) {
		t.Fatalf("corner fits: %d vs %d", len(got.Corners), len(want.Corners))
	}
	for i := range want.Corners {
		g, w := got.Corners[i], want.Corners[i]
		if g.Spec != w.Spec {
			t.Fatalf("corner %d spec %+v vs %+v", i, g.Spec, w.Spec)
		}
		if !sameFloats(g.Weights, w.Weights) {
			t.Errorf("corner %s weights differ", w.Spec.Name)
		}
		if !sameFloats(g.Correction, w.Correction) {
			t.Errorf("corner %s corrections differ", w.Spec.Name)
		}
		if !sameFloats(g.GoldenSlack, w.GoldenSlack) {
			t.Errorf("corner %s golden slacks differ", w.Spec.Name)
		}
		if !sameFloats(g.ModelSlack, w.ModelSlack) {
			t.Errorf("corner %s model slacks differ", w.Spec.Name)
		}
		if !sameFloats(g.MGBA.Slack, w.MGBA.Slack) {
			t.Errorf("corner %s mGBA slacks differ", w.Spec.Name)
		}
	}
	if !sameFloats(got.WorstSlack, want.WorstSlack) {
		t.Error("merged worst-slack views differ")
	}
	if got.WorstWNS != want.WorstWNS || got.WorstTNS != want.WorstTNS {
		t.Errorf("merged QoR (%v, %v) vs (%v, %v)",
			got.WorstWNS, got.WorstTNS, want.WorstWNS, want.WorstTNS)
	}
}

// TestMultiCornerRecalibrateMatchesCold is the incremental contract at
// N=2: after a sizing batch, the incremental Recalibrate (shared per-corner
// caches, dirty-only golden re-retimes) must be bit-identical to a cold
// calibration of the same design state with the same warm state. Two
// calibrators run side by side from identical colds so their per-corner
// warm starts agree.
func TestMultiCornerRecalibrateMatchesCold(t *testing.T) {
	d, g, sess := calDesign(t)
	ctx := context.Background()
	cfg := sta.Config{}
	opt := core.DefaultOptions()
	opt.Corners = mcmmSet(2)

	inc, err := core.NewCalibrator(sess, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewCalibrator(engine.NewSession(g), cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := inc.Calibrate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Calibrate(ctx); err != nil {
		t.Fatal(err)
	}

	dirty := upsizeSelected(t, d, g, m0, 30)

	mInc, err := inc.Recalibrate(ctx, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if st := inc.Stats(); st.Incremental != 1 {
		t.Fatalf("multi-corner recalibration did not run incrementally: stats %+v", st)
	}
	ref.Invalidate()
	mCold, err := ref.Calibrate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	requireSameCorners(t, mInc, mCold)
}

// TestMultiCornerStreamedMatchesMaterialized extends the streaming
// contract to corner sets: a shard-streamed multi-corner cold must produce
// the same per-corner fits and merged view a materialized one does.
func TestMultiCornerStreamedMatchesMaterialized(t *testing.T) {
	g, cfg := streamEquivDesign(t, 700, 90)
	ctx := context.Background()
	opt := core.DefaultOptions()
	opt.Corners = mcmmSet(2)
	mat, err := core.Calibrate(ctx, g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.StreamShard = 8
	str, err := core.Calibrate(ctx, g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if str.Bank == nil {
		t.Fatal("streamed model has no bank")
	}
	requireSameCorners(t, str, mat)
}
