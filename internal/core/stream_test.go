package core_test

import (
	"context"
	"os"
	"testing"

	"mgba/internal/core"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/sta"
)

// streamEquivDesign generates a violating design big enough to span
// several endpoint shards.
func streamEquivDesign(t *testing.T, gates, ffs int) (*graph.Graph, sta.Config) {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = gates, ffs
	cfg.Name = "stream-equiv"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return g, sta.Config{}
}

// requireStreamEquiv cold-calibrates g both materialized and streamed (at
// the given shard size) and asserts the two models are bit-identical in
// everything the fit produced: the assembled system, the column map, the
// solved correction and weights, the mGBA slacks per FF, and the banked
// path population against the materialized selection.
func requireStreamEquiv(t *testing.T, g *graph.Graph, cfg sta.Config, parallelism, shard int) {
	t.Helper()
	cfg.Parallelism = parallelism
	ctx := context.Background()
	opt := core.DefaultOptions()
	cold, err := core.Calibrate(ctx, g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.StreamShard = shard
	str, err := core.Calibrate(ctx, g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Selection.Paths) == 0 {
		t.Fatal("materialized cold selected no paths; design does not exercise the test")
	}
	if str.Bank == nil {
		t.Fatal("streamed model has no bank")
	}
	if str.Bank.Total() != len(cold.Selection.Paths) {
		t.Fatalf("bank has %d paths, materialized selected %d", str.Bank.Total(), len(cold.Selection.Paths))
	}
	for i, p := range cold.Selection.Paths {
		q := str.Bank.Store.PathAt(i)
		if q.Launch != p.Launch || q.Capture != p.Capture ||
			q.GBAArrival != p.GBAArrival || q.GBASlack != p.GBASlack {
			t.Fatalf("bank path %d header differs: %+v vs %+v", i, q, p)
		}
		if len(q.Cells) != len(p.Cells) {
			t.Fatalf("bank path %d has %d cells, want %d", i, len(q.Cells), len(p.Cells))
		}
		for j := range p.Cells {
			if q.Cells[j] != p.Cells[j] {
				t.Fatalf("bank path %d cell %d: %d vs %d", i, j, q.Cells[j], p.Cells[j])
			}
		}
	}
	for i, tm := range cold.Timings {
		if str.GoldenSlack[i] != tm.Slack {
			t.Fatalf("golden slack %d: %v vs %v", i, str.GoldenSlack[i], tm.Slack)
		}
	}
	if len(str.Columns) != len(cold.Columns) {
		t.Fatalf("columns: %d vs %d", len(str.Columns), len(cold.Columns))
	}
	for i := range cold.Columns {
		if str.Columns[i] != cold.Columns[i] {
			t.Fatalf("column %d: %d vs %d", i, str.Columns[i], cold.Columns[i])
		}
	}
	if !sameFloats(str.Problem.B, cold.Problem.B) {
		t.Fatal("targets differ")
	}
	if !sameFloats(str.Problem.Guard, cold.Problem.Guard) {
		t.Fatal("guards differ")
	}
	if str.Problem.A.Rows() != cold.Problem.A.Rows() || str.Problem.A.Cols() != cold.Problem.A.Cols() {
		t.Fatalf("matrix shape: %dx%d vs %dx%d",
			str.Problem.A.Rows(), str.Problem.A.Cols(), cold.Problem.A.Rows(), cold.Problem.A.Cols())
	}
	for i := 0; i < cold.Problem.A.Rows(); i++ {
		ci, cv := cold.Problem.A.Row(i)
		si, sv := str.Problem.A.Row(i)
		if len(ci) != len(si) {
			t.Fatalf("row %d nnz: %d vs %d", i, len(si), len(ci))
		}
		for j := range ci {
			if ci[j] != si[j] || cv[j] != sv[j] {
				t.Fatalf("row %d entry %d: (%d,%v) vs (%d,%v)", i, j, si[j], sv[j], ci[j], cv[j])
			}
		}
	}
	if !sameFloats(str.Correction, cold.Correction) {
		t.Fatal("corrections differ")
	}
	if !sameFloats(str.Weights, cold.Weights) {
		t.Fatal("weights differ")
	}
	if !sameFloats(str.MGBA.Slack, cold.MGBA.Slack) {
		t.Fatal("mGBA slacks differ")
	}
	for _, kind := range []string{"golden", "cheap", "mgba"} {
		a, err := cold.PathSlacks(kind)
		if err != nil {
			t.Fatal(err)
		}
		b, err := str.PathSlacks(kind)
		if err != nil {
			t.Fatal(err)
		}
		if !sameFloats(a, b) {
			t.Fatalf("PathSlacks(%q) differ", kind)
		}
	}
}

// TestStreamedColdBitIdentical is the streaming contract on a D3-sized
// design: shard-streamed enumeration and row assembly produce the exact
// model a materialized cold calibration does, at every Parallelism and
// shard size, including shards that straddle endpoint groups.
func TestStreamedColdBitIdentical(t *testing.T) {
	g, cfg := streamEquivDesign(t, 700, 90)
	for _, par := range []int{1, 4} {
		for _, shard := range []int{1, 7, 32, 1 << 20} {
			requireStreamEquiv(t, g, cfg, par, shard)
		}
	}
}

// TestStreamedColdBitIdenticalLarge runs the same contract on the 100k
// scale design; gated behind MGBA_SCALE=1 because it takes tens of
// seconds.
func TestStreamedColdBitIdenticalLarge(t *testing.T) {
	if os.Getenv("MGBA_SCALE") == "" {
		t.Skip("set MGBA_SCALE=1 to run the 100k streamed-equivalence test")
	}
	d, err := gen.Generate(gen.Large(100_000))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		requireStreamEquiv(t, g, sta.Config{}, par, 256)
	}
}

// TestStreamedMaxPathsError pins the documented restriction: streaming
// cannot reproduce the round-robin MaxPaths truncation, so a population
// over the cap is a loud error rather than a silently different model.
func TestStreamedMaxPathsError(t *testing.T) {
	g, cfg := streamEquivDesign(t, 700, 90)
	opt := core.DefaultOptions()
	opt.MaxPaths = 3
	opt.StreamShard = 8
	if _, err := core.Calibrate(context.Background(), g, cfg, opt); err == nil {
		t.Fatal("expected MaxPaths overflow error from streamed calibration")
	}
}

// TestStreamedMaxPathsBoundary pins the early cap check's edge: a cap
// exactly at the population streams fine, one below fails — and fails
// before any shard is retimed, so the error must mention the cap.
func TestStreamedMaxPathsBoundary(t *testing.T) {
	g, cfg := streamEquivDesign(t, 700, 90)
	ctx := context.Background()
	opt := core.DefaultOptions()
	opt.StreamShard = 8
	m, err := core.Calibrate(ctx, g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	total := m.Bank.Total()
	if total == 0 {
		t.Fatal("design banked no paths; boundary not exercised")
	}
	opt.MaxPaths = total
	if _, err := core.Calibrate(ctx, g, cfg, opt); err != nil {
		t.Fatalf("MaxPaths == population must stream: %v", err)
	}
	opt.MaxPaths = total - 1
	if _, err := core.Calibrate(ctx, g, cfg, opt); err == nil {
		t.Fatal("MaxPaths one below the population did not error")
	}
}

// TestStreamedRecalibrateRunsCold verifies the cache contract: a streamed
// cold leaves the incremental cache empty, so Recalibrate re-runs the
// (streamed) cold pipeline and still matches a materialized cold of the
// same state.
func TestStreamedRecalibrateRunsCold(t *testing.T) {
	d, g, sess := calDesign(t)
	ctx := context.Background()
	cfg := sta.Config{}
	opt := core.DefaultOptions()
	opt.StreamShard = 8
	c, err := core.NewCalibrator(sess, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := c.Calibrate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	dirty := upsizeSelectedBank(t, d, g, m0, 3)
	m1, err := c.Recalibrate(ctx, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Cold != 2 || got.Incremental != 0 {
		t.Fatalf("streamed calibrator stats %+v, want 2 cold / 0 incremental", got)
	}
	// The re-run must match a materialized cold of the same design state
	// with the same warm start.
	mopt := core.DefaultOptions()
	mopt.WarmWeights = m0.Weights
	ref, err := core.CalibrateWithSession(ctx, sess, cfg, mopt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(m1.Weights, ref.Weights) {
		t.Fatal("streamed recalibrate weights differ from materialized cold")
	}
}

// upsizeSelectedBank is upsizeSelected for a streamed model, whose kept
// paths live in the bank instead of the selection.
func upsizeSelectedBank(t *testing.T, d *netlist.Design, g *graph.Graph, m *core.Model, n int) []int {
	t.Helper()
	seen := make(map[int]bool)
	var dirty []int
	note := func(id int) {
		if !seen[id] {
			seen[id] = true
			dirty = append(dirty, id)
		}
	}
	resized := 0
	var cells []int
	for i := 0; i < m.Bank.Total(); i++ {
		cells = m.Bank.Store.AppendCells(cells[:0], i)
		for _, id := range cells {
			if resized == n {
				return dirty
			}
			inst := d.Instances[id]
			if seen[id] || inst.IsFF() {
				continue
			}
			to := d.Lib.Upsize(inst.Cell)
			if to == nil {
				continue
			}
			if err := d.Resize(inst, to); err != nil {
				continue
			}
			resized++
			note(id)
			for _, nid := range inst.Inputs {
				if drv := d.Nets[nid].Driver; drv >= 0 && !g.IsClock(drv) {
					note(drv)
				}
			}
		}
	}
	if resized == 0 {
		t.Fatal("no gate on the banked selection could be upsized")
	}
	return dirty
}
