package core_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mgba/internal/core"
	"mgba/internal/engine"
	"mgba/internal/fixtures"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/sta"
)

// The golden file pins the exact numerical behavior of the default
// calibration pipeline — weights, corrections, QoR and checkpoint-content
// hashes on D3 and the buffer motif at Parallelism 1 and 4, for both a
// cold calibration and an incremental recalibration after a sizing batch.
// It was generated before the view-pair refactor and guards it: the
// default GBA<->PBA pair must stay bit-identical to the historical
// hard-wired pipeline. Regenerate with -update-golden only for a
// deliberate behavior change.
var updateCalibGolden = flag.Bool("update-golden", false, "rewrite the calibration golden file")

const calibGoldenPath = "testdata/calib_golden.json"

type calibGoldenRun struct {
	Design string `json:"design"`
	Par    int    `json:"parallelism"`

	Paths   int `json:"paths"`
	Columns int `json:"columns"`

	GBAWNS  float64 `json:"gba_wns"`
	GBATNS  float64 `json:"gba_tns"`
	MGBAWNS float64 `json:"mgba_wns"`
	MGBATNS float64 `json:"mgba_tns"`

	MSE       float64 `json:"mse"`
	Phi       float64 `json:"phi"`
	PassRatio float64 `json:"pass_ratio"`
	Optimism  int     `json:"optimism"`

	WeightsHash    string `json:"weights_hash"`
	CorrectionHash string `json:"correction_hash"`

	// The incremental leg: a deterministic sizing batch applied to the
	// calibrated design, recalibrated through the persistent cache. The
	// checkpoint hash digests what a serve snapshot would persist — the
	// mutated design plus the refitted weights.
	RecalWeightsHash string  `json:"recal_weights_hash"`
	RecalMGBAWNS     float64 `json:"recal_mgba_wns"`
	RecalMGBATNS     float64 `json:"recal_mgba_tns"`
	CheckpointHash   string  `json:"checkpoint_hash"`
}

// calibHashDesign digests every design field a calibration or sizing pass
// can observe, format-independently (mirrors the closure golden's digest).
func calibHashDesign(d *netlist.Design) string {
	h := fnv.New64a()
	w64 := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	wf := func(f float64) { w64(math.Float64bits(f)) }
	wi := func(i int) { w64(uint64(int64(i))) }
	wf(d.ClockPeriod)
	wi(d.ClockRoot)
	wi(len(d.Instances))
	for _, in := range d.Instances {
		wi(in.ID)
		h.Write([]byte(in.Cell.Name))
		wf(in.X)
		wf(in.Y)
		wi(in.Output)
		wi(in.Clock)
		if in.Dead {
			wi(1)
		} else {
			wi(0)
		}
		wi(len(in.Inputs))
		for _, n := range in.Inputs {
			wi(n)
		}
	}
	wi(len(d.Nets))
	for _, n := range d.Nets {
		wi(n.Driver)
		wf(n.WireCap)
		wf(n.WireDelay)
		wi(len(n.Sinks))
		for _, s := range n.Sinks {
			wi(s)
		}
	}
	wi(len(d.FFs))
	for _, ff := range d.FFs {
		wi(ff)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func calibHashFloats(ws []float64) string {
	h := fnv.New64a()
	for _, w := range ws {
		v := math.Float64bits(w)
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func calibGoldenDesign(t *testing.T, name string) *netlist.Design {
	t.Helper()
	var d *netlist.Design
	var err error
	switch name {
	case "d3":
		d, err = gen.Generate(gen.Suite()[2])
	case "bufcase":
		d, err = fixtures.BufferCase()
	default:
		t.Fatalf("unknown golden design %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func calibGoldenRunOne(t *testing.T, design string, par int) calibGoldenRun {
	t.Helper()
	return calibGoldenRunWith(t, design, par, core.DefaultOptions())
}

// calibGoldenRunWith runs the golden pipeline under explicit options, so
// variants that must stay bit-identical to the default pipeline (the N=1
// corner set) can be checked against the same committed file.
func calibGoldenRunWith(t *testing.T, design string, par int, opt core.Options) calibGoldenRun {
	t.Helper()
	ctx := context.Background()
	d := calibGoldenDesign(t, design)
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sta.DefaultConfig()
	cfg.Parallelism = par

	cal, err := core.NewCalibrator(engine.NewSession(g), cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cal.Calibrate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := m.Evaluate("mgba")
	if err != nil {
		t.Fatal(err)
	}
	run := calibGoldenRun{
		Design:  design,
		Par:     par,
		Paths:   len(m.Selection.Paths),
		Columns: len(m.Columns),
		GBAWNS:  m.GBA.WNS, GBATNS: m.GBA.TNS,
		MGBAWNS: m.MGBA.WNS, MGBATNS: m.MGBA.TNS,
		MSE: mt.MSE, Phi: mt.Phi, PassRatio: mt.PassRatio, Optimism: mt.Optimism,
		WeightsHash:    calibHashFloats(m.Weights),
		CorrectionHash: calibHashFloats(m.Correction),
	}

	// Incremental leg: a deterministic sizing batch over the selection,
	// refit through the cache, then digest the checkpoint content (design
	// + weights) a serve snapshot would persist.
	dirty := upsizeSelected(t, d, g, m, 25)
	mr, err := cal.Recalibrate(ctx, dirty)
	if err != nil {
		t.Fatal(err)
	}
	run.RecalWeightsHash = calibHashFloats(mr.Weights)
	run.RecalMGBAWNS, run.RecalMGBATNS = mr.MGBA.WNS, mr.MGBA.TNS
	run.CheckpointHash = calibHashDesign(d) + ":" + calibHashFloats(mr.Weights)
	return run
}

// TestDefaultPairMatchesGolden pins the default calibration pipeline
// against the pre-refactor golden: bit-identical weights, corrections,
// QoR and checkpoint hashes on D3 + bufcase at Parallelism 1 and 4.
func TestDefaultPairMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden equivalence run is not short")
	}
	var runs []calibGoldenRun
	for _, design := range []string{"d3", "bufcase"} {
		for _, par := range []int{1, 4} {
			runs = append(runs, calibGoldenRunOne(t, design, par))
		}
	}
	if *updateCalibGolden {
		blob, err := json.MarshalIndent(runs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(calibGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(calibGoldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", calibGoldenPath)
		return
	}
	blob, err := os.ReadFile(calibGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	var want []calibGoldenRun
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(runs) {
		t.Fatalf("golden has %d runs, produced %d", len(want), len(runs))
	}
	for i, got := range runs {
		if got != want[i] {
			t.Errorf("run %s/par%d diverged from pre-refactor golden:\n got %+v\nwant %+v",
				got.Design, got.Par, got, want[i])
		}
	}
}
