// Package faultinject provides a process-global hook registry used to
// inject numerical and I/O faults into the calibration pipeline for
// testing. Every hook point compiled into production code (solver, netio,
// aocv) first consults a single atomic flag, so the disarmed cost is one
// relaxed atomic load and a branch — no locks, no allocations.
//
// The registry is intended for tests only. Tests that arm hooks must not
// run in parallel with other tests that exercise the hooked code paths;
// the fault suites in this repository serialise themselves accordingly.
package faultinject

import (
	"io"
	"sync"
	"sync/atomic"
)

// Point identifies a hook location compiled into production code.
type Point int

const (
	// SolverStart fires at solver entry. An error hook here makes the
	// solver fail immediately, as if a numerical precondition failed.
	SolverStart Point = iota
	// SolverGradient fires after each gradient evaluation with the
	// gradient vector; a slice hook may corrupt it in place (e.g. NaN).
	SolverGradient
	// SolverStep fires with the proposed step length before it is
	// applied; a float hook may replace it (e.g. with a divergent step).
	SolverStep
	// NetioRead wraps the reader passed to netio.Load.
	NetioRead
	// NetioWrite wraps the writer passed to netio.Save.
	NetioWrite
	// AOCVLookup fires with each interpolated derate; a float hook may
	// replace it (e.g. with NaN) to simulate a corrupt derate table.
	AOCVLookup
	// PathEnum fires once per endpoint enumerated by the PBA k-worst path
	// search, carrying the endpoint's D.FFs position. It is observation
	// only — the hook's return value is discarded — and exists so tests
	// can count enumerations or trigger a context cancellation in the
	// middle of an incremental recalibration.
	PathEnum
	// SparseRowPatch fires with the normalized values of a CSR row about
	// to be patched in place (sparse SetRow/InsertRow); a slice hook may
	// corrupt the row (e.g. NaN) before it is stored, simulating a bad
	// incremental assembly.
	SparseRowPatch
	// NetioSyncDir fires before netio's atomic writer fsyncs the parent
	// directory after the rename; an error hook simulates a directory
	// sync failing in the rename-then-crash window.
	NetioSyncDir
	// ServeAdmit fires when the calibration daemon admits a request,
	// before any work is done; an error hook simulates admission-layer
	// failure (the server answers 503 + Retry-After, never a hang).
	ServeAdmit
	// ServeEvict fires when the session registry evicts a session (LRU
	// capacity or idle timeout), before the eviction snapshot; an error
	// hook makes the pre-eviction snapshot fail, simulating eviction
	// racing a full disk.
	ServeEvict
	// ServeSnapshot fires before the daemon persists a session snapshot;
	// an error hook simulates a crash window in which recent batches
	// never reach disk (the session stays dirty and is retried).
	ServeSnapshot
	numPoints
)

// FloatHook rewrites a scalar value at a hook point.
type FloatHook func(v float64) float64

// SliceHook may mutate the given vector in place.
type SliceHook func(v []float64)

// ErrHook returns a non-nil error to trigger a failure at a hook point.
type ErrHook func() error

// ReaderHook wraps a reader (e.g. to truncate or corrupt the stream).
type ReaderHook func(r io.Reader) io.Reader

// WriterHook wraps a writer (e.g. to fail partway through a write).
type WriterHook func(w io.Writer) io.Writer

var (
	armed atomic.Bool

	mu      sync.RWMutex
	floats  map[Point]FloatHook
	slices  map[Point]SliceHook
	errs    map[Point]ErrHook
	readers map[Point]ReaderHook
	writers map[Point]WriterHook
)

// Armed reports whether any hook is installed. Production hook points use
// it as a fast-path guard before taking the registry lock.
func Armed() bool { return armed.Load() }

func rearm() {
	armed.Store(len(floats)+len(slices)+len(errs)+len(readers)+len(writers) > 0)
}

// SetFloat installs a scalar-rewriting hook at p. A nil hook removes it.
func SetFloat(p Point, h FloatHook) {
	mu.Lock()
	defer mu.Unlock()
	if floats == nil {
		floats = make(map[Point]FloatHook)
	}
	if h == nil {
		delete(floats, p)
	} else {
		floats[p] = h
	}
	rearm()
}

// SetSlice installs a vector-mutating hook at p. A nil hook removes it.
func SetSlice(p Point, h SliceHook) {
	mu.Lock()
	defer mu.Unlock()
	if slices == nil {
		slices = make(map[Point]SliceHook)
	}
	if h == nil {
		delete(slices, p)
	} else {
		slices[p] = h
	}
	rearm()
}

// SetError installs an error hook at p. A nil hook removes it.
func SetError(p Point, h ErrHook) {
	mu.Lock()
	defer mu.Unlock()
	if errs == nil {
		errs = make(map[Point]ErrHook)
	}
	if h == nil {
		delete(errs, p)
	} else {
		errs[p] = h
	}
	rearm()
}

// SetReader installs a reader-wrapping hook at p. A nil hook removes it.
func SetReader(p Point, h ReaderHook) {
	mu.Lock()
	defer mu.Unlock()
	if readers == nil {
		readers = make(map[Point]ReaderHook)
	}
	if h == nil {
		delete(readers, p)
	} else {
		readers[p] = h
	}
	rearm()
}

// SetWriter installs a writer-wrapping hook at p. A nil hook removes it.
func SetWriter(p Point, h WriterHook) {
	mu.Lock()
	defer mu.Unlock()
	if writers == nil {
		writers = make(map[Point]WriterHook)
	}
	if h == nil {
		delete(writers, p)
	} else {
		writers[p] = h
	}
	rearm()
}

// Reset removes every installed hook and disarms the registry.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	floats = nil
	slices = nil
	errs = nil
	readers = nil
	writers = nil
	armed.Store(false)
}

// Float64 applies the scalar hook at p, if armed and installed.
func Float64(p Point, v float64) float64 {
	if !armed.Load() {
		return v
	}
	mu.RLock()
	h := floats[p]
	mu.RUnlock()
	if h == nil {
		return v
	}
	return h(v)
}

// Slice applies the vector hook at p, if armed and installed.
func Slice(p Point, v []float64) {
	if !armed.Load() {
		return
	}
	mu.RLock()
	h := slices[p]
	mu.RUnlock()
	if h != nil {
		h(v)
	}
}

// Err returns the injected error at p, or nil.
func Err(p Point) error {
	if !armed.Load() {
		return nil
	}
	mu.RLock()
	h := errs[p]
	mu.RUnlock()
	if h == nil {
		return nil
	}
	return h()
}

// Reader wraps r with the hook at p, if armed and installed.
func Reader(p Point, r io.Reader) io.Reader {
	if !armed.Load() {
		return r
	}
	mu.RLock()
	h := readers[p]
	mu.RUnlock()
	if h == nil {
		return r
	}
	return h(r)
}

// Writer wraps w with the hook at p, if armed and installed.
func Writer(p Point, w io.Writer) io.Writer {
	if !armed.Load() {
		return w
	}
	mu.RLock()
	h := writers[p]
	mu.RUnlock()
	if h == nil {
		return w
	}
	return h(w)
}
