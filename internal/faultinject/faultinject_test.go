package faultinject

import (
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

func TestDisarmedIsPassthrough(t *testing.T) {
	Reset()
	if Armed() {
		t.Fatal("registry armed after Reset")
	}
	if got := Float64(SolverStep, 1.5); got != 1.5 {
		t.Fatalf("Float64 = %v, want 1.5", got)
	}
	v := []float64{1, 2}
	Slice(SolverGradient, v)
	if v[0] != 1 || v[1] != 2 {
		t.Fatalf("Slice mutated vector while disarmed: %v", v)
	}
	if err := Err(SolverStart); err != nil {
		t.Fatalf("Err = %v, want nil", err)
	}
	r := strings.NewReader("x")
	if got := Reader(NetioRead, r); got != io.Reader(r) {
		t.Fatal("Reader did not pass through while disarmed")
	}
}

func TestHooksApplyAndReset(t *testing.T) {
	defer Reset()

	SetFloat(SolverStep, func(float64) float64 { return math.Inf(1) })
	if !Armed() {
		t.Fatal("registry not armed after SetFloat")
	}
	if got := Float64(SolverStep, 0.1); !math.IsInf(got, 1) {
		t.Fatalf("Float64 = %v, want +Inf", got)
	}
	// Hook at a different point of the same kind is not affected.
	if got := Float64(AOCVLookup, 1.1); got != 1.1 {
		t.Fatalf("Float64(AOCVLookup) = %v, want 1.1", got)
	}

	SetSlice(SolverGradient, func(v []float64) {
		for i := range v {
			v[i] = math.NaN()
		}
	})
	g := []float64{3, 4}
	Slice(SolverGradient, g)
	if !math.IsNaN(g[0]) || !math.IsNaN(g[1]) {
		t.Fatalf("Slice hook not applied: %v", g)
	}

	want := errors.New("boom")
	SetError(SolverStart, func() error { return want })
	if got := Err(SolverStart); !errors.Is(got, want) {
		t.Fatalf("Err = %v, want %v", got, want)
	}

	SetReader(NetioRead, func(r io.Reader) io.Reader { return io.LimitReader(r, 2) })
	b, err := io.ReadAll(Reader(NetioRead, strings.NewReader("hello")))
	if err != nil || string(b) != "he" {
		t.Fatalf("wrapped read = %q, %v; want \"he\", nil", b, err)
	}

	Reset()
	if Armed() {
		t.Fatal("registry still armed after Reset")
	}
	if got := Float64(SolverStep, 0.1); got != 0.1 {
		t.Fatalf("hook survived Reset: %v", got)
	}
}

func TestNilHookRemoves(t *testing.T) {
	defer Reset()
	SetFloat(SolverStep, func(float64) float64 { return 0 })
	SetFloat(SolverStep, nil)
	if Armed() {
		t.Fatal("registry armed after removing last hook")
	}
	if got := Float64(SolverStep, 2.5); got != 2.5 {
		t.Fatalf("Float64 = %v, want 2.5", got)
	}
}
