package engine

// Test-only accessors for session internals.

// NumClockStates reports how many clock configurations the session has
// built and cached so far.
func (s *Session) NumClockStates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clocks)
}

// FreeScratch reports how many released per-run buffer sets sit in the
// session pool.
func (s *Session) FreeScratch() int {
	s.scratchMu.Lock()
	defer s.scratchMu.Unlock()
	return len(s.free)
}

// NumLevels reports the number of topological levels of the data DAG.
func (s *Session) NumLevels() int { return len(s.levelOff) - 1 }
