package engine

import "mgba/internal/par"

// grain is the smallest range worth handing to its own worker: below it,
// scheduling overhead costs more than the work.
const grain = 64

// parallelFor runs fn over [0, n) in grain-sized blocks on the shared
// internal/par pool, using up to r.par workers. fn(lo, hi) must touch
// only state owned by its range — under that contract the schedule is
// free of data races and the output is bitwise identical to the
// sequential order (the block boundaries are fixed by n alone).
func (r *Result) parallelFor(n int, fn func(lo, hi int)) {
	if r.par <= 1 || n <= grain {
		fn(0, n)
		return
	}
	par.For(r.par, n, grain, fn)
}
