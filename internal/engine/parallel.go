package engine

import "sync"

// grain is the smallest range worth handing to its own worker: below it,
// goroutine startup and the WaitGroup rendezvous cost more than the work.
const grain = 64

// parallelFor runs fn over [0, n) split into at most r.par contiguous
// chunks, one goroutine each. fn(lo, hi) must touch only state owned by
// its range — under that contract the schedule is free of data races and
// the output is bitwise identical to the sequential order.
func (r *Result) parallelFor(n int, fn func(lo, hi int)) {
	if r.par <= 1 || n <= grain {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > r.par {
		chunks = r.par
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
