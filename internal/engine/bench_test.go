package engine_test

import (
	"testing"

	"mgba/internal/engine"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/netlist"
)

func benchDesign(b *testing.B, cfg gen.Config) (*netlist.Design, *graph.Graph) {
	b.Helper()
	d, err := gen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		b.Fatal(err)
	}
	return d, g
}

// BenchmarkSessionReuseVsColdAnalyze measures one closure-loop iteration's
// timing cost — a weighted mGBA re-timing of a mid-size design — first the
// old way (cold Analyze: rebuild depths, boxes, clock tree, credits and
// every buffer per call) and then through a reused session (one Run +
// Release, allocation-free in the steady state). The session variant is
// the acceptance target: >= 1.5x faster per iteration.
func BenchmarkSessionReuseVsColdAnalyze(b *testing.B) {
	d, g := benchDesign(b, gen.Suite()[2]) // D3: 3000-gate cone design
	cfg := engine.DefaultConfig()
	cfg.Weights = make([]float64, len(d.Instances))
	for i := range cfg.Weights {
		cfg.Weights[i] = 1
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := engine.Analyze(g, cfg)
			_ = r.WNS
			r.Release()
		}
	})
	b.Run("session", func(b *testing.B) {
		s := engine.NewSession(g)
		s.Run(cfg).Release() // warm the clock cache and the scratch pool
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := s.Run(cfg)
			_ = r.WNS
			r.Release()
		}
	})
}

// BenchmarkLevelParallelPropagation compares sequential and level-parallel
// propagation on the largest generator preset (D2, 6000 gates). Both
// settings share one warmed session, so the measured delta is purely the
// forward/backward sweep schedule. On a single-CPU host Parallelism 0
// resolves to one worker and the two cases coincide — the comparison is
// only meaningful on multicore hardware.
func BenchmarkLevelParallelPropagation(b *testing.B) {
	_, g := benchDesign(b, gen.Suite()[1]) // D2: largest preset
	s := engine.NewSession(g)
	for _, bc := range []struct {
		name string
		par  int
	}{
		{"sequential", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := engine.DefaultConfig()
			cfg.Parallelism = bc.par
			s.Run(cfg).Release() // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := s.Run(cfg)
				_ = r.WNS
				r.Release()
			}
		})
	}
}

// BenchmarkCRPRCreditReuse measures exact per-pair CRPR credit queries —
// the PBA retiming hot spot — against a cold analysis per batch versus a
// session whose leaf-pair credit matrix is built once. This is the
// regression guard for hoisting the per-result credit memo into the
// session.
func BenchmarkCRPRCreditReuse(b *testing.B) {
	_, g := benchDesign(b, gen.Suite()[5]) // D6: deep clock tree, heavy joins
	cfg := engine.DefaultConfig()
	nf := len(g.D.FFs)

	queryAll := func(r *engine.Result) float64 {
		var sum float64
		for launch := 0; launch < nf; launch++ {
			for capture := 0; capture < nf; capture += 7 {
				sum += r.CRPRCredit(launch, capture)
			}
		}
		return sum
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := engine.Analyze(g, cfg)
			_ = queryAll(r)
			r.Release()
		}
	})
	b.Run("session", func(b *testing.B) {
		s := engine.NewSession(g)
		s.Run(cfg).Release() // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := s.Run(cfg)
			_ = queryAll(r)
			r.Release()
		}
	})
}
