package engine_test

import (
	"context"
	"math"
	"sync"
	"testing"

	"mgba/internal/cells"
	"mgba/internal/engine"
	"mgba/internal/gen"
	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/rng"
)

// buildDesign generates a design preset and its timing graph.
func buildDesign(t *testing.T, cfg gen.Config) (*netlist.Design, *graph.Graph) {
	t.Helper()
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, g
}

// seaOfGates is a shrunken D8-style preset: reconvergent sea-of-gates
// logic, deep levels, advanced node. Small enough for -race test runs.
func seaOfGates() gen.Config {
	cfg := gen.Suite()[7]
	cfg.Name = "sea-test"
	cfg.Gates = 2000
	cfg.FFs = 220
	cfg.MaxLevel = 24
	return cfg
}

func eq(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// requireIdentical asserts exact (bitwise) equality of two analyses of the
// same design. The parallel schedule writes each slot from already-final
// inputs, so equality must be exact, not tolerance-based.
func requireIdentical(t *testing.T, want, got *engine.Result, label string) {
	t.Helper()
	for v := range want.ArrivalOut {
		if !eq(want.ArrivalOut[v], got.ArrivalOut[v]) {
			t.Fatalf("%s: instance %d arrival %v != %v", label, v, got.ArrivalOut[v], want.ArrivalOut[v])
		}
		if !eq(want.RequiredOut[v], got.RequiredOut[v]) {
			t.Fatalf("%s: instance %d required %v != %v", label, v, got.RequiredOut[v], want.RequiredOut[v])
		}
		if !eq(want.Slew[v], got.Slew[v]) {
			t.Fatalf("%s: instance %d slew %v != %v", label, v, got.Slew[v], want.Slew[v])
		}
		if !eq(want.CellDelay[v], got.CellDelay[v]) {
			t.Fatalf("%s: instance %d delay %v != %v", label, v, got.CellDelay[v], want.CellDelay[v])
		}
	}
	for fi := range want.Slack {
		if !eq(want.Slack[fi], got.Slack[fi]) {
			t.Fatalf("%s: endpoint %d slack %v != %v", label, fi, got.Slack[fi], want.Slack[fi])
		}
		if !eq(want.HoldSlack[fi], got.HoldSlack[fi]) {
			t.Fatalf("%s: endpoint %d hold slack %v != %v", label, fi, got.HoldSlack[fi], want.HoldSlack[fi])
		}
	}
	if !eq(want.WNS, got.WNS) || !eq(want.TNS, got.TNS) {
		t.Fatalf("%s: WNS/TNS %v/%v != %v/%v", label, got.WNS, got.TNS, want.WNS, want.TNS)
	}
}

// TestParallelEquivalence checks the tentpole determinism contract: every
// Parallelism setting — and a cold one-shot Analyze — produces bitwise
// identical results on both a cone design and a reconvergent sea design.
func TestParallelEquivalence(t *testing.T) {
	for _, dcfg := range []gen.Config{gen.Toy(), seaOfGates()} {
		_, g := buildDesign(t, dcfg)
		s := engine.NewSession(g)

		cfg := engine.DefaultConfig()
		cfg.Parallelism = 1
		base := s.Run(cfg)
		defer base.Release()

		for _, p := range []int{0, 2, 4} {
			pcfg := cfg
			pcfg.Parallelism = p
			r := s.Run(pcfg)
			requireIdentical(t, base, r, dcfg.Name)
			r.Release()
		}

		cold := engine.Analyze(g, cfg)
		requireIdentical(t, base, cold, dcfg.Name+"/cold")
		cold.Release()
	}
}

// TestParallelEquivalenceWeighted repeats the check with an mGBA weight
// vector, exercising the weighted delay basis under the parallel schedule.
func TestParallelEquivalenceWeighted(t *testing.T) {
	d, g := buildDesign(t, gen.Toy())
	s := engine.NewSession(g)

	cfg := engine.DefaultConfig()
	cfg.Weights = make([]float64, len(d.Instances))
	r := rng.New(7)
	for i := range cfg.Weights {
		cfg.Weights[i] = 0.8 + 0.2*r.Float64()
	}

	cfg.Parallelism = 1
	seq := s.Run(cfg)
	defer seq.Release()
	cfg.Parallelism = 0
	par := s.Run(cfg)
	defer par.Release()
	requireIdentical(t, seq, par, "weighted")
}

// TestIncrementalVsFullSession drives the incremental Update path through
// the session API: repeated rng-drawn gate resizes, each incrementally
// updated and compared (exactly) against a fresh full Run of the same
// session.
func TestIncrementalVsFullSession(t *testing.T) {
	d, g := buildDesign(t, gen.Toy())
	s := engine.NewSession(g)
	cfg := engine.DefaultConfig()
	r := s.Run(cfg)
	defer r.Release()

	rnd := rng.New(99)
	resized := 0
	for iter := 0; iter < 40 && resized < 20; iter++ {
		v := int(g.Topo[rnd.Intn(len(g.Topo))])
		in := d.Instances[v]
		if in.IsFF() {
			continue
		}
		to := d.Lib.Upsize(in.Cell)
		if iter%2 == 1 || to == nil {
			if down := d.Lib.Downsize(in.Cell); down != nil {
				to = down
			}
		}
		if to == nil {
			continue
		}
		if err := d.Resize(in, to); err != nil {
			t.Fatal(err)
		}
		resized++

		// The resized gate changed its own delay and, via its input pin
		// cap, the load of every driver feeding it.
		modified := []int{v}
		for _, net := range in.Inputs {
			if drv := d.Nets[net].Driver; drv >= 0 {
				modified = append(modified, drv)
			}
		}
		r.Update(modified)

		full := s.Run(cfg)
		requireIdentical(t, full, r, "incremental")
		full.Release()
	}
	if resized < 10 {
		t.Fatalf("only %d resizes exercised", resized)
	}
}

// TestBufferInsertionRebuild checks the documented staleness rule: after a
// connectivity change the graph and session are rebuilt, and the rebuilt
// session matches a cold analysis of the new design.
func TestBufferInsertionRebuild(t *testing.T) {
	d, g := buildDesign(t, gen.Toy())
	cfg := engine.DefaultConfig()
	s := engine.NewSession(g)
	s.Run(cfg).Release()

	bufs := d.Lib.Variants(cells.Buf)
	if len(bufs) == 0 {
		t.Fatal("library has no buffers")
	}
	inserted := 0
	for _, v := range g.Topo {
		in := d.Instances[v]
		if in.IsFF() || in.Output < 0 || len(d.Nets[in.Output].Sinks) < 2 {
			continue
		}
		if _, err := d.InsertBuffer(in.Output, bufs[len(bufs)-1], "rebuf"); err != nil {
			t.Fatal(err)
		}
		inserted++
		if inserted == 3 {
			break
		}
	}
	if inserted == 0 {
		t.Fatal("no net suitable for buffering")
	}

	g2, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	s2 := engine.NewSession(g2)
	r2 := s2.Run(cfg)
	defer r2.Release()
	cold := engine.Analyze(g2, cfg)
	defer cold.Release()
	requireIdentical(t, cold, r2, "rebuilt")
}

// TestClockStateCachedAcrossRuns checks that the clock insertion delays and
// CRPR credits are computed once per clock configuration and shared by
// every Run: same backing arrays, one cache entry per distinct clockKey.
func TestClockStateCachedAcrossRuns(t *testing.T) {
	_, g := buildDesign(t, gen.Toy())
	s := engine.NewSession(g)
	cfg := engine.DefaultConfig()

	r1 := s.Run(cfg)
	p1 := &r1.ClockLate[0]
	r1.Release()
	r2 := s.Run(cfg)
	if &r2.ClockLate[0] != p1 {
		t.Fatal("clock state rebuilt on second run of the same configuration")
	}
	r2.Release()
	if n := s.NumClockStates(); n != 1 {
		t.Fatalf("expected 1 cached clock state, got %d", n)
	}

	// Weights and data derating do not key the clock cache...
	wcfg := cfg
	wcfg.DerateData = false
	wcfg.Weights = make([]float64, len(g.D.Instances))
	s.Run(wcfg).Release()
	if n := s.NumClockStates(); n != 1 {
		t.Fatalf("data-side config change grew the clock cache to %d", n)
	}

	// ...but the clock configuration does.
	icfg := cfg
	icfg.IdealClock = true
	ri := s.Run(icfg)
	for fi := range ri.ClockLate {
		if ri.ClockLate[fi] != 0 || ri.GBACRPR[fi] != 0 {
			t.Fatal("ideal clock state not zero")
		}
	}
	ri.Release()
	if n := s.NumClockStates(); n != 2 {
		t.Fatalf("expected 2 cached clock states, got %d", n)
	}
}

// TestReleaseRecyclesScratch checks the allocation-free steady state: a
// released Result's buffers are handed, deterministically, to the next Run,
// and double-release is a harmless no-op.
func TestReleaseRecyclesScratch(t *testing.T) {
	_, g := buildDesign(t, gen.Toy())
	s := engine.NewSession(g)
	cfg := engine.DefaultConfig()

	r1 := s.Run(cfg)
	p1 := &r1.ArrivalOut[0]
	r1.Release()
	if n := s.FreeScratch(); n != 1 {
		t.Fatalf("free list holds %d sets after release, want 1", n)
	}

	r2 := s.Run(cfg)
	if &r2.ArrivalOut[0] != p1 {
		t.Fatal("second run did not recycle the released buffers")
	}
	if n := s.FreeScratch(); n != 0 {
		t.Fatalf("free list holds %d sets while a run is live, want 0", n)
	}

	r1.Release() // double release: already transferred, must not re-enter
	if n := s.FreeScratch(); n != 0 {
		t.Fatal("double release re-entered the pool")
	}
	r2.Release()
	if n := s.FreeScratch(); n != 1 {
		t.Fatal("release after double-release miscounted the pool")
	}
}

// TestConcurrentRuns hammers one session from several goroutines with
// distinct clock configurations — the shared clockState cache, the scratch
// pool and the credit matrices must all be race-free (run under -race).
func TestConcurrentRuns(t *testing.T) {
	_, g := buildDesign(t, gen.Toy())
	s := engine.NewSession(g)
	base := engine.DefaultConfig()

	configs := []engine.Config{base, base, base, base}
	configs[1].IdealClock = true
	configs[2].DerateClock = false
	configs[3].DerateData = false

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				r := s.Run(configs[(w+i)%len(configs)])
				_ = r.ViolatingEndpoints()
				r.Release()
			}
		}(w)
	}
	wg.Wait()
}

// TestRunCtx covers the cancellation contract: a live context produces a
// result identical to Run's, a cancelled one aborts cleanly and returns
// the scratch buffers to the pool.
func TestRunCtx(t *testing.T) {
	_, g := buildDesign(t, gen.Toy())
	s := engine.NewSession(g)
	cfg := engine.DefaultConfig()

	want := s.Run(cfg)
	got, err := s.RunCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got, "RunCtx vs Run")
	want.Release()
	got.Release()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := s.RunCtx(ctx, cfg)
	if err == nil || r != nil {
		t.Fatalf("cancelled RunCtx = (%v, %v), want (nil, error)", r, err)
	}
	// The aborted run must have returned its scratch to the pool: the next
	// run must still produce a complete, correct analysis.
	again, err := s.RunCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh := engine.NewSession(g).Run(cfg)
	requireIdentical(t, fresh, again, "post-abort run")
	again.Release()
	fresh.Release()
}
