package engine

// FanoutEndpoints returns the D.FFs positions of every constrained
// endpoint whose fan-in cone contains one of the modified instances —
// exactly the endpoints whose timing (and therefore whose selected paths)
// a resize of those instances can touch. It walks the forward data cone
// with the same stop-at-flip-flop rule as Result.Update, so the set it
// reports is the endpoint shadow of the cone Update re-evaluates. A
// modified flip-flop counts as affecting its own endpoint (its setup and
// CK->Q arcs changed) in addition to everything downstream of its Q pin.
// The result is sorted in FF order and deterministic.
func (s *Session) FanoutEndpoints(modified []int) []int {
	g := s.G
	d := g.D
	if len(modified) == 0 {
		return nil
	}
	seen := make([]bool, len(d.Instances))
	hit := make([]bool, len(d.FFs))
	queue := make([]int, 0, len(modified))
	for _, v := range modified {
		if v < 0 || v >= len(seen) || seen[v] {
			continue
		}
		seen[v] = true
		queue = append(queue, v)
		if d.Instances[v].IsFF() {
			hit[g.FFIndex(v)] = true
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.Fanout[v] {
			if d.Instances[e.To].IsFF() {
				hit[g.FFIndex(e.To)] = true
			} else if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	var out []int
	for fi, id := range d.FFs {
		if hit[fi] && len(g.Fanin[id]) > 0 {
			out = append(out, fi)
		}
	}
	return out
}
