package engine

// coneScratch is one reusable buffer set for forward-cone walks. Sessions
// pool them the same way they pool per-run timing scratch: a plain free
// list keeps reuse deterministic and the steady state allocation-free.
type coneScratch struct {
	seen  []bool
	hit   []bool
	queue []int32
}

func (s *Session) getConeScratch() *coneScratch {
	s.scratchMu.Lock()
	if n := len(s.coneFree); n > 0 {
		cs := s.coneFree[n-1]
		s.coneFree = s.coneFree[:n-1]
		s.scratchMu.Unlock()
		clear(cs.seen)
		clear(cs.hit)
		cs.queue = cs.queue[:0]
		return cs
	}
	s.scratchMu.Unlock()
	return &coneScratch{
		seen: make([]bool, len(s.G.D.Instances)),
		hit:  make([]bool, len(s.G.D.FFs)),
	}
}

func (s *Session) putConeScratch(cs *coneScratch) {
	s.scratchMu.Lock()
	s.coneFree = append(s.coneFree, cs)
	s.scratchMu.Unlock()
}

// FanoutEndpoints returns the D.FFs positions of every constrained
// endpoint whose fan-in cone contains one of the modified instances —
// exactly the endpoints whose timing (and therefore whose selected paths)
// a resize of those instances can touch. It walks the forward data cone
// with the same stop-at-flip-flop rule as Result.Update, so the set it
// reports is the endpoint shadow of the cone Update re-evaluates. A
// modified flip-flop counts as affecting its own endpoint (its setup and
// CK->Q arcs changed) in addition to everything downstream of its Q pin.
// The result is sorted in FF order and deterministic.
func (s *Session) FanoutEndpoints(modified []int) []int {
	return s.FanoutEndpointsInto(nil, modified)
}

// FanoutEndpointsInto is FanoutEndpoints appending into dst (which may be
// nil). With a pre-sized dst it performs zero allocations in the steady
// state: the visited/hit/queue buffers come from the session pool.
func (s *Session) FanoutEndpointsInto(dst []int, modified []int) []int {
	g := s.G
	d := g.D
	if len(modified) == 0 {
		return dst
	}
	cs := s.getConeScratch()
	defer s.putConeScratch(cs)
	seen, hit, queue := cs.seen, cs.hit, cs.queue
	for _, v := range modified {
		if v < 0 || v >= len(seen) || seen[v] {
			continue
		}
		seen[v] = true
		queue = append(queue, int32(v))
		if d.Instances[v].IsFF() {
			hit[g.FFIndex(v)] = true
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, e := range g.Fanout(int(v)) {
			if d.Instances[e.To].IsFF() {
				hit[g.FFIndex(int(e.To))] = true
			} else if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	cs.queue = queue[:0]
	for fi, id := range d.FFs {
		if hit[fi] && len(g.Fanin(id)) > 0 {
			dst = append(dst, fi)
		}
	}
	return dst
}
