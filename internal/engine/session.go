package engine

import (
	"context"
	"math"
	"sync"

	"mgba/internal/aocv"
	"mgba/internal/graph"
	"mgba/internal/netlist"
	"mgba/internal/obs"
)

// Session owns everything derivable from the design alone: the timing
// graph, the worst-casing depth and bounding-box DPs, the topological
// levelization that drives parallel propagation, the clock insertion
// delays and leaf-pair CRPR credit cache (per clock configuration), and a
// pool of per-run scratch buffers. Build one Session per design state and
// reuse it across any number of Runs.
//
// A Session is safe for concurrent Runs. It becomes stale when the
// design's connectivity, placement, or clock tree changes (buffer
// insertion, cell moves): rebuild the graph and the Session then. Gate
// resizing on the data path does not invalidate it — that is what
// Result.Update is for.
type Session struct {
	G      *graph.Graph
	Depths *graph.Depths
	Boxes  *graph.Boxes

	// Levelization of the data DAG: level 0 holds the flip-flops (path
	// sources), level l>0 the combinational gates whose deepest fanin sits
	// at level l-1. levelOrder lists instances grouped by level (topo
	// order within a level); level l spans
	// levelOrder[levelOff[l]:levelOff[l+1]].
	levelOrder []int32
	levelOff   []int

	topoPos []int32 // topological position per instance ID, -1 off the data DAG

	mu     sync.Mutex
	clocks map[clockKey]*clockState // per clock configuration

	scratchMu sync.Mutex
	free      []*scratch     // released per-run buffer sets
	coneFree  []*coneScratch // released forward-cone walk buffers
}

// clockKey identifies the clock-dependent immutable state: clock insertion
// delays and CRPR credits depend only on whether the clock tree is derated
// or idealized and on which AOCV table set the run binds (per-corner
// analyses carry their own), never on data-path settings or weights. The
// derate set is resolved (nil config → the design's tables) before keying,
// so every default-corner run shares one cache entry.
type clockKey struct {
	derate, ideal bool
	derates       *aocv.Set
}

// clockState is the clock-derived immutable state for one clock
// configuration: per-FF insertion delays, the conservative per-endpoint
// GBA credit, and the exact credit of every clock-leaf pair.
type clockState struct {
	clockLate  []float64 // per D.FFs position, late derates
	clockEarly []float64 // per D.FFs position, early derates
	gbaCRPR    []float64 // per D.FFs position, conservative credit

	// credits[leafL][leafC] is the exact CRPR credit of a launch/capture
	// clock-leaf pair. nil when the configuration yields zero credits
	// (ideal clock, or clock derating off).
	credits [][]float64
}

var unconstrained = math.Inf(1)

// NewSession computes the design-derived immutable state: depth and
// bounding-box DPs, levelization, and the scratch pool geometry. Clock
// state is derived lazily per clock configuration on first Run.
func NewSession(g *graph.Graph) *Session {
	s := &Session{
		G:      g,
		Depths: g.ComputeDepths(),
		Boxes:  g.ComputeBoxes(),
		clocks: make(map[clockKey]*clockState),
	}
	s.topoPos = make([]int32, len(g.D.Instances))
	for i := range s.topoPos {
		s.topoPos[i] = -1
	}
	for pos, v := range g.Topo {
		s.topoPos[v] = int32(pos)
	}
	s.levelize()
	return s
}

// levelize groups the data instances by topological level. Within a level
// no instance feeds another (any data edge raises the sink's level), so a
// level's instances can be evaluated in any order — or in parallel.
func (s *Session) levelize() {
	g := s.G
	d := g.D
	level := make([]int, len(d.Instances))
	maxLevel := 0
	for _, v := range g.Topo {
		if d.Instances[v].IsFF() {
			continue // level 0: registers are path sources
		}
		lv := 1
		for _, e := range g.Fanin(int(v)) {
			if d.Instances[e.From].IsFF() {
				continue
			}
			if l := level[e.From] + 1; l > lv {
				lv = l
			}
		}
		level[v] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	s.levelOff = make([]int, maxLevel+2)
	for _, v := range g.Topo {
		s.levelOff[level[v]+1]++
	}
	for l := 1; l < len(s.levelOff); l++ {
		s.levelOff[l] += s.levelOff[l-1]
	}
	s.levelOrder = make([]int32, len(g.Topo))
	fill := append([]int(nil), s.levelOff[:maxLevel+1]...)
	for _, v := range g.Topo {
		s.levelOrder[fill[level[v]]] = v
		fill[level[v]]++
	}
}

// clockState returns (building and caching on first use) the clock-derived
// state for the run configuration.
func (s *Session) clockState(cfg Config) *clockState {
	derates := cfg.Derates
	if derates == nil {
		derates = s.G.D.Derates
	}
	key := clockKey{derate: cfg.DerateClock, ideal: cfg.IdealClock, derates: derates}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cs, ok := s.clocks[key]; ok {
		return cs
	}
	cs := s.buildClockState(key)
	s.clocks[key] = cs
	return cs
}

// buildClockState walks every FF's clock chain computing late and early
// insertion delays, then precomputes the exact CRPR credit of every clock
// leaf pair and the conservative per-endpoint credit GBA applies.
func (s *Session) buildClockState(key clockKey) *clockState {
	d := s.G.D
	nf := len(d.FFs)
	cs := &clockState{
		clockLate:  make([]float64, nf),
		clockEarly: make([]float64, nf),
		gbaCRPR:    make([]float64, nf),
	}
	if key.ideal {
		return cs // arrays stay zero
	}
	// Memoize per-buffer delay/slew: a buffer appears in many chains.
	type bufT struct {
		delay, slew float64
		done        bool
	}
	memo := make(map[int32]*bufT)
	var eval func(chain []int32, k int) *bufT
	eval = func(chain []int32, k int) *bufT {
		id := chain[k]
		if m, ok := memo[id]; ok && m.done {
			return m
		}
		in := d.Instances[id]
		var inSlew float64
		if k > 0 {
			inSlew = eval(chain, k-1).slew
		}
		load := d.LoadCap(d.Nets[in.Output])
		m := &bufT{
			delay: in.Cell.Delay(load, inSlew) + d.Nets[in.Output].WireDelay,
			slew:  in.Cell.OutputSlew(load, inSlew),
			done:  true,
		}
		memo[id] = m
		return m
	}
	for fi := range d.FFs {
		chain := s.G.ClockChain[fi]
		var late, early float64
		var root *netlist.Instance
		if len(chain) > 0 {
			root = d.Instances[chain[0]]
		}
		// AOCV depth semantics: every element of a path is derated at the
		// path's cell depth. A clock chain is a unique path of length
		// len(chain), so all its buffers share that depth — this is also
		// why clock paths carry no graph-vs-path depth pessimism.
		depth := float64(len(chain))
		for k, id := range chain {
			b := eval(chain, k)
			lateF, earlyF := 1.0, 1.0
			if key.derate {
				dist := 0.0
				if root != nil {
					dist = netlist.Distance(root, d.Instances[id])
				}
				lateF = key.derates.Late.Lookup(depth, dist)
				earlyF = key.derates.Early.Lookup(depth, dist)
			}
			late += b.delay * lateF
			early += b.delay * earlyF
		}
		cs.clockLate[fi] = late
		cs.clockEarly[fi] = early
	}
	if key.derate {
		s.buildCredits(cs, key.derates)
	}
	return cs
}

// buildCredits fills the leaf-pair CRPR credit matrix and the conservative
// per-endpoint credit. The credit between two clock leaves is the
// late-minus-early spread accumulated on their chains' shared prefix: the
// common buffers were derated late at the launch chain's depth and early
// at the capture chain's depth, and the credit undoes exactly that
// double-counted spread. Precomputing the full matrix here is what lets
// every later analysis — GBA endpoint credits, PBA per-pair retiming, the
// whole closure loop — look credits up for free.
func (s *Session) buildCredits(cs *clockState, derates *aocv.Set) {
	d := s.G.D
	ci := s.G.ClockIndex()
	nl := len(ci.Chains)
	cs.credits = make([][]float64, nl)
	for leafL := 0; leafL < nl; leafL++ {
		cs.credits[leafL] = make([]float64, nl)
		chain := ci.Chains[leafL]
		var root *netlist.Instance
		if len(chain) > 0 {
			root = d.Instances[chain[0]]
		}
		lateDepth := float64(len(chain))
		// Per-position delay and distance along the launch chain are shared
		// by every capture leaf; only the early-derate depth varies.
		delays := make([]float64, len(chain))
		dists := make([]float64, len(chain))
		var inSlew float64
		for k, id := range chain {
			in := d.Instances[id]
			load := d.LoadCap(d.Nets[in.Output])
			delays[k] = in.Cell.Delay(load, inSlew) + d.Nets[in.Output].WireDelay
			inSlew = in.Cell.OutputSlew(load, inSlew)
			dists[k] = netlist.Distance(root, in)
		}
		for leafC := 0; leafC < nl; leafC++ {
			common := ci.CommonLen(leafL, leafC)
			earlyDepth := float64(len(ci.Chains[leafC]))
			var credit float64
			for k := 0; k < common; k++ {
				lateF := derates.Late.Lookup(lateDepth, dists[k])
				earlyF := derates.Early.Lookup(earlyDepth, dists[k])
				credit += delays[k] * (lateF - earlyF)
			}
			cs.credits[leafL][leafC] = credit
		}
	}
	// Conservative per-endpoint credit: the smallest pair credit over every
	// launch leaf that can reach the endpoint. This is what industrial GBA
	// applies — safe for any path, pessimistic for paths whose true launch
	// shares a deeper clock prefix.
	for fi := range d.FFs {
		leaves := ci.LaunchLeaves[fi]
		if len(leaves) == 0 {
			continue
		}
		minCredit := math.Inf(1)
		for _, leaf := range leaves {
			if c := cs.credits[leaf][ci.LeafOfFF[fi]]; c < minCredit {
				minCredit = c
			}
		}
		cs.gbaCRPR[fi] = minCredit
	}
}

// scratch is one reusable set of per-run buffers. Instance-indexed slices
// share one backing array, FF-indexed slices another, so acquiring a fresh
// set costs two allocations and resetting one is two memclears.
type scratch struct {
	backInst []float64 // 8 instance-sized arrays
	backFF   []float64 // 4 FF-sized arrays

	nominalDelay, derate, cellDelay, wireDelay []float64
	slew, arrivalOut, requiredOut, minArrival  []float64
	dataAtD, minAtD, slack, holdSlack          []float64
}

func newScratch(n, nf int) *scratch {
	sc := &scratch{
		backInst: make([]float64, 8*n),
		backFF:   make([]float64, 4*nf),
	}
	cut := func(back []float64, i, size int) []float64 {
		return back[i*size : (i+1)*size : (i+1)*size]
	}
	sc.nominalDelay = cut(sc.backInst, 0, n)
	sc.derate = cut(sc.backInst, 1, n)
	sc.cellDelay = cut(sc.backInst, 2, n)
	sc.wireDelay = cut(sc.backInst, 3, n)
	sc.slew = cut(sc.backInst, 4, n)
	sc.arrivalOut = cut(sc.backInst, 5, n)
	sc.requiredOut = cut(sc.backInst, 6, n)
	sc.minArrival = cut(sc.backInst, 7, n)
	sc.dataAtD = cut(sc.backFF, 0, nf)
	sc.minAtD = cut(sc.backFF, 1, nf)
	sc.slack = cut(sc.backFF, 2, nf)
	sc.holdSlack = cut(sc.backFF, 3, nf)
	return sc
}

// reset zeroes every buffer so a recycled scratch is indistinguishable
// from a fresh allocation (instances off the data DAG — clock buffers —
// keep zero entries, exactly as a cold analysis produces).
func (sc *scratch) reset() {
	clear(sc.backInst)
	clear(sc.backFF)
}

// getScratch pops a released buffer set or allocates a new one. A plain
// free list (rather than sync.Pool) keeps reuse deterministic: in the
// steady state of a re-timing loop the same buffers cycle forever.
func (s *Session) getScratch() *scratch {
	s.scratchMu.Lock()
	if n := len(s.free); n > 0 {
		sc := s.free[n-1]
		s.free = s.free[:n-1]
		s.scratchMu.Unlock()
		sc.reset()
		return sc
	}
	s.scratchMu.Unlock()
	sc := newScratch(len(s.G.D.Instances), len(s.G.D.FFs))
	return sc
}

// Run executes one full forward/backward analysis under cfg, drawing its
// per-run buffers from the session pool. Release the returned Result when
// it is no longer needed to make the next Run allocation-free.
func (s *Session) Run(cfg Config) *Result {
	r, _ := s.run(nil, cfg)
	return r
}

// RunCtx is Run with cooperative cancellation: the propagation sweeps
// check ctx between levels and abandon the run (returning nil and
// ctx.Err(), with the scratch buffers already back in the pool) when it
// is done. A completed analysis is never partially filled: RunCtx either
// returns a full Result or an error.
func (s *Session) RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if ctx != nil {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
	}
	return s.run(ctx, cfg)
}

func (s *Session) run(ctx context.Context, cfg Config) (*Result, error) {
	tRun := obs.Clock()
	cs := s.clockState(cfg)
	sc := s.getScratch()
	r := &Result{
		G:   s.G,
		Cfg: cfg,
		S:   s,

		Depths: s.Depths,
		Boxes:  s.Boxes,

		NominalDelay: sc.nominalDelay,
		Derate:       sc.derate,
		CellDelay:    sc.cellDelay,
		WireDelay:    sc.wireDelay,
		Slew:         sc.slew,
		ArrivalOut:   sc.arrivalOut,
		RequiredOut:  sc.requiredOut,
		MinArrival:   sc.minArrival,

		ClockLate:  cs.clockLate,
		ClockEarly: cs.clockEarly,
		GBACRPR:    cs.gbaCRPR,
		DataAtD:    sc.dataAtD,
		MinAtD:     sc.minAtD,
		Slack:      sc.slack,
		HoldSlack:  sc.holdSlack,

		cs:  cs,
		sc:  sc,
		par: workers(cfg.Parallelism),
		ctx: ctx,
	}
	tFwd := obs.Clock()
	r.forwardAll()
	obsForwardNS.ObserveSince(tFwd)
	tBwd := obs.Clock()
	r.backwardAll()
	obsBackwardNS.ObserveSince(tBwd)
	if r.aborted {
		r.Release()
		return nil, ctx.Err()
	}
	r.ctx = nil // cancellation applies to this run only, not later Updates
	r.endpointSlacks()
	obsRuns.Inc()
	obsRunNS.ObserveSince(tRun)
	return r, nil
}
