package engine

import "mgba/internal/obs"

// Engine metrics: full analysis runs, incremental updates, and the two
// level-parallel sweep timings. All hooks are observation-only — they
// never change sweep order or worker assignment (inertness contract in
// package obs).
var (
	obsRuns    = obs.NewCounter("engine.runs")
	obsUpdates = obs.NewCounter("engine.updates")

	obsRunNS      = obs.NewHistogram("engine.run_ns", obs.DurationBuckets)
	obsForwardNS  = obs.NewHistogram("engine.forward_ns", obs.DurationBuckets)
	obsBackwardNS = obs.NewHistogram("engine.backward_ns", obs.DurationBuckets)
	obsUpdateNS   = obs.NewHistogram("engine.update_ns", obs.DurationBuckets)
)
