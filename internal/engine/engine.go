// Package engine is the timing engine behind graph-based analysis: it
// splits a design's timing state into the immutable, design-derived part —
// owned by a reusable Session — and the per-run analysis part — carried by
// a Result backed by pooled scratch buffers.
//
// The split exists because the paper's framework (§3.4) puts the timer
// *inside* a timing-closure optimization loop: the loop re-times the same
// design thousands of times (mGBA weight applications, incremental updates
// after resizes, PBA budget queries), yet the expensive derived state —
// topological levels, worst-casing depth and bounding-box DPs, the clock
// index, clock insertion delays and the leaf-pair CRPR credit cache — only
// depends on the design, not on the run. A Session computes that state
// once; each Run then costs exactly one forward/backward propagation and
// allocates nothing on the steady-state path (Release returns a Result's
// buffers to the session pool).
//
// Propagation is level-parallel: within each topological level no instance
// depends on another, so levels are partitioned across a worker pool
// (Config.Parallelism; 0 means runtime.NumCPU()). Every instance's values
// are computed independently from already-final fanins and written to that
// instance's slot only — no accumulation across goroutines — so results
// are bitwise identical at every parallelism setting, including 1.
//
// The analysis semantics (worst-depth/worst-distance AOCV derating,
// worst-slew merging, conservative CRPR crediting, setup/hold slacks,
// incremental update) are unchanged from the original internal/sta engine;
// internal/sta remains as a thin compatibility layer aliasing these types.
package engine

import (
	"mgba/internal/aocv"
	"mgba/internal/graph"
	"mgba/internal/par"
)

// Config selects the analysis features of one run. The zero value is a
// plain timer with every pessimism source disabled; use DefaultConfig for
// the paper's GBA setting.
type Config struct {
	DerateData  bool // apply AOCV late derates to data cells and FF CK->Q arcs
	DerateClock bool // apply AOCV late/early derates to the clock tree

	// DelayOverride forces the nominal (pre-derate) delay of specific
	// instances, bypassing the load/slew model. Used by the Fig. 2 worked
	// example (all gates exactly 100 ps) and by tests.
	DelayOverride map[int]float64

	// Weights is the per-instance mGBA weighting factor vector (Eq. 8)
	// applied multiplicatively to the derated cell delay. nil means all 1
	// (original GBA).
	Weights []float64

	// IdealClock treats every clock buffer as zero-delay, removing clock
	// insertion and CRPR effects entirely.
	IdealClock bool

	// Derates, when non-nil, replaces the design's AOCV table set for this
	// run — the per-corner binding of multi-corner analysis. nil keeps the
	// design's own tables (bit-identical to an analysis before this knob
	// existed).
	Derates *aocv.Set

	// Uncertainty is the clock uncertainty of the analysis corner in ps,
	// subtracted from the setup required time at every endpoint (and from
	// the PBA retiming budget). Zero — the default — changes nothing.
	Uncertainty float64

	// Parallelism is the worker count for level-parallel propagation:
	// 0 means runtime.NumCPU(), 1 runs fully sequential. Results are
	// bitwise identical at every setting.
	Parallelism int
}

// DefaultConfig is the paper's GBA: full AOCV derating on data and clock,
// worst-slew merging, conservative CRPR crediting.
func DefaultConfig() Config {
	return Config{DerateData: true, DerateClock: true}
}

// workers resolves a Parallelism setting to a concrete worker count,
// using the repo-wide convention of internal/par.
func workers(p int) int { return par.Workers(p) }

// Workers resolves a Config.Parallelism setting to a concrete worker count
// (0 = NumCPU, anything below 1 = sequential). Exported so other stages —
// the PBA path enumerator — can share the engine's parallelism convention.
func Workers(p int) int { return workers(p) }

// Analyze runs one cold full analysis: a throwaway Session plus one Run.
// Callers that re-time the same design repeatedly should hold a Session
// and call Run themselves — that is the whole point of the session split.
func Analyze(g *graph.Graph, cfg Config) *Result {
	return NewSession(g).Run(cfg)
}
