package engine

import (
	"context"
	"math"
	"sort"

	"mgba/internal/aocv"
	"mgba/internal/graph"
	"mgba/internal/obs"
)

// Result holds one complete forward/backward GBA analysis of a design.
// The clock-derived slices (ClockLate, ClockEarly, GBACRPR) alias state
// owned by the Session and are shared, read-only, between Results; the
// per-run slices come from the session's scratch pool and are exclusive
// to this Result until Release is called.
type Result struct {
	G   *graph.Graph
	Cfg Config
	S   *Session // the owning session

	Depths *graph.Depths
	Boxes  *graph.Boxes

	// Per-instance quantities (indexed by instance ID).
	NominalDelay []float64 // load/slew delay before derating, incl. overrides
	Derate       []float64 // late AOCV factor applied (1 when not derated)
	CellDelay    []float64 // NominalDelay * Derate * weight — the a_ij basis
	WireDelay    []float64 // output-net wire delay (not derated, not weighted)
	Slew         []float64 // worst-case output transition
	ArrivalOut   []float64 // latest data arrival at the instance output
	RequiredOut  []float64 // earliest required time at the instance output
	MinArrival   []float64 // earliest data arrival (hold analysis)

	// Per-FF quantities (indexed by position in D.FFs).
	ClockLate  []float64 // launch clock insertion delay (late derates)
	ClockEarly []float64 // capture clock insertion delay (early derates)
	GBACRPR    []float64 // conservative (worst launch pair) CRPR credit GBA applies
	DataAtD    []float64 // latest data arrival at the FF's D pin
	MinAtD     []float64 // earliest data arrival at the FF's D pin
	Slack      []float64 // setup slack per endpoint (+Inf when unconstrained)
	HoldSlack  []float64 // hold slack per endpoint (+Inf when unconstrained)

	WNS, TNS float64 // worst / total negative setup slack over endpoints

	cs  *clockState
	sc  *scratch
	par int // resolved worker count

	ctx     context.Context // non-nil only during a RunCtx propagation
	aborted bool            // a sweep observed ctx cancellation
}

// checkCtx polls the run's context between propagation levels; once it
// fires, the remaining sweeps are skipped and run() abandons the Result.
func (r *Result) checkCtx() bool {
	if r.aborted {
		return true
	}
	if r.ctx == nil {
		return false
	}
	select {
	case <-r.ctx.Done():
		r.aborted = true
		return true
	default:
		return false
	}
}

// Release returns the Result's per-run buffers to the session pool so the
// next Run reuses them instead of allocating. The Result — including every
// slice read from it — must not be used afterwards. Releasing twice, or
// releasing nil, is a no-op.
func (r *Result) Release() {
	if r == nil || r.sc == nil {
		return
	}
	sc := r.sc
	r.sc = nil
	r.S.scratchMu.Lock()
	r.S.free = append(r.S.free, sc)
	r.S.scratchMu.Unlock()
}

// Clone returns an independent copy of the Result backed by its own
// per-run buffers from the session pool, bitwise equal to the original.
// The clock-derived slices stay shared (session-owned, read-only). The
// incremental calibrator uses it to keep a private weighted baseline it
// advances in place across recalibrations while every caller still owns —
// and may Release — the result it was handed. Cloning a released Result
// returns nil.
func (r *Result) Clone() *Result {
	if r == nil || r.sc == nil {
		return nil
	}
	sc := r.S.getScratch()
	copy(sc.backInst, r.sc.backInst)
	copy(sc.backFF, r.sc.backFF)
	cl := *r
	cl.sc = sc
	cl.NominalDelay = sc.nominalDelay
	cl.Derate = sc.derate
	cl.CellDelay = sc.cellDelay
	cl.WireDelay = sc.wireDelay
	cl.Slew = sc.slew
	cl.ArrivalOut = sc.arrivalOut
	cl.RequiredOut = sc.requiredOut
	cl.MinArrival = sc.minArrival
	cl.DataAtD = sc.dataAtD
	cl.MinAtD = sc.minAtD
	cl.Slack = sc.slack
	cl.HoldSlack = sc.holdSlack
	return &cl
}

// weight returns the mGBA weighting factor of instance v.
func (r *Result) weight(v int) float64 {
	if r.Cfg.Weights == nil {
		return 1
	}
	return r.Cfg.Weights[v]
}

// derates resolves the AOCV table set this run analyzes under: the
// config's corner binding when set, the design's own tables otherwise.
func (r *Result) derates() *aocv.Set {
	if r.Cfg.Derates != nil {
		return r.Cfg.Derates
	}
	return r.G.D.Derates
}

// lateDerate returns the conservative late AOCV factor GBA applies to the
// data cell v.
func (r *Result) lateDerate(v int) float64 {
	if !r.Cfg.DerateData {
		return 1
	}
	return r.derates().Late.Lookup(float64(r.Depths.GBA[v]), r.Boxes.GBADistance[v])
}

// CRPRCredit returns the exact clock-reconvergence pessimism credit for a
// launch/capture FF pair (positions into D.FFs). PBA applies it per path;
// GBA applies only the conservative per-endpoint minimum (GBACRPR). The
// lookup hits the session's precomputed leaf-pair matrix.
func (r *Result) CRPRCredit(launchIdx, captureIdx int) float64 {
	if r.Cfg.IdealClock || !r.Cfg.DerateClock {
		return 0
	}
	ci := r.G.ClockIndex()
	return r.cs.credits[ci.LeafOfFF[launchIdx]][ci.LeafOfFF[captureIdx]]
}

// nominalDelay computes the pre-derate delay of instance v given its worst
// input slew, honouring overrides.
func (r *Result) nominalDelay(v int, inSlew float64) float64 {
	if ov, ok := r.Cfg.DelayOverride[v]; ok {
		return ov
	}
	d := r.G.D
	in := d.Instances[v]
	if in.Output < 0 {
		return 0
	}
	load := d.LoadCap(d.Nets[in.Output])
	return in.Cell.Delay(load, inSlew)
}

// forwardAll propagates worst slews and max/min arrivals level by level.
// Levels are data-independent internally, so each one is partitioned
// across the worker pool; every worker writes only the slots of its own
// instances, which keeps the parallel schedule bitwise identical to the
// sequential one.
func (r *Result) forwardAll() {
	s := r.S
	for l := 0; l+1 < len(s.levelOff); l++ {
		if r.checkCtx() {
			return
		}
		lo, hi := s.levelOff[l], s.levelOff[l+1]
		r.parallelFor(hi-lo, func(a, b int) {
			for i := lo + a; i < lo+b; i++ {
				r.evalInstance(int(s.levelOrder[i]))
			}
		})
	}
	if r.checkCtx() {
		return
	}
	r.collectEndpointArrivals()
}

// evalInstance recomputes the slew, delays and arrivals of one instance
// from its (already final) fanins.
func (r *Result) evalInstance(v int) {
	d := r.G.D
	in := d.Instances[v]

	// Worst input slew and input arrival window.
	var worstSlew float64
	maxAt := math.Inf(-1)
	minAt := math.Inf(1)
	if in.IsFF() {
		fi := r.G.FFIndex(v)
		maxAt = r.ClockLate[fi]
		minAt = r.ClockEarly[fi]
		worstSlew = 0
	} else {
		for _, e := range r.G.Fanin(v) {
			if s := r.Slew[e.From]; s > worstSlew {
				worstSlew = s
			}
			at := r.ArrivalOut[e.From] + r.WireDelay[e.From]
			if at > maxAt {
				maxAt = at
			}
			mn := r.MinArrival[e.From] + r.WireDelay[e.From]
			if mn < minAt {
				minAt = mn
			}
		}
		if len(r.G.Fanin(v)) == 0 {
			maxAt, minAt = 0, 0
		}
	}

	nom := r.nominalDelay(v, worstSlew)
	der := r.lateDerate(v)
	r.NominalDelay[v] = nom
	r.Derate[v] = der
	r.CellDelay[v] = nom * der * r.weight(v)
	if in.Output >= 0 {
		r.WireDelay[v] = d.Nets[in.Output].WireDelay
		if _, ok := r.Cfg.DelayOverride[v]; ok {
			r.Slew[v] = 0
		} else {
			r.Slew[v] = in.Cell.OutputSlew(d.LoadCap(d.Nets[in.Output]), worstSlew)
		}
	} else {
		r.WireDelay[v] = 0
		r.Slew[v] = 0
	}
	r.ArrivalOut[v] = maxAt + r.CellDelay[v]
	// Hold analysis uses the same derated delay basis; the pessimism gap
	// for hold comes from the max/min window, kept simple deliberately.
	r.MinArrival[v] = minAt + r.CellDelay[v]
}

// collectEndpointArrivals refreshes the per-endpoint D-pin arrival windows
// from the final instance arrivals. Endpoints are independent, so the scan
// is partitioned across workers.
func (r *Result) collectEndpointArrivals() {
	d := r.G.D
	r.parallelFor(len(d.FFs), func(lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			ffID := d.FFs[fi]
			maxAt := math.Inf(-1)
			minAt := math.Inf(1)
			for _, e := range r.G.Fanin(ffID) {
				at := r.ArrivalOut[e.From] + r.WireDelay[e.From]
				if at > maxAt {
					maxAt = at
				}
				mn := r.MinArrival[e.From] + r.WireDelay[e.From]
				if mn < minAt {
					minAt = mn
				}
			}
			if len(r.G.Fanin(ffID)) == 0 {
				r.DataAtD[fi] = math.Inf(-1)
				r.MinAtD[fi] = math.Inf(1)
				continue
			}
			r.DataAtD[fi] = maxAt
			r.MinAtD[fi] = minAt
		}
	})
}

// endpointRequired returns the setup required time at endpoint fi's D pin:
// the capture edge (period + early capture clock) minus the setup time,
// plus GBA's conservative CRPR credit.
func (r *Result) endpointRequired(fi int) float64 {
	d := r.G.D
	ff := d.Instances[d.FFs[fi]]
	return d.ClockPeriod + r.ClockEarly[fi] - ff.Cell.Setup + r.GBACRPR[fi] - r.Cfg.Uncertainty
}

// endpointSlacks derives setup and hold slacks, WNS and TNS. The WNS/TNS
// reduction stays sequential: it is O(#endpoints) and a fixed fold order
// keeps the sums bitwise stable.
func (r *Result) endpointSlacks() {
	d := r.G.D
	r.WNS, r.TNS = 0, 0
	for fi, ffID := range d.FFs {
		if len(r.G.Fanin(ffID)) == 0 {
			r.Slack[fi] = unconstrained
			r.HoldSlack[fi] = unconstrained
			continue
		}
		ff := d.Instances[ffID]
		r.Slack[fi] = r.endpointRequired(fi) - r.DataAtD[fi]
		// Hold: earliest data edge must beat the same-cycle capture edge
		// (late capture clock) plus the hold requirement.
		r.HoldSlack[fi] = r.MinAtD[fi] - (r.ClockLate[fi] - r.ClockEarly[fi] + ff.Cell.Hold) - r.ClockEarly[fi]
		if s := r.Slack[fi]; s < 0 {
			r.TNS += s
			if s < r.WNS {
				r.WNS = s
			}
		}
	}
}

// backwardAll propagates required times from endpoints toward launch FFs,
// sweeping the levels in descending order. RequiredOut[v] is the latest
// time instance v's output may switch without violating any downstream
// endpoint; every fanout of v sits on a strictly higher level (or is an
// endpoint FF, whose required time is closed-form), so within a level the
// instances are again independent.
func (r *Result) backwardAll() {
	s := r.S
	if r.checkCtx() {
		return
	}
	r.parallelFor(len(r.RequiredOut), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r.RequiredOut[i] = unconstrained
		}
	})
	d := r.G.D
	for l := len(s.levelOff) - 2; l >= 0; l-- {
		if r.checkCtx() {
			return
		}
		lo, hi := s.levelOff[l], s.levelOff[l+1]
		r.parallelFor(hi-lo, func(a, b int) {
			for i := lo + a; i < lo+b; i++ {
				v := int(s.levelOrder[i])
				req := unconstrained
				for _, e := range r.G.Fanout(v) {
					to := d.Instances[e.To]
					var cand float64
					if to.IsFF() {
						cand = r.endpointRequired(r.G.FFIndex(int(e.To))) - r.WireDelay[v]
					} else {
						cand = r.RequiredOut[e.To] - r.CellDelay[e.To] - r.WireDelay[v]
					}
					if cand < req {
						req = cand
					}
				}
				r.RequiredOut[v] = req
			}
		})
	}
}

// InstanceSlack returns the slack of the worst path through instance v —
// the quantity the closure flow sorts on when choosing what to fix.
func (r *Result) InstanceSlack(v int) float64 {
	if math.IsInf(r.RequiredOut[v], 1) {
		return unconstrained
	}
	return r.RequiredOut[v] - r.ArrivalOut[v]
}

// ViolatingEndpoints returns the D.FFs positions of endpoints with negative
// setup slack, unsorted.
func (r *Result) ViolatingEndpoints() []int {
	var out []int
	for fi, s := range r.Slack {
		if s < 0 {
			out = append(out, fi)
		}
	}
	return out
}

// Update re-propagates timing after the given instances changed (resize or
// delay override change). It recomputes the forward cone of the modified
// set plus the drivers whose load changed (the caller passes those too),
// then refreshes endpoint slacks and the backward pass. The dirty cone is
// re-evaluated in topological order via the session's position index, so
// the cost scales with the cone, not the design.
//
// Connectivity changes (buffer insertion) invalidate the graph and the
// session; rebuild with graph.Build and NewSession, and Run again instead.
func (r *Result) Update(modified []int) {
	if len(modified) == 0 {
		return
	}
	tUpd := obs.Clock()
	defer func() {
		obsUpdates.Inc()
		obsUpdateNS.ObserveSince(tUpd)
	}()
	d := r.G.D
	dirty := make(map[int]bool, len(modified))
	queue := append([]int(nil), modified...)
	for _, v := range queue {
		dirty[v] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range r.G.Fanout(v) {
			to := int(e.To)
			if !d.Instances[to].IsFF() && !dirty[to] {
				dirty[to] = true
				queue = append(queue, to)
			}
		}
	}
	// Re-evaluate the dirty cone in global topological order.
	cone := make([]int, 0, len(dirty))
	for v := range dirty {
		if r.S.topoPos[v] >= 0 { // off-DAG instances (clock tree) have no timing
			cone = append(cone, v)
		}
	}
	sort.Slice(cone, func(i, j int) bool { return r.S.topoPos[cone[i]] < r.S.topoPos[cone[j]] })
	for _, v := range cone {
		r.evalInstance(v)
	}
	r.collectEndpointArrivals()
	r.backwardAll()
	r.endpointSlacks()
}
