package engine_test

import (
	"sort"
	"testing"

	"mgba/internal/engine"
	"mgba/internal/gen"
	"mgba/internal/graph"
)

// naiveFanoutEndpoints recomputes the endpoint shadow with throwaway maps,
// as the pre-pooled implementation did.
func naiveFanoutEndpoints(g *graph.Graph, modified []int) []int {
	d := g.D
	seen := make(map[int]bool)
	hit := make(map[int]bool)
	var queue []int
	for _, v := range modified {
		if v < 0 || v >= len(d.Instances) || seen[v] {
			continue
		}
		seen[v] = true
		queue = append(queue, v)
		if d.Instances[v].IsFF() {
			hit[g.FFIndex(v)] = true
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.Fanout(v) {
			to := int(e.To)
			if d.Instances[to].IsFF() {
				hit[g.FFIndex(to)] = true
			} else if !seen[to] {
				seen[to] = true
				queue = append(queue, to)
			}
		}
	}
	var out []int
	for fi, id := range d.FFs {
		if hit[fi] && len(g.Fanin(id)) > 0 {
			out = append(out, fi)
		}
	}
	sort.Ints(out)
	return out
}

func coneSession(t testing.TB) (*graph.Graph, *engine.Session) {
	t.Helper()
	cfg := gen.Toy()
	cfg.Gates, cfg.FFs = 600, 80
	cfg.Name = "conepool"
	d, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return g, engine.NewSession(g)
}

func TestFanoutEndpointsMatchesNaive(t *testing.T) {
	g, s := coneSession(t)
	for seed := 0; seed < 20; seed++ {
		var modified []int
		for i, v := range g.Topo {
			if (i+seed)%17 == 0 {
				modified = append(modified, int(v))
			}
		}
		got := s.FanoutEndpoints(modified)
		want := naiveFanoutEndpoints(g, modified)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d endpoints, want %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: endpoint %d = %d, want %d", seed, i, got[i], want[i])
			}
		}
	}
}

// Satellite guarantee: the pooled cone walk performs zero allocations in
// the steady state when appending into a pre-grown destination.
func TestFanoutEndpointsIntoZeroAlloc(t *testing.T) {
	g, s := coneSession(t)
	var modified []int
	for i, v := range g.Topo {
		if i%11 == 0 {
			modified = append(modified, int(v))
		}
	}
	dst := s.FanoutEndpointsInto(nil, modified) // warm the pool and size dst
	allocs := testing.AllocsPerRun(100, func() {
		dst = s.FanoutEndpointsInto(dst[:0], modified)
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", allocs)
	}
}

func BenchmarkFanoutEndpoints(b *testing.B) {
	g, s := coneSession(b)
	var modified []int
	for i, v := range g.Topo {
		if i%11 == 0 {
			modified = append(modified, int(v))
		}
	}
	dst := s.FanoutEndpointsInto(nil, modified)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.FanoutEndpointsInto(dst[:0], modified)
	}
}
