package cells

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Nand2.String() != "NAND2" {
		t.Fatalf("String = %q", Nand2.String())
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatalf("out-of-range String = %q", Kind(99).String())
	}
}

func TestKindInputs(t *testing.T) {
	cases := map[Kind]int{Inv: 1, Buf: 1, ClkBuf: 1, DFF: 1, Nand2: 2, Mux2: 3, Aoi21: 3}
	for k, want := range cases {
		if got := k.Inputs(); got != want {
			t.Errorf("%v.Inputs() = %d, want %d", k, got, want)
		}
	}
}

func TestIsSequential(t *testing.T) {
	if !DFF.IsSequential() {
		t.Fatal("DFF must be sequential")
	}
	if Inv.IsSequential() {
		t.Fatal("INV must not be sequential")
	}
}

func TestNewRejectsBadDrives(t *testing.T) {
	if _, err := New(28); err == nil {
		t.Fatal("empty drive list accepted")
	}
	if _, err := New(28, 0, 2); err == nil {
		t.Fatal("zero drive accepted")
	}
	if _, err := New(28, -1); err == nil {
		t.Fatal("negative drive accepted")
	}
}

func TestDefaultComplete(t *testing.T) {
	lib := Default(28)
	if len(lib.Cells()) != int(numKinds)*4 {
		t.Fatalf("cell count = %d, want %d", len(lib.Cells()), int(numKinds)*4)
	}
	for kind := Kind(0); kind < numKinds; kind++ {
		vs := lib.Variants(kind)
		if len(vs) != 4 {
			t.Fatalf("%v has %d variants", kind, len(vs))
		}
		for i := 1; i < len(vs); i++ {
			if vs[i].Drive <= vs[i-1].Drive {
				t.Fatalf("%v variants not sorted by drive", kind)
			}
		}
	}
}

func TestByName(t *testing.T) {
	lib := Default(28)
	c := lib.ByName("NAND2_X4")
	if c == nil || c.Kind != Nand2 || c.Drive != 4 {
		t.Fatalf("ByName(NAND2_X4) = %+v", c)
	}
	if lib.ByName("NOPE") != nil {
		t.Fatal("unknown name should return nil")
	}
}

func TestPick(t *testing.T) {
	lib := Default(28)
	c, err := lib.Pick(Inv, 2)
	if err != nil || c.Name != "INV_X2" {
		t.Fatalf("Pick = %v, %v", c, err)
	}
	if _, err := lib.Pick(Inv, 3); err == nil {
		t.Fatal("Pick of missing drive should error")
	}
}

func TestUpsizeDownsizeChain(t *testing.T) {
	lib := Default(28)
	c, _ := lib.Pick(Buf, 1)
	up := lib.Upsize(c)
	if up == nil || up.Drive != 2 {
		t.Fatalf("Upsize X1 = %+v", up)
	}
	if lib.Downsize(up) != c {
		t.Fatal("Downsize(Upsize(c)) != c")
	}
	strongest, _ := lib.Pick(Buf, 8)
	if lib.Upsize(strongest) != nil {
		t.Fatal("Upsize of strongest must be nil")
	}
	if lib.Downsize(c) != nil {
		t.Fatal("Downsize of weakest must be nil")
	}
}

func TestUpsizeForeignCell(t *testing.T) {
	lib := Default(28)
	other := Default(16)
	c, _ := other.Pick(Inv, 1)
	if lib.Upsize(c) != nil {
		t.Fatal("Upsize of a cell from another library must be nil")
	}
}

// Monotonicity properties the closure flow relies on: a stronger drive has
// lower delay at equal load, but more area and leakage.
func TestDriveMonotonicity(t *testing.T) {
	lib := Default(28)
	for kind := Kind(0); kind < numKinds; kind++ {
		vs := lib.Variants(kind)
		for i := 1; i < len(vs); i++ {
			weak, strong := vs[i-1], vs[i]
			const load, slew = 20.0, 40.0
			if strong.Delay(load, slew) >= weak.Delay(load, slew) {
				t.Errorf("%v: stronger drive not faster at load %v", kind, load)
			}
			if strong.Area <= weak.Area {
				t.Errorf("%v: stronger drive not larger", kind)
			}
			if strong.Leakage <= weak.Leakage {
				t.Errorf("%v: stronger drive not leakier", kind)
			}
			if strong.OutputSlew(load, 0) >= weak.OutputSlew(load, 0) {
				t.Errorf("%v: stronger drive not sharper slew", kind)
			}
		}
	}
}

func TestDelayIncreasesWithLoadAndSlew(t *testing.T) {
	lib := Default(28)
	f := func(loadRaw, slewRaw uint16) bool {
		load := float64(loadRaw) / 100
		slew := float64(slewRaw) / 100
		for _, c := range lib.Cells() {
			if c.Delay(load+1, slew) <= c.Delay(load, slew) {
				return false
			}
			if c.Delay(load, slew+1) < c.Delay(load, slew) {
				return false
			}
			if c.Delay(load, slew) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeScaling(t *testing.T) {
	old := Default(65)
	nw := Default(16)
	c65, _ := old.Pick(Nand2, 2)
	c16, _ := nw.Pick(Nand2, 2)
	if c16.Delay(10, 20) >= c65.Delay(10, 20) {
		t.Fatal("16nm should be faster than 65nm")
	}
}

func TestDFFParameters(t *testing.T) {
	lib := Default(28)
	ff, _ := lib.Pick(DFF, 1)
	if ff.Setup <= 0 || ff.Hold <= 0 || ff.ClkToQ <= 0 || ff.ClockCap <= 0 {
		t.Fatalf("DFF missing sequential parameters: %+v", ff)
	}
	// DFF delay uses the CK->Q arc.
	if ff.Delay(0, 0) != ff.ClkToQ {
		t.Fatalf("DFF zero-load delay = %v, want ClkToQ %v", ff.Delay(0, 0), ff.ClkToQ)
	}
}

func TestCombinationalHasNoSequentialParams(t *testing.T) {
	lib := Default(28)
	inv, _ := lib.Pick(Inv, 1)
	if inv.Setup != 0 || inv.Hold != 0 || inv.ClkToQ != 0 {
		t.Fatalf("INV carries sequential params: %+v", inv)
	}
}

func TestCellNamesUnique(t *testing.T) {
	lib := Default(28)
	seen := map[string]bool{}
	for _, c := range lib.Cells() {
		if seen[c.Name] {
			t.Fatalf("duplicate cell name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestLog2(t *testing.T) {
	for x, want := range map[float64]float64{1: 0, 2: 1, 4: 2, 8: 3} {
		if got := log2(x); got != want {
			t.Fatalf("log2(%v) = %v, want %v", x, got, want)
		}
	}
}
