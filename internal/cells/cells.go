// Package cells models a synthetic standard-cell library: logic functions
// at several drive strengths with linear delay, output-slew, input
// capacitance, area and leakage models.
//
// The timing model is the classic linear (RC-like) approximation
//
//	delay = Intrinsic + DriveRes*LoadCap + SlewSens*InputSlew
//	oslew = SlewIntrinsic + SlewRes*LoadCap
//
// which is all the pessimism-reduction framework needs: GBA/PBA pessimism
// in the paper comes from AOCV derating, worst-slew propagation and CRPR —
// not from the detail of the delay model itself. Units are picoseconds,
// femtofarads, square micrometres, and nanowatts.
package cells

import (
	"fmt"
	"sort"
)

// Kind identifies a logic function, independent of drive strength.
type Kind int

// The logic functions of the synthetic library.
const (
	Inv Kind = iota
	Buf
	Nand2
	Nor2
	And2
	Or2
	Xor2
	Aoi21
	Oai21
	Mux2
	DFF    // D flip-flop: CK->Q arc plus setup/hold at D
	ClkBuf // clock-tree buffer
	numKinds
)

var kindNames = [...]string{
	Inv: "INV", Buf: "BUF", Nand2: "NAND2", Nor2: "NOR2", And2: "AND2",
	Or2: "OR2", Xor2: "XOR2", Aoi21: "AOI21", Oai21: "OAI21", Mux2: "MUX2",
	DFF: "DFF", ClkBuf: "CLKBUF",
}

// String returns the library name of the kind, e.g. "NAND2".
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Inputs returns the number of data inputs of the kind.
func (k Kind) Inputs() int {
	switch k {
	case Inv, Buf, ClkBuf:
		return 1
	case Aoi21, Oai21, Mux2:
		return 3
	case DFF:
		return 1 // the D pin; CK is handled separately
	default:
		return 2
	}
}

// IsSequential reports whether the kind is a flip-flop.
func (k Kind) IsSequential() bool { return k == DFF }

// Cell is one library cell: a (Kind, Drive) pair with its characterized
// parameters.
type Cell struct {
	Name  string // e.g. "NAND2_X2"
	Kind  Kind
	Drive int // drive strength: 1, 2, 4, 8, ...

	Intrinsic float64 // ps, fixed part of the delay
	DriveRes  float64 // ps/fF, load-dependent part
	SlewSens  float64 // ps of extra delay per ps of input slew

	SlewIntrinsic float64 // ps, fixed part of the output transition
	SlewRes       float64 // ps/fF, load-dependent part of the transition
	SlewProp      float64 // ps of extra output transition per ps of input transition

	InputCap float64 // fF per input pin
	Area     float64 // um^2
	Leakage  float64 // nW

	// Sequential-only parameters (zero for combinational cells).
	Setup    float64 // ps, setup time at D
	Hold     float64 // ps, hold time at D
	ClkToQ   float64 // ps, intrinsic CK->Q delay (DriveRes still applies)
	ClockCap float64 // fF at the CK pin
}

// Delay evaluates the cell delay for a given output load and input slew.
func (c *Cell) Delay(loadCap, inputSlew float64) float64 {
	base := c.Intrinsic
	if c.Kind == DFF {
		base = c.ClkToQ
	}
	return base + c.DriveRes*loadCap + c.SlewSens*inputSlew
}

// OutputSlew evaluates the output transition time for a given load and
// input transition. The input-slew term is what makes slew propagate along
// paths — and what makes GBA's worst-slew merging a pessimism source.
func (c *Cell) OutputSlew(loadCap, inputSlew float64) float64 {
	return c.SlewIntrinsic + c.SlewRes*loadCap + c.SlewProp*inputSlew
}

// Library is an immutable set of cells indexed by name and by (kind, drive).
type Library struct {
	Node    int // nominal technology node in nm (65, 40, 28, 16, ...)
	byName  map[string]*Cell
	byKind  map[Kind][]*Cell // sorted by ascending drive
	ordered []*Cell
}

// Cells returns all cells in a stable order.
func (l *Library) Cells() []*Cell { return l.ordered }

// ByName returns the named cell, or nil when absent.
func (l *Library) ByName(name string) *Cell { return l.byName[name] }

// Variants returns every drive strength of kind, sorted ascending by drive.
func (l *Library) Variants(kind Kind) []*Cell { return l.byKind[kind] }

// Pick returns the cell of the given kind at exactly the given drive, or an
// error naming what is missing.
func (l *Library) Pick(kind Kind, drive int) (*Cell, error) {
	for _, c := range l.byKind[kind] {
		if c.Drive == drive {
			return c, nil
		}
	}
	return nil, fmt.Errorf("cells: no %v at drive X%d", kind, drive)
}

// Upsize returns the next stronger variant of c, or nil when c is already
// the strongest. Upsizing is the primary timing fix of the closure flow.
func (l *Library) Upsize(c *Cell) *Cell {
	vs := l.byKind[c.Kind]
	for i, v := range vs {
		if v == c && i+1 < len(vs) {
			return vs[i+1]
		}
	}
	return nil
}

// Downsize returns the next weaker variant of c, or nil when c is already
// the weakest. Downsizing recovers area/leakage on paths with slack.
func (l *Library) Downsize(c *Cell) *Cell {
	vs := l.byKind[c.Kind]
	for i, v := range vs {
		if v == c && i > 0 {
			return vs[i-1]
		}
	}
	return nil
}

// nodeScale returns the delay scale factor of a technology node relative to
// the 28 nm reference: smaller nodes are faster but proportionally more
// variation-sensitive, which the AOCV tables express separately.
func nodeScale(node int) float64 {
	switch {
	case node >= 65:
		return 1.8
	case node >= 40:
		return 1.3
	case node >= 28:
		return 1.0
	default: // 16 nm and below
		return 0.7
	}
}

// New synthesizes a library for the given technology node with the given
// drive strengths (e.g. 1,2,4,8). It returns an error for an empty drive
// list or non-positive drives.
func New(node int, drives ...int) (*Library, error) {
	if len(drives) == 0 {
		return nil, fmt.Errorf("cells: no drive strengths given")
	}
	ds := append([]int(nil), drives...)
	sort.Ints(ds)
	if ds[0] <= 0 {
		return nil, fmt.Errorf("cells: non-positive drive strength %d", ds[0])
	}
	s := nodeScale(node)
	lib := &Library{
		Node:   node,
		byName: make(map[string]*Cell),
		byKind: make(map[Kind][]*Cell),
	}
	// Per-kind base parameters at drive X1 on the 28 nm reference node.
	type base struct {
		intrinsic, driveRes, slewSens, inCap, area, leak float64
	}
	bases := map[Kind]base{
		Inv:    {12, 4.0, 0.030, 1.0, 0.5, 2},
		Buf:    {20, 3.6, 0.026, 1.1, 0.8, 3},
		Nand2:  {16, 4.6, 0.038, 1.2, 0.9, 4},
		Nor2:   {18, 5.0, 0.042, 1.2, 0.9, 4},
		And2:   {24, 4.4, 0.038, 1.2, 1.2, 5},
		Or2:    {26, 4.8, 0.042, 1.2, 1.2, 5},
		Xor2:   {34, 5.6, 0.050, 1.6, 1.8, 8},
		Aoi21:  {22, 5.2, 0.046, 1.3, 1.3, 6},
		Oai21:  {23, 5.3, 0.046, 1.3, 1.3, 6},
		Mux2:   {30, 5.4, 0.046, 1.5, 1.7, 7},
		DFF:    {0, 4.2, 0.022, 1.4, 4.5, 14},
		ClkBuf: {18, 3.0, 0.018, 1.3, 1.0, 6},
	}
	for kind := Kind(0); kind < numKinds; kind++ {
		b := bases[kind]
		for _, d := range ds {
			fd := float64(d)
			c := &Cell{
				Name:  fmt.Sprintf("%v_X%d", kind, d),
				Kind:  kind,
				Drive: d,
				// Stronger drive: slightly lower intrinsic, much lower
				// resistance, higher input cap/area/leakage.
				Intrinsic:     s * b.intrinsic * (1 - 0.05*log2(fd)),
				DriveRes:      s * b.driveRes / fd,
				SlewSens:      b.slewSens,
				SlewIntrinsic: s * (8 + b.intrinsic*0.25),
				SlewRes:       s * 2.8 / fd,
				SlewProp:      0.06,
				InputCap:      b.inCap * (1 + 0.8*(fd-1)),
				Area:          b.area * (1 + 0.9*(fd-1)),
				Leakage:       b.leak * fd,
			}
			if kind == DFF {
				c.ClkToQ = s * 55 * (1 - 0.05*log2(fd))
				c.Setup = s * 28
				c.Hold = s * 6
				c.ClockCap = 1.2
				c.Intrinsic = c.ClkToQ
			}
			lib.byName[c.Name] = c
			lib.byKind[kind] = append(lib.byKind[kind], c)
			lib.ordered = append(lib.ordered, c)
		}
	}
	return lib, nil
}

// Default returns the library used throughout the experiments: the given
// node with drives X1..X8. It panics only on programmer error (it cannot
// fail for valid nodes).
func Default(node int) *Library {
	lib, err := DefaultLibrary(node)
	if err != nil {
		panic(err)
	}
	return lib
}

// DefaultLibrary is Default with an error return instead of a panic, for
// callers constructing a library from untrusted input (netio loaders).
func DefaultLibrary(node int) (*Library, error) {
	return New(node, 1, 2, 4, 8)
}

func log2(x float64) float64 {
	// Tiny local log2 for drive scaling; drives are small powers of two,
	// so an iterative halving loop is exact for them and close enough
	// otherwise.
	n := 0.0
	for x >= 2 {
		x /= 2
		n++
	}
	return n + (x - 1) // linear remainder in [1,2)
}
