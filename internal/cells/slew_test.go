package cells

import "testing"

func TestOutputSlewPropagatesInputSlew(t *testing.T) {
	lib := Default(28)
	for _, c := range lib.Cells() {
		if c.SlewProp <= 0 {
			t.Fatalf("%s has no slew propagation coefficient", c.Name)
		}
		if c.OutputSlew(10, 50) <= c.OutputSlew(10, 0) {
			t.Fatalf("%s: output slew not increasing in input slew", c.Name)
		}
	}
}

func TestOutputSlewPositive(t *testing.T) {
	lib := Default(16)
	for _, c := range lib.Cells() {
		if c.OutputSlew(0, 0) <= 0 {
			t.Fatalf("%s: non-positive zero-load output slew", c.Name)
		}
	}
}
