package solver

import (
	"testing"

	"mgba/internal/obs"
)

// The exact counters and gauges touched inside the GD/SCG iteration
// loops must cost zero heap allocations whether obs is on or off — the
// solver hot path may not produce garbage.
func TestSolverHotPathCountersZeroAllocs(t *testing.T) {
	for _, on := range []bool{false, true} {
		prev := obs.Enabled()
		obs.Enable(on)
		n := testing.AllocsPerRun(1000, func() {
			obsIterGD.Inc()
			obsIterSCG.Inc()
			obsStep.Set(0.5)
			obsObjective.Set(1.0)
		})
		obs.Enable(prev)
		if n != 0 {
			t.Fatalf("obs=%v: solver hot-path instrumentation allocates %v/op, want 0", on, n)
		}
	}
}

func BenchmarkHotPathCounterInc(b *testing.B) {
	prev := obs.Enabled()
	defer obs.Enable(prev)
	for _, mode := range []struct {
		name string
		on   bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			obs.Enable(mode.on)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				obsIterSCG.Inc()
			}
		})
	}
}
