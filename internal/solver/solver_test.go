package solver

import (
	"context"
	"math"
	"testing"

	"mgba/internal/faultinject"
	"mgba/internal/num"
	"mgba/internal/rng"
	"mgba/internal/sparse"
)

// bg is the context used by tests that never cancel.
var bg = context.Background()

// randProblem builds a consistent system A x* = b with a sparse x*.
func randProblem(seed uint64, rows, cols, perRow, nnzX int, penalty float64) (*Problem, []float64) {
	r := rng.New(seed)
	b := sparse.NewBuilder(cols)
	for i := 0; i < rows; i++ {
		idx := r.SampleWithoutReplacement(cols, perRow)
		val := make([]float64, perRow)
		for k := range val {
			val[k] = 0.5 + r.Float64() // positive, like derated delays
		}
		if err := b.AddRow(idx, val); err != nil {
			panic(err)
		}
	}
	m := b.Build()
	xTrue := make([]float64, cols)
	for _, j := range r.SampleWithoutReplacement(cols, nnzX) {
		xTrue[j] = -0.2 + 0.4*r.Float64() // small sparse corrections
	}
	rhs := m.MulVec(nil, xTrue)
	guard := make([]float64, rows)
	for i := range guard {
		guard[i] = 0.05
	}
	return &Problem{A: m, B: rhs, Guard: guard, Penalty: penalty}, xTrue
}

func TestValidate(t *testing.T) {
	p, _ := randProblem(1, 10, 5, 3, 2, 0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.B = bad.B[:5]
	if bad.Validate() == nil {
		t.Fatal("short B accepted")
	}
	bad = *p
	bad.Guard = []float64{1}
	if bad.Validate() == nil {
		t.Fatal("short guard accepted")
	}
	bad = *p
	bad.Penalty = -1
	if bad.Validate() == nil {
		t.Fatal("negative penalty accepted")
	}
	bad = *p
	bad.Guard = num.Copy(p.Guard)
	bad.Guard[0] = -0.1
	if bad.Validate() == nil {
		t.Fatal("negative guard accepted")
	}
	if (&Problem{}).Validate() == nil {
		t.Fatal("nil matrix accepted")
	}
}

func TestObjectiveAtSolutionIsZero(t *testing.T) {
	p, xTrue := randProblem(2, 50, 20, 5, 4, 10)
	if f := p.Objective(xTrue); f > 1e-18 {
		t.Fatalf("objective at exact solution = %v", f)
	}
	if v := p.ViolationCount(xTrue); v != 0 {
		t.Fatalf("violations at exact solution = %d", v)
	}
}

func TestGradientMatchesFiniteDifference(t *testing.T) {
	p, _ := randProblem(3, 30, 12, 4, 3, 5)
	r := rng.New(99)
	x := make([]float64, 12)
	for i := range x {
		x[i] = r.NormFloat64() * 0.3
	}
	g := p.Gradient(nil, x)
	const h = 1e-6
	for j := range x {
		xp := num.Copy(x)
		xm := num.Copy(x)
		xp[j] += h
		xm[j] -= h
		fd := (p.Objective(xp) - p.Objective(xm)) / (2 * h)
		if math.Abs(fd-g[j]) > 1e-3*(1+math.Abs(fd)) {
			t.Fatalf("gradient[%d] = %v, finite difference %v", j, g[j], fd)
		}
	}
}

func TestViolationCountAndPenaltyDirection(t *testing.T) {
	// One row, one column: a=1, b=1, guard=0.1. At x=0.5 the model delay
	// is below the floor 0.9 -> one violation, and the penalized gradient
	// must push x upward harder than the unpenalized one.
	b := sparse.NewBuilder(1)
	b.AddRow([]int{0}, []float64{1})
	m := b.Build()
	noPen := &Problem{A: m, B: []float64{1}, Guard: []float64{0.1}, Penalty: 0}
	pen := &Problem{A: m, B: []float64{1}, Guard: []float64{0.1}, Penalty: 100}
	x := []float64{0.5}
	// ViolationCount is a constraint diagnostic: it reports the shortfall
	// whether or not the penalty term is enabled.
	if noPen.ViolationCount(x) != 1 || pen.ViolationCount(x) != 1 {
		t.Fatal("violation not counted")
	}
	g0 := noPen.Gradient(nil, x)[0]
	g1 := pen.Gradient(nil, x)[0]
	if g1 >= g0 {
		t.Fatalf("penalty does not strengthen the pull upward: %v vs %v", g1, g0)
	}
}

func TestSubProblem(t *testing.T) {
	p, _ := randProblem(4, 20, 8, 3, 2, 7)
	sub := p.SubProblem([]int{3, 3, 17})
	if sub.A.Rows() != 3 || len(sub.B) != 3 || len(sub.Guard) != 3 {
		t.Fatalf("sub shapes: %d rows, %d B, %d guard", sub.A.Rows(), len(sub.B), len(sub.Guard))
	}
	if sub.B[0] != p.B[3] || sub.B[2] != p.B[17] {
		t.Fatal("targets not carried over")
	}
	if sub.Penalty != p.Penalty {
		t.Fatal("penalty not carried over")
	}
}

func TestGDSolvesConsistentSystem(t *testing.T) {
	p, _ := randProblem(5, 120, 40, 6, 6, 10)
	x, st, err := GD(bg, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Sqrt(p.Objective(x)) / num.Norm2(p.B)
	if rel > 0.02 {
		t.Fatalf("GD relative residual = %v (iters %d)", rel, st.Iters)
	}
	if st.Iters == 0 || st.Elapsed <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if !st.Converged || !st.Improved {
		t.Fatalf("healthy GD solve not marked converged+improved: %+v", st)
	}
	if st.NumericalEvents != 0 {
		t.Fatalf("clean solve recorded numerical events: %+v", st)
	}
}

func TestGDZeroRHS(t *testing.T) {
	p, _ := randProblem(6, 30, 10, 3, 0, 5)
	// x* = 0 -> b = 0 -> GD should stay at 0 and stop immediately.
	x, st, err := GD(bg, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if num.Norm2(x) > 1e-12 {
		t.Fatalf("GD moved away from exact solution: %v", x)
	}
	if st.Iters > 2 {
		t.Fatalf("GD wasted %d iterations on a solved problem", st.Iters)
	}
	if !st.Converged || st.Reason != StopZeroGrad {
		t.Fatalf("exact solution not reported as zero-gradient: %+v", st)
	}
}

func TestSCGReducesObjective(t *testing.T) {
	p, _ := randProblem(7, 400, 80, 8, 10, 10)
	f0 := p.Objective(make([]float64, 80))
	x, st, err := SCG(bg, p, DefaultOptions(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	f := p.Objective(x)
	if f >= f0*0.2 {
		t.Fatalf("SCG objective %v not well below start %v (iters %d)", f, f0, st.Iters)
	}
}

func TestSCGDeterministicGivenSeed(t *testing.T) {
	p, _ := randProblem(8, 200, 50, 6, 6, 10)
	x1, _, _ := SCG(bg, p, DefaultOptions(), rng.New(42))
	x2, _, _ := SCG(bg, p, DefaultOptions(), rng.New(42))
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("SCG not deterministic for fixed seed")
		}
	}
}

func TestSCGEmptyProblem(t *testing.T) {
	b := sparse.NewBuilder(5)
	m := b.Build()
	p := &Problem{A: m, B: nil}
	x, _, err := SCG(bg, p, DefaultOptions(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 5 || num.Norm2(x) != 0 {
		t.Fatalf("empty problem solution = %v", x)
	}
}

func TestSCGAllZeroMatrix(t *testing.T) {
	b := sparse.NewBuilder(3)
	b.AddRow(nil, nil)
	b.AddRow(nil, nil)
	p := &Problem{A: b.Build(), B: []float64{0, 0}}
	x, _, err := SCG(bg, p, DefaultOptions(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if num.Norm2(x) != 0 {
		t.Fatalf("zero matrix moved x: %v", x)
	}
}

func TestSCGRSConvergesAndUsesFewRows(t *testing.T) {
	p, _ := randProblem(9, 3000, 60, 6, 8, 10)
	opt := DefaultOptions()
	x, st, err := SCGRS(bg, p, opt, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Sqrt(p.Objective(x)) / num.Norm2(p.B)
	if rel > 0.05 {
		t.Fatalf("SCGRS relative residual = %v", rel)
	}
	if st.RowsUsed >= p.A.Rows() {
		t.Fatalf("row sampling used the whole system (%d rows)", st.RowsUsed)
	}
	if st.Outer < 1 {
		t.Fatal("no outer rounds recorded")
	}
	if !st.Converged {
		t.Fatalf("successful SCGRS run not marked converged: %+v", st)
	}
}

func TestFullSolveExactOnConsistentSystem(t *testing.T) {
	p, xTrue := randProblem(10, 300, 60, 6, 8, 10)
	x, st, err := FullSolve(bg, p, 8, 400, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if st.Objective > 1e-12 {
		t.Fatalf("FullSolve objective = %v", st.Objective)
	}
	// The system is consistent and overdetermined (300 rows, 60 cols), so
	// the least-squares solution is x* itself.
	if num.RelDiff(x, xTrue) > 1e-5 {
		t.Fatalf("FullSolve missed x*: reldiff %v", num.RelDiff(x, xTrue))
	}
}

func TestPenaltyEnforcesPessimism(t *testing.T) {
	// An inconsistent system: two rows through the same column with
	// conflicting targets. The unconstrained optimum violates the lower
	// row's floor; a large penalty must pull the solution above it.
	b := sparse.NewBuilder(1)
	b.AddRow([]int{0}, []float64{1})
	b.AddRow([]int{0}, []float64{1})
	m := b.Build()
	// Row 0 wants Ax=0, row 1 wants Ax=1 with guard 0.2 (floor 0.8).
	// Unconstrained LS optimum: x=0.5 -> row 1 violated.
	free := &Problem{A: m, B: []float64{0, 1}, Guard: []float64{1e9, 0.2}, Penalty: 0}
	xFree, _, err := FullSolve(bg, free, 4, 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(xFree[0]-0.5) > 1e-6 {
		t.Fatalf("unconstrained optimum = %v, want 0.5", xFree[0])
	}
	hard := &Problem{A: m, B: []float64{0, 1}, Guard: []float64{1e9, 0.2}, Penalty: 1e4}
	xHard, _, err := FullSolve(bg, hard, 10, 200, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	// A quadratic penalty approaches the floor from below; the shortfall
	// must shrink to O(1/Penalty), not to exact zero.
	if xHard[0] < 0.8-1e-3 {
		t.Fatalf("penalized solution %v still below floor 0.8", xHard[0])
	}
}

func TestSCGRSMatchesGDAccuracy(t *testing.T) {
	// The Table 4 claim: the accelerated solver keeps similar accuracy.
	p, _ := randProblem(11, 2000, 50, 6, 6, 10)
	xGD, _, err := GD(bg, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	xRS, _, err := SCGRS(bg, p, DefaultOptions(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	fGD := p.Objective(xGD)
	fRS := p.Objective(xRS)
	norm := num.Norm2Sq(p.B)
	if (fRS-fGD)/norm > 0.01 {
		t.Fatalf("SCGRS much less accurate: %v vs %v (rel %v)", fRS, fGD, (fRS-fGD)/norm)
	}
}

func TestOptionsMaxItersRespected(t *testing.T) {
	p, _ := randProblem(12, 500, 40, 5, 5, 10)
	opt := DefaultOptions()
	opt.MaxIters = 3
	_, st, err := SCG(bg, p, opt, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Iters > 4 {
		t.Fatalf("MaxIters ignored: %d", st.Iters)
	}
	// Exhausting the budget is not convergence, and Stats must say so.
	if st.Converged || st.Reason != StopMaxIters {
		t.Fatalf("budget exhaustion reported as convergence: %+v", st)
	}
}

func TestFullSolveConvergedFlag(t *testing.T) {
	p, _ := randProblem(13, 200, 40, 5, 5, 10)
	_, st, err := FullSolve(bg, p, 8, 300, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.Reason != StopConverged {
		t.Fatalf("stable active set not reported as converged: %+v", st)
	}
}

func TestSolversCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, _ := randProblem(14, 500, 40, 5, 5, 10)
	type run struct {
		name string
		call func() ([]float64, Stats, error)
	}
	runs := []run{
		{"GD", func() ([]float64, Stats, error) { return GD(ctx, p, DefaultOptions()) }},
		{"SCG", func() ([]float64, Stats, error) { return SCG(ctx, p, DefaultOptions(), rng.New(1)) }},
		{"SCGRS", func() ([]float64, Stats, error) { return SCGRS(ctx, p, DefaultOptions(), rng.New(1)) }},
		{"FullSolve", func() ([]float64, Stats, error) { return FullSolve(ctx, p, 8, 300, 1e-10) }},
	}
	for _, r := range runs {
		x, st, err := r.call()
		if err != nil {
			t.Fatalf("%s: cancelled solve returned error %v, want valid partial result", r.name, err)
		}
		if st.Reason != StopCancelled || st.Converged {
			t.Fatalf("%s: cancelled solve stats %+v", r.name, st)
		}
		if len(x) != p.A.Cols() || !num.AllFinite(x) {
			t.Fatalf("%s: cancelled solve returned unusable x: %v", r.name, x)
		}
		// With zero budget consumed, the partial answer is the start point.
		if num.Norm2(x) != 0 {
			t.Fatalf("%s: pre-cancelled solve moved x: %v", r.name, x)
		}
	}
}

func TestSCGMidRunCancellation(t *testing.T) {
	defer faultinject.Reset()
	p, _ := randProblem(15, 2000, 60, 6, 8, 10)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from inside the solve, deterministically, after 10 steps.
	steps := 0
	faultinject.SetFloat(faultinject.SolverStep, func(v float64) float64 {
		if steps++; steps == 10 {
			cancel()
		}
		return v
	})
	x, st, err := SCG(ctx, p, DefaultOptions(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Reason != StopCancelled {
		t.Fatalf("reason = %v (iters %d), want cancelled", st.Reason, st.Iters)
	}
	if st.Iters > 12 {
		t.Fatalf("solver ran %d iterations past the cancellation", st.Iters)
	}
	if !num.AllFinite(x) {
		t.Fatalf("partial result not finite: %v", x)
	}
	if f := p.Objective(x); f > p.Objective(make([]float64, p.A.Cols()))*(1+1e-9) {
		t.Fatalf("partial result worse than start: %v", f)
	}
}

func TestGDInjectedNaNGradient(t *testing.T) {
	defer faultinject.Reset()
	p, _ := randProblem(16, 200, 40, 5, 5, 10)
	calls := 0
	faultinject.SetSlice(faultinject.SolverGradient, func(g []float64) {
		if calls++; calls >= 3 {
			for i := range g {
				g[i] = math.NaN()
			}
		}
	})
	x, st, err := GD(bg, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Reason != StopDiverged || st.NumericalEvents == 0 {
		t.Fatalf("NaN gradient not detected: %+v", st)
	}
	if !num.AllFinite(x) {
		t.Fatalf("GD returned non-finite x under NaN injection: %v", x)
	}
}

func TestSCGInjectedNaNGradientStaysFinite(t *testing.T) {
	defer faultinject.Reset()
	p, _ := randProblem(17, 400, 60, 6, 8, 10)
	faultinject.SetSlice(faultinject.SolverGradient, func(g []float64) {
		for i := range g {
			g[i] = math.NaN()
		}
	})
	x, st, err := SCG(bg, p, DefaultOptions(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if st.Reason != StopDiverged || st.NumericalEvents == 0 {
		t.Fatalf("persistent NaN gradients not reported as divergence: %+v", st)
	}
	if !num.AllFinite(x) {
		t.Fatalf("SCG returned non-finite x under NaN injection: %v", x)
	}
}

func TestSCGInjectedDivergentStep(t *testing.T) {
	defer faultinject.Reset()
	p, _ := randProblem(18, 400, 60, 6, 8, 10)
	faultinject.SetFloat(faultinject.SolverStep, func(v float64) float64 { return v * 1e12 })
	x, st, err := SCG(bg, p, DefaultOptions(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !num.AllFinite(x) {
		t.Fatalf("SCG returned non-finite x under divergent steps: %v", x)
	}
	// The safeguard must have either reverted (and reported it) or the
	// detector flagged the blow-up; a silent "healthy" run is the bug.
	if st.Reverts == 0 && st.NumericalEvents == 0 && st.Improved {
		t.Fatalf("divergent steps went unnoticed: %+v", st)
	}
	if f := p.Objective(x); f > p.Objective(make([]float64, p.A.Cols()))*(1+1e-9) {
		t.Fatalf("returned x worse than start under injection: %v", f)
	}
}
