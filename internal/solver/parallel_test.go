package solver

import (
	"runtime"
	"testing"

	"mgba/internal/num"
	"mgba/internal/rng"
)

// bigProblem returns a problem comfortably above evalCutoffNNZ so the
// evaluation kernels take the blocked path, with an evaluation point that
// leaves a mix of penalty-active and satisfied rows.
func bigProblem(t testing.TB) (*Problem, []float64) {
	t.Helper()
	p, xTrue := randProblem(17, 6000, 800, 8, 60, 4) // 48000 nnz > cutoff
	if p.A.NNZ() < evalCutoffNNZ {
		t.Fatalf("fixture too small: %d nnz", p.A.NNZ())
	}
	x := make([]float64, len(xTrue))
	r := rng.New(23)
	for j := range x {
		x[j] = xTrue[j] + 0.01*(r.Float64()-0.5)
	}
	return p, x
}

// TestObjectiveGradientMatchesSeparate: the fused kernel must be
// bit-identical to separate Objective and Gradient calls (GD's line
// search relies on this to reuse the trial gradient).
func TestObjectiveGradientMatchesSeparate(t *testing.T) {
	p, x := bigProblem(t)
	for _, w := range []int{1, 4} {
		p.A.SetParallelism(w)
		fSep := p.Objective(x)
		gSep := p.Gradient(nil, x)
		fFused, gFused := p.ObjectiveGradient(make([]float64, p.A.Cols()), x)
		if fFused != fSep {
			t.Fatalf("workers=%d: fused objective %v, separate %v", w, fFused, fSep)
		}
		for j := range gSep {
			if gFused[j] != gSep[j] {
				t.Fatalf("workers=%d: fused gradient[%d] = %v, separate %v", w, j, gFused[j], gSep[j])
			}
		}
	}
}

// TestEvalKernelsBitIdenticalAcrossWorkers is the determinism contract at
// the Problem level: Objective, Gradient and ViolationCount must produce
// bit-identical results at every Parallelism setting (run under -race in
// CI, which also proves the blocked kernels race-free).
func TestEvalKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	p, x := bigProblem(t)
	p.A.SetParallelism(1)
	refF := p.Objective(x)
	refG := p.Gradient(nil, x)
	refV := p.ViolationCount(x)
	refZ := p.ObjectiveAtZero()
	for _, w := range []int{2, 3, 8} {
		p.A.SetParallelism(w)
		if f := p.Objective(x); f != refF {
			t.Fatalf("workers=%d: Objective %v, want %v", w, f, refF)
		}
		g := p.Gradient(nil, x)
		for j := range refG {
			if g[j] != refG[j] {
				t.Fatalf("workers=%d: Gradient[%d] = %v, want %v", w, j, g[j], refG[j])
			}
		}
		if v := p.ViolationCount(x); v != refV {
			t.Fatalf("workers=%d: ViolationCount %d, want %d", w, v, refV)
		}
		if z := p.ObjectiveAtZero(); z != refZ {
			t.Fatalf("workers=%d: ObjectiveAtZero %v, want %v", w, z, refZ)
		}
	}
}

// TestObjectiveAtZeroMatchesZeroVector: the matvec-free fast path must be
// bit-identical to evaluating an explicit zero vector.
func TestObjectiveAtZeroMatchesZeroVector(t *testing.T) {
	p, _ := bigProblem(t)
	for _, w := range []int{1, 8} {
		p.A.SetParallelism(w)
		want := p.Objective(make([]float64, p.A.Cols()))
		if got := p.ObjectiveAtZero(); got != want {
			t.Fatalf("workers=%d: ObjectiveAtZero %v, Objective(0) %v", w, got, want)
		}
	}
}

// solveAt runs one GD solve (blocked eval kernels: 6000x800, 48000 nnz),
// one SCG solve on a tall system whose minibatch exceeds miniGrain (so
// the blocked step reduction runs multi-block), and one SCGRS solve
// (outer sampling loop), all at the given worker count. Fresh Problems
// and RNGs per call: the solves must be bit-for-bit reproducible
// functions of (problem, seed, workers).
func solveAt(t *testing.T, workers int) (gd, scg, scgrs []float64) {
	t.Helper()
	opt := DefaultOptions()
	opt.MaxIters = 120
	pGD, _ := bigProblem(t)
	pGD.A.SetParallelism(workers)
	gd, _, err := GD(nil, pGD, opt)
	if err != nil {
		t.Fatal(err)
	}

	optS := DefaultOptions()
	optS.MaxIters = 300
	pSCG, _ := randProblem(21, 16000, 200, 6, 20, 4) // k = 320 > miniGrain
	pSCG.A.SetParallelism(workers)
	scg, _, err = SCG(nil, pSCG, optS, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}

	optRS := DefaultOptions()
	optRS.MaxIters = 300
	optRS.MaxOuter = 4
	pRS, _ := randProblem(22, 3000, 60, 6, 8, 10)
	pRS.A.SetParallelism(workers)
	scgrs, _, err = SCGRS(nil, pRS, optRS, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	return gd, scg, scgrs
}

// TestSolversBitIdenticalAcrossWorkers: entire GD, SCG and SCGRS solves —
// every line-search trial, every stochastic minibatch, every convergence
// test — must be bit-identical at every Parallelism setting.
func TestSolversBitIdenticalAcrossWorkers(t *testing.T) {
	refGD, refSCG, refSCGRS := solveAt(t, 1)
	if num.Norm2(refGD) == 0 || num.Norm2(refSCG) == 0 || num.Norm2(refSCGRS) == 0 {
		t.Fatal("reference solves did not move; fixture is degenerate")
	}
	for _, w := range []int{2, 3, 8} {
		gd, scg, scgrs := solveAt(t, w)
		for j := range refGD {
			if gd[j] != refGD[j] {
				t.Fatalf("workers=%d: GD x[%d] = %v, want %v", w, j, gd[j], refGD[j])
			}
		}
		for j := range refSCG {
			if scg[j] != refSCG[j] {
				t.Fatalf("workers=%d: SCG x[%d] = %v, want %v", w, j, scg[j], refSCG[j])
			}
		}
		for j := range refSCGRS {
			if scgrs[j] != refSCGRS[j] {
				t.Fatalf("workers=%d: SCGRS x[%d] = %v, want %v", w, j, scgrs[j], refSCGRS[j])
			}
		}
	}
}

// TestEvalSteadyStateAllocs: once the Problem scratch is warm, the
// evaluation kernels must not allocate at all. The scratch is owned by
// the Problem (not a sync.Pool), so the bound is strict zero — but the
// check is meaningless under -race, where the runtime itself allocates.
func TestEvalSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	p, x := bigProblem(t)
	g := make([]float64, p.A.Cols())
	for _, w := range []int{1, 4} {
		p.A.SetParallelism(w)
		p.ObjectiveGradient(g, x) // warm the scratch
		runtime.GC()
		if a := testing.AllocsPerRun(20, func() { p.Objective(x) }); a != 0 {
			t.Errorf("workers=%d: Objective allocates %.1f/op", w, a)
		}
		if a := testing.AllocsPerRun(20, func() { p.ObjectiveGradient(g, x) }); a != 0 {
			t.Errorf("workers=%d: ObjectiveGradient allocates %.1f/op", w, a)
		}
		if a := testing.AllocsPerRun(20, func() { p.ViolationCount(x) }); a != 0 {
			t.Errorf("workers=%d: ViolationCount allocates %.1f/op", w, a)
		}
	}
}
