package solver

import "mgba/internal/obs"

// Solver metrics. The per-iteration counters and gauges sit on the
// solver hot path: both their enabled and disabled paths are
// allocation-free and side-effect-only, so instrumentation never
// perturbs the iterate sequence or the RNG stream (see the inertness
// contract in package obs).
var (
	obsIterGD  = obs.NewCounter("solver.gd.iters")
	obsIterSCG = obs.NewCounter("solver.scg.iters")

	obsSolvesGD    = obs.NewCounter("solver.gd.solves")
	obsSolvesSCG   = obs.NewCounter("solver.scg.solves")
	obsSolvesSCGRS = obs.NewCounter("solver.scgrs.solves")
	obsSolvesFull  = obs.NewCounter("solver.full.solves")

	obsOuterSCGRS = obs.NewCounter("solver.scgrs.outer_rounds")
	obsOuterFull  = obs.NewCounter("solver.full.outer_rounds")
	obsNumerical  = obs.NewCounter("solver.numerical_events")
	obsReverts    = obs.NewCounter("solver.reverts")

	obsObjective = obs.NewGauge("solver.last.objective")
	obsStep      = obs.NewGauge("solver.last.step")

	obsSolveNS = obs.NewHistogram("solver.solve_ns", obs.DurationBuckets)
)

// observeSolve records one finished solve's aggregate stats under the
// method's counter.
func observeSolve(method *obs.Counter, st *Stats) {
	if !obs.Enabled() {
		return
	}
	method.Inc()
	obsNumerical.Add(int64(st.NumericalEvents))
	obsReverts.Add(int64(st.Reverts))
	obsObjective.Set(st.Objective)
	obsSolveNS.Observe(float64(st.Elapsed.Nanoseconds()))
}
