//go:build race

package solver

// raceEnabled gates allocation-count assertions: the race runtime
// instruments allocations and makes AllocsPerRun unreliable.
const raceEnabled = true
