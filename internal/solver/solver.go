// Package solver implements the optimization machinery of §3.3: the
// penalized least-squares formulation of Eq. (6), a conventional
// full-gradient-descent baseline, the stochastic conjugate gradient method
// of Algorithm 2 (randomized-Kaczmarz row sampling with Polak-Ribière
// directions and dynamic step size), and the uniform row-sampling outer
// loop of Algorithm 1.
//
// All solvers work in *correction space*: the variable x is the deviation
// of the per-gate weights from their GBA value 1, so the initial solution
// is the zero vector and the optimum is extremely sparse (Fig. 3 of the
// paper). internal/core performs the 1+x translation.
//
// One deliberate deviation from the paper's Algorithm 2 is documented in
// Options.StepDecay: the paper's constant dynamic step alpha = s/||d||
// gives every iterate the same displacement s, which cannot satisfy a
// relative-change stopping rule from a zero start; a 1/sqrt(k) decay (the
// standard randomized-Kaczmarz schedule from the paper's own reference
// [15]) restores convergence without changing the per-step geometry.
package solver

import (
	"context"
	"fmt"
	"math"
	"time"

	"mgba/internal/faultinject"
	"mgba/internal/num"
	"mgba/internal/par"
	"mgba/internal/rng"
	"mgba/internal/sparse"
)

// Problem is the penalized least-squares problem of Eq. (6) in correction
// space:
//
//	minimize ||A x - B||^2  +  Penalty * sum_i max(0, (B_i - Guard_i) - (A x)_i)^2
//
// The first term fits the mGBA path delays to the PBA targets; the second
// punishes rows whose modelled delay drops below the PBA delay by more
// than the guard band (the epsilon-scaled pessimism constraint of Eq. 5,
// translated to delays: an under-estimated delay is an optimistic slack).
type Problem struct {
	A       *sparse.Matrix
	B       []float64 // per-row target (length A.Rows())
	Guard   []float64 // per-row allowed shortfall, >= 0 (nil means zero)
	Penalty float64   // w of Eq. (6); 0 disables the constraint term

	// scratch holds the reusable evaluation buffers; see EnsureScratch.
	scratch *Scratch
}

// Validate reports the first shape inconsistency.
func (p *Problem) Validate() error {
	if p.A == nil {
		return fmt.Errorf("solver: nil matrix")
	}
	if len(p.B) != p.A.Rows() {
		return fmt.Errorf("solver: %d targets for %d rows", len(p.B), p.A.Rows())
	}
	if p.Guard != nil && len(p.Guard) != p.A.Rows() {
		return fmt.Errorf("solver: %d guards for %d rows", len(p.Guard), p.A.Rows())
	}
	if p.Penalty < 0 {
		return fmt.Errorf("solver: negative penalty")
	}
	for i, g := range p.Guard {
		if g < 0 {
			return fmt.Errorf("solver: negative guard at row %d", i)
		}
	}
	return nil
}

func (p *Problem) guard(i int) float64 {
	if p.Guard == nil {
		return 0
	}
	return p.Guard[i]
}

// GuardAt returns row i's guard band, treating a nil Guard as zero.
func (p *Problem) GuardAt(i int) float64 { return p.guard(i) }

// rowTerm returns the residual and penalty shortfall of row i at Ax_i.
func (p *Problem) rowTerm(i int, axi float64) (resid, shortfall float64) {
	resid = axi - p.B[i]
	if p.Penalty > 0 {
		if floor := p.B[i] - p.guard(i); axi < floor {
			shortfall = floor - axi
		}
	}
	return resid, shortfall
}

// evalCutoffNNZ is the system size below which the evaluation kernels
// run as a single block; above it they use evalBlocks fixed row blocks.
// Both constants depend only on the problem shape — never on the worker
// count — so every Parallelism setting produces bit-identical values.
const evalCutoffNNZ = 1 << 15

// evalBlocks is the fixed block count of the blocked evaluation kernels:
// each block owns an objective partial and (for gradients) a column-sized
// accumulator, combined in ascending block order.
const evalBlocks = 8

// evalMergeGrain is the column grain of the (slot-writing) gradient
// accumulator merge.
const evalMergeGrain = 2048

// miniGrain is the sample-block grain of SCG's minibatch kernels.
const miniGrain = 256

// evalGeometry returns the fixed row-block decomposition of the
// evaluation kernels: a function of the matrix shape alone.
func (p *Problem) evalGeometry() (grain, blocks int) {
	rows := p.A.Rows()
	if rows == 0 {
		return 1, 0
	}
	if p.A.NNZ() < evalCutoffNNZ || rows < evalBlocks {
		return rows, 1
	}
	grain = (rows + evalBlocks - 1) / evalBlocks
	return grain, par.Blocks(rows, grain)
}

// Scratch holds every reusable buffer of the Problem evaluation kernels,
// so steady-state solver iterations run without heap allocation. It is
// attached lazily by EnsureScratch (the solvers do this on entry); a
// Problem with scratch attached must not be evaluated concurrently with
// itself — distinct Problems (SubProblem never shares scratch) remain
// independent.
type Scratch struct {
	partials []float64   // per-block objective/violation partials
	acc      [][]float64 // per-block gradient accumulators
	alphaN   []float64   // per-block SCG step numerator partials
	alphaD   []float64   // per-block SCG step denominator partials

	eval  evalBody  // reusable blocked evaluation body
	merge mergeBody // reusable accumulator-merge body
	mini  miniBody  // reusable SCG minibatch-dot body
	alpha alphaBody // reusable SCG step-reduction body
}

func (sc *Scratch) ensurePartials(blocks int) []float64 {
	if cap(sc.partials) < blocks {
		sc.partials = make([]float64, blocks)
	}
	sc.partials = sc.partials[:blocks]
	return sc.partials
}

// ensureAcc returns blocks column-sized gradient accumulators. Contents
// are stale; evalBody zeroes each block before scattering.
func (sc *Scratch) ensureAcc(blocks, cols int) [][]float64 {
	for len(sc.acc) < blocks {
		sc.acc = append(sc.acc, nil)
	}
	for b := 0; b < blocks; b++ {
		if cap(sc.acc[b]) < cols {
			sc.acc[b] = make([]float64, cols)
		}
		sc.acc[b] = sc.acc[b][:cols]
	}
	return sc.acc[:blocks]
}

// EnsureScratch attaches (and returns) the problem's reusable evaluation
// scratch. Idempotent; called automatically by the solvers.
func (p *Problem) EnsureScratch() *Scratch {
	if p.scratch == nil {
		p.scratch = &Scratch{}
	}
	return p.scratch
}

// evalBody is one row block of the fused evaluation kernel: a single
// sweep computes <a_i, x>, the penalized row terms, the block's objective
// partial and — when grad is set — scatters the gradient coefficients
// into the block's private accumulator (or straight into dst when the
// kernel runs as a single block).
type evalBody struct {
	p        *Problem
	x        []float64 // nil means the zero vector
	grad     bool
	count    bool // count guard-floor violations instead of the objective
	partials []float64
	acc      [][]float64 // per-block accumulators; nil when single-block
	dst      []float64   // direct gradient target when acc is nil
}

func (e *evalBody) Chunk(b, lo, hi int) {
	p := e.p
	var g []float64
	if e.grad {
		if e.acc != nil {
			g = e.acc[b]
		} else {
			g = e.dst
		}
		for j := range g {
			g[j] = 0
		}
	}
	var f float64
	for i := lo; i < hi; i++ {
		var axi float64
		if e.x != nil {
			axi = p.A.RowDot(i, e.x)
		}
		if e.count {
			if axi < p.B[i]-p.guard(i)-1e-12 {
				f++
			}
			continue
		}
		r, s := p.rowTerm(i, axi)
		f += r*r + p.Penalty*s*s
		if e.grad {
			p.A.AddScaledRow(g, i, 2*(r-p.Penalty*s))
		}
	}
	e.partials[b] = f
}

// mergeBody combines the per-block gradient accumulators in ascending
// block order, one dst slot per column — deterministic at every worker
// count.
type mergeBody struct {
	dst []float64
	acc [][]float64
}

func (b *mergeBody) Chunk(_, lo, hi int) {
	for j := lo; j < hi; j++ {
		s := b.acc[0][j]
		for t := 1; t < len(b.acc); t++ {
			s += b.acc[t][j]
		}
		b.dst[j] = s
	}
}

// miniBody computes SCG's per-sample row terms: coeffs[t] and active[t]
// are slot-written, so the kernel is bit-identical at every worker count.
// The gradient scatter stays serial in the caller (it preserves the exact
// accumulation order of the reference implementation).
type miniBody struct {
	p      *Problem
	x      []float64
	rows   []int
	coeffs []float64
	active []bool
}

func (mb *miniBody) Chunk(_, lo, hi int) {
	p := mb.p
	for t := lo; t < hi; t++ {
		axi := p.A.RowDot(mb.rows[t], mb.x)
		resid, short := p.rowTerm(mb.rows[t], axi)
		mb.coeffs[t] = resid - p.Penalty*short
		mb.active[t] = short > 0
	}
}

// alphaBody is the blocked reduction behind SCG's exact minibatch step:
// per-block numerator/denominator partials over fixed miniGrain-sized
// sample blocks, combined in block order by the caller.
type alphaBody struct {
	p            *Problem
	d            []float64
	rows         []int
	coeffs       []float64
	active       []bool
	numer, denom []float64 // per-block partials
}

func (ab *alphaBody) Chunk(b, lo, hi int) {
	p := ab.p
	var nPart, dPart float64
	for t := lo; t < hi; t++ {
		ad := p.A.RowDot(ab.rows[t], ab.d)
		w := 1.0
		if ab.active[t] {
			w += p.Penalty // penalty-active rows carry extra curvature
		}
		nPart += ab.coeffs[t] * ad
		dPart += w * ad * ad
	}
	ab.numer[b] = nPart
	ab.denom[b] = dPart
}

// ensureAlpha returns the per-block partial buffers of the SCG step
// reduction.
func (sc *Scratch) ensureAlpha(blocks int) ([]float64, []float64) {
	if cap(sc.alphaN) < blocks {
		sc.alphaN = make([]float64, blocks)
		sc.alphaD = make([]float64, blocks)
	}
	sc.alphaN, sc.alphaD = sc.alphaN[:blocks], sc.alphaD[:blocks]
	return sc.alphaN, sc.alphaD
}

// objGrad is the shared one-pass kernel behind Objective, Gradient and
// ObjectiveGradient: blocked over rows with fixed boundaries, per-block
// partials combined in block order. x == nil evaluates at the zero vector
// without touching the matrix values' dot products.
func (p *Problem) objGrad(dst, x []float64, grad, count bool) float64 {
	if x != nil && len(x) != p.A.Cols() {
		panic(fmt.Sprintf("solver: evaluation point has %d entries, want %d", len(x), p.A.Cols()))
	}
	rows := p.A.Rows()
	if rows == 0 {
		if grad {
			num.Fill(dst, 0)
		}
		return 0
	}
	sc := p.EnsureScratch()
	grain, blocks := p.evalGeometry()
	partials := sc.ensurePartials(blocks)
	w := p.A.Parallelism()
	e := &sc.eval
	e.p, e.x, e.grad, e.count, e.partials = p, x, grad, count, partials
	if grad && blocks > 1 {
		e.acc, e.dst = sc.ensureAcc(blocks, p.A.Cols()), nil
	} else {
		e.acc, e.dst = nil, dst
	}
	par.ForBody(w, rows, grain, e)
	var f float64
	for b := 0; b < blocks; b++ {
		f += partials[b]
	}
	if grad && blocks > 1 {
		mg := &sc.merge
		mg.dst, mg.acc = dst, sc.acc[:blocks]
		par.ForBody(w, p.A.Cols(), evalMergeGrain, mg)
		mg.dst, mg.acc = nil, nil
	}
	e.p, e.x, e.partials, e.acc, e.dst = nil, nil, nil, nil, nil
	return f
}

// Objective evaluates Eq. (6) at x.
func (p *Problem) Objective(x []float64) float64 {
	return p.objGrad(nil, x, false, false)
}

// ObjectiveAtZero evaluates Eq. (6) at the zero vector — ||B||^2 plus the
// penalty terms — without any matrix-vector product. It is bit-identical
// to Objective on an all-zero x (same blocked summation), which the
// health checks comparing a fit against the identity correction rely on.
func (p *Problem) ObjectiveAtZero() float64 {
	return p.objGrad(nil, nil, false, false)
}

// Gradient writes the full gradient of the objective into dst (allocating
// when nil) and returns it.
func (p *Problem) Gradient(dst, x []float64) []float64 {
	if dst == nil {
		dst = make([]float64, p.A.Cols())
	}
	p.objGrad(dst, x, true, false)
	return dst
}

// ObjectiveGradient fuses Objective and Gradient into one pass over the
// matrix: per row block the dot product, the penalized row terms and the
// gradient scatter happen in a single sweep, which roughly halves the
// memory traffic of a GD iteration. The returned value and gradient are
// bit-identical to separate Objective and Gradient calls.
func (p *Problem) ObjectiveGradient(dst, x []float64) (float64, []float64) {
	if dst == nil {
		dst = make([]float64, p.A.Cols())
	}
	f := p.objGrad(dst, x, true, false)
	return f, dst
}

// ViolationCount returns the number of rows whose modelled delay is below
// the guard floor at x — the "violated path set" size of Eq. (6).
func (p *Problem) ViolationCount(x []float64) int {
	return int(p.objGrad(nil, x, false, true))
}

// SubProblem returns the problem restricted to the given rows (Algorithm
// 1's sampled system). Row indices may repeat.
func (p *Problem) SubProblem(rows []int) *Problem {
	b := make([]float64, len(rows))
	var g []float64
	if p.Guard != nil {
		g = make([]float64, len(rows))
	}
	for k, i := range rows {
		b[k] = p.B[i]
		if g != nil {
			g[k] = p.Guard[i]
		}
	}
	return &Problem{A: p.A.SelectRows(rows), B: b, Guard: g, Penalty: p.Penalty}
}

// StopReason records why a solver terminated. It separates genuine
// convergence from budget exhaustion, cancellation and numerical failure,
// which the degradation ladder in internal/core needs to tell apart.
type StopReason int

const (
	// StopNone means the solver has not run (zero value).
	StopNone StopReason = iota
	// StopConverged means the relative-change tolerance was met.
	StopConverged
	// StopZeroGrad means an exact stationary point was reached (zero
	// gradient or degenerate empty system).
	StopZeroGrad
	// StopStalled means the method hit its attainable accuracy floor:
	// machine precision for GD's line search, the stochastic noise floor
	// for SCG. The solution is as good as the method can make it.
	StopStalled
	// StopMaxIters means the iteration budget ran out before the
	// tolerance was met.
	StopMaxIters
	// StopCancelled means the context was cancelled; the returned x is
	// the best iterate found so far and remains a valid (partial) answer.
	StopCancelled
	// StopDiverged means repeated non-finite values made further
	// progress impossible.
	StopDiverged
)

// String returns a short human-readable label for the reason.
func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopConverged:
		return "converged"
	case StopZeroGrad:
		return "zero-gradient"
	case StopStalled:
		return "stalled"
	case StopMaxIters:
		return "max-iters"
	case StopCancelled:
		return "cancelled"
	case StopDiverged:
		return "diverged"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// terminal reports whether the reason counts as reaching the method's
// attainable accuracy (as opposed to running out of budget or failing).
func (r StopReason) terminal() bool {
	return r == StopConverged || r == StopZeroGrad || r == StopStalled
}

// Stats describes one solver run.
type Stats struct {
	Iters     int           // inner iterations performed
	Outer     int           // outer loop rounds (row-sampling solvers)
	RowsUsed  int           // rows of the final (sub)system
	Objective float64       // objective on the *full* problem at the result
	Elapsed   time.Duration // wall-clock time of the solve

	// Converged is true when the solver stopped because it reached its
	// attainable accuracy (tolerance met, exact stationary point, or
	// noise/precision floor) rather than exhausting its budget, being
	// cancelled, or diverging.
	Converged bool
	// Reason records the precise termination cause.
	Reason StopReason
	// NumericalEvents counts non-finite values (NaN/Inf gradients, steps
	// or objectives) encountered and recovered from during the run. Any
	// non-zero count marks the solve numerically unhealthy.
	NumericalEvents int
	// Reverts counts best-iterate restorations performed by SCG's
	// divergence safeguard.
	Reverts int
	// Improved is true when the final objective is strictly below the
	// objective at the starting point.
	Improved bool
}

// cancelled reports whether ctx is done. A nil context never cancels.
func cancelled(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Options bundles every tunable of the three solvers; zero fields fall
// back to the paper's defaults (see DefaultOptions).
type Options struct {
	// Shared.
	Tol      float64 // eps_c: relative solution change to stop at (1e-3)
	MaxIters int     // inner iteration cap (safety valve)

	// SCG (Algorithm 2).
	KFrac     float64 // k'': fraction of rows sampled per step (0.02)
	KMin      int     // lower bound on sampled rows per step (32)
	Step      float64 // s: dynamic step scale (0.02)
	StepDecay bool    // s_k = Step/sqrt(k): guarantees termination

	// Row sampling (Algorithm 1).
	R0       float64 // initial row-sampling ratio (1e-5)
	MinRows  int     // lower bound on sampled rows per round (512)
	TolU     float64 // eps_u: outer relative change to stop at (0.1)
	MaxOuter int     // outer doubling rounds cap (safety valve)

	// GD.
	GDStep float64 // initial step for backtracking line search (1.0)

	// X0 warm-starts the solve from a previous solution (nil means the
	// zero vector). All three solvers honor it: Algorithm 1 uses it to
	// carry the solution of one sampling round into the next, and the
	// incremental Calibrator seeds each re-solve from the previous fit. A
	// non-finite warm-start objective resets to the zero vector and counts
	// a numerical event, so a corrupt X0 is surfaced to the health check
	// rather than silently trusted.
	X0 []float64

	// UniformRowSampling replaces Eq. (11)'s norm-proportional minibatch
	// sampling with uniform sampling inside SCG. Exists for the ablation
	// benchmark only; the paper's method keeps it false.
	UniformRowSampling bool
}

// DefaultOptions returns the parameter set used throughout the paper's
// experiments: eps_c = 1e-3, k” = 2%, s = 0.02, r0 = 1e-5, eps_u = 0.1.
func DefaultOptions() Options {
	return Options{
		Tol:       1e-3,
		MaxIters:  4000,
		KFrac:     0.02,
		KMin:      32,
		Step:      0.02,
		StepDecay: true,
		R0:        1e-5,
		MinRows:   512,
		TolU:      0.1,
		MaxOuter:  16,
		GDStep:    1.0,
	}
}

// GD is the conventional full-gradient-descent baseline (GD + w/o RS in
// Table 4): exact gradients over every row, Armijo backtracking line
// search, relative-change stopping. A cancelled ctx stops the descent at
// the current iterate, which is always a valid (monotonically improved)
// solution; the error return is reserved for invalid problems.
func GD(ctx context.Context, p *Problem, opt Options) ([]float64, Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if err := faultinject.Err(faultinject.SolverStart); err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	n := p.A.Cols()
	x := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, Stats{}, fmt.Errorf("solver: X0 has %d entries, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
	}
	prev := make([]float64, n)
	g := make([]float64, n)
	gNext := make([]float64, n)
	diff := make([]float64, n)
	st := Stats{RowsUsed: p.A.Rows(), Reason: StopMaxIters}
	f := p.Objective(x)
	f0 := f
	if math.IsNaN(f) || math.IsInf(f, 0) {
		// A non-finite warm start is unusable; restart from zero, the
		// always-valid identity point of the correction space.
		st.NumericalEvents++
		num.Fill(x, 0)
		f = p.Objective(x)
		f0 = f
		if math.IsNaN(f) || math.IsInf(f, 0) {
			// The problem data itself is non-finite; x = 0 is the only
			// safe answer.
			st.Reason = StopDiverged
			st.Objective = f
			st.Elapsed = time.Since(start)
			return x, st, nil
		}
	}
	step := opt.GDStep
	// The fused ObjectiveGradient kernel makes every accepted line-search
	// trial also produce the gradient at the new iterate, so the explicit
	// per-iteration gradient pass is only needed on the first iteration
	// (and the trial values stay bit-identical to separate Objective
	// calls, because both run the same blocked kernel).
	haveGrad := false
	for st.Iters = 1; st.Iters <= opt.MaxIters; st.Iters++ {
		obsIterGD.Inc()
		if cancelled(ctx) {
			st.Reason = StopCancelled
			break
		}
		if !haveGrad {
			p.Gradient(g, x)
		}
		faultinject.Slice(faultinject.SolverGradient, g)
		if !num.AllFinite(g) {
			// A non-finite gradient leaves no usable descent direction;
			// the current iterate is still the best finite point seen.
			st.NumericalEvents++
			st.Reason = StopDiverged
			break
		}
		gn2 := num.Norm2Sq(g)
		if gn2 == 0 {
			st.Reason = StopZeroGrad
			break
		}
		copy(prev, x)
		// Backtracking Armijo search on f(x - t g).
		t := faultinject.Float64(faultinject.SolverStep, step)
		accepted := false
		for ls := 0; ls < 40; ls++ {
			for j := range x {
				x[j] = prev[j] - t*g[j]
			}
			fNew, _ := p.ObjectiveGradient(gNext, x)
			if math.IsNaN(fNew) || math.IsInf(fNew, 0) {
				st.NumericalEvents++
				t /= 2
				continue
			}
			if fNew <= f-1e-4*t*gn2 {
				f = fNew
				accepted = true
				// Gentle growth so the next search starts near the
				// accepted scale.
				step = t * 2
				// The accepted trial's gradient is next iteration's g.
				g, gNext = gNext, g
				haveGrad = true
				obsObjective.Set(f)
				obsStep.Set(t)
				break
			}
			t /= 2
		}
		if !accepted {
			copy(x, prev)
			st.Reason = StopStalled
			break // no descent direction at machine precision
		}
		if num.RelDiffInto(diff, x, prev) <= opt.Tol {
			st.Reason = StopConverged
			break
		}
	}
	st.Converged = st.Reason.terminal()
	// f tracks the objective at x on every exit path (x only moves on an
	// accepted trial, whose fused evaluation set f), so no final pass is
	// needed and the value is bit-identical to re-evaluating.
	st.Objective = f
	st.Improved = st.Objective < f0
	st.Elapsed = time.Since(start)
	observeSolve(obsSolvesGD, &st)
	return x, st, nil
}

// SCG is Algorithm 2: stochastic conjugate gradient. Each step samples
// k” rows with probability proportional to their squared Euclidean norm
// (Eq. 11), evaluates the penalized gradient on those rows only,
// normalizes it, combines it with the previous direction through the
// Polak-Ribière parameter, and moves by the dynamic step alpha = s/||d||.
func SCG(ctx context.Context, p *Problem, opt Options, r *rng.Rand) ([]float64, Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if err := faultinject.Err(faultinject.SolverStart); err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	m, n := p.A.Rows(), p.A.Cols()
	st := Stats{RowsUsed: m}
	x := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, st, fmt.Errorf("solver: X0 has %d entries, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
	}
	if m == 0 {
		st.Reason = StopZeroGrad
		st.Converged = true
		return x, st, nil
	}
	weightsVec := p.A.RowNormsSq()
	// A corrupted matrix row yields a non-finite norm, which the weighted
	// sampler rejects by panicking. Excluding such rows from sampling keeps
	// the solve alive; the full-objective divergence check still sees them,
	// so a poisoned system ends in a diverged (never optimistic) result.
	for i, w := range weightsVec {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			weightsVec[i] = 0
			st.NumericalEvents++
		}
	}
	if opt.UniformRowSampling {
		for i := range weightsVec {
			if weightsVec[i] > 0 {
				weightsVec[i] = 1
			}
		}
	}
	sampler := rng.NewWeightedSampler(weightsVec)
	if sampler.Total() == 0 {
		// Degenerate all-zero matrix: nothing to fit.
		st.Reason = StopZeroGrad
		st.Converged = true
		st.Elapsed = time.Since(start)
		return x, st, nil
	}
	k := int(opt.KFrac * float64(m))
	if k < opt.KMin {
		k = opt.KMin
	}
	if k > m {
		k = m
	}

	g := make([]float64, n)
	gPrev := make([]float64, n)
	d := make([]float64, n)
	diff := make([]float64, n)
	rows := make([]int, k)
	coeffs := make([]float64, k)
	active := make([]bool, k)

	// Reusable minibatch kernels: sampling stays serial (preserving the
	// RNG stream and the reference gradient exactly), the per-sample dot
	// products and the step reduction run blocked. x and d are updated in
	// place throughout the loop, so the bodies are wired up once here.
	sc := p.EnsureScratch()
	kWorkers := p.A.Parallelism()
	kBlocks := par.Blocks(k, miniGrain)
	alphaN, alphaD := sc.ensureAlpha(kBlocks)
	mb := &sc.mini
	mb.p, mb.x, mb.rows, mb.coeffs, mb.active = p, x, rows, coeffs, active
	ab := &sc.alpha
	ab.p, ab.d, ab.rows, ab.coeffs, ab.active = p, d, rows, coeffs, active
	ab.numer, ab.denom = alphaN, alphaD

	// Divergence safeguard: stochastic exact steps on tiny minibatches can
	// occasionally compound into a blow-up, so the full objective is
	// checked periodically; the method reverts to the best iterate (with a
	// momentum reset) whenever it has drifted clearly above it, and the
	// best iterate is what is ultimately returned.
	const checkEvery = 25
	// A solve that keeps tripping the non-finite detector is hopeless;
	// give up deterministically instead of burning the iteration budget.
	const maxNumericalEvents = 50
	best := num.Copy(x)
	bestF := p.Objective(x)
	if math.IsNaN(bestF) || math.IsInf(bestF, 0) {
		// A non-finite warm start is unusable; restart from zero, the
		// always-valid identity point of the correction space.
		st.NumericalEvents++
		num.Fill(x, 0)
		copy(best, x)
		bestF = p.Objective(x)
		if math.IsNaN(bestF) || math.IsInf(bestF, 0) {
			st.Reason = StopDiverged
			st.Objective = bestF
			st.Elapsed = time.Since(start)
			return x, st, nil
		}
	}
	f0 := bestF
	lastImprove := 0
	// Smoothed relative solution change: single stochastic steps are far
	// too noisy for the paper's line-2 test to fire reliably.
	ema := math.Inf(1)
	st.Reason = StopMaxIters

	for st.Iters = 1; st.Iters <= opt.MaxIters; st.Iters++ {
		obsIterSCG.Inc()
		if cancelled(ctx) {
			st.Reason = StopCancelled
			break
		}
		if st.NumericalEvents >= maxNumericalEvents {
			st.Reason = StopDiverged
			break
		}
		// Lines 3-5: sample k'' rows by Eq. (11), gradient on them only.
		// The draw is serial (one RNG stream), the row terms are computed
		// by the blocked slot-writing kernel, and the scatter back into g
		// is serial in sample order — together bit-identical to the
		// reference single-loop implementation at every worker count.
		for t := 0; t < k; t++ {
			rows[t] = sampler.Sample(r)
		}
		par.ForBody(kWorkers, k, miniGrain, mb)
		num.Fill(g, 0)
		for t := 0; t < k; t++ {
			p.A.AddScaledRow(g, rows[t], 2*coeffs[t])
		}
		faultinject.Slice(faultinject.SolverGradient, g)
		gn := num.Norm2(g)
		if math.IsNaN(gn) || math.IsInf(gn, 0) {
			// Corrupt minibatch gradient: drop the step, restore the best
			// iterate and restart the conjugate direction.
			st.NumericalEvents++
			copy(x, best)
			num.Fill(d, 0)
			num.Fill(gPrev, 0)
			continue
		}
		if gn == 0 {
			st.Reason = StopZeroGrad
			break // sampled rows are all satisfied exactly
		}
		// Line 6: normalize.
		num.Scale(1/gn, g)
		// Line 7: Polak-Ribière parameter (g_{k-1} is already normalized,
		// so its squared norm is 1 after the first iteration).
		var beta float64
		// Skip the PR parameter right after a momentum reset (gPrev == 0):
		// dividing by ||g_{k-1}||^2 = 0 would produce an Inf beta that
		// poisons the conjugate direction with NaNs.
		if g2 := num.Norm2Sq(gPrev); st.Iters > 1 && g2 > 0 {
			num.Sub(diff, g, gPrev)
			beta = num.Dot(g, diff) / g2
			if beta < 0 || math.IsNaN(beta) || math.IsInf(beta, 0) {
				beta = 0 // PR+ restart, standard practice
			}
		}
		// Line 8: conjugate direction.
		for j := range d {
			d[j] = -g[j] + beta*d[j]
		}
		dn := num.Norm2(d)
		if dn == 0 {
			st.Reason = StopZeroGrad
			break
		}
		// Line 9: dynamic step size. The step alpha* that exactly
		// minimizes the sampled quadratic along d (a Kaczmarz-style
		// projection of the minibatch) converges far faster than a fixed
		// displacement; the paper's s/||d|| rule serves as fallback when
		// the minibatch curvature vanishes, and a trust region bounds the
		// displacement against minibatch noise.
		par.ForBody(kWorkers, k, miniGrain, ab)
		var numer, denom float64
		for b := 0; b < kBlocks; b++ {
			numer += alphaN[b]
			denom += alphaD[b]
		}
		var alpha float64
		if denom > 0 {
			alpha = -numer / denom
			// Robbins-Monro damping: the stochastic noise floor scales
			// with the step size, so shrinking the exact minibatch step
			// over time keeps lowering the attainable full objective.
			alpha /= 1 + float64(st.Iters)/300
		} else {
			s := opt.Step
			if opt.StepDecay {
				s = opt.Step / math.Sqrt(float64(st.Iters))
			}
			alpha = s / dn
		}
		xn := num.Norm2(x)
		if maxDisp := 0.5 * (1 + xn); math.Abs(alpha)*dn > maxDisp {
			alpha = math.Copysign(maxDisp/dn, alpha)
		}
		alpha = faultinject.Float64(faultinject.SolverStep, alpha)
		obsStep.Set(alpha)
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			st.NumericalEvents++
			copy(x, best)
			num.Fill(d, 0)
			num.Fill(gPrev, 0)
			continue
		}
		// Line 10: update.
		num.Axpy(alpha, d, x)
		copy(gPrev, g)
		if st.Iters%checkEvery == 0 {
			f := p.Objective(x)
			obsObjective.Set(f)
			switch {
			case f < bestF*(1-1e-6):
				bestF = f
				copy(best, x)
				lastImprove = st.Iters
			case f > 5*bestF+1e-12 || math.IsNaN(f) || math.IsInf(f, 1):
				if math.IsNaN(f) || math.IsInf(f, 1) {
					st.NumericalEvents++
				}
				st.Reverts++
				copy(x, best)
				num.Fill(d, 0)
				num.Fill(gPrev, 0)
			}
			// Stagnation stop: the stochastic iteration has reached its
			// noise floor when the full objective stops improving.
			if st.Iters-lastImprove >= 8*checkEvery {
				st.Reason = StopStalled
				break
			}
		}
		// Line 2: relative-change convergence test on a smoothed (EMA)
		// change, because single stochastic steps are noisy. The step
		// displacement is |alpha|*||d|| by construction, so the relative
		// change needs no extra vector pass. Skip the first steps where
		// ||x|| is still ~0.
		rel := math.Abs(alpha) * dn
		if xn > 0 {
			rel /= xn
		}
		if math.IsInf(ema, 1) {
			ema = rel
		} else {
			ema = 0.97*ema + 0.03*rel
		}
		if st.Iters > 100 && ema <= opt.Tol {
			st.Reason = StopConverged
			break
		}
	}
	if f := p.Objective(x); f < bestF {
		bestF = f
		copy(best, x)
	}
	copy(x, best)
	st.Converged = st.Reason.terminal()
	st.Objective = bestF
	st.Improved = bestF < f0
	st.Elapsed = time.Since(start)
	observeSolve(obsSolvesSCG, &st)
	return x, st, nil
}

// SCGRS is Algorithm 1 stacked on Algorithm 2 (SCG + RS in Table 4):
// uniformly sample a tiny fraction of the rows, solve the reduced problem
// with SCG, and double the sampling ratio until the solution stabilizes
// within eps_u.
func SCGRS(ctx context.Context, p *Problem, opt Options, r *rng.Rand) ([]float64, Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if err := faultinject.Err(faultinject.SolverStart); err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	m := p.A.Rows()
	st := Stats{}
	x := make([]float64, p.A.Cols())
	if opt.X0 != nil {
		if len(opt.X0) != len(x) {
			return nil, st, fmt.Errorf("solver: X0 has %d entries, want %d", len(opt.X0), len(x))
		}
		copy(x, opt.X0)
	}
	if m == 0 {
		st.Reason = StopZeroGrad
		st.Converged = true
		return x, st, nil
	}
	f0 := p.Objective(x)
	// Algorithm 1 doubles the sampling ratio each round; the row count is
	// floored at MinRows so the doubling acts on the actual system size
	// from the first round on.
	rows := int(opt.R0 * float64(m))
	if rows < opt.MinRows {
		rows = opt.MinRows
	}
	if rows > m {
		rows = m
	}
	var xPrev []float64
	inner := opt
	st.Reason = StopMaxIters
	for st.Outer = 1; st.Outer <= opt.MaxOuter; st.Outer++ {
		obsOuterSCGRS.Inc()
		if cancelled(ctx) {
			st.Reason = StopCancelled
			break
		}
		sel := r.SampleWithoutReplacement(m, rows)
		sub := p.SubProblem(sel)
		var innerStats Stats
		var err error
		// Warm-start each round from the previous round's solution: the
		// sampled systems approximate the same problem, so the previous
		// optimum is an excellent initial point.
		inner.X0 = x
		x, innerStats, err = SCG(ctx, sub, inner, r)
		if err != nil {
			return nil, st, err
		}
		st.Iters += innerStats.Iters
		st.RowsUsed = rows
		st.NumericalEvents += innerStats.NumericalEvents
		st.Reverts += innerStats.Reverts
		if innerStats.Reason == StopCancelled || innerStats.Reason == StopDiverged {
			// Propagate hard stops: the outer doubling cannot fix either.
			st.Reason = innerStats.Reason
			break
		}
		if xPrev != nil && num.RelDiff(x, xPrev) <= opt.TolU {
			st.Reason = StopConverged
			break
		}
		if rows == m {
			// Already solving the full system: the inner solve's verdict
			// is the final one.
			st.Reason = innerStats.Reason
			break
		}
		xPrev = num.Copy(x)
		rows *= 2
		if rows > m {
			rows = m
		}
	}
	st.Converged = st.Reason.terminal()
	st.Objective = p.Objective(x)
	st.Improved = st.Objective < f0
	st.Elapsed = time.Since(start)
	observeSolve(obsSolvesSCGRS, &st)
	return x, st, nil
}

// FullSolve computes a high-accuracy reference solution via an active-set
// sequence of conjugate-gradient normal-equation solves: with the set of
// penalty-active rows frozen, the objective is quadratic and CGNR solves
// it exactly; the active set is then refreshed and the process repeats
// until it stops changing. Used to obtain the "optimal x*" of Fig. 3 and
// as the accuracy yardstick in tests.
func FullSolve(ctx context.Context, p *Problem, maxOuter, cgIters int, tol float64) ([]float64, Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if err := faultinject.Err(faultinject.SolverStart); err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	m, n := p.A.Rows(), p.A.Cols()
	st := Stats{RowsUsed: m, Reason: StopMaxIters}
	x := make([]float64, n)
	prev := make([]float64, n)
	active := make([]bool, m)
	// Every buffer of the outer loop (including CG's workspace) is
	// allocated once per solve, so the iterations themselves are
	// allocation-free.
	av := make([]float64, m)
	rhsRows := make([]float64, m)
	rhs := make([]float64, n)
	cgR := make([]float64, n)
	cgAp := make([]float64, n)
	cgP := make([]float64, n)
	// (A^T W A) v, where active rows carry extra weight Penalty. The
	// conditional form skips the no-op *= 1.0 of inactive rows, which is a
	// bitwise identity.
	matvec := func(dst, v []float64) {
		p.A.MulVec(av, v)
		for i := range av {
			if active[i] {
				av[i] *= 1 + p.Penalty
			}
		}
		p.A.MulTVec(dst, av)
	}
	for outer := 0; outer < maxOuter; outer++ {
		if cancelled(ctx) {
			st.Reason = StopCancelled
			break
		}
		st.Outer++
		obsOuterFull.Inc()
		// Refresh the active set at the current x.
		p.A.MulVec(av, x)
		changed := false
		for i, axi := range av {
			a := p.Penalty > 0 && axi < p.B[i]-p.guard(i)
			if a != active[i] {
				active[i] = a
				changed = true
			}
		}
		if outer > 0 && !changed {
			st.Reason = StopConverged
			break
		}
		// Solve (A^T W A) x = A^T W b' by CG, where active rows get extra
		// weight Penalty and a target at their guard floor.
		for i := 0; i < m; i++ {
			rhsRows[i] = p.B[i]
			if active[i] {
				// Weighted target: 1*b + Penalty*floor.
				rhsRows[i] += p.Penalty * (p.B[i] - p.guard(i))
			}
		}
		p.A.MulTVec(rhs, rhsRows)
		copy(prev, x)
		cg(matvec, rhs, x, cgIters, tol, cgR, cgAp, cgP)
		st.Iters += cgIters
		if !num.AllFinite(x) {
			// CG blew up (ill-conditioned or corrupt data): keep the last
			// finite iterate and stop.
			st.NumericalEvents++
			st.Reason = StopDiverged
			copy(x, prev)
			break
		}
	}
	st.Converged = st.Reason.terminal()
	st.Objective = p.Objective(x)
	st.Improved = st.Objective < p.ObjectiveAtZero()
	st.Elapsed = time.Since(start)
	observeSolve(obsSolvesFull, &st)
	return x, st, nil
}

// cg runs conjugate gradient on the SPD system matvec(x)=rhs, warm-started
// from x, stopping at relative residual tol. r, ap and pdir are
// caller-supplied n-vectors of workspace.
func cg(matvec func(dst, v []float64), rhs, x []float64, iters int, tol float64, r, ap, pdir []float64) {
	matvec(ap, x)
	num.Sub(r, rhs, ap)
	copy(pdir, r)
	rs := num.Norm2Sq(r)
	rhsN := num.Norm2(rhs)
	if rhsN == 0 {
		num.Fill(x, 0)
		return
	}
	for it := 0; it < iters && math.Sqrt(rs) > tol*rhsN; it++ {
		matvec(ap, pdir)
		den := num.Dot(pdir, ap)
		if den <= 0 {
			break
		}
		alpha := rs / den
		num.Axpy(alpha, pdir, x)
		num.Axpy(-alpha, ap, r)
		rsNew := num.Norm2Sq(r)
		beta := rsNew / rs
		rs = rsNew
		for j := range pdir {
			pdir[j] = r[j] + beta*pdir[j]
		}
	}
}
