//go:build !race

package solver

const raceEnabled = false
