//go:build race

package sparse

// raceEnabled reports that the race detector is active; sync.Pool
// deliberately drops items under -race, so steady-state allocation
// assertions are skipped.
const raceEnabled = true
