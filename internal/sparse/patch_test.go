package sparse

import (
	"testing"

	"mgba/internal/rng"
)

// refMatrix mirrors a Matrix as a dense row list so patch operations can be
// replayed against a from-scratch rebuild.
type refMatrix struct {
	cols int
	rows [][]ent
}

func (r *refMatrix) build(t *testing.T) *Matrix {
	t.Helper()
	return build(t, r.cols, r.rows...)
}

// sameMatrix compares the CSR internals, not just the dense view: patching
// must leave the exact representation a fresh build would produce.
func sameMatrix(t *testing.T, got, want *Matrix, label string) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() || got.NNZ() != want.NNZ() {
		t.Fatalf("%s: dims %dx%d/%d vs %dx%d/%d", label,
			got.Rows(), got.Cols(), got.NNZ(), want.Rows(), want.Cols(), want.NNZ())
	}
	for i := 0; i < want.Rows(); i++ {
		gi, gv := got.Row(i)
		wi, wv := want.Row(i)
		if len(gi) != len(wi) {
			t.Fatalf("%s: row %d has %d entries, want %d", label, i, len(gi), len(wi))
		}
		for k := range wi {
			if gi[k] != wi[k] || gv[k] != wv[k] {
				t.Fatalf("%s: row %d entry %d = (%d,%v), want (%d,%v)",
					label, i, k, gi[k], gv[k], wi[k], wv[k])
			}
		}
	}
}

func TestSetRowMatchesRebuild(t *testing.T) {
	ref := &refMatrix{cols: 5, rows: [][]ent{
		{{0, 1}, {2, 2}},
		{{1, 3}, {4, 4}},
		{{3, 5}},
	}}
	m := ref.build(t)

	// Replace the middle row with one that is longer, unordered, and has a
	// duplicate column — SetRow must normalize exactly like AddRow.
	ref.rows[1] = []ent{{4, 1}, {0, 2}, {4, 6}}
	if err := m.SetRow(1, []int{4, 0, 4}, []float64{1, 2, 6}); err != nil {
		t.Fatal(err)
	}
	sameMatrix(t, m, ref.build(t), "longer row")

	// Shrink the same row.
	ref.rows[1] = []ent{{2, 9}}
	if err := m.SetRow(1, []int{2}, []float64{9}); err != nil {
		t.Fatal(err)
	}
	sameMatrix(t, m, ref.build(t), "shorter row")

	// Empty it out entirely.
	ref.rows[1] = nil
	if err := m.SetRow(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	sameMatrix(t, m, ref.build(t), "empty row")
}

func TestInsertRemoveRowMatchesRebuild(t *testing.T) {
	ref := &refMatrix{cols: 4, rows: [][]ent{
		{{0, 1}},
		{{1, 2}, {3, 3}},
	}}
	m := ref.build(t)

	// Insert in the middle, at the front, and at the end.
	ref.rows = [][]ent{{{2, 7}}, {{0, 1}}, {{1, 5}}, {{1, 2}, {3, 3}}, {{3, 8}}}
	if err := m.InsertRow(1, []int{1}, []float64{5}); err != nil {
		t.Fatal(err)
	}
	if err := m.InsertRow(0, []int{2}, []float64{7}); err != nil {
		t.Fatal(err)
	}
	if err := m.InsertRow(4, []int{3}, []float64{8}); err != nil {
		t.Fatal(err)
	}
	sameMatrix(t, m, ref.build(t), "inserts")

	// Remove from the middle and the ends.
	if err := m.RemoveRow(2); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveRow(0); err != nil {
		t.Fatal(err)
	}
	ref.rows = [][]ent{{{0, 1}}, {{1, 2}, {3, 3}}, {{3, 8}}}
	sameMatrix(t, m, ref.build(t), "removes")
}

func TestGrowCols(t *testing.T) {
	m := build(t, 2, []ent{{1, 4}})
	if err := m.GrowCols(1); err == nil {
		t.Fatal("column shrink accepted")
	}
	if err := m.GrowCols(5); err != nil {
		t.Fatal(err)
	}
	if m.Cols() != 5 {
		t.Fatalf("cols = %d, want 5", m.Cols())
	}
	if err := m.SetRow(0, []int{4}, []float64{2}); err != nil {
		t.Fatalf("row rejected after growth: %v", err)
	}
}

func TestPatchErrors(t *testing.T) {
	m := build(t, 3, []ent{{0, 1}}, []ent{{1, 2}})
	if err := m.SetRow(2, nil, nil); err == nil {
		t.Fatal("out-of-range SetRow accepted")
	}
	if err := m.SetRow(-1, nil, nil); err == nil {
		t.Fatal("negative SetRow accepted")
	}
	if err := m.SetRow(0, []int{3}, []float64{1}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if err := m.SetRow(0, []int{0}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := m.InsertRow(3, nil, nil); err == nil {
		t.Fatal("out-of-range InsertRow accepted")
	}
	if err := m.InsertRow(0, []int{-1}, []float64{1}); err == nil {
		t.Fatal("bad InsertRow mutated nothing but was accepted")
	}
	if m.Rows() != 2 {
		t.Fatalf("failed InsertRow changed row count to %d", m.Rows())
	}
	if err := m.RemoveRow(2); err == nil {
		t.Fatal("out-of-range RemoveRow accepted")
	}
}

// TestRandomPatchSequence replays a long random sequence of patch
// operations against the dense reference, then demands the exact CSR a
// cold rebuild produces.
func TestRandomPatchSequence(t *testing.T) {
	r := rng.New(42)
	ref := &refMatrix{cols: 8}
	for i := 0; i < 6; i++ {
		ref.rows = append(ref.rows, randomRow(r, ref.cols))
	}
	m := ref.build(t)
	for step := 0; step < 300; step++ {
		switch op := r.Intn(3); {
		case op == 0 && len(ref.rows) > 0: // SetRow
			i := r.Intn(len(ref.rows))
			row := randomRow(r, ref.cols)
			ref.rows[i] = row
			idx, val := entSplit(row)
			if err := m.SetRow(i, idx, val); err != nil {
				t.Fatal(err)
			}
		case op == 1: // InsertRow
			i := r.Intn(len(ref.rows) + 1)
			row := randomRow(r, ref.cols)
			ref.rows = append(ref.rows[:i], append([][]ent{row}, ref.rows[i:]...)...)
			idx, val := entSplit(row)
			if err := m.InsertRow(i, idx, val); err != nil {
				t.Fatal(err)
			}
		case op == 2 && len(ref.rows) > 1: // RemoveRow
			i := r.Intn(len(ref.rows))
			ref.rows = append(ref.rows[:i], ref.rows[i+1:]...)
			if err := m.RemoveRow(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	sameMatrix(t, m, ref.build(t), "random sequence")
}

func randomRow(r *rng.Rand, cols int) []ent {
	n := r.Intn(4)
	row := make([]ent, n)
	for k := range row {
		row[k] = ent{r.Intn(cols), float64(r.Intn(9) + 1)}
	}
	return row
}

func entSplit(row []ent) ([]int, []float64) {
	idx := make([]int, len(row))
	val := make([]float64, len(row))
	for k, e := range row {
		idx[k], val[k] = e.j, e.v
	}
	return idx, val
}
