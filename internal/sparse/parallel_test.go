package sparse

import (
	"math"
	"runtime"
	"testing"

	"mgba/internal/rng"
)

// bigRandMatrix builds a matrix comfortably above parCutoffNNZ so the
// kernels take the blocked path.
func bigRandMatrix(t testing.TB, seed uint64, rows, cols, perRow int) *Matrix {
	t.Helper()
	r := rng.New(seed)
	b := NewBuilder(cols)
	idx := make([]int, perRow)
	val := make([]float64, perRow)
	for i := 0; i < rows; i++ {
		for k := range idx {
			idx[k] = r.Intn(cols)
			val[k] = r.Float64()*2 - 1
		}
		if err := b.AddRow(idx, val); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func randVec(r *rng.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Float64()*2 - 1
	}
	return v
}

// TestKernelsBitIdenticalAcrossWorkers is the determinism contract for
// the sparse kernels: MulVec, MulTVec and RowNormsSq must produce
// bit-identical output at every Parallelism setting (run under -race in
// CI, which also proves the blocked paths are race-free).
func TestKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	m := bigRandMatrix(t, 7, 6000, 900, 8) // 48000 nnz > cutoff
	if m.NNZ() < parCutoffNNZ {
		t.Fatalf("fixture too small: %d nnz", m.NNZ())
	}
	r := rng.New(99)
	x := randVec(r, m.Cols())
	y := randVec(r, m.Rows())

	m.SetParallelism(1)
	refAx := m.MulVec(nil, x)
	refAty := m.MulTVec(nil, y)
	refNorms := m.RowNormsSq()

	for _, w := range []int{2, 3, 8} {
		m.SetParallelism(w)
		ax := m.MulVec(nil, x)
		aty := m.MulTVec(nil, y)
		norms := m.RowNormsSq()
		for i := range refAx {
			if ax[i] != refAx[i] {
				t.Fatalf("workers=%d: MulVec[%d] = %v, want %v", w, i, ax[i], refAx[i])
			}
		}
		for j := range refAty {
			if aty[j] != refAty[j] {
				t.Fatalf("workers=%d: MulTVec[%d] = %v, want %v", w, j, aty[j], refAty[j])
			}
		}
		for i := range refNorms {
			if norms[i] != refNorms[i] {
				t.Fatalf("workers=%d: RowNormsSq[%d] = %v, want %v", w, i, norms[i], refNorms[i])
			}
		}
	}
}

// TestBlockedMulTVecMatchesDense checks the blocked transpose product
// against the naive dense reference within floating-point reassociation
// tolerance (the blocked summation tree legitimately differs from the
// row-serial one in the last bits).
func TestBlockedMulTVecMatchesDense(t *testing.T) {
	m := bigRandMatrix(t, 11, 5000, 300, 8)
	r := rng.New(5)
	y := randVec(r, m.Rows())
	m.SetParallelism(3)
	got := m.MulTVec(nil, y)
	dense := m.Dense()
	for j := 0; j < m.Cols(); j++ {
		var want float64
		for i := 0; i < m.Rows(); i++ {
			want += dense[i][j] * y[i]
		}
		if d := math.Abs(got[j] - want); d > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("MulTVec[%d] = %v, dense reference %v (diff %g)", j, got[j], want, d)
		}
	}
}

// TestSelectRowsPropagatesParallelism: submatrices inherit the knob so
// Algorithm 1's sampled systems keep the configured kernels.
func TestSelectRowsPropagatesParallelism(t *testing.T) {
	m := bigRandMatrix(t, 1, 100, 50, 4)
	m.SetParallelism(8)
	sub := m.SelectRows([]int{3, 1, 4, 1, 5})
	if sub.Parallelism() != 8 {
		t.Fatalf("SelectRows dropped parallelism: got %d", sub.Parallelism())
	}
}

// TestKernelSteadyStateAllocs: the bulk kernels must not allocate once
// the pooled scratch is warm, serial and parallel alike. A GC during the
// measurement can evict the sync.Pool scratch and show up as a couple of
// refill allocations, so the bound tolerates that noise while still
// catching a per-call make or closure (which would cost 8+).
func TestKernelSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are meaningless")
	}
	m := bigRandMatrix(t, 3, 6000, 500, 8)
	r := rng.New(1)
	x := randVec(r, m.Cols())
	y := randVec(r, m.Rows())
	ax := make([]float64, m.Rows())
	aty := make([]float64, m.Cols())
	for _, w := range []int{1, 4} {
		m.SetParallelism(w)
		m.MulVec(ax, x)
		m.MulTVec(aty, y)
		runtime.GC()
		if a := testing.AllocsPerRun(20, func() { m.MulVec(ax, x) }); a > 2 {
			t.Errorf("workers=%d: MulVec allocates %.1f/op", w, a)
		}
		if a := testing.AllocsPerRun(20, func() { m.MulTVec(aty, y) }); a > 2 {
			t.Errorf("workers=%d: MulTVec allocates %.1f/op", w, a)
		}
	}
}

// FuzzMulVec cross-checks the (possibly parallel) CSR product against a
// naive dense reference on randomized shapes.
func FuzzMulVec(f *testing.F) {
	f.Add(uint64(1), uint16(50), uint16(20), uint8(4), uint8(3))
	f.Add(uint64(42), uint16(1), uint16(1), uint8(1), uint8(1))
	f.Add(uint64(7), uint16(300), uint16(5), uint8(5), uint8(8))
	f.Fuzz(func(t *testing.T, seed uint64, rows16, cols16 uint16, perRow8, workers8 uint8) {
		rows := int(rows16)%512 + 1
		cols := int(cols16)%128 + 1
		perRow := int(perRow8)%8 + 1
		workers := int(workers8) % 9
		m := bigRandMatrix(t, seed, rows, cols, perRow)
		m.SetParallelism(workers)
		r := rng.New(seed ^ 0x9e3779b97f4a7c15)
		x := randVec(r, cols)
		got := m.MulVec(nil, x)
		dense := m.Dense()
		for i := range got {
			var want float64
			for j, v := range dense[i] {
				if v != 0 {
					want += v * x[j]
				}
			}
			if d := math.Abs(got[i] - want); d > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("rows=%d cols=%d perRow=%d workers=%d: MulVec[%d]=%v, dense %v",
					rows, cols, perRow, workers, i, got[i], want)
			}
		}
	})
}
