// Package sparse implements the compressed-sparse-row matrix used to
// represent the path/gate incidence system A of Eq. (9): one row per
// selected timing path, one column per gate, entry a_ij = d_j * lambda_j
// when gate j lies on path i.
//
// The solvers need exactly four operations — y = A x, g = A^T r, per-row
// Euclidean norms (Eq. 11 sampling probabilities), and row subsetting
// (Algorithm 1's uniform sampling) — so that is most of the API. On top of
// that, incremental recalibration patches a built matrix in place: SetRow,
// InsertRow and RemoveRow splice individual rows (and GrowCols widens the
// column space) so a mostly-unchanged system is updated without a rebuild.
package sparse

import (
	"fmt"
	"sort"

	"mgba/internal/faultinject"
)

// Matrix is a CSR matrix. It is immutable under the solver-facing
// operations; the row-patching methods (SetRow, InsertRow, RemoveRow,
// GrowCols) mutate it in place and invalidate slices previously returned
// by Row.
type Matrix struct {
	rows, cols int
	rowPtr     []int     // len rows+1
	colIdx     []int     // len nnz
	val        []float64 // len nnz
}

// normalizeRow validates one row's parallel index/value slices against the
// column count and returns the row in canonical CSR form: column-sorted
// with duplicate columns summed (a gate appearing twice on a reconvergent
// path contributes twice). Builder.AddRow and the patching methods share
// it, so a patched row is bit-identical to the same row built from
// scratch.
func normalizeRow(cols int, indices []int, values []float64) ([]int, []float64, error) {
	if len(indices) != len(values) {
		return nil, nil, fmt.Errorf("sparse: %d indices for %d values", len(indices), len(values))
	}
	type ent struct {
		j int
		v float64
	}
	ents := make([]ent, 0, len(indices))
	for k, j := range indices {
		if j < 0 || j >= cols {
			return nil, nil, fmt.Errorf("sparse: column %d out of range [0,%d)", j, cols)
		}
		ents = append(ents, ent{j, values[k]})
	}
	sort.Slice(ents, func(x, y int) bool { return ents[x].j < ents[y].j })
	ci := make([]int, 0, len(ents))
	vv := make([]float64, 0, len(ents))
	for k := 0; k < len(ents); k++ {
		if k > 0 && ents[k].j == ents[k-1].j {
			vv[len(vv)-1] += ents[k].v
			continue
		}
		ci = append(ci, ents[k].j)
		vv = append(vv, ents[k].v)
	}
	return ci, vv, nil
}

// Builder accumulates rows for a Matrix. Rows are appended in order; the
// column count is fixed up front.
type Builder struct {
	cols   int
	rowPtr []int
	colIdx []int
	val    []float64
}

// NewBuilder returns a builder for matrices with the given column count.
// It panics if cols is negative.
func NewBuilder(cols int) *Builder {
	if cols < 0 {
		panic("sparse: negative column count")
	}
	return &Builder{cols: cols, rowPtr: []int{0}}
}

// AddRow appends one row given parallel index/value slices. Indices may be
// unordered and may repeat; repeated indices are summed (a gate appearing
// twice on a reconvergent path contributes twice). It returns an error for
// out-of-range indices or mismatched slice lengths.
func (b *Builder) AddRow(indices []int, values []float64) error {
	ci, vv, err := normalizeRow(b.cols, indices, values)
	if err != nil {
		return err
	}
	b.colIdx = append(b.colIdx, ci...)
	b.val = append(b.val, vv...)
	b.rowPtr = append(b.rowPtr, len(b.colIdx))
	return nil
}

// Build finalizes the accumulated rows into an immutable Matrix. The
// builder must not be used afterwards.
func (b *Builder) Build() *Matrix {
	m := &Matrix{
		rows:   len(b.rowPtr) - 1,
		cols:   b.cols,
		rowPtr: b.rowPtr,
		colIdx: b.colIdx,
		val:    b.val,
	}
	b.rowPtr, b.colIdx, b.val = nil, nil, nil
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.val) }

// Row returns the column indices and values of row i as shared slices; the
// caller must not modify them.
func (m *Matrix) Row(i int) (indices []int, values []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.val[lo:hi]
}

// MulVec writes A*x into dst and returns dst; dst is allocated when nil.
func (m *Matrix) MulVec(dst, x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec x has %d entries, want %d", len(x), m.cols))
	}
	if dst == nil {
		dst = make([]float64, m.rows)
	} else if len(dst) != m.rows {
		panic("sparse: MulVec dst length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		dst[i] = s
	}
	return dst
}

// MulTVec writes A^T*y into dst and returns dst; dst is allocated when nil.
func (m *Matrix) MulTVec(dst, y []float64) []float64 {
	if len(y) != m.rows {
		panic(fmt.Sprintf("sparse: MulTVec y has %d entries, want %d", len(y), m.rows))
	}
	if dst == nil {
		dst = make([]float64, m.cols)
	} else if len(dst) != m.cols {
		panic("sparse: MulTVec dst length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			dst[m.colIdx[k]] += m.val[k] * yi
		}
	}
	return dst
}

// RowDot returns <a_i, x>, the product of row i with x.
func (m *Matrix) RowDot(i int, x []float64) float64 {
	var s float64
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		s += m.val[k] * x[m.colIdx[k]]
	}
	return s
}

// AddScaledRow performs dst += alpha * a_i for the sparse row i.
func (m *Matrix) AddScaledRow(dst []float64, i int, alpha float64) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		dst[m.colIdx[k]] += alpha * m.val[k]
	}
}

// RowNormsSq returns ||a_i||^2 for every row — the sampling weights of
// Eq. (11).
func (m *Matrix) RowNormsSq() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * m.val[k]
		}
		out[i] = s
	}
	return out
}

// ColumnCoverage returns the number of columns touched by at least one row.
// The path-selection study of §3.2 reports this as "gate coverage".
func (m *Matrix) ColumnCoverage() int {
	seen := make([]bool, m.cols)
	n := 0
	for _, j := range m.colIdx {
		if !seen[j] {
			seen[j] = true
			n++
		}
	}
	return n
}

// SelectRows builds a new matrix containing the given rows of m, in order.
// Row indices may repeat. It panics on out-of-range indices.
func (m *Matrix) SelectRows(rows []int) *Matrix {
	rp := make([]int, 1, len(rows)+1)
	nnz := 0
	for _, i := range rows {
		if i < 0 || i >= m.rows {
			panic(fmt.Sprintf("sparse: SelectRows index %d out of range", i))
		}
		nnz += m.rowPtr[i+1] - m.rowPtr[i]
		rp = append(rp, nnz)
	}
	ci := make([]int, 0, nnz)
	vv := make([]float64, 0, nnz)
	for _, i := range rows {
		ci = append(ci, m.colIdx[m.rowPtr[i]:m.rowPtr[i+1]]...)
		vv = append(vv, m.val[m.rowPtr[i]:m.rowPtr[i+1]]...)
	}
	return &Matrix{rows: len(rows), cols: m.cols, rowPtr: rp, colIdx: ci, val: vv}
}

// GrowCols widens the column space to cols. Existing entries keep their
// columns; new columns start empty. It returns an error when cols would
// shrink the matrix.
func (m *Matrix) GrowCols(cols int) error {
	if cols < m.cols {
		return fmt.Errorf("sparse: GrowCols from %d to %d would shrink", m.cols, cols)
	}
	m.cols = cols
	return nil
}

// SetRow replaces row i in place. The new row may have a different entry
// count: storage after the row is spliced and later row offsets shift.
// Indices follow AddRow's contract (unordered, duplicates summed). Slices
// previously returned by Row become stale after a successful SetRow.
func (m *Matrix) SetRow(i int, indices []int, values []float64) error {
	if i < 0 || i >= m.rows {
		return fmt.Errorf("sparse: SetRow index %d out of range [0,%d)", i, m.rows)
	}
	ci, vv, err := normalizeRow(m.cols, indices, values)
	if err != nil {
		return err
	}
	faultinject.Slice(faultinject.SparseRowPatch, vv)
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	d := len(vv) - (hi - lo)
	if d > 0 {
		n := len(m.val)
		m.colIdx = append(m.colIdx, make([]int, d)...)
		m.val = append(m.val, make([]float64, d)...)
		copy(m.colIdx[hi+d:], m.colIdx[hi:n])
		copy(m.val[hi+d:], m.val[hi:n])
	} else if d < 0 {
		n := len(m.val)
		copy(m.colIdx[hi+d:], m.colIdx[hi:])
		copy(m.val[hi+d:], m.val[hi:])
		m.colIdx = m.colIdx[:n+d]
		m.val = m.val[:n+d]
	}
	copy(m.colIdx[lo:lo+len(ci)], ci)
	copy(m.val[lo:lo+len(vv)], vv)
	if d != 0 {
		for r := i + 1; r < len(m.rowPtr); r++ {
			m.rowPtr[r] += d
		}
	}
	return nil
}

// InsertRow inserts a new row before position i (i == Rows appends). The
// entries follow AddRow's contract.
func (m *Matrix) InsertRow(i int, indices []int, values []float64) error {
	if i < 0 || i > m.rows {
		return fmt.Errorf("sparse: InsertRow index %d out of range [0,%d]", i, m.rows)
	}
	p := m.rowPtr[i]
	m.rowPtr = append(m.rowPtr, 0)
	copy(m.rowPtr[i+1:], m.rowPtr[i:])
	m.rowPtr[i] = p // new empty row: rowPtr[i] == rowPtr[i+1]
	m.rows++
	if err := m.SetRow(i, indices, values); err != nil {
		// Roll the empty row back out so a validation failure is clean.
		copy(m.rowPtr[i:], m.rowPtr[i+1:])
		m.rowPtr = m.rowPtr[:len(m.rowPtr)-1]
		m.rows--
		return err
	}
	return nil
}

// RemoveRow deletes row i in place; later rows shift up.
func (m *Matrix) RemoveRow(i int) error {
	if i < 0 || i >= m.rows {
		return fmt.Errorf("sparse: RemoveRow index %d out of range [0,%d)", i, m.rows)
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	d := hi - lo
	copy(m.colIdx[lo:], m.colIdx[hi:])
	copy(m.val[lo:], m.val[hi:])
	m.colIdx = m.colIdx[:len(m.colIdx)-d]
	m.val = m.val[:len(m.val)-d]
	for r := i + 1; r < len(m.rowPtr)-1; r++ {
		m.rowPtr[r] = m.rowPtr[r+1] - d
	}
	m.rowPtr = m.rowPtr[:len(m.rowPtr)-1]
	m.rows--
	return nil
}

// Dense expands the matrix to row-major dense form; intended for tests and
// tiny examples only.
func (m *Matrix) Dense() [][]float64 {
	out := make([][]float64, m.rows)
	for i := range out {
		out[i] = make([]float64, m.cols)
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out[i][m.colIdx[k]] = m.val[k]
		}
	}
	return out
}
